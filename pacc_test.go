package pacc

import (
	"errors"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	cfg := DefaultConfig()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		Alltoall(c, 64<<10, CollectiveOptions{Power: Proposed})
		Bcast(c, 0, 64<<10, CollectiveOptions{})
		Barrier(c)
	})
	elapsed, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no time elapsed")
	}
	if w.Station().EnergyJoules() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestFacadeCollectives(t *testing.T) {
	cfg, err := ClusterFor(32)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		AlltoallPairwise(c, 32<<10, CollectiveOptions{})
		AlltoallBruck(c, 512, CollectiveOptions{})
		Alltoallv(c, func(src, dst int) int64 { return 1024 }, CollectiveOptions{})
		Reduce(c, 0, 4<<10, CollectiveOptions{Power: FreqScaling})
		Allgather(c, 2<<10, CollectiveOptions{})
		Allreduce(c, 2<<10, CollectiveOptions{})
		Gather(c, 0, 2<<10, CollectiveOptions{})
		Scatter(c, 0, 2<<10, CollectiveOptions{})
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeApps(t *testing.T) {
	app, err := CPMDApp("wat-32-inp-1")
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "cpmd/wat-32-inp-1" {
		t.Fatalf("app name %q", app.Name)
	}
	if _, err := CPMDApp("missing"); err == nil {
		t.Fatal("bogus dataset accepted")
	}
	if FTClassC().Name != "ft.C" || ISClassC().Name != "is.C" {
		t.Fatal("NAS app names wrong")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) < 13 {
		t.Fatalf("only %d experiments registered", len(Experiments()))
	}
	res, err := RunExperiment("fig2c", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig2c" {
		t.Fatalf("result id %q", res.ID)
	}
	_, err = RunExperiment("not-an-experiment", 1)
	var ue *UnknownExperimentError
	if !errors.As(err, &ue) || ue.ID != "not-an-experiment" {
		t.Fatalf("want UnknownExperimentError, got %v", err)
	}
	if ue.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestFacadeModel(t *testing.T) {
	par := ModelFromConfig(DefaultConfig())
	if par.AlltoallTime(8, 8, 1<<20) <= 0 {
		t.Fatal("model time not positive")
	}
	if DefaultPowerModel().Validate() != nil {
		t.Fatal("default power model invalid")
	}
}
