package pacc_test

import (
	"fmt"

	"pacc"
)

// The basic workflow: build a world, launch an SPMD body, run, and read
// time and energy.
func Example() {
	cfg := pacc.DefaultConfig()
	w, err := pacc.NewWorld(cfg)
	if err != nil {
		panic(err)
	}
	w.Launch(func(r *pacc.Rank) {
		c := pacc.CommWorld(r)
		pacc.Barrier(c)
	})
	if _, err := w.Run(); err != nil {
		panic(err)
	}
	fmt.Println(w.Size(), "ranks synchronized")
	// Output: 64 ranks synchronized
}

// Comparing the paper's three power schemes on one collective call. The
// simulation is deterministic, so the ordering is stable.
func Example_powerSchemes() {
	var energies []float64
	for _, mode := range []pacc.PowerMode{pacc.NoPower, pacc.FreqScaling, pacc.Proposed} {
		w, err := pacc.NewWorld(pacc.DefaultConfig())
		if err != nil {
			panic(err)
		}
		w.Launch(func(r *pacc.Rank) {
			pacc.Alltoall(pacc.CommWorld(r), 256<<10, pacc.CollectiveOptions{Power: mode})
		})
		if _, err := w.Run(); err != nil {
			panic(err)
		}
		energies = append(energies, w.Station().EnergyJoules())
	}
	fmt.Println("default > freq-scaling:", energies[0] > energies[1])
	fmt.Println("freq-scaling > proposed:", energies[1] > energies[2])
	// Output:
	// default > freq-scaling: true
	// freq-scaling > proposed: true
}

// Running one of the paper's application skeletons.
func Example_workload() {
	app, err := pacc.CPMDApp("wat-32-inp-1")
	if err != nil {
		panic(err)
	}
	fmt.Println(app.Name)
	// Output: cpmd/wat-32-inp-1
}

// Using the analytical model of Section VI: equation (1) predicts the
// pairwise alltoall time from the contention factor Cnet.
func Example_model() {
	par := pacc.ModelFromConfig(pacc.DefaultConfig())
	par.Cnet = 4                        // 4 concurrent senders per uplink
	t4 := par.AlltoallTime(8, 4, 1<<20) // 4-way
	par.Cnet = 8
	t8 := par.AlltoallTime(4, 8, 1<<20) // 8-way
	fmt.Println("8-way slower than 4-way:", t8 > t4)
	// Output: 8-way slower than 4-way: true
}
