package pacc_test

import (
	"bytes"
	"strings"
	"testing"

	"pacc"
	"pacc/internal/simtime"
)

// faultWorkload runs two fault-aware allreduces (with a compute gap in
// between, so a scheduled fault window can open mid-run) on a 4-node x 4
// job and returns the elapsed time, per-rank sums and metrics/trace
// snapshots.
func faultWorkload(t *testing.T, spec *pacc.FaultSpec) (simtime.Duration, [2][]float64, []byte, []byte) {
	t.Helper()
	cfg := pacc.DefaultConfig()
	cfg.NProcs, cfg.PPN = 16, 4
	cfg.Fault = spec
	w, err := pacc.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := pacc.AttachObs(w)
	var sums [2][]float64
	sums[0] = make([]float64, cfg.NProcs)
	sums[1] = make([]float64, cfg.NProcs)
	w.Launch(func(r *pacc.Rank) {
		c := pacc.CommWorld(r)
		sums[0][r.ID()], _ = pacc.AllreduceSum(c, 64<<10, float64(r.ID()+1), pacc.CollectiveOptions{})
		pacc.Barrier(c)
		r.Compute(2 * simtime.Millisecond)
		sums[1][r.ID()], _ = pacc.AllreduceSum(c, 64<<10, float64(r.ID()+1), pacc.CollectiveOptions{})
	})
	elapsed, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	var metrics, tr bytes.Buffer
	if err := sess.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	if err := sess.WriteTrace(&tr); err != nil {
		t.Fatal(err)
	}
	return elapsed, sums, metrics.Bytes(), tr.Bytes()
}

// TestFaultRunDeterminism: the same spec and seed reproduce the run
// bit-identically — same elapsed time, same metrics snapshot.
func TestFaultRunDeterminism(t *testing.T) {
	spec, err := pacc.ParseFaultSpec(
		"seed=7;msgloss=0.05;straggler=1@1.5;jitter=0.2;" +
			"degrade=node1-up@0.5:100us+50ms;pdelay=10us;retry=10;acktimeout=50us")
	if err != nil {
		t.Fatal(err)
	}
	e1, s1, m1, _ := faultWorkload(t, spec)
	e2, s2, m2, _ := faultWorkload(t, spec)
	if e1 != e2 {
		t.Fatalf("elapsed differs across identical runs: %v vs %v", e1, e2)
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("metrics snapshots differ across identical faulted runs")
	}
	for it := range s1 {
		for i := range s1[it] {
			if s1[it][i] != s2[it][i] {
				t.Fatalf("iteration %d rank %d sum differs: %g vs %g",
					it, i, s1[it][i], s2[it][i])
			}
		}
	}
}

// TestZeroProbabilitySpecIsNoOp: a spec that cannot inject anything must
// leave the run bit-identical to one with no fault subsystem attached —
// the nil-injector guarantee.
func TestZeroProbabilitySpecIsNoOp(t *testing.T) {
	inert := &pacc.FaultSpec{Seed: 99, RetryBudget: 7}
	eSpec, sSpec, mSpec, _ := faultWorkload(t, inert)
	eNil, sNil, mNil, _ := faultWorkload(t, nil)
	if eSpec != eNil {
		t.Fatalf("zero-probability spec changed elapsed time: %v vs %v", eSpec, eNil)
	}
	if !bytes.Equal(mSpec, mNil) {
		t.Fatal("zero-probability spec changed the metrics snapshot")
	}
	for it := range sSpec {
		for i := range sSpec[it] {
			if sSpec[it][i] != sNil[it][i] {
				t.Fatalf("iteration %d rank %d sum differs", it, i)
			}
		}
	}
}

// TestMidRunDegradationFallsBack is the end-to-end acceptance scenario: a
// link degrades after the first allreduce completes; the second detects
// it, falls back, still reduces correctly everywhere, and the decision
// appears in the exported Chrome trace.
func TestMidRunDegradationFallsBack(t *testing.T) {
	spec := &pacc.FaultSpec{
		Seed: 3,
		LinkFaults: []pacc.LinkFault{
			// Opens during the compute gap between the two allreduces
			// (the first finishes well before 1.5ms of virtual time).
			{Link: "node2-up", Factor: 0.25, Start: 1500 * simtime.Microsecond,
				Duration: 1000 * simtime.Second},
		},
		RetryBudget: 7,
	}
	elapsed, sums, _, tr := faultWorkload(t, spec)
	if elapsed <= 0 {
		t.Fatal("empty run")
	}
	want := float64(16*17) / 2
	for it := range sums {
		for i, v := range sums[it] {
			if v != want {
				t.Fatalf("iteration %d rank %d sum = %g, want %g", it, i, v, want)
			}
		}
	}
	trace := string(tr)
	if !strings.Contains(trace, "fallback") {
		t.Error("exported trace has no fallback span")
	}
	if !strings.Contains(trace, "link fault") {
		t.Error("exported trace has no link-fault marker")
	}
}
