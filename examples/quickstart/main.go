// Quickstart: simulate one large MPI_Alltoall on the paper's 64-core
// InfiniBand testbed under the three power schemes and print latency,
// mean power, and energy.
package main

import (
	"fmt"
	"log"

	"pacc"
)

func main() {
	const bytes = 256 << 10 // 256 KB per pair

	fmt.Printf("MPI_Alltoall, %d ranks, %d KB per pair\n\n", 64, bytes>>10)
	fmt.Printf("%-22s %12s %12s %12s\n", "scheme", "latency(ms)", "power(KW)", "energy(J)")
	for _, mode := range []pacc.PowerMode{pacc.NoPower, pacc.FreqScaling, pacc.Proposed} {
		w, err := pacc.NewWorld(pacc.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		w.Launch(func(r *pacc.Rank) {
			c := pacc.CommWorld(r)
			pacc.Alltoall(c, bytes, pacc.CollectiveOptions{Power: mode})
		})
		elapsed, err := w.Run()
		if err != nil {
			log.Fatal(err)
		}
		energy := w.Station().EnergyJoules()
		fmt.Printf("%-22s %12.3f %12.2f %12.1f\n",
			mode, elapsed.Seconds()*1e3, energy/elapsed.Seconds()/1e3, energy)
	}
	fmt.Println("\nThe proposed scheme (per-call DVFS + phased CPU throttling) draws")
	fmt.Println("the least power; the paper's Figure 7 shows the same ordering.")
}
