// Custom cluster: the library is not tied to the paper's 8-node testbed.
// This example builds a 16-node cluster of dual-socket hex-core nodes,
// compares polling vs blocking progression, and runs the §V-B
// core-granular throttling ablation on the larger machine.
package main

import (
	"fmt"
	"log"

	"pacc"
)

func buildConfig(mode pacc.ProgressionMode) pacc.Config {
	cfg := pacc.DefaultConfig()
	cfg.Topo = pacc.TopologyConfig{
		Nodes:          16,
		SocketsPerNode: 2,
		CoresPerSocket: 6,
		Interleaved:    true,
	}
	cfg.NProcs = 16 * 12
	cfg.PPN = 12
	cfg.Mode = mode
	return cfg
}

func run(cfg pacc.Config, opt pacc.CollectiveOptions,
	call func(c *pacc.Comm, opt pacc.CollectiveOptions)) (ms, kw float64) {
	w, err := pacc.NewWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w.Launch(func(r *pacc.Rank) {
		call(pacc.CommWorld(r), opt)
	})
	elapsed, err := w.Run()
	if err != nil {
		log.Fatal(err)
	}
	e := w.Station().EnergyJoules()
	return elapsed.Seconds() * 1e3, e / elapsed.Seconds() / 1e3
}

func alltoall(c *pacc.Comm, opt pacc.CollectiveOptions) { pacc.Alltoall(c, 128<<10, opt) }
func bcast(c *pacc.Comm, opt pacc.CollectiveOptions)    { pacc.Bcast(c, 0, 1<<20, opt) }

func main() {
	fmt.Println("192-rank MPI_Alltoall (128 KB) on 16 dual-socket hex-core nodes")
	fmt.Println()

	cases := []struct {
		name string
		cfg  pacc.Config
		opt  pacc.CollectiveOptions
	}{
		{"polling, no-power", buildConfig(pacc.Polling), pacc.CollectiveOptions{}},
		{"blocking, no-power", buildConfig(pacc.Blocking), pacc.CollectiveOptions{}},
		{"polling, proposed", buildConfig(pacc.Polling), pacc.CollectiveOptions{Power: pacc.Proposed}},
	}
	for _, c := range cases {
		ms, kw := run(c.cfg, c.opt, alltoall)
		fmt.Printf("%-45s latency %8.2f ms   mean power %6.2f KW\n", c.name, ms, kw)
	}

	fmt.Println()
	fmt.Println("1 MB MPI_Bcast, §V-B throttling granularity ablation:")
	fmt.Println()
	bcastCases := []struct {
		name string
		opt  pacc.CollectiveOptions
	}{
		{"proposed, socket-level T-states", pacc.CollectiveOptions{Power: pacc.Proposed}},
		{"proposed, core-granular T-states", pacc.CollectiveOptions{Power: pacc.Proposed, CoreGranularThrottle: true}},
	}
	for _, c := range bcastCases {
		ms, kw := run(buildConfig(pacc.Polling), c.opt, bcast)
		fmt.Printf("%-45s latency %8.2f ms   mean power %6.2f KW\n", c.name, ms, kw)
	}

	fmt.Println()
	fmt.Println("Blocking saves power but pays latency; the proposed algorithm saves")
	fmt.Println("power at full speed, and core-granular throttling (the paper's")
	fmt.Println("future-architecture mode) is both faster and cheaper than the")
	fmt.Println("socket-level schedule on any cluster shape.")
}
