// Green cluster: combine every power lever the library models — the
// paper's proposed CPU schedules, rack-aware routing with rack-level
// throttling, and dynamic InfiniBand link sleep states — on a bursty
// workload, and report where the energy goes.
package main

import (
	"fmt"
	"log"

	"pacc"
)

const (
	iters      = 10
	scatterKB  = 128
	alltoallKB = 64
)

type result struct {
	name               string
	seconds            float64
	cpuJ, netJ, totalJ float64
}

func run(linkSleep bool, mode pacc.PowerMode) result {
	cfg := pacc.DefaultConfig()
	// Two racks of four nodes, 4:1 oversubscribed uplinks.
	cfg.Net.NodesPerRack = 4
	cfg.Net.RackUplinkBytesPerSec = cfg.Net.LinkBytesPerSec / 4
	lp := pacc.DefaultLinkPower()
	if !linkSleep {
		lp.SleepAfter = 0
	}
	cfg.Net.LinkPower = lp

	w, err := pacc.NewWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w.Launch(func(r *pacc.Rank) {
		c := pacc.CommWorld(r)
		for i := 0; i < iters; i++ {
			r.ComputeSeconds(0.004) // 4 ms of compute
			pacc.ScatterTopoAware(c, 0, scatterKB<<10, pacc.CollectiveOptions{Power: mode})
			pacc.Alltoall(c, alltoallKB<<10, pacc.CollectiveOptions{Power: mode})
		}
	})
	elapsed, err := w.Run()
	if err != nil {
		log.Fatal(err)
	}
	cpuJ := w.Station().EnergyJoules()
	netJ := w.Fabric().NetworkEnergyJoules()
	return result{
		seconds: elapsed.Seconds(),
		cpuJ:    cpuJ,
		netJ:    netJ,
		totalJ:  cpuJ + netJ,
	}
}

func main() {
	fmt.Println("Bursty workload on 2 racks x 4 nodes (compute + rack-aware scatter + alltoall)")
	fmt.Println()
	cases := []struct {
		name      string
		linkSleep bool
		mode      pacc.PowerMode
	}{
		{"baseline (no power management)", false, pacc.NoPower},
		{"+ proposed CPU schedules", false, pacc.Proposed},
		{"+ dynamic link sleep", true, pacc.NoPower},
		{"+ both", true, pacc.Proposed},
	}
	fmt.Printf("%-34s %9s %10s %10s %10s\n", "configuration", "time(s)", "cpu(J)", "net(J)", "total(J)")
	var base float64
	for _, cse := range cases {
		r := run(cse.linkSleep, cse.mode)
		if base == 0 {
			base = r.totalJ
		}
		fmt.Printf("%-34s %9.4f %10.1f %10.1f %10.1f  (%.1f%% saved)\n",
			cse.name, r.seconds, r.cpuJ, r.netJ, r.totalJ, 100*(1-r.totalJ/base))
	}
	fmt.Println()
	fmt.Println("CPU throttling (the paper's contribution) and link sleep states (its")
	fmt.Println("future-work direction) attack different parts of the power budget and")
	fmt.Println("compose without interfering.")
}
