// OSU-style microbenchmark sweep: measure Bcast and Alltoall latency
// across message sizes under the three power schemes, the way the paper's
// Figures 7(a) and 8(a) were produced, and print the overheads of the
// power-aware algorithms.
package main

import (
	"fmt"
	"log"

	"pacc"
)

const iters = 3

// measure returns the mean per-call latency in microseconds observed by
// rank 0 across barrier-separated iterations.
func measure(bytes int64, mode pacc.PowerMode,
	call func(c *pacc.Comm, bytes int64, opt pacc.CollectiveOptions)) float64 {
	w, err := pacc.NewWorld(pacc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var tr0 *pacc.Trace
	w.Launch(func(r *pacc.Rank) {
		c := pacc.CommWorld(r)
		tr := pacc.NewTrace()
		if r.ID() == 0 {
			tr0 = tr
		}
		call(c, bytes, pacc.CollectiveOptions{Power: mode}) // warm-up
		for i := 0; i < iters; i++ {
			pacc.Barrier(c)
			call(c, bytes, pacc.CollectiveOptions{Power: mode, Trace: tr})
		}
	})
	if _, err := w.Run(); err != nil {
		log.Fatal(err)
	}
	return tr0.Phase("total").Micros() / iters
}

func sweep(name string, call func(c *pacc.Comm, bytes int64, opt pacc.CollectiveOptions)) {
	fmt.Printf("%s latency (us), 64 processes:\n", name)
	fmt.Printf("%-10s %12s %14s %12s %10s\n", "size", "no-power", "freq-scaling", "proposed", "overhead")
	for _, bytes := range []int64{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		no := measure(bytes, pacc.NoPower, call)
		fs := measure(bytes, pacc.FreqScaling, call)
		pr := measure(bytes, pacc.Proposed, call)
		fmt.Printf("%-10s %12.1f %14.1f %12.1f %9.1f%%\n",
			fmt.Sprintf("%dK", bytes>>10), no, fs, pr, 100*(pr/no-1))
	}
	fmt.Println()
}

func main() {
	sweep("MPI_Alltoall", func(c *pacc.Comm, bytes int64, opt pacc.CollectiveOptions) {
		pacc.AlltoallPairwise(c, bytes, opt)
	})
	sweep("MPI_Bcast", func(c *pacc.Comm, bytes int64, opt pacc.CollectiveOptions) {
		pacc.Bcast(c, 0, bytes, opt)
	})
	fmt.Println("The paper reports ~10% alltoall and ~15% bcast overhead at 1MB")
	fmt.Println("for the power-aware algorithms (Figures 7a, 8a).")
}
