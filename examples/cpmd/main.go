// CPMD energy study: reproduce the structure of the paper's Table I for
// one dataset — run the CPMD skeleton at 32 and 64 processes under the
// three power schemes and report runtime, alltoall time, energy, and the
// savings of the power-aware schemes.
package main

import (
	"flag"
	"fmt"
	"log"

	"pacc"
)

func main() {
	dataset := flag.String("dataset", "wat-32-inp-1",
		"CPMD dataset: wat-32-inp-1, wat-32-inp-2, or ta-inp-md")
	flag.Parse()

	app, err := pacc.CPMDApp(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPMD %s (strong scaling)\n\n", *dataset)
	for _, procs := range []int{32, 64} {
		cfg, err := pacc.ClusterFor(procs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d processes on %d nodes:\n", procs, cfg.Topo.Nodes)
		var baseline float64
		for _, mode := range []pacc.PowerMode{pacc.NoPower, pacc.FreqScaling, pacc.Proposed} {
			rep, err := pacc.RunApp(app, cfg, mode)
			if err != nil {
				log.Fatal(err)
			}
			saving := ""
			if mode == pacc.NoPower {
				baseline = rep.EnergyJ
			} else if baseline > 0 {
				saving = fmt.Sprintf("  (saves %.1f%%)", 100*(1-rep.EnergyJ/baseline))
			}
			fmt.Printf("  %-14v total %7.2fs  alltoall %6.2fs  energy %8.2f KJ%s\n",
				mode, rep.Elapsed.Seconds(), rep.AlltoallTime.Seconds(), rep.EnergyKJ(), saving)
		}
		fmt.Println()
	}
	fmt.Println("The paper's Table I reports ~5-8% energy savings for the proposed")
	fmt.Println("scheme on these datasets, with 2-5% runtime overhead.")
}
