package experiments

import (
	"fmt"

	"pacc/internal/collective"
	"pacc/internal/model"
	"pacc/internal/mpi"
	"pacc/internal/simtime"
	"pacc/internal/stats"
)

// Message-size sweeps used by the paper's figures.
var (
	sizesFig2a = []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	sizesFig2b = []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	sizesFig2c = []int64{4, 16, 64, 256, 1 << 10, 4 << 10}
	sizesLarge = []int64{16 << 10, 64 << 10, 256 << 10, 1 << 20}
)

func init() {
	register(Spec{
		ID:          "fig2a",
		Title:       "Alltoall scalability: 32 processes, 4-way vs 8-way vs theoretical",
		Description: "Pairwise-exchange alltoall latency for 32 ranks placed 4-per-node across 8 nodes and 8-per-node across 4 nodes, with the eq (1) estimate.",
		Run:         runFig2a,
	})
	register(Spec{
		ID:          "fig2b",
		Title:       "Bcast: overall time vs network phase (64 processes)",
		Description: "Multi-core aware broadcast total latency against its inter-leader (network) phase.",
		Run:         runFig2b,
	})
	register(Spec{
		ID:          "fig2c",
		Title:       "Reduce: overall time vs network phase (64 processes)",
		Description: "Multi-core aware reduce total latency against its inter-leader phase for small messages.",
		Run:         runFig2c,
	})
	register(Spec{
		ID:          "fig6a",
		Title:       "Alltoall polling vs blocking: latency (64 processes)",
		Description: "Pairwise alltoall latency under the two progression modes.",
		Run:         runFig6a,
	})
	register(Spec{
		ID:          "fig6b",
		Title:       "Alltoall polling vs blocking: power over time (64 processes)",
		Description: "Clamp-meter style power samples while repeating a 256 KB alltoall.",
		Run:         runFig6b,
	})
	register(Spec{
		ID:          "fig7a",
		Title:       "Alltoall: No-Power vs Freq-Scaling vs Proposed latency (64 processes)",
		Description: "Pairwise alltoall latency under the three power schemes.",
		Run:         runFig7a,
	})
	register(Spec{
		ID:          "fig7b",
		Title:       "Alltoall: power over time for the three schemes (64 processes)",
		Description: "Power samples while repeating a 256 KB alltoall under each scheme.",
		Run:         runFig7b,
	})
	register(Spec{
		ID:          "fig8a",
		Title:       "Bcast: No-Power vs Freq-Scaling vs Proposed latency (64 processes)",
		Description: "Multi-core aware broadcast latency under the three power schemes.",
		Run:         runFig8a,
	})
	register(Spec{
		ID:          "fig8b",
		Title:       "Bcast: power over time for the three schemes (64 processes)",
		Description: "Power samples while repeating a 1 MB broadcast under each scheme.",
		Run:         runFig8b,
	})
}

func runFig2a(opt Options) (*Result, error) {
	sizes := opt.scaledSizes(sizesFig2a)
	iters := opt.scaledIters(3)
	res := &Result{ID: "fig2a", Title: "Alltoall scalability with 32 processes"}
	cfg4 := jobConfig(32, 4)
	cfg8 := jobConfig(32, 8)
	s4 := Series{Name: "Alltoall-4way", XLabel: "bytes", YLabel: "latency_us"}
	s8 := Series{Name: "Alltoall-8way", XLabel: "bytes", YLabel: "latency_us"}
	sm := Series{Name: "Alltoall-Theoretical", XLabel: "bytes", YLabel: "latency_us"}
	par := model.FromConfig(cfg4)
	par.Cnet = float64(cfg4.PPN)
	for _, m := range sizes {
		r4, err := runLatency(cfg4, iters, alltoallCall(m, collective.NoPower))
		if err != nil {
			return nil, err
		}
		r8, err := runLatency(cfg8, iters, alltoallCall(m, collective.NoPower))
		if err != nil {
			return nil, err
		}
		s4.X = append(s4.X, float64(m))
		s4.Y = append(s4.Y, r4.TotalUs)
		s8.X = append(s8.X, float64(m))
		s8.Y = append(s8.Y, r8.TotalUs)
		sm.X = append(sm.X, float64(m))
		sm.Y = append(sm.Y, par.AlltoallTime(8, 4, m)*1e6)
	}
	res.Series = []Series{s4, s8, sm}
	gap := stats.PercentDelta(s4.Y[len(s4.Y)-1], s8.Y[len(s8.Y)-1])
	res.Notes = append(res.Notes, fmt.Sprintf(
		"8-way is %.0f%% slower than 4-way at %s (paper: ~54%%)",
		gap, stats.FormatBytes(sizes[len(sizes)-1])))
	return res, nil
}

func runPhaseSweep(id, title string, sizes []int64, iters int,
	call func(bytes int64) func(*mpi.Comm, *collective.Trace)) (*Result, error) {
	res := &Result{ID: id, Title: title}
	cfg := jobConfig(64, 8)
	total := Series{Name: "Default", XLabel: "bytes", YLabel: "latency_us"}
	network := Series{Name: "Network-phase", XLabel: "bytes", YLabel: "latency_us"}
	for _, m := range sizes {
		r, err := runLatency(cfg, iters, call(m))
		if err != nil {
			return nil, err
		}
		total.X = append(total.X, float64(m))
		total.Y = append(total.Y, r.TotalUs)
		network.X = append(network.X, float64(m))
		network.Y = append(network.Y, r.NetworkUs)
	}
	res.Series = []Series{total, network}
	last := len(sizes) - 1
	res.Notes = append(res.Notes, fmt.Sprintf(
		"network phase is %.0f%% of the total at %s",
		100*network.Y[last]/total.Y[last], stats.FormatBytes(sizes[last])))
	return res, nil
}

func runFig2b(opt Options) (*Result, error) {
	return runPhaseSweep("fig2b", "Bcast overall vs network time (64 procs)",
		opt.scaledSizes(sizesFig2b), opt.scaledIters(3),
		func(m int64) func(*mpi.Comm, *collective.Trace) {
			return bcastCall(m, collective.NoPower)
		})
}

func runFig2c(opt Options) (*Result, error) {
	return runPhaseSweep("fig2c", "Reduce overall vs network time (64 procs)",
		opt.scaledSizes(sizesFig2c), opt.scaledIters(3),
		func(m int64) func(*mpi.Comm, *collective.Trace) {
			return reduceCall(m, collective.NoPower)
		})
}

func runFig6a(opt Options) (*Result, error) {
	sizes := opt.scaledSizes(sizesLarge)
	iters := opt.scaledIters(3)
	res := &Result{ID: "fig6a", Title: "Alltoall polling vs blocking latency (64 procs)"}
	polling := Series{Name: "Alltoall-Polling", XLabel: "bytes", YLabel: "latency_us"}
	blocking := Series{Name: "Alltoall-Blocking", XLabel: "bytes", YLabel: "latency_us"}
	for _, m := range sizes {
		cfgP := jobConfig(64, 8)
		rp, err := runLatency(cfgP, iters, alltoallCall(m, collective.NoPower))
		if err != nil {
			return nil, err
		}
		cfgB := jobConfig(64, 8)
		cfgB.Mode = mpi.Blocking
		rb, err := runLatency(cfgB, iters, alltoallCall(m, collective.NoPower))
		if err != nil {
			return nil, err
		}
		polling.X = append(polling.X, float64(m))
		polling.Y = append(polling.Y, rp.TotalUs)
		blocking.X = append(blocking.X, float64(m))
		blocking.Y = append(blocking.Y, rb.TotalUs)
	}
	res.Series = []Series{polling, blocking}
	last := len(sizes) - 1
	res.Notes = append(res.Notes, fmt.Sprintf(
		"blocking is %.0f%% slower at %s (paper: blocking clearly slower)",
		stats.PercentDelta(polling.Y[last], blocking.Y[last]), stats.FormatBytes(sizes[last])))
	return res, nil
}

func runFig6b(opt Options) (*Result, error) {
	const bytes = 256 << 10
	window := simtime.DurationOf(24 * opt.scale())
	res := &Result{ID: "fig6b", Title: "Alltoall power vs time: polling vs blocking (64 procs)"}
	for _, mc := range []struct {
		name string
		mode mpi.ProgressionMode
	}{
		{"Alltoall-Polling", mpi.Polling},
		{"Alltoall-Blocking", mpi.Blocking},
	} {
		cfg := jobConfig(64, 8)
		cfg.Mode = mc.mode
		call := func(c *mpi.Comm) {
			collective.AlltoallPairwise(c, bytes, collective.Options{})
		}
		iters, err := itersForWindow(cfg, window, call)
		if err != nil {
			return nil, err
		}
		s, err := runTimeline(cfg, iters, mc.name, call)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"mean power: polling %.0f W, blocking %.0f W (paper: blocking lower, ~2.3 vs ~1.9 KW)",
		stats.Mean(res.Series[0].Y), stats.Mean(res.Series[1].Y)))
	return res, nil
}

// runModeSweep compares the three power schemes for one collective.
func runModeSweep(id, title string, sizes []int64, iters int, prefix string,
	call func(bytes int64, mode collective.PowerMode) func(*mpi.Comm, *collective.Trace)) (*Result, error) {
	res := &Result{ID: id, Title: title}
	cfg := jobConfig(64, 8)
	names := map[collective.PowerMode]string{
		collective.NoPower:     prefix + "-No-Power",
		collective.FreqScaling: prefix + "-Freq-Scaling",
		collective.Proposed:    prefix + "-Proposed",
	}
	order := []collective.PowerMode{collective.NoPower, collective.FreqScaling, collective.Proposed}
	var series []Series
	for _, mode := range order {
		s := Series{Name: names[mode], XLabel: "bytes", YLabel: "latency_us"}
		for _, m := range sizes {
			r, err := runLatency(cfg, iters, call(m, mode))
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(m))
			s.Y = append(s.Y, r.TotalUs)
		}
		series = append(series, s)
	}
	res.Series = series
	last := len(sizes) - 1
	res.Notes = append(res.Notes,
		fmt.Sprintf("overhead at %s: freq-scaling %.1f%%, proposed %.1f%%",
			stats.FormatBytes(sizes[last]),
			stats.PercentDelta(series[0].Y[last], series[1].Y[last]),
			stats.PercentDelta(series[0].Y[last], series[2].Y[last])))
	return res, nil
}

func runFig7a(opt Options) (*Result, error) {
	return runModeSweep("fig7a", "Alltoall latency under the three power schemes (64 procs)",
		opt.scaledSizes(sizesLarge), opt.scaledIters(3), "Alltoall",
		func(m int64, mode collective.PowerMode) func(*mpi.Comm, *collective.Trace) {
			return alltoallCall(m, mode)
		})
}

func runFig8a(opt Options) (*Result, error) {
	return runModeSweep("fig8a", "Bcast latency under the three power schemes (64 procs)",
		opt.scaledSizes(sizesLarge), opt.scaledIters(3), "Bcast",
		func(m int64, mode collective.PowerMode) func(*mpi.Comm, *collective.Trace) {
			return bcastCall(m, mode)
		})
}

// runModeTimeline produces the power-vs-time plots for the three schemes.
func runModeTimeline(id, title string, bytes int64, opt Options,
	call func(c *mpi.Comm, mode collective.PowerMode)) (*Result, error) {
	window := simtime.DurationOf(24 * opt.scale())
	res := &Result{ID: id, Title: title}
	prefixes := map[collective.PowerMode]string{
		collective.NoPower:     "No-Power",
		collective.FreqScaling: "Freq-Scaling",
		collective.Proposed:    "Proposed",
	}
	var means []float64
	for _, mode := range []collective.PowerMode{collective.NoPower, collective.FreqScaling, collective.Proposed} {
		m := mode
		cfg := jobConfig(64, 8)
		c := func(cc *mpi.Comm) { call(cc, m) }
		iters, err := itersForWindow(cfg, window, c)
		if err != nil {
			return nil, err
		}
		s, err := runTimeline(cfg, iters, prefixes[mode], c)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
		means = append(means, stats.Mean(s.Y))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"mean power: no-power %.2f KW, freq-scaling %.2f KW, proposed %.2f KW (paper: ~2.3 / ~1.8 / ~1.6 KW)",
		means[0]/1000, means[1]/1000, means[2]/1000))
	return res, nil
}

func runFig7b(opt Options) (*Result, error) {
	return runModeTimeline("fig7b", "Alltoall power vs time under the three schemes (64 procs)",
		256<<10, opt, func(c *mpi.Comm, mode collective.PowerMode) {
			collective.AlltoallPairwise(c, 256<<10, collective.Options{Power: mode})
		})
}

func runFig8b(opt Options) (*Result, error) {
	return runModeTimeline("fig8b", "Bcast power vs time under the three schemes (64 procs)",
		1<<20, opt, func(c *mpi.Comm, mode collective.PowerMode) {
			collective.Bcast(c, 0, 1<<20, collective.Options{Power: mode})
		})
}
