package experiments

import (
	"fmt"

	"pacc/internal/collective"
	"pacc/internal/mpi"
	"pacc/internal/stats"
)

func init() {
	register(Spec{
		ID:    "ext-toporack",
		Title: "Extension: rack-aware scatter with rack-level throttling (§VIII)",
		Description: "On a two-rack, oversubscribed fabric: flat binomial scatter vs the " +
			"topology-aware hierarchy, and the §VIII power schedule that throttles whole racks " +
			"during the inter-rack phase.",
		Run: runExtTopoRack,
	})
}

func runExtTopoRack(opt Options) (*Result, error) {
	const bytes = 256 << 10
	const root = 20 // misaligned with the rack boundary
	iters := opt.scaledIters(3)
	res := &Result{ID: "ext-toporack", Title: "Rack-aware scatter on a 2-rack, 16:1-oversubscribed fabric"}

	cfg := jobConfig(64, 8)
	cfg.Net.NodesPerRack = 4
	cfg.Net.RackUplinkBytesPerSec = cfg.Net.LinkBytesPerSec / 4

	t := Table{
		Title:  fmt.Sprintf("Scatter %s from rank %d, 64 procs", stats.FormatBytes(bytes), root),
		Header: []string{"algorithm", "latency_us", "mean_watts", "interrack_bytes"},
	}
	type cse struct {
		name string
		call func(c *mpi.Comm, tr *collective.Trace)
	}
	cases := []cse{
		{"flat binomial", func(c *mpi.Comm, tr *collective.Trace) {
			collective.Scatter(c, root, bytes, collective.Options{Trace: tr})
		}},
		{"topology-aware", func(c *mpi.Comm, tr *collective.Trace) {
			collective.ScatterTopoAware(c, root, bytes, collective.Options{Trace: tr})
		}},
		{"topology-aware + freq-scaling", func(c *mpi.Comm, tr *collective.Trace) {
			collective.ScatterTopoAware(c, root, bytes,
				collective.Options{Power: collective.FreqScaling, Trace: tr})
		}},
		{"topology-aware + rack throttling", func(c *mpi.Comm, tr *collective.Trace) {
			collective.ScatterTopoAware(c, root, bytes,
				collective.Options{Power: collective.Proposed, Trace: tr})
		}},
	}
	var flatLat, topoLat, flatW, propW float64
	for i, cs := range cases {
		r, err := runLatency(cfg, iters, cs.call)
		if err != nil {
			return nil, err
		}
		// Re-run once on a fresh world for the inter-rack byte count.
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			return nil, err
		}
		call := cs.call
		w.Launch(func(rk *mpi.Rank) { call(mpi.CommWorld(rk), nil) })
		if _, err := w.Run(); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cs.name,
			fmt.Sprintf("%.1f", r.TotalUs),
			fmt.Sprintf("%.0f", r.MeanWatts),
			fmt.Sprintf("%d", w.Fabric().InterRackBytes()),
		})
		switch i {
		case 0:
			flatLat, flatW = r.TotalUs, r.MeanWatts
		case 1:
			topoLat = r.TotalUs
		case 3:
			propW = r.MeanWatts
		}
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"topology-aware is %.1fx faster than flat across racks; rack throttling cuts mean power %.0f%%",
		flatLat/topoLat, 100*(1-propW/flatW)))
	return res, nil
}
