package experiments

import (
	"fmt"

	"pacc/internal/collective"
	"pacc/internal/stats"
)

func init() {
	register(Spec{
		ID:    "abl-sensitivity",
		Title: "Ablation: calibration sensitivity of the headline result",
		Description: "Perturb the two most uncertain calibration constants (link bandwidth, host " +
			"per-byte cost) by 2x in each direction and check that the paper's ordering — " +
			"No-Power > Freq-Scaling > Proposed in power, with bounded overhead — survives.",
		Run: runAblSensitivity,
	})
}

func runAblSensitivity(opt Options) (*Result, error) {
	const bytes = 256 << 10
	iters := opt.scaledIters(2)
	res := &Result{ID: "abl-sensitivity", Title: "Calibration sensitivity (Alltoall 256K, 64 procs)"}
	t := Table{
		Title: "power ordering and savings under perturbed calibrations",
		Header: []string{"link_bw_x", "host_bw_x", "power_W_default", "power_W_proposed",
			"power_saving_pct", "overhead_pct", "ordering"},
	}
	factors := []float64{0.5, 1, 2}
	violations := 0
	for _, lf := range factors {
		for _, hf := range factors {
			cfg := jobConfig(64, 8)
			cfg.Net.LinkBytesPerSec *= lf
			cfg.HostBytesPerSec *= hf
			type meas struct {
				lat, watts float64
			}
			var ms [3]meas
			for i, mode := range []collective.PowerMode{
				collective.NoPower, collective.FreqScaling, collective.Proposed,
			} {
				r, err := runLatency(cfg, iters, alltoallCall(bytes, mode))
				if err != nil {
					return nil, err
				}
				ms[i] = meas{r.TotalUs, r.MeanWatts}
			}
			ok := ms[0].watts > ms[1].watts && ms[1].watts > ms[2].watts
			if !ok {
				violations++
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.1f", lf),
				fmt.Sprintf("%.1f", hf),
				fmt.Sprintf("%.0f", ms[0].watts),
				fmt.Sprintf("%.0f", ms[2].watts),
				fmt.Sprintf("%.1f", 100*(1-ms[2].watts/ms[0].watts)),
				fmt.Sprintf("%.1f", stats.PercentDelta(ms[0].lat, ms[2].lat)),
				fmt.Sprintf("%v", ok),
			})
		}
	}
	res.Tables = []Table{t}
	if violations == 0 {
		res.Notes = append(res.Notes,
			"the No-Power > Freq-Scaling > Proposed power ordering holds at every perturbed calibration")
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"WARNING: ordering violated in %d of %d calibrations", violations, len(t.Rows)))
	}
	return res, nil
}
