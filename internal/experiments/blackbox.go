package experiments

import (
	"fmt"

	"pacc/internal/workload"
)

func init() {
	register(Spec{
		ID:    "abl-blackbox",
		Title: "Ablation: black-box phase DVFS vs the paper's per-algorithm schemes",
		Description: "The related-work baseline ([5],[6]) detects communication phases and holds " +
			"fmin across them without touching the algorithms. The paper's claim is that opening " +
			"the black box (per-call DVFS + phased throttling) saves more; this measures all four " +
			"schemes on CPMD.",
		Run: runAblBlackBox,
	})
}

func runAblBlackBox(opt Options) (*Result, error) {
	ds := workload.CPMDWat32Inp1
	ds.Steps = opt.scaledIters(ds.Steps)
	app := workload.CPMD(ds)
	cfg, err := workload.ClusterFor(64)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "abl-blackbox", Title: "Black-box phase DVFS vs per-algorithm schemes (CPMD, 64 procs)"}
	t := Table{
		Title:  fmt.Sprintf("cpmd/%s, %d steps", ds.Name, ds.Steps),
		Header: []string{"scheme", "total_s", "energy_KJ", "saving_pct", "overhead_pct"},
	}
	schemes := []workload.Scheme{
		workload.SchemeDefault,
		workload.SchemeBlackBox,
		workload.SchemeFreqScaling,
		workload.SchemeProposed,
	}
	var baseT, baseE float64
	var blackE, propE float64
	for _, scheme := range schemes {
		rep, err := workload.RunScheme(app, cfg, scheme)
		if err != nil {
			return nil, err
		}
		T, E := rep.Elapsed.Seconds(), rep.EnergyJ
		if scheme == workload.SchemeDefault {
			baseT, baseE = T, E
		}
		if scheme == workload.SchemeBlackBox {
			blackE = E
		}
		if scheme == workload.SchemeProposed {
			propE = E
		}
		t.Rows = append(t.Rows, []string{
			scheme.String(),
			fmt.Sprintf("%.3f", T),
			fmt.Sprintf("%.3f", E/1000),
			fmt.Sprintf("%.1f", 100*(1-E/baseE)),
			fmt.Sprintf("%.2f", 100*(T/baseT-1)),
		})
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"the proposed algorithms save %.1f%% more energy than black-box phase DVFS — the gap is the throttling that only an algorithm-aware scheme can schedule",
		100*(blackE-propE)/baseE))
	return res, nil
}
