package experiments

import (
	"fmt"

	"pacc/internal/collective"
	"pacc/internal/stats"
	"pacc/internal/workload"
)

func init() {
	register(Spec{
		ID:          "fig9",
		Title:       "CPMD execution and Alltoall time (32 and 64 processes)",
		Description: "Total and MPI_Alltoall time for the three CPMD datasets under the three power schemes.",
		Run:         runFig9,
	})
	register(Spec{
		ID:          "table1",
		Title:       "CPMD power statistics in kilojoules (Table I)",
		Description: "Whole-run energy for the three CPMD datasets at 32 and 64 processes.",
		Run:         runTable1,
	})
	register(Spec{
		ID:          "fig10",
		Title:       "NAS FT/IS execution and Alltoall time (32 and 64 processes)",
		Description: "Total and alltoall time for the class C FT and IS kernels under the three schemes.",
		Run:         runFig10,
	})
	register(Spec{
		ID:          "table2",
		Title:       "NAS power statistics in kilojoules (Table II)",
		Description: "Whole-run energy for class C FT and IS at 32 and 64 processes.",
		Run:         runTable2,
	})
}

// reportCache memoizes application sweeps: fig9/table1 (and fig10/table2)
// present different views of the same runs, so each sweep executes once
// per (app-set, scale).
var reportCache = map[string][]workload.Report{}

// appReports runs the given apps for {32, 64} procs x three schemes and
// returns the reports keyed by app name, procs, scheme, in deterministic
// order. Results are memoized per app set (simulations are deterministic,
// so replays would produce identical reports).
func appReports(apps []workload.App, scaleKey string) ([]workload.Report, error) {
	key := scaleKey
	for _, app := range apps {
		key += "|" + app.Name
	}
	if cached, ok := reportCache[key]; ok {
		out := make([]workload.Report, len(cached))
		copy(out, cached)
		return out, nil
	}
	var out []workload.Report
	for _, app := range apps {
		for _, procs := range []int{32, 64} {
			cfg, err := workload.ClusterFor(procs)
			if err != nil {
				return nil, err
			}
			for _, mode := range workload.Schemes() {
				rep, err := workload.Run(app, cfg, mode)
				if err != nil {
					return nil, err
				}
				out = append(out, rep)
			}
		}
	}
	reportCache[key] = out
	res := make([]workload.Report, len(out))
	copy(res, out)
	return res, nil
}

// scaledCPMD shrinks dataset step counts for quick runs.
func scaledCPMD(opt Options) []workload.App {
	var apps []workload.App
	for _, ds := range workload.CPMDDatasets() {
		ds.Steps = opt.scaledIters(ds.Steps)
		apps = append(apps, workload.CPMD(ds))
	}
	return apps
}

func scaledNAS(opt Options) []workload.App {
	ft := workload.FTClassC
	ft.Iters = opt.scaledIters(ft.Iters)
	is := workload.ISClassC
	is.Iters = opt.scaledIters(is.Iters)
	return []workload.App{workload.FT(ft), workload.IS(is)}
}

// timeTable renders the fig9/fig10 bar-chart data: per app/procs/scheme,
// total and alltoall seconds.
func timeTable(title string, reps []workload.Report) Table {
	t := Table{
		Title:  title,
		Header: []string{"app", "procs", "scheme", "total_s", "alltoall_s"},
	}
	for _, rep := range reps {
		t.Rows = append(t.Rows, []string{
			rep.App,
			fmt.Sprintf("%d", rep.Procs),
			workload.PowerModeLabel(rep.Mode),
			fmt.Sprintf("%.3f", rep.Elapsed.Seconds()),
			fmt.Sprintf("%.3f", rep.AlltoallTime.Seconds()),
		})
	}
	return t
}

// energyTable renders Table I / Table II: rows are schemes, columns the
// app x procs combinations, cells in KJ.
func energyTable(title string, reps []workload.Report) Table {
	type key struct {
		app   string
		procs int
	}
	var cols []key
	seen := map[key]bool{}
	cells := map[key]map[collective.PowerMode]float64{}
	for _, rep := range reps {
		k := key{rep.App, rep.Procs}
		if !seen[k] {
			seen[k] = true
			cols = append(cols, k)
			cells[k] = map[collective.PowerMode]float64{}
		}
		cells[k][rep.Mode] = rep.EnergyKJ()
	}
	t := Table{Title: title, Header: []string{"scheme"}}
	for _, k := range cols {
		t.Header = append(t.Header, fmt.Sprintf("%s@%d (KJ)", k.app, k.procs))
	}
	for _, mode := range workload.Schemes() {
		row := []string{workload.PowerModeLabel(mode)}
		for _, k := range cols {
			row = append(row, fmt.Sprintf("%.3f", cells[k][mode]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// savingsNotes summarizes proposed-vs-default savings per app/procs.
func savingsNotes(reps []workload.Report) []string {
	type key struct {
		app   string
		procs int
	}
	base := map[key]float64{}
	prop := map[key]float64{}
	var order []key
	for _, rep := range reps {
		k := key{rep.App, rep.Procs}
		switch rep.Mode {
		case collective.NoPower:
			base[k] = rep.EnergyJ
			order = append(order, k)
		case collective.Proposed:
			prop[k] = rep.EnergyJ
		}
	}
	var notes []string
	for _, k := range order {
		if base[k] > 0 && prop[k] > 0 {
			notes = append(notes, fmt.Sprintf("%s@%d: proposed saves %.1f%% energy vs default",
				k.app, k.procs, -stats.PercentDelta(base[k], prop[k])))
		}
	}
	return notes
}

func runFig9(opt Options) (*Result, error) {
	reps, err := appReports(scaledCPMD(opt), fmt.Sprintf("%.4f", opt.scale()))
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig9", Title: "CPMD execution and Alltoall time"}
	res.Tables = []Table{timeTable("CPMD times", reps)}
	res.Notes = scalingNotes(reps)
	return res, nil
}

func runTable1(opt Options) (*Result, error) {
	reps, err := appReports(scaledCPMD(opt), fmt.Sprintf("%.4f", opt.scale()))
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "table1", Title: "CPMD power statistics (KJ)"}
	res.Tables = []Table{energyTable("CPMD energy (KJ)", reps)}
	res.Notes = savingsNotes(reps)
	return res, nil
}

func runFig10(opt Options) (*Result, error) {
	reps, err := appReports(scaledNAS(opt), fmt.Sprintf("%.4f", opt.scale()))
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig10", Title: "NAS FT/IS execution and Alltoall time"}
	res.Tables = []Table{timeTable("NAS times", reps)}
	res.Notes = scalingNotes(reps)
	return res, nil
}

func runTable2(opt Options) (*Result, error) {
	reps, err := appReports(scaledNAS(opt), fmt.Sprintf("%.4f", opt.scale()))
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "table2", Title: "NAS power statistics (KJ)"}
	res.Tables = []Table{energyTable("NAS energy (KJ)", reps)}
	res.Notes = savingsNotes(reps)
	return res, nil
}

// scalingNotes reports the 32->64 strong-scaling behavior under the
// default scheme (total should roughly halve, alltoall change less).
func scalingNotes(reps []workload.Report) []string {
	tot := map[string]map[int]float64{}
	a2a := map[string]map[int]float64{}
	for _, rep := range reps {
		if rep.Mode != collective.NoPower {
			continue
		}
		if tot[rep.App] == nil {
			tot[rep.App] = map[int]float64{}
			a2a[rep.App] = map[int]float64{}
		}
		tot[rep.App][rep.Procs] = rep.Elapsed.Seconds()
		a2a[rep.App][rep.Procs] = rep.AlltoallTime.Seconds()
	}
	var notes []string
	for _, app := range sortedKeys(tot) {
		if tot[app][64] > 0 && tot[app][32] > 0 {
			notes = append(notes, fmt.Sprintf(
				"%s: 32->64 total speedup %.2fx, alltoall ratio %.2fx",
				app, tot[app][32]/tot[app][64], a2a[app][32]/a2a[app][64]))
		}
	}
	return notes
}
