package experiments

import (
	"strconv"
	"testing"

	"pacc/internal/stats"
)

// TestAllExperimentsRunQuick executes every registered experiment at a
// small scale — the smoke test that keeps the whole registry runnable.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			res, err := spec.Run(Options{Scale: 0.05})
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != spec.ID {
				t.Fatalf("result id %q != spec id %q", res.ID, spec.ID)
			}
			if len(res.Series) == 0 && len(res.Tables) == 0 {
				t.Fatal("empty result")
			}
			if len(res.Notes) == 0 {
				t.Error("experiments should summarize themselves in Notes")
			}
		})
	}
}

func TestFig6bPowerGap(t *testing.T) {
	res := quick(t, "fig6b")
	if len(res.Series) != 2 {
		t.Fatalf("want polling+blocking series")
	}
	pollW := stats.Mean(res.Series[0].Y)
	blockW := stats.Mean(res.Series[1].Y)
	if blockW >= pollW {
		t.Fatalf("blocking mean power %.0f W not below polling %.0f W", blockW, pollW)
	}
}

func TestFig8bOrdering(t *testing.T) {
	res := quick(t, "fig8b")
	m := []float64{
		stats.Mean(res.Series[0].Y),
		stats.Mean(res.Series[1].Y),
		stats.Mean(res.Series[2].Y),
	}
	if !(m[0] > m[1] && m[1] > m[2]) {
		t.Fatalf("bcast power levels not ordered: %v", m)
	}
}

func TestTable1Shape(t *testing.T) {
	res := quick(t, "table1")
	tab := res.Tables[0]
	if len(tab.Header) != 7 { // scheme + 3 datasets x 2 proc counts
		t.Fatalf("header = %v", tab.Header)
	}
	for col := 1; col < len(tab.Header); col++ {
		def, err1 := strconv.ParseFloat(tab.Rows[0][col], 64)
		prop, err2 := strconv.ParseFloat(tab.Rows[2][col], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparsable cells: %v %v", err1, err2)
		}
		if prop >= def {
			t.Errorf("column %s: proposed %.2f not below default %.2f", tab.Header[col], prop, def)
		}
	}
}

func TestFig9And10HaveScalingNotes(t *testing.T) {
	for _, id := range []string{"fig9", "fig10"} {
		res := quick(t, id)
		if len(res.Notes) == 0 {
			t.Errorf("%s: no scaling notes", id)
		}
		if len(res.Tables[0].Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
}

func TestAblCoreThrottleOrdering(t *testing.T) {
	res := quick(t, "abl-corethrottle")
	tab := res.Tables[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(tab.Rows))
	}
	// Core-granular power must not exceed socket-level power.
	sockW, _ := strconv.ParseFloat(tab.Rows[2][2], 64)
	coreW, _ := strconv.ParseFloat(tab.Rows[3][2], 64)
	if coreW > sockW*1.01 {
		t.Errorf("core-granular %.0f W above socket-level %.0f W", coreW, sockW)
	}
}

func TestAblODVFSMonotone(t *testing.T) {
	res := quick(t, "abl-odvfs")
	sim := res.Series[0]
	if sim.Y[len(sim.Y)-1] <= sim.Y[0] {
		t.Errorf("latency should grow with transition cost: %v", sim.Y)
	}
}

func TestExtTopoRack(t *testing.T) {
	res := quick(t, "ext-toporack")
	tab := res.Tables[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("want 4 algorithm rows")
	}
	flatLat, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	topoLat, _ := strconv.ParseFloat(tab.Rows[1][1], 64)
	if topoLat >= flatLat {
		t.Errorf("topology-aware %.0f us not below flat %.0f us", topoLat, flatLat)
	}
	flatX, _ := strconv.ParseInt(tab.Rows[0][3], 10, 64)
	topoX, _ := strconv.ParseInt(tab.Rows[1][3], 10, 64)
	if topoX >= flatX {
		t.Errorf("topology-aware inter-rack bytes %d not below flat %d", topoX, flatX)
	}
	flatW, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	propW, _ := strconv.ParseFloat(tab.Rows[3][2], 64)
	if propW >= flatW {
		t.Errorf("rack-throttled power %.0f W not below default %.0f W", propW, flatW)
	}
}
