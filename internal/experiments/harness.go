package experiments

import (
	"fmt"

	"pacc/internal/collective"
	"pacc/internal/mpi"
	"pacc/internal/power"
	"pacc/internal/simtime"
)

// jobConfig builds an mpi.Config for nprocs ranks at ppn per node on a
// cluster with exactly the nodes the job needs (the paper powers and
// meters only active nodes).
func jobConfig(nprocs, ppn int) mpi.Config {
	cfg := mpi.DefaultConfig()
	cfg.NProcs = nprocs
	cfg.PPN = ppn
	cfg.Topo.Nodes = nprocs / ppn
	return cfg
}

// latencyResult is one point of a latency sweep.
type latencyResult struct {
	// TotalUs is the mean per-call completion time observed by rank 0.
	TotalUs float64
	// NetworkUs is the mean time rank 0 spent in the collective's
	// network phase (leader-based collectives only).
	NetworkUs float64
	// IntraUs is the mean intra-node phase time.
	IntraUs float64
	// MeanWatts is cluster energy over the timed region divided by its
	// duration.
	MeanWatts float64
}

// runLatency measures a collective's per-call latency OSU-style: an
// untimed warm-up call, then iters barrier-separated timed calls.
func runLatency(cfg mpi.Config, iters int, call func(c *mpi.Comm, tr *collective.Trace)) (latencyResult, error) {
	if iters < 1 {
		iters = 1
	}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return latencyResult{}, err
	}
	var tr0 *collective.Trace
	var t0, t1 simtime.Time
	var e0, e1 float64
	w.Launch(func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		tr := collective.NewTrace()
		if r.ID() == 0 {
			tr0 = tr
		}
		call(c, nil) // warm-up
		collective.Barrier(c)
		if r.ID() == 0 {
			t0 = r.Now()
			e0 = w.Station().EnergyJoules()
		}
		for i := 0; i < iters; i++ {
			call(c, tr)
			collective.Barrier(c)
		}
		if r.ID() == 0 {
			t1 = r.Now()
			e1 = w.Station().EnergyJoules()
		}
	})
	if _, err := w.Run(); err != nil {
		return latencyResult{}, err
	}
	span := t1.Sub(t0).Seconds()
	if span <= 0 {
		return latencyResult{}, fmt.Errorf("experiments: empty timed region")
	}
	res := latencyResult{
		TotalUs:   tr0.Phase(collective.PhaseTotal).Micros() / float64(iters),
		NetworkUs: tr0.Phase(collective.PhaseNetwork).Micros() / float64(iters),
		IntraUs:   tr0.Phase(collective.PhaseIntra).Micros() / float64(iters),
		MeanWatts: (e1 - e0) / span,
	}
	return res, nil
}

// runTimeline runs barrier-separated iterations of a collective while a
// 0.5 s meter samples cluster power, returning the power-vs-time series
// (the clamp-meter plots of Figures 6b, 7b, 8b).
func runTimeline(cfg mpi.Config, iters int, name string, call func(c *mpi.Comm)) (Series, error) {
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return Series{}, err
	}
	meter := power.NewMeter(w.Station(), 500*simtime.Millisecond)
	meter.Start()
	w.Launch(func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		for i := 0; i < iters; i++ {
			call(c)
			collective.Barrier(c)
		}
		if r.ID() == 0 {
			meter.Stop()
		}
	})
	if _, err := w.Run(); err != nil {
		return Series{}, err
	}
	s := Series{Name: name, XLabel: "time_s", YLabel: "watts"}
	for _, sm := range meter.Samples() {
		s.X = append(s.X, sm.At.Seconds())
		s.Y = append(s.Y, sm.Watts)
	}
	return s, nil
}

// itersForWindow estimates how many calls fill the given virtual-time
// window by measuring one call on a fresh world.
func itersForWindow(cfg mpi.Config, window simtime.Duration, call func(c *mpi.Comm)) (int, error) {
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, err
	}
	var span simtime.Duration
	w.Launch(func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		call(c) // warm-up
		collective.Barrier(c)
		start := r.Now()
		call(c)
		collective.Barrier(c)
		if r.ID() == 0 {
			span = r.Now().Sub(start)
		}
	})
	if _, err := w.Run(); err != nil {
		return 0, err
	}
	if span <= 0 {
		return 1, nil
	}
	n := int(window.Seconds() / span.Seconds())
	if n < 2 {
		n = 2
	}
	if n > 2000 {
		n = 2000
	}
	return n, nil
}

// alltoallCall builds a collective call closure for the sweep helpers.
func alltoallCall(bytes int64, mode collective.PowerMode) func(c *mpi.Comm, tr *collective.Trace) {
	return func(c *mpi.Comm, tr *collective.Trace) {
		collective.AlltoallPairwise(c, bytes, collective.Options{Power: mode, Trace: tr})
	}
}

func bcastCall(bytes int64, mode collective.PowerMode) func(c *mpi.Comm, tr *collective.Trace) {
	return func(c *mpi.Comm, tr *collective.Trace) {
		collective.Bcast(c, 0, bytes, collective.Options{Power: mode, Trace: tr})
	}
}

func reduceCall(bytes int64, mode collective.PowerMode) func(c *mpi.Comm, tr *collective.Trace) {
	return func(c *mpi.Comm, tr *collective.Trace) {
		collective.Reduce(c, 0, bytes, collective.Options{Power: mode, Trace: tr})
	}
}
