// Package experiments regenerates every figure and table of the paper's
// evaluation (Section VII), plus the ablations DESIGN.md calls out. Each
// experiment is a registered Spec producing a Result of named series
// (figures) and tables, rendered as aligned text or CSV.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Series is one curve of a figure.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Table is a rendered table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Result is the output of one experiment.
type Result struct {
	ID     string
	Title  string
	Series []Series
	Tables []Table
	Notes  []string
}

// Options tunes an experiment run.
type Options struct {
	// Scale in (0, 1] shrinks iteration counts and sweep densities for
	// quick runs (benchmarks use small scales; 1.0 reproduces the
	// paper-fidelity configuration).
	Scale float64
}

func (o Options) scale() float64 {
	if o.Scale <= 0 || o.Scale > 1 {
		return 1
	}
	return o.Scale
}

// scaledIters shrinks an iteration count, never below 1.
func (o Options) scaledIters(base int) int {
	n := int(float64(base)*o.scale() + 0.5)
	if n < 1 {
		return 1
	}
	return n
}

// scaledSizes thins a sweep: scale >= 1 keeps all points, smaller scales
// keep the endpoints and every other interior point.
func (o Options) scaledSizes(sizes []int64) []int64 {
	if o.scale() >= 0.99 || len(sizes) <= 2 {
		return sizes
	}
	out := []int64{sizes[0]}
	for i := 1; i < len(sizes)-1; i += 2 {
		out = append(out, sizes[i])
	}
	return append(out, sizes[len(sizes)-1])
}

// Spec describes a registered experiment.
type Spec struct {
	ID          string
	Title       string
	Description string
	Run         func(opt Options) (*Result, error)
}

var registry []Spec

// canonicalOrder presents experiments in the paper's order regardless of
// which file's init() registered them first.
var canonicalOrder = []string{
	"fig2a", "fig2b", "fig2c",
	"fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b",
	"fig9", "table1", "fig10", "table2",
	"abl-corethrottle", "abl-tstates", "abl-odvfs", "abl-sensitivity", "abl-blackbox",
	"ext-toporack", "ext-netpower", "ext-p2ppower",
}

func register(s Spec) {
	registry = append(registry, s)
}

func orderOf(id string) int {
	for i, c := range canonicalOrder {
		if c == id {
			return i
		}
	}
	return len(canonicalOrder)
}

// All returns the experiments in the paper's presentation order.
func All() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		oi, oj := orderOf(out[i].ID), orderOf(out[j].ID)
		if oi != oj {
			return oi < oj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// IDs lists all experiment ids.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, s := range registry {
		ids[i] = s.ID
	}
	return ids
}

// Lookup finds an experiment by id.
func Lookup(id string) (Spec, bool) {
	for _, s := range registry {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// Render writes the result as aligned text.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, s := range r.Series {
		fmt.Fprintf(w, "\n-- %s --\n", s.Name)
		fmt.Fprintf(w, "%-14s %-14s\n", s.XLabel, s.YLabel)
		for i := range s.X {
			fmt.Fprintf(w, "%-14.6g %-14.6g\n", s.X[i], s.Y[i])
		}
	}
	for _, t := range r.Tables {
		fmt.Fprintf(w, "\n-- %s --\n", t.Title)
		widths := make([]int, len(t.Header))
		for i, h := range t.Header {
			widths[i] = len(h)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		line := func(cells []string) {
			parts := make([]string, len(cells))
			for i, cell := range cells {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			}
			fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		}
		line(t.Header)
		for _, row := range t.Rows {
			line(row)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "\nnote: %s\n", n)
	}
}

// WriteCSV writes one CSV file per series/table into dir.
func (r *Result) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	for _, s := range r.Series {
		name := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", r.ID, sanitize(s.Name)))
		var b strings.Builder
		fmt.Fprintf(&b, "%s,%s\n", esc(s.XLabel), esc(s.YLabel))
		for i := range s.X {
			fmt.Fprintf(&b, "%g,%g\n", s.X[i], s.Y[i])
		}
		if err := os.WriteFile(name, []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	for ti, t := range r.Tables {
		name := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", r.ID, ti+1))
		var b strings.Builder
		cells := make([]string, len(t.Header))
		for i, h := range t.Header {
			cells[i] = esc(h)
		}
		b.WriteString(strings.Join(cells, ",") + "\n")
		for _, row := range t.Rows {
			rc := make([]string, len(row))
			for i, c := range row {
				rc[i] = esc(c)
			}
			b.WriteString(strings.Join(rc, ",") + "\n")
		}
		if err := os.WriteFile(name, []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// sortedKeys is a helper for deterministic map iteration in reports.
func sortedKeys[K ~string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
