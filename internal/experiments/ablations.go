package experiments

import (
	"fmt"

	"pacc/internal/collective"
	"pacc/internal/model"
	"pacc/internal/mpi"
	"pacc/internal/power"
	"pacc/internal/simtime"
	"pacc/internal/stats"
)

func init() {
	register(Spec{
		ID:          "abl-corethrottle",
		Title:       "Ablation: socket-level vs core-level throttling (Bcast, 64 procs)",
		Description: "The §V-B prediction that core-granular T-states would save more power with less overhead.",
		Run:         runAblCoreThrottle,
	})
	register(Spec{
		ID:          "abl-tstates",
		Title:       "Ablation: throttle depth vs latency and power (Alltoall, 64 procs)",
		Description: "Sweeping the deep-throttle level T1..T7 used for inactive socket groups.",
		Run:         runAblTStates,
	})
	register(Spec{
		ID:          "abl-odvfs",
		Title:       "Ablation: DVFS/throttle transition cost sensitivity (eq 3)",
		Description: "Proposed alltoall latency as transition costs grow, against the eq (3) overhead term.",
		Run:         runAblODVFS,
	})
}

func runAblCoreThrottle(opt Options) (*Result, error) {
	const bytes = 1 << 20
	iters := opt.scaledIters(4)
	res := &Result{ID: "abl-corethrottle", Title: "Socket vs core granular throttling"}
	t := Table{
		Title:  "Bcast 1MB, 64 procs",
		Header: []string{"scheme", "latency_us", "mean_watts"},
	}
	cases := []struct {
		name string
		opts collective.Options
	}{
		{"no-power", collective.Options{}},
		{"freq-scaling", collective.Options{Power: collective.FreqScaling}},
		{"proposed socket-level", collective.Options{Power: collective.Proposed}},
		{"proposed core-granular", collective.Options{Power: collective.Proposed, CoreGranularThrottle: true}},
	}
	var lat []float64
	var watts []float64
	for _, cse := range cases {
		o := cse.opts
		r, err := runLatency(jobConfig(64, 8), iters, func(c *mpi.Comm, tr *collective.Trace) {
			o2 := o
			o2.Trace = tr
			collective.Bcast(c, 0, bytes, o2)
		})
		if err != nil {
			return nil, err
		}
		lat = append(lat, r.TotalUs)
		watts = append(watts, r.MeanWatts)
		t.Rows = append(t.Rows, []string{
			cse.name,
			fmt.Sprintf("%.1f", r.TotalUs),
			fmt.Sprintf("%.0f", r.MeanWatts),
		})
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"core-granular vs socket-level: latency %+.1f%%, power %+.1f%% (§V-B predicts both non-positive)",
		stats.PercentDelta(lat[2], lat[3]), stats.PercentDelta(watts[2], watts[3])))
	return res, nil
}

func runAblTStates(opt Options) (*Result, error) {
	const bytes = 256 << 10
	iters := opt.scaledIters(3)
	res := &Result{ID: "abl-tstates", Title: "Throttle depth sweep (Alltoall proposed)"}
	latS := Series{Name: "latency", XLabel: "t_state", YLabel: "latency_us"}
	powS := Series{Name: "mean-power", XLabel: "t_state", YLabel: "watts"}
	for ts := power.T1; ts <= power.T7; ts++ {
		deep := ts
		r, err := runLatency(jobConfig(64, 8), iters, func(c *mpi.Comm, tr *collective.Trace) {
			collective.AlltoallPairwise(c, bytes, collective.Options{
				Power:        collective.Proposed,
				DeepThrottle: deep,
				Trace:        tr,
			})
		})
		if err != nil {
			return nil, err
		}
		latS.X = append(latS.X, float64(ts))
		latS.Y = append(latS.Y, r.TotalUs)
		powS.X = append(powS.X, float64(ts))
		powS.Y = append(powS.Y, r.MeanWatts)
	}
	res.Series = []Series{latS, powS}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"T1 -> T7: power falls %.0f -> %.0f W; deeper throttling of idle groups costs no extra latency by design",
		powS.Y[0], powS.Y[len(powS.Y)-1]))
	return res, nil
}

func runAblODVFS(opt Options) (*Result, error) {
	const bytes = 256 << 10
	iters := opt.scaledIters(2)
	res := &Result{ID: "abl-odvfs", Title: "Transition-cost sensitivity of the proposed alltoall"}
	sim := Series{Name: "simulated", XLabel: "transition_us", YLabel: "latency_us"}
	pred := Series{Name: "eq3-overhead", XLabel: "transition_us", YLabel: "latency_us"}
	var base float64
	for _, us := range []float64{0, 5, 10, 20, 50, 100} {
		cfg := jobConfig(64, 8)
		pm := *cfg.Power
		pm.ODVFS = simtime.Micros(us)
		pm.OThrottle = simtime.Micros(us)
		cfg.Power = &pm
		r, err := runLatency(cfg, iters, alltoallCall(bytes, collective.Proposed))
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = r.TotalUs
		}
		par := model.FromConfig(cfg)
		// eq (3) overhead term: 2*Odvfs + N*Othrottle over the zero-
		// cost baseline.
		overhead := (2*par.ODVFS + 8*par.OThrottle) * 1e6
		sim.X = append(sim.X, us)
		sim.Y = append(sim.Y, r.TotalUs)
		pred.X = append(pred.X, us)
		pred.Y = append(pred.Y, base+overhead)
	}
	res.Series = []Series{sim, pred}
	res.Notes = append(res.Notes,
		"eq (3) predicts overhead linear in the transition cost with slope ~(2+N); the simulated curve should track it")
	return res, nil
}
