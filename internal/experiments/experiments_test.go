package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pacc/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2a", "fig2b", "fig2c", "fig6a", "fig6b",
		"fig7a", "fig7b", "fig8a", "fig8b",
		"fig9", "table1", "fig10", "table2",
		"abl-corethrottle", "abl-tstates", "abl-odvfs",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d specs, want >= %d", len(All()), len(want))
	}
	for _, s := range All() {
		if s.Title == "" || s.Description == "" || s.Run == nil {
			t.Errorf("spec %q incomplete", s.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig2a"); !ok {
		t.Error("fig2a not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{}
	if o.scale() != 1 {
		t.Error("zero scale should default to 1")
	}
	o = Options{Scale: 0.25}
	if got := o.scaledIters(8); got != 2 {
		t.Errorf("scaledIters(8) at 0.25 = %d", got)
	}
	if got := o.scaledIters(1); got != 1 {
		t.Errorf("scaledIters floor broken: %d", got)
	}
	sizes := []int64{1, 2, 3, 4, 5, 6}
	thinned := o.scaledSizes(sizes)
	if thinned[0] != 1 || thinned[len(thinned)-1] != 6 {
		t.Errorf("scaledSizes must keep endpoints, got %v", thinned)
	}
	if len(thinned) >= len(sizes) {
		t.Errorf("scaledSizes did not thin: %v", thinned)
	}
	full := Options{Scale: 1}
	if got := full.scaledSizes(sizes); len(got) != len(sizes) {
		t.Errorf("scale 1 must keep all sizes")
	}
}

// quick runs an experiment at a small scale and sanity-checks the result.
func quick(t *testing.T, id string) *Result {
	t.Helper()
	spec, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q missing", id)
	}
	res, err := spec.Run(Options{Scale: 0.05})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("%s: result id %q", id, res.ID)
	}
	if len(res.Series) == 0 && len(res.Tables) == 0 {
		t.Fatalf("%s: empty result", id)
	}
	return res
}

func TestFig2aShape(t *testing.T) {
	res := quick(t, "fig2a")
	if len(res.Series) != 3 {
		t.Fatalf("want 3 series, got %d", len(res.Series))
	}
	s4, s8 := res.Series[0], res.Series[1]
	last := len(s4.Y) - 1
	if !(s8.Y[last] > s4.Y[last]) {
		t.Errorf("8-way (%v us) not slower than 4-way (%v us) at largest size", s8.Y[last], s4.Y[last])
	}
	// Latency must grow with message size.
	if !(s4.Y[last] > s4.Y[0]) {
		t.Error("4-way latency not increasing with size")
	}
}

func TestFig2bShape(t *testing.T) {
	res := quick(t, "fig2b")
	total, network := res.Series[0], res.Series[1]
	last := len(total.Y) - 1
	if network.Y[last] >= total.Y[last] {
		t.Error("network phase exceeds total")
	}
	if network.Y[last] < 0.5*total.Y[last] {
		t.Errorf("network phase %.0f us should dominate total %.0f us", network.Y[last], total.Y[last])
	}
}

func TestFig6aShape(t *testing.T) {
	res := quick(t, "fig6a")
	poll, block := res.Series[0], res.Series[1]
	for i := range poll.Y {
		if block.Y[i] <= poll.Y[i] {
			t.Errorf("size %v: blocking (%v) not slower than polling (%v)", poll.X[i], block.Y[i], poll.Y[i])
		}
	}
}

func TestFig7aShape(t *testing.T) {
	res := quick(t, "fig7a")
	noP, _, prop := res.Series[0], res.Series[1], res.Series[2]
	last := len(noP.Y) - 1
	overhead := stats.PercentDelta(noP.Y[last], prop.Y[last])
	if overhead < 0 || overhead > 30 {
		t.Errorf("proposed overhead %.1f%% outside [0, 30] (paper: ~10%%)", overhead)
	}
}

func TestFig7bShape(t *testing.T) {
	res := quick(t, "fig7b")
	if len(res.Series) != 3 {
		t.Fatalf("want 3 series")
	}
	means := make([]float64, 3)
	for i, s := range res.Series {
		means[i] = stats.Mean(s.Y)
	}
	if !(means[0] > means[1] && means[1] > means[2]) {
		t.Errorf("power levels not ordered: %.0f / %.0f / %.0f W", means[0], means[1], means[2])
	}
}

func TestTable2Shape(t *testing.T) {
	res := quick(t, "table2")
	tab := res.Tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 scheme rows, got %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "Default (No-Power)" || tab.Rows[2][0] != "Proposed" {
		t.Errorf("row labels: %v", [2]string{tab.Rows[0][0], tab.Rows[2][0]})
	}
	// Energy in every column must be ordered Default > Proposed.
	for col := 1; col < len(tab.Header); col++ {
		var def, prop float64
		if _, err := sscan(tab.Rows[0][col], &def); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(tab.Rows[2][col], &prop); err != nil {
			t.Fatal(err)
		}
		if prop >= def {
			t.Errorf("column %s: proposed %.3f not below default %.3f", tab.Header[col], prop, def)
		}
	}
}

func TestAblTStatesShape(t *testing.T) {
	res := quick(t, "abl-tstates")
	powS := res.Series[1]
	if !(powS.Y[len(powS.Y)-1] < powS.Y[0]) {
		t.Errorf("deeper throttle should reduce power: %v", powS.Y)
	}
}

func TestRenderAndCSV(t *testing.T) {
	res := quick(t, "fig2c")
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "fig2c") || !strings.Contains(out, "Network-phase") {
		t.Errorf("render output missing content:\n%s", out)
	}
	dir := t.TempDir()
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "fig2c_*.csv"))
	if err != nil || len(files) < 2 {
		t.Fatalf("expected csv files, got %v (%v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ",") {
		t.Error("csv has no separators")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("Alltoall-4way X"); got != "alltoall_4way_x" {
		t.Errorf("sanitize = %q", got)
	}
}

// sscan parses a float cell.
func sscan(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}
