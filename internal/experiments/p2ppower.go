package experiments

import (
	"fmt"

	"pacc/internal/mpi"
	"pacc/internal/simtime"
	"pacc/internal/stats"
)

func init() {
	register(Spec{
		ID:    "ext-p2ppower",
		Title: "Extension: power-aware intra-node point-to-point (§VIII)",
		Description: "A skewed producer/consumer pipeline inside each node: consumers wait on " +
			"large shared-memory rendezvous messages, with and without core-granular DVFS " +
			"around the wait.",
		Run: runExtP2PPower,
	})
}

func runExtP2PPower(opt Options) (*Result, error) {
	iters := opt.scaledIters(20)
	const bytes = 1 << 20
	res := &Result{ID: "ext-p2ppower", Title: "Power-aware intra-node point-to-point"}
	t := Table{
		Title:  fmt.Sprintf("%d iterations: producers compute 5 ms, consumers await a 1 MB shm rendezvous", iters),
		Header: []string{"p2p power mode", "total_s", "energy_J", "mean_watts"},
	}
	var base, managed float64
	for _, enabled := range []bool{false, true} {
		cfg := jobConfig(64, 8)
		cfg.PowerAwareP2P = enabled
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			return nil, err
		}
		w.Launch(func(r *mpi.Rank) {
			// Even local ranks produce for their odd neighbor.
			buddy := r.ID() ^ 1
			producer := r.ID()%2 == 0
			for k := 0; k < iters; k++ {
				if producer {
					r.Compute(5 * simtime.Millisecond)
					r.Send(buddy, bytes, k)
				} else {
					// Consumers do light post-processing, so most
					// of their time is spent waiting.
					r.Recv(buddy, bytes, k)
					r.Compute(simtime.Millisecond)
				}
			}
		})
		elapsed, err := w.Run()
		if err != nil {
			return nil, err
		}
		e := w.Station().EnergyJoules()
		if !enabled {
			base = e
		} else {
			managed = e
		}
		name := "off (spin at fmax)"
		if enabled {
			name = "on (wait at fmin, core-granular DVFS)"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.4f", elapsed.Seconds()),
			fmt.Sprintf("%.1f", e),
			fmt.Sprintf("%.0f", e/elapsed.Seconds()),
		})
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"core-granular DVFS around intra-node rendezvous waits saves %.1f%% energy on this pipeline",
		-stats.PercentDelta(base, managed)))
	return res, nil
}
