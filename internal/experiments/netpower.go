package experiments

import (
	"fmt"

	"pacc/internal/collective"
	"pacc/internal/mpi"
	"pacc/internal/network"
	"pacc/internal/simtime"
)

func init() {
	register(Spec{
		ID:    "ext-netpower",
		Title: "Extension: dynamic InfiniBand link power management (§VIII)",
		Description: "A bursty compute/alltoall loop with per-port power accounting: " +
			"always-on links vs dynamic sleep states with wake latency.",
		Run: runExtNetPower,
	})
}

func runExtNetPower(opt Options) (*Result, error) {
	iters := opt.scaledIters(20)
	res := &Result{ID: "ext-netpower", Title: "Dynamic link power on a bursty workload (64 procs)"}
	t := Table{
		Title: fmt.Sprintf("%d iterations of [5 ms compute + 64 KB alltoall]", iters),
		Header: []string{"link management", "total_s", "net_energy_J",
			"net_mean_watts", "overhead_pct"},
	}
	type cse struct {
		name       string
		sleepAfter simtime.Duration
	}
	cases := []cse{
		{"always-on", 0},
		{"sleep after 1 ms", simtime.Millisecond},
		{"sleep after 100 us", 100 * simtime.Microsecond},
	}
	var baseT, baseE float64
	var managedE float64
	for i, cs := range cases {
		cfg := jobConfig(64, 8)
		cfg.Net.LinkPower = network.DefaultLinkPower()
		cfg.Net.LinkPower.SleepAfter = cs.sleepAfter
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			return nil, err
		}
		w.Launch(func(r *mpi.Rank) {
			c := mpi.CommWorld(r)
			for k := 0; k < iters; k++ {
				r.Compute(5 * simtime.Millisecond)
				collective.Alltoall(c, 64<<10, collective.Options{})
			}
		})
		elapsed, err := w.Run()
		if err != nil {
			return nil, err
		}
		netJ := w.Fabric().NetworkEnergyJoules()
		if i == 0 {
			baseT, baseE = elapsed.Seconds(), netJ
		}
		if i == len(cases)-1 {
			managedE = netJ
		}
		t.Rows = append(t.Rows, []string{
			cs.name,
			fmt.Sprintf("%.4f", elapsed.Seconds()),
			fmt.Sprintf("%.2f", netJ),
			fmt.Sprintf("%.1f", netJ/elapsed.Seconds()),
			fmt.Sprintf("%.2f", 100*(elapsed.Seconds()/baseT-1)),
		})
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"dynamic link sleep saves %.0f%% of network energy on this duty cycle, at the cost of wake latencies",
		100*(1-managedE/baseE)))
	return res, nil
}
