// Package network simulates an InfiniBand-style fabric at flow level.
//
// Every node owns one full-duplex link (an uplink and a downlink) into a
// non-blocking crossbar switch, the topology of the paper's testbed (eight
// nodes on one Mellanox QDR switch). A message transfer is a fluid flow
// that crosses the sender's uplink and the receiver's downlink; bandwidth
// on each link is divided among concurrent flows by max-min fairness and
// recomputed whenever a flow starts or finishes. Link sharing is what
// produces the paper's network-contention effects (the Cnet term and the
// 4-way vs 8-way gap of Figure 2a) endogenously.
package network

import (
	"fmt"
	"math"
	"os"

	"pacc/internal/obs"
	"pacc/internal/simtime"
)

// Config holds fabric calibration.
type Config struct {
	// LinkBytesPerSec is the usable bandwidth of one link direction.
	// InfiniBand QDR signals 40 Gbit/s; after 8b/10b coding and
	// protocol overhead ~3.2 GB/s reaches MPI payloads.
	LinkBytesPerSec float64
	// BaseLatency is the end-to-end propagation + switch latency added
	// to every transfer after its last byte is injected.
	BaseLatency simtime.Duration
	// LoopbackBytesPerSec is the bandwidth of the HCA loopback path used
	// for intra-node traffic when shared memory is unavailable
	// (blocking-mode progression falls back to it, §II-B).
	LoopbackBytesPerSec float64
	// NodesPerRack, when positive, groups nodes into racks behind leaf
	// switches: traffic between racks additionally crosses the source
	// rack's uplink and the destination rack's downlink into the spine.
	// Zero models the paper's single-switch testbed.
	NodesPerRack int
	// RackUplinkBytesPerSec is the capacity of each rack's link to the
	// spine (typically oversubscribed relative to node links). Required
	// when NodesPerRack > 0.
	RackUplinkBytesPerSec float64
	// LinkPower enables per-port power accounting and (optionally)
	// dynamic link sleep states. The zero value disables it.
	LinkPower LinkPowerConfig
}

// DefaultConfig returns QDR-calibrated parameters.
func DefaultConfig() Config {
	return Config{
		LinkBytesPerSec:     3.2e9,
		BaseLatency:         simtime.Micros(1.5),
		LoopbackBytesPerSec: 2.0e9,
	}
}

// Validate rejects non-positive bandwidths and negative latency.
func (c Config) Validate() error {
	if c.LinkBytesPerSec <= 0 {
		return fmt.Errorf("network: LinkBytesPerSec must be positive, got %g", c.LinkBytesPerSec)
	}
	if c.LoopbackBytesPerSec <= 0 {
		return fmt.Errorf("network: LoopbackBytesPerSec must be positive, got %g", c.LoopbackBytesPerSec)
	}
	if c.BaseLatency < 0 {
		return fmt.Errorf("network: negative BaseLatency")
	}
	if c.NodesPerRack < 0 {
		return fmt.Errorf("network: negative NodesPerRack")
	}
	if c.NodesPerRack > 0 && c.RackUplinkBytesPerSec <= 0 {
		return fmt.Errorf("network: NodesPerRack set but RackUplinkBytesPerSec is %g",
			c.RackUplinkBytesPerSec)
	}
	return c.LinkPower.Validate()
}

// link is one direction of a node's connection to the switch (or a node's
// loopback path).
type link struct {
	name string
	cap  float64 // current bytes/sec: baseCap * adminFactor
	// baseCap is the healthy capacity; adminFactor in [0,1] scales it
	// while a scheduled fault window is open (0 = link down).
	baseCap     float64
	adminFactor float64
	// downUntil is when the current down window (adminFactor == 0) is
	// scheduled to end; sends routed over a down link requeue until then.
	downUntil simtime.Time
	// faults holds the currently-open fault windows of the link.
	// Overlapping windows compose: the effective adminFactor is the
	// minimum over open windows, and a window closing restores the
	// remaining minimum, not blindly 1.
	faults []faultWindow
	// bytes counts payload delivered over this link (per-link
	// utilization accounting).
	bytes int64
	// flows lists every active flow crossing this link, with each
	// entry recording which hop of the flow's path this link is (so a
	// swap-remove can fix the moved flow's back-pointer in O(1)). This
	// is what makes the fair-share solve incremental: the connected
	// component around a changed flow is discoverable by walking
	// link→flows→links instead of scanning the whole fabric.
	flows []linkFlow
	// scratch used during max-min recomputation
	residual float64
	active   int
	// mark is the visited stamp for component walks (compared against
	// Fabric.markGen, so no per-walk clearing pass is needed).
	mark uint64
	// ord is the link's construction index. Water-filling breaks
	// exact fair-share ties by ord, which makes the solve a pure
	// function of the flow/link set — the incremental (component) and
	// full solves then agree bit for bit even when their link lists
	// are ordered differently.
	ord int32
	// obsActive/obsSince track busy intervals (≥1 flow on the link) for
	// the observability bus; only maintained while a bus is attached.
	obsActive int
	obsSince  simtime.Time
}

// linkFlow is one link's record of a crossing flow: the flow plus the
// index of this link within the flow's path (flow.linkPos[li] is the
// entry's position in link.flows).
type linkFlow struct {
	fl *Flow
	li int32
}

func newLink(name string, cap float64) *link {
	return &link{name: name, cap: cap, baseCap: cap, adminFactor: 1}
}

// maxPathLinks is the longest route in any supported topology: node
// uplink, rack uplink, rack downlink, node downlink. Keeping the path
// inline in Flow (instead of a heap slice) makes flow injection
// allocation-light.
const maxPathLinks = 4

// Flow is one in-flight transfer.
type Flow struct {
	Src, Dst  int // node indices
	Bytes     int64
	id        uint64
	remaining float64
	rate      float64
	// linkv[:nlinks] is the path, inline to avoid a per-flow slice.
	linkv  [maxPathLinks]*link
	nlinks int32
	// idx is this flow's position in Fabric.flows; linkPos[i] is its
	// position in linkv[i].flows. Both enable O(1) swap-removal.
	idx     int32
	linkPos [maxPathLinks]int32
	// mark/frozen are solver scratch: visited stamp for component
	// walks, frozen flag during water-filling.
	mark    uint64
	frozen  bool
	done    *simtime.Future
	started simtime.Time
	// obsEnd closes the flow's trace span and link-busy intervals; nil
	// when observability is off.
	obsEnd func()
}

// path returns the links the flow crosses, in route order.
func (fl *Flow) path() []*link { return fl.linkv[:fl.nlinks] }

// Done returns a future completed when the last byte has arrived at the
// destination (including BaseLatency).
func (fl *Flow) Done() *simtime.Future { return fl.done }

// StartedAt reports when the flow was injected.
func (fl *Flow) StartedAt() simtime.Time { return fl.started }

// Fabric is the switch plus all node links.
type Fabric struct {
	eng      *simtime.Engine
	cfg      Config
	nodes    int
	up       []*link
	down     []*link
	loop     []*link
	rackUp   []*link
	rackDown []*link
	// flows holds every active flow; Flow.idx is its position here, so
	// removal is a swap. Iteration order is insertion order perturbed
	// by swap-removes — everything order-sensitive downstream (the
	// completion sweep) re-sorts by flow id.
	flows  []*Flow
	nextID uint64
	// gen invalidates stale completion events after a recompute.
	gen        uint64
	lastUpdate simtime.Time
	// markGen stamps link/flow visited marks for component walks.
	markGen uint64
	// compLinks/compFlows are the reusable work lists of the current
	// component walk; finished is the completion-sweep scratch.
	compLinks []*link
	compFlows []*Flow
	finished  []*Flow
	// checkIncremental, when set, re-solves the whole fabric after
	// every incremental solve and fails the run on any rate mismatch —
	// the proof harness that component-scoped water-filling equals the
	// full solve bit for bit. checkRates is its scratch.
	checkIncremental bool
	checkRates       []float64
	// BytesMoved counts payload bytes fully delivered, for throughput
	// accounting and tests.
	bytesMoved int64
	// np tracks per-port power when Config.LinkPower is enabled.
	np *netPower
	// obs, when non-nil, receives flow spans and link-utilization
	// metrics.
	obs *obs.Bus
}

// NewFabric builds a fabric for the given node count.
func NewFabric(eng *simtime.Engine, nodes int, cfg Config) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("network: nodes must be positive, got %d", nodes)
	}
	f := &Fabric{
		eng:   eng,
		cfg:   cfg,
		nodes: nodes,
	}
	if os.Getenv("PACC_CHECK_INCREMENTAL") == "1" {
		f.checkIncremental = true
	}
	for n := 0; n < nodes; n++ {
		f.up = append(f.up, newLink(fmt.Sprintf("node%d-up", n), cfg.LinkBytesPerSec))
		f.down = append(f.down, newLink(fmt.Sprintf("node%d-down", n), cfg.LinkBytesPerSec))
		f.loop = append(f.loop, newLink(fmt.Sprintf("node%d-loop", n), cfg.LoopbackBytesPerSec))
	}
	if cfg.NodesPerRack > 0 {
		racks := (nodes + cfg.NodesPerRack - 1) / cfg.NodesPerRack
		for rk := 0; rk < racks; rk++ {
			f.rackUp = append(f.rackUp,
				newLink(fmt.Sprintf("rack%d-up", rk), cfg.RackUplinkBytesPerSec))
			f.rackDown = append(f.rackDown,
				newLink(fmt.Sprintf("rack%d-down", rk), cfg.RackUplinkBytesPerSec))
		}
	}
	if cfg.LinkPower.Enabled() {
		var ports []*link
		ports = append(ports, f.up...)
		ports = append(ports, f.down...)
		ports = append(ports, f.rackUp...)
		ports = append(ports, f.rackDown...)
		f.np = newNetPower(eng, cfg.LinkPower, ports)
	}
	for i, l := range f.allLinks() {
		l.ord = int32(i)
	}
	return f, nil
}

// SetObs attaches the observability bus (nil detaches). Attach before
// any traffic starts, or link busy-time accounting will miss the open
// intervals of in-flight flows.
func (f *Fabric) SetObs(b *obs.Bus) { f.obs = b }

// obsLinkStart marks one more flow on each link, opening a busy interval
// on links going 0→1. Callers guard on f.obs != nil.
func (f *Fabric) obsLinkStart(links []*link) {
	now := f.eng.Now()
	for _, l := range links {
		if l.obsActive == 0 {
			l.obsSince = now
		}
		l.obsActive++
	}
}

// obsLinkEnd removes one flow from each link, accruing the busy interval
// of links going 1→0 into the per-link metric.
func (f *Fabric) obsLinkEnd(links []*link) {
	now := f.eng.Now()
	for _, l := range links {
		l.obsActive--
		if l.obsActive == 0 {
			f.obs.AddDuration(obs.DurLinkBusyPrefix+l.name, now.Sub(l.obsSince))
		}
	}
}

// NetworkWatts reports the instantaneous draw of all ports (0 when link
// power accounting is disabled).
func (f *Fabric) NetworkWatts() float64 {
	if f.np == nil {
		return 0
	}
	return f.np.watts()
}

// NetworkEnergyJoules reports total port energy consumed so far.
func (f *Fabric) NetworkEnergyJoules() float64 {
	if f.np == nil {
		return 0
	}
	return f.np.energy()
}

// SleepingPorts counts ports currently in the low-power state.
func (f *Fabric) SleepingPorts() int {
	if f.np == nil {
		return 0
	}
	return f.np.sleeping()
}

// RackOf returns the rack index of a node (0 when racks are disabled).
func (f *Fabric) RackOf(node int) int {
	if f.cfg.NodesPerRack <= 0 {
		return 0
	}
	return node / f.cfg.NodesPerRack
}

// NumRacks returns the rack count (1 when racks are disabled).
func (f *Fabric) NumRacks() int {
	if f.cfg.NodesPerRack <= 0 {
		return 1
	}
	return len(f.rackUp)
}

// InterRackBytes reports payload bytes that crossed rack uplinks (0 when
// racks are disabled). A topology-aware collective should minimize this.
func (f *Fabric) InterRackBytes() int64 {
	var total int64
	for _, l := range f.rackUp {
		total += l.bytes
	}
	return total
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// SetCheckIncremental toggles the incremental-solver proof harness: when
// on, every component-scoped rate solve is followed by a full-fabric
// solve and any exact-rate mismatch fails the run with an
// IncrementalMismatchError. Also enabled by PACC_CHECK_INCREMENTAL=1 in
// the environment. Expensive; meant for tests and debugging.
func (f *Fabric) SetCheckIncremental(on bool) { f.checkIncremental = on }

// NumNodes returns the number of attached nodes.
func (f *Fabric) NumNodes() int { return f.nodes }

// ActiveFlows reports the number of in-flight transfers.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }

// BytesMoved reports total payload bytes delivered so far.
func (f *Fabric) BytesMoved() int64 { return f.bytesMoved }

// StartFlow injects a transfer of the given size from src to dst node.
// src == dst uses the loopback path. A zero-byte flow completes after
// BaseLatency. The returned flow's Done future fires on delivery.
func (f *Fabric) StartFlow(src, dst int, bytes int64) *Flow {
	if src < 0 || src >= f.nodes || dst < 0 || dst >= f.nodes {
		panic(fmt.Sprintf("network: flow endpoints %d->%d outside [0,%d)", src, dst, f.nodes))
	}
	if bytes < 0 {
		panic(fmt.Sprintf("network: negative flow size %d", bytes))
	}
	f.nextID++
	fl := &Flow{
		Src:       src,
		Dst:       dst,
		Bytes:     bytes,
		id:        f.nextID,
		remaining: float64(bytes),
		done:      simtime.NewFuture(f.eng),
		started:   f.eng.Now(),
	}
	f.routeInto(fl)
	if b := f.obs; b != nil {
		b.Add(obs.CtrNetFlows, 1)
		b.Add(obs.CtrNetFlowBytes, bytes)
		track := obs.NetTrack(src)
		name := fmt.Sprintf("flow %s %d→%d", obs.SizeLabel(bytes), src, dst)
		id := b.AsyncBegin(track, "net", name, nil)
		f.obsLinkStart(fl.path())
		fl.obsEnd = func() {
			f.obsLinkEnd(fl.path())
			b.AsyncEnd(track, "net", name, id)
		}
	}
	if bytes == 0 {
		delay := f.cfg.BaseLatency
		if f.np != nil {
			// A control message keeps its ports lit (and wakes
			// sleeping ones).
			delay += f.np.wakeDelay(fl.path())
			f.np.flowAdded(fl.path())
			f.eng.After(delay, func() { f.np.flowRemoved(fl.path()) })
		}
		if fl.obsEnd != nil {
			f.eng.After(delay, fl.obsEnd)
		}
		f.eng.CompleteAfter(delay, fl.done)
		return fl
	}
	if f.np != nil {
		if d := f.np.wakeDelay(fl.path()); d > 0 {
			f.eng.After(d, func() { f.startNow(fl) })
			return fl
		}
	}
	f.startNow(fl)
	return fl
}

// startNow injects a routed flow into the active set and re-solves the
// connected component it touches — only that component's max-min rates
// can change, so the rest of the fabric keeps its rates untouched.
func (f *Fabric) startNow(fl *Flow) {
	f.advance()
	f.addFlow(fl)
	if f.np != nil {
		f.np.flowAdded(fl.path())
	}
	f.beginWalk()
	f.seedLinks(fl.path())
	f.solveComponent()
	f.armNext()
}

// routeInto fills fl's path for its src→dst pair.
func (f *Fabric) routeInto(fl *Flow) {
	src, dst := fl.Src, fl.Dst
	switch {
	case src == dst:
		fl.linkv[0] = f.loop[src]
		fl.nlinks = 1
	case f.cfg.NodesPerRack > 0 && f.RackOf(src) != f.RackOf(dst):
		fl.linkv[0] = f.up[src]
		fl.linkv[1] = f.rackUp[f.RackOf(src)]
		fl.linkv[2] = f.rackDown[f.RackOf(dst)]
		fl.linkv[3] = f.down[dst]
		fl.nlinks = 4
	default:
		fl.linkv[0] = f.up[src]
		fl.linkv[1] = f.down[dst]
		fl.nlinks = 2
	}
}

// route returns the links a src→dst transfer crosses (allocating; used
// by path queries, not the flow hot path).
func (f *Fabric) route(src, dst int) []*link {
	var fl Flow
	fl.Src, fl.Dst = src, dst
	f.routeInto(&fl)
	links := make([]*link, fl.nlinks)
	copy(links, fl.path())
	return links
}

// addFlow registers fl in the fabric-wide and per-link flow lists.
func (f *Fabric) addFlow(fl *Flow) {
	fl.idx = int32(len(f.flows))
	f.flows = append(f.flows, fl)
	for i, l := range fl.path() {
		fl.linkPos[i] = int32(len(l.flows))
		l.flows = append(l.flows, linkFlow{fl: fl, li: int32(i)})
	}
}

// removeFlow unregisters fl with O(1) swap-removes, fixing the moved
// entries' back-pointers.
func (f *Fabric) removeFlow(fl *Flow) {
	last := len(f.flows) - 1
	moved := f.flows[last]
	f.flows[fl.idx] = moved
	moved.idx = fl.idx
	f.flows[last] = nil
	f.flows = f.flows[:last]
	for i, l := range fl.path() {
		pos := fl.linkPos[i]
		lend := len(l.flows) - 1
		entry := l.flows[lend]
		l.flows[pos] = entry
		entry.fl.linkPos[entry.li] = pos
		l.flows[lend] = linkFlow{}
		l.flows = l.flows[:lend]
	}
}

// advance drains bytes from all active flows at their current rates for
// the interval since the last update.
func (f *Fabric) advance() {
	now := f.eng.Now()
	dt := now.Sub(f.lastUpdate).Seconds()
	if dt > 0 {
		for _, fl := range f.flows {
			fl.remaining -= fl.rate * dt
			if fl.remaining < 0 {
				fl.remaining = 0
			}
		}
	}
	f.lastUpdate = now
}

// beginWalk starts a new component walk: bumps the visited stamp and
// resets the reusable work lists.
func (f *Fabric) beginWalk() {
	f.markGen++
	f.compLinks = f.compLinks[:0]
	f.compFlows = f.compFlows[:0]
}

// seedLinks marks the given links as walk roots.
func (f *Fabric) seedLinks(links []*link) {
	g := f.markGen
	for _, l := range links {
		if l.mark != g {
			l.mark = g
			f.compLinks = append(f.compLinks, l)
		}
	}
}

// solveComponent expands the seeded links into their full connected
// component(s) — links joined transitively by shared flows — and
// water-fills just those flows. Flows outside the component cannot have
// their max-min rates change (the solve is separable per component, and
// within a component the freeze rounds subtract identical shares in
// every order), so leaving them untouched is exact, not approximate.
// When checkIncremental is set, a full-fabric solve follows and any
// rate difference fails the run.
func (f *Fabric) solveComponent() {
	g := f.markGen
	for i := 0; i < len(f.compLinks); i++ {
		l := f.compLinks[i]
		for _, e := range l.flows {
			fl := e.fl
			if fl.mark == g {
				continue
			}
			fl.mark = g
			f.compFlows = append(f.compFlows, fl)
			for _, l2 := range fl.path() {
				if l2.mark != g {
					l2.mark = g
					f.compLinks = append(f.compLinks, l2)
				}
			}
		}
	}
	waterfill(f.compFlows, f.compLinks)
	if f.checkIncremental {
		f.verifyAgainstFull()
	}
}

// resolveAll water-fills the entire fabric from scratch.
func (f *Fabric) resolveAll() {
	f.beginWalk()
	g := f.markGen
	for _, fl := range f.flows {
		for _, l := range fl.path() {
			if l.mark != g {
				l.mark = g
				f.compLinks = append(f.compLinks, l)
			}
		}
	}
	waterfill(f.flows, f.compLinks)
}

// IncrementalMismatchError reports that the component-scoped rate solve
// diverged from the full-fabric solve — the invariant the incremental
// fairness optimization rests on. Only produced under
// SetCheckIncremental / PACC_CHECK_INCREMENTAL=1.
type IncrementalMismatchError struct {
	At          simtime.Time
	Src, Dst    int
	Incremental float64
	Full        float64
}

func (e *IncrementalMismatchError) Error() string {
	return fmt.Sprintf(
		"network: incremental max-min rate for flow %d->%d diverged from full solve at %v: %g != %g",
		e.Src, e.Dst, e.At, e.Incremental, e.Full)
}

// verifyAgainstFull re-solves the whole fabric and fails the run if any
// flow's rate differs (exact float comparison: the incremental solve
// must be bit-identical, not merely close).
func (f *Fabric) verifyAgainstFull() {
	f.checkRates = f.checkRates[:0]
	for _, fl := range f.flows {
		f.checkRates = append(f.checkRates, fl.rate)
	}
	f.resolveAll()
	for i, fl := range f.flows {
		if fl.rate != f.checkRates[i] {
			f.eng.Fail(&IncrementalMismatchError{
				At: f.eng.Now(), Src: fl.Src, Dst: fl.Dst,
				Incremental: f.checkRates[i], Full: fl.rate,
			})
			return
		}
	}
}

// waterfill assigns max-min fair rates to the given flows: repeatedly
// saturate the most-contended link and freeze its flows at that link's
// fair share. links must cover every link the flows cross, and every
// flow crossing those links must be in flows (true both for a connected
// component and for the whole fabric).
func waterfill(flows []*Flow, links []*link) {
	for _, fl := range flows {
		fl.rate = 0
		fl.frozen = false
	}
	for _, l := range links {
		l.residual = l.cap
		l.active = len(l.flows)
	}
	unfrozen := len(flows)
	for unfrozen > 0 {
		// Find the bottleneck link: minimum fair share among links
		// still carrying unfrozen flows. Exact ties break by the
		// link's construction ordinal, NOT list position — tie order
		// can change later rounds' arithmetic in the last ulp, so the
		// choice must not depend on how the link list was discovered.
		var bottleneck *link
		minShare := math.Inf(1)
		for _, l := range links {
			if l.active == 0 {
				continue
			}
			share := l.residual / float64(l.active)
			if share < minShare ||
				(share == minShare && bottleneck != nil && l.ord < bottleneck.ord) {
				minShare = share
				bottleneck = l
			}
		}
		if bottleneck == nil {
			break
		}
		if minShare < 0 {
			minShare = 0
		}
		// Freeze every unfrozen flow crossing the bottleneck.
		for _, e := range bottleneck.flows {
			fl := e.fl
			if fl.frozen {
				continue
			}
			fl.rate = minShare
			fl.frozen = true
			unfrozen--
			for _, l := range fl.path() {
				l.residual -= minShare
				if l.residual < 0 {
					l.residual = 0
				}
				l.active--
			}
		}
	}
}

// reschedule re-solves the whole fabric and arms the next completion.
// It is the non-incremental path, used when link capacities change
// (fault window edges) — those edits can touch every component at once.
// Flow starts and completions go through solveComponent instead.
func (f *Fabric) reschedule() {
	f.resolveAll()
	f.armNext()
}

// armNext finds the earliest predicted completion among active flows
// and arms one event for it. The per-flow finish estimate is
// re-derived from current remaining/rate on every call — it must be,
// because nanosecond rounding of the division does not commute with
// advancing the clock, and a cached estimate would drift off the
// historical event timing.
func (f *Fabric) armNext() {
	f.gen++
	if len(f.flows) == 0 {
		return
	}
	next := simtime.Duration(math.MaxInt64)
	armed := false
	for _, fl := range f.flows {
		if fl.rate <= 0 {
			if pathAdminDown(fl.path()) {
				// Legitimately stalled behind a down link; the
				// restore event recomputes rates, so no completion
				// is armed for this flow.
				continue
			}
			// Zero rate with every link up is a fabric logic error;
			// surface it as a structured failure instead of crashing
			// the process.
			f.eng.Fail(&StarvedFlowError{
				At: f.eng.Now(), Src: fl.Src, Dst: fl.Dst,
				Bytes: fl.Bytes, Links: linkNames(fl.path()),
			})
			return
		}
		d := simtime.DurationOf(fl.remaining / fl.rate)
		if d < 1 {
			// Sub-nanosecond residue must still advance the clock,
			// or the completion event would re-fire at the same
			// instant forever.
			d = 1
		}
		if d < next {
			next = d
		}
		armed = true
	}
	if !armed {
		// Every active flow is stalled on a down link.
		return
	}
	gen := f.gen
	f.eng.After(next, func() { f.onCompletion(gen) })
}

// onCompletion fires when the earliest flow should have drained. Stale
// events (superseded by a newer reschedule) are ignored via gen.
func (f *Fabric) onCompletion(gen uint64) {
	if gen != f.gen {
		return
	}
	f.advance()
	// Sub-byte residue is rounding noise from float rate arithmetic.
	const eps = 0.5
	finished := f.finished[:0]
	for _, fl := range f.flows {
		if fl.remaining <= eps {
			finished = append(finished, fl)
		}
	}
	// Deliver simultaneous completions in injection order so waiter
	// wakeups — and therefore the whole simulation — are deterministic.
	// (The scan order above is perturbed by swap-removes; insertion
	// sort restores id order without allocating.)
	for i := 1; i < len(finished); i++ {
		for j := i; j > 0 && finished[j].id < finished[j-1].id; j-- {
			finished[j], finished[j-1] = finished[j-1], finished[j]
		}
	}
	f.beginWalk()
	for _, fl := range finished {
		f.removeFlow(fl)
		f.seedLinks(fl.path())
		f.bytesMoved += fl.Bytes
		for _, l := range fl.path() {
			l.bytes += fl.Bytes
		}
		if f.np != nil {
			f.np.flowRemoved(fl.path())
		}
		if fl.obsEnd != nil {
			// The links are free now; the span closes with them
			// (BaseLatency is propagation, not occupancy).
			fl.obsEnd()
		}
		f.eng.CompleteAfter(f.cfg.BaseLatency, fl.done)
	}
	// Only the departed flows' component(s) can see rate changes; the
	// vacated links seed the walk.
	f.solveComponent()
	f.armNext()
	// Hold the finished scratch (cleared of flow pointers) for reuse.
	for i := range finished {
		finished[i] = nil
	}
	f.finished = finished[:0]
}

// IdealTransferTime returns the uncontended time for one transfer of the
// given size between distinct nodes: bytes at full link bandwidth plus
// base latency. Useful as a model reference.
func (f *Fabric) IdealTransferTime(bytes int64) simtime.Duration {
	return simtime.DurationOf(float64(bytes)/f.cfg.LinkBytesPerSec) + f.cfg.BaseLatency
}
