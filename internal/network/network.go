// Package network simulates an InfiniBand-style fabric at flow level.
//
// Every node owns one full-duplex link (an uplink and a downlink) into a
// non-blocking crossbar switch, the topology of the paper's testbed (eight
// nodes on one Mellanox QDR switch). A message transfer is a fluid flow
// that crosses the sender's uplink and the receiver's downlink; bandwidth
// on each link is divided among concurrent flows by max-min fairness and
// recomputed whenever a flow starts or finishes. Link sharing is what
// produces the paper's network-contention effects (the Cnet term and the
// 4-way vs 8-way gap of Figure 2a) endogenously.
package network

import (
	"fmt"
	"math"
	"sort"

	"pacc/internal/obs"
	"pacc/internal/simtime"
)

// Config holds fabric calibration.
type Config struct {
	// LinkBytesPerSec is the usable bandwidth of one link direction.
	// InfiniBand QDR signals 40 Gbit/s; after 8b/10b coding and
	// protocol overhead ~3.2 GB/s reaches MPI payloads.
	LinkBytesPerSec float64
	// BaseLatency is the end-to-end propagation + switch latency added
	// to every transfer after its last byte is injected.
	BaseLatency simtime.Duration
	// LoopbackBytesPerSec is the bandwidth of the HCA loopback path used
	// for intra-node traffic when shared memory is unavailable
	// (blocking-mode progression falls back to it, §II-B).
	LoopbackBytesPerSec float64
	// NodesPerRack, when positive, groups nodes into racks behind leaf
	// switches: traffic between racks additionally crosses the source
	// rack's uplink and the destination rack's downlink into the spine.
	// Zero models the paper's single-switch testbed.
	NodesPerRack int
	// RackUplinkBytesPerSec is the capacity of each rack's link to the
	// spine (typically oversubscribed relative to node links). Required
	// when NodesPerRack > 0.
	RackUplinkBytesPerSec float64
	// LinkPower enables per-port power accounting and (optionally)
	// dynamic link sleep states. The zero value disables it.
	LinkPower LinkPowerConfig
}

// DefaultConfig returns QDR-calibrated parameters.
func DefaultConfig() Config {
	return Config{
		LinkBytesPerSec:     3.2e9,
		BaseLatency:         simtime.Micros(1.5),
		LoopbackBytesPerSec: 2.0e9,
	}
}

// Validate rejects non-positive bandwidths and negative latency.
func (c Config) Validate() error {
	if c.LinkBytesPerSec <= 0 {
		return fmt.Errorf("network: LinkBytesPerSec must be positive, got %g", c.LinkBytesPerSec)
	}
	if c.LoopbackBytesPerSec <= 0 {
		return fmt.Errorf("network: LoopbackBytesPerSec must be positive, got %g", c.LoopbackBytesPerSec)
	}
	if c.BaseLatency < 0 {
		return fmt.Errorf("network: negative BaseLatency")
	}
	if c.NodesPerRack < 0 {
		return fmt.Errorf("network: negative NodesPerRack")
	}
	if c.NodesPerRack > 0 && c.RackUplinkBytesPerSec <= 0 {
		return fmt.Errorf("network: NodesPerRack set but RackUplinkBytesPerSec is %g",
			c.RackUplinkBytesPerSec)
	}
	return c.LinkPower.Validate()
}

// link is one direction of a node's connection to the switch (or a node's
// loopback path).
type link struct {
	name string
	cap  float64 // current bytes/sec: baseCap * adminFactor
	// baseCap is the healthy capacity; adminFactor in [0,1] scales it
	// while a scheduled fault window is open (0 = link down).
	baseCap     float64
	adminFactor float64
	// downUntil is when the current down window (adminFactor == 0) is
	// scheduled to end; sends routed over a down link requeue until then.
	downUntil simtime.Time
	// faults holds the currently-open fault windows of the link.
	// Overlapping windows compose: the effective adminFactor is the
	// minimum over open windows, and a window closing restores the
	// remaining minimum, not blindly 1.
	faults []faultWindow
	// bytes counts payload delivered over this link (per-link
	// utilization accounting).
	bytes int64
	// scratch used during max-min recomputation
	residual float64
	active   int
	// obsActive/obsSince track busy intervals (≥1 flow on the link) for
	// the observability bus; only maintained while a bus is attached.
	obsActive int
	obsSince  simtime.Time
}

func newLink(name string, cap float64) *link {
	return &link{name: name, cap: cap, baseCap: cap, adminFactor: 1}
}

// Flow is one in-flight transfer.
type Flow struct {
	Src, Dst  int // node indices
	Bytes     int64
	id        uint64
	remaining float64
	rate      float64
	links     []*link
	done      *simtime.Future
	started   simtime.Time
	// obsEnd closes the flow's trace span and link-busy intervals; nil
	// when observability is off.
	obsEnd func()
}

// Done returns a future completed when the last byte has arrived at the
// destination (including BaseLatency).
func (fl *Flow) Done() *simtime.Future { return fl.done }

// StartedAt reports when the flow was injected.
func (fl *Flow) StartedAt() simtime.Time { return fl.started }

// Fabric is the switch plus all node links.
type Fabric struct {
	eng      *simtime.Engine
	cfg      Config
	nodes    int
	up       []*link
	down     []*link
	loop     []*link
	rackUp   []*link
	rackDown []*link
	flows    map[*Flow]struct{}
	nextID   uint64
	// gen invalidates stale completion events after a recompute.
	gen        uint64
	lastUpdate simtime.Time
	// BytesMoved counts payload bytes fully delivered, for throughput
	// accounting and tests.
	bytesMoved int64
	// np tracks per-port power when Config.LinkPower is enabled.
	np *netPower
	// obs, when non-nil, receives flow spans and link-utilization
	// metrics.
	obs *obs.Bus
}

// NewFabric builds a fabric for the given node count.
func NewFabric(eng *simtime.Engine, nodes int, cfg Config) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("network: nodes must be positive, got %d", nodes)
	}
	f := &Fabric{
		eng:   eng,
		cfg:   cfg,
		nodes: nodes,
		flows: make(map[*Flow]struct{}),
	}
	for n := 0; n < nodes; n++ {
		f.up = append(f.up, newLink(fmt.Sprintf("node%d-up", n), cfg.LinkBytesPerSec))
		f.down = append(f.down, newLink(fmt.Sprintf("node%d-down", n), cfg.LinkBytesPerSec))
		f.loop = append(f.loop, newLink(fmt.Sprintf("node%d-loop", n), cfg.LoopbackBytesPerSec))
	}
	if cfg.NodesPerRack > 0 {
		racks := (nodes + cfg.NodesPerRack - 1) / cfg.NodesPerRack
		for rk := 0; rk < racks; rk++ {
			f.rackUp = append(f.rackUp,
				newLink(fmt.Sprintf("rack%d-up", rk), cfg.RackUplinkBytesPerSec))
			f.rackDown = append(f.rackDown,
				newLink(fmt.Sprintf("rack%d-down", rk), cfg.RackUplinkBytesPerSec))
		}
	}
	if cfg.LinkPower.Enabled() {
		var ports []*link
		ports = append(ports, f.up...)
		ports = append(ports, f.down...)
		ports = append(ports, f.rackUp...)
		ports = append(ports, f.rackDown...)
		f.np = newNetPower(eng, cfg.LinkPower, ports)
	}
	return f, nil
}

// SetObs attaches the observability bus (nil detaches). Attach before
// any traffic starts, or link busy-time accounting will miss the open
// intervals of in-flight flows.
func (f *Fabric) SetObs(b *obs.Bus) { f.obs = b }

// obsLinkStart marks one more flow on each link, opening a busy interval
// on links going 0→1. Callers guard on f.obs != nil.
func (f *Fabric) obsLinkStart(links []*link) {
	now := f.eng.Now()
	for _, l := range links {
		if l.obsActive == 0 {
			l.obsSince = now
		}
		l.obsActive++
	}
}

// obsLinkEnd removes one flow from each link, accruing the busy interval
// of links going 1→0 into the per-link metric.
func (f *Fabric) obsLinkEnd(links []*link) {
	now := f.eng.Now()
	for _, l := range links {
		l.obsActive--
		if l.obsActive == 0 {
			f.obs.AddDuration(obs.DurLinkBusyPrefix+l.name, now.Sub(l.obsSince))
		}
	}
}

// NetworkWatts reports the instantaneous draw of all ports (0 when link
// power accounting is disabled).
func (f *Fabric) NetworkWatts() float64 {
	if f.np == nil {
		return 0
	}
	return f.np.watts()
}

// NetworkEnergyJoules reports total port energy consumed so far.
func (f *Fabric) NetworkEnergyJoules() float64 {
	if f.np == nil {
		return 0
	}
	return f.np.energy()
}

// SleepingPorts counts ports currently in the low-power state.
func (f *Fabric) SleepingPorts() int {
	if f.np == nil {
		return 0
	}
	return f.np.sleeping()
}

// RackOf returns the rack index of a node (0 when racks are disabled).
func (f *Fabric) RackOf(node int) int {
	if f.cfg.NodesPerRack <= 0 {
		return 0
	}
	return node / f.cfg.NodesPerRack
}

// NumRacks returns the rack count (1 when racks are disabled).
func (f *Fabric) NumRacks() int {
	if f.cfg.NodesPerRack <= 0 {
		return 1
	}
	return len(f.rackUp)
}

// InterRackBytes reports payload bytes that crossed rack uplinks (0 when
// racks are disabled). A topology-aware collective should minimize this.
func (f *Fabric) InterRackBytes() int64 {
	var total int64
	for _, l := range f.rackUp {
		total += l.bytes
	}
	return total
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// NumNodes returns the number of attached nodes.
func (f *Fabric) NumNodes() int { return f.nodes }

// ActiveFlows reports the number of in-flight transfers.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }

// BytesMoved reports total payload bytes delivered so far.
func (f *Fabric) BytesMoved() int64 { return f.bytesMoved }

// StartFlow injects a transfer of the given size from src to dst node.
// src == dst uses the loopback path. A zero-byte flow completes after
// BaseLatency. The returned flow's Done future fires on delivery.
func (f *Fabric) StartFlow(src, dst int, bytes int64) *Flow {
	if src < 0 || src >= f.nodes || dst < 0 || dst >= f.nodes {
		panic(fmt.Sprintf("network: flow endpoints %d->%d outside [0,%d)", src, dst, f.nodes))
	}
	if bytes < 0 {
		panic(fmt.Sprintf("network: negative flow size %d", bytes))
	}
	f.nextID++
	fl := &Flow{
		Src:       src,
		Dst:       dst,
		Bytes:     bytes,
		id:        f.nextID,
		remaining: float64(bytes),
		done:      simtime.NewFuture(f.eng),
		started:   f.eng.Now(),
	}
	fl.links = f.route(src, dst)
	if b := f.obs; b != nil {
		b.Add(obs.CtrNetFlows, 1)
		b.Add(obs.CtrNetFlowBytes, bytes)
		track := obs.NetTrack(src)
		name := fmt.Sprintf("flow %s %d→%d", obs.SizeLabel(bytes), src, dst)
		id := b.AsyncBegin(track, "net", name, nil)
		f.obsLinkStart(fl.links)
		fl.obsEnd = func() {
			f.obsLinkEnd(fl.links)
			b.AsyncEnd(track, "net", name, id)
		}
	}
	if bytes == 0 {
		delay := f.cfg.BaseLatency
		if f.np != nil {
			// A control message keeps its ports lit (and wakes
			// sleeping ones).
			delay += f.np.wakeDelay(fl.links)
			f.np.flowAdded(fl.links)
			links := fl.links
			f.eng.After(delay, func() { f.np.flowRemoved(links) })
		}
		if fl.obsEnd != nil {
			f.eng.After(delay, fl.obsEnd)
		}
		f.eng.After(delay, func() {
			fl.done.Complete()
		})
		return fl
	}
	start := func() {
		f.advance()
		f.flows[fl] = struct{}{}
		if f.np != nil {
			f.np.flowAdded(fl.links)
		}
		f.reschedule()
	}
	if f.np != nil {
		if d := f.np.wakeDelay(fl.links); d > 0 {
			f.eng.After(d, start)
			return fl
		}
	}
	start()
	return fl
}

// route returns the links a src→dst transfer crosses.
func (f *Fabric) route(src, dst int) []*link {
	switch {
	case src == dst:
		return []*link{f.loop[src]}
	case f.cfg.NodesPerRack > 0 && f.RackOf(src) != f.RackOf(dst):
		return []*link{f.up[src], f.rackUp[f.RackOf(src)],
			f.rackDown[f.RackOf(dst)], f.down[dst]}
	default:
		return []*link{f.up[src], f.down[dst]}
	}
}

// advance drains bytes from all active flows at their current rates for
// the interval since the last update.
func (f *Fabric) advance() {
	now := f.eng.Now()
	dt := now.Sub(f.lastUpdate).Seconds()
	if dt > 0 {
		for fl := range f.flows {
			fl.remaining -= fl.rate * dt
			if fl.remaining < 0 {
				fl.remaining = 0
			}
		}
	}
	f.lastUpdate = now
}

// recompute assigns max-min fair rates to all active flows via
// water-filling: repeatedly saturate the most-contended link and freeze
// its flows at that link's fair share.
func (f *Fabric) recompute() {
	links := map[*link]struct{}{}
	for fl := range f.flows {
		fl.rate = 0
		for _, l := range fl.links {
			links[l] = struct{}{}
		}
	}
	for l := range links {
		l.residual = l.cap
		l.active = 0
	}
	unfrozen := make(map[*Flow]struct{}, len(f.flows))
	for fl := range f.flows {
		unfrozen[fl] = struct{}{}
		for _, l := range fl.links {
			l.active++
		}
	}
	for len(unfrozen) > 0 {
		// Find the bottleneck link: minimum fair share among links
		// still carrying unfrozen flows.
		var bottleneck *link
		minShare := math.Inf(1)
		for l := range links {
			if l.active == 0 {
				continue
			}
			share := l.residual / float64(l.active)
			if share < minShare {
				minShare = share
				bottleneck = l
			}
		}
		if bottleneck == nil {
			break
		}
		if minShare < 0 {
			minShare = 0
		}
		// Freeze every unfrozen flow crossing the bottleneck.
		for fl := range unfrozen {
			crosses := false
			for _, l := range fl.links {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			fl.rate = minShare
			for _, l := range fl.links {
				l.residual -= minShare
				if l.residual < 0 {
					l.residual = 0
				}
				l.active--
			}
			delete(unfrozen, fl)
		}
	}
}

// reschedule recomputes rates and arms a completion event for the flow
// that will finish first.
func (f *Fabric) reschedule() {
	f.gen++
	if len(f.flows) == 0 {
		return
	}
	f.recompute()
	next := simtime.Duration(math.MaxInt64)
	armed := false
	for fl := range f.flows {
		if fl.rate <= 0 {
			if pathAdminDown(fl.links) {
				// Legitimately stalled behind a down link; the
				// restore event recomputes rates, so no completion
				// is armed for this flow.
				continue
			}
			// Zero rate with every link up is a fabric logic error;
			// surface it as a structured failure instead of crashing
			// the process.
			f.eng.Fail(&StarvedFlowError{
				At: f.eng.Now(), Src: fl.Src, Dst: fl.Dst,
				Bytes: fl.Bytes, Links: linkNames(fl.links),
			})
			return
		}
		d := simtime.DurationOf(fl.remaining / fl.rate)
		if d < 1 {
			// Sub-nanosecond residue must still advance the clock,
			// or the completion event would re-fire at the same
			// instant forever.
			d = 1
		}
		if d < next {
			next = d
		}
		armed = true
	}
	if !armed {
		// Every active flow is stalled on a down link.
		return
	}
	gen := f.gen
	f.eng.After(next, func() { f.onCompletion(gen) })
}

// onCompletion fires when the earliest flow should have drained. Stale
// events (superseded by a newer reschedule) are ignored via gen.
func (f *Fabric) onCompletion(gen uint64) {
	if gen != f.gen {
		return
	}
	f.advance()
	// Sub-byte residue is rounding noise from float rate arithmetic.
	const eps = 0.5
	var finished []*Flow
	for fl := range f.flows {
		if fl.remaining <= eps {
			finished = append(finished, fl)
		}
	}
	// Deliver simultaneous completions in injection order so waiter
	// wakeups — and therefore the whole simulation — are deterministic.
	sort.Slice(finished, func(i, j int) bool { return finished[i].id < finished[j].id })
	for _, fl := range finished {
		delete(f.flows, fl)
		f.bytesMoved += fl.Bytes
		for _, l := range fl.links {
			l.bytes += fl.Bytes
		}
		if f.np != nil {
			f.np.flowRemoved(fl.links)
		}
		if fl.obsEnd != nil {
			// The links are free now; the span closes with them
			// (BaseLatency is propagation, not occupancy).
			fl.obsEnd()
		}
		done := fl.done
		f.eng.After(f.cfg.BaseLatency, func() { done.Complete() })
	}
	f.reschedule()
}

// IdealTransferTime returns the uncontended time for one transfer of the
// given size between distinct nodes: bytes at full link bandwidth plus
// base latency. Useful as a model reference.
func (f *Fabric) IdealTransferTime(bytes int64) simtime.Duration {
	return simtime.DurationOf(float64(bytes)/f.cfg.LinkBytesPerSec) + f.cfg.BaseLatency
}
