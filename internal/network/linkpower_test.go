package network

import (
	"math"
	"testing"

	"pacc/internal/simtime"
)

func lpConfig() Config {
	cfg := DefaultConfig()
	cfg.LinkPower = DefaultLinkPower()
	return cfg
}

func TestLinkPowerConfigValidate(t *testing.T) {
	if err := DefaultLinkPower().Validate(); err != nil {
		t.Fatal(err)
	}
	if (LinkPowerConfig{}).Validate() != nil {
		t.Error("disabled config should validate")
	}
	bad := []LinkPowerConfig{
		{ActiveWatts: 1, IdleWatts: 2},                // active < idle
		{ActiveWatts: 3, IdleWatts: 2, SleepWatts: 4}, // sleep > idle
		{ActiveWatts: 3, IdleWatts: 2, WakeLatency: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestLinkPowerDisabledByDefault(t *testing.T) {
	eng := simtime.NewEngine()
	f, err := NewFabric(eng, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.NetworkWatts() != 0 || f.NetworkEnergyJoules() != 0 || f.SleepingPorts() != 0 {
		t.Fatal("disabled link power should report zeros")
	}
}

func TestIdlePortsDrawIdlePower(t *testing.T) {
	eng := simtime.NewEngine()
	cfg := lpConfig()
	cfg.LinkPower.SleepAfter = 0 // no sleeping
	f, err := NewFabric(eng, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 nodes x (up+down) = 8 ports, all idle.
	want := 8 * cfg.LinkPower.IdleWatts
	if got := f.NetworkWatts(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("idle fabric draws %v W, want %v", got, want)
	}
	eng.Spawn("wait", func(p *simtime.Proc) { p.Sleep(simtime.Second) })
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if got := f.NetworkEnergyJoules(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("idle energy over 1s = %v J, want %v", got, want)
	}
}

func TestActiveFlowRaisesPortPower(t *testing.T) {
	eng := simtime.NewEngine()
	cfg := lpConfig()
	cfg.LinkPower.SleepAfter = 0
	f, err := NewFabric(eng, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.StartFlow(0, 1, 8<<20)
	// node0-up and node1-down active; the other two idle.
	want := 2*cfg.LinkPower.ActiveWatts + 2*cfg.LinkPower.IdleWatts
	if got := f.NetworkWatts(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("active fabric draws %v W, want %v", got, want)
	}
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	// After completion, back to all-idle.
	want = 4 * cfg.LinkPower.IdleWatts
	if got := f.NetworkWatts(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("post-flow draw %v W, want %v", got, want)
	}
}

func TestPortsSleepAfterTimeout(t *testing.T) {
	eng := simtime.NewEngine()
	cfg := lpConfig()
	f, err := NewFabric(eng, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.StartFlow(0, 1, 1<<20)
	eng.Spawn("wait", func(p *simtime.Proc) { p.Sleep(100 * simtime.Millisecond) })
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	// All ports idle well past SleepAfter: the two that carried the
	// flow plus the two never-used ones (never-used ports also time
	// out only if they ever got a removal event — they start idle and
	// never arm a timer, so expect at least the used pair asleep).
	if got := f.SleepingPorts(); got < 2 {
		t.Fatalf("%d ports asleep, want >= 2", got)
	}
}

func TestWakeLatencyDelaysTransfer(t *testing.T) {
	elapsedWith := func(sleepAfter simtime.Duration) simtime.Time {
		eng := simtime.NewEngine()
		cfg := lpConfig()
		cfg.LinkPower.SleepAfter = sleepAfter
		f, err := NewFabric(eng, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var done simtime.Time
		eng.Spawn("driver", func(p *simtime.Proc) {
			fl1 := f.StartFlow(0, 1, 1<<10)
			fl1.Done().Await(p, "warm")
			// Idle long enough for ports to sleep (if enabled).
			p.Sleep(10 * simtime.Millisecond)
			fl2 := f.StartFlow(0, 1, 1<<10)
			fl2.Done().Await(p, "second")
			done = p.Now()
		})
		if _, err := eng.Run(simtime.Infinity); err != nil {
			t.Fatal(err)
		}
		return done
	}
	noSleep := elapsedWith(0)
	withSleep := elapsedWith(100 * simtime.Microsecond)
	gap := simtime.Duration(withSleep - noSleep)
	want := DefaultLinkPower().WakeLatency
	if gap != want {
		t.Fatalf("wake penalty = %v, want %v", gap, want)
	}
}

// TestSleepSavesEnergy: with a bursty flow pattern, enabling sleep cuts
// network energy.
func TestSleepSavesEnergy(t *testing.T) {
	energyWith := func(sleepAfter simtime.Duration) float64 {
		eng := simtime.NewEngine()
		cfg := lpConfig()
		cfg.LinkPower.SleepAfter = sleepAfter
		f, err := NewFabric(eng, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng.Spawn("driver", func(p *simtime.Proc) {
			for i := 0; i < 5; i++ {
				fl := f.StartFlow(0, 1, 64<<10)
				fl.Done().Await(p, "burst")
				p.Sleep(20 * simtime.Millisecond) // long idle gap
			}
		})
		if _, err := eng.Run(simtime.Infinity); err != nil {
			t.Fatal(err)
		}
		return f.NetworkEnergyJoules()
	}
	always := energyWith(0)
	managed := energyWith(100 * simtime.Microsecond)
	if managed >= always {
		t.Fatalf("managed %.4f J not below always-on %.4f J", managed, always)
	}
	saving := 1 - managed/always
	if saving < 0.5 {
		t.Fatalf("saving %.0f%% below expectation for a mostly-idle pattern", saving*100)
	}
}

// TestAllIdlePortsEventuallySleep: every port without traffic drops into
// the low-power state after the timeout, including never-used ones.
func TestAllIdlePortsEventuallySleep(t *testing.T) {
	eng := simtime.NewEngine()
	f, err := NewFabric(eng, 4, lpConfig())
	if err != nil {
		t.Fatal(err)
	}
	f.StartFlow(0, 1, 1024)
	eng.Spawn("wait", func(p *simtime.Proc) { p.Sleep(simtime.Second) })
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if got := f.SleepingPorts(); got != 8 {
		t.Fatalf("%d ports asleep, want all 8", got)
	}
}

func TestZeroByteFlowKeepsPortsAwake(t *testing.T) {
	eng := simtime.NewEngine()
	cfg := lpConfig()
	f, err := NewFabric(eng, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var woke bool
	eng.Spawn("driver", func(p *simtime.Proc) {
		fl := f.StartFlow(0, 1, 1024)
		fl.Done().Await(p, "warm")
		p.Sleep(10 * simtime.Millisecond) // ports sleep
		before := f.SleepingPorts()
		ctl := f.StartFlow(0, 1, 0)
		ctl.Done().Await(p, "ctl")
		woke = before > 0 && f.SleepingPorts() < before
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Fatal("zero-byte control flow should wake sleeping ports")
	}
}
