package network

import (
	"math"
	"testing"
	"testing/quick"

	"pacc/internal/simtime"
)

func newTestFabric(t *testing.T, nodes int) (*simtime.Engine, *Fabric) {
	t.Helper()
	eng := simtime.NewEngine()
	f, err := NewFabric(eng, nodes, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng, f
}

func runAll(t *testing.T, eng *simtime.Engine) {
	t.Helper()
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{LinkBytesPerSec: 0, LoopbackBytesPerSec: 1},
		{LinkBytesPerSec: 1, LoopbackBytesPerSec: 0},
		{LinkBytesPerSec: 1, LoopbackBytesPerSec: 1, BaseLatency: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
	eng := simtime.NewEngine()
	if _, err := NewFabric(eng, 0, good); err == nil {
		t.Error("zero-node fabric accepted")
	}
	if _, err := NewFabric(eng, 2, bad[0]); err == nil {
		t.Error("bad config accepted")
	}
}

func TestSingleFlowTime(t *testing.T) {
	eng, f := newTestFabric(t, 2)
	const bytes = 1 << 20
	var doneAt simtime.Time
	fl := f.StartFlow(0, 1, bytes)
	eng.Spawn("w", func(p *simtime.Proc) {
		fl.Done().Await(p, "flow")
		doneAt = p.Now()
	})
	runAll(t, eng)
	want := f.IdealTransferTime(bytes)
	got := simtime.Duration(doneAt)
	if math.Abs(got.Seconds()-want.Seconds()) > 1e-7 {
		t.Fatalf("1MiB flow took %v, want %v", got, want)
	}
}

func TestZeroByteFlow(t *testing.T) {
	eng, f := newTestFabric(t, 2)
	fl := f.StartFlow(0, 1, 0)
	var doneAt simtime.Time
	eng.Spawn("w", func(p *simtime.Proc) {
		fl.Done().Await(p, "flow")
		doneAt = p.Now()
	})
	runAll(t, eng)
	if simtime.Duration(doneAt) != f.Config().BaseLatency {
		t.Fatalf("zero-byte flow done at %v, want %v", doneAt, f.Config().BaseLatency)
	}
}

// TestUplinkSharing: two flows out of the same node halve each other's
// bandwidth; total time doubles versus one flow.
func TestUplinkSharing(t *testing.T) {
	eng, f := newTestFabric(t, 3)
	const bytes = 8 << 20
	fl1 := f.StartFlow(0, 1, bytes)
	fl2 := f.StartFlow(0, 2, bytes)
	var t1, t2 simtime.Time
	eng.Spawn("w1", func(p *simtime.Proc) { fl1.Done().Await(p, "f1"); t1 = p.Now() })
	eng.Spawn("w2", func(p *simtime.Proc) { fl2.Done().Await(p, "f2"); t2 = p.Now() })
	runAll(t, eng)
	solo := float64(bytes) / f.Config().LinkBytesPerSec
	if math.Abs(t1.Seconds()-2*solo) > 0.01*2*solo+1e-5 {
		t.Fatalf("shared flow 1 took %.6fs, want ≈%.6fs", t1.Seconds(), 2*solo)
	}
	if math.Abs(t1.Seconds()-t2.Seconds()) > 1e-6 {
		t.Fatalf("equal flows finished at different times: %v vs %v", t1, t2)
	}
}

// TestDisjointFlowsDoNotInterfere: flows on separate node pairs run at
// full bandwidth concurrently (non-blocking crossbar).
func TestDisjointFlowsDoNotInterfere(t *testing.T) {
	eng, f := newTestFabric(t, 4)
	const bytes = 4 << 20
	fl1 := f.StartFlow(0, 1, bytes)
	fl2 := f.StartFlow(2, 3, bytes)
	var t1, t2 simtime.Time
	eng.Spawn("w1", func(p *simtime.Proc) { fl1.Done().Await(p, "f1"); t1 = p.Now() })
	eng.Spawn("w2", func(p *simtime.Proc) { fl2.Done().Await(p, "f2"); t2 = p.Now() })
	runAll(t, eng)
	want := f.IdealTransferTime(bytes).Seconds()
	for i, got := range []float64{t1.Seconds(), t2.Seconds()} {
		if math.Abs(got-want) > 1e-7 {
			t.Fatalf("disjoint flow %d took %.6fs, want %.6fs", i+1, got, want)
		}
	}
}

// TestDownlinkContention: two senders into one receiver share the
// receiver's downlink.
func TestDownlinkContention(t *testing.T) {
	eng, f := newTestFabric(t, 3)
	const bytes = 4 << 20
	fl1 := f.StartFlow(0, 2, bytes)
	fl2 := f.StartFlow(1, 2, bytes)
	var t1 simtime.Time
	eng.Spawn("w", func(p *simtime.Proc) {
		fl1.Done().Await(p, "f1")
		fl2.Done().Await(p, "f2")
		t1 = p.Now()
	})
	runAll(t, eng)
	solo := float64(bytes) / f.Config().LinkBytesPerSec
	if t1.Seconds() < 2*solo-1e-6 {
		t.Fatalf("incast finished in %.6fs, faster than shared-link bound %.6fs", t1.Seconds(), 2*solo)
	}
}

// TestLateFlowMaxMin: a flow arriving midway slows the first one from
// that point; the first flow's completion reflects both regimes.
func TestLateFlowMaxMin(t *testing.T) {
	eng, f := newTestFabric(t, 3)
	bw := f.Config().LinkBytesPerSec
	// Flow 1: 2 MB. After 1 MB has drained (t=1MB/bw), inject flow 2.
	b1 := int64(2 << 20)
	half := simtime.DurationOf(float64(1<<20) / bw)
	fl1 := f.StartFlow(0, 1, b1)
	var t1 simtime.Time
	eng.Spawn("injector", func(p *simtime.Proc) {
		p.Sleep(half)
		f.StartFlow(0, 2, 4<<20)
	})
	eng.Spawn("w", func(p *simtime.Proc) { fl1.Done().Await(p, "f1"); t1 = p.Now() })
	runAll(t, eng)
	// Remaining 1 MB of flow 1 drains at bw/2: total = 1MB/bw + 1MB/(bw/2).
	want := half.Seconds() + 2*half.Seconds() + f.Config().BaseLatency.Seconds()
	if math.Abs(t1.Seconds()-want) > 1e-6 {
		t.Fatalf("flow1 done at %.6fs, want %.6fs", t1.Seconds(), want)
	}
}

func TestLoopbackPath(t *testing.T) {
	eng, f := newTestFabric(t, 2)
	const bytes = 2 << 20
	fl := f.StartFlow(1, 1, bytes)
	var t1 simtime.Time
	eng.Spawn("w", func(p *simtime.Proc) { fl.Done().Await(p, "lb"); t1 = p.Now() })
	runAll(t, eng)
	want := float64(bytes)/f.Config().LoopbackBytesPerSec + f.Config().BaseLatency.Seconds()
	if math.Abs(t1.Seconds()-want) > 1e-7 {
		t.Fatalf("loopback took %.6fs, want %.6fs", t1.Seconds(), want)
	}
	// Loopback does not contend with the node's switch links.
	if f.ActiveFlows() != 0 {
		t.Fatalf("flows still active: %d", f.ActiveFlows())
	}
}

func TestBadEndpointsPanic(t *testing.T) {
	eng, f := newTestFabric(t, 2)
	_ = eng
	for _, c := range []struct{ src, dst int }{{-1, 0}, {0, 5}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("StartFlow(%d,%d) did not panic", c.src, c.dst)
				}
			}()
			f.StartFlow(c.src, c.dst, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative size did not panic")
			}
		}()
		f.StartFlow(0, 1, -1)
	}()
}

func TestBytesMovedAccounting(t *testing.T) {
	eng, f := newTestFabric(t, 2)
	f.StartFlow(0, 1, 1000)
	f.StartFlow(1, 0, 500)
	runAll(t, eng)
	if got := f.BytesMoved(); got != 1500 {
		t.Fatalf("BytesMoved = %d, want 1500", got)
	}
}

// TestAlltoallStepContention reproduces the mechanism behind Figure 2(a):
// with k concurrent senders per node, per-flow bandwidth is bw/k, so a
// fully-loaded exchange step takes k times the solo transfer time.
func TestAlltoallStepContention(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		eng := simtime.NewEngine()
		f, err := NewFabric(eng, 2, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		const bytes = 1 << 20
		var last simtime.Time
		for i := 0; i < k; i++ {
			fl := f.StartFlow(0, 1, bytes)
			eng.Spawn("w", func(p *simtime.Proc) {
				fl.Done().Await(p, "f")
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if _, err := eng.Run(simtime.Infinity); err != nil {
			t.Fatal(err)
		}
		want := float64(k)*float64(bytes)/f.Config().LinkBytesPerSec + f.Config().BaseLatency.Seconds()
		if math.Abs(last.Seconds()-want) > 1e-6 {
			t.Fatalf("k=%d: step took %.6fs, want %.6fs", k, last.Seconds(), want)
		}
	}
}

// Property: work conservation — n equal flows over one link finish in n
// times the solo duration, regardless of n and size.
func TestWorkConservationProperty(t *testing.T) {
	prop := func(nSel, sizeSel uint8) bool {
		n := int(nSel%6) + 1
		bytes := int64(sizeSel%16+1) << 16
		eng := simtime.NewEngine()
		f, err := NewFabric(eng, 2, DefaultConfig())
		if err != nil {
			return false
		}
		var last simtime.Time
		for i := 0; i < n; i++ {
			fl := f.StartFlow(0, 1, bytes)
			eng.Spawn("w", func(p *simtime.Proc) {
				fl.Done().Await(p, "f")
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if _, err := eng.Run(simtime.Infinity); err != nil {
			return false
		}
		want := float64(n)*float64(bytes)/f.Config().LinkBytesPerSec + f.Config().BaseLatency.Seconds()
		return math.Abs(last.Seconds()-want) < 1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: determinism — the same flow schedule yields identical
// completion times across runs.
func TestFabricDeterminismProperty(t *testing.T) {
	run := func(seed uint8) []simtime.Time {
		eng := simtime.NewEngine()
		f, _ := NewFabric(eng, 4, DefaultConfig())
		var times []simtime.Time
		for i := 0; i < 6; i++ {
			src := (int(seed) + i) % 4
			dst := (src + 1 + i%3) % 4
			bytes := int64((int(seed)%7+1)*(i+1)) << 14
			delay := simtime.Duration(i) * 10 * simtime.Microsecond
			idx := i
			_ = idx
			eng.Spawn("inj", func(p *simtime.Proc) {
				p.Sleep(delay)
				fl := f.StartFlow(src, dst, bytes)
				fl.Done().Await(p, "f")
				times = append(times, p.Now())
			})
		}
		if _, err := eng.Run(simtime.Infinity); err != nil {
			t.Fatal(err)
		}
		return times
	}
	prop := func(seed uint8) bool {
		a := run(seed)
		b := run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
