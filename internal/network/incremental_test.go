package network

import (
	"errors"
	"testing"

	"pacc/internal/simtime"
)

// splitmixTest is a local SplitMix64 step for deterministic fuzz
// schedules (the fault package keeps its own copy unexported).
func splitmixTest(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FuzzIncrementalMaxMin drives a racked fabric through a seeded random
// storm of overlapping flows and link-fault windows with the
// incremental-vs-full proof harness armed: after every component-scoped
// solve the fabric re-solves everything and fails the run on any exact
// rate mismatch. Any seed that finds a divergence is a bug in the
// incremental fairness math.
func FuzzIncrementalMaxMin(f *testing.F) {
	for _, seed := range []uint64{1, 7, 42, 0xdeadbeef, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		eng := simtime.NewEngine()
		cfg := DefaultConfig()
		// Racks force 4-hop paths so components span rack uplinks;
		// a modest uplink keeps them contended.
		cfg.NodesPerRack = 4
		cfg.RackUplinkBytesPerSec = cfg.LinkBytesPerSec / 2
		const nodes = 12
		fab, err := NewFabric(eng, nodes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fab.SetCheckIncremental(true)

		h := seed
		next := func(mod uint64) uint64 {
			h = splitmixTest(h)
			return h % mod
		}
		// A few fault windows: degraded and fully-down links with
		// overlapping spans, so cap changes hit busy components.
		names := fab.LinkNames()
		for i := 0; i < 4; i++ {
			name := names[next(uint64(len(names)))]
			factor := float64(next(3)) * 0.35 // 0, 0.35, or 0.70
			start := simtime.Duration(next(400)) * simtime.Micros(1)
			dur := simtime.Duration(1+next(300)) * simtime.Micros(1)
			if err := fab.ScheduleLinkFault(name, factor, start, dur); err != nil {
				t.Fatal(err)
			}
		}
		// Random flow injections across the run. Zero-size and
		// self-loops included; sizes span sub-byte-residue to multi-MB.
		for i := 0; i < 60; i++ {
			src := int(next(nodes))
			dst := int(next(nodes))
			bytes := int64(next(1 << 22))
			at := simtime.Time(next(600)) * simtime.Time(simtime.Micros(1))
			eng.At(at, func() { fab.StartFlow(src, dst, bytes) })
		}
		if _, err := eng.Run(simtime.Infinity); err != nil {
			var mism *IncrementalMismatchError
			if errors.As(err, &mism) {
				t.Fatalf("incremental solve diverged from full solve: %v", err)
			}
			// Flows stalled behind a down link when the queue drained
			// are not an error of the solver; anything else is.
			t.Fatalf("run failed: %v", err)
		}
	})
}

// TestIncrementalEquivalenceAfterFaults pins the non-fuzz case: a fixed
// busy pattern with fault edges mid-flight runs clean under the checker.
func TestIncrementalEquivalenceAfterFaults(t *testing.T) {
	eng := simtime.NewEngine()
	cfg := DefaultConfig()
	cfg.NodesPerRack = 2
	cfg.RackUplinkBytesPerSec = cfg.LinkBytesPerSec
	fab, err := NewFabric(eng, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fab.SetCheckIncremental(true)
	if err := fab.ScheduleLinkFault("node1-up", 0.5, simtime.Micros(10), simtime.Micros(200)); err != nil {
		t.Fatal(err)
	}
	if err := fab.ScheduleLinkFault("rack1-down", 0, simtime.Micros(50), simtime.Micros(100)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				continue
			}
			src, dst := i, j
			eng.At(simtime.Time(i)*simtime.Time(simtime.Micros(5)),
				func() { fab.StartFlow(src, dst, 1<<18) })
		}
	}
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatalf("run failed under incremental checker: %v", err)
	}
	if fab.ActiveFlows() != 0 {
		t.Fatalf("%d flows still active after drain", fab.ActiveFlows())
	}
}

// TestRecomputeAllocFree: the full re-solve + re-arm cycle on a warm
// fabric allocates at most the one completion-event closure it arms —
// the water-fill itself (component walk, freeze rounds, scratch) must
// not touch the heap.
func TestRecomputeAllocFree(t *testing.T) {
	eng := simtime.NewEngine()
	fab, err := NewFabric(eng, 16, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		fab.StartFlow(i, (i+5)%16, 1<<20)
	}
	// Warm the solver scratch.
	fab.advance()
	fab.reschedule()
	allocs := testing.AllocsPerRun(50, func() {
		fab.advance()
		fab.reschedule()
	})
	if allocs > 1 {
		t.Fatalf("full recompute allocated %.1f times per cycle, want <= 1 (the armed event closure)", allocs)
	}
}

// TestIncrementalSolveAllocFree: injecting a flow into a warm, busy
// fabric — component walk, incremental water-fill, re-arm — stays
// within the small fixed budget of one flow object, its future, and the
// armed completion closure.
func TestIncrementalSolveAllocFree(t *testing.T) {
	eng := simtime.NewEngine()
	fab, err := NewFabric(eng, 16, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		fab.StartFlow(i, (i+3)%16, 1<<24)
	}
	fab.StartFlow(0, 1, 1<<10) // warm scratch for the measured shape
	allocs := testing.AllocsPerRun(20, func() {
		fab.StartFlow(0, 1, 1<<10)
	})
	// Flow struct + Future + completion closure, plus slack for the
	// growing per-link/fabric flow lists (amortized appends).
	if allocs > 5 {
		t.Fatalf("StartFlow on a warm fabric allocated %.1f times, want <= 5", allocs)
	}
}
