package network

import (
	"fmt"
	"sort"

	"pacc/internal/obs"
	"pacc/internal/simtime"
)

// StarvedFlowError reports a flow that computed a zero rate while every
// link on its path was administratively up — a fabric logic error. It is
// surfaced through Engine.Fail so Run returns it like a deadlock report
// instead of crashing the process.
type StarvedFlowError struct {
	At       simtime.Time
	Src, Dst int
	Bytes    int64
	Links    []string
}

func (e *StarvedFlowError) Error() string {
	return fmt.Sprintf("network: flow %d->%d (%d bytes) starved at %v on healthy path %v",
		e.Src, e.Dst, e.Bytes, e.At, e.Links)
}

// pathAdminDown reports whether any link on the path is administratively
// down (capacity forced to zero by a fault window).
func pathAdminDown(links []*link) bool {
	for _, l := range links {
		if l.adminFactor == 0 {
			return true
		}
	}
	return false
}

// linkNames returns the names of the given links, in path order.
func linkNames(links []*link) []string {
	names := make([]string, len(links))
	for i, l := range links {
		names[i] = l.name
	}
	return names
}

// allLinks iterates every link in the fabric in a stable order.
func (f *Fabric) allLinks() []*link {
	var all []*link
	all = append(all, f.up...)
	all = append(all, f.down...)
	all = append(all, f.loop...)
	all = append(all, f.rackUp...)
	all = append(all, f.rackDown...)
	return all
}

// linkByName resolves a link by its exported name ("node3-up",
// "rack1-down", "node0-loop", ...).
func (f *Fabric) linkByName(name string) *link {
	for _, l := range f.allLinks() {
		if l.name == name {
			return l
		}
	}
	return nil
}

// LinkNames lists every link name in the fabric, for spec validation and
// error messages.
func (f *Fabric) LinkNames() []string {
	return linkNames(f.allLinks())
}

// faultWindow is one open fault window on a link.
type faultWindow struct {
	factor float64
	end    simtime.Time
}

// ScheduleLinkFault arms one fault window on the named link: from start
// for dur the link runs at factor times its healthy capacity (factor 0
// takes the link down entirely; senders routed over it requeue until the
// window closes). Windows are scheduled before the simulation runs and
// fire as ordinary engine events, so faulted runs stay deterministic.
// Windows on the same link may overlap: while several are open the link
// runs at the minimum of their factors, and one window closing restores
// the minimum of the remainder, not blindly full capacity.
func (f *Fabric) ScheduleLinkFault(name string, factor float64, start, dur simtime.Duration) error {
	l := f.linkByName(name)
	if l == nil {
		return fmt.Errorf("network: unknown link %q (have %v)", name, f.LinkNames())
	}
	if factor < 0 || factor >= 1 {
		return fmt.Errorf("network: link fault factor %g outside [0,1)", factor)
	}
	if start < 0 || dur <= 0 {
		return fmt.Errorf("network: link fault window start=%v dur=%v invalid", start, dur)
	}
	end := simtime.Time(0).Add(start).Add(dur)
	f.eng.At(simtime.Time(0).Add(start), func() {
		l.faults = append(l.faults, faultWindow{factor: factor, end: end})
		f.applyLinkWindows(l)
	})
	f.eng.At(end, func() {
		for i, win := range l.faults {
			if win.factor == factor && win.end == end {
				l.faults = append(l.faults[:i], l.faults[i+1:]...)
				break
			}
		}
		f.applyLinkWindows(l)
	})
	return nil
}

// applyLinkWindows applies one edge of a fault window: drains in-flight
// progress at the old rates, rescales the link to the composition of its
// open windows, and recomputes shares.
func (f *Fabric) applyLinkWindows(l *link) {
	f.advance()
	factor := 1.0
	var downUntil simtime.Time
	for _, win := range l.faults {
		if win.factor < factor {
			factor = win.factor
		}
		if win.factor == 0 && win.end > downUntil {
			downUntil = win.end
		}
	}
	l.adminFactor = factor
	l.cap = l.baseCap * factor
	l.downUntil = 0
	if factor == 0 {
		l.downUntil = downUntil
	}
	if b := f.obs; b != nil {
		b.Add(obs.CtrFaultLinkEvents, 1)
		name := "link restore " + l.name
		if factor < 1 {
			name = fmt.Sprintf("link fault %s ×%g", l.name, factor)
		}
		b.Instant(obs.FaultTrack(), name, map[string]any{"link": l.name, "factor": factor})
	}
	f.reschedule()
}

// DegradedLinks returns the names of links currently inside a fault
// window (degraded or down), sorted.
func (f *Fabric) DegradedLinks() []string {
	var names []string
	for _, l := range f.allLinks() {
		if l.adminFactor < 1 {
			names = append(names, l.name)
		}
	}
	sort.Strings(names)
	return names
}

// Degraded reports whether any link is currently degraded or down. The
// collective layer polls this (through mpi and the facade) to decide
// whether to fall back to contention-minimal schedules.
func (f *Fabric) Degraded() bool {
	for _, l := range f.allLinks() {
		if l.adminFactor < 1 {
			return true
		}
	}
	return false
}

// PathDegraded reports whether the src→dst route crosses a degraded or
// down link right now.
func (f *Fabric) PathDegraded(src, dst int) bool {
	for _, l := range f.route(src, dst) {
		if l.adminFactor < 1 {
			return true
		}
	}
	return false
}

// PathDownUntil reports whether the src→dst route crosses a link that is
// administratively down, and when the last such window is scheduled to
// end. The MPI layer uses the deadline to requeue sends instead of
// burning their retry budget against a link that cannot deliver.
func (f *Fabric) PathDownUntil(src, dst int) (simtime.Time, bool) {
	var until simtime.Time
	down := false
	for _, l := range f.route(src, dst) {
		if l.adminFactor == 0 {
			down = true
			if l.downUntil > until {
				until = l.downUntil
			}
		}
	}
	return until, down
}
