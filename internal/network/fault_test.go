package network

import (
	"errors"
	"math"
	"strings"
	"testing"

	"pacc/internal/simtime"
)

func TestScheduleLinkFaultArgs(t *testing.T) {
	eng, f := newTestFabric(t, 2)
	_ = eng
	if err := f.ScheduleLinkFault("node9-up", 0.5, 0, simtime.Millisecond); err == nil ||
		!strings.Contains(err.Error(), "node9-up") {
		t.Errorf("unknown link: err = %v", err)
	}
	if err := f.ScheduleLinkFault("node0-up", 1.0, 0, simtime.Millisecond); err == nil {
		t.Error("factor 1.0 accepted")
	}
	if err := f.ScheduleLinkFault("node0-up", -0.5, 0, simtime.Millisecond); err == nil {
		t.Error("negative factor accepted")
	}
	if err := f.ScheduleLinkFault("node0-up", 0.5, -simtime.Millisecond, simtime.Millisecond); err == nil {
		t.Error("negative start accepted")
	}
	if err := f.ScheduleLinkFault("node0-up", 0.5, 0, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if err := f.ScheduleLinkFault("node0-up", 0.5, 0, simtime.Millisecond); err != nil {
		t.Errorf("valid fault rejected: %v", err)
	}
}

func TestLinkNames(t *testing.T) {
	_, f := newTestFabric(t, 2)
	names := f.LinkNames()
	for _, want := range []string{"node0-up", "node0-down", "node1-up", "node1-down", "node0-loop"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("link %q missing from %v", want, names)
		}
	}
}

// TestDegradationSlowsFlow: a link at half capacity doubles the transfer
// time of a flow bottlenecked on it.
func TestDegradationSlowsFlow(t *testing.T) {
	const bytes = 8 << 20
	_, healthy := newTestFabric(t, 2)
	baseline := healthy.IdealTransferTime(bytes).Seconds()

	eng, f := newTestFabric(t, 2)
	if err := f.ScheduleLinkFault("node0-up", 0.5, 0, 1000*simtime.Second); err != nil {
		t.Fatal(err)
	}
	fl := f.StartFlow(0, 1, bytes)
	var doneAt simtime.Time
	eng.Spawn("w", func(p *simtime.Proc) {
		fl.Done().Await(p, "flow")
		doneAt = p.Now()
	})
	runAll(t, eng)
	want := 2*(baseline-f.Config().BaseLatency.Seconds()) + f.Config().BaseLatency.Seconds()
	if got := doneAt.Seconds(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("flow over half-capacity link took %.6fs, want %.6fs (healthy %.6fs)",
			got, want, baseline)
	}
}

// TestLinkDownStallsAndResumes: a flow crossing an administratively-down
// link makes no progress until the window closes, then finishes normally.
func TestLinkDownStallsAndResumes(t *testing.T) {
	const bytes = 1 << 20
	down := 2 * simtime.Millisecond
	eng, f := newTestFabric(t, 2)
	if err := f.ScheduleLinkFault("node0-up", 0, 0, down); err != nil {
		t.Fatal(err)
	}
	fl := f.StartFlow(0, 1, bytes)
	var doneAt simtime.Time
	eng.Spawn("w", func(p *simtime.Proc) {
		fl.Done().Await(p, "flow")
		doneAt = p.Now()
	})
	runAll(t, eng)
	want := down.Seconds() + f.IdealTransferTime(bytes).Seconds()
	if got := doneAt.Seconds(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("flow behind a %v down window finished at %.6fs, want %.6fs", down, got, want)
	}
}

// TestHealthQueries: Degraded/PathDegraded/PathDownUntil track the fault
// window edges.
func TestHealthQueries(t *testing.T) {
	eng, f := newTestFabric(t, 3)
	start, dur := simtime.Millisecond, simtime.Millisecond
	if err := f.ScheduleLinkFault("node1-up", 0, start, dur); err != nil {
		t.Fatal(err)
	}
	if f.Degraded() {
		t.Error("fabric degraded before the window opens")
	}
	probe := func(at simtime.Duration, wantDeg bool) {
		eng.At(simtime.Time(0).Add(at), func() {
			if f.Degraded() != wantDeg {
				t.Errorf("at %v: Degraded() = %v, want %v", at, f.Degraded(), wantDeg)
			}
			if f.PathDegraded(1, 0) != wantDeg {
				t.Errorf("at %v: PathDegraded(1,0) = %v, want %v", at, f.PathDegraded(1, 0), wantDeg)
			}
			if f.PathDegraded(0, 2) {
				t.Errorf("at %v: path 0→2 reported degraded, node1-up is not on it", at)
			}
			until, isDown := f.PathDownUntil(1, 0)
			if isDown != wantDeg {
				t.Errorf("at %v: PathDownUntil down = %v, want %v", at, isDown, wantDeg)
			}
			if wantDeg {
				if want := simtime.Time(0).Add(start + dur); until != want {
					t.Errorf("at %v: down until %v, want %v", at, until, want)
				}
				if got := f.DegradedLinks(); len(got) != 1 || got[0] != "node1-up" {
					t.Errorf("at %v: DegradedLinks = %v", at, got)
				}
			}
		})
	}
	probe(start/2, false)
	probe(start+dur/2, true)
	probe(start+dur+dur/2, false)
	runAll(t, eng)
}

// TestStarvedFlowError: a zero-rate flow on a healthy path is a fabric
// logic error reported through the engine, not a panic.
func TestStarvedFlowError(t *testing.T) {
	eng, f := newTestFabric(t, 2)
	f.StartFlow(0, 1, 1<<20)
	// Corrupt the capacity directly (adminFactor stays 1, so the path
	// counts as healthy) and force a recompute.
	f.up[0].cap = 0
	f.advance()
	f.reschedule()
	_, err := eng.Run(simtime.Infinity)
	var sf *StarvedFlowError
	if !errors.As(err, &sf) {
		t.Fatalf("Run returned %v, want a StarvedFlowError", err)
	}
	if sf.Src != 0 || sf.Dst != 1 || sf.Bytes != 1<<20 {
		t.Errorf("starved flow identity = %+v", sf)
	}
	msg := sf.Error()
	for _, want := range []string{"starved", "node0-up", "0->1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
