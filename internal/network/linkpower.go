package network

import (
	"fmt"

	"pacc/internal/simtime"
)

// Link power management implements the direction the paper's conclusion
// lists alongside the CPU work ("explore various design challenges
// involved with conserving InfiniBand network power dynamically", after
// refs [16]-[19]): physical links draw different power when carrying
// traffic, sitting idle, or put into a low-power sleep state after an
// idle timeout, and waking a sleeping link costs latency.
//
// The model covers the physical ports: node up/down links and rack
// uplinks. The loopback path is memory traffic, not a port, and draws
// nothing here.

// LinkPowerConfig calibrates per-port power. The zero value disables
// network power accounting entirely.
type LinkPowerConfig struct {
	// ActiveWatts is one port's draw while at least one flow crosses it.
	ActiveWatts float64
	// IdleWatts is the draw of a powered port with no traffic
	// (InfiniBand SerDes stay lit; idle draw is close to active).
	IdleWatts float64
	// SleepWatts is the draw in the low-power state.
	SleepWatts float64
	// SleepAfter is the idle time after which a port drops into the
	// low-power state. Zero keeps ports at idle power forever (no
	// dynamic management).
	SleepAfter simtime.Duration
	// WakeLatency is added to a transfer that finds any of its ports
	// asleep.
	WakeLatency simtime.Duration
}

// Enabled reports whether any accounting is configured.
func (c LinkPowerConfig) Enabled() bool {
	return c.ActiveWatts > 0 || c.IdleWatts > 0 || c.SleepWatts > 0
}

// Validate rejects inconsistent configurations.
func (c LinkPowerConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.ActiveWatts < c.IdleWatts {
		return fmt.Errorf("network: ActiveWatts %g below IdleWatts %g", c.ActiveWatts, c.IdleWatts)
	}
	if c.SleepWatts > c.IdleWatts {
		return fmt.Errorf("network: SleepWatts %g above IdleWatts %g", c.SleepWatts, c.IdleWatts)
	}
	if c.SleepWatts < 0 || c.SleepAfter < 0 || c.WakeLatency < 0 {
		return fmt.Errorf("network: negative link power constant")
	}
	return nil
}

// DefaultLinkPower returns a QDR-era calibration: ~5 W per active port,
// nearly as much idle, one tenth asleep.
func DefaultLinkPower() LinkPowerConfig {
	return LinkPowerConfig{
		ActiveWatts: 5.0,
		IdleWatts:   4.5,
		SleepWatts:  0.5,
		SleepAfter:  100 * simtime.Microsecond,
		WakeLatency: simtime.Micros(10),
	}
}

// linkPowerState tracks one port's power timeline.
type linkPowerState struct {
	flows      int
	asleep     bool
	energyJ    float64
	lastChange simtime.Time
	// sleepGen invalidates stale sleep timers when the port reactivates.
	sleepGen uint64
}

// netPower is the fabric-wide link power tracker.
type netPower struct {
	eng   *simtime.Engine
	cfg   LinkPowerConfig
	state map[*link]*linkPowerState
	ports []*link
}

func newNetPower(eng *simtime.Engine, cfg LinkPowerConfig, ports []*link) *netPower {
	np := &netPower{eng: eng, cfg: cfg, state: map[*link]*linkPowerState{}, ports: ports}
	for _, l := range ports {
		st := &linkPowerState{lastChange: eng.Now()}
		np.state[l] = st
		// Idle ports sleep after the timeout even if they never carry
		// traffic.
		np.armSleep(st)
	}
	return np
}

// armSleep schedules the transition to the low-power state after the idle
// timeout, unless the port reactivates first.
func (np *netPower) armSleep(st *linkPowerState) {
	if np.cfg.SleepAfter <= 0 {
		return
	}
	gen := st.sleepGen
	np.eng.After(np.cfg.SleepAfter, func() {
		if st.sleepGen != gen || st.flows > 0 || st.asleep {
			return
		}
		np.accrue(st)
		st.asleep = true
	})
}

func (np *netPower) wattsOf(st *linkPowerState) float64 {
	switch {
	case st.flows > 0:
		return np.cfg.ActiveWatts
	case st.asleep:
		return np.cfg.SleepWatts
	default:
		return np.cfg.IdleWatts
	}
}

func (np *netPower) accrue(st *linkPowerState) {
	now := np.eng.Now()
	dt := now.Sub(st.lastChange).Seconds()
	if dt > 0 {
		st.energyJ += np.wattsOf(st) * dt
	}
	st.lastChange = now
}

// wakeDelay prepares the ports of a flow: ports asleep start waking now
// and the returned delay is the worst wake latency (0 if all lit).
func (np *netPower) wakeDelay(links []*link) simtime.Duration {
	var delay simtime.Duration
	for _, l := range links {
		st, ok := np.state[l]
		if !ok {
			continue
		}
		if st.asleep {
			np.accrue(st)
			st.asleep = false
			// Invalidate any armed sleep timer so it cannot re-fire
			// during the wake window.
			st.sleepGen++
			if np.cfg.WakeLatency > delay {
				delay = np.cfg.WakeLatency
			}
		}
	}
	return delay
}

// flowAdded marks ports active.
func (np *netPower) flowAdded(links []*link) {
	for _, l := range links {
		st, ok := np.state[l]
		if !ok {
			continue
		}
		np.accrue(st)
		st.flows++
		st.sleepGen++
	}
}

// flowRemoved marks ports idle and arms their sleep timers.
func (np *netPower) flowRemoved(links []*link) {
	for _, l := range links {
		st, ok := np.state[l]
		if !ok {
			continue
		}
		np.accrue(st)
		st.flows--
		if st.flows > 0 {
			continue
		}
		st.sleepGen++
		np.armSleep(st)
	}
}

// watts sums the instantaneous draw of all ports.
func (np *netPower) watts() float64 {
	w := 0.0
	for _, l := range np.ports {
		w += np.wattsOf(np.state[l])
	}
	return w
}

// energy sums port energy up to now.
func (np *netPower) energy() float64 {
	j := 0.0
	for _, l := range np.ports {
		st := np.state[l]
		np.accrue(st)
		j += st.energyJ
	}
	return j
}

// sleeping counts ports currently in the low-power state.
func (np *netPower) sleeping() int {
	n := 0
	for _, l := range np.ports {
		if np.state[l].asleep {
			n++
		}
	}
	return n
}
