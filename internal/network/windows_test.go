package network

import (
	"testing"

	"pacc/internal/simtime"
)

// sampleFactor records the named link's admin factor at each probe time.
func sampleFactor(eng *simtime.Engine, f *Fabric, name string, at []simtime.Duration) []float64 {
	out := make([]float64, len(at))
	l := f.linkByName(name)
	for i, d := range at {
		i, d := i, d
		eng.At(simtime.Time(0).Add(d), func() { out[i] = l.adminFactor })
	}
	return out
}

// Overlapping windows on the same link compose to the minimum of the open
// factors, and a window closing restores the minimum of the remainder —
// not blindly full capacity.
func TestOverlappingWindowsComposeToMinimum(t *testing.T) {
	eng, f := newTestFabric(t, 2)
	ms := simtime.Millisecond
	if err := f.ScheduleLinkFault("node0-up", 0.5, 1*ms, 4*ms); err != nil { // [1ms, 5ms)
		t.Fatal(err)
	}
	if err := f.ScheduleLinkFault("node0-up", 0, 2*ms, 4*ms); err != nil { // [2ms, 6ms) down
		t.Fatal(err)
	}
	got := sampleFactor(eng, f, "node0-up", []simtime.Duration{
		ms / 2,      // before both
		3 * ms / 2,  // degrade only
		3 * ms,      // overlap: down wins
		11 * ms / 2, // degrade window closed, down still open
		13 * ms / 2, // both closed
	})
	runAll(t, eng)
	want := []float64{1, 0.5, 0, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: factor %g, want %g (all %v)", i, got[i], want[i], got)
		}
	}
}

// A nested deeper degradation ending must restore the enclosing window's
// factor, not full capacity.
func TestNestedWindowRestoresEnclosingFactor(t *testing.T) {
	eng, f := newTestFabric(t, 2)
	ms := simtime.Millisecond
	if err := f.ScheduleLinkFault("node0-up", 0.5, 0, 4*ms); err != nil { // [0, 4ms)
		t.Fatal(err)
	}
	if err := f.ScheduleLinkFault("node0-up", 0.25, 1*ms, 1*ms); err != nil { // [1ms, 2ms)
		t.Fatal(err)
	}
	got := sampleFactor(eng, f, "node0-up", []simtime.Duration{
		ms / 2, 3 * ms / 2, 3 * ms, 5 * ms,
	})
	runAll(t, eng)
	want := []float64{0.5, 0.25, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: factor %g, want %g (all %v)", i, got[i], want[i], got)
		}
	}
}

// Zero-length (and negative) windows are rejected up front rather than
// leaving a window that opens and never closes.
func TestZeroLengthWindowRejected(t *testing.T) {
	_, f := newTestFabric(t, 2)
	if err := f.ScheduleLinkFault("node0-up", 0.5, simtime.Millisecond, 0); err == nil {
		t.Fatal("zero-length window accepted")
	}
	if err := f.ScheduleLinkFault("node0-up", 0.5, simtime.Millisecond, -simtime.Microsecond); err == nil {
		t.Fatal("negative-length window accepted")
	}
}

// A window opening at t=0 must degrade the very first flow, and a window
// scheduled to close long after the last flow finishes must not wedge the
// run: the engine drains the close event and restores the link.
func TestWindowAtTimeZeroAndPastRunEnd(t *testing.T) {
	const bytes = 1 << 20
	eng, f := newTestFabric(t, 2)
	if err := f.ScheduleLinkFault("node0-up", 0.5, 0, 1000*simtime.Second); err != nil {
		t.Fatal(err)
	}
	fl := f.StartFlow(0, 1, bytes)
	var done bool
	eng.Spawn("w", func(p *simtime.Proc) {
		fl.Done().Await(p, "flow")
		done = true
	})
	runAll(t, eng)
	if !done {
		t.Fatal("flow did not finish under an open window")
	}
	if l := f.linkByName("node0-up"); l.adminFactor != 1 || len(l.faults) != 0 {
		t.Fatalf("after the close event drained: factor %g, %d open windows", l.adminFactor, len(l.faults))
	}
}
