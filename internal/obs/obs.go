// Package obs is the unified cross-layer observability substrate of the
// simulator: a simulation-time event bus collecting named spans, instant
// events, counters and histograms from every layer — MPI message
// lifecycle, network flows, collective phases and per-core power states —
// onto one timeline.
//
// The bus is disabled by default: every producer holds a possibly-nil
// *Bus, and all Bus methods are safe (and nearly free) on a nil receiver,
// so instrumented hot paths cost one pointer test when observability is
// off. Attach a bus with mpi.(*World).AttachObs (or the pacc facade's
// AttachObs) before Launch, run the simulation, then export a merged
// Chrome/Perfetto trace with WriteChromeTrace and a metrics snapshot with
// WriteMetricsJSON.
//
// Exports are deterministic: events keep their (deterministic) emission
// order, sorts are stable, and JSON maps marshal with sorted keys, so two
// identical runs produce byte-identical artifacts.
package obs

import (
	"fmt"
	"sync"

	"pacc/internal/simtime"
)

// Track identifies one timeline row of the exported trace: a Chrome
// (process, thread) pair. By convention pid is the node index for on-node
// activity (cores, ranks) and PIDNetwork for the fabric.
type Track struct {
	PID int
	TID int
}

// PIDNetwork is the trace process that hosts network-flow spans.
const PIDNetwork = 1 << 20

// TIDRankBase offsets rank timelines above core timelines within a node
// process: core tids are global core indices, rank tids are
// TIDRankBase+rank.
const TIDRankBase = 1 << 12

// RankTrack returns the timeline of one MPI rank (collective phases,
// message lifecycle, waits).
func RankTrack(node, rank int) Track {
	return Track{PID: node, TID: TIDRankBase + rank}
}

// CoreTrack returns the timeline of one core's power states.
func CoreTrack(node, core int) Track {
	return Track{PID: node, TID: core}
}

// NetTrack returns the fabric timeline keyed by source node.
func NetTrack(srcNode int) Track {
	return Track{PID: PIDNetwork, TID: srcNode}
}

// Well-known metric names shared between the instrumented layers and the
// exported snapshot. Counters unless noted.
const (
	// MPI point-to-point traffic (see mpi.MsgStats).
	CtrShmEager      = "mpi.msgs.shm_eager"
	CtrShmRendezvous = "mpi.msgs.shm_rendezvous"
	CtrNetEager      = "mpi.msgs.net_eager"
	CtrNetRendezvous = "mpi.msgs.net_rendezvous"
	CtrControlMsgs   = "mpi.msgs.control"
	CtrShmBytes      = "mpi.bytes.shm"
	CtrNetBytes      = "mpi.bytes.net"

	// Wait-time attribution (durations): polling spins keep the core
	// busy, blocking waits idle it (§II-B).
	DurWaitSpin  = "mpi.wait.spin"
	DurWaitBlock = "mpi.wait.block"

	// Network flow accounting.
	CtrNetFlows     = "net.flows"
	CtrNetFlowBytes = "net.flow_bytes"
	// DurLinkBusyPrefix prefixes per-link busy-time durations, e.g.
	// "net.link_busy.node3-up".
	DurLinkBusyPrefix = "net.link_busy."

	// P/T-state transition counts and hardware-paced overhead time.
	CtrDVFSTransitions     = "power.dvfs.transitions"
	CtrThrottleTransitions = "power.throttle.transitions"
	DurDVFSOverhead        = "power.dvfs.overhead"
	DurThrottleOverhead    = "power.throttle.overhead"

	// Per-collective metrics: "collective.<op>.calls" counters,
	// "collective.<op>.energy_j" histograms (joules per call, observed
	// by communicator rank 0), "collective.<op>.seconds" histograms.
	CollectivePrefix = "collective."

	// Fault-injection and resilience accounting (internal/fault).
	CtrFaultLinkEvents       = "fault.link.events"
	CtrFaultMsgDrops         = "fault.msg.drops"
	CtrFaultMsgRetransmits   = "fault.msg.retransmits"
	CtrFaultMsgRequeues      = "fault.msg.requeues"
	CtrFaultRetriesExhausted = "fault.msg.retries_exhausted"
	CtrFaultPowerDelays      = "fault.power.delays"
	DurFaultPowerDelay       = "fault.power.delay"
	// End-to-end integrity: injected corruption and its detection.
	// CtrFaultMsgCorruptions counts in-flight bit flips injected into
	// protocol messages; CtrFaultMsgNacks the ICRC rejects NACKed back to
	// the sender (one per corruption today — kept separate so a future
	// coalescing receiver stays observable). CtrFaultMemCorruptions counts
	// memory-burst hits on reduction accumulators (invisible to the
	// transport), and CtrIntegrityVerifyFails the ABFT checksum mismatches
	// that caught them.
	CtrFaultMsgCorruptions  = "fault.msg.corruptions"
	CtrFaultMsgNacks        = "integrity.icrc.nacks"
	CtrFaultMemCorruptions  = "fault.mem.corruptions"
	CtrIntegrityVerifyFails = "integrity.verify.failures"
	// Crash-stop failure and ULFM-style recovery counters.
	CtrFaultRankCrashes  = "fault.rank.crashes"
	CtrFaultMsgsToDead   = "fault.msg.to_dead"
	CtrFaultPeerFailures = "fault.peer.failures_detected"
	CtrFaultCommRevokes  = "fault.comm.revokes"
	CtrFaultAgreements   = "fault.comm.agreements"
	// CtrCollectiveFallbacks counts collectives that abandoned their
	// topology-aware schedule for a degradation-tolerant variant.
	CtrCollectiveFallbacks = "collective.fallbacks"
	// CtrCollectiveRecoveries counts resilient-collective rounds that
	// shrank the communicator and retried after a failure.
	CtrCollectiveRecoveries = "collective.recoveries"
	// Fail-slow (gray failure) detection and mitigation. Lost transitions
	// are P/T-state writes the hardware silently dropped (the stickfail=
	// clause); recoveries are bounded re-issues that landed; censuses are
	// SPMD suspect agreements (Comm.AgreeSuspects); demotions count
	// communicator reorders that moved agreed suspects to leaf positions.
	CtrFaultTransitionsLost = "fault.power.transitions_lost"
	CtrFaultPowerRecoveries = "fault.power.recoveries"
	CtrFaultSuspectCensuses = "fault.comm.suspect_censuses"
	CtrCollectiveDemotions  = "collective.demotions"
)

// TIDFault is the network-process timeline row carrying fault-window
// markers (link degradation, link down/up).
const TIDFault = 1 << 16

// FaultTrack returns the timeline of injected fabric fault events.
func FaultTrack() Track {
	return Track{PID: PIDNetwork, TID: TIDFault}
}

// eventChunkSize is the block size of the timeline arena. 4096 events
// of ~100 bytes keep blocks well under typical large-object thresholds
// while amortizing allocation to one per few thousand emissions.
const eventChunkSize = 4096

// event is one timeline entry, stored in emission order.
type event struct {
	name  string
	cat   string
	ph    byte // 'X' complete, 'i' instant, 'b'/'e' async begin/end
	ts    simtime.Time
	dur   simtime.Duration
	track Track
	id    uint64
	args  map[string]any
}

// Event is the exported form of one timeline event, delivered to
// streaming subscribers (Subscribe) and replay consumers (EachEvent).
// Phase follows the Chrome trace-event convention: 'X' complete span,
// 'i' instant, 'b'/'e' async begin/end. Args is shared with the bus's
// own record — consumers must treat it as read-only.
type Event struct {
	Name    string
	Cat     string
	Phase   byte
	Time    simtime.Time
	Dur     simtime.Duration
	Track   Track
	AsyncID uint64
	Args    map[string]any
}

func (e event) exported() Event {
	return Event{
		Name: e.name, Cat: e.cat, Phase: e.ph, Time: e.ts, Dur: e.dur,
		Track: e.track, AsyncID: e.id, Args: e.args,
	}
}

// SubID identifies one streaming subscription (0 is the invalid id
// returned by a nil bus).
type SubID int

type subscriber struct {
	id SubID
	fn func(Event)
}

// Histogram summarizes a stream of observations. When bucket bounds are
// declared (SetHistBuckets) it additionally counts observations per
// bucket with deterministic edge behavior: observation v lands in the
// first bucket whose upper bound is >= v (boundary values land in the
// bucket they bound, the "le" rule), values above every bound land in the
// implicit overflow bucket, and NaN — which compares false against every
// bound — lands in the overflow bucket too. A zero observation (e.g. a
// zero-duration span's seconds) therefore lands in the first bucket
// whenever the first bound is >= 0.
type Histogram struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
	// Bounds are the declared bucket upper bounds (sorted ascending);
	// BucketCounts has len(Bounds)+1 entries, the last being the overflow
	// bucket. Both are nil for a plain histogram.
	Bounds       []float64
	BucketCounts []int64
}

// bucketIndex returns the index of the bucket v lands in under the le
// rule: the first bound >= v, or len(bounds) (overflow) when no bound
// qualifies — which also catches NaN deterministically.
func bucketIndex(bounds []float64, v float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

// Mean returns Sum/Count (0 when empty).
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Bus accumulates observability data for one simulation. Construct with
// NewBus; a nil *Bus is a valid, disabled bus.
//
// A Bus is safe for concurrent use: emitters, counter/histogram
// updates, Subscribe/Unsubscribe and the export methods may race freely
// (the sweep service shares one telemetry bus across its worker pool).
// Within one simulation nothing ever contends — the engine serializes
// all rank activity — so the lock stays uncontended and the recorded
// stream stays deterministic. Under genuinely concurrent emitters the
// recorded order is the lock-acquisition order, and subscribers may
// observe events from several goroutines at once.
type Bus struct {
	eng *simtime.Engine
	mu  sync.Mutex
	// The timeline is a chunked arena: fixed-size blocks that fill in
	// emission order. Unlike one growing slice, recording never recopies
	// what came before — appending is a slot write, a new block is
	// allocated once per eventChunkSize emissions, and readers can
	// snapshot (chunks, nEvents) and iterate without holding the lock,
	// because filled slots are immutable.
	chunks  []*[eventChunkSize]event
	nEvents int
	// procNames / threadNames are export metadata ("node 3", "rank 17").
	procNames   map[int]string
	threadNames map[Track]string
	counters    map[string]int64
	durations   map[string]simtime.Duration
	hists       map[string]*Histogram
	nextAsync   uint64
	// subs are the live streaming subscribers; nextSub numbers them.
	// Subscriptions never perturb what the bus records: with zero
	// subscribers every emission costs one extra len check, and the
	// counters, durations, histograms and timeline stay byte-identical
	// whether or not anyone is listening.
	subs    []subscriber
	nextSub SubID
}

// NewBus returns an enabled bus reading time from eng.
func NewBus(eng *simtime.Engine) *Bus {
	return &Bus{
		eng:         eng,
		procNames:   make(map[int]string),
		threadNames: make(map[Track]string),
		counters:    make(map[string]int64),
		durations:   make(map[string]simtime.Duration),
		hists:       make(map[string]*Histogram),
	}
}

// Enabled reports whether the bus records anything (false for nil).
func (b *Bus) Enabled() bool { return b != nil }

// Now returns the bus clock (zero for a nil bus).
func (b *Bus) Now() simtime.Time {
	if b == nil {
		return 0
	}
	return b.eng.Now()
}

// SetProcessName labels a trace process (Perfetto group), e.g. "node 2".
func (b *Bus) SetProcessName(pid int, name string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.procNames[pid] = name
	b.mu.Unlock()
}

// SetThreadName labels one timeline row, e.g. "rank 17".
func (b *Bus) SetThreadName(t Track, name string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.threadNames[t] = name
	b.mu.Unlock()
}

// emit appends ev to the timeline and fans it out to any streaming
// subscribers. The subscriber slice is snapshotted under the lock (it
// is copy-on-write, so the snapshot is immutable) and delivery happens
// outside it, so a callback that unsubscribes, subscribes, or emits
// cannot corrupt the iteration or deadlock.
func (b *Bus) emit(ev event) {
	b.mu.Lock()
	ci, off := b.nEvents/eventChunkSize, b.nEvents%eventChunkSize
	if off == 0 && ci == len(b.chunks) {
		b.chunks = append(b.chunks, new([eventChunkSize]event))
	}
	b.chunks[ci][off] = ev
	b.nEvents++
	subs := b.subs
	b.mu.Unlock()
	if len(subs) == 0 {
		return
	}
	out := ev.exported()
	for _, s := range subs {
		s.fn(out)
	}
}

// Subscribe registers fn to receive every subsequently emitted timeline
// event, in emission order, synchronously from the emitting (simulated)
// context. Events already recorded are not replayed — use EachEvent to
// catch up. Subscribers observe, they never alter: the bus's recorded
// state is identical with zero or many subscribers. Returns 0 on a nil
// bus (Unsubscribe ignores it).
func (b *Bus) Subscribe(fn func(Event)) SubID {
	if b == nil || fn == nil {
		return 0
	}
	b.mu.Lock()
	b.nextSub++
	id := b.nextSub
	// Copy-on-write: emit may be delivering from the old slice.
	next := make([]subscriber, len(b.subs), len(b.subs)+1)
	copy(next, b.subs)
	b.subs = append(next, subscriber{id: id, fn: fn})
	b.mu.Unlock()
	return id
}

// Unsubscribe removes a streaming subscription. Unknown (or zero) ids are
// ignored, so unsubscribing twice is safe.
func (b *Bus) Unsubscribe(id SubID) {
	if b == nil || id == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, s := range b.subs {
		if s.id == id {
			// Copy-on-write: emit may be iterating the old slice.
			next := make([]subscriber, 0, len(b.subs)-1)
			next = append(next, b.subs[:i]...)
			next = append(next, b.subs[i+1:]...)
			b.subs = next
			return
		}
	}
}

// EachEvent replays every recorded timeline event, in emission order, to
// fn. Combined with Subscribe this gives a late subscriber a complete
// stream: replay first, then subscribe. Nil-safe.
func (b *Bus) EachEvent(fn func(Event)) {
	if b == nil || fn == nil {
		return
	}
	chunks, n := b.snapshotEvents()
	// Slots below n are immutable; concurrent appends only fill later
	// slots (or later chunks), so the snapshot iterates race-free.
	forEachEvent(chunks, n, func(ev event) {
		fn(ev.exported())
	})
}

// snapshotEvents captures the arena state for lock-free iteration.
func (b *Bus) snapshotEvents() ([]*[eventChunkSize]event, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.chunks, b.nEvents
}

// forEachEvent walks the first n recorded events in emission order.
func forEachEvent(chunks []*[eventChunkSize]event, n int, fn func(event)) {
	for i := 0; i < n; i += eventChunkSize {
		c := chunks[i/eventChunkSize]
		end := eventChunkSize
		if n-i < end {
			end = n - i
		}
		for j := 0; j < end; j++ {
			fn(c[j])
		}
	}
}

// Span records a complete span over [start, end). Zero-length spans are
// dropped (they carry no time and clutter the timeline); a zero-duration
// observation fed to a bucketed histogram still lands deterministically
// in its first bucket (see Histogram).
func (b *Bus) Span(t Track, name string, start, end simtime.Time, args map[string]any) {
	if b == nil || end <= start {
		return
	}
	b.emit(event{
		name: name, ph: 'X', ts: start, dur: end.Sub(start), track: t, args: args,
	})
}

// SpanHandle is an open span created by Begin; call End (or EndWith) from
// the same logical thread when the spanned region finishes. The zero
// value (from a nil bus) is inert.
type SpanHandle struct {
	b     *Bus
	t     Track
	name  string
	start simtime.Time
	args  map[string]any
}

// Begin opens a span at the current simulation time.
func (b *Bus) Begin(t Track, name string, args map[string]any) SpanHandle {
	if b == nil {
		return SpanHandle{}
	}
	return SpanHandle{b: b, t: t, name: name, start: b.eng.Now(), args: args}
}

// End closes the span at the current simulation time.
func (s SpanHandle) End() {
	if s.b == nil {
		return
	}
	s.b.Span(s.t, s.name, s.start, s.b.eng.Now(), s.args)
}

// EndWith closes the span with extra args merged over Begin's.
func (s SpanHandle) EndWith(args map[string]any) {
	if s.b == nil {
		return
	}
	merged := s.args
	if merged == nil {
		merged = args
	} else {
		for k, v := range args {
			merged[k] = v
		}
	}
	s.b.Span(s.t, s.name, s.start, s.b.eng.Now(), merged)
}

// Instant records a zero-duration marker event.
func (b *Bus) Instant(t Track, name string, args map[string]any) {
	if b == nil {
		return
	}
	b.emit(event{
		name: name, ph: 'i', ts: b.eng.Now(), track: t, args: args,
	})
}

// AsyncBegin opens an asynchronous span — a lifecycle that starts and
// ends on different logical threads or overlaps others on its track
// (message deliveries, network flows). It returns the id to pass to
// AsyncEnd; 0 from a nil bus (AsyncEnd ignores it).
func (b *Bus) AsyncBegin(t Track, cat, name string, args map[string]any) uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	b.nextAsync++
	id := b.nextAsync
	b.mu.Unlock()
	b.emit(event{
		name: name, cat: cat, ph: 'b', ts: b.eng.Now(), track: t, id: id, args: args,
	})
	return id
}

// AsyncEnd closes the asynchronous span with the given id. The cat and
// name must match AsyncBegin's (Chrome pairs async events by them).
func (b *Bus) AsyncEnd(t Track, cat, name string, id uint64) {
	if b == nil || id == 0 {
		return
	}
	b.emit(event{
		name: name, cat: cat, ph: 'e', ts: b.eng.Now(), track: t, id: id,
	})
}

// UnbalancedAsyncs returns, per track, the names of async spans that were
// begun but never ended (insertion order). Balanced instrumentation — every
// message lifecycle closed — returns an empty map. The chaos harness uses
// it as an invariant, excusing the tracks of crashed ranks: a rank that
// dies mid-transfer legitimately leaves its in-flight spans open
// (tombstones of the crash), while an open span on a survivor's track
// means a leaked lifecycle. Nil-safe.
func (b *Bus) UnbalancedAsyncs(skip func(Track) bool) map[Track][]string {
	if b == nil {
		return nil
	}
	type openKey struct {
		track Track
		id    uint64
	}
	chunks, n := b.snapshotEvents()
	open := map[openKey]string{}
	var order []openKey
	forEachEvent(chunks, n, func(ev event) {
		k := openKey{track: ev.track, id: ev.id}
		switch ev.ph {
		case 'b':
			open[k] = ev.name
			order = append(order, k)
		case 'e':
			delete(open, k)
		}
	})
	out := map[Track][]string{}
	for _, k := range order {
		name, stillOpen := open[k]
		if !stillOpen || (skip != nil && skip(k.track)) {
			continue
		}
		out[k.track] = append(out[k.track], name)
	}
	return out
}

// Add accrues delta into a named counter.
func (b *Bus) Add(name string, delta int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.counters[name] += delta
	b.mu.Unlock()
}

// AddDuration accrues d into a named duration accumulator.
func (b *Bus) AddDuration(name string, d simtime.Duration) {
	if b == nil || d <= 0 {
		return
	}
	b.mu.Lock()
	b.durations[name] += d
	b.mu.Unlock()
}

// SetHistBuckets declares bucket upper bounds for a named histogram
// before its first observation. Bounds must be sorted ascending; an
// unsorted, empty, or late declaration (the histogram already exists) is
// ignored, so repeated declarations from per-call instrumentation are
// cheap no-ops and the first declaration wins deterministically.
func (b *Bus) SetHistBuckets(name string, bounds []float64) {
	if b == nil || len(bounds) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.hists[name] != nil {
		return
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if !(own[i] > own[i-1]) {
			return
		}
	}
	b.hists[name] = &Histogram{
		Bounds:       own,
		BucketCounts: make([]int64, len(own)+1),
	}
}

// Observe feeds one sample into a named histogram.
func (b *Bus) Observe(name string, v float64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.hists[name]
	if h == nil {
		h = &Histogram{Min: v, Max: v}
		b.hists[name] = h
	}
	if v < h.Min || h.Count == 0 {
		h.Min = v
	}
	if v > h.Max || h.Count == 0 {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	if h.Bounds != nil {
		h.BucketCounts[bucketIndex(h.Bounds, v)]++
	}
}

// Counter returns the current value of a counter (0 if never touched or
// the bus is nil).
func (b *Bus) Counter(name string) int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counters[name]
}

// Duration returns the accumulated duration under name.
func (b *Bus) Duration(name string) simtime.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.durations[name]
}

// Hist returns a copy of the named histogram (zero value if absent).
// Bucket slices are copied too, so callers may keep the result.
func (b *Bus) Hist(name string) Histogram {
	if b == nil {
		return Histogram{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if h := b.hists[name]; h != nil {
		out := *h
		if h.Bounds != nil {
			out.Bounds = append([]float64(nil), h.Bounds...)
			out.BucketCounts = append([]int64(nil), h.BucketCounts...)
		}
		return out
	}
	return Histogram{}
}

// SpanDurationBuckets are the default bucket bounds (seconds) for span-
// duration histograms: half-decade steps from 1µs to 100s, bracketing
// everything a collective call can take in the simulated testbeds. The
// first bound is 0 so zero-duration observations land in bucket 0.
var SpanDurationBuckets = []float64{
	0,
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
	1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1,
	1, 5, 10, 50, 100,
}

// EnergyBuckets are the default bucket bounds (joules) for per-call
// energy histograms: decades from 1mJ to 1MJ.
var EnergyBuckets = []float64{
	0, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1e3, 1e4, 1e5, 1e6,
}

// Events reports how many timeline events have been recorded.
func (b *Bus) Events() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nEvents
}

// SizeLabel formats a byte count the way span names do (power-of-two
// units, e.g. "256KiB"), shared so traces stay uniform across layers.
func SizeLabel(bytes int64) string {
	switch {
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", bytes>>20)
	case bytes >= 1<<10 && bytes%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", bytes>>10)
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}
