package obs

import (
	"testing"

	"pacc/internal/simtime"
)

// TestNilBusEmissionAllocs proves the disabled path costs nothing: every
// producer in the simulator holds a possibly-nil *Bus, so emission on a
// nil receiver must be a pointer test and nothing else.
func TestNilBusEmissionAllocs(t *testing.T) {
	var b *Bus
	tr := RankTrack(0, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		b.Span(tr, "op", 0, simtime.Time(10), nil)
		b.Instant(tr, "mark", nil)
		id := b.AsyncBegin(tr, "cat", "xfer", nil)
		b.AsyncEnd(tr, "cat", "xfer", id)
		b.Add(CtrNetFlows, 1)
		b.AddDuration(DurWaitSpin, simtime.Duration(5))
		b.Observe("h", 1.0)
		b.Begin(tr, "span", nil).End()
	})
	if allocs != 0 {
		t.Fatalf("nil-bus emission allocated %.1f objects/op, want 0", allocs)
	}
}

// TestAttachedBusSteadyStateAllocs proves the chunked arena amortizes
// recording: with a bus attached but no streaming subscriber, emitting a
// span into a warm chunk allocates nothing (a new 4096-slot block is
// allocated once per eventChunkSize emissions, not per event).
func TestAttachedBusSteadyStateAllocs(t *testing.T) {
	b := NewBus(simtime.NewEngine())
	tr := RankTrack(0, 0)
	// Warm the first chunk (and the chunks slice) so the measured window
	// stays strictly inside one block: 1 + 3*1000 < eventChunkSize.
	b.Span(tr, "warm", 0, simtime.Time(1), nil)
	allocs := testing.AllocsPerRun(1000, func() {
		b.Span(tr, "op", 0, simtime.Time(10), nil)
		b.Add(CtrNetFlows, 1)
		b.AddDuration(DurWaitSpin, simtime.Duration(5))
	})
	if allocs != 0 {
		t.Fatalf("no-subscriber emission allocated %.1f objects/op, want 0 (warm chunk)", allocs)
	}
	if got := b.Events(); got != 1+1001 {
		t.Fatalf("recorded %d events, want %d", got, 1+1001)
	}
}

// TestArenaChunkBoundaries exercises recording and replay across several
// chunk boundaries: every event written in emission order must come back
// in emission order, through both EachEvent and the export path's
// iterator.
func TestArenaChunkBoundaries(t *testing.T) {
	b := NewBus(simtime.NewEngine())
	tr := RankTrack(0, 0)
	const n = 2*eventChunkSize + 37
	for i := 0; i < n; i++ {
		b.Span(tr, "e", simtime.Time(i), simtime.Time(i+1), nil)
	}
	if got := b.Events(); got != n {
		t.Fatalf("Events() = %d, want %d", got, n)
	}
	i := 0
	b.EachEvent(func(ev Event) {
		if ev.Time != simtime.Time(i) {
			t.Fatalf("event %d has ts %d, want %d", i, ev.Time, i)
		}
		i++
	})
	if i != n {
		t.Fatalf("EachEvent replayed %d events, want %d", i, n)
	}
}
