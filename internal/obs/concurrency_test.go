package obs

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"pacc/internal/simtime"
)

// TestBusConcurrentEmitters hammers one bus from many goroutines —
// emitters, counter updates, subscribe/unsubscribe churn, replay and
// export — and relies on `go test -race` to flag any unsynchronized
// access. The sweep service shares one wall-clock telemetry bus across
// its whole worker pool, so this is its memory model, not a stress toy.
func TestBusConcurrentEmitters(t *testing.T) {
	b := NewBus(simtime.NewEngine())
	const goroutines, perG = 8, 200

	var delivered atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			track := Track{PID: g, TID: 0}
			for i := 0; i < perG; i++ {
				switch i % 5 {
				case 0:
					b.Instant(track, "tick", nil)
				case 1:
					b.Add("ctr.shared", 1)
					b.Observe("hist.shared", float64(i))
				case 2:
					id := b.Subscribe(func(Event) { delivered.Add(1) })
					b.Unsubscribe(id)
				case 3:
					b.EachEvent(func(Event) {})
					_ = b.Counter("ctr.shared")
				case 4:
					b.SetThreadName(track, "worker")
					var buf bytes.Buffer
					if err := b.WriteMetricsJSON(&buf); err != nil {
						t.Errorf("WriteMetricsJSON under contention: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if got := b.Counter("ctr.shared"); got != goroutines*perG/5 {
		t.Fatalf("shared counter = %d, want %d (lost updates)", got, goroutines*perG/5)
	}
	var n int
	b.EachEvent(func(Event) { n++ })
	if n != goroutines*perG/5 {
		t.Fatalf("recorded %d instants, want %d (lost events)", n, goroutines*perG/5)
	}
}

// TestBusSubscriberChurnDuringEmit pins down the copy-on-write
// contract: a subscriber that unsubscribes (or subscribes) from inside
// its own callback must not corrupt a concurrent fan-out.
func TestBusSubscriberChurnDuringEmit(t *testing.T) {
	b := NewBus(simtime.NewEngine())
	var fired atomic.Int64
	var id SubID
	id = b.Subscribe(func(Event) {
		fired.Add(1)
		b.Unsubscribe(id) // self-removal mid-delivery
	})
	stable := b.Subscribe(func(Event) { fired.Add(1) })

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Instant(Track{PID: g}, "churn", nil)
			}
		}(g)
	}
	wg.Wait()
	b.Unsubscribe(stable)
	if fired.Load() == 0 {
		t.Fatal("no subscriber callback ever fired")
	}
	b.Instant(Track{}, "after", nil) // must not reach anyone
	var n int
	b.EachEvent(func(Event) { n++ })
	if n != 401 {
		t.Fatalf("recorded %d events, want 401", n)
	}
}
