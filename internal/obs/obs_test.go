package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"pacc/internal/simtime"
)

func TestNilBusIsInert(t *testing.T) {
	var b *Bus
	if b.Enabled() {
		t.Fatal("nil bus reports enabled")
	}
	// None of these may panic.
	b.SetProcessName(0, "x")
	b.SetThreadName(Track{}, "x")
	b.Span(Track{}, "s", 0, 10, nil)
	sp := b.Begin(Track{}, "s", nil)
	sp.End()
	sp.EndWith(map[string]any{"k": 1})
	b.Instant(Track{}, "i", nil)
	id := b.AsyncBegin(Track{}, "c", "a", nil)
	if id != 0 {
		t.Fatalf("nil bus async id = %d, want 0", id)
	}
	b.AsyncEnd(Track{}, "c", "a", id)
	b.Add("c", 1)
	b.AddDuration("d", simtime.Millisecond)
	b.Observe("h", 1.0)
	if b.Counter("c") != 0 || b.Duration("d") != 0 || b.Events() != 0 {
		t.Fatal("nil bus accumulated data")
	}
	var buf bytes.Buffer
	if err := b.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCountersDurationsHistograms(t *testing.T) {
	eng := simtime.NewEngine()
	b := NewBus(eng)
	b.Add("msgs", 2)
	b.Add("msgs", 3)
	if got := b.Counter("msgs"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	b.AddDuration("wait", simtime.Millisecond)
	b.AddDuration("wait", 2*simtime.Millisecond)
	b.AddDuration("wait", -simtime.Millisecond) // ignored
	if got := b.Duration("wait"); got != 3*simtime.Millisecond {
		t.Fatalf("duration = %v, want 3ms", got)
	}
	for _, v := range []float64{4, 1, 9} {
		b.Observe("h", v)
	}
	h := b.Hist("h")
	if h.Count != 3 || h.Sum != 14 || h.Min != 1 || h.Max != 9 {
		t.Fatalf("hist = %+v", h)
	}
	if h.Mean() != 14.0/3.0 {
		t.Fatalf("mean = %g", h.Mean())
	}
}

func TestSpansAndExportShape(t *testing.T) {
	eng := simtime.NewEngine()
	b := NewBus(eng)
	b.SetProcessName(0, "node 0")
	b.SetProcessName(PIDNetwork, "network")
	b.SetThreadName(RankTrack(0, 1), "rank 1")

	done := false
	eng.Spawn("driver", func(p *simtime.Proc) {
		sp := b.Begin(RankTrack(0, 1), "alltoall", map[string]any{"bytes": 1024})
		p.Sleep(simtime.Millisecond)
		id := b.AsyncBegin(NetTrack(0), "net", "flow 0->1", nil)
		p.Sleep(simtime.Millisecond)
		b.AsyncEnd(NetTrack(0), "net", "flow 0->1", id)
		b.Instant(RankTrack(0, 1), "marker", nil)
		sp.End()
		// A zero-length span must be dropped.
		b.Span(RankTrack(0, 1), "empty", eng.Now(), eng.Now(), nil)
		done = true
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("driver did not finish")
	}
	if got := b.Events(); got != 4 { // span, async b, async e, instant
		t.Fatalf("events = %d, want 4", got)
	}

	var buf bytes.Buffer
	if err := b.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 3 metadata + 4 timeline events.
	if len(events) != 7 {
		t.Fatalf("exported %d events, want 7", len(events))
	}
	// Metadata first; timeline sorted by ts.
	if events[0]["ph"] != "M" || events[1]["ph"] != "M" || events[2]["ph"] != "M" {
		t.Fatalf("metadata not first: %v", events[:3])
	}
	lastTs := -1.0
	for _, ev := range events[3:] {
		ts := ev["ts"].(float64)
		if ts < lastTs {
			t.Fatalf("timeline not sorted: %g after %g", ts, lastTs)
		}
		lastTs = ts
	}
}

func TestMetricsJSONDeterministic(t *testing.T) {
	mk := func() []byte {
		eng := simtime.NewEngine()
		b := NewBus(eng)
		b.Add("z", 1)
		b.Add("a", 2)
		b.AddDuration("m", simtime.Micros(12.5))
		b.Observe("h", 3.25)
		b.Observe("h", 1.75)
		var buf bytes.Buffer
		if err := b.WriteMetricsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, c := mk(), mk()
	if !bytes.Equal(a, c) {
		t.Fatalf("metrics export not deterministic:\n%s\nvs\n%s", a, c)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["a"] != 2 || doc.Counters["z"] != 1 {
		t.Fatalf("counters = %v", doc.Counters)
	}
}

// TestHistogramBucketEdges pins the deterministic bucket landing rules:
// a value exactly on a bucket boundary lands in the bucket that boundary
// bounds (the "le" rule), a zero observation (a zero-duration span's
// seconds) lands in the first bucket when the first bound is >= 0, values
// above every bound land in the overflow bucket, and NaN lands in the
// overflow bucket rather than vanishing.
func TestHistogramBucketEdges(t *testing.T) {
	bounds := []float64{0, 1, 10, 100}
	cases := []struct {
		name   string
		v      float64
		bucket int
	}{
		{"zero duration on zero bound", 0, 0},
		{"negative below first bound", -5, 0},
		{"interior", 0.5, 1},
		{"exactly on boundary 1", 1, 1},
		{"exactly on boundary 10", 2, 2},
		{"boundary 10 itself", 10, 2},
		{"just above boundary", 10.000001, 3},
		{"exactly on last boundary", 100, 3},
		{"above every bound", 1e9, 4},
		{"NaN goes to overflow", math.NaN(), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := simtime.NewEngine()
			b := NewBus(eng)
			b.SetHistBuckets("h", bounds)
			b.Observe("h", tc.v)
			h := b.Hist("h")
			if h.Count != 1 {
				t.Fatalf("count = %d, want 1", h.Count)
			}
			for i, c := range h.BucketCounts {
				want := int64(0)
				if i == tc.bucket {
					want = 1
				}
				if c != want {
					t.Fatalf("Observe(%g): bucket %d count = %d, want %d (counts %v)",
						tc.v, i, c, want, h.BucketCounts)
				}
			}
		})
	}
}

func TestHistogramBucketDeclaration(t *testing.T) {
	eng := simtime.NewEngine()
	b := NewBus(eng)
	// Unsorted bounds are rejected.
	b.SetHistBuckets("bad", []float64{1, 1, 2})
	if h := b.Hist("bad"); h.Bounds != nil {
		t.Fatalf("unsorted bounds accepted: %v", h.Bounds)
	}
	// A late declaration (after the first observation) is ignored.
	b.Observe("late", 3)
	b.SetHistBuckets("late", []float64{1, 10})
	if h := b.Hist("late"); h.Bounds != nil {
		t.Fatal("late bucket declaration rebucketed a live histogram")
	}
	// Redeclaration is a no-op; the first declaration wins.
	b.SetHistBuckets("h", []float64{1, 10})
	b.SetHistBuckets("h", []float64{5})
	b.Observe("h", 7)
	h := b.Hist("h")
	if len(h.Bounds) != 2 || h.BucketCounts[1] != 1 {
		t.Fatalf("redeclaration changed buckets: %+v", h)
	}
	// The copy returned by Hist is detached from the live histogram.
	h.BucketCounts[1] = 99
	if b.Hist("h").BucketCounts[1] != 1 {
		t.Fatal("Hist returned a shared bucket slice")
	}
	// Bucketed histograms appear in the metrics JSON with an overflow
	// entry, and the export stays valid JSON.
	var buf bytes.Buffer
	if err := b.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Histograms map[string]struct {
			Buckets []struct {
				LE    *float64 `json:"le"`
				Count int64    `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	got := doc.Histograms["h"].Buckets
	if len(got) != 3 || got[2].LE != nil || got[1].Count != 1 {
		t.Fatalf("exported buckets = %+v", got)
	}
	if doc.Histograms["late"].Buckets != nil {
		t.Fatal("plain histogram exported buckets")
	}
}

// TestSubscribeStreams covers the streaming subscriber API: events are
// delivered in emission order, a subscription made mid-run sees only
// subsequent events (EachEvent replays the backlog), and unsubscribing
// mid-stream stops delivery without perturbing the bus.
func TestSubscribeStreams(t *testing.T) {
	eng := simtime.NewEngine()
	b := NewBus(eng)

	var all, late []string
	b.Subscribe(func(ev Event) { all = append(all, ev.Name) })

	var lateID SubID
	eng.Spawn("driver", func(p *simtime.Proc) {
		b.Instant(RankTrack(0, 0), "first", nil)
		p.Sleep(simtime.Millisecond)
		// Mid-run subscription: catches up via EachEvent, then streams.
		b.EachEvent(func(ev Event) { late = append(late, ev.Name) })
		lateID = b.Subscribe(func(ev Event) {
			late = append(late, ev.Name)
			if ev.Name == "third" {
				b.Unsubscribe(lateID) // unsubscribe from inside delivery
			}
		})
		b.Span(RankTrack(0, 0), "second", p.Now().Add(-simtime.Millisecond), p.Now(), nil)
		b.Instant(RankTrack(0, 0), "third", nil)
		b.Instant(RankTrack(0, 0), "fourth", nil) // after unsubscribe
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	wantAll := []string{"first", "second", "third", "fourth"}
	if !reflect.DeepEqual(all, wantAll) {
		t.Fatalf("full stream = %v, want %v", all, wantAll)
	}
	wantLate := []string{"first", "second", "third"}
	if !reflect.DeepEqual(late, wantLate) {
		t.Fatalf("late stream = %v, want %v", late, wantLate)
	}
	if got := b.Events(); got != 4 {
		t.Fatalf("bus recorded %d events, want 4", got)
	}
	// Double-unsubscribe and nil-bus subscriptions are inert.
	b.Unsubscribe(lateID)
	var nb *Bus
	if id := nb.Subscribe(func(Event) {}); id != 0 {
		t.Fatalf("nil bus Subscribe = %d, want 0", id)
	}
	nb.Unsubscribe(0)
	nb.EachEvent(func(Event) { t.Fatal("nil bus replayed an event") })
}

// TestSubscriberDoesNotPerturbExports proves the zero-subscriber
// contract: two identical simulated runs — one with a live consuming
// subscriber, one without — export byte-identical metrics and traces.
func TestSubscriberDoesNotPerturbExports(t *testing.T) {
	run := func(subscribe bool) (metrics, trace []byte) {
		eng := simtime.NewEngine()
		b := NewBus(eng)
		consumed := 0
		if subscribe {
			b.Subscribe(func(ev Event) { consumed++ })
		}
		eng.Spawn("driver", func(p *simtime.Proc) {
			for i := 0; i < 5; i++ {
				sp := b.Begin(RankTrack(0, 0), "op", map[string]any{"i": i})
				p.Sleep(simtime.Millisecond)
				sp.End()
				b.Add("calls", 1)
				b.SetHistBuckets("lat", SpanDurationBuckets)
				b.Observe("lat", simtime.Millisecond.Seconds())
			}
		})
		if _, err := eng.Run(simtime.Infinity); err != nil {
			t.Fatal(err)
		}
		if subscribe && consumed != 5 {
			t.Fatalf("subscriber saw %d events, want 5", consumed)
		}
		var mb, tb bytes.Buffer
		if err := b.WriteMetricsJSON(&mb); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteChromeTrace(&tb); err != nil {
			t.Fatal(err)
		}
		return mb.Bytes(), tb.Bytes()
	}
	m0, t0 := run(false)
	m1, t1 := run(true)
	if !bytes.Equal(m0, m1) {
		t.Fatalf("metrics differ with a subscriber attached:\n%s\nvs\n%s", m0, m1)
	}
	if !bytes.Equal(t0, t1) {
		t.Fatal("trace differs with a subscriber attached")
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int64]string{
		0:           "0B",
		512:         "512B",
		1 << 10:     "1KiB",
		256<<10 + 1: func() string { return "262145B" }(),
		256 << 10:   "256KiB",
		1 << 20:     "1MiB",
		3 << 20:     "3MiB",
	}
	for in, want := range cases {
		if got := SizeLabel(in); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", in, got, want)
		}
	}
}
