package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"pacc/internal/simtime"
)

func TestNilBusIsInert(t *testing.T) {
	var b *Bus
	if b.Enabled() {
		t.Fatal("nil bus reports enabled")
	}
	// None of these may panic.
	b.SetProcessName(0, "x")
	b.SetThreadName(Track{}, "x")
	b.Span(Track{}, "s", 0, 10, nil)
	sp := b.Begin(Track{}, "s", nil)
	sp.End()
	sp.EndWith(map[string]any{"k": 1})
	b.Instant(Track{}, "i", nil)
	id := b.AsyncBegin(Track{}, "c", "a", nil)
	if id != 0 {
		t.Fatalf("nil bus async id = %d, want 0", id)
	}
	b.AsyncEnd(Track{}, "c", "a", id)
	b.Add("c", 1)
	b.AddDuration("d", simtime.Millisecond)
	b.Observe("h", 1.0)
	if b.Counter("c") != 0 || b.Duration("d") != 0 || b.Events() != 0 {
		t.Fatal("nil bus accumulated data")
	}
	var buf bytes.Buffer
	if err := b.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCountersDurationsHistograms(t *testing.T) {
	eng := simtime.NewEngine()
	b := NewBus(eng)
	b.Add("msgs", 2)
	b.Add("msgs", 3)
	if got := b.Counter("msgs"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	b.AddDuration("wait", simtime.Millisecond)
	b.AddDuration("wait", 2*simtime.Millisecond)
	b.AddDuration("wait", -simtime.Millisecond) // ignored
	if got := b.Duration("wait"); got != 3*simtime.Millisecond {
		t.Fatalf("duration = %v, want 3ms", got)
	}
	for _, v := range []float64{4, 1, 9} {
		b.Observe("h", v)
	}
	h := b.Hist("h")
	if h.Count != 3 || h.Sum != 14 || h.Min != 1 || h.Max != 9 {
		t.Fatalf("hist = %+v", h)
	}
	if h.Mean() != 14.0/3.0 {
		t.Fatalf("mean = %g", h.Mean())
	}
}

func TestSpansAndExportShape(t *testing.T) {
	eng := simtime.NewEngine()
	b := NewBus(eng)
	b.SetProcessName(0, "node 0")
	b.SetProcessName(PIDNetwork, "network")
	b.SetThreadName(RankTrack(0, 1), "rank 1")

	done := false
	eng.Spawn("driver", func(p *simtime.Proc) {
		sp := b.Begin(RankTrack(0, 1), "alltoall", map[string]any{"bytes": 1024})
		p.Sleep(simtime.Millisecond)
		id := b.AsyncBegin(NetTrack(0), "net", "flow 0->1", nil)
		p.Sleep(simtime.Millisecond)
		b.AsyncEnd(NetTrack(0), "net", "flow 0->1", id)
		b.Instant(RankTrack(0, 1), "marker", nil)
		sp.End()
		// A zero-length span must be dropped.
		b.Span(RankTrack(0, 1), "empty", eng.Now(), eng.Now(), nil)
		done = true
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("driver did not finish")
	}
	if got := b.Events(); got != 4 { // span, async b, async e, instant
		t.Fatalf("events = %d, want 4", got)
	}

	var buf bytes.Buffer
	if err := b.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 3 metadata + 4 timeline events.
	if len(events) != 7 {
		t.Fatalf("exported %d events, want 7", len(events))
	}
	// Metadata first; timeline sorted by ts.
	if events[0]["ph"] != "M" || events[1]["ph"] != "M" || events[2]["ph"] != "M" {
		t.Fatalf("metadata not first: %v", events[:3])
	}
	lastTs := -1.0
	for _, ev := range events[3:] {
		ts := ev["ts"].(float64)
		if ts < lastTs {
			t.Fatalf("timeline not sorted: %g after %g", ts, lastTs)
		}
		lastTs = ts
	}
}

func TestMetricsJSONDeterministic(t *testing.T) {
	mk := func() []byte {
		eng := simtime.NewEngine()
		b := NewBus(eng)
		b.Add("z", 1)
		b.Add("a", 2)
		b.AddDuration("m", simtime.Micros(12.5))
		b.Observe("h", 3.25)
		b.Observe("h", 1.75)
		var buf bytes.Buffer
		if err := b.WriteMetricsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, c := mk(), mk()
	if !bytes.Equal(a, c) {
		t.Fatalf("metrics export not deterministic:\n%s\nvs\n%s", a, c)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["a"] != 2 || doc.Counters["z"] != 1 {
		t.Fatalf("counters = %v", doc.Counters)
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int64]string{
		0:           "0B",
		512:         "512B",
		1 << 10:     "1KiB",
		256<<10 + 1: func() string { return "262145B" }(),
		256 << 10:   "256KiB",
		1 << 20:     "1MiB",
		3 << 20:     "3MiB",
	}
	for in, want := range cases {
		if got := SizeLabel(in); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", in, got, want)
		}
	}
}
