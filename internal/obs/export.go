package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event JSON array (the
// format read by chrome://tracing and ui.perfetto.dev).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports every recorded timeline event as one Chrome
// trace JSON array: metadata (process/thread names) first, then events
// stable-sorted by timestamp, so identical runs produce identical bytes.
// A nil bus writes an empty array.
func (b *Bus) WriteChromeTrace(w io.Writer) error {
	if b == nil {
		_, err := w.Write([]byte("[]\n"))
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]chromeEvent, 0, b.nEvents+len(b.procNames)+len(b.threadNames))

	pids := make([]int, 0, len(b.procNames))
	for pid := range b.procNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": b.procNames[pid]},
		})
	}
	tracks := make([]Track, 0, len(b.threadNames))
	for t := range b.threadNames {
		tracks = append(tracks, t)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].PID != tracks[j].PID {
			return tracks[i].PID < tracks[j].PID
		}
		return tracks[i].TID < tracks[j].TID
	})
	for _, t := range tracks {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: t.PID, Tid: t.TID,
			Args: map[string]any{"name": b.threadNames[t]},
		})
	}

	// Timeline events: the emission order is deterministic (the
	// simulation is), so a stable sort by timestamp is too.
	evs := make([]event, 0, b.nEvents)
	forEachEvent(b.chunks, b.nEvents, func(ev event) { evs = append(evs, ev) })
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })
	for _, ev := range evs {
		ce := chromeEvent{
			Name: ev.name,
			Cat:  ev.cat,
			Ph:   string(ev.ph),
			Ts:   ev.ts.Micros(),
			Pid:  ev.track.PID,
			Tid:  ev.track.TID,
			Args: ev.args,
		}
		switch ev.ph {
		case 'X':
			ce.Dur = ev.dur.Micros()
		case 'i':
			ce.S = "t"
		case 'b', 'e':
			ce.ID = asyncID(ev.id)
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// asyncID formats an async-event id; Chrome accepts string ids, which
// keeps the JSON free of large-number formatting concerns.
func asyncID(id uint64) string {
	// Decimal, no allocation-heavy formatting dependencies.
	if id == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for id > 0 {
		i--
		buf[i] = byte('0' + id%10)
		id /= 10
	}
	return string(buf[i:])
}

// histJSON is the exported shape of one histogram. Buckets (present only
// for bucketed histograms) pair each declared upper bound with its count;
// the final entry with "le": null is the overflow bucket.
type histJSON struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Mean    float64      `json:"mean"`
	Buckets []bucketJSON `json:"buckets,omitempty"`
}

type bucketJSON struct {
	LE    *float64 `json:"le"` // nil marks the overflow bucket
	Count int64    `json:"count"`
}

func bucketsJSON(h *Histogram) []bucketJSON {
	if h.Bounds == nil {
		return nil
	}
	out := make([]bucketJSON, 0, len(h.BucketCounts))
	for i, c := range h.BucketCounts {
		var le *float64
		if i < len(h.Bounds) {
			b := h.Bounds[i]
			le = &b
		}
		out = append(out, bucketJSON{LE: le, Count: c})
	}
	return out
}

// metricsDoc is the exported metrics snapshot. encoding/json marshals
// maps with sorted keys, so the output is deterministic.
type metricsDoc struct {
	Counters         map[string]int64    `json:"counters"`
	DurationsSeconds map[string]float64  `json:"durations_seconds"`
	Histograms       map[string]histJSON `json:"histograms"`
}

// WriteMetricsJSON exports all counters, duration accumulators and
// histograms as one indented JSON document with sorted keys. A nil bus
// writes an empty document.
func (b *Bus) WriteMetricsJSON(w io.Writer) error {
	doc := metricsDoc{
		Counters:         map[string]int64{},
		DurationsSeconds: map[string]float64{},
		Histograms:       map[string]histJSON{},
	}
	if b != nil {
		b.mu.Lock()
		defer b.mu.Unlock()
		for k, v := range b.counters {
			doc.Counters[k] = v
		}
		for k, d := range b.durations {
			doc.DurationsSeconds[k] = d.Seconds()
		}
		for k, h := range b.hists {
			doc.Histograms[k] = histJSON{
				Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max, Mean: h.Mean(),
				Buckets: bucketsJSON(h),
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
