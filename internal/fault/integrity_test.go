package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"pacc/internal/simtime"
)

func TestParseCorruptClauses(t *testing.T) {
	s, err := Parse("seed=9;corrupt=0.01;datacorrupt=0.2;terrfactor=0.5;" +
		"memburst=3@0.25:1ms+500us;memburst=*@0.1:5ms+100us")
	if err != nil {
		t.Fatal(err)
	}
	want := &Spec{
		Seed:         9,
		EagerCorrupt: 0.01, RTSCorrupt: 0.01, CTSCorrupt: 0.01, DataCorrupt: 0.2,
		TStateErrFactor: 0.5,
		MemBursts: []MemBurst{
			{Rank: 3, Prob: 0.25, Start: simtime.Millisecond, Duration: 500 * simtime.Microsecond},
			{Rank: -1, Prob: 0.1, Start: 5 * simtime.Millisecond, Duration: 100 * simtime.Microsecond},
		},
		RetryBudget: DefaultRetryBudget,
		AckTimeout:  DefaultAckTimeout,
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("parsed spec\n%+v\nwant\n%+v", s, want)
	}
	if !s.Active() {
		t.Error("corruption spec should be active")
	}
}

// TestParseHardeningErrors: the parser names the offending clause and field
// instead of silently last-writer-winning.
func TestParseHardeningErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"crash=3@1ms;crash=3@2ms", "rank 3 already crashed"},
		{"msgloss=0.1;msgloss=0.2", "duplicate msgloss="},
		{"seed=1;seed=2", "duplicate seed="},
		{"corrupt=0.1;corrupt=0.2", "duplicate corrupt="},
		{"retry=3;retry=5", "duplicate retry="},
		{"degrade=node0-up@0.5:1ms+2ms;degrade=node0-up@0.25:2ms+1ms", "windows overlap"},
		{"linkdown=node1-up:0s+2ms;degrade=node1-up@0.5:1ms+1ms", "windows overlap"},
		{"memburst=2@0.5:0s+2ms;memburst=2@0.5:1ms+1ms", "memburst windows on rank 2 overlap"},
		{"memburst=*@0.5:0s+2ms;memburst=*@0.5:1ms+1ms", "memburst windows on all ranks"},
		{"corrupt=1.5", "outside [0,1]"},
		{"corrupt=0.5;retry=0", "zero retry budget with message corruption"},
		{"terrfactor=-1", "negative TStateErrFactor"},
		{"memburst=3@0.5", "missing :START+DUR"},
		{"memburst=3:1ms+1ms", "missing @PROB"},
		{"memburst=x@0.5:1ms+1ms", "invalid syntax"},
		{"memburst=3@0.5:1ms", "not START+DUR"},
		{"memburst=3@0.5:1ms+0s", "non-positive duration"},
		{"memburst=-2@0.5:1ms+1ms", "below -1"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) accepted", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

// TestParseRepeatsStillAllowed: legitimate repetition (distinct ranks,
// non-overlapping windows, per-class overrides after a blanket clause)
// must keep parsing.
func TestParseRepeatsStillAllowed(t *testing.T) {
	ok := []string{
		"crash=5@100us;crash=9@2ms",
		"msgloss=0.1;eagerloss=0.3",
		"corrupt=0.1;datacorrupt=0.3",
		"degrade=node0-up@0.5:1ms+1ms;degrade=node0-up@0.25:3ms+1ms",
		"degrade=node0-up@0.5:1ms+1ms;degrade=node1-up@0.5:1ms+1ms",
		"memburst=2@0.5:0s+1ms;memburst=2@0.5:2ms+1ms",
		"memburst=2@0.5:0s+1ms;memburst=*@0.5:0s+1ms",
	}
	for _, src := range ok {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestStringRoundTripCorrupt(t *testing.T) {
	src := "seed=11;corrupt=0.02;terrfactor=2;memburst=*@0.3:2ms+1ms;memburst=4@0.5:100us+50us"
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(s.String())
	if err != nil {
		t.Fatalf("Parse(String()) = %q: %v", s.String(), err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip changed the spec:\n%+v\n%+v", s, back)
	}
}

// TestCorruptDeterminism: corruption decisions replay identically and the
// T-state factor raises the effective rate.
func TestCorruptDeterminism(t *testing.T) {
	spec := &Spec{Seed: 21, DataCorrupt: 0.1, TStateErrFactor: 1, RetryBudget: 7}
	a, b := NewInjector(spec), NewInjector(spec)
	hitsFlat, hitsDeep := 0, 0
	for seq := uint64(0); seq < 400; seq++ {
		got := a.Corrupt(Data, 1, 2, seq, 0, 0)
		if b.Corrupt(Data, 1, 2, seq, 0, 0) != got {
			t.Fatalf("seq %d decided differently on replay", seq)
		}
		if got {
			hitsFlat++
		}
		if a.Corrupt(Data, 1, 2, seq, 0, 7) {
			hitsDeep++
		}
	}
	if hitsFlat == 0 {
		t.Fatal("0.1 corruption probability never hit in 400 messages")
	}
	if hitsDeep <= hitsFlat {
		t.Errorf("T-state depth 7 with factor 1 should corrupt more: %d deep vs %d flat",
			hitsDeep, hitsFlat)
	}
	if a.Corrupt(Eager, 1, 2, 0, 0, 7) {
		t.Error("class with zero probability corrupted despite T-state depth")
	}
}

func TestMemCorruptWindows(t *testing.T) {
	spec := &Spec{Seed: 7, MemBursts: []MemBurst{
		{Rank: 2, Prob: 1, Start: simtime.Millisecond, Duration: simtime.Millisecond},
	}}
	in := NewInjector(spec)
	if _, hit := in.MemCorrupt(2, 500*simtime.Microsecond); hit {
		t.Error("corruption before the window opened")
	}
	if _, hit := in.MemCorrupt(2, 1500*simtime.Microsecond); !hit {
		t.Error("prob-1 burst missed inside its window")
	}
	if _, hit := in.MemCorrupt(2, 2*simtime.Millisecond); hit {
		t.Error("corruption at window end (exclusive)")
	}
	if _, hit := in.MemCorrupt(3, 1500*simtime.Microsecond); hit {
		t.Error("burst leaked to an untargeted rank")
	}

	all := NewInjector(&Spec{Seed: 7, MemBursts: []MemBurst{
		{Rank: -1, Prob: 1, Start: 0, Duration: simtime.Millisecond},
	}})
	for rank := 0; rank < 4; rank++ {
		if _, hit := all.MemCorrupt(rank, 500*simtime.Microsecond); !hit {
			t.Errorf("all-rank burst missed rank %d", rank)
		}
	}

	// Replay determinism: same update order, same decisions and words.
	x, y := NewInjector(spec), NewInjector(spec)
	for i := 0; i < 32; i++ {
		hx, bx := x.MemCorrupt(2, 1200*simtime.Microsecond)
		hy, by := y.MemCorrupt(2, 1200*simtime.Microsecond)
		if hx != hy || bx != by {
			t.Fatalf("update %d diverged on replay", i)
		}
	}
}

func TestCorruptFloat(t *testing.T) {
	if got := CorruptFloat(3.25, 99); got == 3.25 {
		t.Error("flip left the value unchanged")
	} else if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("flip produced non-finite %g", got)
	}
	if CorruptFloat(3.25, 99) != CorruptFloat(3.25, 99) {
		t.Error("same decision word flipped different bits")
	}
	if CorruptFloat(0, 5) == 0 {
		t.Error("zero must corrupt to a detectable non-zero (subnormal)")
	}
	if !math.IsNaN(CorruptFloat(math.NaN(), 1)) {
		t.Error("NaN input should pass through")
	}
	if !math.IsInf(CorruptFloat(math.Inf(1), 1), 1) {
		t.Error("Inf input should pass through")
	}
}

func TestNilInjectorIntegrity(t *testing.T) {
	var in *Injector
	if in.Corrupt(Data, 0, 1, 1, 0, 5) {
		t.Error("nil injector corrupted a message")
	}
	if _, hit := in.MemCorrupt(0, simtime.Millisecond); hit {
		t.Error("nil injector corrupted memory")
	}
}

func TestActiveIntegrity(t *testing.T) {
	if !(&Spec{DataCorrupt: 0.1}).Active() {
		t.Error("corrupt-only spec should be active")
	}
	if !(&Spec{MemBursts: []MemBurst{{Rank: 0, Prob: 1, Duration: 1}}}).Active() {
		t.Error("memburst-only spec should be active")
	}
	if (&Spec{TStateErrFactor: 2}).Active() {
		t.Error("factor without a base probability perturbs nothing")
	}
}
