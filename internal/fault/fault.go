// Package fault implements seeded, deterministic fault injection for the
// simulated cluster. A Spec declares what goes wrong — per-link bandwidth
// degradation and transient link down/up windows, packet-level message
// loss (eager payloads, rendezvous RTS/CTS control messages and data),
// permanent crash-stop rank failures with a configurable detection
// timeout, straggler ranks with per-call compute jitter, and slow or stuck
// P/T-state transitions — and an Injector turns the spec into reproducible
// per-event decisions.
//
// Determinism is the contract: every decision is a pure hash of the seed
// and the identity of the event being decided (message class, endpoints,
// sequence number, attempt), never of wall-clock state or call order
// across ranks. The same spec and seed therefore produce bit-identical
// simulations, and a spec with all probabilities at zero and no scheduled
// faults perturbs nothing — the injector is a no-op exactly like a nil
// *obs.Bus.
//
// The injector itself is passive: it answers questions. The wiring lives
// in the layers it perturbs — mpi consults it for message loss and retry
// policy, the network applies its link schedule, and power cores take
// their transition delays from it.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"pacc/internal/simtime"
)

// MsgClass identifies the protocol message a loss decision applies to.
type MsgClass int

const (
	// Eager is a self-contained eager payload.
	Eager MsgClass = iota
	// RTS is a rendezvous request-to-send control message.
	RTS
	// CTS is a rendezvous clear-to-send control message.
	CTS
	// Data is a rendezvous payload transfer (after CTS).
	Data
)

func (c MsgClass) String() string {
	switch c {
	case Eager:
		return "eager"
	case RTS:
		return "rts"
	case CTS:
		return "cts"
	case Data:
		return "data"
	default:
		return fmt.Sprintf("MsgClass(%d)", int(c))
	}
}

// LinkFault degrades one named fabric link for a window of virtual time.
// Factor scales the link's capacity during the window: 0 takes the link
// down entirely (flows crossing it stall and new sends are requeued until
// the window ends), values in (0,1) model a degraded lane/signal.
type LinkFault struct {
	// Link is the fabric link name, e.g. "node3-up", "node0-down",
	// "rack1-up".
	Link string
	// Factor is the capacity multiplier in [0,1) applied during the
	// fault window.
	Factor float64
	// Start is when the fault activates.
	Start simtime.Duration
	// Duration is how long it lasts; the link restores at Start+Duration.
	Duration simtime.Duration
}

// Crash schedules a crash-stop failure of one rank: at time At the rank's
// process dies permanently (no restart). From that instant messages
// addressed to it vanish at delivery, and peers blocked on it observe the
// failure after Spec.DetectTimeout (the failure detector's heartbeat/ack
// timeout). Scheduling several crashes for one rank is allowed; the
// earliest wins.
type Crash struct {
	// Rank is the global rank id.
	Rank int
	// At is when the rank dies.
	At simtime.Duration
}

// Straggler slows one rank's CPU-side work by a constant factor, with
// optional per-call jitter (Spec.ComputeJitter).
type Straggler struct {
	// Rank is the global rank id.
	Rank int
	// Slowdown ≥ 1 stretches all clock-bound work of the rank.
	Slowdown float64
}

// Spec is a declarative fault schedule. The zero value injects nothing.
type Spec struct {
	// Seed drives every probabilistic decision. Two runs with the same
	// spec (seed included) are bit-identical.
	Seed uint64

	// EagerLoss, RTSLoss, CTSLoss, DataLoss are per-message drop
	// probabilities in [0,1] for the four protocol message classes.
	EagerLoss float64
	RTSLoss   float64
	CTSLoss   float64
	DataLoss  float64

	// LinkFaults schedules bandwidth degradation and down/up windows.
	LinkFaults []LinkFault

	// Crashes schedules permanent crash-stop rank failures.
	Crashes []Crash
	// DetectTimeout is how long after a crash the failure becomes
	// observable to peers blocked on the dead rank. Zero selects
	// DefaultDetectTimeout.
	DetectTimeout simtime.Duration

	// Stragglers lists slow ranks.
	Stragglers []Straggler
	// ComputeJitter in [0,1) adds a deterministic per-call multiplicative
	// jitter of ±ComputeJitter to straggler work.
	ComputeJitter float64

	// PStateDelay / TStateDelay add hardware settle time to every DVFS /
	// throttle transition (slow voltage regulators, firmware contention).
	PStateDelay simtime.Duration
	TStateDelay simtime.Duration
	// StickProb in [0,1] is the chance a transition gets "stuck" and
	// takes stickFactor× the configured extra delay.
	StickProb float64

	// RetryBudget bounds retransmit attempts per message, mirroring the
	// 3-bit IB RC Retry Count. Zero selects DefaultRetryBudget; it must
	// be positive when any loss probability is.
	RetryBudget int
	// AckTimeout is the base retransmission timeout (IB Local ACK
	// Timeout); attempt k retransmits after AckTimeout·2^k. Zero selects
	// DefaultAckTimeout.
	AckTimeout simtime.Duration
}

// Defaults mirroring InfiniBand RC transport constants: a 7-attempt retry
// count (the maximum of the 3-bit field) and a 100µs local ACK timeout.
const (
	DefaultRetryBudget = 7
	stickFactor        = 10
)

// DefaultAckTimeout is the base retransmission timeout used when
// Spec.AckTimeout is zero.
const DefaultAckTimeout = 100 * simtime.Microsecond

// DefaultDetectTimeout is the crash-detection latency used when
// Spec.DetectTimeout is zero: long enough that transient protocol waits
// (an ack timeout, a backoff) do not read as death, short against any
// collective of interesting size.
const DefaultDetectTimeout = 200 * simtime.Microsecond

// anyLoss reports whether any message class can be dropped.
func (s *Spec) anyLoss() bool {
	return s.EagerLoss > 0 || s.RTSLoss > 0 || s.CTSLoss > 0 || s.DataLoss > 0
}

// Active reports whether the spec can perturb anything at all. An inactive
// spec attached to a world is guaranteed not to change its behavior.
func (s *Spec) Active() bool {
	if s == nil {
		return false
	}
	return s.anyLoss() || len(s.LinkFaults) > 0 || len(s.Crashes) > 0 ||
		len(s.Stragglers) > 0 || s.PStateDelay > 0 || s.TStateDelay > 0
}

// Validate rejects out-of-range probabilities, negative degradation
// factors, zero retry budgets under message loss, and malformed schedule
// entries.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"EagerLoss", s.EagerLoss}, {"RTSLoss", s.RTSLoss},
		{"CTSLoss", s.CTSLoss}, {"DataLoss", s.DataLoss},
		{"StickProb", s.StickProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s %g outside [0,1]", p.name, p.v)
		}
	}
	if s.ComputeJitter < 0 || s.ComputeJitter >= 1 {
		return fmt.Errorf("fault: ComputeJitter %g outside [0,1)", s.ComputeJitter)
	}
	for _, lf := range s.LinkFaults {
		if lf.Link == "" {
			return fmt.Errorf("fault: link fault with empty link name")
		}
		if lf.Factor < 0 || lf.Factor >= 1 {
			return fmt.Errorf("fault: link %s degradation factor %g outside [0,1)",
				lf.Link, lf.Factor)
		}
		if lf.Start < 0 {
			return fmt.Errorf("fault: link %s fault starts at negative time %v", lf.Link, lf.Start)
		}
		if lf.Duration <= 0 {
			return fmt.Errorf("fault: link %s fault has non-positive duration %v",
				lf.Link, lf.Duration)
		}
	}
	for _, cr := range s.Crashes {
		if cr.Rank < 0 {
			return fmt.Errorf("fault: crash rank %d is negative", cr.Rank)
		}
		if cr.At < 0 {
			return fmt.Errorf("fault: crash of rank %d at negative time %v", cr.Rank, cr.At)
		}
	}
	if s.DetectTimeout < 0 {
		return fmt.Errorf("fault: negative DetectTimeout")
	}
	for _, st := range s.Stragglers {
		if st.Rank < 0 {
			return fmt.Errorf("fault: straggler rank %d is negative", st.Rank)
		}
		if st.Slowdown < 1 {
			return fmt.Errorf("fault: straggler rank %d slowdown %g below 1", st.Rank, st.Slowdown)
		}
	}
	if s.PStateDelay < 0 || s.TStateDelay < 0 {
		return fmt.Errorf("fault: negative power transition delay")
	}
	if s.RetryBudget < 0 {
		return fmt.Errorf("fault: negative RetryBudget %d", s.RetryBudget)
	}
	if s.AckTimeout < 0 {
		return fmt.Errorf("fault: negative AckTimeout")
	}
	if s.anyLoss() && s.RetryBudget == 0 {
		return fmt.Errorf("fault: zero retry budget with message loss enabled; every lost message would stall its receiver (set RetryBudget >= 1)")
	}
	return nil
}

// Parse reads the -fault command-line syntax: semicolon-separated
// key=value clauses.
//
//	seed=42                        deterministic seed (default 1)
//	msgloss=0.02                   loss probability for all message classes
//	eagerloss= rtsloss= ctsloss= dataloss=   per-class overrides
//	degrade=node0-up@0.25:2ms+10ms link at 25% capacity from 2ms for 10ms
//	linkdown=node1-up:5ms+1ms      link fully down from 5ms for 1ms
//	crash=5@2ms                    rank 5 dies (crash-stop, permanent) at 2ms
//	detect=200us                   failure-detection (heartbeat) timeout
//	straggler=3@1.5                rank 3 runs 1.5x slower
//	jitter=0.2                     ±20% per-call jitter on stragglers
//	pdelay=50us tdelay=20us        extra P-/T-state transition settle time
//	stick=0.1                      chance a transition sticks (10x delay)
//	retry=7                        retransmit budget (IB RC Retry Count)
//	acktimeout=100us               base retransmission timeout
//
// degrade, linkdown, crash and straggler may repeat. Durations use Go
// syntax (ns, us, ms, s).
func Parse(src string) (*Spec, error) {
	s := &Spec{Seed: 1}
	retrySet := false
	for _, clause := range strings.Split(src, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseUint(val, 10, 64)
		case "msgloss":
			var p float64
			p, err = parseProb(val)
			s.EagerLoss, s.RTSLoss, s.CTSLoss, s.DataLoss = p, p, p, p
		case "eagerloss":
			s.EagerLoss, err = parseProb(val)
		case "rtsloss":
			s.RTSLoss, err = parseProb(val)
		case "ctsloss":
			s.CTSLoss, err = parseProb(val)
		case "dataloss":
			s.DataLoss, err = parseProb(val)
		case "degrade":
			var lf LinkFault
			lf, err = parseLinkFault(val, true)
			s.LinkFaults = append(s.LinkFaults, lf)
		case "linkdown":
			var lf LinkFault
			lf, err = parseLinkFault(val, false)
			s.LinkFaults = append(s.LinkFaults, lf)
		case "crash":
			name, at, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("fault: crash %q (want RANK@TIME)", val)
			}
			cr := Crash{}
			cr.Rank, err = strconv.Atoi(name)
			if err == nil {
				cr.At, err = parseDur(at)
			}
			s.Crashes = append(s.Crashes, cr)
		case "detect":
			s.DetectTimeout, err = parseDur(val)
		case "straggler":
			name, factor, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("fault: straggler %q (want RANK@SLOWDOWN)", val)
			}
			st := Straggler{}
			st.Rank, err = strconv.Atoi(name)
			if err == nil {
				st.Slowdown, err = strconv.ParseFloat(factor, 64)
			}
			s.Stragglers = append(s.Stragglers, st)
		case "jitter":
			s.ComputeJitter, err = strconv.ParseFloat(val, 64)
		case "pdelay":
			s.PStateDelay, err = parseDur(val)
		case "tdelay":
			s.TStateDelay, err = parseDur(val)
		case "stick":
			s.StickProb, err = parseProb(val)
		case "retry":
			s.RetryBudget, err = strconv.Atoi(val)
			retrySet = true
		case "acktimeout":
			s.AckTimeout, err = parseDur(val)
		default:
			return nil, fmt.Errorf("fault: unknown clause key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
	}
	if !retrySet {
		s.RetryBudget = DefaultRetryBudget
	}
	if s.AckTimeout == 0 {
		s.AckTimeout = DefaultAckTimeout
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	return p, nil
}

// parseDur parses a Go-style duration into virtual time.
func parseDur(v string) (simtime.Duration, error) {
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, err
	}
	return simtime.Duration(d.Nanoseconds()), nil
}

// parseLinkFault reads LINK@FACTOR:START+DUR (degrade) or LINK:START+DUR
// (linkdown, factor 0).
func parseLinkFault(v string, withFactor bool) (LinkFault, error) {
	lf := LinkFault{}
	head, window, ok := strings.Cut(v, ":")
	if !ok {
		return lf, fmt.Errorf("missing :START+DUR window in %q", v)
	}
	if withFactor {
		link, factor, ok := strings.Cut(head, "@")
		if !ok {
			return lf, fmt.Errorf("missing @FACTOR in %q", v)
		}
		lf.Link = link
		f, err := strconv.ParseFloat(factor, 64)
		if err != nil {
			return lf, err
		}
		lf.Factor = f
	} else {
		lf.Link = head
	}
	start, dur, ok := strings.Cut(window, "+")
	if !ok {
		return lf, fmt.Errorf("window %q is not START+DUR", window)
	}
	var err error
	if lf.Start, err = parseDur(start); err != nil {
		return lf, err
	}
	if lf.Duration, err = parseDur(dur); err != nil {
		return lf, err
	}
	return lf, nil
}

// String renders the spec back in Parse syntax (canonical clause order).
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	add := func(f string, args ...any) { parts = append(parts, fmt.Sprintf(f, args...)) }
	add("seed=%d", s.Seed)
	if s.EagerLoss > 0 {
		add("eagerloss=%g", s.EagerLoss)
	}
	if s.RTSLoss > 0 {
		add("rtsloss=%g", s.RTSLoss)
	}
	if s.CTSLoss > 0 {
		add("ctsloss=%g", s.CTSLoss)
	}
	if s.DataLoss > 0 {
		add("dataloss=%g", s.DataLoss)
	}
	for _, lf := range s.LinkFaults {
		if lf.Factor == 0 {
			add("linkdown=%s:%s+%s", lf.Link, durStr(lf.Start), durStr(lf.Duration))
		} else {
			add("degrade=%s@%g:%s+%s", lf.Link, lf.Factor, durStr(lf.Start), durStr(lf.Duration))
		}
	}
	for _, cr := range s.Crashes {
		add("crash=%d@%s", cr.Rank, durStr(cr.At))
	}
	if s.DetectTimeout > 0 {
		add("detect=%s", durStr(s.DetectTimeout))
	}
	for _, st := range s.Stragglers {
		add("straggler=%d@%g", st.Rank, st.Slowdown)
	}
	if s.ComputeJitter > 0 {
		add("jitter=%g", s.ComputeJitter)
	}
	if s.PStateDelay > 0 {
		add("pdelay=%s", durStr(s.PStateDelay))
	}
	if s.TStateDelay > 0 {
		add("tdelay=%s", durStr(s.TStateDelay))
	}
	if s.StickProb > 0 {
		add("stick=%g", s.StickProb)
	}
	if s.RetryBudget > 0 {
		add("retry=%d", s.RetryBudget)
	}
	if s.AckTimeout > 0 {
		add("acktimeout=%s", durStr(s.AckTimeout))
	}
	return strings.Join(parts, ";")
}

func durStr(d simtime.Duration) string {
	return time.Duration(d).String()
}

// CrashSchedule returns the effective crash schedule: one entry per rank
// (the earliest scheduled time wins), sorted by rank. The deterministic
// order matters — the mpi layer turns each entry into an engine event, and
// event identity includes scheduling order.
func (s *Spec) CrashSchedule() []Crash {
	if s == nil || len(s.Crashes) == 0 {
		return nil
	}
	earliest := map[int]simtime.Duration{}
	for _, cr := range s.Crashes {
		at, seen := earliest[cr.Rank]
		if !seen || cr.At < at {
			earliest[cr.Rank] = cr.At
		}
	}
	out := make([]Crash, 0, len(earliest))
	for rank, at := range earliest {
		out = append(out, Crash{Rank: rank, At: at})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// Detect returns the failure-detection latency (DefaultDetectTimeout when
// unset).
func (s *Spec) Detect() simtime.Duration {
	if s == nil || s.DetectTimeout <= 0 {
		return DefaultDetectTimeout
	}
	return s.DetectTimeout
}

// StragglerRanks returns the straggler ranks ascending (deduplicated).
func (s *Spec) StragglerRanks() []int {
	if s == nil {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, st := range s.Stragglers {
		if !seen[st.Rank] {
			seen[st.Rank] = true
			out = append(out, st.Rank)
		}
	}
	sort.Ints(out)
	return out
}
