// Package fault implements seeded, deterministic fault injection for the
// simulated cluster. A Spec declares what goes wrong — per-link bandwidth
// degradation and transient link down/up windows, packet-level message
// loss (eager payloads, rendezvous RTS/CTS control messages and data),
// permanent crash-stop rank failures with a configurable detection
// timeout, straggler ranks with per-call compute jitter, and slow or stuck
// P/T-state transitions — and an Injector turns the spec into reproducible
// per-event decisions.
//
// Determinism is the contract: every decision is a pure hash of the seed
// and the identity of the event being decided (message class, endpoints,
// sequence number, attempt), never of wall-clock state or call order
// across ranks. The same spec and seed therefore produce bit-identical
// simulations, and a spec with all probabilities at zero and no scheduled
// faults perturbs nothing — the injector is a no-op exactly like a nil
// *obs.Bus.
//
// The injector itself is passive: it answers questions. The wiring lives
// in the layers it perturbs — mpi consults it for message loss and retry
// policy, the network applies its link schedule, and power cores take
// their transition delays from it.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"pacc/internal/simtime"
)

// MsgClass identifies the protocol message a loss decision applies to.
type MsgClass int

const (
	// Eager is a self-contained eager payload.
	Eager MsgClass = iota
	// RTS is a rendezvous request-to-send control message.
	RTS
	// CTS is a rendezvous clear-to-send control message.
	CTS
	// Data is a rendezvous payload transfer (after CTS).
	Data
)

func (c MsgClass) String() string {
	switch c {
	case Eager:
		return "eager"
	case RTS:
		return "rts"
	case CTS:
		return "cts"
	case Data:
		return "data"
	default:
		return fmt.Sprintf("MsgClass(%d)", int(c))
	}
}

// LinkFault degrades one named fabric link for a window of virtual time.
// Factor scales the link's capacity during the window: 0 takes the link
// down entirely (flows crossing it stall and new sends are requeued until
// the window ends), values in (0,1) model a degraded lane/signal.
type LinkFault struct {
	// Link is the fabric link name, e.g. "node3-up", "node0-down",
	// "rack1-up".
	Link string
	// Factor is the capacity multiplier in [0,1) applied during the
	// fault window.
	Factor float64
	// Start is when the fault activates.
	Start simtime.Duration
	// Duration is how long it lasts; the link restores at Start+Duration.
	Duration simtime.Duration
}

// Crash schedules a crash-stop failure of one rank: at time At the rank's
// process dies permanently (no restart). From that instant messages
// addressed to it vanish at delivery, and peers blocked on it observe the
// failure after Spec.DetectTimeout (the failure detector's heartbeat/ack
// timeout). A programmatically built Spec may schedule several crashes for
// one rank (the earliest wins, see CrashSchedule); the Parse syntax
// rejects duplicate crash= clauses for one rank as a likely operator
// mistake.
type Crash struct {
	// Rank is the global rank id.
	Rank int
	// At is when the rank dies.
	At simtime.Duration
}

// MemBurst schedules a window of virtual time during which local memory
// on one rank misbehaves: every reduction-accumulator update inside the
// window is corrupted (one flipped mantissa bit) with probability Prob.
// This is the corruption class that slips past the transport's ICRC —
// the bytes were delivered correctly and rot afterwards — so only
// algorithm-level (ABFT) verification catches it.
type MemBurst struct {
	// Rank is the global rank id; -1 targets every rank.
	Rank int
	// Prob is the per-update corruption probability in [0,1].
	Prob float64
	// Start is when the burst window opens.
	Start simtime.Duration
	// Duration is how long it lasts; memory heals at Start+Duration.
	Duration simtime.Duration
}

// Straggler slows one rank's CPU-side work by a constant factor, with
// optional per-call jitter (Spec.ComputeJitter).
type Straggler struct {
	// Rank is the global rank id.
	Rank int
	// Slowdown ≥ 1 stretches all clock-bound work of the rank.
	Slowdown float64
}

// Slow schedules a fail-slow window on one rank: between Start and
// Start+Duration every CPU-bound call on the rank is stretched by Factor.
// Unlike a Straggler (which is permanent and declared up front), a Slow
// window models a gray failure that appears at runtime — a stuck T-state,
// a thermally throttled core, a neighbor stealing memory bandwidth — and
// is exactly what the fail-slow detection layer is meant to catch.
type Slow struct {
	// Rank is the global rank id.
	Rank int
	// Factor ≥ 1 stretches all clock-bound work during the window.
	Factor float64
	// Start is when the degradation begins.
	Start simtime.Duration
	// Duration is how long it lasts; the rank heals at Start+Duration.
	Duration simtime.Duration
}

// Spec is a declarative fault schedule. The zero value injects nothing.
type Spec struct {
	// Seed drives every probabilistic decision. Two runs with the same
	// spec (seed included) are bit-identical.
	Seed uint64

	// EagerLoss, RTSLoss, CTSLoss, DataLoss are per-message drop
	// probabilities in [0,1] for the four protocol message classes.
	EagerLoss float64
	RTSLoss   float64
	CTSLoss   float64
	DataLoss  float64

	// EagerCorrupt, RTSCorrupt, CTSCorrupt, DataCorrupt are per-message
	// in-flight bit-flip probabilities in [0,1]. A corrupted message still
	// occupies the wire for its full transfer, but the receiver's ICRC
	// check rejects it at delivery and NACKs the sender, which retransmits
	// under the same retry budget and backoff as a lost message.
	EagerCorrupt float64
	RTSCorrupt   float64
	CTSCorrupt   float64
	DataCorrupt  float64

	// TStateErrFactor couples the in-flight corruption rate to clock
	// throttling: a message leaving a core at T-state depth d is corrupted
	// with probability p·(1 + TStateErrFactor·d), capped at 1. It models
	// the signal-integrity margin aggressive duty-cycle modulation costs
	// on real hardware. Zero (the default) decouples them.
	TStateErrFactor float64

	// MemBursts schedules windows of local memory corruption that the
	// transport checksum cannot see (the flip happens after delivery).
	MemBursts []MemBurst

	// LinkFaults schedules bandwidth degradation and down/up windows.
	LinkFaults []LinkFault

	// Crashes schedules permanent crash-stop rank failures.
	Crashes []Crash
	// DetectTimeout is how long after a crash the failure becomes
	// observable to peers blocked on the dead rank. Zero selects
	// DefaultDetectTimeout.
	DetectTimeout simtime.Duration

	// Stragglers lists slow ranks.
	Stragglers []Straggler
	// ComputeJitter in [0,1) adds a deterministic per-call multiplicative
	// jitter of ±ComputeJitter to straggler work.
	ComputeJitter float64

	// Slows schedules windowed fail-slow degradation (gray failures).
	Slows []Slow

	// PStateDelay / TStateDelay add hardware settle time to every DVFS /
	// throttle transition (slow voltage regulators, firmware contention).
	PStateDelay simtime.Duration
	TStateDelay simtime.Duration
	// StickProb in [0,1] is the chance a transition gets "stuck" and
	// takes stickFactor× the configured extra delay.
	StickProb float64
	// StickFailProb in [0,1] is the chance a P-/T-state transition is
	// silently lost after paying its settle time: the write never reaches
	// the core, which keeps running at its previous state. This is the
	// power-management gray failure that RecoverPower-style bounded
	// retries exist to fix — the rank is alive but stuck slow until the
	// transition is re-issued.
	StickFailProb float64

	// RetryBudget bounds retransmit attempts per message, mirroring the
	// 3-bit IB RC Retry Count. Zero selects DefaultRetryBudget; it must
	// be positive when any loss probability is.
	RetryBudget int
	// AckTimeout is the base retransmission timeout (IB Local ACK
	// Timeout); attempt k retransmits after AckTimeout·2^k. Zero selects
	// DefaultAckTimeout.
	AckTimeout simtime.Duration
}

// Defaults mirroring InfiniBand RC transport constants: a 7-attempt retry
// count (the maximum of the 3-bit field) and a 100µs local ACK timeout.
const (
	DefaultRetryBudget = 7
	stickFactor        = 10
)

// DefaultAckTimeout is the base retransmission timeout used when
// Spec.AckTimeout is zero.
const DefaultAckTimeout = 100 * simtime.Microsecond

// DefaultDetectTimeout is the crash-detection latency used when
// Spec.DetectTimeout is zero: long enough that transient protocol waits
// (an ack timeout, a backoff) do not read as death, short against any
// collective of interesting size.
const DefaultDetectTimeout = 200 * simtime.Microsecond

// anyLoss reports whether any message class can be dropped.
func (s *Spec) anyLoss() bool {
	return s.EagerLoss > 0 || s.RTSLoss > 0 || s.CTSLoss > 0 || s.DataLoss > 0
}

// anyCorrupt reports whether any message class can be corrupted in flight.
func (s *Spec) anyCorrupt() bool {
	return s.EagerCorrupt > 0 || s.RTSCorrupt > 0 || s.CTSCorrupt > 0 || s.DataCorrupt > 0
}

// Active reports whether the spec can perturb anything at all. An inactive
// spec attached to a world is guaranteed not to change its behavior.
func (s *Spec) Active() bool {
	if s == nil {
		return false
	}
	return s.anyLoss() || s.anyCorrupt() || len(s.MemBursts) > 0 ||
		len(s.LinkFaults) > 0 || len(s.Crashes) > 0 ||
		len(s.Stragglers) > 0 || len(s.Slows) > 0 ||
		s.PStateDelay > 0 || s.TStateDelay > 0 || s.StickFailProb > 0
}

// Validate rejects out-of-range probabilities, negative degradation
// factors, zero retry budgets under message loss, and malformed schedule
// entries.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"EagerLoss", s.EagerLoss}, {"RTSLoss", s.RTSLoss},
		{"CTSLoss", s.CTSLoss}, {"DataLoss", s.DataLoss},
		{"EagerCorrupt", s.EagerCorrupt}, {"RTSCorrupt", s.RTSCorrupt},
		{"CTSCorrupt", s.CTSCorrupt}, {"DataCorrupt", s.DataCorrupt},
		{"StickProb", s.StickProb}, {"StickFailProb", s.StickFailProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s %g outside [0,1]", p.name, p.v)
		}
	}
	if s.ComputeJitter < 0 || s.ComputeJitter >= 1 {
		return fmt.Errorf("fault: ComputeJitter %g outside [0,1)", s.ComputeJitter)
	}
	if s.TStateErrFactor < 0 {
		return fmt.Errorf("fault: negative TStateErrFactor %g", s.TStateErrFactor)
	}
	for _, mb := range s.MemBursts {
		if mb.Rank < -1 {
			return fmt.Errorf("fault: memburst rank %d below -1 (use -1 for all ranks)", mb.Rank)
		}
		if mb.Prob < 0 || mb.Prob > 1 {
			return fmt.Errorf("fault: memburst on rank %d probability %g outside [0,1]",
				mb.Rank, mb.Prob)
		}
		if mb.Start < 0 {
			return fmt.Errorf("fault: memburst on rank %d starts at negative time %v",
				mb.Rank, mb.Start)
		}
		if mb.Duration <= 0 {
			return fmt.Errorf("fault: memburst on rank %d has non-positive duration %v",
				mb.Rank, mb.Duration)
		}
	}
	for _, lf := range s.LinkFaults {
		if lf.Link == "" {
			return fmt.Errorf("fault: link fault with empty link name")
		}
		if lf.Factor < 0 || lf.Factor >= 1 {
			return fmt.Errorf("fault: link %s degradation factor %g outside [0,1)",
				lf.Link, lf.Factor)
		}
		if lf.Start < 0 {
			return fmt.Errorf("fault: link %s fault starts at negative time %v", lf.Link, lf.Start)
		}
		if lf.Duration <= 0 {
			return fmt.Errorf("fault: link %s fault has non-positive duration %v",
				lf.Link, lf.Duration)
		}
	}
	for _, cr := range s.Crashes {
		if cr.Rank < 0 {
			return fmt.Errorf("fault: crash rank %d is negative", cr.Rank)
		}
		if cr.At < 0 {
			return fmt.Errorf("fault: crash of rank %d at negative time %v", cr.Rank, cr.At)
		}
	}
	if s.DetectTimeout < 0 {
		return fmt.Errorf("fault: negative DetectTimeout")
	}
	for _, st := range s.Stragglers {
		if st.Rank < 0 {
			return fmt.Errorf("fault: straggler rank %d is negative", st.Rank)
		}
		if st.Slowdown < 1 {
			return fmt.Errorf("fault: straggler rank %d slowdown %g below 1", st.Rank, st.Slowdown)
		}
	}
	for _, sl := range s.Slows {
		if sl.Rank < 0 {
			return fmt.Errorf("fault: slow rank %d is negative", sl.Rank)
		}
		if sl.Factor < 1 {
			return fmt.Errorf("fault: slow window on rank %d has factor %g below 1 (1 is a no-op, use a larger factor)",
				sl.Rank, sl.Factor)
		}
		if sl.Start < 0 {
			return fmt.Errorf("fault: slow window on rank %d starts at negative time %v",
				sl.Rank, sl.Start)
		}
		if sl.Duration <= 0 {
			return fmt.Errorf("fault: slow window on rank %d has non-positive duration %v",
				sl.Rank, sl.Duration)
		}
	}
	if s.PStateDelay < 0 || s.TStateDelay < 0 {
		return fmt.Errorf("fault: negative power transition delay")
	}
	if s.RetryBudget < 0 {
		return fmt.Errorf("fault: negative RetryBudget %d", s.RetryBudget)
	}
	if s.AckTimeout < 0 {
		return fmt.Errorf("fault: negative AckTimeout")
	}
	if s.anyLoss() && s.RetryBudget == 0 {
		return fmt.Errorf("fault: zero retry budget with message loss enabled; every lost message would stall its receiver (set RetryBudget >= 1)")
	}
	if s.anyCorrupt() && s.RetryBudget == 0 {
		return fmt.Errorf("fault: zero retry budget with message corruption enabled; every ICRC reject would stall its receiver (set RetryBudget >= 1)")
	}
	return nil
}

// Parse reads the -fault command-line syntax: semicolon-separated
// key=value clauses.
//
//	seed=42                        deterministic seed (default 1)
//	msgloss=0.02                   loss probability for all message classes
//	eagerloss= rtsloss= ctsloss= dataloss=   per-class overrides
//	corrupt=0.01                   in-flight bit-flip probability, all classes
//	eagercorrupt= rtscorrupt= ctscorrupt= datacorrupt=   per-class overrides
//	terrfactor=0.5                 corruption multiplier per T-state depth
//	memburst=3@0.2:1ms+500us       rank 3 memory corrupts 20% of updates
//	                               from 1ms for 500us (rank * = all ranks)
//	degrade=node0-up@0.25:2ms+10ms link at 25% capacity from 2ms for 10ms
//	linkdown=node1-up:5ms+1ms      link fully down from 5ms for 1ms
//	crash=5@2ms                    rank 5 dies (crash-stop, permanent) at 2ms
//	detect=200us                   failure-detection (heartbeat) timeout
//	straggler=3@1.5                rank 3 runs 1.5x slower
//	jitter=0.2                     ±20% per-call jitter on stragglers
//	slow=3@8x:10ms+50ms            rank 3 fails slow: 8x degradation from
//	                               10ms for 50ms (the x suffix is optional)
//	pdelay=50us tdelay=20us        extra P-/T-state transition settle time
//	stick=0.1                      chance a transition sticks (10x delay)
//	stickfail=0.1                  chance a transition is silently lost
//	retry=7                        retransmit budget (IB RC Retry Count)
//	acktimeout=100us               base retransmission timeout
//
// degrade, linkdown, crash, straggler, memburst and slow may repeat, with
// guards against operator mistakes: repeating crash= for one rank is an
// error (a typo would otherwise silently pick the earliest time), two
// degrade/linkdown windows on the same link — or two memburst or slow
// windows on the same rank — must not overlap, and a slow window that
// opens at or after the same rank's crash time is rejected (the dead rank
// could never exhibit it). Every scalar clause (seed, the probabilities,
// timeouts, …) may appear at most once; the blanket msgloss/corrupt
// clauses plus their per-class overrides still compose because they are
// distinct keys. Durations use Go syntax (ns, us, ms, s).
func Parse(src string) (*Spec, error) {
	s := &Spec{Seed: 1}
	retrySet := false
	seen := map[string]bool{}
	crashRank := map[int]string{}
	for _, clause := range strings.Split(src, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "degrade", "linkdown", "crash", "straggler", "memburst", "slow":
			// Repeatable schedule clauses; cross-checked below.
		default:
			if seen[key] {
				return nil, fmt.Errorf("fault: clause %q: duplicate %s= clause (each scalar clause may appear once)", clause, key)
			}
			seen[key] = true
		}
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseUint(val, 10, 64)
		case "msgloss":
			var p float64
			p, err = parseProb(val)
			s.EagerLoss, s.RTSLoss, s.CTSLoss, s.DataLoss = p, p, p, p
		case "eagerloss":
			s.EagerLoss, err = parseProb(val)
		case "rtsloss":
			s.RTSLoss, err = parseProb(val)
		case "ctsloss":
			s.CTSLoss, err = parseProb(val)
		case "dataloss":
			s.DataLoss, err = parseProb(val)
		case "corrupt":
			var p float64
			p, err = parseProb(val)
			s.EagerCorrupt, s.RTSCorrupt, s.CTSCorrupt, s.DataCorrupt = p, p, p, p
		case "eagercorrupt":
			s.EagerCorrupt, err = parseProb(val)
		case "rtscorrupt":
			s.RTSCorrupt, err = parseProb(val)
		case "ctscorrupt":
			s.CTSCorrupt, err = parseProb(val)
		case "datacorrupt":
			s.DataCorrupt, err = parseProb(val)
		case "terrfactor":
			s.TStateErrFactor, err = strconv.ParseFloat(val, 64)
		case "memburst":
			var mb MemBurst
			mb, err = parseMemBurst(val)
			s.MemBursts = append(s.MemBursts, mb)
		case "degrade":
			var lf LinkFault
			lf, err = parseLinkFault(val, true)
			s.LinkFaults = append(s.LinkFaults, lf)
		case "linkdown":
			var lf LinkFault
			lf, err = parseLinkFault(val, false)
			s.LinkFaults = append(s.LinkFaults, lf)
		case "crash":
			name, at, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("fault: crash %q (want RANK@TIME)", val)
			}
			cr := Crash{}
			cr.Rank, err = strconv.Atoi(name)
			if err == nil {
				cr.At, err = parseDur(at)
			}
			if err == nil {
				if prev, dup := crashRank[cr.Rank]; dup {
					return nil, fmt.Errorf("fault: clause %q: rank %d already crashed by clause %q (one crash= per rank)",
						clause, cr.Rank, prev)
				}
				crashRank[cr.Rank] = clause
			}
			s.Crashes = append(s.Crashes, cr)
		case "detect":
			s.DetectTimeout, err = parseDur(val)
		case "straggler":
			name, factor, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("fault: straggler %q (want RANK@SLOWDOWN)", val)
			}
			st := Straggler{}
			st.Rank, err = strconv.Atoi(name)
			if err == nil {
				st.Slowdown, err = strconv.ParseFloat(factor, 64)
			}
			s.Stragglers = append(s.Stragglers, st)
		case "jitter":
			s.ComputeJitter, err = strconv.ParseFloat(val, 64)
		case "slow":
			var sl Slow
			sl, err = parseSlow(val)
			s.Slows = append(s.Slows, sl)
		case "stickfail":
			s.StickFailProb, err = parseProb(val)
		case "pdelay":
			s.PStateDelay, err = parseDur(val)
		case "tdelay":
			s.TStateDelay, err = parseDur(val)
		case "stick":
			s.StickProb, err = parseProb(val)
		case "retry":
			s.RetryBudget, err = strconv.Atoi(val)
			retrySet = true
		case "acktimeout":
			s.AckTimeout, err = parseDur(val)
		default:
			return nil, fmt.Errorf("fault: unknown clause key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
	}
	if !retrySet {
		s.RetryBudget = DefaultRetryBudget
	}
	if s.AckTimeout == 0 {
		s.AckTimeout = DefaultAckTimeout
	}
	if err := checkLinkWindows(s.LinkFaults); err != nil {
		return nil, err
	}
	if err := checkBurstWindows(s.MemBursts); err != nil {
		return nil, err
	}
	if err := checkSlowWindows(s.Slows); err != nil {
		return nil, err
	}
	if err := checkSlowCrash(s.Slows, s.CrashSchedule()); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// checkLinkWindows rejects overlapping degrade/linkdown windows on the
// same link: the overlap region would silently apply only one factor,
// which is never what the operator meant.
func checkLinkWindows(lfs []LinkFault) error {
	byLink := map[string][]LinkFault{}
	for _, lf := range lfs {
		byLink[lf.Link] = append(byLink[lf.Link], lf)
	}
	for link, ws := range byLink {
		sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
		for i := 1; i < len(ws); i++ {
			prev, cur := ws[i-1], ws[i]
			if cur.Start < prev.Start+prev.Duration {
				return fmt.Errorf("fault: link %q fault windows overlap: %s+%s and %s+%s",
					link, durStr(prev.Start), durStr(prev.Duration),
					durStr(cur.Start), durStr(cur.Duration))
			}
		}
	}
	return nil
}

// checkBurstWindows rejects overlapping memburst windows on the same rank
// (including two all-rank windows; an all-rank window overlapping a
// single-rank one is allowed — the probabilities compose per update).
func checkBurstWindows(mbs []MemBurst) error {
	byRank := map[int][]MemBurst{}
	for _, mb := range mbs {
		byRank[mb.Rank] = append(byRank[mb.Rank], mb)
	}
	for rank, ws := range byRank {
		sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
		for i := 1; i < len(ws); i++ {
			prev, cur := ws[i-1], ws[i]
			if cur.Start < prev.Start+prev.Duration {
				who := fmt.Sprintf("rank %d", rank)
				if rank == -1 {
					who = "all ranks (*)"
				}
				return fmt.Errorf("fault: memburst windows on %s overlap: %s+%s and %s+%s",
					who, durStr(prev.Start), durStr(prev.Duration),
					durStr(cur.Start), durStr(cur.Duration))
			}
		}
	}
	return nil
}

// checkSlowWindows rejects overlapping slow windows on the same rank: the
// overlap region would silently apply only the larger factor, which is
// never what the operator meant.
func checkSlowWindows(sls []Slow) error {
	byRank := map[int][]Slow{}
	for _, sl := range sls {
		byRank[sl.Rank] = append(byRank[sl.Rank], sl)
	}
	for rank, ws := range byRank {
		sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
		for i := 1; i < len(ws); i++ {
			prev, cur := ws[i-1], ws[i]
			if cur.Start < prev.Start+prev.Duration {
				return fmt.Errorf("fault: slow windows on rank %d overlap: %s+%s and %s+%s",
					rank, durStr(prev.Start), durStr(prev.Duration),
					durStr(cur.Start), durStr(cur.Duration))
			}
		}
	}
	return nil
}

// checkSlowCrash rejects a slow window that opens at or after the same
// rank's crash time: the rank is dead before the degradation could ever be
// observed, so the clause is a likely typo. A crash *during* an open
// window is allowed — a rank may well limp before it dies.
func checkSlowCrash(sls []Slow, crashes []Crash) error {
	if len(sls) == 0 || len(crashes) == 0 {
		return nil
	}
	crashAt := map[int]simtime.Duration{}
	for _, cr := range crashes {
		crashAt[cr.Rank] = cr.At
	}
	for _, sl := range sls {
		if at, dead := crashAt[sl.Rank]; dead && sl.Start >= at {
			return fmt.Errorf("fault: slow window on rank %d opens at %s but the rank crashes at %s (window is unobservable)",
				sl.Rank, durStr(sl.Start), durStr(at))
		}
	}
	return nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	return p, nil
}

// parseDur parses a Go-style duration into virtual time.
func parseDur(v string) (simtime.Duration, error) {
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, err
	}
	return simtime.Duration(d.Nanoseconds()), nil
}

// parseMemBurst reads RANK@PROB:START+DUR where RANK may be * (all ranks).
func parseMemBurst(v string) (MemBurst, error) {
	mb := MemBurst{}
	head, window, ok := strings.Cut(v, ":")
	if !ok {
		return mb, fmt.Errorf("missing :START+DUR window in %q", v)
	}
	rank, prob, ok := strings.Cut(head, "@")
	if !ok {
		return mb, fmt.Errorf("missing @PROB in %q", v)
	}
	if rank == "*" {
		mb.Rank = -1
	} else {
		r, err := strconv.Atoi(rank)
		if err != nil {
			return mb, err
		}
		mb.Rank = r
	}
	p, err := parseProb(prob)
	if err != nil {
		return mb, err
	}
	mb.Prob = p
	start, dur, ok := strings.Cut(window, "+")
	if !ok {
		return mb, fmt.Errorf("window %q is not START+DUR", window)
	}
	if mb.Start, err = parseDur(start); err != nil {
		return mb, err
	}
	if mb.Duration, err = parseDur(dur); err != nil {
		return mb, err
	}
	return mb, nil
}

// parseSlow reads RANK@FACTOR:START+DUR where FACTOR may carry an x
// suffix (slow=3@8x:10ms+50ms reads naturally as "8x slower").
func parseSlow(v string) (Slow, error) {
	sl := Slow{}
	head, window, ok := strings.Cut(v, ":")
	if !ok {
		return sl, fmt.Errorf("missing :START+DUR window in %q", v)
	}
	rank, factor, ok := strings.Cut(head, "@")
	if !ok {
		return sl, fmt.Errorf("missing @FACTOR in %q", v)
	}
	r, err := strconv.Atoi(rank)
	if err != nil {
		return sl, err
	}
	sl.Rank = r
	factor = strings.TrimSuffix(factor, "x")
	if sl.Factor, err = strconv.ParseFloat(factor, 64); err != nil {
		return sl, err
	}
	start, dur, ok := strings.Cut(window, "+")
	if !ok {
		return sl, fmt.Errorf("window %q is not START+DUR", window)
	}
	if sl.Start, err = parseDur(start); err != nil {
		return sl, err
	}
	if sl.Duration, err = parseDur(dur); err != nil {
		return sl, err
	}
	return sl, nil
}

// parseLinkFault reads LINK@FACTOR:START+DUR (degrade) or LINK:START+DUR
// (linkdown, factor 0).
func parseLinkFault(v string, withFactor bool) (LinkFault, error) {
	lf := LinkFault{}
	head, window, ok := strings.Cut(v, ":")
	if !ok {
		return lf, fmt.Errorf("missing :START+DUR window in %q", v)
	}
	if withFactor {
		link, factor, ok := strings.Cut(head, "@")
		if !ok {
			return lf, fmt.Errorf("missing @FACTOR in %q", v)
		}
		lf.Link = link
		f, err := strconv.ParseFloat(factor, 64)
		if err != nil {
			return lf, err
		}
		lf.Factor = f
	} else {
		lf.Link = head
	}
	start, dur, ok := strings.Cut(window, "+")
	if !ok {
		return lf, fmt.Errorf("window %q is not START+DUR", window)
	}
	var err error
	if lf.Start, err = parseDur(start); err != nil {
		return lf, err
	}
	if lf.Duration, err = parseDur(dur); err != nil {
		return lf, err
	}
	return lf, nil
}

// String renders the spec back in Parse syntax (canonical clause order).
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	add := func(f string, args ...any) { parts = append(parts, fmt.Sprintf(f, args...)) }
	add("seed=%d", s.Seed)
	if s.EagerLoss > 0 {
		add("eagerloss=%g", s.EagerLoss)
	}
	if s.RTSLoss > 0 {
		add("rtsloss=%g", s.RTSLoss)
	}
	if s.CTSLoss > 0 {
		add("ctsloss=%g", s.CTSLoss)
	}
	if s.DataLoss > 0 {
		add("dataloss=%g", s.DataLoss)
	}
	if s.EagerCorrupt > 0 {
		add("eagercorrupt=%g", s.EagerCorrupt)
	}
	if s.RTSCorrupt > 0 {
		add("rtscorrupt=%g", s.RTSCorrupt)
	}
	if s.CTSCorrupt > 0 {
		add("ctscorrupt=%g", s.CTSCorrupt)
	}
	if s.DataCorrupt > 0 {
		add("datacorrupt=%g", s.DataCorrupt)
	}
	if s.TStateErrFactor > 0 {
		add("terrfactor=%g", s.TStateErrFactor)
	}
	for _, mb := range s.MemBursts {
		rank := strconv.Itoa(mb.Rank)
		if mb.Rank == -1 {
			rank = "*"
		}
		add("memburst=%s@%g:%s+%s", rank, mb.Prob, durStr(mb.Start), durStr(mb.Duration))
	}
	for _, lf := range s.LinkFaults {
		if lf.Factor == 0 {
			add("linkdown=%s:%s+%s", lf.Link, durStr(lf.Start), durStr(lf.Duration))
		} else {
			add("degrade=%s@%g:%s+%s", lf.Link, lf.Factor, durStr(lf.Start), durStr(lf.Duration))
		}
	}
	for _, cr := range s.Crashes {
		add("crash=%d@%s", cr.Rank, durStr(cr.At))
	}
	if s.DetectTimeout > 0 {
		add("detect=%s", durStr(s.DetectTimeout))
	}
	for _, st := range s.Stragglers {
		add("straggler=%d@%g", st.Rank, st.Slowdown)
	}
	if s.ComputeJitter > 0 {
		add("jitter=%g", s.ComputeJitter)
	}
	for _, sl := range s.Slows {
		add("slow=%d@%gx:%s+%s", sl.Rank, sl.Factor, durStr(sl.Start), durStr(sl.Duration))
	}
	if s.PStateDelay > 0 {
		add("pdelay=%s", durStr(s.PStateDelay))
	}
	if s.TStateDelay > 0 {
		add("tdelay=%s", durStr(s.TStateDelay))
	}
	if s.StickProb > 0 {
		add("stick=%g", s.StickProb)
	}
	if s.StickFailProb > 0 {
		add("stickfail=%g", s.StickFailProb)
	}
	if s.RetryBudget > 0 {
		add("retry=%d", s.RetryBudget)
	}
	if s.AckTimeout > 0 {
		add("acktimeout=%s", durStr(s.AckTimeout))
	}
	return strings.Join(parts, ";")
}

func durStr(d simtime.Duration) string {
	return time.Duration(d).String()
}

// CrashSchedule returns the effective crash schedule: one entry per rank
// (the earliest scheduled time wins), sorted by rank. The deterministic
// order matters — the mpi layer turns each entry into an engine event, and
// event identity includes scheduling order.
func (s *Spec) CrashSchedule() []Crash {
	if s == nil || len(s.Crashes) == 0 {
		return nil
	}
	earliest := map[int]simtime.Duration{}
	for _, cr := range s.Crashes {
		at, seen := earliest[cr.Rank]
		if !seen || cr.At < at {
			earliest[cr.Rank] = cr.At
		}
	}
	out := make([]Crash, 0, len(earliest))
	for rank, at := range earliest {
		out = append(out, Crash{Rank: rank, At: at})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// Detect returns the failure-detection latency (DefaultDetectTimeout when
// unset).
func (s *Spec) Detect() simtime.Duration {
	if s == nil || s.DetectTimeout <= 0 {
		return DefaultDetectTimeout
	}
	return s.DetectTimeout
}

// SlowRanks returns the ranks with at least one fail-slow window,
// ascending (deduplicated). These are the ranks detection should be able
// to implicate; together with StragglerRanks they form the a-priori
// suspect universe a test can check suspicion against.
func (s *Spec) SlowRanks() []int {
	if s == nil {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, sl := range s.Slows {
		if !seen[sl.Rank] {
			seen[sl.Rank] = true
			out = append(out, sl.Rank)
		}
	}
	sort.Ints(out)
	return out
}

// StragglerRanks returns the straggler ranks ascending (deduplicated).
func (s *Spec) StragglerRanks() []int {
	if s == nil {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, st := range s.Stragglers {
		if !seen[st.Rank] {
			seen[st.Rank] = true
			out = append(out, st.Rank)
		}
	}
	sort.Ints(out)
	return out
}
