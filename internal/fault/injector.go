package fault

import (
	"math"

	"pacc/internal/simtime"
)

// Injector answers fault-decision queries against a Spec. All methods are
// safe on a nil receiver (no faults), mirroring the nil-*obs.Bus pattern,
// so wired layers pay one pointer test when injection is off.
//
// Decisions are pure functions of (seed, event identity): message drops
// hash the class, endpoints, sequence number and attempt; per-call jitter
// and transition delays hash a per-entity counter. Nothing depends on
// global call order, so concurrent substrates cannot perturb each other's
// randomness.
type Injector struct {
	spec Spec
	// straggler maps a global rank to its slowdown factor.
	straggler map[int]float64
	// jitterSeq / pSeq / tSeq are per-entity decision counters. The
	// simulation is single-threaded (cooperative procs), so plain maps
	// are race-free and, because each entity's calls are ordered by its
	// own program order, deterministic.
	jitterSeq map[int]uint64
	pSeq      map[int]uint64
	tSeq      map[int]uint64
	// memSeq counts memory-accumulator updates per rank; it only advances
	// when the rank is covered by at least one MemBurst window, so specs
	// without bursts stay bit-identical to specs that never had the field.
	memSeq map[int]uint64
	// burstAll / burstOf index the spec's MemBursts by target.
	burstAll []MemBurst
	burstOf  map[int][]MemBurst
	// slowOf indexes the spec's fail-slow windows by rank.
	slowOf map[int][]Slow
	// sfSeq counts transition-loss decisions per core; it only advances
	// when StickFailProb > 0, so specs without it stay bit-identical.
	sfSeq map[int]uint64
}

// NewInjector builds an injector for a validated spec. A nil spec returns
// a nil injector (inject nothing).
func NewInjector(spec *Spec) *Injector {
	if spec == nil {
		return nil
	}
	in := &Injector{
		spec:      *spec,
		straggler: map[int]float64{},
		jitterSeq: map[int]uint64{},
		pSeq:      map[int]uint64{},
		tSeq:      map[int]uint64{},
		memSeq:    map[int]uint64{},
		burstOf:   map[int][]MemBurst{},
		slowOf:    map[int][]Slow{},
		sfSeq:     map[int]uint64{},
	}
	for _, st := range spec.Stragglers {
		if st.Slowdown > in.straggler[st.Rank] {
			in.straggler[st.Rank] = st.Slowdown
		}
	}
	for _, mb := range spec.MemBursts {
		if mb.Rank == -1 {
			in.burstAll = append(in.burstAll, mb)
		} else {
			in.burstOf[mb.Rank] = append(in.burstOf[mb.Rank], mb)
		}
	}
	for _, sl := range spec.Slows {
		in.slowOf[sl.Rank] = append(in.slowOf[sl.Rank], sl)
	}
	return in
}

// Spec returns a copy of the injector's spec (zero value for nil).
func (in *Injector) Spec() Spec {
	if in == nil {
		return Spec{}
	}
	return in.spec
}

// Enabled reports whether the injector can perturb anything.
func (in *Injector) Enabled() bool { return in != nil && in.spec.Active() }

// splitmix64 is the SplitMix64 finalizer: a fast, well-mixed 64-bit
// permutation (Steele et al.), the standard seeding primitive.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash folds the seed and the event identity words into one decision word.
func (in *Injector) hash(salt uint64, vs ...uint64) uint64 {
	h := splitmix64(in.spec.Seed ^ salt)
	for _, v := range vs {
		h = splitmix64(h ^ v)
	}
	return h
}

// u01 maps a decision word to [0,1) with 53-bit resolution.
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Salts separating decision families.
const (
	saltDrop      = 0xd309
	saltJitter    = 0x5177e3
	saltPState    = 0x9057a7e
	saltTState    = 0x7057a7e
	saltStick     = 0x5710c
	saltStickFail = 0x57f411
	saltCorrupt   = 0xc0bb1e
	saltMem       = 0x3a11d
)

// lossProb returns the drop probability of a message class.
func (in *Injector) lossProb(class MsgClass) float64 {
	switch class {
	case Eager:
		return in.spec.EagerLoss
	case RTS:
		return in.spec.RTSLoss
	case CTS:
		return in.spec.CTSLoss
	case Data:
		return in.spec.DataLoss
	default:
		return 0
	}
}

// Drop decides whether delivery attempt (0-based) of one protocol message
// is lost. Each attempt is an independent coin, so retransmissions can
// succeed.
func (in *Injector) Drop(class MsgClass, src, dst int, seq uint64, attempt int) bool {
	if in == nil {
		return false
	}
	p := in.lossProb(class)
	if p <= 0 {
		return false
	}
	h := in.hash(saltDrop, uint64(class), uint64(src), uint64(dst), seq, uint64(attempt))
	return u01(h) < p
}

// corruptProb returns the in-flight corruption probability of a class.
func (in *Injector) corruptProb(class MsgClass) float64 {
	switch class {
	case Eager:
		return in.spec.EagerCorrupt
	case RTS:
		return in.spec.RTSCorrupt
	case CTS:
		return in.spec.CTSCorrupt
	case Data:
		return in.spec.DataCorrupt
	default:
		return 0
	}
}

// Corrupt decides whether delivery attempt (0-based) of one protocol
// message is corrupted in flight — delivered on schedule but rejected by
// the receiver's ICRC check. tdepth is the sender core's T-state depth at
// injection time; TStateErrFactor scales the base probability with it
// (p·(1+factor·depth), capped at 1), modeling throttling-induced signal
// margin loss. Each attempt is an independent coin.
func (in *Injector) Corrupt(class MsgClass, src, dst int, seq uint64, attempt, tdepth int) bool {
	if in == nil {
		return false
	}
	p := in.corruptProb(class)
	if p <= 0 {
		return false
	}
	if f := in.spec.TStateErrFactor; f > 0 && tdepth > 0 {
		p *= 1 + f*float64(tdepth)
		if p > 1 {
			p = 1
		}
	}
	h := in.hash(saltCorrupt, uint64(class), uint64(src), uint64(dst), seq, uint64(attempt))
	return u01(h) < p
}

// MemCorrupt decides whether one local accumulator update on the given
// rank, happening at elapsed virtual time now, falls to a scheduled
// memory-corruption burst. It returns the decision word (feed it to
// CorruptFloat to pick the flipped bit) and the verdict. Each covered
// update advances the rank's memory counter, so a rank's corruption
// pattern depends only on its own update order; ranks with no burst
// windows never advance state, preserving bit-identity for specs without
// bursts.
func (in *Injector) MemCorrupt(rank int, now simtime.Duration) (uint64, bool) {
	if in == nil || (len(in.burstAll) == 0 && len(in.burstOf) == 0) {
		return 0, false
	}
	bursts := in.burstOf[rank]
	if len(bursts) == 0 && len(in.burstAll) == 0 {
		return 0, false
	}
	n := in.memSeq[rank]
	in.memSeq[rank] = n + 1
	p := 0.0
	for _, mb := range bursts {
		if now >= mb.Start && now < mb.Start+mb.Duration && mb.Prob > p {
			p = mb.Prob
		}
	}
	for _, mb := range in.burstAll {
		if now >= mb.Start && now < mb.Start+mb.Duration && mb.Prob > p {
			p = mb.Prob
		}
	}
	if p <= 0 {
		return 0, false
	}
	h := in.hash(saltMem, uint64(rank), n)
	return h, u01(h) < p
}

// CorruptFloat flips one mantissa bit of v, chosen by the decision word h.
// Restricting the flip to the low 52 bits keeps the result finite and
// non-NaN (a 1-ulp-scale silent error, the nastiest kind to detect);
// non-finite inputs are returned unchanged.
func CorruptFloat(v float64, h uint64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	bit := splitmix64(h) % 52
	return math.Float64frombits(math.Float64bits(v) ^ (1 << bit))
}

// RetryBudget returns the retransmit attempt bound (DefaultRetryBudget
// when unset or for a nil injector).
func (in *Injector) RetryBudget() int {
	if in == nil || in.spec.RetryBudget <= 0 {
		return DefaultRetryBudget
	}
	return in.spec.RetryBudget
}

// AckTimeout returns the base retransmission timeout (DefaultAckTimeout
// when unset or for a nil injector).
func (in *Injector) AckTimeout() simtime.Duration {
	if in == nil || in.spec.AckTimeout <= 0 {
		return DefaultAckTimeout
	}
	return in.spec.AckTimeout
}

// Backoff returns how long after a detected loss attempt (0-based) waits
// before retransmitting: AckTimeout·2^attempt, the IB-style exponential
// backoff.
func (in *Injector) Backoff(attempt int) simtime.Duration {
	d := in.AckTimeout()
	if attempt > 30 {
		attempt = 30
	}
	return d << uint(attempt)
}

// ComputeScale returns the multiplicative slowdown of one CPU-bound call
// on the given rank: exactly 1 for healthy ranks (no float perturbation),
// slowdown·(1 ± jitter) for stragglers. Each call advances the rank's
// jitter counter, so a straggler's phases wobble deterministically.
func (in *Injector) ComputeScale(rank int) float64 {
	if in == nil {
		return 1
	}
	slow, ok := in.straggler[rank]
	if !ok {
		return 1
	}
	if j := in.spec.ComputeJitter; j > 0 {
		n := in.jitterSeq[rank]
		in.jitterSeq[rank] = n + 1
		u := u01(in.hash(saltJitter, uint64(rank), n)) // [0,1)
		slow *= 1 + j*(2*u-1)
		if slow < 1 {
			slow = 1
		}
	}
	return slow
}

// HasSlow reports whether the rank has any scheduled fail-slow window.
// Healthy ranks answer with one nil test and one map probe, so wiring the
// check into the compute path costs nothing when the feature is off.
func (in *Injector) HasSlow(rank int) bool {
	if in == nil || len(in.slowOf) == 0 {
		return false
	}
	return len(in.slowOf[rank]) > 0
}

// SlowScale returns the fail-slow stretch factor of one CPU-bound call on
// the given rank at elapsed virtual time now: exactly 1 outside every
// window (no float perturbation), the largest covering Factor inside one.
// Unlike ComputeScale it is a pure function of (rank, now) with no
// per-call counter — the degradation is scheduled, not probabilistic — so
// consulting it never perturbs other decision streams.
func (in *Injector) SlowScale(rank int, now simtime.Duration) float64 {
	if in == nil || len(in.slowOf) == 0 {
		return 1
	}
	f := 1.0
	for _, sl := range in.slowOf[rank] {
		if now >= sl.Start && now < sl.Start+sl.Duration && sl.Factor > f {
			f = sl.Factor
		}
	}
	return f
}

// TransitionLost decides whether one P-state (dvfs) or T-state transition
// on the given core is silently dropped after paying its settle time: the
// state write never lands and the core keeps its previous operating point.
// Each decision advances the core's own counter (only when the feature is
// armed), so a retry of the same logical transition is a fresh coin and
// bounded re-issue eventually wins.
func (in *Injector) TransitionLost(core int, dvfs bool) bool {
	if in == nil || in.spec.StickFailProb <= 0 {
		return false
	}
	n := in.sfSeq[core]
	in.sfSeq[core] = n + 1
	kind := uint64(0)
	if dvfs {
		kind = 1
	}
	return u01(in.hash(saltStickFail, uint64(core), kind, n)) < in.spec.StickFailProb
}

// PStateExtra returns the extra settle time of the next DVFS transition on
// the given core (0 for healthy runs). A stuck transition (StickProb)
// takes stickFactor times longer.
func (in *Injector) PStateExtra(core int) simtime.Duration {
	if in == nil || in.spec.PStateDelay <= 0 {
		return 0
	}
	return in.transitionExtra(core, in.spec.PStateDelay, saltPState, in.pSeq)
}

// TStateExtra returns the extra settle time of the next throttle
// transition on the given core.
func (in *Injector) TStateExtra(core int) simtime.Duration {
	if in == nil || in.spec.TStateDelay <= 0 {
		return 0
	}
	return in.transitionExtra(core, in.spec.TStateDelay, saltTState, in.tSeq)
}

func (in *Injector) transitionExtra(core int, base simtime.Duration, salt uint64,
	seq map[int]uint64) simtime.Duration {
	n := seq[core]
	seq[core] = n + 1
	if p := in.spec.StickProb; p > 0 {
		if u01(in.hash(saltStick^salt, uint64(core), n)) < p {
			return base * stickFactor
		}
	}
	return base
}
