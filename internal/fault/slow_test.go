package fault

import (
	"reflect"
	"strings"
	"testing"

	"pacc/internal/simtime"
)

func TestParseSlowSpec(t *testing.T) {
	s, err := Parse("seed=9;slow=3@8x:10ms+50ms;slow=5@2:1ms+2ms;stickfail=0.2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Slow{
		{Rank: 3, Factor: 8, Start: 10 * simtime.Millisecond, Duration: 50 * simtime.Millisecond},
		{Rank: 5, Factor: 2, Start: simtime.Millisecond, Duration: 2 * simtime.Millisecond},
	}
	if !reflect.DeepEqual(s.Slows, want) {
		t.Fatalf("parsed slows\n%+v\nwant\n%+v", s.Slows, want)
	}
	if s.StickFailProb != 0.2 {
		t.Fatalf("StickFailProb = %g, want 0.2", s.StickFailProb)
	}
	if !s.Active() {
		t.Error("spec with slow windows should be active")
	}
	if got := s.SlowRanks(); !reflect.DeepEqual(got, []int{3, 5}) {
		t.Errorf("SlowRanks = %v, want [3 5]", got)
	}
}

// The slow= parser rejects every malformed or self-contradictory clause
// combination with an error naming the problem.
func TestParseSlowErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring the error must contain
	}{
		{"slow=3", "missing :START+DUR"},
		{"slow=3:1ms+1ms", "missing @FACTOR"},
		{"slow=x@2:1ms+1ms", "invalid syntax"},
		{"slow=3@2:1ms", "not START+DUR"},
		{"slow=3@2:oops+1ms", "time: "},
		{"slow=3@2:1ms+oops", "time: "},
		{"slow=-1@2:1ms+1ms", "negative"},
		{"slow=3@0x:1ms+1ms", "below 1"},
		{"slow=3@0.5:1ms+1ms", "below 1"},
		{"slow=3@2:-1ms+1ms", "negative time"},
		{"slow=3@2:1ms+0s", "non-positive duration"},
		// Duplicate (fully coincident) and partially overlapping windows
		// on one rank are operator mistakes; adjacent or distinct-rank
		// windows are fine (checked in the good cases below).
		{"slow=3@2:1ms+1ms;slow=3@2:1ms+1ms", "overlap"},
		{"slow=3@2:1ms+5ms;slow=3@4:3ms+1ms", "overlap"},
		// A window opening at or after the rank's crash is unobservable.
		{"slow=3@2:5ms+1ms;crash=3@5ms", "unobservable"},
		{"slow=3@2:5ms+1ms;crash=3@2ms", "unobservable"},
		// stickfail is a scalar clause: once, and a probability.
		{"stickfail=0.1;stickfail=0.2", "duplicate"},
		{"stickfail=1.5", "outside [0,1]"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) accepted", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) = %v, want error containing %q", tc.src, err, tc.want)
		}
	}
	good := []string{
		"slow=3@2:1ms+1ms;slow=3@4:2ms+1ms", // adjacent windows touch, no overlap
		"slow=3@2:1ms+1ms;slow=4@2:1ms+1ms", // same window, different ranks
		"slow=3@2:1ms+10ms;crash=3@5ms",     // crash mid-window: limp then die
		"slow=3@8x:10ms+50ms;straggler=3@2", // slow composes with straggler
	}
	for _, src := range good {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestSlowStringRoundTrip(t *testing.T) {
	src := "seed=3;slow=1@2x:1ms+2ms;slow=4@8x:10ms+50ms;stickfail=0.1;retry=7;acktimeout=100us"
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(s.String())
	if err != nil {
		t.Fatalf("Parse(String()) = %q: %v", s.String(), err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip changed the spec:\n%+v\n%+v", s, back)
	}
}

// SlowScale is exactly 1 outside every window (bit-identity), the largest
// covering factor inside one, and a pure function — no per-call state.
func TestSlowScale(t *testing.T) {
	spec := &Spec{Seed: 1, Slows: []Slow{
		{Rank: 3, Factor: 8, Start: 10 * simtime.Millisecond, Duration: 50 * simtime.Millisecond},
		{Rank: 5, Factor: 2, Start: 0, Duration: simtime.Millisecond},
	}}
	in := NewInjector(spec)
	cases := []struct {
		rank int
		at   simtime.Duration
		want float64
	}{
		{3, 0, 1},
		{3, 10 * simtime.Millisecond, 8}, // inclusive start
		{3, 59*simtime.Millisecond + 999*simtime.Microsecond, 8}, // last instant
		{3, 60 * simtime.Millisecond, 1},                         // exclusive end
		{5, 0, 2},
		{5, simtime.Millisecond, 1},
		{0, 10 * simtime.Millisecond, 1}, // healthy rank, any time
	}
	for _, tc := range cases {
		if got := in.SlowScale(tc.rank, tc.at); got != tc.want {
			t.Errorf("SlowScale(%d, %v) = %g, want %g", tc.rank, tc.at, got, tc.want)
		}
		// Pure: asking twice answers the same.
		if got := in.SlowScale(tc.rank, tc.at); got != tc.want {
			t.Errorf("second SlowScale(%d, %v) = %g, want %g", tc.rank, tc.at, got, tc.want)
		}
	}
	if !in.HasSlow(3) || !in.HasSlow(5) || in.HasSlow(0) {
		t.Error("HasSlow misreports the slow-rank set")
	}
	var nilIn *Injector
	if nilIn.SlowScale(3, 0) != 1 || nilIn.HasSlow(3) {
		t.Error("nil injector must report healthy")
	}
}

// TransitionLost is deterministic per (seed, core, kind, sequence), only
// advances state when armed, and a bounded retry eventually lands a
// transition (the coin is fresh per attempt).
func TestTransitionLost(t *testing.T) {
	var nilIn *Injector
	if nilIn.TransitionLost(0, true) {
		t.Fatal("nil injector lost a transition")
	}
	off := NewInjector(&Spec{Seed: 1})
	for i := 0; i < 4; i++ {
		if off.TransitionLost(0, true) {
			t.Fatal("disarmed injector lost a transition")
		}
	}
	if len(off.sfSeq) != 0 {
		t.Fatal("disarmed TransitionLost advanced per-core state")
	}

	spec := &Spec{Seed: 42, StickFailProb: 0.5}
	a, b := NewInjector(spec), NewInjector(spec)
	lost, n := 0, 64
	for i := 0; i < n; i++ {
		la := a.TransitionLost(1, true)
		if lb := b.TransitionLost(1, true); la != lb {
			t.Fatalf("decision %d diverged between identical injectors", i)
		}
		if la {
			lost++
		}
	}
	if lost == 0 || lost == n {
		t.Fatalf("p=0.5 over %d draws lost %d transitions — coin looks rigged", n, lost)
	}
	// Certain loss really is certain; a retry budget can still bound the
	// caller because the caller observes the stale state and gives up.
	sure := NewInjector(&Spec{Seed: 7, StickFailProb: 1})
	if !sure.TransitionLost(2, false) {
		t.Error("p=1 kept a transition")
	}
}
