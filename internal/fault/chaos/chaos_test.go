package chaos

import (
	"bytes"
	"testing"
)

// The spec generator must be a pure function of the seed.
func TestGenSpecDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a := GenSpec(seed, 8, 8)
		b := GenSpec(seed, 8, 8)
		if a.String() != b.String() {
			t.Fatalf("seed %d: %q vs %q", seed, a, b)
		}
		if len(a.Crashes) > 4 {
			t.Fatalf("seed %d schedules %d crashes, more than half the job", seed, len(a.Crashes))
		}
	}
}

// A sweep of seeds stands in for the fuzzer in ordinary test runs: every
// schedule must satisfy every invariant.
func TestChaosSeedSweep(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		if _, err := Run(Options{Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
}

// Satellite: two runs of the same seed are byte-identical, metrics and
// trace included — the deterministic-replay contract of the whole
// simulator under chaos.
func TestChaosReplayDeterministic(t *testing.T) {
	for _, seed := range []uint64{3, 7, 11} {
		a, err := Run(Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Metrics, b.Metrics) {
			t.Fatalf("seed %d: metrics exports differ between identical runs", seed)
		}
		if !bytes.Equal(a.Trace, b.Trace) {
			t.Fatalf("seed %d: trace exports differ between identical runs", seed)
		}
		if a.Sum != b.Sum || len(a.FinalGroup) != len(b.FinalGroup) {
			t.Fatalf("seed %d: results differ: %v/%g vs %v/%g",
				seed, a.FinalGroup, a.Sum, b.FinalGroup, b.Sum)
		}
	}
}

// FuzzChaos is the chaos fuzzing entry point: go test -fuzz=FuzzChaos
// explores the seed space; the checked-in corpus under testdata/fuzz
// keeps the interesting schedules (multi-crash, crash+down-link overlap)
// in every ordinary test run.
func FuzzChaos(f *testing.F) {
	for _, seed := range []uint64{0, 1, 2, 5, 13, 42, 1023, 1 << 33, 0xdeadbeef} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if _, err := Run(Options{Seed: seed}); err != nil {
			t.Fatal(err)
		}
	})
}
