package chaos

import (
	"bytes"
	"fmt"
	"testing"
)

// The spec generator must be a pure function of the seed.
func TestGenSpecDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a := GenSpec(seed, 8, 8)
		b := GenSpec(seed, 8, 8)
		if a.String() != b.String() {
			t.Fatalf("seed %d: %q vs %q", seed, a, b)
		}
		if len(a.Crashes) > 4 {
			t.Fatalf("seed %d schedules %d crashes, more than half the job", seed, len(a.Crashes))
		}
	}
}

// A sweep of seeds stands in for the fuzzer in ordinary test runs: every
// schedule must satisfy every invariant.
func TestChaosSeedSweep(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		if _, err := Run(Options{Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
}

// Satellite: two runs of the same seed are byte-identical, metrics and
// trace included — the deterministic-replay contract of the whole
// simulator under chaos.
func TestChaosReplayDeterministic(t *testing.T) {
	for _, seed := range []uint64{3, 7, 11} {
		a, err := Run(Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Metrics, b.Metrics) {
			t.Fatalf("seed %d: metrics exports differ between identical runs", seed)
		}
		if !bytes.Equal(a.Trace, b.Trace) {
			t.Fatalf("seed %d: trace exports differ between identical runs", seed)
		}
		if a.Sum != b.Sum || len(a.FinalGroup) != len(b.FinalGroup) {
			t.Fatalf("seed %d: results differ: %v/%g vs %v/%g",
				seed, a.FinalGroup, a.Sum, b.FinalGroup, b.Sum)
		}
	}
}

// The corrupt generator shares GenSpec's crash/link/straggler schedule
// for the same seed (the corruption stream is salted separately) and is
// itself a pure function of the seed.
func TestGenSpecCorruptDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a := GenSpecCorrupt(seed, 8, 8)
		if b := GenSpecCorrupt(seed, 8, 8); a.String() != b.String() {
			t.Fatalf("seed %d: %q vs %q", seed, a, b)
		}
		if len(a.MemBursts) == 0 {
			t.Fatalf("seed %d: corrupt spec has no memory-corruption bursts", seed)
		}
		base := GenSpec(seed, 8, 8)
		if len(a.Crashes) != len(base.Crashes) || a.DetectTimeout != base.DetectTimeout {
			t.Fatalf("seed %d: corruption draws perturbed the crash schedule", seed)
		}
	}
}

// The headline integrity invariant, swept: under combined crashes, link
// faults, bit flips, and memory-corruption bursts, every survivor either
// converges on the correct sum or returns a typed error — Run fails the
// seed on any silently wrong value or any finished/erred divergence.
func TestChaosCorruptSeedSweep(t *testing.T) {
	finished, nacked, verifyFailed := 0, 0, 0
	for seed := uint64(0); seed < 64; seed++ {
		res, err := Run(Options{Seed: seed, Corrupt: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err == nil {
			finished++
		}
		if bytes.Contains(res.Metrics, []byte("integrity.icrc.nacks")) {
			nacked++
		}
		if bytes.Contains(res.Metrics, []byte("integrity.verify.failures")) {
			verifyFailed++
		}
	}
	// The sweep must exercise both the clean-completion path and the two
	// detection layers — otherwise the invariant is passing vacuously.
	if finished == 0 {
		t.Fatal("no corrupted seed completed cleanly")
	}
	if nacked == 0 {
		t.Fatal("no seed triggered an ICRC reject/NACK — in-flight corruption inert")
	}
	if verifyFailed == 0 {
		t.Fatal("no seed tripped ABFT verification — memory corruption inert")
	}
	t.Logf("corrupt sweep: %d/64 finished, %d with NACKs, %d with verify failures",
		finished, nacked, verifyFailed)
}

// Corrupted runs replay byte-identically too — including their typed
// error outcome, so a fuzzer-found integrity counterexample reproduces
// exactly.
func TestChaosCorruptReplayDeterministic(t *testing.T) {
	for _, seed := range []uint64{3, 7, 11, 29} {
		a, err := Run(Options{Seed: seed, Corrupt: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Options{Seed: seed, Corrupt: true})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Metrics, b.Metrics) {
			t.Fatalf("seed %d: metrics exports differ between identical corrupted runs", seed)
		}
		if !bytes.Equal(a.Trace, b.Trace) {
			t.Fatalf("seed %d: trace exports differ between identical corrupted runs", seed)
		}
		if (a.Err == nil) != (b.Err == nil) || a.Sum != b.Sum {
			t.Fatalf("seed %d: outcomes differ: %v/%g vs %v/%g", seed, a.Err, a.Sum, b.Err, b.Sum)
		}
		if a.Err != nil && a.Err.Error() != b.Err.Error() {
			t.Fatalf("seed %d: error text differs: %q vs %q", seed, a.Err, b.Err)
		}
	}
}

// The fail-slow generator is a pure function of the seed and never
// schedules anything fatal: gray failures only, so the full group must
// always complete.
func TestGenSpecSlowDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a := GenSpecSlow(seed, 8, 8)
		if b := GenSpecSlow(seed, 8, 8); a.String() != b.String() {
			t.Fatalf("seed %d: %q vs %q", seed, a, b)
		}
		if len(a.Crashes) != 0 || len(a.LinkFaults) != 0 {
			t.Fatalf("seed %d: fail-slow spec schedules fatal faults: %s", seed, a)
		}
		if len(a.Slows) < 1 || len(a.Slows) > 2 {
			t.Fatalf("seed %d: %d slow windows, want 1-2", seed, len(a.Slows))
		}
		for _, sl := range a.Slows {
			if sl.Factor < 2 || sl.Factor > 8 {
				t.Fatalf("seed %d: slow factor %g outside [2,8]", seed, sl.Factor)
			}
		}
		if a.StickFailProb < 0 || a.StickFailProb >= 1 {
			t.Fatalf("seed %d: stickfail %g outside [0,1)", seed, a.StickFailProb)
		}
	}
}

// The fail-slow campaign, swept: every seed must complete with the whole
// group, the right sum, bounded slowdown against its healthy twin, power
// restored, and no healthy rank suspected. The sweep must also actually
// exercise the detector — a campaign where nothing is ever suspected
// passes the invariants vacuously.
func TestChaosFailSlowSeedSweep(t *testing.T) {
	suspected, stuck := 0, 0
	for seed := uint64(0); seed < 32; seed++ {
		res, err := Run(Options{Seed: seed, FailSlow: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("seed %d: fail-slow run returned error outcome %v", seed, res.Err)
		}
		if len(res.Suspects) > 0 {
			suspected++
		}
		if bytes.Contains(res.Metrics, []byte("fault.power.transitions_lost")) {
			stuck++
		}
	}
	if suspected == 0 {
		t.Fatal("no fail-slow seed produced a suspect — detection inert")
	}
	if stuck == 0 {
		t.Fatal("no fail-slow seed lost a transition write — stickfail inert")
	}
	t.Logf("fail-slow sweep: %d/32 seeds with suspects, %d with lost transitions", suspected, stuck)
}

// Fail-slow runs replay byte-identically, elapsed time and suspect set
// included — detection and demotion are deterministic bookkeeping, not
// new sources of divergence.
func TestChaosFailSlowReplayDeterministic(t *testing.T) {
	for _, seed := range []uint64{2, 9, 19} {
		a, err := Run(Options{Seed: seed, FailSlow: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Options{Seed: seed, FailSlow: true})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Metrics, b.Metrics) {
			t.Fatalf("seed %d: metrics exports differ between identical fail-slow runs", seed)
		}
		if !bytes.Equal(a.Trace, b.Trace) {
			t.Fatalf("seed %d: trace exports differ between identical fail-slow runs", seed)
		}
		if a.Elapsed != b.Elapsed {
			t.Fatalf("seed %d: elapsed differs: %v vs %v", seed, a.Elapsed, b.Elapsed)
		}
		if fmt.Sprint(a.Suspects) != fmt.Sprint(b.Suspects) {
			t.Fatalf("seed %d: suspect sets differ: %v vs %v", seed, a.Suspects, b.Suspects)
		}
	}
}

// FuzzChaos is the chaos fuzzing entry point: go test -fuzz=FuzzChaos
// explores the seed space; the checked-in corpus under testdata/fuzz
// keeps the interesting schedules (multi-crash, crash+down-link overlap)
// in every ordinary test run.
func FuzzChaos(f *testing.F) {
	for _, seed := range []uint64{0, 1, 2, 5, 13, 42, 1023, 1 << 33, 0xdeadbeef} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if _, err := Run(Options{Seed: seed}); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(Options{Seed: seed, Corrupt: true}); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(Options{Seed: seed, FailSlow: true}); err != nil {
			t.Fatal(err)
		}
	})
}
