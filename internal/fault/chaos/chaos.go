// Package chaos is the crash-fuzzing harness: it turns a single uint64
// seed into a randomized fault schedule — crash-stop rank failures, link
// degradation/down windows, stragglers with jitter, sticky power
// transitions, and (with Options.Corrupt) in-flight bit flips plus
// memory-corruption bursts — runs a fault-tolerant collective workload
// under it, and checks the invariants that must hold no matter what the
// schedule did:
//
//   - the simulation terminates (no deadlock; under corruption, a
//     retry-budget abort must carry a typed integrity error),
//   - every survivor converges on the same final group and on the sum of
//     exactly that group's contributions — or, under corruption, every
//     survivor returns a typed integrity/failure error; a silently wrong
//     sum or a finished/erred split across the group fails the run,
//   - every survivor core ends at fmax / T0,
//   - no surviving rank leaves an unbalanced async span on the timeline
//     (dead ranks' half-open spans are tombstones and are excused),
//   - cluster energy accounting is non-negative and monotone.
//
// Everything is deterministic: the same seed reproduces the same spec,
// the same simulation, and byte-identical metric and trace exports, so
// any fuzzer-found counterexample replays exactly.
package chaos

import (
	"bytes"
	"fmt"

	"pacc/internal/collective"
	"pacc/internal/fault"
	"pacc/internal/mpi"
	"pacc/internal/obs"
	"pacc/internal/simtime"
)

// rng is splitmix64 — the same generator the injector's decision hashes
// build on, chained here as a stream.
type rng struct{ x uint64 }

func (r *rng) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) dur(lo, hi simtime.Duration) simtime.Duration {
	return lo + simtime.Duration(r.next()%uint64(hi-lo+1))
}

const us = simtime.Microsecond

// GenSpec derives a randomized fault spec from one seed. At most half the
// job crashes, so a survivor group always exists; message loss stays off
// because a retry-budget exhaustion aborts the run by design and would
// mask the invariants this harness is after.
func GenSpec(seed uint64, procs, nodes int) *fault.Spec {
	r := &rng{x: seed}
	s := &fault.Spec{Seed: seed, RetryBudget: fault.DefaultRetryBudget}

	for n := r.intn(procs/2 + 1); n > 0; n-- {
		s.Crashes = append(s.Crashes, fault.Crash{
			Rank: r.intn(procs),
			At:   r.dur(5*us, 400*us),
		})
	}
	s.DetectTimeout = r.dur(20*us, 150*us)

	for n := r.intn(3); n > 0; n-- {
		dir := "up"
		if r.intn(2) == 1 {
			dir = "down"
		}
		s.LinkFaults = append(s.LinkFaults, fault.LinkFault{
			Link:     fmt.Sprintf("node%d-%s", r.intn(nodes), dir),
			Factor:   []float64{0, 0.25, 0.5}[r.intn(3)],
			Start:    r.dur(0, 200*us),
			Duration: r.dur(50*us, 400*us),
		})
	}

	if r.intn(2) == 1 {
		s.Stragglers = append(s.Stragglers, fault.Straggler{
			Rank:     r.intn(procs),
			Slowdown: 1 + 2*r.f64(),
		})
		s.ComputeJitter = 0.3 * r.f64()
	}

	if r.intn(2) == 1 {
		s.PStateDelay = r.dur(0, 30*us)
		s.TStateDelay = r.dur(0, 30*us)
		s.StickProb = 0.5 * r.f64()
	}

	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("chaos: generated invalid spec from seed %d: %v", seed, err))
	}
	return s
}

// GenSpecCorrupt extends GenSpec with seeded data-corruption clauses:
// in-flight bit flips per message class (caught by the transport ICRC and
// retransmitted), memory-corruption burst windows (caught only by the
// ABFT-checked collectives), and the T-state error-rate coupling. The
// corruption stream is salted so the crash/link/straggler part of the
// schedule stays identical to GenSpec's for the same seed.
func GenSpecCorrupt(seed uint64, procs, nodes int) *fault.Spec {
	s := GenSpec(seed, procs, nodes)
	r := &rng{x: seed ^ 0xc0bb1e5}

	// In-flight corruption: every corrupted attempt costs a NACK and a
	// retransmit, so even high rates only slow the run down — with the
	// occasional seed pushing a message past its retry budget, which must
	// then surface as a typed abort, never wrong data.
	if r.intn(2) == 1 {
		s.DataCorrupt = 0.25 * r.f64()
		s.EagerCorrupt = 0.25 * r.f64()
	}
	if r.intn(2) == 1 {
		s.RTSCorrupt = 0.1 * r.f64()
		s.CTSCorrupt = 0.1 * r.f64()
	}
	s.TStateErrFactor = float64(r.intn(3))

	// Memory-corruption bursts: sequential (non-overlapping) windows, so
	// the generated spec round-trips through the Parse hardening that
	// rejects overlapping windows per rank.
	start := simtime.Duration(0)
	for n := 1 + r.intn(3); n > 0; n-- {
		start += r.dur(0, 150*us)
		d := r.dur(20*us, 150*us)
		s.MemBursts = append(s.MemBursts, fault.MemBurst{
			Rank:     r.intn(procs+1) - 1, // -1 = all ranks
			Prob:     0.8 * r.f64(),
			Start:    start,
			Duration: d,
		})
		start += d
	}

	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("chaos: generated invalid corrupt spec from seed %d: %v", seed, err))
	}
	return s
}

// GenSpecSlow derives a pure fail-slow schedule from one seed: no
// crashes, no link faults — every rank survives and the job must
// complete — but 1-2 windowed compute degradations (factor 2-8x),
// optionally a straggler with jitter, slow power transitions, and lost
// transition writes (stickfail). The stream is salted so it shares
// nothing with GenSpec's crash schedule, and the windows are generated
// sequentially so the spec round-trips through the Parse hardening that
// rejects per-rank overlaps. The schedule arms the runtime's fail-slow
// detection (see mpi scoreboard), making the campaign exercise the whole
// detect → agree → recover/demote pipeline.
func GenSpecSlow(seed uint64, procs, nodes int) *fault.Spec {
	r := &rng{x: seed ^ 0x51033}
	s := &fault.Spec{Seed: seed, RetryBudget: fault.DefaultRetryBudget}

	start := simtime.Duration(0)
	for n := 1 + r.intn(2); n > 0; n-- {
		start += r.dur(0, 100*us)
		d := r.dur(100*us, 600*us)
		s.Slows = append(s.Slows, fault.Slow{
			Rank:     r.intn(procs),
			Factor:   2 + 6*r.f64(),
			Start:    start,
			Duration: d,
		})
		start += d
	}

	if r.intn(2) == 1 {
		s.Stragglers = append(s.Stragglers, fault.Straggler{
			Rank:     r.intn(procs),
			Slowdown: 1 + 2*r.f64(),
		})
		s.ComputeJitter = 0.3 * r.f64()
	}

	if r.intn(2) == 1 {
		s.PStateDelay = r.dur(0, 30*us)
		s.TStateDelay = r.dur(0, 30*us)
		s.StickProb = 0.5 * r.f64()
	}

	if r.intn(2) == 1 {
		// Capped well below 1 so bounded re-issue (RecoverPower) converges.
		s.StickFailProb = 0.4 * r.f64()
	}

	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("chaos: generated invalid fail-slow spec from seed %d: %v", seed, err))
	}
	return s
}

// slowdownBound returns the multiplicative completion-time bound a
// fail-slow schedule may legitimately impose on the healthy baseline: the
// worst compute stretch any rank can see (slow window × straggler ×
// jitter, and the fmax/fmin ratio while a lost DVFS write is stuck),
// with 3x protocol headroom for detection censuses, demotion reorders and
// transition retries.
func slowdownBound(s *fault.Spec, freqRatio float64) float64 {
	stretch := 1.0
	for _, sl := range s.Slows {
		if sl.Factor > stretch {
			stretch = sl.Factor
		}
	}
	worst := 1.0
	for _, st := range s.Stragglers {
		if st.Slowdown > worst {
			worst = st.Slowdown
		}
	}
	stretch *= worst * (1 + s.ComputeJitter)
	if s.StickFailProb > 0 {
		stretch *= freqRatio
	}
	return 3 * stretch
}

// Options configures one chaos run. Zero values select the defaults.
type Options struct {
	// Seed drives the whole schedule (GenSpec) and nothing else.
	Seed uint64
	// Procs / PPN shape the job (default 8 ranks, 4 per node).
	Procs, PPN int
	// Iters is how many resilient allreduces each rank runs back to back,
	// the communicator shrinking across iterations as ranks die (default 3).
	Iters int
	// Bytes per rank and call (default 32 KiB — above the power threshold,
	// so DVFS brackets are in play when a crash aborts a schedule).
	Bytes int64
	// Corrupt adds seeded data-corruption clauses to the schedule
	// (GenSpecCorrupt) and switches the workload to the ABFT-checked
	// resilient allreduce. The pass criterion then becomes the end-to-end
	// integrity invariant: every survivor either converges on the correct
	// sum or returns a typed integrity/failure error — a silently wrong
	// value anywhere fails the run.
	Corrupt bool
	// FailSlow switches the schedule to GenSpecSlow — gray failures only,
	// no crashes — and adds the fail-slow invariants: the full group must
	// complete with the correct sum, completion time must stay within
	// slowdownBound of a healthy twin run of the same shape, no rank
	// outside the schedule's slow/straggler set may be suspected (when
	// transition loss is off), and every core still ends at fmax / T0.
	// Takes precedence over Corrupt.
	FailSlow bool
}

func (o *Options) defaults() {
	if o.Procs == 0 {
		o.Procs = 8
	}
	if o.PPN == 0 {
		o.PPN = 4
	}
	if o.Iters == 0 {
		o.Iters = 3
	}
	if o.Bytes == 0 {
		o.Bytes = 32 << 10
	}
}

// Result carries what a successful chaos run produced, for replay
// comparison and debugging.
type Result struct {
	// Spec is the generated fault schedule.
	Spec *fault.Spec
	// FinalGroup is the global membership of the communicator the last
	// iteration completed on (identical across survivors, by invariant).
	FinalGroup []int
	// Sum is the agreed allreduce result of the last iteration.
	Sum float64
	// Metrics and Trace are the exported metrics/trace JSON; two runs with
	// the same options produce byte-identical copies.
	Metrics, Trace []byte
	// Elapsed is the simulated completion time of the run (0 when the
	// simulation aborted). Deterministic, so replays must agree on it;
	// fail-slow campaigns also bound it against a healthy twin.
	Elapsed simtime.Duration
	// Suspects is the detection layer's final suspect set (fail-slow
	// campaigns only; nil otherwise).
	Suspects []int
	// Err is the typed, group-uniform error outcome of a corrupted run
	// (nil when the workload completed): either every survivor returned a
	// classifiable integrity/failure error, or the simulation aborted on
	// a retry-budget exhaustion naming the undeliverable message. Both
	// count as a pass — the invariant is correct value XOR typed error,
	// never a silent wrong sum. FinalGroup and Sum are unset when Err is.
	Err error
}

// Run executes one seeded chaos scenario and checks every invariant,
// returning a descriptive error (including the spec, for reproduction) on
// the first violation.
func Run(o Options) (*Result, error) {
	o.defaults()
	cfg := mpi.DefaultConfig()
	cfg.NProcs = o.Procs
	cfg.PPN = o.PPN
	switch {
	case o.FailSlow:
		cfg.Fault = GenSpecSlow(o.Seed, o.Procs, cfg.Topo.Nodes)
	case o.Corrupt:
		cfg.Fault = GenSpecCorrupt(o.Seed, o.Procs, cfg.Topo.Nodes)
	default:
		cfg.Fault = GenSpec(o.Seed, o.Procs, cfg.Topo.Nodes)
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("chaos seed %d [%s]: %s", o.Seed, cfg.Fault, fmt.Sprintf(format, args...))
	}

	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return nil, fail("world: %v", err)
	}
	bus := obs.NewBus(w.Engine())
	w.AttachObs(bus)

	finished := make([]bool, o.Procs)
	sums := make([]float64, o.Procs)
	groups := make([][]int, o.Procs)
	bodyErrs := make([]error, o.Procs)
	energyDips := make([]string, o.Procs)

	w.Launch(func(r *mpi.Rank) {
		me := r.ID()
		c := mpi.CommWorld(r)
		last := w.Station().EnergyJoules()
		if last < 0 {
			energyDips[me] = fmt.Sprintf("negative energy %g at start", last)
		}
		for it := 0; it < o.Iters; it++ {
			var sum float64
			var fc *mpi.Comm
			var err error
			if o.Corrupt {
				sum, fc, err = collective.AllreduceSumFTChecked(c, o.Bytes, float64(me+1),
					collective.Options{Power: collective.FreqScaling})
			} else {
				sum, fc, err = collective.AllreduceSumFT(c, o.Bytes, float64(me+1),
					collective.Options{Power: collective.FreqScaling})
			}
			if err != nil {
				bodyErrs[me] = err
				return
			}
			c, sums[me] = fc, sum
			if e := w.Station().EnergyJoules(); e < last {
				energyDips[me] = fmt.Sprintf("energy fell %g -> %g after iteration %d", last, e, it)
			} else {
				last = e
			}
		}
		if o.FailSlow {
			// Job epilogue: a rank whose last scale-up write was lost
			// insists on the restore — bounded per call, repeated until
			// the write lands (loss probability is capped below 1).
			r.RecoverPower(64)
		}
		g := make([]int, c.Size())
		for i := range g {
			g[i] = c.Global(i)
		}
		groups[me] = g
		finished[me] = true
	})

	export := func(res *Result) (*Result, error) {
		var mb, tb bytes.Buffer
		if err := bus.WriteMetricsJSON(&mb); err != nil {
			return nil, fail("metrics export: %v", err)
		}
		if err := bus.WriteChromeTrace(&tb); err != nil {
			return nil, fail("trace export: %v", err)
		}
		res.Metrics, res.Trace = mb.Bytes(), tb.Bytes()
		return res, nil
	}

	elapsed, err := w.Run()
	if err != nil {
		if o.Corrupt && mpi.IsIntegrity(err) {
			// A message spent its whole retry budget on ICRC rejects: the
			// run aborts with a typed error naming the undeliverable
			// message instead of ever delivering bad data. Ranks may be
			// parked mid-iteration, so the completion invariants don't
			// apply — but the abort must still replay byte-identically.
			return export(&Result{Spec: cfg.Fault, Err: err})
		}
		return nil, fail("run: %v", err)
	}

	dead := map[int]bool{}
	for _, id := range w.DeadRanks() {
		dead[id] = true
	}
	typed := func(err error) bool { return mpi.IsFailure(err) || collective.IsIntegrity(err) }
	var group []int
	var firstErr error
	finishedN, erredN := 0, 0
	for me := 0; me < o.Procs; me++ {
		if dead[me] {
			continue
		}
		if energyDips[me] != "" {
			return nil, fail("rank %d: %s", me, energyDips[me])
		}
		if err := bodyErrs[me]; err != nil {
			// Under corruption a typed error outcome is legitimate: the
			// checked workload ran out of integrity retries. Anything
			// unclassifiable — or any error without corruption enabled —
			// still fails the run.
			if !o.Corrupt || !typed(err) {
				return nil, fail("rank %d: %v", me, err)
			}
			if firstErr == nil {
				firstErr = err
			}
			erredN++
			continue
		}
		if !finished[me] {
			return nil, fail("survivor %d never finished its iterations", me)
		}
		finishedN++
		if group == nil {
			group = groups[me]
		} else if fmt.Sprint(groups[me]) != fmt.Sprint(group) {
			return nil, fail("survivors disagree on the final group: %v vs %v", groups[me], group)
		}
	}
	if erredN > 0 && finishedN > 0 {
		// Round agreement makes error outcomes group-uniform: a mix of
		// finished and erred survivors means the group diverged.
		return nil, fail("survivors diverged: %d finished while %d returned errors", finishedN, erredN)
	}
	deadTrack := map[obs.Track]bool{}
	for id := range dead {
		deadTrack[w.Rank(id).ObsTrack()] = true
	}
	if open := bus.UnbalancedAsyncs(func(t obs.Track) bool { return deadTrack[t] }); len(open) != 0 {
		return nil, fail("unbalanced async spans on surviving tracks: %v", open)
	}
	if erredN > 0 {
		for me := 0; me < o.Procs; me++ {
			if dead[me] {
				continue
			}
			core := w.Rank(me).Core()
			if core.FreqGHz() != cfg.Power.FMaxGHz || core.Throttle() != 0 {
				return nil, fail("erred survivor %d left at %.2f GHz / T%d, want fmax / T0",
					me, core.FreqGHz(), core.Throttle())
			}
		}
		return export(&Result{Spec: cfg.Fault, Err: firstErr, Elapsed: elapsed})
	}
	if group == nil {
		return nil, fail("no survivors finished")
	}
	want := 0.0
	inGroup := map[int]bool{}
	for _, g := range group {
		want += float64(g + 1)
		inGroup[g] = true
	}
	for me := 0; me < o.Procs; me++ {
		if dead[me] {
			continue
		}
		if !inGroup[me] {
			return nil, fail("survivor %d missing from the agreed final group %v", me, group)
		}
		if sums[me] != want {
			return nil, fail("survivor %d sum %g, want %g over group %v", me, sums[me], want, group)
		}
		core := w.Rank(me).Core()
		if core.FreqGHz() != cfg.Power.FMaxGHz || core.Throttle() != 0 {
			return nil, fail("survivor %d left at %.2f GHz / T%d, want fmax / T0",
				me, core.FreqGHz(), core.Throttle())
		}
	}

	res := &Result{Spec: cfg.Fault, FinalGroup: group, Sum: want, Elapsed: elapsed}
	if o.FailSlow {
		if len(group) != o.Procs {
			return nil, fail("fail-slow run lost members: final group %v, want all %d ranks", group, o.Procs)
		}
		res.Suspects = w.SuspectedRanks()
		if cfg.Fault.StickFailProb == 0 {
			// Without transition loss the only legitimately slow ranks are
			// the scheduled ones; suspecting anyone else is a detector
			// false positive (e.g. wait time leaking into the lag EWMA).
			allowed := map[int]bool{}
			for _, id := range cfg.Fault.SlowRanks() {
				allowed[id] = true
			}
			for _, id := range cfg.Fault.StragglerRanks() {
				allowed[id] = true
			}
			for _, id := range res.Suspects {
				if !allowed[id] {
					return nil, fail("healthy rank %d suspected (lag %.3f); only %v are degraded",
						id, w.ComputeLag(id), cfg.Fault.SlowRanks())
				}
			}
		}
		base, herr := healthyElapsed(o)
		if herr != nil {
			return nil, fail("healthy twin: %v", herr)
		}
		bound := slowdownBound(cfg.Fault, cfg.Power.FMaxGHz/cfg.Power.FMinGHz)
		limit := simtime.Duration(float64(base)*bound) + simtime.Millisecond
		if elapsed > limit {
			return nil, fail("bounded slowdown violated: %v > %v (healthy %v × %.1f + 1ms)",
				elapsed, limit, base, bound)
		}
	}
	return export(res)
}

// healthyElapsed runs the same job shape with no faults attached and
// returns its completion time — the baseline of the bounded-slowdown
// invariant. Detection stays disarmed, which is itself part of the
// contract: the healthy twin exercises the historical zero-overhead path.
func healthyElapsed(o Options) (simtime.Duration, error) {
	cfg := mpi.DefaultConfig()
	cfg.NProcs = o.Procs
	cfg.PPN = o.PPN
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, err
	}
	w.Launch(func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		for it := 0; it < o.Iters; it++ {
			_, fc, err := collective.AllreduceSumFT(c, o.Bytes, float64(r.ID()+1),
				collective.Options{Power: collective.FreqScaling})
			if err != nil {
				panic(err)
			}
			c = fc
		}
	})
	return w.Run()
}
