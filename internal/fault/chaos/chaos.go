// Package chaos is the crash-fuzzing harness: it turns a single uint64
// seed into a randomized fault schedule — crash-stop rank failures, link
// degradation/down windows, stragglers with jitter, sticky power
// transitions — runs a fault-tolerant collective workload under it, and
// checks the invariants that must hold no matter what the schedule did:
//
//   - the simulation terminates (no deadlock, no run error),
//   - every survivor converges on the same final group and on the sum of
//     exactly that group's contributions,
//   - every survivor core ends at fmax / T0,
//   - no surviving rank leaves an unbalanced async span on the timeline
//     (dead ranks' half-open spans are tombstones and are excused),
//   - cluster energy accounting is non-negative and monotone.
//
// Everything is deterministic: the same seed reproduces the same spec,
// the same simulation, and byte-identical metric and trace exports, so
// any fuzzer-found counterexample replays exactly.
package chaos

import (
	"bytes"
	"fmt"

	"pacc/internal/collective"
	"pacc/internal/fault"
	"pacc/internal/mpi"
	"pacc/internal/obs"
	"pacc/internal/simtime"
)

// rng is splitmix64 — the same generator the injector's decision hashes
// build on, chained here as a stream.
type rng struct{ x uint64 }

func (r *rng) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) dur(lo, hi simtime.Duration) simtime.Duration {
	return lo + simtime.Duration(r.next()%uint64(hi-lo+1))
}

const us = simtime.Microsecond

// GenSpec derives a randomized fault spec from one seed. At most half the
// job crashes, so a survivor group always exists; message loss stays off
// because a retry-budget exhaustion aborts the run by design and would
// mask the invariants this harness is after.
func GenSpec(seed uint64, procs, nodes int) *fault.Spec {
	r := &rng{x: seed}
	s := &fault.Spec{Seed: seed, RetryBudget: fault.DefaultRetryBudget}

	for n := r.intn(procs/2 + 1); n > 0; n-- {
		s.Crashes = append(s.Crashes, fault.Crash{
			Rank: r.intn(procs),
			At:   r.dur(5*us, 400*us),
		})
	}
	s.DetectTimeout = r.dur(20*us, 150*us)

	for n := r.intn(3); n > 0; n-- {
		dir := "up"
		if r.intn(2) == 1 {
			dir = "down"
		}
		s.LinkFaults = append(s.LinkFaults, fault.LinkFault{
			Link:     fmt.Sprintf("node%d-%s", r.intn(nodes), dir),
			Factor:   []float64{0, 0.25, 0.5}[r.intn(3)],
			Start:    r.dur(0, 200*us),
			Duration: r.dur(50*us, 400*us),
		})
	}

	if r.intn(2) == 1 {
		s.Stragglers = append(s.Stragglers, fault.Straggler{
			Rank:     r.intn(procs),
			Slowdown: 1 + 2*r.f64(),
		})
		s.ComputeJitter = 0.3 * r.f64()
	}

	if r.intn(2) == 1 {
		s.PStateDelay = r.dur(0, 30*us)
		s.TStateDelay = r.dur(0, 30*us)
		s.StickProb = 0.5 * r.f64()
	}

	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("chaos: generated invalid spec from seed %d: %v", seed, err))
	}
	return s
}

// Options configures one chaos run. Zero values select the defaults.
type Options struct {
	// Seed drives the whole schedule (GenSpec) and nothing else.
	Seed uint64
	// Procs / PPN shape the job (default 8 ranks, 4 per node).
	Procs, PPN int
	// Iters is how many resilient allreduces each rank runs back to back,
	// the communicator shrinking across iterations as ranks die (default 3).
	Iters int
	// Bytes per rank and call (default 32 KiB — above the power threshold,
	// so DVFS brackets are in play when a crash aborts a schedule).
	Bytes int64
}

func (o *Options) defaults() {
	if o.Procs == 0 {
		o.Procs = 8
	}
	if o.PPN == 0 {
		o.PPN = 4
	}
	if o.Iters == 0 {
		o.Iters = 3
	}
	if o.Bytes == 0 {
		o.Bytes = 32 << 10
	}
}

// Result carries what a successful chaos run produced, for replay
// comparison and debugging.
type Result struct {
	// Spec is the generated fault schedule.
	Spec *fault.Spec
	// FinalGroup is the global membership of the communicator the last
	// iteration completed on (identical across survivors, by invariant).
	FinalGroup []int
	// Sum is the agreed allreduce result of the last iteration.
	Sum float64
	// Metrics and Trace are the exported metrics/trace JSON; two runs with
	// the same options produce byte-identical copies.
	Metrics, Trace []byte
}

// Run executes one seeded chaos scenario and checks every invariant,
// returning a descriptive error (including the spec, for reproduction) on
// the first violation.
func Run(o Options) (*Result, error) {
	o.defaults()
	cfg := mpi.DefaultConfig()
	cfg.NProcs = o.Procs
	cfg.PPN = o.PPN
	cfg.Fault = GenSpec(o.Seed, o.Procs, cfg.Topo.Nodes)
	fail := func(format string, args ...any) error {
		return fmt.Errorf("chaos seed %d [%s]: %s", o.Seed, cfg.Fault, fmt.Sprintf(format, args...))
	}

	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return nil, fail("world: %v", err)
	}
	bus := obs.NewBus(w.Engine())
	w.AttachObs(bus)

	finished := make([]bool, o.Procs)
	sums := make([]float64, o.Procs)
	groups := make([][]int, o.Procs)
	bodyErrs := make([]error, o.Procs)
	energyDips := make([]string, o.Procs)

	w.Launch(func(r *mpi.Rank) {
		me := r.ID()
		c := mpi.CommWorld(r)
		last := w.Station().EnergyJoules()
		if last < 0 {
			energyDips[me] = fmt.Sprintf("negative energy %g at start", last)
		}
		for it := 0; it < o.Iters; it++ {
			sum, fc, err := collective.AllreduceSumFT(c, o.Bytes, float64(me+1),
				collective.Options{Power: collective.FreqScaling})
			if err != nil {
				bodyErrs[me] = err
				return
			}
			c, sums[me] = fc, sum
			if e := w.Station().EnergyJoules(); e < last {
				energyDips[me] = fmt.Sprintf("energy fell %g -> %g after iteration %d", last, e, it)
			} else {
				last = e
			}
		}
		g := make([]int, c.Size())
		for i := range g {
			g[i] = c.Global(i)
		}
		groups[me] = g
		finished[me] = true
	})

	if _, err := w.Run(); err != nil {
		return nil, fail("run: %v", err)
	}

	dead := map[int]bool{}
	for _, id := range w.DeadRanks() {
		dead[id] = true
	}
	var group []int
	for me := 0; me < o.Procs; me++ {
		if dead[me] {
			continue
		}
		if bodyErrs[me] != nil {
			return nil, fail("rank %d: %v", me, bodyErrs[me])
		}
		if !finished[me] {
			return nil, fail("survivor %d never finished its iterations", me)
		}
		if energyDips[me] != "" {
			return nil, fail("rank %d: %s", me, energyDips[me])
		}
		if group == nil {
			group = groups[me]
		} else if fmt.Sprint(groups[me]) != fmt.Sprint(group) {
			return nil, fail("survivors disagree on the final group: %v vs %v", groups[me], group)
		}
	}
	if group == nil {
		return nil, fail("no survivors finished")
	}
	want := 0.0
	inGroup := map[int]bool{}
	for _, g := range group {
		want += float64(g + 1)
		inGroup[g] = true
	}
	for me := 0; me < o.Procs; me++ {
		if dead[me] {
			continue
		}
		if !inGroup[me] {
			return nil, fail("survivor %d missing from the agreed final group %v", me, group)
		}
		if sums[me] != want {
			return nil, fail("survivor %d sum %g, want %g over group %v", me, sums[me], want, group)
		}
		core := w.Rank(me).Core()
		if core.FreqGHz() != cfg.Power.FMaxGHz || core.Throttle() != 0 {
			return nil, fail("survivor %d left at %.2f GHz / T%d, want fmax / T0",
				me, core.FreqGHz(), core.Throttle())
		}
	}

	deadTrack := map[obs.Track]bool{}
	for id := range dead {
		deadTrack[w.Rank(id).ObsTrack()] = true
	}
	if open := bus.UnbalancedAsyncs(func(t obs.Track) bool { return deadTrack[t] }); len(open) != 0 {
		return nil, fail("unbalanced async spans on surviving tracks: %v", open)
	}

	res := &Result{Spec: cfg.Fault, FinalGroup: group, Sum: want}
	var mb, tb bytes.Buffer
	if err := bus.WriteMetricsJSON(&mb); err != nil {
		return nil, fail("metrics export: %v", err)
	}
	if err := bus.WriteChromeTrace(&tb); err != nil {
		return nil, fail("trace export: %v", err)
	}
	res.Metrics, res.Trace = mb.Bytes(), tb.Bytes()
	return res, nil
}
