package fault

import (
	"reflect"
	"strings"
	"testing"

	"pacc/internal/simtime"
)

func TestParseFullSpec(t *testing.T) {
	s, err := Parse("seed=42;msgloss=0.02;ctsloss=0.5;" +
		"degrade=node0-up@0.25:2ms+10ms;linkdown=node1-up:5ms+1ms;" +
		"straggler=3@1.5;jitter=0.2;pdelay=50us;tdelay=20us;stick=0.1;" +
		"retry=5;acktimeout=200us")
	if err != nil {
		t.Fatal(err)
	}
	want := &Spec{
		Seed:      42,
		EagerLoss: 0.02, RTSLoss: 0.02, CTSLoss: 0.5, DataLoss: 0.02,
		LinkFaults: []LinkFault{
			{Link: "node0-up", Factor: 0.25, Start: 2 * simtime.Millisecond, Duration: 10 * simtime.Millisecond},
			{Link: "node1-up", Factor: 0, Start: 5 * simtime.Millisecond, Duration: simtime.Millisecond},
		},
		Stragglers:    []Straggler{{Rank: 3, Slowdown: 1.5}},
		ComputeJitter: 0.2,
		PStateDelay:   50 * simtime.Microsecond,
		TStateDelay:   20 * simtime.Microsecond,
		StickProb:     0.1,
		RetryBudget:   5,
		AckTimeout:    200 * simtime.Microsecond,
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("parsed spec\n%+v\nwant\n%+v", s, want)
	}
}

func TestParseDefaults(t *testing.T) {
	s, err := Parse("msgloss=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 1 {
		t.Errorf("default seed = %d, want 1", s.Seed)
	}
	if s.RetryBudget != DefaultRetryBudget {
		t.Errorf("default retry budget = %d, want %d", s.RetryBudget, DefaultRetryBudget)
	}
	if s.AckTimeout != DefaultAckTimeout {
		t.Errorf("default ack timeout = %v, want %v", s.AckTimeout, DefaultAckTimeout)
	}
	if empty, err := Parse(""); err != nil || empty.Active() {
		t.Errorf("empty spec: err=%v active=%v", err, empty.Active())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"nonsense",                   // not key=value
		"warp=9",                     // unknown key
		"seed=abc",                   // bad integer
		"msgloss=high",               // bad float
		"msgloss=1.5",                // probability out of range
		"msgloss=-0.1",               // negative probability
		"degrade=node0-up@0.5",       // missing window
		"degrade=node0-up:1ms+1ms",   // missing factor
		"degrade=node0-up@1.0:0+1ms", // factor not below 1
		"degrade=@0.5:0+1ms",         // empty link name
		"linkdown=node0-up:1ms",      // window not START+DUR
		"linkdown=node0-up:1ms+0s",   // zero duration
		"linkdown=node0-up:-1ms+1ms", // negative start
		"straggler=3",                // missing slowdown
		"straggler=x@2",              // bad rank
		"straggler=-1@2",             // negative rank
		"straggler=3@0.5",            // slowdown below 1
		"jitter=1.0",                 // jitter must stay below 1
		"pdelay=-5us",                // negative delay
		"retry=-1",                   // negative budget
		"msgloss=0.5;retry=0",        // loss with zero retry budget
		"acktimeout=oops",            // bad duration
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestValidateNil(t *testing.T) {
	var s *Spec
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Active() {
		t.Error("nil spec active")
	}
	if s.String() != "" {
		t.Error("nil spec should render empty")
	}
}

func TestStringRoundTrip(t *testing.T) {
	specs := []string{
		"seed=7;eagerloss=0.1;degrade=node2-up@0.5:1ms+2ms;straggler=0@2;retry=3;acktimeout=50us",
		"seed=1;linkdown=rack0-up:100us+1ms;pdelay=10us;stick=0.25;retry=7;acktimeout=100us",
	}
	for _, src := range specs {
		s, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", src, s.String(), err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Errorf("round trip of %q changed the spec:\n%+v\n%+v", src, s, back)
		}
	}
}

func TestActive(t *testing.T) {
	if (&Spec{Seed: 9, RetryBudget: 7, AckTimeout: DefaultAckTimeout}).Active() {
		t.Error("spec with only seed/retry/timeout should be inactive")
	}
	active := []Spec{
		{EagerLoss: 0.1}, {RTSLoss: 0.1}, {CTSLoss: 0.1}, {DataLoss: 0.1},
		{LinkFaults: []LinkFault{{Link: "node0-up", Start: 0, Duration: 1}}},
		{Stragglers: []Straggler{{Rank: 0, Slowdown: 2}}},
		{PStateDelay: 1}, {TStateDelay: 1},
	}
	for i, s := range active {
		if !s.Active() {
			t.Errorf("spec %d should be active", i)
		}
	}
}

// TestDropDeterminism: drop decisions are a pure function of (seed, event
// identity) — replaying the same queries yields the same answers, in any
// order, and a different seed decides differently somewhere.
func TestDropDeterminism(t *testing.T) {
	spec := &Spec{Seed: 42, EagerLoss: 0.3, CTSLoss: 0.5, RetryBudget: 7}
	a, b := NewInjector(spec), NewInjector(spec)
	type q struct {
		class    MsgClass
		src, dst int
		seq      uint64
		attempt  int
	}
	var queries []q
	for seq := uint64(0); seq < 50; seq++ {
		queries = append(queries, q{Eager, 0, 1, seq, 0}, q{CTS, 3, 2, seq, 1})
	}
	var got []bool
	for _, x := range queries {
		got = append(got, a.Drop(x.class, x.src, x.dst, x.seq, x.attempt))
	}
	// Replay reversed on a fresh injector: call order must not matter.
	for i := len(queries) - 1; i >= 0; i-- {
		x := queries[i]
		if b.Drop(x.class, x.src, x.dst, x.seq, x.attempt) != got[i] {
			t.Fatalf("query %d decided differently on replay", i)
		}
	}
	other := NewInjector(&Spec{Seed: 43, EagerLoss: 0.3, CTSLoss: 0.5, RetryBudget: 7})
	same := true
	for i, x := range queries {
		if other.Drop(x.class, x.src, x.dst, x.seq, x.attempt) != got[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seed 43 made the exact same 100 decisions as seed 42")
	}
}

// TestDropAttemptsIndependent: retransmissions flip their own coin, so a
// 50% loss stream must both drop and deliver across attempts.
func TestDropAttemptsIndependent(t *testing.T) {
	in := NewInjector(&Spec{Seed: 1, DataLoss: 0.5, RetryBudget: 7})
	drops, keeps := 0, 0
	for attempt := 0; attempt < 64; attempt++ {
		if in.Drop(Data, 0, 1, 1, attempt) {
			drops++
		} else {
			keeps++
		}
	}
	if drops == 0 || keeps == 0 {
		t.Fatalf("64 attempts at 50%% loss: %d drops, %d deliveries", drops, keeps)
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Error("nil injector enabled")
	}
	if in.Drop(Eager, 0, 1, 1, 0) {
		t.Error("nil injector dropped a message")
	}
	if s := in.ComputeScale(0); s != 1 {
		t.Errorf("nil ComputeScale = %g", s)
	}
	if in.RetryBudget() != DefaultRetryBudget {
		t.Errorf("nil RetryBudget = %d", in.RetryBudget())
	}
	if in.AckTimeout() != DefaultAckTimeout {
		t.Errorf("nil AckTimeout = %v", in.AckTimeout())
	}
	if in.PStateExtra(0) != 0 || in.TStateExtra(0) != 0 {
		t.Error("nil injector added transition delay")
	}
	if !reflect.DeepEqual(in.Spec(), Spec{}) {
		t.Error("nil Spec() not zero")
	}
	if NewInjector(nil) != nil {
		t.Error("NewInjector(nil) should be nil")
	}
}

// TestComputeScaleExactOne: healthy ranks must see exactly 1 (no float
// perturbation), stragglers their slowdown; jitter keeps the scale >= 1
// and wobbles deterministically per call.
func TestComputeScale(t *testing.T) {
	in := NewInjector(&Spec{Seed: 5, Stragglers: []Straggler{{Rank: 2, Slowdown: 2}}})
	if s := in.ComputeScale(0); s != 1 {
		t.Errorf("healthy rank scale = %g, want exactly 1", s)
	}
	if s := in.ComputeScale(2); s != 2 {
		t.Errorf("straggler scale = %g, want 2", s)
	}
	jit := &Spec{Seed: 5, Stragglers: []Straggler{{Rank: 2, Slowdown: 2}}, ComputeJitter: 0.3}
	a, b := NewInjector(jit), NewInjector(jit)
	varied := false
	prev := 0.0
	for i := 0; i < 16; i++ {
		sa, sb := a.ComputeScale(2), b.ComputeScale(2)
		if sa != sb {
			t.Fatalf("call %d: jittered scale %g vs %g across identical injectors", i, sa, sb)
		}
		if sa < 1 {
			t.Fatalf("call %d: scale %g below 1", i, sa)
		}
		if i > 0 && sa != prev {
			varied = true
		}
		prev = sa
	}
	if !varied {
		t.Error("jitter never varied across 16 calls")
	}
}

func TestBackoffExponential(t *testing.T) {
	in := NewInjector(&Spec{Seed: 1, AckTimeout: 100 * simtime.Microsecond})
	for k := 0; k < 4; k++ {
		want := 100 * simtime.Microsecond << uint(k)
		if got := in.Backoff(k); got != want {
			t.Errorf("Backoff(%d) = %v, want %v", k, got, want)
		}
	}
	if in.Backoff(40) != in.Backoff(31) {
		t.Error("backoff shift not capped")
	}
}

func TestTransitionExtraStick(t *testing.T) {
	base := 10 * simtime.Microsecond
	in := NewInjector(&Spec{Seed: 3, PStateDelay: base, StickProb: 0.5})
	stuck, normal := 0, 0
	for i := 0; i < 64; i++ {
		switch in.PStateExtra(1) {
		case base:
			normal++
		case base * stickFactor:
			stuck++
		default:
			t.Fatal("PStateExtra outside {base, base*stickFactor}")
		}
	}
	if stuck == 0 || normal == 0 {
		t.Fatalf("64 transitions at 50%% stick: %d stuck, %d normal", stuck, normal)
	}
}

func TestStragglerRanks(t *testing.T) {
	s := &Spec{Stragglers: []Straggler{{Rank: 5, Slowdown: 2}, {Rank: 1, Slowdown: 3}, {Rank: 5, Slowdown: 4}}}
	got := s.StragglerRanks()
	if !reflect.DeepEqual(got, []int{1, 5}) {
		t.Fatalf("StragglerRanks = %v", got)
	}
}

func TestMsgClassString(t *testing.T) {
	for class, want := range map[MsgClass]string{Eager: "eager", RTS: "rts", CTS: "cts", Data: "data"} {
		if class.String() != want {
			t.Errorf("%d.String() = %q", int(class), class.String())
		}
	}
	if !strings.Contains(MsgClass(9).String(), "9") {
		t.Error("unknown class should format its value")
	}
}
