package analyze

import (
	"encoding/json"
	"io"
	"strings"
)

// annotatedEvent extends the Chrome event shape with the cname color
// field chrome://tracing honors.
type annotatedEvent struct {
	Event
	CName string `json:"cname,omitempty"`
}

// WriteAnnotatedTrace re-emits the model's event stream as Chrome trace
// JSON with the analysis folded in: spans on a critical path gain
// args.crit=true and a red color, and every wait span is annotated with
// its slack in µs — so a timeline view answers "which rank bounds
// completion and where could the others have slowed down" at a glance.
func (a *Analysis) WriteAnnotatedTrace(w io.Writer) error {
	out := make([]annotatedEvent, 0, len(a.model.Events))
	for i, e := range a.model.Events {
		ae := annotatedEvent{Event: e}
		crit := a.crit[i]
		wait := e.Ph == "X" && strings.HasPrefix(e.Name, "wait ")
		if crit || wait {
			// Args maps are shared with the source stream; copy before
			// annotating.
			args := make(map[string]any, len(e.Args)+2)
			for k, v := range e.Args {
				args[k] = v
			}
			if crit {
				args["crit"] = true
				ae.CName = "terrible" // chrome://tracing red
			}
			if wait {
				args["slack_us"] = round3(e.Dur)
				if !crit {
					ae.CName = "good" // green: harvestable idle time
				}
			}
			ae.Args = args
		}
		out = append(out, ae)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
