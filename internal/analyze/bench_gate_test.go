package analyze_test

import (
	"encoding/json"
	"os"
	"runtime"
	"syscall"
	"testing"
	"time"

	"pacc"
)

// cpuTime returns the process's accumulated user+system CPU time. Unlike
// wall clock it is immune to scheduler preemption and hypervisor steal,
// which on shared CI machines dwarf the ~1% effect being measured.
func cpuTime(t *testing.T) time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		t.Fatal(err)
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// TestAnalyticsOverheadBudget measures the cost of one live streaming
// analytics subscriber on the 8-node × 8-rank 1 MiB allreduce — obs
// attached in both arms, analytics collector attached in one — and
// enforces a per-event budget on process CPU time: the subscriber path
// must stay a filter branch and one append per event, and that shape
// costs a fixed handful of nanoseconds per emitted event. The budget is
// absolute rather than a percentage of the run because the engine's
// speed is a moving target — when the simulation core got ~3× faster,
// an unchanged ~15ns/event subscriber tripped a 2% ratio gate purely by
// denominator shrinkage. The ratio is still recorded informationally.
// Run via scripts/bench_guard.sh: skipped unless PACC_BENCH_OUT names
// the JSON file to write.
func TestAnalyticsOverheadBudget(t *testing.T) {
	out := os.Getenv("PACC_BENCH_OUT")
	if out == "" {
		t.Skip("set PACC_BENCH_OUT=<path> to run the analytics overhead gate")
	}
	// Measured ~115ns/event on a shared 2.1 GHz Xeon vCPU (struct copy,
	// dynamic call, filter, append, plus the GC pressure of the retained
	// events); 250ns leaves ~2× headroom for noisier machines while
	// still flagging any change that adds real work — an allocation, a
	// map touch, a second dynamic call — to the per-event path.
	const budgetNs = 250.0

	type sample struct {
		cpu, wall time.Duration
		events    int
	}
	run := func(subscriber bool) sample {
		cfg := pacc.DefaultConfig() // 8 nodes × 8 ranks
		w, err := pacc.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sess := pacc.AttachObs(w)
		if subscriber {
			sess.EnableAnalytics()
		}
		w.Launch(func(r *pacc.Rank) {
			c := pacc.CommWorld(r)
			for i := 0; i < 10; i++ {
				if err := pacc.Allreduce(c, 1<<20, pacc.CollectiveOptions{}); err != nil {
					t.Errorf("rank %d: %v", r.ID(), err)
				}
			}
		})
		runtime.GC()
		cpu0, wall0 := cpuTime(t), time.Now()
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return sample{
			cpu:    cpuTime(t) - cpu0,
			wall:   time.Since(wall0),
			events: sess.Bus().Events(),
		}
	}

	// Interleave the arms and keep each arm's fastest run: the floor of a
	// deterministic workload is its true cost, and min-of-N sheds the
	// one-sided noise (GC pauses, migrations) that remains in CPU time.
	best := map[bool]sample{}
	for i := 0; i < 10; i++ {
		for _, sub := range []bool{false, true} {
			s := run(sub)
			if b, ok := best[sub]; !ok || s.cpu < b.cpu {
				best[sub] = s
			} else if s.wall < b.wall {
				b.wall = s.wall
				best[sub] = b
			}
		}
	}
	overhead := float64(best[true].cpu)/float64(best[false].cpu) - 1
	// Event counts are deterministic and subscribers never alter the
	// recorded state, so both arms emit the same stream.
	if best[true].events != best[false].events {
		t.Fatalf("arms emitted different event counts: %d with subscriber, %d without",
			best[true].events, best[false].events)
	}
	perEventNs := float64(best[true].cpu-best[false].cpu) / float64(best[true].events)

	doc := map[string]any{
		"benchmark":           "allreduce, 8 nodes x 8 ranks/node, 1 MiB x10, obs attached",
		"detached_cpu_s":      best[false].cpu.Seconds(),
		"subscriber_cpu_s":    best[true].cpu.Seconds(),
		"detached_wall_s":     best[false].wall.Seconds(),
		"subscriber_wall_s":   best[true].wall.Seconds(),
		"events":              best[true].events,
		"subscriber_overhead": overhead,
		"per_event_ns":        perEventNs,
		"budget_ns":           budgetNs,
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("analytics overhead: detached %v cpu, subscriber %v cpu over %d events = %.1fns/event (budget %.0fns, ratio %.4f)",
		best[false].cpu, best[true].cpu, best[true].events, perEventNs, budgetNs, overhead)
	if perEventNs > budgetNs {
		t.Errorf("live-subscriber cost %.1fns/event exceeds the %.0fns budget", perEventNs, budgetNs)
	}
}
