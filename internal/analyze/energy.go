package analyze

import "sort"

// PhaseEnergy is the energy drawn during one named algorithm phase,
// split by the power state it was drawn in.
type PhaseEnergy struct {
	Phase   string        `json:"phase"`
	TotalJ  float64       `json:"total_j"`
	ByState []StateEnergy `json:"by_state"`
}

// StateEnergy is one (power state, joules) entry of a phase's split.
type StateEnergy struct {
	State  string  `json:"state"`
	Joules float64 `json:"joules"`
}

// OtherPhase labels core time outside any recorded phase span (job
// startup, application compute, idle tails).
const OtherPhase = "(other)"

// energyByPhase intersects every core's power-state residency spans
// with the phase windows of the rank bound to that core ("bind"
// instants tie the two timelines together) and integrates watts over
// each piece: energy attribution by phase × power-state. Cores with no
// bound rank are attributed wholly to OtherPhase.
func (m *Model) energyByPhase() ([]PhaseEnergy, float64) {
	// rank → core comes from bind events; invert over sorted ranks so a
	// core contended by two ranks (not a configuration the simulator
	// produces) resolves deterministically to the lowest.
	rankOfCore := map[int]int{}
	for _, r := range m.rankIDs() {
		rt := m.ranks[r]
		if rt.core >= 0 {
			if _, taken := rankOfCore[rt.core]; !taken {
				rankOfCore[rt.core] = r
			}
		}
	}
	acc := map[string]map[string]float64{} // phase → state → joules
	add := func(phase, state string, j float64) {
		if j <= 0 {
			return
		}
		s := acc[phase]
		if s == nil {
			s = map[string]float64{}
			acc[phase] = s
		}
		s[state] += j
	}

	cores := make([]int, 0, len(m.cores))
	for c := range m.cores {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, core := range cores {
		cs := m.cores[core]
		var phases []phaseSpan
		if r, ok := rankOfCore[core]; ok {
			phases = m.ranks[r].phases
		}
		for _, sp := range cs.spans {
			for _, piece := range splitByPhases(sp, phases) {
				j := sp.watts * (piece.end - piece.start) / 1e6
				add(piece.name, sp.state, j)
			}
		}
	}

	phases := make([]string, 0, len(acc))
	for p := range acc {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	out := make([]PhaseEnergy, 0, len(phases))
	total := 0.0
	for _, p := range phases {
		states := make([]string, 0, len(acc[p]))
		for s := range acc[p] {
			states = append(states, s)
		}
		sort.Strings(states)
		pe := PhaseEnergy{Phase: p}
		for _, s := range states {
			j := roundJ(acc[p][s])
			pe.ByState = append(pe.ByState, StateEnergy{State: s, Joules: j})
			pe.TotalJ += j
		}
		pe.TotalJ = roundJ(pe.TotalJ)
		total += pe.TotalJ
		out = append(out, pe)
	}
	return out, roundJ(total)
}

// splitByPhases cuts one core span at every phase boundary and labels
// each piece with the innermost covering phase (latest start wins;
// shortest span breaks ties), or OtherPhase when uncovered.
func splitByPhases(sp coreSpan, phases []phaseSpan) []phaseSpan {
	cuts := []float64{sp.start, sp.end}
	for _, ph := range phases {
		if ph.start > sp.start && ph.start < sp.end {
			cuts = append(cuts, ph.start)
		}
		if ph.end > sp.start && ph.end < sp.end {
			cuts = append(cuts, ph.end)
		}
	}
	sort.Float64s(cuts)
	var out []phaseSpan
	for i := 1; i < len(cuts); i++ {
		a, b := cuts[i-1], cuts[i]
		if b <= a {
			continue
		}
		mid := a + (b-a)/2
		name := OtherPhase
		bestStart, bestEnd := -1.0, -1.0
		for _, ph := range phases {
			if ph.start <= mid && mid < ph.end {
				if ph.start > bestStart || (ph.start == bestStart && ph.end < bestEnd) {
					bestStart, bestEnd, name = ph.start, ph.end, ph.name
				}
			}
		}
		out = append(out, phaseSpan{name: name, start: a, end: b})
	}
	return out
}
