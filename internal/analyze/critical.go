package analyze

import "sort"

// critWalk is one backward critical-path reconstruction over a time
// window: starting from the last-finishing rank, walk backward through
// that rank's waits; each wait whose dependency edge names a peer hops
// the walk to the peer at the time the dependency was satisfied. The
// time between consecutive waits is critical work attributed to the
// rank executing it, so the per-rank shares say which ranks bound
// completion — the "who do we wait for" question the paper's throttling
// schedule answers statically and this engine answers empirically.
type critWalk struct {
	// workUs is critical work attributed per rank, µs.
	workUs map[int]float64
	// waitIdx collects Model.Events indices of waits on the path.
	waitIdx []int
	// opIdx collects the op spans of ranks on the path (set by callers).
	opIdx []int
}

// walkCritical runs the backward walk over [startUs, endUs] beginning
// at rank `last` at time endUs. Waits are consulted per rank in
// end-time order.
func (m *Model) walkCritical(last int, startUs, endUs float64) critWalk {
	cw := critWalk{workUs: map[int]float64{}}
	byEnd := map[int][]waitSpan{}
	for r, rt := range m.ranks {
		ws := make([]waitSpan, len(rt.waits))
		copy(ws, rt.waits)
		sort.SliceStable(ws, func(i, j int) bool {
			if ws[i].end != ws[j].end {
				return ws[i].end < ws[j].end
			}
			return ws[i].start < ws[j].start
		})
		byEnd[r] = ws
	}
	type visit struct {
		rank int
		t    float64
	}
	seen := map[visit]bool{}
	cur, t := last, endUs
	// The walk is bounded: every step either moves t strictly earlier or
	// hops to a (rank, time) pair not yet visited.
	for steps := 0; steps < 4*len(m.ranks)*(totalWaits(m)+1)+16; steps++ {
		v := visit{cur, t}
		if seen[v] || t <= startUs {
			break
		}
		seen[v] = true
		ws := byEnd[cur]
		// Latest wait of cur ending at or before t (and after the window
		// start: anything earlier is outside the call being analyzed).
		i := sort.Search(len(ws), func(i int) bool { return ws[i].end > t }) - 1
		if i < 0 || ws[i].end <= startUs {
			cw.workUs[cur] += t - startUs
			break
		}
		w := ws[i]
		cw.workUs[cur] += t - w.end
		cw.waitIdx = append(cw.waitIdx, w.idx)
		if w.peer >= 0 && m.ranks[w.peer] != nil && w.peer != cur {
			// The dependency was satisfied by the peer at the moment the
			// wait ended: continue the path on the peer's timeline.
			cur, t = w.peer, w.end
			continue
		}
		// No dependency edge (e.g. an agreement wait): the wait itself is
		// on the path; continue on the same rank before it began.
		t = w.start
	}
	return cw
}

func totalWaits(m *Model) int {
	n := 0
	for _, rt := range m.ranks {
		n += len(rt.waits)
	}
	return n
}

// slackIn sums a rank's wait time overlapping [startUs, endUs], total
// and split into the portions harvestable by DVFS or throttling: a wait
// is harvestable under a mechanism only if it is long enough to pay the
// round-trip switch cost (2× the transition latency), and only the
// remainder beyond that cost counts.
func (m *Model) slackIn(rank int, startUs, endUs, odvfsUs, othrottleUs float64) (total, dvfs, throttle float64) {
	rt := m.ranks[rank]
	if rt == nil {
		return 0, 0, 0
	}
	for _, w := range rt.waits {
		lo, hi := w.start, w.end
		if lo < startUs {
			lo = startUs
		}
		if hi > endUs {
			hi = endUs
		}
		d := hi - lo
		if d <= 0 {
			continue
		}
		total += d
		if c := 2 * odvfsUs; d > c {
			dvfs += d - c
		}
		if c := 2 * othrottleUs; d > c {
			throttle += d - c
		}
	}
	return total, dvfs, throttle
}
