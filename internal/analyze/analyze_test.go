package analyze_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pacc"
	"pacc/internal/analyze"
	"pacc/internal/simtime"
)

// cfg8 is an 8-node × 1-rank layout: the world ring runs over the
// network, one rank per node.
func cfg8() pacc.Config {
	cfg := pacc.DefaultConfig()
	cfg.NProcs = 8
	cfg.PPN = 1
	return cfg
}

// runRingAllgather runs one ring allgather over cfg with every rank
// computing for preUs µs first, and returns the session.
func runRingAllgather(t *testing.T, cfg pacc.Config, preUs float64, streaming bool) *pacc.ObsSession {
	t.Helper()
	w, err := pacc.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := pacc.AttachObs(w)
	if streaming {
		sess.EnableAnalytics()
	}
	w.Launch(func(r *pacc.Rank) {
		r.Compute(simtime.DurationOf(preUs / 1e6))
		c := pacc.CommWorld(r)
		if err := pacc.AllgatherRing(c, 64<<10, pacc.CollectiveOptions{}); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return sess
}

// TestStragglerCriticalPath is the acceptance scenario: an 8-rank ring
// allgather with one injected straggler. The analysis must identify the
// straggler as the critical-path rank and report slack at least the
// straggler's delay on every other rank.
func TestStragglerCriticalPath(t *testing.T) {
	const (
		straggler = 3
		slowdown  = 4.0
		preUs     = 200.0
	)
	cfg := cfg8()
	cfg.Fault = &pacc.FaultSpec{
		Seed:       1,
		Stragglers: []pacc.Straggler{{Rank: straggler, Slowdown: slowdown}},
	}
	sess := runRingAllgather(t, cfg, preUs, true)
	rep := sess.Report()

	found := false
	for _, c := range rep.Collectives {
		if c.Op != "allgather_ring" {
			continue
		}
		found = true
		if c.Calls != 1 {
			t.Fatalf("calls = %d, want 1", c.Calls)
		}
		if c.CriticalRank != straggler {
			t.Errorf("critical rank = %d, want straggler %d\ncritical shares: %+v",
				c.CriticalRank, straggler, c.Critical)
		}
		// The straggler enters the collective (slowdown-1)×pre later than
		// everyone else; the ring cannot complete without its block, so
		// every other rank idles at least that long.
		delayUs := (slowdown - 1) * preUs
		if len(c.Slack) != 8 {
			t.Fatalf("slack entries = %d, want 8", len(c.Slack))
		}
		for _, rs := range c.Slack {
			if rs.Rank == straggler {
				continue
			}
			if rs.SlackUs < delayUs {
				t.Errorf("rank %d slack = %.3fµs, want ≥ %.3fµs (straggler delay)",
					rs.Rank, rs.SlackUs, delayUs)
			}
			if rs.HarvestDVFSUs <= 0 || rs.HarvestDVFSUs >= rs.SlackUs {
				t.Errorf("rank %d harvestable-by-DVFS slack = %.3f, want in (0, %.3f)",
					rs.Rank, rs.HarvestDVFSUs, rs.SlackUs)
			}
		}
	}
	if !found {
		t.Fatalf("no allgather_ring in report: %+v", rep.Collectives)
	}
	if rep.RunCriticalRank != straggler {
		t.Errorf("run critical rank = %d, want %d", rep.RunCriticalRank, straggler)
	}
	if rep.Ranks != 8 {
		t.Errorf("ranks = %d, want 8", rep.Ranks)
	}
}

// TestReportDeterminismAndIngestionParity checks that (a) two identical
// runs produce byte-identical reports, and (b) the three ingestion
// paths — live streaming collector, post-run bus replay, and parsing
// the exported trace file — agree byte-for-byte.
func TestReportDeterminismAndIngestionParity(t *testing.T) {
	render := func(rep *pacc.AnalysisReport) string {
		var b bytes.Buffer
		if err := rep.Write(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	s1 := runRingAllgather(t, cfg8(), 50, true) // streaming collector
	s2 := runRingAllgather(t, cfg8(), 50, true)
	r1, r2 := render(s1.Report()), render(s2.Report())
	if r1 != r2 {
		t.Fatalf("same-seed runs produced different reports:\n%s\n---\n%s", r1, r2)
	}

	s3 := runRingAllgather(t, cfg8(), 50, false) // post-run replay
	if r3 := render(s3.Report()); r3 != r1 {
		t.Fatalf("replay-path report differs from streaming-path report")
	}

	// File path: export the trace, parse it back, analyze with the same
	// switch costs the live path used.
	var trace bytes.Buffer
	if err := s3.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	m, err := analyze.ParseChromeTrace(&trace)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfg8()
	a := m.Analyze(analyze.Options{
		ODVFSUs:     cfg.Power.ODVFS.Micros(),
		OThrottleUs: cfg.Power.OThrottle.Micros(),
	})
	if r4 := render(a.Report); r4 != r1 {
		t.Fatalf("file-path report differs from live-path report")
	}
}

// TestEnergyAttribution checks the phase × power-state split: per-phase
// by-state entries sum to the phase total, the run draws nonzero
// energy, and a power-aware call attributes energy to throttled states.
func TestEnergyAttribution(t *testing.T) {
	cfg := pacc.DefaultConfig()
	cfg.NProcs = 16
	cfg.PPN = 8
	w, err := pacc.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := pacc.AttachObs(w)
	sess.EnableAnalytics()
	w.Launch(func(r *pacc.Rank) {
		c := pacc.CommWorld(r)
		if err := pacc.Alltoall(c, 256<<10, pacc.CollectiveOptions{Power: pacc.Proposed}); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	rep := sess.Report()
	if rep.TotalJoules <= 0 {
		t.Fatalf("total joules = %g, want > 0", rep.TotalJoules)
	}
	states := map[string]bool{}
	for _, pe := range rep.Energy {
		sum := 0.0
		for _, se := range pe.ByState {
			sum += se.Joules
			states[se.State] = true
		}
		if diff := sum - pe.TotalJ; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("phase %q: by-state sum %.9f != total %.9f", pe.Phase, sum, pe.TotalJ)
		}
	}
	throttled := false
	for s := range states {
		if !strings.Contains(s, "T0") {
			throttled = true
		}
	}
	if !throttled {
		t.Errorf("proposed-scheme run attributed no energy to throttled states: %v", states)
	}
}

// TestAnnotatedTrace checks the annotated export: valid Chrome JSON,
// same event count as the plain trace plus no loss, critical spans
// flagged, wait spans carrying slack.
func TestAnnotatedTrace(t *testing.T) {
	cfg := cfg8()
	cfg.Fault = &pacc.FaultSpec{Seed: 1, Stragglers: []pacc.Straggler{{Rank: 2, Slowdown: 3}}}
	sess := runRingAllgather(t, cfg, 100, true)

	var plain, annotated bytes.Buffer
	if err := sess.WriteTrace(&plain); err != nil {
		t.Fatal(err)
	}
	if err := sess.WriteAnnotatedTrace(&annotated); err != nil {
		t.Fatal(err)
	}
	var plainEvs, annEvs []map[string]any
	if err := json.Unmarshal(plain.Bytes(), &plainEvs); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(annotated.Bytes(), &annEvs); err != nil {
		t.Fatalf("annotated trace is not valid JSON: %v", err)
	}
	if len(annEvs) != len(plainEvs) {
		t.Fatalf("annotated trace has %d events, plain has %d", len(annEvs), len(plainEvs))
	}
	crit, slack := 0, 0
	for _, e := range annEvs {
		args, _ := e["args"].(map[string]any)
		if args == nil {
			continue
		}
		if args["crit"] == true {
			crit++
		}
		if _, ok := args["slack_us"]; ok {
			slack++
			name, _ := e["name"].(string)
			if !strings.HasPrefix(name, "wait ") {
				t.Errorf("slack_us on non-wait span %q", name)
			}
		}
	}
	if crit == 0 {
		t.Error("no spans flagged critical")
	}
	if slack == 0 {
		t.Error("no wait spans annotated with slack")
	}
}

// TestDiffThresholds checks the regression gate: a report diffed
// against itself is clean, and a run moving 4× the bytes regresses
// mean latency past the default thresholds.
func TestDiffThresholds(t *testing.T) {
	base := runRingAllgather(t, cfg8(), 0, true).Report()
	if d := pacc.DiffReports(base, base, pacc.DiffThresholds{MeanPct: 5, P99Pct: 10, EnergyPct: 5}); d.Regressions != 0 {
		t.Fatalf("self-diff found %d regressions: %+v", d.Regressions, d.Entries)
	}

	cfg := cfg8()
	w, err := pacc.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := pacc.AttachObs(w)
	sess.EnableAnalytics()
	w.Launch(func(r *pacc.Rank) {
		c := pacc.CommWorld(r)
		if err := pacc.AllgatherRing(c, 256<<10, pacc.CollectiveOptions{}); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	next := sess.Report()
	d := pacc.DiffReports(base, next, pacc.DiffThresholds{MeanPct: 5, P99Pct: 10, EnergyPct: 5})
	if d.Regressions == 0 {
		t.Fatalf("4× message size did not regress any gate: %+v", d.Entries)
	}
	var out bytes.Buffer
	if err := d.Write(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "regression(s)") {
		t.Errorf("diff rendering missing summary: %q", out.String())
	}
}

// TestSlackSwitchCostFilter pins the harvestable-slack arithmetic on a
// hand-built event stream: one wait of 100µs with 12µs switch costs
// leaves 76µs harvestable by either mechanism; a 20µs wait clears
// neither round trip fully (20-24 < 0 → nothing).
func TestSlackSwitchCostFilter(t *testing.T) {
	c := analyze.NewCollector()
	rankEv := func(name string, ts, dur float64, args map[string]any) analyze.Event {
		return analyze.Event{Name: name, Ph: "X", Ts: ts, Dur: dur, PID: 0, TID: 1<<12 + 0, Args: args}
	}
	c.Add(rankEv("op", 0, 200, map[string]any{"power": "no-power"}))
	c.Add(rankEv("wait recv match", 10, 100, map[string]any{"peer": 1}))
	c.Add(rankEv("wait recv match", 150, 20, map[string]any{"peer": 1}))
	a := c.Model().Analyze(analyze.Options{ODVFSUs: 12, OThrottleUs: 12})
	rs := a.Report.RankSlack
	if len(rs) != 1 {
		t.Fatalf("rank slack entries = %d, want 1", len(rs))
	}
	if rs[0].SlackUs != 120 {
		t.Errorf("slack = %.3f, want 120", rs[0].SlackUs)
	}
	if rs[0].HarvestDVFSUs != 76 {
		t.Errorf("harvestable = %.3f, want 76 (100-24)", rs[0].HarvestDVFSUs)
	}
}
