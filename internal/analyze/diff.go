package analyze

import (
	"fmt"
	"io"
)

// Thresholds are the regression gates of a report diff, in percent
// (new vs. base). Zero disables a gate.
type Thresholds struct {
	// MeanPct gates per-collective mean latency growth.
	MeanPct float64
	// P99Pct gates per-collective tail latency growth.
	P99Pct float64
	// EnergyPct gates total energy growth.
	EnergyPct float64
}

// DefaultThresholds allows 5% mean, 10% tail, 5% energy growth.
func DefaultThresholds() Thresholds {
	return Thresholds{MeanPct: 5, P99Pct: 10, EnergyPct: 5}
}

// DiffEntry is one compared metric.
type DiffEntry struct {
	Metric    string  `json:"metric"`
	Base      float64 `json:"base"`
	New       float64 `json:"new"`
	DeltaPct  float64 `json:"delta_pct"`
	Regressed bool    `json:"regressed"`
}

// DiffResult is the outcome of comparing two reports.
type DiffResult struct {
	Entries     []DiffEntry `json:"entries"`
	Regressions int         `json:"regressions"`
}

// Diff compares two reports collective-by-collective (mean and p99
// latency) plus total energy, marking entries that exceed the
// thresholds. Collectives present in only one report are skipped: a
// diff gates regressions of shared work, not workload changes.
func Diff(base, next *Report, th Thresholds) *DiffResult {
	res := &DiffResult{}
	byOp := map[string]CollectiveReport{}
	for _, c := range next.Collectives {
		byOp[c.Op] = c
	}
	add := func(metric string, b, n, limit float64) {
		e := DiffEntry{Metric: metric, Base: round3(b), New: round3(n)}
		if b > 0 {
			e.DeltaPct = round3((n - b) / b * 100)
		} else if n > 0 {
			e.DeltaPct = 100
		}
		if limit > 0 && e.DeltaPct > limit {
			e.Regressed = true
			res.Regressions++
		}
		res.Entries = append(res.Entries, e)
	}
	for _, bc := range base.Collectives {
		nc, ok := byOp[bc.Op]
		if !ok || bc.Latency.Count == 0 || nc.Latency.Count == 0 {
			continue
		}
		add(bc.Op+".latency.mean_us", bc.Latency.MeanUs, nc.Latency.MeanUs, th.MeanPct)
		add(bc.Op+".latency.p99_us", bc.Latency.P99Us, nc.Latency.P99Us, th.P99Pct)
	}
	if base.TotalJoules > 0 || next.TotalJoules > 0 {
		add("energy.total_j", base.TotalJoules, next.TotalJoules, th.EnergyPct)
	}
	return res
}

// Write renders the diff as an aligned text table.
func (d *DiffResult) Write(w io.Writer) error {
	for _, e := range d.Entries {
		flag := "  "
		if e.Regressed {
			flag = "!!"
		}
		if _, err := fmt.Fprintf(w, "%s %-40s base=%12.3f new=%12.3f delta=%+7.2f%%\n",
			flag, e.Metric, e.Base, e.New, e.DeltaPct); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d regression(s)\n", d.Regressions)
	return err
}
