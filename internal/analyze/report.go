package analyze

import (
	"encoding/json"
	"io"
	"math"
	"sort"

	"pacc/internal/power"
	"pacc/internal/stats"
)

// SchemaVersion identifies the report JSON shape.
const SchemaVersion = "pacc.analyze.report/v1"

// Options tunes one analysis.
type Options struct {
	// ODVFSUs and OThrottleUs are the one-way switch latencies (µs) used
	// as the feasibility filter on harvestable slack: a wait shorter
	// than the round trip (2×) cannot be harvested by that mechanism.
	// Zero selects the default power model's constants.
	ODVFSUs     float64
	OThrottleUs float64
	// PerCall includes the per-call detail records in the report
	// (off by default: aggregates usually suffice and stay small).
	PerCall bool
}

func (o Options) withDefaults() Options {
	m := power.DefaultModel()
	if o.ODVFSUs == 0 {
		o.ODVFSUs = m.ODVFS.Micros()
	}
	if o.OThrottleUs == 0 {
		o.OThrottleUs = m.OThrottle.Micros()
	}
	return o
}

// Digest summarizes a value distribution (µs) with count, mean and
// percentiles (nearest-rank).
type Digest struct {
	Count  int     `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// digestOf maps the shared stats.Digest onto the report's µs-suffixed
// wire shape, rounding to keep report bytes stable across platforms.
func digestOf(vals []float64) Digest {
	d := stats.DigestOf(vals)
	if d.Count == 0 {
		return Digest{}
	}
	return Digest{
		Count:  d.Count,
		MeanUs: round3(d.Mean),
		P50Us:  round3(d.P50),
		P90Us:  round3(d.P90),
		P99Us:  round3(d.P99),
		MaxUs:  round3(d.Max),
	}
}

// RankShare is one rank's share of critical-path work.
type RankShare struct {
	Rank   int     `json:"rank"`
	WorkUs float64 `json:"work_us"`
}

// RankSlack is one rank's communication slack: total wait time, and the
// portions harvestable by DVFS or throttling after paying the
// round-trip switch cost.
type RankSlack struct {
	Rank              int     `json:"rank"`
	SlackUs           float64 `json:"slack_us"`
	HarvestDVFSUs     float64 `json:"harvest_dvfs_us"`
	HarvestThrottleUs float64 `json:"harvest_throttle_us"`
}

// CallReport is the per-call detail of one collective call instance.
type CallReport struct {
	StartUs      float64     `json:"start_us"`
	EndUs        float64     `json:"end_us"`
	LatencyUs    float64     `json:"latency_us"`
	CriticalRank int         `json:"critical_rank"`
	Critical     []RankShare `json:"critical"`
	Slack        []RankSlack `json:"slack"`
}

// CollectiveReport aggregates all calls of one collective operation.
type CollectiveReport struct {
	Op    string `json:"op"`
	Calls int    `json:"calls"`
	// Bytes is the per-rank size when uniform across calls, else -1.
	Bytes   int64  `json:"bytes"`
	Latency Digest `json:"latency"`
	// CriticalRank is the rank with the largest critical-path work share
	// summed over all calls — the rank that bounds completion.
	CriticalRank int         `json:"critical_rank"`
	Critical     []RankShare `json:"critical"`
	// Slack is per-rank wait time inside the op, summed over calls.
	Slack []RankSlack `json:"slack"`
	// SlackDigest is the distribution of per-rank-per-call slack.
	SlackDigest Digest       `json:"slack_digest"`
	PerCall     []CallReport `json:"per_call,omitempty"`
}

// Report is the full analysis output ("pacc.analyze.report/v1").
type Report struct {
	Schema      string             `json:"schema"`
	Ranks       int                `json:"ranks"`
	SpanUs      float64            `json:"span_us"`
	Collectives []CollectiveReport `json:"collectives"`
	// RunCriticalRank / RunCritical are the whole-run backward walk from
	// the last activity in the trace.
	RunCriticalRank int         `json:"run_critical_rank"`
	RunCritical     []RankShare `json:"run_critical"`
	// RankSlack is whole-run per-rank wait time.
	RankSlack   []RankSlack   `json:"rank_slack"`
	Energy      []PhaseEnergy `json:"energy"`
	TotalJoules float64       `json:"total_joules"`
}

// Analysis pairs a report with the critical-path markings needed to
// annotate the trace it came from.
type Analysis struct {
	Report *Report
	model  *Model
	// crit marks Model.Events indices on a critical path.
	crit map[int]bool
}

// Analyze runs the full engine over the model: per-collective-call and
// whole-run critical paths, per-rank slack with switch-cost filtering,
// phase × power-state energy attribution, and latency/slack digests.
// The output is deterministic: identical event streams produce
// byte-identical reports.
func (m *Model) Analyze(opt Options) *Analysis {
	opt = opt.withDefaults()
	rep := &Report{Schema: SchemaVersion, SpanUs: round3(m.endUs)}
	a := &Analysis{Report: rep, model: m, crit: map[int]bool{}}

	ranks := m.rankIDs()
	rep.Ranks = len(ranks)

	// --- Per-collective calls -------------------------------------------
	ops := map[string][][]opSpan{} // op → per-rank span lists, rank order
	for _, r := range ranks {
		for _, sp := range m.ranks[r].ops {
			if ops[sp.op] == nil {
				ops[sp.op] = make([][]opSpan, len(ranks))
			}
		}
	}
	for ri, r := range ranks {
		for _, sp := range m.ranks[r].ops {
			ops[sp.op][ri] = append(ops[sp.op][ri], sp)
		}
	}
	opNames := make([]string, 0, len(ops))
	for op := range ops {
		opNames = append(opNames, op)
	}
	sort.Strings(opNames)

	for _, op := range opNames {
		perRank := ops[op]
		calls := 0
		for _, list := range perRank {
			if len(list) > calls {
				calls = len(list)
			}
		}
		cr := CollectiveReport{Op: op, Bytes: -2}
		var latencies, slackVals []float64
		critSum := map[int]float64{}
		slackSum := map[int]*RankSlack{}
		for k := 0; k < calls; k++ {
			// SPMD grouping: the k-th occurrence of op on every rank is
			// one call instance.
			var members []opSpan
			for _, list := range perRank {
				if k < len(list) {
					members = append(members, list[k])
				}
			}
			if len(members) == 0 {
				continue
			}
			cr.Calls++
			start, end, last := members[0].start, members[0].end, members[0].rank
			for _, sp := range members {
				if sp.start < start {
					start = sp.start
				}
				if sp.end > end || (sp.end == end && sp.rank < last) {
					end, last = sp.end, sp.rank
				}
				if cr.Bytes == -2 {
					cr.Bytes = sp.bytes
				} else if cr.Bytes != sp.bytes {
					cr.Bytes = -1
				}
			}
			latencies = append(latencies, end-start)

			cw := m.walkCritical(last, start, end)
			callCritRank := argmaxShare(cw.workUs)
			for r, w := range cw.workUs {
				critSum[r] += w
			}
			for _, idx := range cw.waitIdx {
				a.crit[idx] = true
			}
			var callDetail CallReport
			for _, sp := range members {
				total, dv, th := m.slackIn(sp.rank, sp.start, sp.end, opt.ODVFSUs, opt.OThrottleUs)
				slackVals = append(slackVals, total)
				rs := slackSum[sp.rank]
				if rs == nil {
					rs = &RankSlack{Rank: sp.rank}
					slackSum[sp.rank] = rs
				}
				rs.SlackUs += total
				rs.HarvestDVFSUs += dv
				rs.HarvestThrottleUs += th
				if opt.PerCall {
					callDetail.Slack = append(callDetail.Slack, RankSlack{
						Rank: sp.rank, SlackUs: round3(total),
						HarvestDVFSUs: round3(dv), HarvestThrottleUs: round3(th),
					})
				}
				if cw.workUs[sp.rank] > 0 {
					a.crit[sp.idx] = true
				}
			}
			if opt.PerCall {
				callDetail.StartUs = round3(start)
				callDetail.EndUs = round3(end)
				callDetail.LatencyUs = round3(end - start)
				callDetail.CriticalRank = callCritRank
				callDetail.Critical = sharesOf(cw.workUs)
				cr.PerCall = append(cr.PerCall, callDetail)
			}
		}
		if cr.Bytes == -2 {
			cr.Bytes = -1
		}
		cr.Latency = digestOf(latencies)
		cr.SlackDigest = digestOf(slackVals)
		cr.CriticalRank = argmaxShare(critSum)
		cr.Critical = sharesOf(critSum)
		for _, r := range sortedKeys(slackSum) {
			rs := slackSum[r]
			cr.Slack = append(cr.Slack, RankSlack{
				Rank: r, SlackUs: round3(rs.SlackUs),
				HarvestDVFSUs:     round3(rs.HarvestDVFSUs),
				HarvestThrottleUs: round3(rs.HarvestThrottleUs),
			})
		}
		rep.Collectives = append(rep.Collectives, cr)
	}

	// --- Whole-run critical path ----------------------------------------
	lastRank, lastEnd := -1, 0.0
	for _, r := range ranks {
		rt := m.ranks[r]
		for _, sp := range rt.ops {
			if sp.end > lastEnd {
				lastEnd, lastRank = sp.end, r
			}
		}
		for _, w := range rt.waits {
			if w.end > lastEnd {
				lastEnd, lastRank = w.end, r
			}
		}
	}
	if lastRank >= 0 {
		cw := m.walkCritical(lastRank, 0, lastEnd)
		rep.RunCriticalRank = argmaxShare(cw.workUs)
		rep.RunCritical = sharesOf(cw.workUs)
		for _, idx := range cw.waitIdx {
			a.crit[idx] = true
		}
	} else {
		rep.RunCriticalRank = -1
	}

	// --- Whole-run slack -------------------------------------------------
	for _, r := range ranks {
		total, dv, th := m.slackIn(r, 0, m.endUs, opt.ODVFSUs, opt.OThrottleUs)
		rep.RankSlack = append(rep.RankSlack, RankSlack{
			Rank: r, SlackUs: round3(total),
			HarvestDVFSUs: round3(dv), HarvestThrottleUs: round3(th),
		})
	}

	// --- Energy ----------------------------------------------------------
	rep.Energy, rep.TotalJoules = m.energyByPhase()
	return a
}

// Write emits the report as deterministic indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report produced by Write.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// argmaxShare returns the rank with the largest work share (lowest rank
// on ties; -1 when empty).
func argmaxShare(work map[int]float64) int {
	best, bestW := -1, 0.0
	for _, r := range sortedKeysF(work) {
		if w := work[r]; best < 0 || w > bestW {
			best, bestW = r, w
		}
	}
	return best
}

func sharesOf(work map[int]float64) []RankShare {
	out := make([]RankShare, 0, len(work))
	for _, r := range sortedKeysF(work) {
		if w := round3(work[r]); w > 0 {
			out = append(out, RankShare{Rank: r, WorkUs: w})
		}
	}
	return out
}

func sortedKeysF(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedKeys(m map[int]*RankSlack) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// round3 rounds microseconds to nanosecond precision — the simulator's
// native resolution — so reports stay tidy and deterministic.
func round3(us float64) float64 { return math.Round(us*1e3) / 1e3 }

// roundJ rounds joules to nanojoule precision.
func roundJ(j float64) float64 { return math.Round(j*1e9) / 1e9 }
