// Package analyze is the deterministic post-run analytics engine: it
// consumes the observability event stream of one simulated job — live,
// through the bus's streaming subscriber API, or offline, from an
// exported Chrome trace file — reconstructs the per-rank timelines and
// the cross-rank dependency graph, and computes the critical path,
// per-rank communication slack, and phase × power-state energy
// attribution the power-aware schemes need (see DESIGN.md §10).
//
// Both ingestion paths normalize into the same Model, so a report built
// from a live run and one built from that run's exported trace are
// byte-identical.
package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"pacc/internal/obs"
)

// Event is one normalized trace event: the Chrome trace-event fields
// with timestamps in float64 microseconds — the common currency of live
// bus events (integer simulated nanoseconds) and parsed trace files
// (µs floats). The json tags match the exporter's, so an annotated
// event array round-trips through chrome://tracing unchanged.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// FromObs converts one live bus event into the normalized form.
func FromObs(ev obs.Event) Event {
	e := Event{
		Name: ev.Name,
		Cat:  ev.Cat,
		Ph:   string(ev.Phase),
		Ts:   ev.Time.Micros(),
		PID:  ev.Track.PID,
		TID:  ev.Track.TID,
		Args: ev.Args,
	}
	switch ev.Phase {
	case 'X':
		e.Dur = ev.Dur.Micros()
	case 'i':
		e.S = "t"
	case 'b', 'e':
		e.ID = fmt.Sprintf("%d", ev.AsyncID)
	}
	return e
}

// Collector accumulates events, either streamed from a live bus
// (Attach / AddObs) or fed pre-normalized (Add). It is the low-overhead
// path: the streaming callback is a single raw append — no string
// formatting, no unit conversion — and all normalization is deferred to
// Model(), outside the simulated run.
type Collector struct {
	raw  []obs.Event
	norm []Event
}

// NewCollector returns an empty collector with room for a typical
// instrumented run, so the streaming callback rarely reallocates.
func NewCollector() *Collector { return &Collector{raw: make([]obs.Event, 0, 1<<13)} }

// Attach subscribes the collector to a bus's event stream; every
// subsequently emitted timeline event is appended. Returns the
// subscription id (0 on a nil bus).
func (c *Collector) Attach(b *obs.Bus) obs.SubID { return b.Subscribe(c.AddObs) }

// AddObs appends one raw bus event. This is the streaming hot path: a
// couple of branches and at most one append. Events the analyses never
// read — async message lifecycles, network-track flow spans, non-bind
// instants — are dropped here rather than retained, keeping the
// collector's live heap (and hence its GC pressure on the running
// simulation) small. The same filter applies to the post-run replay
// path, so streamed and replayed reports stay byte-identical.
func (c *Collector) AddObs(ev obs.Event) {
	switch ev.Phase {
	case 'X':
		if !isRankTrack(ev.Track.PID, ev.Track.TID) && !isCoreTrack(ev.Track.PID, ev.Track.TID) {
			return
		}
	case 'i':
		if ev.Name != "bind" {
			return
		}
	default:
		return
	}
	c.raw = append(c.raw, ev)
}

// Add appends one pre-normalized event.
func (c *Collector) Add(e Event) { c.norm = append(c.norm, e) }

// Len returns the number of collected events.
func (c *Collector) Len() int { return len(c.raw) + len(c.norm) }

// Model normalizes the collected events (raw bus events first, then any
// pre-normalized additions) and wraps them for analysis.
func (c *Collector) Model() *Model {
	events := make([]Event, 0, c.Len())
	for _, ev := range c.raw {
		events = append(events, FromObs(ev))
	}
	events = append(events, c.norm...)
	return NewModel(events)
}

// ParseChromeTrace reads an exported Chrome trace-event JSON array into
// a Model — the offline ingestion path of cmd/paccprof.
func ParseChromeTrace(r io.Reader) (*Model, error) {
	var events []Event
	dec := json.NewDecoder(r)
	if err := dec.Decode(&events); err != nil {
		return nil, fmt.Errorf("analyze: parsing chrome trace: %w", err)
	}
	return NewModel(events), nil
}

// Model holds one run's normalized event stream plus the derived
// per-rank and per-core timelines the analyses walk.
type Model struct {
	// Events is the full stream in ingestion order (metadata included),
	// kept verbatim for annotated re-export.
	Events []Event

	ranks map[int]*rankTimeline
	cores map[int]*coreSpans
	// endUs is the latest event end seen on any rank or core track.
	endUs float64
}

// opSpan is one top-level collective call observed on one rank.
type opSpan struct {
	rank       int
	op         string
	start, end float64
	bytes      int64 // -1 when unknown or size-varying
	power      string
	idx        int // index into Model.Events, for annotation
}

// waitSpan is one blocking wait on one rank; peer is the global rank the
// wait depended on (-1 when unknown) — the dependency edge of the graph.
type waitSpan struct {
	rank       int
	reason     string
	start, end float64
	peer       int
	idx        int
}

// phaseSpan is one named algorithm phase on one rank (possibly nested).
type phaseSpan struct {
	name       string
	start, end float64
}

// coreSpan is one power-state residency interval of one core.
type coreSpan struct {
	start, end float64
	watts      float64
	state      string // e.g. "busy 2.4GHz T0"
}

type coreSpans struct {
	core  int
	spans []coreSpan
}

type rankTimeline struct {
	rank   int
	core   int // bound core (global index), -1 when no bind event seen
	ops    []opSpan
	waits  []waitSpan
	phases []phaseSpan
}

// NewModel builds the derived timelines from a normalized event stream.
func NewModel(events []Event) *Model {
	m := &Model{
		Events: events,
		ranks:  map[int]*rankTimeline{},
		cores:  map[int]*coreSpans{},
	}
	for i, e := range events {
		switch e.Ph {
		case "X":
		case "i":
			if e.Name == "bind" && isRankTrack(e.PID, e.TID) {
				rt := m.rank(e.TID - obs.TIDRankBase)
				if c, ok := argInt(e.Args, "core"); ok {
					rt.core = c
				}
			}
			continue
		default:
			continue
		}
		end := e.Ts + e.Dur
		switch {
		case isRankTrack(e.PID, e.TID):
			rank := e.TID - obs.TIDRankBase
			rt := m.rank(rank)
			if end > m.endUs {
				m.endUs = end
			}
			switch {
			case strings.HasPrefix(e.Name, "wait "):
				peer := -1
				if p, ok := argInt(e.Args, "peer"); ok {
					peer = p
				}
				rt.waits = append(rt.waits, waitSpan{
					rank: rank, reason: strings.TrimPrefix(e.Name, "wait "),
					start: e.Ts, end: end, peer: peer, idx: i,
				})
			case strings.HasPrefix(e.Name, "phase "):
				rt.phases = append(rt.phases, phaseSpan{
					name: strings.TrimPrefix(e.Name, "phase "), start: e.Ts, end: end,
				})
			default:
				if _, isOp := e.Args["power"]; !isOp && e.Name != "barrier" {
					continue
				}
				bytes := int64(-1)
				if by, ok := argInt64(e.Args, "bytes"); ok {
					bytes = by
				}
				power, _ := e.Args["power"].(string)
				rt.ops = append(rt.ops, opSpan{
					rank: rank, op: e.Name, start: e.Ts, end: end,
					bytes: bytes, power: power, idx: i,
				})
			}
		case isCoreTrack(e.PID, e.TID):
			w, ok := argFloat(e.Args, "watts")
			if !ok {
				continue
			}
			cs := m.cores[e.TID]
			if cs == nil {
				cs = &coreSpans{core: e.TID}
				m.cores[e.TID] = cs
			}
			cs.spans = append(cs.spans, coreSpan{start: e.Ts, end: end, watts: w, state: e.Name})
			if end > m.endUs {
				m.endUs = end
			}
		}
	}
	// Deterministic span ordering regardless of ingestion order (the
	// file path is timestamp-sorted, the live path is emission-ordered).
	for _, rt := range m.ranks {
		sort.SliceStable(rt.ops, func(i, j int) bool {
			return spanLess(rt.ops[i].start, rt.ops[i].end, rt.ops[i].op, rt.ops[j].start, rt.ops[j].end, rt.ops[j].op)
		})
		sort.SliceStable(rt.waits, func(i, j int) bool {
			return spanLess(rt.waits[i].start, rt.waits[i].end, rt.waits[i].reason, rt.waits[j].start, rt.waits[j].end, rt.waits[j].reason)
		})
		sort.SliceStable(rt.phases, func(i, j int) bool {
			return spanLess(rt.phases[i].start, rt.phases[i].end, rt.phases[i].name, rt.phases[j].start, rt.phases[j].end, rt.phases[j].name)
		})
	}
	for _, cs := range m.cores {
		sort.SliceStable(cs.spans, func(i, j int) bool { return cs.spans[i].start < cs.spans[j].start })
	}
	return m
}

func spanLess(s1, e1 float64, n1 string, s2, e2 float64, n2 string) bool {
	if s1 != s2 {
		return s1 < s2
	}
	if e1 != e2 {
		return e1 < e2
	}
	return n1 < n2
}

func (m *Model) rank(id int) *rankTimeline {
	rt := m.ranks[id]
	if rt == nil {
		rt = &rankTimeline{rank: id, core: -1}
		m.ranks[id] = rt
	}
	return rt
}

// rankIDs returns all observed ranks ascending.
func (m *Model) rankIDs() []int {
	out := make([]int, 0, len(m.ranks))
	for r := range m.ranks {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

func isRankTrack(pid, tid int) bool {
	return pid >= 0 && pid < obs.PIDNetwork && tid >= obs.TIDRankBase && tid < obs.PIDNetwork
}

func isCoreTrack(pid, tid int) bool {
	return pid >= 0 && pid < obs.PIDNetwork && tid >= 0 && tid < obs.TIDRankBase
}

// argInt reads an integer arg, tolerating the json float64 decoding of
// parsed trace files and the int/int64 of live bus events.
func argInt(args map[string]any, key string) (int, bool) {
	v, ok := argInt64(args, key)
	return int(v), ok
}

func argInt64(args map[string]any, key string) (int64, bool) {
	switch v := args[key].(type) {
	case int:
		return int64(v), true
	case int64:
		return v, true
	case float64:
		return int64(v), true
	}
	return 0, false
}

func argFloat(args map[string]any, key string) (float64, bool) {
	switch v := args[key].(type) {
	case float64:
		return v, true
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	}
	return 0, false
}
