// Package trace records per-core power-state timelines from a simulation
// and exports them in the Chrome trace-event format (load the JSON in
// chrome://tracing or https://ui.perfetto.dev to see, per core, when it
// ran at which frequency and throttle level, and when it idled — the
// phased schedules of the power-aware collectives become directly
// visible).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pacc/internal/obs"
	"pacc/internal/power"
	"pacc/internal/simtime"
)

// span is one interval of constant core state.
type span struct {
	core  int
	start simtime.Time
	end   simtime.Time
	state power.StateChange
}

// Recorder accumulates state changes from a set of cores.
type Recorder struct {
	station *power.Station
	// open holds the last state change per core (the currently open
	// interval).
	open  map[int]power.StateChange
	spans []span
	// coresPerNode groups core "threads" into node "processes" in the
	// exported trace.
	coresPerNode int
}

// Attach hooks every core of the station. coresPerNode controls the
// node grouping in the export (pass the topology's CoresPerNode).
func Attach(st *power.Station, coresPerNode int) *Recorder {
	if coresPerNode <= 0 {
		coresPerNode = 1
	}
	r := &Recorder{
		station:      st,
		open:         make(map[int]power.StateChange),
		coresPerNode: coresPerNode,
	}
	for _, c := range st.Cores() {
		core := c
		id := core.ID()
		core.SetRecorder(func(sc power.StateChange) {
			r.onChange(id, sc)
		})
	}
	return r
}

// Detach removes the hooks and closes all open intervals at the current
// time. Detaching twice is a no-op the second time.
func (r *Recorder) Detach() {
	for _, c := range r.station.Cores() {
		c.SetRecorder(nil)
	}
	now := r.station.Now()
	for id, sc := range r.open {
		r.closeSpan(id, sc, now)
	}
	r.open = make(map[int]power.StateChange)
}

func (r *Recorder) onChange(core int, sc power.StateChange) {
	if prev, ok := r.open[core]; ok && sc.At > prev.At {
		r.closeSpan(core, prev, sc.At)
	}
	r.open[core] = sc
}

func (r *Recorder) closeSpan(core int, st power.StateChange, end simtime.Time) {
	if end <= st.At {
		return
	}
	r.spans = append(r.spans, span{core: core, start: st.At, end: end, state: st})
}

// finish closes intervals still open at `now` without detaching.
func (r *Recorder) snapshot(now simtime.Time) []span {
	out := make([]span, len(r.spans))
	copy(out, r.spans)
	for id, sc := range r.open {
		if now > sc.At {
			out = append(out, span{core: id, start: sc.At, end: now, state: sc})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].core != out[j].core {
			return out[i].core < out[j].core
		}
		return out[i].start < out[j].start
	})
	return out
}

// Spans reports how many closed intervals have been recorded so far.
func (r *Recorder) Spans() int { return len(r.spans) }

// chromeEvent is one entry of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func stateName(sc power.StateChange) string {
	act := "idle"
	if sc.Busy {
		act = "busy"
	}
	return fmt.Sprintf("%s %.1fGHz %v", act, sc.FreqGHz, sc.Throttle)
}

// WriteChromeTrace exports all recorded spans up to `now` as a Chrome
// trace: one process per node, one thread per core, one complete event
// per constant-state interval, with watts in the event args.
func (r *Recorder) WriteChromeTrace(w io.Writer, now simtime.Time) error {
	spans := r.snapshot(now)
	events := make([]chromeEvent, 0, len(spans)+len(r.station.Cores()))
	cores := r.station.Cores()
	if len(cores) == 0 {
		return json.NewEncoder(w).Encode(events)
	}
	model := cores[0].Model()
	seen := map[int]bool{}
	seenNode := map[int]bool{}
	for _, sp := range spans {
		node := sp.core / r.coresPerNode
		if !seenNode[node] {
			seenNode[node] = true
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: node,
				Args: map[string]any{"name": fmt.Sprintf("node %d", node)},
			})
		}
		if !seen[sp.core] {
			seen[sp.core] = true
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: node, Tid: sp.core,
				Args: map[string]any{"name": fmt.Sprintf("core %d", sp.core)},
			})
		}
		events = append(events, chromeEvent{
			Name: stateName(sp.state),
			Ph:   "X",
			Ts:   sp.start.Micros(),
			Dur:  sp.end.Sub(sp.start).Micros(),
			Pid:  node,
			Tid:  sp.core,
			Args: map[string]any{
				"watts": model.CoreWatts(sp.state.FreqGHz, sp.state.Throttle, sp.state.Busy),
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// ExportToBus replays all recorded power-state spans up to `now` into an
// observability bus, so the per-core power timeline interleaves with the
// MPI, network, and collective spans in one merged trace. Core threads
// share the node process used by the rank timelines; call once, at export
// time.
func (r *Recorder) ExportToBus(b *obs.Bus, now simtime.Time) {
	if b == nil {
		return
	}
	cores := r.station.Cores()
	if len(cores) == 0 {
		return
	}
	model := cores[0].Model()
	seen := map[int]bool{}
	for _, sp := range r.snapshot(now) {
		node := sp.core / r.coresPerNode
		t := obs.CoreTrack(node, sp.core)
		if !seen[sp.core] {
			seen[sp.core] = true
			b.SetThreadName(t, fmt.Sprintf("core %d", sp.core))
		}
		b.Span(t, stateName(sp.state), sp.start, sp.end, map[string]any{
			"watts":  model.CoreWatts(sp.state.FreqGHz, sp.state.Throttle, sp.state.Busy),
			"ghz":    sp.state.FreqGHz,
			"tstate": int(sp.state.Throttle),
			"busy":   sp.state.Busy,
		})
	}
}
