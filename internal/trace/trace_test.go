package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pacc/internal/collective"
	"pacc/internal/mpi"
	"pacc/internal/power"
	"pacc/internal/simtime"
)

func TestRecorderSpans(t *testing.T) {
	eng := simtime.NewEngine()
	st := power.NewStation(eng, power.DefaultModel(), 1, 2)
	rec := Attach(st, 2)
	eng.Spawn("driver", func(p *simtime.Proc) {
		c := st.Core(0)
		c.SetBusy(true)
		p.Sleep(simtime.Millisecond)
		c.SetFreq(1.6)
		p.Sleep(simtime.Millisecond)
		c.SetThrottle(power.T7)
		p.Sleep(simtime.Millisecond)
		c.SetBusy(false)
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	// Core 0: initial idle (zero-length at t=0 is dropped), busy@fmax,
	// busy@fmin, busy@fmin/T7 — three closed spans.
	if got := rec.Spans(); got != 3 {
		t.Fatalf("spans = %d, want 3", got)
	}
	spans := rec.snapshot(eng.Now())
	// Snapshot adds core 1's full idle interval; core 0's final idle
	// state is zero-length (the run ends at that instant) and is
	// dropped.
	if len(spans) != 4 {
		t.Fatalf("snapshot spans = %d, want 4", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		a, b := spans[i-1], spans[i]
		if a.core == b.core && a.end > b.start {
			t.Fatalf("overlapping spans on core %d", a.core)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	cfg := mpi.DefaultConfig()
	cfg.NProcs = 16
	cfg.PPN = 8
	cfg.Topo.Nodes = 2
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := Attach(w.Station(), cfg.Topo.CoresPerNode())
	w.Launch(func(r *mpi.Rank) {
		collective.Alltoall(mpi.CommWorld(r), 64<<10, collective.Options{Power: collective.Proposed})
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, w.Engine().Now()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(events) < 50 {
		t.Fatalf("only %d events; a proposed alltoall should produce many state changes", len(events))
	}
	var sawT7, sawFmin, sawMeta bool
	for _, ev := range events {
		name, _ := ev["name"].(string)
		switch {
		case name == "thread_name":
			sawMeta = true
		case strings.Contains(name, "T7"):
			sawT7 = true
		}
		if strings.Contains(name, "1.6GHz") {
			sawFmin = true
		}
		if ph, _ := ev["ph"].(string); ph == "X" {
			if ev["dur"] == nil {
				t.Fatalf("complete event without duration: %v", ev)
			}
		}
	}
	if !sawMeta {
		t.Error("no thread metadata events")
	}
	if !sawT7 {
		t.Error("proposed alltoall should show T7 intervals")
	}
	if !sawFmin {
		t.Error("proposed alltoall should show fmin intervals")
	}
}

func TestDetachClosesAndUnhooks(t *testing.T) {
	eng := simtime.NewEngine()
	st := power.NewStation(eng, power.DefaultModel(), 1, 1)
	rec := Attach(st, 1)
	eng.Spawn("driver", func(p *simtime.Proc) {
		st.Core(0).SetBusy(true)
		p.Sleep(simtime.Millisecond)
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	rec.Detach()
	n := rec.Spans()
	// Further changes must not be recorded.
	st.Core(0).SetBusy(false)
	st.Core(0).SetBusy(true)
	if rec.Spans() != n {
		t.Fatal("recorder still hooked after Detach")
	}
}

func TestAttachZeroCoresPerNode(t *testing.T) {
	eng := simtime.NewEngine()
	st := power.NewStation(eng, power.DefaultModel(), 1, 1)
	rec := Attach(st, 0) // must not divide by zero on export
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, eng.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestExportZeroCoreStation(t *testing.T) {
	eng := simtime.NewEngine()
	st := power.NewStation(eng, power.DefaultModel(), 0, 0)
	rec := Attach(st, 1)
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, eng.Now()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("zero-core export has %d events, want 0", len(events))
	}
}

func TestDetachClosesOpenIntervalsAtNow(t *testing.T) {
	eng := simtime.NewEngine()
	st := power.NewStation(eng, power.DefaultModel(), 1, 1)
	rec := Attach(st, 1)
	eng.Spawn("driver", func(p *simtime.Proc) {
		st.Core(0).SetBusy(true)
		p.Sleep(simtime.Millisecond)
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	// The busy interval opened at t=0 is still open; Detach must close it
	// at the current time, not drop it.
	rec.Detach()
	spans := rec.snapshot(eng.Now())
	if len(spans) != 1 {
		t.Fatalf("spans after Detach = %d, want 1", len(spans))
	}
	if spans[0].end != eng.Now() {
		t.Fatalf("open interval closed at %v, want %v", spans[0].end, eng.Now())
	}
	// Detaching again must be a no-op, not duplicate the spans.
	rec.Detach()
	if got := rec.Spans(); got != 1 {
		t.Fatalf("spans after double Detach = %d, want 1", got)
	}
}

func TestSnapshotBeforeFirstStateChange(t *testing.T) {
	eng := simtime.NewEngine()
	st := power.NewStation(eng, power.DefaultModel(), 1, 2)
	rec := Attach(st, 2)
	// No state change has happened; both cores still hold their initial
	// zero-length open interval at t=0, which a snapshot at t=0 drops.
	if spans := rec.snapshot(eng.Now()); len(spans) != 0 {
		t.Fatalf("snapshot before any state change = %d spans, want 0", len(spans))
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, eng.Now()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("pristine export has %d events, want 0", len(events))
	}
}

func TestProcessNameMetadata(t *testing.T) {
	eng := simtime.NewEngine()
	st := power.NewStation(eng, power.DefaultModel(), 2, 2)
	rec := Attach(st, 2)
	eng.Spawn("driver", func(p *simtime.Proc) {
		st.Core(0).SetBusy(true)
		st.Core(2).SetBusy(true)
		p.Sleep(simtime.Millisecond)
		st.Core(0).SetBusy(false)
		st.Core(2).SetBusy(false)
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, eng.Now()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	names := map[int]string{}
	for _, ev := range events {
		if ev["name"] == "process_name" {
			pid := int(ev["pid"].(float64))
			names[pid] = ev["args"].(map[string]any)["name"].(string)
		}
	}
	if names[0] != "node 0" || names[1] != "node 1" {
		t.Fatalf("process_name metadata = %v, want node 0 and node 1", names)
	}
}
