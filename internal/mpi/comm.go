package mpi

import (
	"fmt"
	"sort"

	"pacc/internal/topology"
)

// Comm is a communicator: an ordered group of global ranks plus the
// calling rank's position in it. Like an MPI communicator handle, a Comm
// is local to one rank; the same group is represented by one Comm per
// member.
type Comm struct {
	r     *Rank
	group []int // global rank ids; position = communicator rank
	me    int   // index of r.id in group
	// id distinguishes tag spaces of different communicators. It is a
	// rank-local creation counter: because communicators must be
	// created congruently on all members (SPMD, as in MPI), every
	// member assigns the same id to the same logical communicator.
	id int
	// opSeq numbers collective operations on this communicator, again
	// kept consistent by congruent calls.
	opSeq int
	// agreeSeq numbers AgreeFailures calls (see ulfm.go), congruent like
	// opSeq.
	agreeSeq int
	// shapeKey memoizes ShapeKey.
	shapeKey string
	// splitShm/splitLead memoize SplitByNode. The node grouping of a
	// communicator never changes, and every member memoizes on its first
	// call (SPMD congruence), so the per-collective re-split cost — once
	// the dominant allocation in iterated topo-aware collectives — is
	// paid exactly once per communicator.
	splitShm  *Comm
	splitLead *Comm
	splitDone bool
}

// CommWorld returns the communicator containing every rank of the job.
// All ranks share one immutable identity-group slice: a per-rank copy
// would be O(P) memory per rank — tens of gigabytes at 64k ranks — for
// a slice no code path ever mutates after creation.
func CommWorld(r *Rank) *Comm {
	w := r.world
	if w.worldGroup == nil {
		w.worldGroup = make([]int, w.cfg.NProcs)
		for i := range w.worldGroup {
			w.worldGroup[i] = i
		}
	}
	id := r.commSeq
	r.commSeq++
	return &Comm{r: r, group: w.worldGroup, me: r.id, id: id}
}

// ShapeKey identifies the communicator's logical group across ranks in
// O(1), for world-level memo keys (the collective package's plan
// cache). Two comm handles held by different ranks map to the same key
// exactly when they represent the same logical communicator:
//
//   - congruent creation (the SPMD contract this package already leans
//     on for tag spaces) gives the same logical communicator the same
//     id on every member;
//   - distinct communicators sharing an id exist only via SplitColor's
//     per-color partition, whose member sets are disjoint — so their
//     first members (and sizes) differ.
//
// The id alone is therefore ambiguous only across disjoint groups, and
// group[0] breaks that tie; size and the last member are included as
// defense in depth.
func (c *Comm) ShapeKey() string {
	if c.shapeKey == "" {
		c.shapeKey = fmt.Sprintf("%d/%d:%d-%d",
			c.id, len(c.group), c.group[0], c.group[len(c.group)-1])
	}
	return c.shapeKey
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.me }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Global translates a communicator rank to the global rank id.
func (c *Comm) Global(commRank int) int { return c.group[commRank] }

// Owner returns the Rank object that holds this communicator handle.
func (c *Comm) Owner() *Rank { return c.r }

// World returns the job.
func (c *Comm) World() *World { return c.r.world }

// Sub creates a communicator from a subset of this communicator's ranks
// (given as communicator ranks, in the desired order). Returns nil if the
// caller is not in the subset. Creation is structural: like communicator
// caching in MVAPICH2, the cost is paid once at job setup, not per
// collective.
func (c *Comm) Sub(commRanks []int) *Comm {
	// The id is consumed whether or not the caller joins, so members
	// and non-members stay congruent.
	id := c.r.commSeq
	c.r.commSeq++
	group := make([]int, len(commRanks))
	me := -1
	for i, cr := range commRanks {
		if cr < 0 || cr >= len(c.group) {
			// A malformed subset is a programming error in the caller's
			// schedule, but it must not crash the host process: surface
			// it through the engine's failure report (the deadlock/
			// protocol-error path) and drop the caller out, as if it had
			// passed MPI_UNDEFINED.
			c.r.world.eng.Fail(fmt.Errorf(
				"mpi: Sub rank %d outside communicator of size %d", cr, len(c.group)))
			return nil
		}
		group[i] = c.group[cr]
		if group[i] == c.r.id {
			me = i
		}
	}
	if me == -1 {
		return nil
	}
	return &Comm{r: c.r, group: group, me: me, id: id}
}

// SplitColor partitions the communicator like MPI_Comm_split: ranks with
// the same color form a new communicator, ordered by (key, rank). A
// negative color (MPI_UNDEFINED) yields nil. All members must call
// congruently with their own (color, key); the full color/key table must
// be derivable by every rank, so it is passed as functions of the
// communicator rank. The resulting per-color communicators share one tag
// space id, which is safe because their member sets are disjoint.
func (c *Comm) SplitColor(colorOf, keyOf func(commRank int) int) *Comm {
	myColor := colorOf(c.me)
	type member struct{ key, rank int }
	var members []member
	for cr := 0; cr < len(c.group); cr++ {
		if colorOf(cr) == myColor {
			members = append(members, member{keyOf(cr), cr})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].rank < members[j].rank
	})
	ranks := make([]int, len(members))
	for i, m := range members {
		ranks[i] = m.rank
	}
	if myColor < 0 {
		// Still consume the id for congruence, then drop out.
		c.Sub(nil)
		return nil
	}
	return c.Sub(ranks)
}

// TagBlock reserves a fresh block of 2^20 tags for one collective
// operation on this communicator. Successive collectives get disjoint
// blocks, and different communicators get disjoint spaces, so a straggler
// message from a previous operation can never match a later receive.
func (c *Comm) TagBlock() int {
	c.opSeq++
	return c.id*(1<<44) + c.opSeq*(1<<20)
}

// PairTag returns a canonical tag for the unordered pair (a, b) of
// communicator ranks inside a tag block: both endpoints derive the same
// tag regardless of their position in the communication schedule.
func (c *Comm) PairTag(block, a, b int) int {
	if a > b {
		a, b = b, a
	}
	return block + a*len(c.group) + b
}

// Isend starts a nonblocking send to a communicator rank. On a revoked
// communicator the operation fails at initiation (check Err); otherwise
// the request's wait is failure-aware toward both the peer and this
// communicator's revocation.
func (c *Comm) Isend(dst int, bytes int64, tag int) *Request {
	if c.Revoked() {
		return errorRequest(c.r, &CommRevokedError{Comm: c.id, Op: "Isend"})
	}
	q := c.r.Isend(c.group[dst], bytes, tag)
	q.comm = c
	return q
}

// Irecv posts a nonblocking receive from a communicator rank (see Isend
// for revocation and failure-awareness).
func (c *Comm) Irecv(src int, bytes int64, tag int) *Request {
	if c.Revoked() {
		return errorRequest(c.r, &CommRevokedError{Comm: c.id, Op: "Irecv"})
	}
	q := c.r.Irecv(c.group[src], bytes, tag)
	q.comm = c
	return q
}

// Send is a blocking send to a communicator rank. The error is nil for a
// completed send; a dead peer or revoked communicator surfaces as a
// failure error (IsFailure).
func (c *Comm) Send(dst int, bytes int64, tag int) error {
	q := c.Isend(dst, bytes, tag)
	q.Wait()
	return c.r.world.reapReq(q)
}

// Recv is a blocking receive from a communicator rank (errors as in Send).
func (c *Comm) Recv(src int, bytes int64, tag int) error {
	q := c.Irecv(src, bytes, tag)
	q.Wait()
	return c.r.world.reapReq(q)
}

// SendRecv exchanges with communicator ranks dst and src (errors as in
// Send; the send's error wins when both fail).
func (c *Comm) SendRecv(dst int, sendBytes int64, src int, recvBytes int64, tag int) error {
	rq := c.Irecv(src, recvBytes, tag)
	sq := c.Isend(dst, sendBytes, tag)
	sq.Wait()
	rq.Wait()
	serr := c.r.world.reapReq(sq)
	rerr := c.r.world.reapReq(rq)
	if serr != nil {
		return serr
	}
	return rerr
}

// Exchange runs the canonical progression of one schedule step that both
// sends and receives: post the receive, start the send, then complete
// send before receive. Every collective exchange — imperative or executed
// from a communication plan — goes through this one sequence, so the two
// paths progress (and therefore time and trace) identically. Errors as in
// SendRecv.
func (c *Comm) Exchange(sendTo int, sendBytes int64, sendTag int, recvFrom int, recvBytes int64, recvTag int) error {
	rq := c.Irecv(recvFrom, recvBytes, recvTag)
	sq := c.Isend(sendTo, sendBytes, sendTag)
	WaitAll(sq, rq)
	serr := c.r.world.reapReq(sq)
	rerr := c.r.world.reapReq(rq)
	if serr != nil {
		return serr
	}
	return rerr
}

// SendValue is SendValue addressed by communicator rank; the wait is
// failure-aware like every communicator operation.
func (c *Comm) SendValue(dst int, bytes int64, tag int, v float64) error {
	q := c.Isend(dst, bytes, tag)
	if q.Err() != nil {
		return q.Err()
	}
	c.r.world.putWire(c.r.id, c.group[dst], tag, v)
	q.Wait()
	return c.r.world.reapReq(q)
}

// RecvValue is RecvValue addressed by communicator rank (failure-aware as
// in SendValue).
func (c *Comm) RecvValue(src int, bytes int64, tag int) (float64, error) {
	q := c.Irecv(src, bytes, tag)
	if q.Err() != nil {
		return 0, q.Err()
	}
	q.Wait()
	if err := c.r.world.reapReq(q); err != nil {
		return 0, err
	}
	v, ok := c.r.world.takeWire(c.group[src], c.r.id, tag)
	if !ok {
		return 0, fmt.Errorf("mpi: rank %d: no wire value from %d tag %d",
			c.r.id, c.group[src], tag)
	}
	return v, nil
}

// NodeOf returns the node hosting a communicator rank.
func (c *Comm) NodeOf(commRank int) int {
	return c.r.world.place.NodeOf(c.group[commRank])
}

// SocketOf returns the socket of a communicator rank's core.
func (c *Comm) SocketOf(commRank int) topology.SocketID {
	return c.r.world.place.SocketOf(c.group[commRank])
}

// SameNode reports whether two communicator ranks share a node.
func (c *Comm) SameNode(a, b int) bool { return c.NodeOf(a) == c.NodeOf(b) }

// nodesInOrder returns the distinct node ids of the communicator in first-
// appearance order.
func (c *Comm) nodesInOrder() []int {
	seen := map[int]bool{}
	var nodes []int
	for cr := range c.group {
		n := c.NodeOf(cr)
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// SplitByNode builds the two sub-communicators of MVAPICH2's multi-core
// aware collectives (§II-D): shmComm groups the caller with all ranks on
// its node (ordered by communicator rank, so the leader — the smallest —
// is shm rank 0), and leaderComm groups the per-node leaders (nil for
// non-leader callers).
func (c *Comm) SplitByNode() (shmComm, leaderComm *Comm) {
	if c.splitDone {
		return c.splitShm, c.splitLead
	}
	perNode := map[int][]int{}
	for cr := range c.group {
		n := c.NodeOf(cr)
		perNode[n] = append(perNode[n], cr)
	}
	myNode := c.NodeOf(c.me)
	mine := append([]int(nil), perNode[myNode]...)
	sort.Ints(mine)
	shmComm = c.Sub(mine)

	var leaders []int
	for _, n := range c.nodesInOrder() {
		rs := append([]int(nil), perNode[n]...)
		sort.Ints(rs)
		leaders = append(leaders, rs[0])
	}
	sort.Ints(leaders)
	leaderComm = c.Sub(leaders) // nil unless caller is a leader
	c.splitShm, c.splitLead, c.splitDone = shmComm, leaderComm, true
	return shmComm, leaderComm
}

// SocketGroups partitions the caller's node-local communicator ranks by
// socket: groupA holds the ranks on socket A, groupB those on socket B
// (communicator ranks, ascending). This is the process grouping of the
// paper's power-aware Alltoall (§V-A, Figure 3).
func (c *Comm) SocketGroups() (groupA, groupB []int) {
	myNode := c.NodeOf(c.me)
	for cr := range c.group {
		if c.NodeOf(cr) != myNode {
			continue
		}
		if c.SocketOf(cr) == topology.SocketA {
			groupA = append(groupA, cr)
		} else {
			groupB = append(groupB, cr)
		}
	}
	sort.Ints(groupA)
	sort.Ints(groupB)
	return groupA, groupB
}
