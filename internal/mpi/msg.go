package mpi

import (
	"fmt"

	"pacc/internal/fault"
	"pacc/internal/obs"
	"pacc/internal/simtime"
)

// msgKind distinguishes eager payloads from rendezvous request-to-send
// control messages.
type msgKind int

const (
	eagerMsg msgKind = iota
	rtsMsg
)

// inMsg is one message as seen by the receiving mailbox.
type inMsg struct {
	src, tag int
	seq      uint64
	bytes    int64
	kind     msgKind
	// intraShm marks an eager message that traveled through shared
	// memory; the receiver pays the copy-out on pickup.
	intraShm bool
	// arrived completes when an eager payload is available at the
	// receiver.
	arrived *simtime.Future
	// snd is the sender-side state of a rendezvous transfer.
	snd *sendState
}

// sendState tracks a rendezvous transfer from the sender's perspective.
type sendState struct {
	src, dst int
	bytes    int64
	seq      uint64
	intraShm bool
	// cts completes when the receiver has matched the RTS (clear to
	// send). Used by the shared-memory single-copy path.
	cts *simtime.Future
	// dataDone completes when the payload has fully arrived.
	dataDone *simtime.Future
}

// msgSpan opens an async message-lifecycle span on the sender's timeline
// and returns a closure that ends it; done futures complete in event
// context, so the closure is handed to Future.Then. The closure is
// idempotent: a wait abandoned by failure detection closes the span
// immediately, and the no-op second call keeps a transfer that still
// completes afterwards from double-ending it. Returns nil when
// observability is off.
func (r *Rank) msgSpan(kind string, dst int, bytes int64) func() {
	b := r.world.obs
	if b == nil {
		return nil
	}
	name := fmt.Sprintf("%s %s %d→%d", kind, obs.SizeLabel(bytes), r.id, dst)
	args := map[string]any{"src": r.id, "dst": dst, "bytes": bytes}
	id := b.AsyncBegin(r.track, "mpi", name, args)
	ended := false
	return func() {
		if ended {
			return
		}
		ended = true
		b.AsyncEnd(r.track, "mpi", name, id)
	}
}

// pendingRecv is a posted receive awaiting its match.
type pendingRecv struct {
	src, tag int
	match    *simtime.Future
	msg      *inMsg
}

// mailbox holds a rank's unexpected-message and posted-receive queues.
// Matching is FIFO on (src, tag); collectives disambiguate rounds through
// tags, preserving MPI's non-overtaking guarantee.
type mailbox struct {
	unexpected fifo[*inMsg]
	pending    fifo[*pendingRecv]
}

// deliver runs in event context when a message (eager payload or RTS)
// reaches dst's node: match a posted receive or queue as unexpected.
func (w *World) deliver(dst int, m *inMsg) {
	// Every delivery is forward progress for the no-progress watchdog,
	// including one that vanishes at a dead rank (the fabric moved data).
	w.eng.Progress()
	if w.isDead(dst) {
		// Crash-stop: the dead rank's HCA is gone; the message vanishes
		// instead of matching. Senders blocked on the outcome detect the
		// failure through awaitFT.
		if b := w.obs; b != nil {
			b.Add(obs.CtrFaultMsgsToDead, 1)
		}
		w.putMsg(m)
		return
	}
	// Progress beacon, piggybacked on a message that arrived anyway: a
	// rank still receiving traffic is distinguishable from one wedged.
	w.sb.beat(dst)
	box := &w.ranks[dst].box
	for i := 0; i < box.pending.len(); i++ {
		pr := box.pending.at(i)
		if pr.src == m.src && pr.tag == m.tag {
			box.pending.removeAt(i)
			pr.msg = m
			pr.match.Complete()
			if m.kind == rtsMsg {
				w.sendCTS(m.snd)
			}
			return
		}
	}
	box.unexpected.push(m)
}

// wireBytes derates payload size in blocking mode: interrupt-driven
// progression keeps the pipeline only partially full, so the same payload
// occupies the wire longer.
func (w *World) wireBytes(bytes int64) int64 {
	if w.cfg.Mode == Blocking && bytes > 0 {
		return int64(float64(bytes) / w.cfg.BlockingDerate)
	}
	return bytes
}

// hostCost is the CPU-side per-byte handling time for inter-node payloads
// at full speed; busySleep scales it by the current core slowdown.
func (w *World) hostCost(bytes int64) simtime.Duration {
	return simtime.DurationOf(float64(bytes) / w.cfg.HostBytesPerSec)
}

// sendCTS runs in event context when a rendezvous RTS has been matched:
// notify the sender (shared-memory path) or trigger the payload transfer
// (network path).
func (w *World) sendCTS(st *sendState) {
	if w.isDead(st.src) {
		// The sender died between posting the RTS and the match: no CPU
		// is left to observe the CTS or feed the HCA, so the transfer
		// never starts and the receiver's wait detects the failure.
		return
	}
	if st.intraShm {
		// The receiver's match flag flips in shared memory; the
		// sender observes it after a notification delay.
		w.eng.After(w.cfg.IntraStartup, func() { st.cts.Complete() })
		return
	}
	w.netFlow(fault.CTS, st.dst, st.src, 0, st.seq, func() {
		// Payload injection: the sender-side CPU feeds the HCA at a
		// rate set by its *current* speed (a throttled sender injects
		// slower — the mechanism behind the paper's Cthrottle).
		inj := simtime.DurationOf(w.hostCost(st.bytes).Seconds() / w.ranks[st.src].copySpeed())
		w.eng.After(inj, func() {
			w.netFlow(fault.Data, st.src, st.dst, w.wireBytes(st.bytes), st.seq,
				func() { st.dataDone.Complete() })
		})
	})
}

// Isend starts a nonblocking send of bytes to global rank dst. The send
// follows the eager protocol at or below the eager threshold (local
// completion after injection) and RTS/CTS rendezvous above it. The
// returned request must be completed with Wait by this rank. Invalid
// arguments return an already-done request whose Err reports the
// mistake, MPI-error-handler style.
func (r *Rank) Isend(dst int, bytes int64, tag int) *Request {
	w := r.world
	if dst < 0 || dst >= w.cfg.NProcs {
		return errorRequest(r, fmt.Errorf("mpi: Isend to invalid rank %d (job has %d)",
			dst, w.cfg.NProcs))
	}
	if bytes < 0 {
		return errorRequest(r, fmt.Errorf("mpi: Isend with negative size %d", bytes))
	}
	if r.sendSeq == nil {
		r.sendSeq = make(map[int]uint64)
	}
	r.sendSeq[dst]++
	seq := r.sendSeq[dst]
	// Send-side progress beacon (piggybacked — no extra message, no
	// virtual time): initiating traffic is evidence the rank is alive
	// and moving, whatever its speed.
	w.sb.beat(r.id)

	// Shared memory is only usable with polling progression (§II-B);
	// blocking mode falls back to the HCA loopback, handled by the
	// network path below (the fabric routes src==dst via loopback).
	if w.place.SameNode(r.id, dst) && w.cfg.Mode == Polling {
		r.busySleep(w.cfg.IntraStartup)
		w.countShm(bytes, bytes > w.cfg.EagerThreshold)
		if bytes <= w.cfg.EagerThreshold {
			// Double copy: sender writes the shared region now;
			// the receiver copies out on pickup.
			r.copySleep(w.cfg.Shm.CopyTime(bytes, 1.0))
			arr := w.eng.GetFuture()
			arr.Complete()
			if b := w.obs; b != nil {
				b.Instant(r.track, fmt.Sprintf("eager-shm %s %d→%d",
					obs.SizeLabel(bytes), r.id, dst), nil)
			}
			m := w.getMsg()
			m.src, m.tag, m.seq, m.bytes = r.id, tag, seq, bytes
			m.kind, m.intraShm, m.arrived = eagerMsg, true, arr
			w.deliver(dst, m)
			return completedRequest(r)
		}
		// Rendezvous single copy: wait for the match, then copy
		// straight into the receiver's buffer.
		st := &sendState{
			src: r.id, dst: dst, bytes: bytes, intraShm: true,
			cts:      simtime.NewFuture(w.eng),
			dataDone: simtime.NewFuture(w.eng),
		}
		end := r.msgSpan("rdv-shm", dst, bytes)
		if end != nil {
			st.dataDone.Then(end)
		}
		m := w.getMsg()
		m.src, m.tag, m.seq, m.bytes = r.id, tag, seq, bytes
		m.kind, m.snd = rtsMsg, st
		w.eng.After(w.cfg.IntraStartup, func() { w.deliver(dst, m) })
		q := w.getReq(r)
		q.kind, q.peer, q.bytes, q.st, q.end = reqRdvShm, dst, bytes, st, end
		return q
	}

	// Network path (inter-node, or intra-node loopback in blocking mode).
	r.busySleep(w.cfg.InterStartup)
	w.countNet(bytes, bytes > w.cfg.EagerThreshold)
	if bytes <= w.cfg.EagerThreshold {
		// Injection copy into HCA buffers, then local completion.
		r.copySleep(w.hostCost(bytes))
		arr := w.eng.GetFuture()
		if end := r.msgSpan("eager", dst, bytes); end != nil {
			arr.Then(end)
		}
		m := w.getMsg()
		m.src, m.tag, m.seq, m.bytes = r.id, tag, seq, bytes
		m.kind, m.arrived = eagerMsg, arr
		w.netFlow(fault.Eager, r.id, dst, w.wireBytes(bytes), seq, func() {
			arr.Complete()
			w.deliver(dst, m)
		})
		return completedRequest(r)
	}
	// No cts future: the network rendezvous chains CTS delivery straight
	// into the payload flow inside sendCTS, so only dataDone is observed.
	st := &sendState{
		src: r.id, dst: dst, bytes: bytes, seq: seq,
		dataDone: simtime.NewFuture(w.eng),
	}
	end := r.msgSpan("rdv", dst, bytes)
	if end != nil {
		st.dataDone.Then(end)
	}
	m := w.getMsg()
	m.src, m.tag, m.seq, m.bytes = r.id, tag, seq, bytes
	m.kind, m.snd = rtsMsg, st
	w.netFlow(fault.RTS, r.id, dst, 0, seq, func() { w.deliver(dst, m) })
	q := w.getReq(r)
	q.kind, q.peer, q.bytes, q.st, q.end = reqRdvNet, dst, bytes, st, end
	return q
}

// waitRdvShm progresses a shared-memory rendezvous send: await the CTS
// (optionally at fmin, §VIII), then single-copy into the receiver's
// buffer and complete the transfer.
func (q *Request) waitRdvShm() error {
	r, st := q.r, q.st
	restore := r.p2pScaleDown(st.cts)
	defer restore()
	if err := r.awaitFT(st.cts, "shm rendezvous cts", q.peer, q.comm); err != nil {
		if q.end != nil {
			q.end()
		}
		return err
	}
	r.copySleep(r.world.cfg.Shm.CopyTime(q.bytes, 1.0))
	st.dataDone.Complete()
	return nil
}

// waitRdvNet progresses a network rendezvous send: the HCA handles the
// CTS and payload autonomously, so the wait only observes dataDone.
func (q *Request) waitRdvNet() error {
	if err := q.r.awaitFT(q.st.dataDone, "rendezvous data", q.peer, q.comm); err != nil {
		if q.end != nil {
			q.end()
		}
		return err
	}
	return nil
}

// Irecv posts a nonblocking receive for a message of exactly bytes from
// global rank src with the given tag. Matching happens immediately (in
// event context) so rendezvous handshakes never require the receiver to
// be inside Wait.
func (r *Rank) Irecv(src int, bytes int64, tag int) *Request {
	w := r.world
	if src < 0 || src >= w.cfg.NProcs {
		return errorRequest(r, fmt.Errorf("mpi: Irecv from invalid rank %d (job has %d)",
			src, w.cfg.NProcs))
	}
	if bytes < 0 {
		return errorRequest(r, fmt.Errorf("mpi: Irecv with negative size %d", bytes))
	}
	pr := w.getRecv()
	pr.src, pr.tag, pr.match = src, tag, w.eng.GetFuture()
	box := &r.box
	for i := 0; i < box.unexpected.len(); i++ {
		um := box.unexpected.at(i)
		if um.src == src && um.tag == tag {
			box.unexpected.removeAt(i)
			pr.msg = um
			pr.match.Complete()
			if um.kind == rtsMsg {
				w.sendCTS(um.snd)
			}
			break
		}
	}
	if pr.msg == nil {
		box.pending.push(pr)
	}
	q := w.getReq(r)
	q.kind, q.peer, q.bytes, q.tag, q.pr = reqRecv, src, bytes, tag, pr
	return q
}

// waitRecv progresses a posted receive: await the match, then the
// payload, recycling the mailbox objects on success.
func (q *Request) waitRecv() error {
	r, pr, src, bytes := q.r, q.pr, q.peer, q.bytes
	w := r.world
	// §VIII power-aware p2p: an intra-node rendezvous-sized
	// receive waits at fmin (the wait is event-driven, so only
	// the two DVFS transitions cost time).
	restore := nopRestore
	if w.place.SameNode(r.id, src) && w.cfg.Mode == Polling &&
		bytes > w.cfg.EagerThreshold {
		restore = r.p2pScaleDown(pr.match)
	}
	defer restore()
	if err := r.awaitFT(pr.match, "recv match", src, q.comm); err != nil {
		return err
	}
	m := pr.msg
	if m.bytes != bytes {
		// A protocol bug, not a recoverable fault: surface it
		// through the engine's failure report (like a deadlock or
		// starved flow) and on the request, instead of panicking.
		err := fmt.Errorf("mpi: rank %d recv size mismatch from %d tag %d: posted %d, got %d",
			r.id, src, q.tag, bytes, m.bytes)
		w.eng.Fail(err)
		return err
	}
	switch m.kind {
	case eagerMsg:
		if err := r.awaitFT(m.arrived, "recv payload", src, q.comm); err != nil {
			return err
		}
		if m.intraShm {
			// Copy out of the shared region.
			r.copySleep(w.cfg.Shm.CopyTime(m.bytes, 1.0))
		}
		// The payload future has completed and drained its chained
		// callbacks; the sender's delivery closure has already run.
		w.eng.PutFuture(m.arrived)
	case rtsMsg:
		if err := r.awaitFT(m.snd.dataDone, "recv rendezvous data", src, q.comm); err != nil {
			return err
		}
	}
	// Fully received: the message has left both mailbox queues and
	// this wait body runs at most once, so the receive pair and the
	// match future (completed, unreferenced outside pr) can be
	// recycled. Abandoned or failed waits above leak to the GC.
	w.eng.PutFuture(pr.match)
	w.putMsg(m)
	w.putRecv(pr)
	return nil
}

// Send is a blocking send: Isend followed by Wait. The error reports
// invalid arguments; a well-formed send always returns nil.
func (r *Rank) Send(dst int, bytes int64, tag int) error {
	q := r.Isend(dst, bytes, tag)
	q.Wait()
	return r.world.reapReq(q)
}

// Recv is a blocking receive: Irecv followed by Wait.
func (r *Rank) Recv(src int, bytes int64, tag int) error {
	q := r.Irecv(src, bytes, tag)
	q.Wait()
	return r.world.reapReq(q)
}

// SendRecv exchanges messages with possibly different peers, completing
// both operations before returning (the workhorse of pairwise exchange).
func (r *Rank) SendRecv(dst int, sendBytes int64, src int, recvBytes int64, tag int) error {
	rq := r.Irecv(src, recvBytes, tag)
	sq := r.Isend(dst, sendBytes, tag)
	sq.Wait()
	rq.Wait()
	serr := r.world.reapReq(sq)
	rerr := r.world.reapReq(rq)
	if serr != nil {
		return serr
	}
	return rerr
}
