package mpi

// fifo is a head-indexed FIFO used for the mailbox queues. Popping the
// head — the dominant operation, since MPI matching is FIFO on
// (src, tag) and most matches hit the front — is O(1) pointer work with
// no slice shift; only a match in the middle pays a copy-shift, which is
// required anyway to preserve non-overtaking order. The backing array is
// reused across drain cycles, so a steady-state mailbox never allocates.
type fifo[T any] struct {
	items []T
	head  int
}

func (q *fifo[T]) push(v T) { q.items = append(q.items, v) }

func (q *fifo[T]) len() int { return len(q.items) - q.head }

// at indexes live entries: 0 is the oldest.
func (q *fifo[T]) at(i int) T { return q.items[q.head+i] }

// removeAt deletes the i-th live entry, preserving the order of the
// rest. Removed and vacated slots are zeroed so the queue never pins a
// pooled object.
func (q *fifo[T]) removeAt(i int) {
	var zero T
	if i == 0 {
		q.items[q.head] = zero
		q.head++
		if q.head == len(q.items) {
			// Drained: rewind to reuse the full capacity.
			q.items = q.items[:0]
			q.head = 0
		} else if q.head > 64 && q.head*2 >= len(q.items) {
			// Mostly-dead prefix: compact so the array stops growing.
			n := copy(q.items, q.items[q.head:])
			for j := n; j < len(q.items); j++ {
				q.items[j] = zero
			}
			q.items = q.items[:n]
			q.head = 0
		}
		return
	}
	at := q.head + i
	copy(q.items[at:], q.items[at+1:])
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
}

// Mailbox object pools. Every point-to-point message allocates an inMsg
// on the send side and (usually) a pendingRecv on the receive side;
// at 4k+ ranks that is the single largest garbage source in the
// runtime. Both structs have exactly one owner at their end of life —
// an inMsg is held only by pendingRecv.msg once matched (it has left
// both mailbox queues), and a pendingRecv only by its receive request's
// wait closure, which runs at most once (Request.Wait is idempotent) —
// so they are recycled at the two points proven single-release: the
// successful end of a receive wait, and the dead-rank drop in deliver.
// Error paths deliberately leak to the GC: correctness over reuse.
// sendState and Futures are NOT pooled — a sendState is referenced from
// both the wire message and the sender's wait closure, and a Future's
// one-shot Complete invariant makes reuse a protocol hazard.

func (w *World) getMsg() *inMsg {
	if n := len(w.freeMsgs); n > 0 {
		m := w.freeMsgs[n-1]
		w.freeMsgs = w.freeMsgs[:n-1]
		return m
	}
	return new(inMsg)
}

func (w *World) putMsg(m *inMsg) {
	*m = inMsg{}
	w.freeMsgs = append(w.freeMsgs, m)
}

func (w *World) getRecv() *pendingRecv {
	if n := len(w.freeRecvs); n > 0 {
		pr := w.freeRecvs[n-1]
		w.freeRecvs = w.freeRecvs[:n-1]
		return pr
	}
	return new(pendingRecv)
}

func (w *World) putRecv(pr *pendingRecv) {
	*pr = pendingRecv{}
	w.freeRecvs = append(w.freeRecvs, pr)
}
