package mpi

import (
	"encoding/json"
	"fmt"
	"os"

	"pacc/internal/power"
)

// MarshalJSON-friendly persistence for configurations: every field of
// Config and its nested structs is a plain value (durations are
// nanosecond integers), so the standard encoder round-trips it. These
// helpers add validation and a default power model on load.

// ConfigToJSON renders cfg as indented JSON.
func ConfigToJSON(cfg Config) ([]byte, error) {
	return json.MarshalIndent(cfg, "", "  ")
}

// ConfigFromJSON parses and validates a configuration. Absent fields
// keep their zero values except the power model, which defaults when
// null so that hand-written files may omit it.
func ConfigFromJSON(data []byte) (Config, error) {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("mpi: parsing config: %w", err)
	}
	if cfg.Power == nil {
		cfg.Power = power.DefaultModel()
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// SaveConfig writes cfg to a JSON file.
func SaveConfig(path string, cfg Config) error {
	data, err := ConfigToJSON(cfg)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadConfig reads and validates a JSON configuration file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	return ConfigFromJSON(data)
}
