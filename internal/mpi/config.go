// Package mpi implements an MPI-like message-passing runtime on top of the
// simulation substrates: ranks are cooperative simulated processes bound
// to cores, exchanging point-to-point messages over the InfiniBand fabric
// (inter-node) or the shared-memory channel (intra-node), with eager and
// rendezvous protocols and MVAPICH2's two progression modes.
//
// In "polling" mode a waiting rank spins — its core stays busy and draws
// full power — and intra-node traffic uses shared memory. In "blocking"
// mode a waiting rank yields the CPU (idle power), pays an interrupt plus
// reschedule latency per wakeup, intra-node traffic falls back to the HCA
// loopback path, and interrupt-driven progression derates achievable
// bandwidth. These are the trade-offs of §II-B and Figure 6.
package mpi

import (
	"fmt"

	"pacc/internal/fault"
	"pacc/internal/network"
	"pacc/internal/power"
	"pacc/internal/shm"
	"pacc/internal/simtime"
	"pacc/internal/topology"
)

// ProgressionMode selects how ranks wait for messages.
type ProgressionMode int

const (
	// Polling spins on completion flags: lowest latency, core fully
	// busy while waiting. MVAPICH2's default.
	Polling ProgressionMode = iota
	// Blocking yields the CPU and waits for an HCA interrupt.
	Blocking
)

func (m ProgressionMode) String() string {
	switch m {
	case Polling:
		return "polling"
	case Blocking:
		return "blocking"
	default:
		return fmt.Sprintf("ProgressionMode(%d)", int(m))
	}
}

// Config assembles a complete simulated MPI job.
type Config struct {
	Topo  topology.Config
	Net   network.Config
	Shm   shm.Config
	Power *power.Model

	NProcs int
	PPN    int
	Bind   topology.BindPolicy
	Mode   ProgressionMode

	// EagerThreshold is the message size at or below which sends
	// complete locally after injection (eager protocol); larger
	// messages use an RTS/CTS rendezvous.
	EagerThreshold int64
	// InterStartup is the CPU-side cost to initiate one inter-node
	// message (descriptor preparation, protocol bookkeeping). Scales
	// with 1/speed of the initiating core.
	InterStartup simtime.Duration
	// IntraStartup is the CPU-side cost of intra-node match/notify
	// operations. Scales with 1/speed.
	IntraStartup simtime.Duration
	// HostBytesPerSec is the CPU-side per-byte processing rate for
	// inter-node payloads (buffer handling that is not overlapped with
	// the DMA). It scales with core speed, which is how DVFS and
	// throttling stretch the network phases of collectives (the
	// paper's Cthrottle).
	HostBytesPerSec float64
	// InterruptLatency is the interrupt + OS reschedule cost paid per
	// wakeup in blocking mode.
	InterruptLatency simtime.Duration
	// BlockingDerate in (0,1] scales effective network bandwidth in
	// blocking mode: interrupt-driven progression cannot keep the
	// pipeline full. 1 means no derating.
	BlockingDerate float64
	// PowerAwareP2P enables the paper's §VIII intra-node point-to-point
	// direction: ranks waiting on an intra-node rendezvous scale their
	// own core to fmin for the wait (core-granular DVFS) and restore it
	// afterwards. The transition is skipped when the core is already
	// below fmax (a power-aware collective is managing it).
	PowerAwareP2P bool
	// InterruptEvery sets how often RunContext polls the context for
	// cancellation, in executed events (0 selects the engine default).
	// Lower values bound abort latency more tightly at the cost of one
	// extra check per that many events; 1 checks before every event.
	InterruptEvery int
	// Fault, when non-nil, attaches the deterministic fault injector:
	// scheduled link degradation, message loss with IB-style
	// retransmission, straggler ranks, and slow P/T-state transitions.
	// Nil (the default) runs the happy path with zero overhead.
	Fault *fault.Spec
	// FailSlowDetect arms the gray-failure detection layer (per-rank
	// progress scoreboards and compute-lag EWMAs; see scoreboard.go) even
	// without a fault spec. It is armed automatically when the fault spec
	// schedules slow= windows or stickfail= transition loss. Detection is
	// pure bookkeeping — piggybacked beacons and ratio accounting — so
	// arming it does not change simulated timing.
	FailSlowDetect bool
	// SuspectThreshold is the smoothed compute-lag factor at or above
	// which a rank is suspected as fail-slow. Zero selects
	// DefaultSuspectThreshold; values in (0,1] are invalid (lag 1 is
	// healthy by definition).
	SuspectThreshold float64
	// WatchdogTimeout, when positive, arms the engine's no-progress
	// watchdog: if virtual time advances this far beyond the last message
	// delivery, the run aborts with a structured diagnostic dump (blocked
	// ranks, per-rank progress and lag, open trace spans) instead of
	// grinding in a livelock.
	WatchdogTimeout simtime.Duration
}

// DefaultConfig returns a job shaped like the paper's testbed runs:
// 64 ranks, 8 per node, bunch binding, polling progression.
func DefaultConfig() Config {
	return Config{
		Topo:             topology.DefaultConfig(),
		Net:              network.DefaultConfig(),
		Shm:              shm.DefaultConfig(),
		Power:            power.DefaultModel(),
		NProcs:           64,
		PPN:              8,
		Bind:             topology.BindBunch,
		Mode:             Polling,
		EagerThreshold:   16 << 10,
		InterStartup:     simtime.Micros(2.0),
		IntraStartup:     simtime.Micros(0.5),
		HostBytesPerSec:  32e9,
		InterruptLatency: simtime.Micros(12),
		BlockingDerate:   0.65,
	}
}

// Validate checks the whole configuration tree.
func (c Config) Validate() error {
	if err := c.Topo.Validate(); err != nil {
		return err
	}
	if err := c.Net.Validate(); err != nil {
		return err
	}
	if err := c.Shm.Validate(); err != nil {
		return err
	}
	if c.Power == nil {
		return fmt.Errorf("mpi: nil power model")
	}
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if c.EagerThreshold < 0 {
		return fmt.Errorf("mpi: negative EagerThreshold")
	}
	if c.HostBytesPerSec <= 0 {
		return fmt.Errorf("mpi: HostBytesPerSec must be positive, got %g", c.HostBytesPerSec)
	}
	if c.InterruptLatency < 0 || c.InterStartup < 0 || c.IntraStartup < 0 {
		return fmt.Errorf("mpi: negative latency constant")
	}
	if c.BlockingDerate <= 0 || c.BlockingDerate > 1 {
		return fmt.Errorf("mpi: BlockingDerate %g outside (0,1]", c.BlockingDerate)
	}
	if c.InterruptEvery < 0 {
		return fmt.Errorf("mpi: negative InterruptEvery")
	}
	if c.Mode != Polling && c.Mode != Blocking {
		return fmt.Errorf("mpi: unknown progression mode %d", int(c.Mode))
	}
	if c.Fault != nil {
		if err := c.Fault.Validate(); err != nil {
			return fmt.Errorf("mpi: fault spec: %w", err)
		}
		for _, st := range c.Fault.Stragglers {
			if st.Rank >= c.NProcs {
				return fmt.Errorf("mpi: fault straggler rank %d outside job of %d ranks",
					st.Rank, c.NProcs)
			}
		}
		for _, cr := range c.Fault.Crashes {
			if cr.Rank >= c.NProcs {
				return fmt.Errorf("mpi: fault crash rank %d outside job of %d ranks",
					cr.Rank, c.NProcs)
			}
		}
		for _, sl := range c.Fault.Slows {
			if sl.Rank >= c.NProcs {
				return fmt.Errorf("mpi: fault slow rank %d outside job of %d ranks",
					sl.Rank, c.NProcs)
			}
		}
	}
	if c.SuspectThreshold != 0 && c.SuspectThreshold <= 1 {
		return fmt.Errorf("mpi: SuspectThreshold %g must exceed 1 (lag 1 is healthy)",
			c.SuspectThreshold)
	}
	if c.WatchdogTimeout < 0 {
		return fmt.Errorf("mpi: negative WatchdogTimeout")
	}
	return nil
}
