package mpi

import (
	"testing"
)

// TestSplitColorGrid: an 8x8 2D decomposition — row and column
// communicators — the pattern distributed FFT transposes use.
func TestSplitColorGrid(t *testing.T) {
	cfg := DefaultConfig() // 64 ranks
	w := mustWorld(t, cfg)
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		row := c.SplitColor(
			func(cr int) int { return cr / 8 },
			func(cr int) int { return cr % 8 },
		)
		col := c.SplitColor(
			func(cr int) int { return cr % 8 },
			func(cr int) int { return cr / 8 },
		)
		if row == nil || col == nil {
			t.Errorf("rank %d: nil sub-communicator", r.ID())
			return
		}
		if row.Size() != 8 || col.Size() != 8 {
			t.Errorf("rank %d: row %d col %d, want 8x8", r.ID(), row.Size(), col.Size())
		}
		if row.Rank() != r.ID()%8 {
			t.Errorf("rank %d: row rank %d", r.ID(), row.Rank())
		}
		if col.Rank() != r.ID()/8 {
			t.Errorf("rank %d: col rank %d", r.ID(), col.Rank())
		}
		// Exchange within the row: ring shift by one.
		right := (row.Rank() + 1) % row.Size()
		left := (row.Rank() - 1 + row.Size()) % row.Size()
		tag := row.TagBlock()
		rq := row.Irecv(left, 4096, tag)
		sq := row.Isend(right, 4096, tag)
		WaitAll(sq, rq)
		// And within the column.
		up := (col.Rank() + 1) % col.Size()
		down := (col.Rank() - 1 + col.Size()) % col.Size()
		ctag := col.TagBlock()
		crq := col.Irecv(down, 4096, ctag)
		csq := col.Isend(up, 4096, ctag)
		WaitAll(csq, crq)
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSplitColorUndefined: negative color drops the rank out, and the
// remaining communicators still work.
func TestSplitColorUndefined(t *testing.T) {
	cfg := testConfig() // 4 ranks
	w := mustWorld(t, cfg)
	var sizes [4]int
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		sub := c.SplitColor(
			func(cr int) int {
				if cr == 3 {
					return -1
				}
				return 0
			},
			func(cr int) int { return cr },
		)
		if r.ID() == 3 {
			if sub != nil {
				t.Errorf("rank 3 should be excluded")
			}
			return
		}
		sizes[r.ID()] = sub.Size()
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if sizes[i] != 3 {
			t.Fatalf("rank %d sub size %d, want 3", i, sizes[i])
		}
	}
}

// TestSplitColorKeyOrdering: keys reorder the new communicator.
func TestSplitColorKeyOrdering(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		// Reverse order via keys.
		sub := c.SplitColor(
			func(cr int) int { return 0 },
			func(cr int) int { return -cr },
		)
		want := c.Size() - 1 - r.ID()
		if sub.Rank() != want {
			t.Errorf("rank %d: sub rank %d, want %d", r.ID(), sub.Rank(), want)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPingPong: the osu_latency pattern — rank 0 and a remote rank
// bounce a message; both directions complete and timing is symmetric
// across iterations.
func TestPingPong(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	const iters = 10
	done := false
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < iters; i++ {
				r.Send(2, 4096, i)
				r.Recv(2, 4096, 1000+i)
			}
			done = true
		case 2:
			for i := 0; i < iters; i++ {
				r.Recv(0, 4096, i)
				r.Send(0, 4096, 1000+i)
			}
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("ping-pong did not complete")
	}
}
