package mpi

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"pacc/internal/fault"
	"pacc/internal/network"
	"pacc/internal/obs"
	"pacc/internal/power"
	"pacc/internal/simtime"
	"pacc/internal/topology"
)

// World is one simulated MPI job: the engine, the hardware, and NProcs
// ranks. Build it with NewWorld, hand each rank a body with Launch, and
// execute with Run.
type World struct {
	cfg     Config
	eng     *simtime.Engine
	cluster *topology.Cluster
	place   *topology.Placement
	fabric  *network.Fabric
	station *power.Station
	ledger  *power.Ledger
	ranks   []*Rank
	stats   MsgStats
	// obs, when non-nil, receives cross-layer trace events and metrics;
	// every hot-path producer guards on the nil check.
	obs *obs.Bus
	// inj is the fault injector (nil — inject nothing — without
	// Config.Fault). All its methods are nil-safe.
	inj *fault.Injector
	// retriesExhausted records protocol messages that spent their whole
	// retry budget (lost or ICRC-rejected); Run folds them into the
	// deadlock report so a lost rendezvous surfaces as a diagnosable
	// failure, not a bare hang, and wraps the first so errors.As can
	// recover the typed IntegrityError.
	retriesExhausted []*IntegrityError
	// wire is the value side channel pairing SendValue payloads with
	// RecvValue pickups (see fault.go).
	wire map[wireKey][]float64
	// ft is the crash-stop failure machinery (nil until armed by a crash
	// schedule or first use of the ULFM-style API; see crash.go). Nil
	// keeps every wait on the historical code path.
	ft *ftState
	// freeMsgs / freeRecvs / freeReqs recycle mailbox and request
	// objects (see queue.go, request.go); the world is single-threaded
	// in event context, so plain slices suffice.
	freeMsgs  []*inMsg
	freeRecvs []*pendingRecv
	freeReqs  []*Request
	// stash is the job-wide memo space for layers above mpi (the
	// collective package caches built communication plans here, keyed by
	// communicator shape). Rank bodies run one at a time in event
	// context, so a plain map suffices.
	stash map[string]any
	// worldGroup is the identity group [0..NProcs) shared by every
	// rank's CommWorld handle (immutable once built; see CommWorld).
	worldGroup []int
	// sb is the fail-slow detection scoreboard (nil — detection disarmed —
	// unless Config.FailSlowDetect or a fault spec with slow= / stickfail=
	// clauses arms it; see scoreboard.go). Nil keeps the hot paths on the
	// historical code, mirroring the obs/inj/ft pattern.
	sb *scoreboard
}

// NewWorld validates cfg and instantiates the cluster, fabric, and power
// domain.
func NewWorld(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cluster, err := topology.NewCluster(cfg.Topo)
	if err != nil {
		return nil, err
	}
	place, err := topology.NewPlacement(cluster, cfg.NProcs, cfg.PPN, cfg.Bind)
	if err != nil {
		return nil, err
	}
	eng := simtime.NewEngine()
	fabric, err := network.NewFabric(eng, cfg.Topo.Nodes, cfg.Net)
	if err != nil {
		return nil, err
	}
	station := power.NewStation(eng, cfg.Power, cfg.Topo.Nodes, cfg.Topo.CoresPerNode())
	w := &World{
		cfg:     cfg,
		eng:     eng,
		cluster: cluster,
		place:   place,
		fabric:  fabric,
		station: station,
	}
	w.ranks = make([]*Rank, cfg.NProcs)
	for id := 0; id < cfg.NProcs; id++ {
		core := station.Core(place.CoreOf(id).Global)
		w.ranks[id] = newRank(w, id, core)
	}
	if cfg.Fault != nil {
		w.inj = fault.NewInjector(cfg.Fault)
		for _, lf := range cfg.Fault.LinkFaults {
			if err := fabric.ScheduleLinkFault(lf.Link, lf.Factor, lf.Start, lf.Duration); err != nil {
				return nil, err
			}
		}
		// Crashes and memory-corruption bursts both need the failure
		// machinery armed before any rank parks in a wait: recovery from
		// either relies on revocation draining already-blocked peers, and
		// a wait entered with the machinery down never learns about it.
		if len(cfg.Fault.Crashes) > 0 || len(cfg.Fault.MemBursts) > 0 {
			w.ftRequire()
		}
		if len(cfg.Fault.Crashes) > 0 {
			for _, cr := range cfg.Fault.CrashSchedule() {
				rank := cr.Rank
				w.eng.At(simtime.Time(0).Add(cr.At), func() { w.crashRank(rank) })
			}
		}
		if cfg.Fault.PStateDelay > 0 || cfg.Fault.TStateDelay > 0 {
			cores := cfg.Topo.Nodes * cfg.Topo.CoresPerNode()
			for g := 0; g < cores; g++ {
				core, in, id := station.Core(g), w.inj, g
				core.SetTransitionDelay(func(dvfs bool) simtime.Duration {
					if dvfs {
						return in.PStateExtra(id)
					}
					return in.TStateExtra(id)
				})
			}
		}
	}
	if cfg.FailSlowDetect || (cfg.Fault != nil &&
		(len(cfg.Fault.Slows) > 0 || cfg.Fault.StickFailProb > 0)) {
		thr := cfg.SuspectThreshold
		if thr == 0 {
			thr = DefaultSuspectThreshold
		}
		w.sb = newScoreboard(cfg.NProcs, thr)
	}
	if cfg.WatchdogTimeout > 0 {
		eng.SetWatchdog(cfg.WatchdogTimeout, w.watchdogDiag)
	}
	return w, nil
}

// watchdogDiag assembles the structured no-progress dump attached to a
// *simtime.WatchdogError: the detection layer's per-rank view (lag EWMAs,
// beat counts, current suspects), in-flight network flows, and any trace
// spans left open — enough to tell a wedged power transition from a lost
// rendezvous without re-running under a debugger.
func (w *World) watchdogDiag() string {
	var b strings.Builder
	if w.sb != nil {
		fmt.Fprintf(&b, "suspects: %v\n", w.SuspectedRanks())
		for id := range w.ranks {
			if w.sb.ewma[id] != 1 || w.isDead(id) {
				state := ""
				if w.isDead(id) {
					state = " dead"
				}
				fmt.Fprintf(&b, "rank %d: lag %.2f, %d beats%s\n",
					id, w.sb.ewma[id], w.sb.beats[id], state)
			}
		}
	}
	if n := w.fabric.ActiveFlows(); n > 0 {
		fmt.Fprintf(&b, "in-flight flows: %d\n", n)
	}
	if w.obs != nil {
		for track, open := range w.obs.UnbalancedAsyncs(nil) {
			fmt.Fprintf(&b, "open spans on track %v: %s\n", track, strings.Join(open, ", "))
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// Injector returns the attached fault injector, or nil (a valid,
// inject-nothing injector).
func (w *World) Injector() *fault.Injector { return w.inj }

// Config returns the job configuration.
func (w *World) Config() Config { return w.cfg }

// Engine returns the simulation engine.
func (w *World) Engine() *simtime.Engine { return w.eng }

// Placement returns the rank-to-core binding.
func (w *World) Placement() *topology.Placement { return w.place }

// Fabric returns the network.
func (w *World) Fabric() *network.Fabric { return w.fabric }

// Station returns the cluster power domain.
func (w *World) Station() *power.Station { return w.station }

// Rank returns the rank object with the given id (valid after NewWorld).
func (w *World) Rank(id int) *Rank { return w.ranks[id] }

// Stash returns the world's memo map, for caching derived structures
// whose lifetime matches the job (communication plans, for example).
// Callers run in event context (one rank at a time), so no locking is
// needed; entries must be immutable once stored, since every rank may
// read them.
func (w *World) Stash() map[string]any {
	if w.stash == nil {
		w.stash = map[string]any{}
	}
	return w.stash
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// AttachLedger attributes all core energy to the given ledger's phases.
func (w *World) AttachLedger(l *power.Ledger) {
	w.ledger = l
	w.station.AttachLedger(l)
}

// Ledger returns the attached ledger, or nil.
func (w *World) Ledger() *power.Ledger { return w.ledger }

// AttachObs routes the job's observability events — MPI message
// lifecycle, wait times, P/T-state transitions, and (through the fabric)
// network flows and link utilization — into the given bus. Call before
// Launch. Collective phase spans are emitted by the collective package
// through Obs.
func (w *World) AttachObs(b *obs.Bus) {
	w.obs = b
	w.fabric.SetObs(b)
	if b == nil {
		return
	}
	for n := 0; n < w.cfg.Topo.Nodes; n++ {
		b.SetProcessName(n, fmt.Sprintf("node %d", n))
	}
	b.SetProcessName(obs.PIDNetwork, "network")
	for _, r := range w.ranks {
		b.SetThreadName(r.track, fmt.Sprintf("rank %d", r.id))
		// The bind instant ties the rank's timeline to its core's power
		// timeline; energy attribution joins the two through it.
		b.Instant(r.track, "bind", map[string]any{
			"core": w.place.CoreOf(r.id).Global,
			"node": w.place.NodeOf(r.id),
		})
	}
}

// Obs returns the attached observability bus, or nil (a valid, disabled
// bus).
func (w *World) Obs() *obs.Bus { return w.obs }

// Launch spawns every rank with the given SPMD body. The body runs with
// the rank's core marked busy; the core goes idle when the body returns.
// Launch may be called once per World.
func (w *World) Launch(body func(r *Rank)) {
	for _, r := range w.ranks {
		rank := r
		rank.proc = w.eng.Spawn(fmt.Sprintf("rank%d", rank.id), func(p *simtime.Proc) {
			// A rank crashed at t=0 dies before its body runs; a rank
			// crashed mid-run unwinds out of body via the Killed panic
			// (recovered in Spawn), with crashRank having idled the core.
			if w.isDead(rank.id) {
				return
			}
			rank.core.SetBusy(true)
			body(rank)
			rank.core.SetBusy(false)
		})
	}
}

// Run executes the simulation until all ranks finish and returns the
// total elapsed virtual time.
func (w *World) Run() (simtime.Duration, error) {
	return w.RunContext(context.Background())
}

// RunContext is Run under a context: a cancellation or deadline aborts
// the simulation cleanly — the engine stops between events, every
// still-parked rank goroutine is unwound, and the error is a typed
// *CanceledError wrapping ctx.Err() (so errors.Is against
// context.Canceled / context.DeadlineExceeded classifies it). The world
// must be discarded after an abort. A context that can never be
// canceled (context.Background()) adds no per-event work, keeping the
// historical Run path byte-identical.
func (w *World) RunContext(ctx context.Context) (simtime.Duration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			// Already dead on arrival: unwind the launched ranks and
			// report without executing a single event.
			w.eng.KillLive()
			return 0, &CanceledError{At: w.eng.Now(), Cause: err}
		}
		w.eng.SetInterrupt(ctx.Err, w.cfg.InterruptEvery)
		defer w.eng.SetInterrupt(nil, 0)
	}
	if _, err := w.eng.Run(simtime.Infinity); err != nil {
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			w.eng.KillLive()
			return 0, &CanceledError{At: w.eng.Now(), Cause: cerr}
		}
		var dl *simtime.DeadlockError
		if len(w.retriesExhausted) > 0 && errors.As(err, &dl) {
			// The hang has a known root cause: messages that spent
			// their whole retry budget. Name them alongside the
			// blocked waits, wrapping the first typed record.
			rest := make([]string, 0, len(w.retriesExhausted)-1)
			for _, e := range w.retriesExhausted[1:] {
				rest = append(rest, e.Error())
			}
			tail := ""
			if len(rest) > 0 {
				tail = "; " + strings.Join(rest, "; ")
			}
			return 0, fmt.Errorf("mpi: %d message(s) exhausted their retry budget (%w%s): %w",
				len(w.retriesExhausted), w.retriesExhausted[0], tail, err)
		}
		return 0, err
	}
	return simtime.Duration(w.eng.Now()), nil
}
