package mpi

import (
	"errors"
	"fmt"
)

// PeerFailedError reports that a blocking wait could not complete because
// the peer rank died (crash-stop) and the failure detector flagged it
// after the detection timeout. It is the MPI_ERR_PROC_FAILED of the
// ULFM-style recovery layer: the caller's communicator is still usable
// toward live members, but the operation against the dead peer is lost.
type PeerFailedError struct {
	// Peer is the global rank id of the dead peer.
	Peer int
	// Op names the wait that detected the failure.
	Op string
}

func (e *PeerFailedError) Error() string {
	return fmt.Sprintf("mpi: peer rank %d failed (detected in %s)", e.Peer, e.Op)
}

// CommRevokedError reports an operation on (or interrupted by the
// revocation of) a revoked communicator — the MPI_ERR_REVOKED of the
// recovery layer. Revocation is how one member that observed a failure
// forces every other member out of its blocking waits so the group can
// reach the agreement step together.
type CommRevokedError struct {
	// Comm is the communicator's tag-space id.
	Comm int
	// Op names the operation or wait the revocation interrupted.
	Op string
}

func (e *CommRevokedError) Error() string {
	return fmt.Sprintf("mpi: communicator %d revoked (in %s)", e.Comm, e.Op)
}

// IsFailure reports whether err stems from a rank failure or a revoked
// communicator — the error class a ULFM-style recovery path handles by
// revoking, agreeing on the failed set, shrinking, and retrying. Other
// errors (argument mistakes, protocol bugs) are not recoverable this way.
func IsFailure(err error) bool {
	var pf *PeerFailedError
	var cr *CommRevokedError
	return errors.As(err, &pf) || errors.As(err, &cr)
}
