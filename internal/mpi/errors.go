package mpi

import (
	"errors"
	"fmt"

	"pacc/internal/simtime"
)

// PeerFailedError reports that a blocking wait could not complete because
// the peer rank died (crash-stop) and the failure detector flagged it
// after the detection timeout. It is the MPI_ERR_PROC_FAILED of the
// ULFM-style recovery layer: the caller's communicator is still usable
// toward live members, but the operation against the dead peer is lost.
type PeerFailedError struct {
	// Peer is the global rank id of the dead peer.
	Peer int
	// Op names the wait that detected the failure.
	Op string
}

func (e *PeerFailedError) Error() string {
	return fmt.Sprintf("mpi: peer rank %d failed (detected in %s)", e.Peer, e.Op)
}

// CommRevokedError reports an operation on (or interrupted by the
// revocation of) a revoked communicator — the MPI_ERR_REVOKED of the
// recovery layer. Revocation is how one member that observed a failure
// forces every other member out of its blocking waits so the group can
// reach the agreement step together.
type CommRevokedError struct {
	// Comm is the communicator's tag-space id.
	Comm int
	// Op names the operation or wait the revocation interrupted.
	Op string
}

func (e *CommRevokedError) Error() string {
	return fmt.Sprintf("mpi: communicator %d revoked (in %s)", e.Comm, e.Op)
}

// CanceledError reports a simulation aborted by its context — an
// explicit cancellation or an expired deadline — before the job
// finished. At is the virtual time the abort was observed; Cause is the
// context's error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) both classify it. The world
// is unusable after an abort: every rank goroutine has been unwound.
type CanceledError struct {
	// At is the virtual time at which the run was interrupted.
	At simtime.Time
	// Cause is context.Canceled or context.DeadlineExceeded.
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("mpi: run aborted at %v: %v", e.At, e.Cause)
}

// Unwrap exposes the context error for errors.Is classification.
func (e *CanceledError) Unwrap() error { return e.Cause }

// IsFailure reports whether err stems from a rank failure or a revoked
// communicator — the error class a ULFM-style recovery path handles by
// revoking, agreeing on the failed set, shrinking, and retrying. Other
// errors (argument mistakes, protocol bugs) are not recoverable this way.
func IsFailure(err error) bool {
	var pf *PeerFailedError
	var cr *CommRevokedError
	return errors.As(err, &pf) || errors.As(err, &cr)
}
