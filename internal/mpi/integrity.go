package mpi

import (
	"errors"
	"fmt"

	"pacc/internal/fault"
)

// This file is the transport's end-to-end data-integrity surface. The
// simulated fabric models InfiniBand's invariant CRC (ICRC): every
// protocol message carries a checksum computed at send and verified at
// delivery. An injected in-flight bit flip therefore never reaches the
// application — the receiver discards the payload and NACKs the sender,
// which retransmits under the ordinary retry budget and backoff (see
// netFlow in fault.go). What the transport cannot see is corruption that
// happens after delivery, in memory (fault.MemBurst); catching that is
// the job of the ABFT-checked collectives built on the multi-lane wire
// board below.

// IntegrityError reports one protocol message that exhausted its retry
// budget and was never delivered — whether the attempts were lost
// outright or delivered-but-rejected by the ICRC check. The simulation
// ends in a deadlock whose report names these messages; errors.As
// recovers the first of them from World.Run's error.
type IntegrityError struct {
	// Class is the protocol message class (eager, rts, cts, data).
	Class fault.MsgClass
	// Src, Dst are global rank ids.
	Src, Dst int
	// Seq is the message sequence number within the (src,dst) pair.
	Seq uint64
	// Attempts is how many delivery attempts were made.
	Attempts int
	// Corrupted reports whether the final attempt was an ICRC reject
	// (false: the attempt was lost without a trace).
	Corrupted bool
}

func (e *IntegrityError) Error() string {
	// The bare "class src→dst" rendering is shared with the pre-existing
	// retry-exhaustion report in World.Run, which wraps it with context.
	s := fmt.Sprintf("%v %d→%d seq %d after %d attempts", e.Class, e.Src, e.Dst, e.Seq, e.Attempts)
	if e.Corrupted {
		s += " (icrc reject)"
	}
	return s
}

// IsIntegrity reports whether err stems from data corruption the
// integrity machinery detected: a transport message undeliverable within
// its retry budget. Algorithm-level (ABFT) verification failures have
// their own types in the collective and plan packages; pacc.IsIntegrity
// unifies all of them.
func IsIntegrity(err error) bool {
	var ie *IntegrityError
	return errors.As(err, &ie)
}

// tstateDepth returns the current T-state depth of a rank's core: the
// sender-side clock-throttle level the fault injector couples in-flight
// corruption rates to (Spec.TStateErrFactor).
func (w *World) tstateDepth(rank int) int {
	return int(w.ranks[rank].core.Throttle())
}

// SendValues is SendValue carrying several payload lanes on one simulated
// message; the matching RecvValues dequeues them in order. Checked (ABFT)
// collectives ride a checksum shadow on a second lane without changing
// the message schedule — one lane is exactly SendValue.
func (r *Rank) SendValues(dst int, bytes int64, tag int, vs ...float64) error {
	q := r.Isend(dst, bytes, tag)
	if q.Err() != nil {
		return q.Err()
	}
	for _, v := range vs {
		r.world.putWire(r.id, dst, tag, v)
	}
	q.Wait()
	return r.world.reapReq(q)
}

// RecvValues is Recv returning the n lanes the matching SendValues
// attached.
func (r *Rank) RecvValues(src int, bytes int64, tag, n int) ([]float64, error) {
	q := r.Irecv(src, bytes, tag)
	if q.Err() != nil {
		return nil, q.Err()
	}
	q.Wait()
	if err := r.world.reapReq(q); err != nil {
		return nil, err
	}
	return r.takeWires(src, tag, n)
}

// takeWires dequeues n wire-board lanes of an already-received message.
// The returned slice aliases a per-rank scratch buffer and is valid only
// until this rank's next lane pickup; every consumer folds the lanes
// into its own state immediately (redOf), so the reuse is invisible.
func (r *Rank) takeWires(src, tag, n int) ([]float64, error) {
	if cap(r.wireBuf) < n {
		r.wireBuf = make([]float64, n)
	}
	out := r.wireBuf[:n]
	for i := range out {
		v, ok := r.world.takeWire(src, r.id, tag)
		if !ok {
			return nil, fmt.Errorf("mpi: rank %d: no wire value (lane %d of %d) from %d tag %d",
				r.id, i, n, src, tag)
		}
		out[i] = v
	}
	return out, nil
}

// SendValues is Rank.SendValues addressed by communicator rank
// (failure-aware like every communicator operation).
func (c *Comm) SendValues(dst int, bytes int64, tag int, vs ...float64) error {
	q := c.Isend(dst, bytes, tag)
	if q.Err() != nil {
		return q.Err()
	}
	for _, v := range vs {
		c.r.world.putWire(c.r.id, c.group[dst], tag, v)
	}
	q.Wait()
	return c.r.world.reapReq(q)
}

// RecvValues is Rank.RecvValues addressed by communicator rank.
func (c *Comm) RecvValues(src int, bytes int64, tag, n int) ([]float64, error) {
	q := c.Irecv(src, bytes, tag)
	if q.Err() != nil {
		return nil, q.Err()
	}
	q.Wait()
	if err := c.r.world.reapReq(q); err != nil {
		return nil, err
	}
	return c.r.takeWires(c.group[src], tag, n)
}

// TakeWires dequeues n wire-board lanes of a message already received
// from communicator rank src (the multi-lane TakeWire, for overlapped
// exchanges that complete through WaitAll).
func (c *Comm) TakeWires(src, tag, n int) ([]float64, error) {
	return c.r.takeWires(c.group[src], tag, n)
}
