package mpi

import (
	"math"
	"strings"
	"testing"

	"pacc/internal/simtime"
	"pacc/internal/topology"
)

// testConfig returns a small job: 2 nodes x 2 ranks.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Topo = topology.Config{Nodes: 2, SocketsPerNode: 2, CoresPerSocket: 2, Interleaved: true}
	cfg.NProcs = 4
	cfg.PPN = 2
	return cfg
}

func mustWorld(t *testing.T, cfg Config) *World {
	t.Helper()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Power = nil },
		func(c *Config) { c.EagerThreshold = -1 },
		func(c *Config) { c.HostBytesPerSec = 0 },
		func(c *Config) { c.InterruptLatency = -1 },
		func(c *Config) { c.BlockingDerate = 0 },
		func(c *Config) { c.BlockingDerate = 1.5 },
		func(c *Config) { c.Mode = ProgressionMode(9) },
		func(c *Config) { c.NProcs = 13 }, // not multiple of PPN
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			if _, err := NewWorld(cfg); err == nil {
				t.Errorf("mutation %d accepted", i)
			}
		}
	}
}

func TestProgressionModeString(t *testing.T) {
	if Polling.String() != "polling" || Blocking.String() != "blocking" {
		t.Error("mode strings wrong")
	}
	if ProgressionMode(7).String() == "" {
		t.Error("unknown mode should format")
	}
}

func TestWorldSetup(t *testing.T) {
	w := mustWorld(t, testConfig())
	if w.Size() != 4 {
		t.Fatalf("size = %d", w.Size())
	}
	for i := 0; i < 4; i++ {
		r := w.Rank(i)
		if r.ID() != i {
			t.Errorf("rank %d has ID %d", i, r.ID())
		}
		wantNode := i / 2
		if r.Node() != wantNode {
			t.Errorf("rank %d on node %d, want %d", i, r.Node(), wantNode)
		}
	}
}

// TestEagerInterNode: a small message between nodes takes startup + host
// injection + wire time + latency.
func TestEagerInterNode(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	const bytes = 4096
	var recvDone simtime.Time
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(2, bytes, 1)
		case 2:
			r.Recv(0, bytes, 1)
			recvDone = r.Now()
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	want := cfg.InterStartup.Seconds() +
		w.hostCost(bytes).Seconds() +
		float64(bytes)/cfg.Net.LinkBytesPerSec +
		cfg.Net.BaseLatency.Seconds()
	if got := recvDone.Seconds(); math.Abs(got-want) > 1e-7 {
		t.Fatalf("eager inter-node recv at %.9fs, want %.9fs", got, want)
	}
}

// TestEagerSenderCompletesLocally: the eager sender finishes before the
// payload reaches the receiver.
func TestEagerSenderCompletesLocally(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	const bytes = 4096
	var sendDone, recvDone simtime.Time
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(2, bytes, 1)
			sendDone = r.Now()
		case 2:
			r.Recv(0, bytes, 1)
			recvDone = r.Now()
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !(sendDone < recvDone) {
		t.Fatalf("eager send done at %v, recv at %v; send should complete first", sendDone, recvDone)
	}
}

// TestRendezvousInterNode: a large message completes for sender and
// receiver together, after the RTS/CTS round trip plus transfer.
func TestRendezvousInterNode(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	bytes := cfg.EagerThreshold * 8
	var sendDone, recvDone simtime.Time
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(2, bytes, 1)
			sendDone = r.Now()
		case 2:
			r.Recv(0, bytes, 1)
			recvDone = r.Now()
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != recvDone {
		t.Fatalf("rendezvous completion differs: send %v recv %v", sendDone, recvDone)
	}
	want := cfg.InterStartup.Seconds() + // sender startup
		2*cfg.Net.BaseLatency.Seconds() + // RTS + CTS
		w.hostCost(bytes).Seconds() + // injection
		float64(bytes)/cfg.Net.LinkBytesPerSec +
		cfg.Net.BaseLatency.Seconds()
	if got := recvDone.Seconds(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("rendezvous done at %.9fs, want %.9fs", got, want)
	}
}

// TestIntraNodeShm: polling-mode intra-node messages use shared memory,
// not the fabric.
func TestIntraNodeShm(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	const bytes = 1024 // eager
	var recvDone simtime.Time
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, bytes, 1)
		case 1:
			r.Recv(0, bytes, 1)
			recvDone = r.Now()
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Fabric().BytesMoved() != 0 {
		t.Fatalf("intra-node eager message touched the network: %d bytes", w.Fabric().BytesMoved())
	}
	// Double copy: sender copy-in + receiver copy-out.
	want := cfg.IntraStartup.Seconds() + 2*cfg.Shm.CopyTime(bytes, 1.0).Seconds()
	if got := recvDone.Seconds(); math.Abs(got-want) > 1e-7 {
		t.Fatalf("shm eager done at %.9fs, want %.9fs", got, want)
	}
}

// TestIntraNodeRendezvousSingleCopy: large intra-node messages pay one
// copy (sender-side), after the match handshake.
func TestIntraNodeRendezvousSingleCopy(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	bytes := cfg.EagerThreshold * 4
	var recvDone simtime.Time
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, bytes, 1)
		case 1:
			r.Recv(0, bytes, 1)
			recvDone = r.Now()
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Fabric().BytesMoved() != 0 {
		t.Fatal("intra-node rendezvous used the network")
	}
	want := cfg.IntraStartup.Seconds() + // sender startup
		2*cfg.IntraStartup.Seconds() + // RTS visibility + CTS notification
		cfg.Shm.CopyTime(bytes, 1.0).Seconds()
	if got := recvDone.Seconds(); math.Abs(got-want) > 1e-7 {
		t.Fatalf("shm rendezvous done at %.9fs, want %.9fs", got, want)
	}
}

// TestBlockingIntraNodeUsesLoopback: in blocking mode intra-node traffic
// crosses the loopback path (§II-B fallback).
func TestBlockingIntraNodeUsesLoopback(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = Blocking
	w := mustWorld(t, cfg)
	const bytes = 1024
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, bytes, 1)
		case 1:
			r.Recv(0, bytes, 1)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Fabric().BytesMoved() == 0 {
		t.Fatal("blocking intra-node message did not use loopback")
	}
}

// TestBlockingSlowerThanPolling: the same exchange takes longer in
// blocking mode (interrupts + derated bandwidth).
func TestBlockingSlowerThanPolling(t *testing.T) {
	elapsed := func(mode ProgressionMode) simtime.Duration {
		cfg := testConfig()
		cfg.Mode = mode
		w := mustWorld(t, cfg)
		bytes := cfg.EagerThreshold * 16
		w.Launch(func(r *Rank) {
			switch r.ID() {
			case 0:
				r.Send(2, bytes, 1)
			case 2:
				r.Recv(0, bytes, 1)
			}
		})
		d, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	poll, block := elapsed(Polling), elapsed(Blocking)
	if block <= poll {
		t.Fatalf("blocking (%v) not slower than polling (%v)", block, poll)
	}
}

// TestBlockingSavesEnergyWhileWaiting: a rank waiting in blocking mode
// draws less energy than one spinning in polling mode (Figure 6b).
func TestBlockingSavesEnergyWhileWaiting(t *testing.T) {
	energy := func(mode ProgressionMode) float64 {
		cfg := testConfig()
		cfg.Mode = mode
		w := mustWorld(t, cfg)
		bytes := cfg.EagerThreshold * 64
		w.Launch(func(r *Rank) {
			switch r.ID() {
			case 0:
				// Delay so rank 2 must wait a while.
				r.Compute(5 * simtime.Millisecond)
				r.Send(2, bytes, 1)
			case 2:
				r.Recv(0, bytes, 1)
			}
		})
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w.Rank(2).Core().EnergyJoules()
	}
	pe, be := energy(Polling), energy(Blocking)
	if be >= pe {
		t.Fatalf("blocking wait energy %.4f J not below polling %.4f J", be, pe)
	}
}

func TestSendRecvExchange(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	bytes := cfg.EagerThreshold * 8
	done := make([]simtime.Time, 4)
	w.Launch(func(r *Rank) {
		// Pairwise exchange 0<->2 (inter) and 1<->3 (inter).
		peer := (r.ID() + 2) % 4
		r.SendRecv(peer, bytes, peer, bytes, 5)
		done[r.ID()] = r.Now()
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if d == 0 {
			t.Fatalf("rank %d never finished", i)
		}
	}
}

func TestSendRecvSelf(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	for _, bytes := range []int64{512, cfg.EagerThreshold * 2} {
		w := mustWorld(t, cfg)
		completed := false
		w.Launch(func(r *Rank) {
			if r.ID() == 0 {
				r.SendRecv(0, bytes, 0, bytes, 9)
				completed = true
			}
		})
		if _, err := w.Run(); err != nil {
			t.Fatalf("self sendrecv (%d bytes): %v", bytes, err)
		}
		if !completed {
			t.Fatalf("self sendrecv (%d bytes) did not complete", bytes)
		}
	}
	_ = w
}

// TestTagMatching: messages with different tags match the right receives
// regardless of posting order.
func TestTagMatching(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	var got []int
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(2, 100, 7)
			r.Send(2, 200, 8)
		case 2:
			// Post in reverse tag order.
			q8 := r.Irecv(0, 200, 8)
			q7 := r.Irecv(0, 100, 7)
			q8.Wait()
			got = append(got, 8)
			q7.Wait()
			got = append(got, 7)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 8 || got[1] != 7 {
		t.Fatalf("completion order = %v", got)
	}
}

func TestRecvSizeMismatchError(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	var recvErr error
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(2, 100, 1)
		case 2:
			recvErr = r.Recv(0, 999, 1)
		}
	})
	// The mismatch is a protocol bug: it must surface both on the
	// receive's error and through the engine's failure report — never as
	// a process panic.
	_, runErr := w.Run()
	if recvErr == nil || !strings.Contains(recvErr.Error(), "size mismatch") {
		t.Fatalf("recv error = %v, want size mismatch", recvErr)
	}
	if runErr == nil || !strings.Contains(runErr.Error(), "size mismatch") {
		t.Fatalf("run error = %v, want size mismatch", runErr)
	}
}

func TestComputeScalesWithPower(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	var tFull, tScaled simtime.Duration
	w.Launch(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		t0 := r.Now()
		r.Compute(10 * simtime.Millisecond)
		tFull = r.Now().Sub(t0)
		r.ScaleDown()
		t1 := r.Now()
		r.Compute(10 * simtime.Millisecond)
		tScaled = r.Now().Sub(t1)
		r.ScaleUp()
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if tFull != 10*simtime.Millisecond {
		t.Fatalf("full-speed compute took %v", tFull)
	}
	wantRatio := cfg.Power.FMaxGHz / cfg.Power.FMinGHz
	ratio := float64(tScaled) / float64(tFull)
	if math.Abs(ratio-wantRatio) > 0.01 {
		t.Fatalf("scaled compute ratio %v, want %v", ratio, wantRatio)
	}
}

func TestDVFSTransitionCost(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	var elapsed simtime.Duration
	w.Launch(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		t0 := r.Now()
		r.ScaleDown()
		elapsed = r.Now().Sub(t0)
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != cfg.Power.ODVFS {
		t.Fatalf("DVFS transition took %v, want %v", elapsed, cfg.Power.ODVFS)
	}
}

func TestRedundantPowerOpsAreFree(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	var elapsed simtime.Duration
	w.Launch(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		t0 := r.Now()
		r.ScaleUp() // already at fmax
		r.SetThrottle(0)
		elapsed = r.Now().Sub(t0)
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("redundant transitions took %v, want 0", elapsed)
	}
}

func TestCommWorldAndSub(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	checked := false
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		if c.Size() != 4 || c.Rank() != r.ID() {
			t.Errorf("rank %d: world comm size %d rank %d", r.ID(), c.Size(), c.Rank())
		}
		sub := c.Sub([]int{1, 3})
		if r.ID() == 1 || r.ID() == 3 {
			if sub == nil {
				t.Errorf("rank %d should be in sub", r.ID())
			} else if sub.Size() != 2 {
				t.Errorf("sub size %d", sub.Size())
			}
			if r.ID() == 3 && sub != nil && sub.Rank() != 1 {
				t.Errorf("rank 3 sub-rank = %d, want 1", sub.Rank())
			}
		} else if sub != nil {
			t.Errorf("rank %d should not be in sub", r.ID())
		}
		checked = true
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("no rank ran")
	}
}

func TestSplitByNode(t *testing.T) {
	cfg := DefaultConfig() // 64 ranks, 8 per node
	w := mustWorld(t, cfg)
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		shmC, leadC := c.SplitByNode()
		if shmC.Size() != 8 {
			t.Errorf("rank %d shm comm size = %d", r.ID(), shmC.Size())
		}
		if shmC.Rank() != r.ID()%8 {
			t.Errorf("rank %d shm rank = %d", r.ID(), shmC.Rank())
		}
		isLeader := r.ID()%8 == 0
		if isLeader {
			if leadC == nil || leadC.Size() != 8 {
				t.Errorf("leader %d: bad leader comm", r.ID())
			} else if leadC.Rank() != r.ID()/8 {
				t.Errorf("leader %d: leader rank %d", r.ID(), leadC.Rank())
			}
		} else if leadC != nil {
			t.Errorf("non-leader %d got leader comm", r.ID())
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSocketGroups(t *testing.T) {
	cfg := DefaultConfig()
	w := mustWorld(t, cfg)
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		a, b := c.SocketGroups()
		if len(a) != 4 || len(b) != 4 {
			t.Errorf("rank %d: |A|=%d |B|=%d", r.ID(), len(a), len(b))
		}
		base := (r.ID() / 8) * 8
		for i := range a {
			if a[i] != base+i {
				t.Errorf("rank %d: group A = %v", r.ID(), a)
				break
			}
		}
		for i := range b {
			if b[i] != base+4+i {
				t.Errorf("rank %d: group B = %v", r.ID(), b)
				break
			}
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestManyToOneDeterminism: repeated runs of a contended pattern give
// identical times.
func TestManyToOneDeterminism(t *testing.T) {
	run := func() simtime.Duration {
		cfg := DefaultConfig()
		cfg.NProcs = 16
		cfg.PPN = 2
		w := mustWorld(t, cfg)
		bytes := cfg.EagerThreshold * 8
		w.Launch(func(r *Rank) {
			if r.ID() == 0 {
				for src := 1; src < 16; src++ {
					r.Recv(src, bytes, src)
				}
			} else {
				r.Send(0, bytes, r.ID())
			}
		})
		d, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestWaitAllNilSafe(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	w.Launch(func(r *Rank) {
		if r.ID() == 0 {
			q := r.Isend(2, 64, 3)
			WaitAll(q, nil, q) // double wait is a no-op
		}
		if r.ID() == 2 {
			r.Recv(0, 64, 3)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIdle(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	w.Launch(func(r *Rank) {
		if r.ID() == 0 {
			r.Idle(100 * simtime.Millisecond)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// An idle interval at default model draws idle power, less than a
	// busy interval would.
	m := cfg.Power
	idleJ := w.Rank(0).Core().EnergyJoules()
	wantMax := m.CoreWatts(m.FMaxGHz, 0, true) * 0.1
	if idleJ >= wantMax {
		t.Fatalf("idle energy %v J not below busy bound %v J", idleJ, wantMax)
	}
}
