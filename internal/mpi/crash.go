package mpi

import (
	"sort"

	"pacc/internal/fault"
	"pacc/internal/obs"
	"pacc/internal/simtime"
)

// This file implements crash-stop rank failure: the world-side state that
// records who died when, the failure detector that turns a death into
// per-peer completion signals after the detection timeout, and awaitFT —
// the failure-aware wait every blocking message operation goes through.
// The companion ulfm.go builds the recovery API (revoke, agree, shrink)
// on top of these signals.

// ftState is the world's failure-tracking state. It exists only when the
// fault spec schedules crashes or the ULFM-style API is used; a nil
// ftState means the failure machinery is fully disarmed and every wait
// takes the historical code path, keeping healthy runs bit-identical.
type ftState struct {
	// detect is the failure detector's timeout: how long after the crash
	// instant a peer blocked on the dead rank observes the failure.
	detect simtime.Duration
	// deadAt records each crashed rank's time of death.
	deadAt map[int]simtime.Time
	// sig holds per-rank failure signals: sig[r] completes at
	// deadAt[r]+detect. Created lazily by the first wait that watches r.
	sig map[int]*simtime.Future
	// revoked holds per-communicator revocation signals, keyed by the
	// communicator's tag-space id.
	revoked map[int]*simtime.Future
	// agree holds the in-flight and resolved agreement instances;
	// agreeOrder preserves creation order so the sweep on a crash event
	// resolves pending agreements deterministically.
	agree      map[agreeKey]*agreeState
	agreeOrder []agreeKey
}

// ftRequire arms the failure machinery (idempotent). The detection
// timeout comes from the fault spec when one is attached.
func (w *World) ftRequire() {
	if w.ft != nil {
		return
	}
	detect := fault.DefaultDetectTimeout
	if w.cfg.Fault != nil {
		detect = w.cfg.Fault.Detect()
	}
	w.ft = &ftState{
		detect:  detect,
		deadAt:  map[int]simtime.Time{},
		sig:     map[int]*simtime.Future{},
		revoked: map[int]*simtime.Future{},
		agree:   map[agreeKey]*agreeState{},
	}
}

// isDead reports whether the rank has crashed (false when the failure
// machinery is disarmed).
func (w *World) isDead(id int) bool {
	if w.ft == nil {
		return false
	}
	_, dead := w.ft.deadAt[id]
	return dead
}

// Alive reports whether the rank has not crashed.
func (w *World) Alive(id int) bool { return !w.isDead(id) }

// DeadRanks returns the global ids of crashed ranks, ascending.
func (w *World) DeadRanks() []int {
	if w.ft == nil {
		return nil
	}
	out := make([]int, 0, len(w.ft.deadAt))
	for id := range w.ft.deadAt {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// crashRank executes one crash-stop failure in event context: the rank's
// process is killed at its current park point, its core goes idle, its
// failure signal is armed to fire after the detection timeout, and any
// agreement that was only waiting for this rank can now resolve.
func (w *World) crashRank(id int) {
	w.ftRequire()
	if w.isDead(id) {
		return
	}
	w.ft.deadAt[id] = w.eng.Now()
	r := w.ranks[id]
	r.core.SetBusy(false)
	if r.proc != nil {
		r.proc.Kill()
	}
	if s := w.ft.sig[id]; s != nil {
		w.scheduleFailSignal(s, w.eng.Now())
	}
	if b := w.obs; b != nil {
		b.Add(obs.CtrFaultRankCrashes, 1)
		b.Instant(r.track, "rank crashed", nil)
	}
	for _, key := range w.ft.agreeOrder {
		w.maybeResolveAgreement(w.ft.agree[key])
	}
}

// failSignal returns (creating lazily) the future that completes when
// rank's failure becomes detectable. For a rank already dead the
// completion is scheduled on creation.
func (w *World) failSignal(rank int) *simtime.Future {
	s := w.ft.sig[rank]
	if s == nil {
		s = simtime.NewFuture(w.eng)
		w.ft.sig[rank] = s
		if at, dead := w.ft.deadAt[rank]; dead {
			w.scheduleFailSignal(s, at)
		}
	}
	return s
}

// scheduleFailSignal completes s at crashedAt+detect (or now, for waits
// that start long after the death).
func (w *World) scheduleFailSignal(s *simtime.Future, crashedAt simtime.Time) {
	at := crashedAt.Add(w.ft.detect)
	if at < w.eng.Now() {
		at = w.eng.Now()
	}
	w.eng.At(at, func() {
		if !s.IsDone() {
			s.Complete()
		}
	})
}

// revokeFuture returns (creating lazily) the revocation signal of the
// communicator with the given tag-space id.
func (w *World) revokeFuture(commID int) *simtime.Future {
	f := w.ft.revoked[commID]
	if f == nil {
		f = simtime.NewFuture(w.eng)
		w.ft.revoked[commID] = f
	}
	return f
}

// awaitFT is await extended with failure detection. With the failure
// machinery disarmed (or the operation already complete) it is exactly
// await. Armed, the wait also completes when the peer's death becomes
// detectable or when the watched communicator is revoked, returning a
// structured failure error instead of blocking forever on a dead rank —
// the ack/heartbeat-timeout detection of the progression engine. A
// negative peer (or self) watches no failure signal; a nil comm watches
// no revocation.
func (r *Rank) awaitFT(f *simtime.Future, reason string, peer int, c *Comm) error {
	w := r.world
	if w.ft == nil || f.IsDone() {
		r.await(f, reason, peer)
		return nil
	}
	watch := []*simtime.Future{f}
	if peer >= 0 && peer != r.id {
		watch = append(watch, w.failSignal(peer))
	}
	var rev *simtime.Future
	if c != nil {
		rev = w.revokeFuture(c.id)
		watch = append(watch, rev)
	}
	first := f
	if len(watch) > 1 {
		first = simtime.NewFuture(w.eng)
		for _, src := range watch {
			src.Then(func() {
				if !first.IsDone() {
					first.Complete()
				}
			})
		}
	}
	r.await(first, reason, peer)
	// Completion order of preference: a completed operation is a success
	// even if a failure signal fired at the same instant.
	if f.IsDone() {
		return nil
	}
	if rev != nil && rev.IsDone() {
		return &CommRevokedError{Comm: c.id, Op: reason}
	}
	if b := w.obs; b != nil {
		b.Add(obs.CtrFaultPeerFailures, 1)
		b.Instant(r.track, "peer failure detected", map[string]any{"peer": peer})
	}
	return &PeerFailedError{Peer: peer, Op: reason}
}
