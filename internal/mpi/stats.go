package mpi

import "pacc/internal/obs"

// MsgStats counts point-to-point traffic by transport and protocol —
// the diagnostics behind statements like "the first c steps stay inside
// the node" (§V-A).
type MsgStats struct {
	// ShmEager / ShmRendezvous count intra-node messages through the
	// shared-memory channel.
	ShmEager      int64
	ShmRendezvous int64
	// NetEager / NetRendezvous count messages through the fabric
	// (inter-node, or loopback in blocking mode).
	NetEager      int64
	NetRendezvous int64
	// ShmBytes / NetBytes are the corresponding payload volumes.
	ShmBytes int64
	NetBytes int64
	// Control counts zero-byte notifications and barrier signals.
	Control int64
}

// Messages returns the total payload message count.
func (s MsgStats) Messages() int64 {
	return s.ShmEager + s.ShmRendezvous + s.NetEager + s.NetRendezvous
}

// Stats returns a snapshot of the job's message counters.
func (w *World) Stats() MsgStats { return w.stats }

func (w *World) countShm(bytes int64, rendezvous bool) {
	if bytes == 0 {
		w.stats.Control++
		w.obs.Add(obs.CtrControlMsgs, 1)
		return
	}
	if rendezvous {
		w.stats.ShmRendezvous++
		w.obs.Add(obs.CtrShmRendezvous, 1)
	} else {
		w.stats.ShmEager++
		w.obs.Add(obs.CtrShmEager, 1)
	}
	w.stats.ShmBytes += bytes
	w.obs.Add(obs.CtrShmBytes, bytes)
}

func (w *World) countNet(bytes int64, rendezvous bool) {
	if bytes == 0 {
		w.stats.Control++
		w.obs.Add(obs.CtrControlMsgs, 1)
		return
	}
	if rendezvous {
		w.stats.NetRendezvous++
		w.obs.Add(obs.CtrNetRendezvous, 1)
	} else {
		w.stats.NetEager++
		w.obs.Add(obs.CtrNetEager, 1)
	}
	w.stats.NetBytes += bytes
	w.obs.Add(obs.CtrNetBytes, bytes)
}
