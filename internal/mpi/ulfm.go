package mpi

import (
	"fmt"
	"sort"

	"pacc/internal/obs"
	"pacc/internal/simtime"
)

// This file is the ULFM-style recovery API, modeled on MPI's User-Level
// Failure Mitigation chapter: Revoke forces every member of a communicator
// out of its blocking waits, AgreeFailures is the fault-tolerant agreement
// (MPI_Comm_agree) that makes all survivors converge on one failed set,
// and Shrink builds the survivor communicator. The collective layer's
// resilient runners drive the canonical loop:
//
//	err := collective(comm)          // fails with PeerFailed/CommRevoked
//	if failure { comm.Revoke() }     // wake everyone still blocked
//	failed := comm.AgreeFailures()   // all survivors see the same set
//	comm = comm.Shrink(failed)       // and rebuild on the survivors
//
// Agreement is world-mediated but SPMD-deterministic: every member calls
// AgreeFailures congruently, instances are keyed by (communicator id,
// per-communicator call counter), and one instance resolves exactly when
// every still-alive group member has joined — a member's death is itself a
// join, delivered by the crash event. The resolved failed set is the
// world's dead set restricted to the group at resolution instant, so all
// participants return identical answers by construction.

// agreeKey identifies one agreement instance: the communicator's congruent
// tag-space id plus the communicator-local call counter (congruent because
// AgreeFailures, like every collective, is called SPMD).
type agreeKey struct {
	comm, seq int
}

// agreeState is one agreement instance.
type agreeState struct {
	// group is the communicator's global-rank membership.
	group []int
	// joined marks members that called AgreeFailures.
	joined map[int]bool
	// done completes when the instance resolves (plus the protocol
	// latency charge).
	done *simtime.Future
	// failedSet is the agreed failed set (global ranks), fixed at
	// resolution.
	failedSet map[int]bool
	// bad is the OR of the members' one-bit votes (AgreeRound): true when
	// any member wants the round treated as failed even though nobody
	// died — e.g. an ABFT verification mismatch. Votes are all cast
	// before resolution (every alive member must join), so readers after
	// the await see the final value.
	bad bool
	// wantSuspects marks a census instance (AgreeSuspects): at resolution
	// the world's fail-slow scoreboard is read once into suspectSet, so
	// every participant receives the identical snapshot regardless of how
	// the board drifts while late joiners straggle in.
	wantSuspects bool
	// suspectSet is the agreed suspect set (global ranks), fixed at
	// resolution; only populated for census instances.
	suspectSet map[int]bool
	resolved   bool
}

// maybeResolveAgreement resolves st if every group member has either
// joined or died. Called when a member joins and when any rank crashes
// (the crash may have been the last missing vote).
func (w *World) maybeResolveAgreement(st *agreeState) {
	if st == nil || st.resolved {
		return
	}
	alive := 0
	for _, g := range st.group {
		if w.isDead(g) {
			continue
		}
		if !st.joined[g] {
			return
		}
		alive++
	}
	st.resolved = true
	st.failedSet = map[int]bool{}
	for _, g := range st.group {
		if w.isDead(g) {
			st.failedSet[g] = true
		}
	}
	if st.wantSuspects {
		// Snapshot the scoreboard exactly once, at the resolution
		// instant: the census every member returns is this one reading,
		// not each caller's racy local view.
		st.suspectSet = map[int]bool{}
		for _, g := range st.group {
			if !w.isDead(g) && w.sb.suspected(g) {
				st.suspectSet[g] = true
			}
		}
	}
	// Protocol latency: a fault-tolerant agreement is two binomial sweeps
	// (gather a vote, broadcast the verdict) over the survivors. The
	// charge is deterministic — a function of the survivor count only —
	// so every participant observes the same resolution instant.
	rounds := 0
	for n := 1; n < alive; n <<= 1 {
		rounds++
	}
	delay := simtime.Duration(2*rounds) * w.cfg.InterStartup
	w.eng.After(delay, func() { st.done.Complete() })
}

// AgreeFailures is a fault-tolerant agreement on the failed membership of
// this communicator (MPI_Comm_agree specialized to the failure mask): it
// blocks until every still-alive member has entered the agreement, then
// returns the communicator ranks of the dead members — the same set on
// every caller. It must be called congruently by all members (SPMD), and
// it works on a revoked communicator: agreement is exactly the operation
// that must survive revocation.
func (c *Comm) AgreeFailures() []int {
	failed, _ := c.AgreeRound(false)
	return failed
}

// AgreeRound is AgreeFailures extended with a one-bit OR vote, the
// MPI_Comm_agree flag argument specialized to "retry this round": every
// member contributes bad (true when its own round failed for a reason no
// failure detector can see, like an ABFT checksum mismatch) and all
// members return the OR of the votes alongside the agreed failed set.
// The vote rides the agreement's existing two binomial sweeps, so a
// round where everyone votes false is bit-identical — in timing, message
// count, and counters — to plain AgreeFailures. It must be called
// congruently by all members (SPMD) and shares the per-communicator
// agreement sequence with AgreeFailures.
func (c *Comm) AgreeRound(bad bool) (failed []int, anyBad bool) {
	r := c.r
	w := r.world
	w.ftRequire()
	key := agreeKey{comm: c.id, seq: c.agreeSeq}
	c.agreeSeq++
	st := w.ft.agree[key]
	if st == nil {
		st = &agreeState{
			group:  append([]int(nil), c.group...),
			joined: map[int]bool{},
			done:   simtime.NewFuture(w.eng),
		}
		w.ft.agree[key] = st
		w.ft.agreeOrder = append(w.ft.agreeOrder, key)
	}
	// Joining costs one control-message initiation.
	r.busySleep(w.cfg.InterStartup)
	st.joined[r.id] = true
	if bad {
		st.bad = true
	}
	if b := w.obs; b != nil {
		b.Add(obs.CtrFaultAgreements, 1)
	}
	w.maybeResolveAgreement(st)
	r.await(st.done, "ulfm agree", -1)
	for cr, g := range c.group {
		if st.failedSet[g] {
			failed = append(failed, cr)
		}
	}
	sort.Ints(failed)
	return failed, st.bad
}

// AgreeSuspects is a fault-tolerant census of the fail-slow suspect set:
// it blocks until every still-alive member has entered, then returns the
// communicator ranks the detection layer suspects as gray-failed — the
// same set on every caller, because the scoreboard is read exactly once,
// at the instant the last member joins. Like AgreeFailures it must be
// called congruently by all members (SPMD), shares the per-communicator
// agreement sequence, and rides the same two binomial sweeps (identical
// latency charge). With detection disarmed it still performs the
// agreement (congruence demands every member consume the same sequence
// number) and returns nil.
func (c *Comm) AgreeSuspects() []int {
	r := c.r
	w := r.world
	w.ftRequire()
	key := agreeKey{comm: c.id, seq: c.agreeSeq}
	c.agreeSeq++
	st := w.ft.agree[key]
	if st == nil {
		st = &agreeState{
			group:  append([]int(nil), c.group...),
			joined: map[int]bool{},
			done:   simtime.NewFuture(w.eng),
		}
		w.ft.agree[key] = st
		w.ft.agreeOrder = append(w.ft.agreeOrder, key)
	}
	st.wantSuspects = w.sb != nil
	r.busySleep(w.cfg.InterStartup)
	st.joined[r.id] = true
	if b := w.obs; b != nil {
		b.Add(obs.CtrFaultSuspectCensuses, 1)
	}
	w.maybeResolveAgreement(st)
	r.await(st.done, "suspect census", -1)
	var suspects []int
	for cr, g := range c.group {
		if st.suspectSet[g] {
			suspects = append(suspects, cr)
		}
	}
	sort.Ints(suspects)
	return suspects
}

// Revoke marks the communicator revoked: every member blocked in a message
// wait on it is released with a CommRevokedError, and subsequent
// operations on it fail immediately. Like MPI_Comm_revoke, any member that
// observed a failure calls it to force the whole group to the agreement
// step; revoking an already-revoked communicator is a no-op.
func (c *Comm) Revoke() {
	w := c.r.world
	w.ftRequire()
	f := w.revokeFuture(c.id)
	if f.IsDone() {
		return
	}
	f.Complete()
	if b := w.obs; b != nil {
		b.Add(obs.CtrFaultCommRevokes, 1)
		b.Instant(c.r.track, fmt.Sprintf("revoke comm %d", c.id), nil)
	}
}

// Revoked reports whether the communicator has been revoked.
func (c *Comm) Revoked() bool {
	w := c.r.world
	if w.ft == nil {
		return false
	}
	f := w.ft.revoked[c.id]
	return f != nil && f.IsDone()
}

// Shrink builds the survivor communicator: the members of c minus the
// given failed communicator ranks, preserving order (MPI_Comm_shrink with
// the failed set made explicit). Every survivor must call congruently with
// the identical failed set — guaranteed when the set comes out of
// AgreeFailures. Returns nil if the caller itself is excluded.
func (c *Comm) Shrink(failed []int) *Comm {
	bad := map[int]bool{}
	for _, cr := range failed {
		bad[cr] = true
	}
	keep := make([]int, 0, len(c.group))
	for cr := range c.group {
		if !bad[cr] {
			keep = append(keep, cr)
		}
	}
	return c.Sub(keep)
}
