package mpi

import (
	"errors"
	"strings"
	"testing"

	"pacc/internal/fault"
	"pacc/internal/simtime"
)

// TestIsendIrecvArgErrors: invalid arguments at the public API surface
// come back as errored requests, not panics (satellite: API hardening).
func TestIsendIrecvArgErrors(t *testing.T) {
	w := mustWorld(t, testConfig())
	w.Launch(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		cases := []*Request{
			r.Isend(99, 16, 1), // rank out of range
			r.Isend(-1, 16, 1), // negative rank
			r.Isend(1, -5, 1),  // negative size
			r.Irecv(99, 16, 1), // rank out of range
			r.Irecv(1, -5, 1),  // negative size
		}
		for i, q := range cases {
			if q.Err() == nil {
				t.Errorf("case %d: no error", i)
			}
			q.Wait() // must be a no-op, not a hang or panic
		}
		if err := r.Send(99, 16, 1); err == nil || !strings.Contains(err.Error(), "invalid rank") {
			t.Errorf("Send to invalid rank: err = %v", err)
		}
		if err := r.Recv(-3, 16, 1); err == nil {
			t.Error("Recv from negative rank accepted")
		}
		if err := r.SendRecv(99, 16, -7, 16, 1); err == nil {
			t.Error("SendRecv with invalid peers accepted")
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestConfigValidateFaultKnobs: the MPI config validates its fault spec
// against the job, not just in isolation (satellite: validation).
func TestConfigValidateFaultKnobs(t *testing.T) {
	cases := []struct {
		name string
		spec *fault.Spec
		ok   bool
	}{
		{"nil spec", nil, true},
		{"benign loss", &fault.Spec{Seed: 1, EagerLoss: 0.1, RetryBudget: 7}, true},
		{"loss above one", &fault.Spec{Seed: 1, EagerLoss: 1.5, RetryBudget: 7}, false},
		{"negative loss", &fault.Spec{Seed: 1, DataLoss: -0.1, RetryBudget: 7}, false},
		{"loss without retries", &fault.Spec{Seed: 1, CTSLoss: 0.5}, false},
		{"negative retry budget", &fault.Spec{Seed: 1, RetryBudget: -2}, false},
		{"straggler in range", &fault.Spec{Seed: 1,
			Stragglers: []fault.Straggler{{Rank: 3, Slowdown: 2}}}, true},
		{"straggler out of range", &fault.Spec{Seed: 1,
			Stragglers: []fault.Straggler{{Rank: 64, Slowdown: 2}}}, false},
		{"slowdown below one", &fault.Spec{Seed: 1,
			Stragglers: []fault.Straggler{{Rank: 0, Slowdown: 0.5}}}, false},
		{"negative transition delay", &fault.Spec{Seed: 1, PStateDelay: -1}, false},
		{"jitter at one", &fault.Spec{Seed: 1, ComputeJitter: 1,
			Stragglers: []fault.Straggler{{Rank: 0, Slowdown: 2}}}, false},
		{"empty link name", &fault.Spec{Seed: 1,
			LinkFaults: []fault.LinkFault{{Link: "", Start: 0, Duration: 1}}}, false},
	}
	for _, tc := range cases {
		cfg := testConfig()
		cfg.Fault = tc.spec
		err := cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestUnknownFaultLinkRejected: a spec naming a link the topology does not
// have fails at world construction, naming the link.
func TestUnknownFaultLinkRejected(t *testing.T) {
	cfg := testConfig()
	cfg.Fault = &fault.Spec{Seed: 1, LinkFaults: []fault.LinkFault{
		{Link: "node77-up", Factor: 0.5, Start: 0, Duration: simtime.Millisecond},
	}}
	if _, err := NewWorld(cfg); err == nil || !strings.Contains(err.Error(), "node77-up") {
		t.Fatalf("NewWorld err = %v, want unknown-link error", err)
	}
}

// TestReliableDeliveryUnderLoss: heavy loss slows a rendezvous transfer
// but retransmission still completes it, and the run stays deterministic.
func TestReliableDeliveryUnderLoss(t *testing.T) {
	const bytes = 64 << 10 // rendezvous
	elapsedWith := func(spec *fault.Spec) simtime.Duration {
		cfg := testConfig()
		cfg.Fault = spec
		w := mustWorld(t, cfg)
		w.Launch(func(r *Rank) {
			switch r.ID() {
			case 0:
				if err := r.Send(2, bytes, 1); err != nil {
					t.Error(err)
				}
			case 2:
				if err := r.Recv(0, bytes, 1); err != nil {
					t.Error(err)
				}
			}
		})
		d, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	clean := elapsedWith(nil)
	spec := &fault.Spec{Seed: 11, CTSLoss: 0.9, RetryBudget: 20,
		AckTimeout: 50 * simtime.Microsecond}
	lossy := elapsedWith(spec)
	if lossy <= clean {
		t.Fatalf("90%% CTS loss did not slow the transfer: %v vs %v", lossy, clean)
	}
	if again := elapsedWith(spec); again != lossy {
		t.Fatalf("same spec+seed gave %v then %v", lossy, again)
	}
}

// TestExhaustedRetriesNamedInDeadlock: when a message burns its whole
// retry budget the run ends in a deadlock report that names both the
// exhausted message and the blocked waits (satellite: diagnosability).
func TestExhaustedRetriesNamedInDeadlock(t *testing.T) {
	cfg := testConfig()
	cfg.Fault = &fault.Spec{Seed: 1, CTSLoss: 1, RetryBudget: 2,
		AckTimeout: 50 * simtime.Microsecond}
	w := mustWorld(t, cfg)
	const bytes = 64 << 10 // rendezvous, so the lost CTS stalls both sides
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(2, bytes, 1)
		case 2:
			r.Recv(0, bytes, 1)
		}
	})
	_, err := w.Run()
	if err == nil {
		t.Fatal("run with every CTS lost terminated cleanly")
	}
	var dl *simtime.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error %v does not wrap a DeadlockError", err)
	}
	msg := err.Error()
	for _, want := range []string{"exhausted their retry budget", "cts 2→0", "rendezvous data"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

// TestLinkDownRequeuesWithoutBudget: a send hitting a down link waits out
// the window instead of spending retries, and delivers afterwards.
func TestLinkDownRequeuesWithoutBudget(t *testing.T) {
	down := 2 * simtime.Millisecond
	cfg := testConfig()
	cfg.Fault = &fault.Spec{Seed: 1, RetryBudget: 1, // any drop would kill the run
		LinkFaults: []fault.LinkFault{{Link: "node0-up", Factor: 0, Start: 0, Duration: down}}}
	// RetryBudget 1 with no loss probabilities: if the requeue charged the
	// budget the message would exhaust instantly.
	w := mustWorld(t, cfg)
	var recvAt simtime.Time
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(2, 1024, 1)
		case 2:
			r.Recv(0, 1024, 1)
			recvAt = r.Now()
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt < simtime.Time(0).Add(down) {
		t.Fatalf("eager message crossed a down link: delivered at %v, window closes at %v",
			recvAt, down)
	}
}

// TestStragglerSlowsJob: a straggler stretches the job by roughly its
// slowdown on compute-bound work, and healthy runs are untouched.
func TestStragglerSlowsJob(t *testing.T) {
	work := 10 * simtime.Millisecond
	elapsedWith := func(spec *fault.Spec) simtime.Duration {
		cfg := testConfig()
		cfg.Fault = spec
		w := mustWorld(t, cfg)
		w.Launch(func(r *Rank) { r.Compute(work) })
		d, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	clean := elapsedWith(nil)
	slowed := elapsedWith(&fault.Spec{Seed: 1,
		Stragglers: []fault.Straggler{{Rank: 1, Slowdown: 3}}})
	if want := 3 * clean; slowed != want {
		t.Fatalf("straggler 3x run took %v, want %v (clean %v)", slowed, want, clean)
	}
	inactive := elapsedWith(&fault.Spec{Seed: 1}) // zero-probability spec
	if inactive != clean {
		t.Fatalf("inactive spec perturbed the run: %v vs %v", inactive, clean)
	}
}

// TestTransitionDelayInjected: PStateDelay stretches every DVFS
// transition pair.
func TestTransitionDelayInjected(t *testing.T) {
	extra := 50 * simtime.Microsecond
	elapsedWith := func(spec *fault.Spec) simtime.Duration {
		cfg := testConfig()
		cfg.Fault = spec
		w := mustWorld(t, cfg)
		w.Launch(func(r *Rank) {
			r.ScaleDown()
			r.ScaleUp()
		})
		d, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	clean := elapsedWith(nil)
	delayed := elapsedWith(&fault.Spec{Seed: 1, PStateDelay: extra})
	if want := clean + 2*extra; delayed != want {
		t.Fatalf("two transitions with %v extra took %v, want %v (clean %v)",
			extra, delayed, want, clean)
	}
}

// TestWireBoard: SendValue/RecvValue carry values FIFO per (src,dst,tag)
// lane across the simulated schedule.
func TestWireBoard(t *testing.T) {
	w := mustWorld(t, testConfig())
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			for i, v := range []float64{2.5, -1, 7} {
				if err := r.SendValue(2, 1024, 10+i, v); err != nil {
					t.Error(err)
				}
			}
		case 2:
			for i, want := range []float64{2.5, -1, 7} {
				got, err := r.RecvValue(0, 1024, 10+i)
				if err != nil {
					t.Error(err)
				} else if got != want {
					t.Errorf("value %d = %g, want %g", i, got, want)
				}
			}
			if _, ok := r.TakeWire(0, 99); ok {
				t.Error("TakeWire invented a value")
			}
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
}
