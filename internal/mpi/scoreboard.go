package mpi

import "sort"

// This file is the gray-failure (fail-slow) detection layer: a per-rank
// progress scoreboard that separates "slow because degraded" from "slow
// because waiting", the COUNTDOWN-Slack distinction. Two signals feed it:
//
//   - Compute-lag samples. Every clock-bound call on a rank compares its
//     observed duration against the duration its *intended* power state
//     explains, and folds the ratio into a per-rank EWMA. A rank at fmin
//     because a collective scaled it down is not lagging (the runtime knows
//     the state it asked for); a rank at fmin because a DVFS write was
//     silently lost, or one inside an injected fail-slow window, is. Waits
//     never produce samples, so a rank idling at a barrier for a slow peer
//     accrues no lag — pure wait imbalance yields zero suspects by
//     construction.
//
//   - Progress beacons. Message initiations and deliveries tick per-rank
//     beat counters (piggybacked on sends that happen anyway — no extra
//     messages, no extra virtual time) and mark engine-level progress for
//     the no-progress watchdog.
//
// The scoreboard is bookkeeping only: it costs zero virtual time and draws
// no randomness, so arming it leaves simulated timing bit-identical. A nil
// scoreboard (detection disarmed, the default) keeps the historical code
// paths untouched, mirroring the nil *obs.Bus pattern.
//
// Scoreboard state is world-global, which a real implementation would
// gossip; determinism is restored at the consensus step — Comm.AgreeSuspects
// reads the board once, at agreement resolution, so every member receives
// the identical suspect set (see ulfm.go).

// DefaultSuspectThreshold is the EWMA lag factor at or above which a rank
// is suspected when Config.SuspectThreshold is unset. Lag 1 is healthy;
// transient jitter decays fast at the default smoothing, so 1.5 clears
// real degradations (a stuck transition costs 2-8x) without tripping on
// noise.
const DefaultSuspectThreshold = 1.5

// suspectAlpha is the EWMA smoothing weight of one compute-lag sample.
const suspectAlpha = 0.25

// minSuspectSamples is how many lag samples a rank must have produced
// before it can be suspected: one outlier call is not a gray failure.
const minSuspectSamples = 4

// scoreboard holds the per-rank detection state. Ranks run one at a time
// in event context, so plain slices are race-free and deterministic.
type scoreboard struct {
	// ewma is the smoothed compute-lag factor per rank (1 = healthy).
	ewma []float64
	// samples counts lag samples folded into each rank's EWMA.
	samples []uint64
	// beats counts progress beacons per rank.
	beats []uint64
	// threshold is the suspicion cutoff on the EWMA.
	threshold float64
}

func newScoreboard(n int, threshold float64) *scoreboard {
	sb := &scoreboard{
		ewma:      make([]float64, n),
		samples:   make([]uint64, n),
		beats:     make([]uint64, n),
		threshold: threshold,
	}
	for i := range sb.ewma {
		sb.ewma[i] = 1
	}
	return sb
}

// note folds one compute-lag sample into the rank's EWMA. stretch is the
// observed/expected duration ratio of one clock-bound call; exactly 1 for
// a healthy call.
func (sb *scoreboard) note(rank int, stretch float64) {
	if sb == nil {
		return
	}
	sb.ewma[rank] = (1-suspectAlpha)*sb.ewma[rank] + suspectAlpha*stretch
	sb.samples[rank]++
}

// beat ticks the rank's progress counter.
func (sb *scoreboard) beat(rank int) {
	if sb == nil {
		return
	}
	sb.beats[rank]++
}

// suspected reports whether the rank's smoothed lag crosses the threshold
// (with enough samples to trust it).
func (sb *scoreboard) suspected(rank int) bool {
	return sb != nil && sb.samples[rank] >= minSuspectSamples &&
		sb.ewma[rank] >= sb.threshold
}

// FailSlowArmed reports whether fail-slow detection is active for this
// job (Config.FailSlowDetect, or a fault spec with slow= / stickfail=
// clauses).
func (w *World) FailSlowArmed() bool { return w.sb != nil }

// ComputeLag returns the rank's smoothed compute-lag factor (1 when
// healthy or when detection is disarmed).
func (w *World) ComputeLag(rank int) float64 {
	if w.sb == nil {
		return 1
	}
	return w.sb.ewma[rank]
}

// ProgressBeats returns the rank's progress-beacon count (0 when
// detection is disarmed).
func (w *World) ProgressBeats(rank int) uint64 {
	if w.sb == nil {
		return 0
	}
	return w.sb.beats[rank]
}

// SuspectedRanks returns the global ids of currently suspected ranks,
// ascending. This is the raw local view — racy against ongoing execution
// in the SPMD sense; collectives must agree on a census through
// Comm.AgreeSuspects before acting on it.
func (w *World) SuspectedRanks() []int {
	if w.sb == nil {
		return nil
	}
	var out []int
	for id := range w.ranks {
		if w.sb.suspected(id) && !w.isDead(id) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}
