package mpi

import (
	"fmt"

	"pacc/internal/fault"
	"pacc/internal/obs"
)

// This file holds the MPI layer's resilience machinery: an IB-RC-style
// reliable-delivery model for protocol messages under injected loss, and
// the "wire board" side channel that lets collectives carry reduction
// values through the simulated message schedule for end-to-end
// correctness checks.

// netFlow injects one protocol message (eager payload, RTS, CTS, or
// rendezvous data) into the fabric with reliable delivery. Without an
// active injector it degenerates to exactly the historical StartFlow +
// Then chain, so fault-free runs are bit-identical to builds without the
// fault subsystem.
//
// With injection active it models InfiniBand RC semantics: every attempt
// occupies the wire; a lost attempt is detected after the ack timeout
// (here folded into the attempt's own completion plus exponential
// backoff) and retransmitted, up to the retry budget. A corrupted attempt
// is delivered on schedule but fails the receiver's ICRC check — the
// payload is discarded and a NACK sends the sender down the same backoff
// and retransmit path (a corrupted message is a latency event, never a
// wrong-data event, exactly as on real IB). A path crossing an
// administratively-down link is not charged against the budget — the
// send requeues until the fault window closes, the simulator's analogue
// of IB path migration through the send queue.
func (w *World) netFlow(class fault.MsgClass, src, dst int, wire int64, seq uint64, deliver func()) {
	srcNode, dstNode := w.place.NodeOf(src), w.place.NodeOf(dst)
	in := w.inj
	if !in.Enabled() {
		fl := w.fabric.StartFlow(srcNode, dstNode, wire)
		fl.Done().Then(deliver)
		return
	}
	budget := in.RetryBudget()
	var attempt func(n int)
	attempt = func(n int) {
		if until, down := w.fabric.PathDownUntil(srcNode, dstNode); down {
			// Availability loss, not packet loss: reroute through the
			// send queue until the link is back, budget untouched.
			w.obs.Add(obs.CtrFaultMsgRequeues, 1)
			w.eng.At(until, func() { attempt(n) })
			return
		}
		fl := w.fabric.StartFlow(srcNode, dstNode, wire)
		dropped := in.Drop(class, src, dst, seq, n)
		corrupted := false
		if !dropped {
			corrupted = in.Corrupt(class, src, dst, seq, n, w.tstateDepth(src))
		}
		if !dropped && !corrupted {
			fl.Done().Then(deliver)
			return
		}
		if dropped {
			// The attempt occupied the wire but its completion (or ack)
			// was lost; the sender notices after the backoff and
			// retransmits.
			w.obs.Add(obs.CtrFaultMsgDrops, 1)
		}
		fl.Done().Then(func() {
			if corrupted {
				// Delivered on schedule, but the ICRC check rejects the
				// payload and NACKs the sender.
				w.obs.Add(obs.CtrFaultMsgCorruptions, 1)
				w.obs.Add(obs.CtrFaultMsgNacks, 1)
			}
			if n+1 >= budget {
				w.obs.Add(obs.CtrFaultRetriesExhausted, 1)
				w.retriesExhausted = append(w.retriesExhausted, &IntegrityError{
					Class: class, Src: src, Dst: dst, Seq: seq,
					Attempts: n + 1, Corrupted: corrupted,
				})
				return
			}
			w.obs.Add(obs.CtrFaultMsgRetransmits, 1)
			w.eng.After(in.Backoff(n), func() { attempt(n + 1) })
		})
	}
	attempt(0)
}

// wireKey addresses one (sender, receiver, tag) lane of the wire board.
type wireKey struct {
	src, dst, tag int
}

// putWire enqueues a payload value on the (src,dst,tag) lane. Messages on
// one lane are non-overtaking (FIFO matching on (src,tag)), so a queue
// per lane pairs values with messages exactly. The simulation is
// cooperatively single-threaded, so the map needs no locking.
func (w *World) putWire(src, dst, tag int, v float64) {
	if w.wire == nil {
		w.wire = make(map[wireKey][]float64)
	}
	k := wireKey{src, dst, tag}
	w.wire[k] = append(w.wire[k], v)
}

// takeWire dequeues the value paired with a received message.
func (w *World) takeWire(src, dst, tag int) (float64, bool) {
	k := wireKey{src, dst, tag}
	q := w.wire[k]
	if len(q) == 0 {
		return 0, false
	}
	v := q[0]
	if len(q) == 1 {
		delete(w.wire, k)
	} else {
		w.wire[k] = q[1:]
	}
	return v, true
}

// SendValue is Send with a reduction value riding the message through the
// wire board; the matching RecvValue picks it up. Collectives use the
// pair to verify data correctness end-to-end (the simulated messages
// themselves carry only sizes).
func (r *Rank) SendValue(dst int, bytes int64, tag int, v float64) error {
	q := r.Isend(dst, bytes, tag)
	if q.Err() != nil {
		return q.Err()
	}
	r.world.putWire(r.id, dst, tag, v)
	q.Wait()
	return q.Err()
}

// RecvValue is Recv returning the value the matching SendValue attached.
func (r *Rank) RecvValue(src int, bytes int64, tag int) (float64, error) {
	q := r.Irecv(src, bytes, tag)
	if q.Err() != nil {
		return 0, q.Err()
	}
	q.Wait()
	if err := q.Err(); err != nil {
		return 0, err
	}
	v, ok := r.world.takeWire(src, r.id, tag)
	if !ok {
		return 0, fmt.Errorf("mpi: rank %d: no wire value from %d tag %d", r.id, src, tag)
	}
	return v, nil
}

// TakeWire dequeues the wire-board value of a message already received
// from global rank src with the given tag (see SendValue/RecvValue).
// Symmetric exchanges that overlap Isend/Irecv use it to pick the value
// up after WaitAll instead of through RecvValue.
func (r *Rank) TakeWire(src, tag int) (float64, bool) {
	return r.world.takeWire(src, r.id, tag)
}

// Degraded reports whether the fabric currently has a degraded or down
// link (a fabric health query, as an SM client would issue). Collectives
// use it to decide on contention-minimal fallbacks.
func (r *Rank) Degraded() bool { return r.world.fabric.Degraded() }
