package mpi

import (
	"fmt"

	"pacc/internal/obs"
	"pacc/internal/power"
	"pacc/internal/simtime"
	"pacc/internal/topology"
)

// Rank is one MPI process: a simulated proc pinned to a core, with a
// mailbox for incoming messages. All methods must be called from the
// rank's own body (SPMD style), except where noted.
type Rank struct {
	world *World
	id    int
	proc  *simtime.Proc
	core  *power.Core
	box   mailbox
	// seq numbers outgoing messages per destination for debugging and
	// deterministic tie-breaks. Sparse: a rank messages O(log P) peers
	// in tree/dissemination collectives, while a dense per-destination
	// array would be O(P) per rank — O(P²) for the job, gigabytes at
	// 64k ranks. The counter values (and so all tie-breaks) are
	// identical either way.
	sendSeq map[int]uint64
	// commSeq counts communicator creations for congruent tag-space ids.
	commSeq int
	// wireBuf is the reusable lane buffer behind takeWires.
	wireBuf []float64
	// track is this rank's timeline in the observability bus.
	track obs.Track
	// wantFreq / wantT are the power state this rank last *asked* for.
	// They normally shadow the core's actual state; they diverge exactly
	// when a transition write is silently lost (fault stickfail=), which
	// is the signature of a power-management gray failure — the rank
	// believes it runs at wantFreq while the core grinds at something
	// slower. The fail-slow scoreboard measures lag against the intended
	// state, and RecoverPower re-issues it.
	wantFreq float64
	wantT    power.TState
}

func newRank(w *World, id int, core *power.Core) *Rank {
	return &Rank{
		world:    w,
		id:       id,
		core:     core,
		track:    obs.RankTrack(w.place.NodeOf(id), id),
		wantFreq: core.FreqGHz(),
		wantT:    core.Throttle(),
	}
}

// ID returns the global rank number.
func (r *Rank) ID() int { return r.id }

// World returns the job this rank belongs to.
func (r *Rank) World() *World { return r.world }

// Core returns the power tracker of the core this rank is bound to.
func (r *Rank) Core() *power.Core { return r.core }

// Node returns the node index this rank runs on.
func (r *Rank) Node() int { return r.world.place.NodeOf(r.id) }

// ObsTrack returns this rank's timeline in the observability bus (used by
// the collective package for phase spans).
func (r *Rank) ObsTrack() obs.Track { return r.track }

// Socket returns the socket this rank's core sits on.
func (r *Rank) Socket() topology.SocketID { return r.world.place.SocketOf(r.id) }

// Now returns the current virtual time.
func (r *Rank) Now() simtime.Time { return r.proc.Now() }

// speed is the core's current effective execution speed for clock-bound
// work.
func (r *Rank) speed() float64 { return r.core.Speed() }

// copySpeed is the core's effective speed for streaming memory work.
func (r *Rank) copySpeed() float64 { return r.core.CopySpeed() }

// computeStretch is the injected multiplicative slowdown of one
// clock-bound call: the straggler factor (with jitter) times any covering
// fail-slow window. Exactly 1 for healthy calls — no float perturbation —
// and the slow-window lookup is skipped entirely for ranks with no
// windows, so fault-free timing is bit-identical.
func (r *Rank) computeStretch() float64 {
	s := r.world.inj.ComputeScale(r.id)
	if r.world.inj.HasSlow(r.id) {
		s *= r.world.inj.SlowScale(r.id, simtime.Duration(r.proc.Now()))
	}
	return s
}

// powerLag is the slowdown the rank's *intended* power state does not
// explain: intended-over-actual effective speed, 1 when the core is in
// the state the rank asked for. It diverges from 1 exactly after a lost
// transition write (fault stickfail=) — the measurable signature of a
// power-management gray failure.
func (r *Rank) powerLag() float64 {
	if r.wantFreq == r.core.FreqGHz() && r.wantT == r.core.Throttle() {
		return 1
	}
	want := r.world.cfg.Power.Speed(r.wantFreq, r.wantT)
	got := r.speed()
	if want <= 0 || got <= 0 {
		return 1
	}
	return want / got
}

// busySleep advances time by d scaled up by the core's current slowdown.
// The caller's core is busy throughout (ranks are busy by default). A
// straggler or fail-slow rank (fault injection) stretches further by its
// injected stretch; the multiply is skipped when the stretch is exactly 1.
// With fail-slow detection armed, the call also folds its observed/
// expected ratio into the rank's scoreboard EWMA — bookkeeping only, no
// virtual time.
func (r *Rank) busySleep(d simtime.Duration) {
	if d <= 0 {
		return
	}
	sec := d.Seconds() / r.speed()
	s := r.computeStretch()
	if s != 1 {
		sec *= s
	}
	if sb := r.world.sb; sb != nil {
		sb.note(r.id, s*r.powerLag())
	}
	r.proc.Sleep(simtime.DurationOf(sec))
}

// copySleep advances time by d scaled by the streaming-copy slowdown
// (and the injected stretch, as in busySleep).
func (r *Rank) copySleep(d simtime.Duration) {
	if d <= 0 {
		return
	}
	sec := d.Seconds() / r.copySpeed()
	s := r.computeStretch()
	if s != 1 {
		sec *= s
	}
	if sb := r.world.sb; sb != nil {
		sb.note(r.id, s*r.powerLag())
	}
	r.proc.Sleep(simtime.DurationOf(sec))
}

// transitionSleep pays one hardware-paced P/T-state transition latency
// plus any injected extra settle time (a slow or stuck transition).
func (r *Rank) transitionSleep(base simtime.Duration, dvfs bool) {
	if extra := r.core.TransitionDelay(dvfs); extra > 0 {
		base += extra
		if b := r.world.obs; b != nil {
			b.Add(obs.CtrFaultPowerDelays, 1)
			b.AddDuration(obs.DurFaultPowerDelay, extra)
		}
	}
	r.proc.Sleep(base)
}

// MemCopy charges the cost of one streaming copy of the given size
// through local memory (at the shared-memory channel's bandwidth),
// stretched by the core's copy slowdown. Collectives use it for
// self-blocks, buffer rotations, and shared-region reads/writes.
func (r *Rank) MemCopy(bytes int64) {
	r.copySleep(r.world.cfg.Shm.CopyTime(bytes, 1.0))
}

// StreamCompute models memory-streaming computation (e.g. reducing one
// buffer into another) that would take d at full speed.
func (r *Rank) StreamCompute(d simtime.Duration) {
	r.copySleep(d)
}

// Compute models CPU work that would take the given duration on an
// unthrottled core at fmax; it stretches with DVFS and throttling.
func (r *Rank) Compute(atFullSpeed simtime.Duration) {
	r.busySleep(atFullSpeed)
}

// ComputeSeconds is Compute with a float64 seconds argument.
func (r *Rank) ComputeSeconds(secs float64) {
	r.Compute(simtime.DurationOf(secs))
}

// await blocks on a future with the configured progression semantics:
// polling spins (core stays busy), blocking idles the core and pays the
// interrupt + reschedule latency on wakeup. With observability attached,
// the wait is recorded as a span on the rank's timeline (carrying the
// peer rank being waited on, when known — the dependency edge the
// analytics engine's critical-path walk follows) and accrued into the
// spin/block wait-time metric. peer < 0 (or self) records no edge.
func (r *Rank) await(f *simtime.Future, reason string, peer int) {
	if f.IsDone() {
		return
	}
	b := r.world.obs
	var start simtime.Time
	if b != nil {
		start = b.Now()
	}
	var args map[string]any
	if b != nil && peer >= 0 && peer != r.id {
		args = map[string]any{"peer": peer}
	}
	if r.world.cfg.Mode == Blocking {
		r.core.SetBusy(false)
		f.Await(r.proc, reason)
		r.core.SetBusy(true)
		r.busySleep(r.world.cfg.InterruptLatency)
		if b != nil {
			end := b.Now()
			b.Span(r.track, "wait "+reason, start, end, args)
			b.AddDuration(obs.DurWaitBlock, end.Sub(start))
		}
		return
	}
	f.Await(r.proc, reason)
	if b != nil {
		end := b.Now()
		b.Span(r.track, "wait "+reason, start, end, args)
		b.AddDuration(obs.DurWaitSpin, end.Sub(start))
	}
}

// SetFreq performs one DVFS transition on this rank's core, paying the
// model's Odvfs latency. The transition is hardware-paced (an MSR write
// plus PLL settle), so it does not stretch with the core's own slowdown.
// Under fault stickfail= the write may be silently lost after paying the
// latency: the core keeps its old frequency while the rank's intended
// state (wantFreq) moves on — see RecoverPower.
func (r *Rank) SetFreq(ghz float64) {
	target := r.world.cfg.Power.ClampFreq(ghz)
	r.wantFreq = target
	if r.core.FreqGHz() == target {
		return
	}
	r.transitionSleep(r.world.cfg.Power.ODVFS, true)
	if r.world.inj.TransitionLost(r.core.ID(), true) {
		if b := r.world.obs; b != nil {
			b.Add(obs.CtrFaultTransitionsLost, 1)
			b.Instant(r.track, fmt.Sprintf("dvfs write lost (want %.1fGHz, stuck at %.1fGHz)",
				target, r.core.FreqGHz()), nil)
		}
		return
	}
	r.core.SetFreq(ghz)
	if b := r.world.obs; b != nil {
		b.Add(obs.CtrDVFSTransitions, 1)
		b.AddDuration(obs.DurDVFSOverhead, r.world.cfg.Power.ODVFS)
		b.Instant(r.track, fmt.Sprintf("dvfs %.1fGHz", r.core.FreqGHz()), nil)
	}
}

// ScaleDown moves the core to fmin (start of a power-aware collective).
func (r *Rank) ScaleDown() { r.SetFreq(r.world.cfg.Power.FMinGHz) }

// ScaleUp restores the core to fmax (end of a power-aware collective).
func (r *Rank) ScaleUp() { r.SetFreq(r.world.cfg.Power.FMaxGHz) }

// SetThrottle performs one T-state transition, paying the hardware-paced
// Othrottle latency. Like SetFreq, the write may be silently lost under
// fault stickfail=.
func (r *Rank) SetThrottle(t power.TState) {
	r.wantT = t
	if r.core.Throttle() == t {
		return
	}
	r.transitionSleep(r.world.cfg.Power.OThrottle, false)
	if r.world.inj.TransitionLost(r.core.ID(), false) {
		if b := r.world.obs; b != nil {
			b.Add(obs.CtrFaultTransitionsLost, 1)
			b.Instant(r.track, fmt.Sprintf("throttle write lost (want %v, stuck at %v)",
				t, r.core.Throttle()), nil)
		}
		return
	}
	r.core.SetThrottle(t)
	if b := r.world.obs; b != nil {
		b.Add(obs.CtrThrottleTransitions, 1)
		b.AddDuration(obs.DurThrottleOverhead, r.world.cfg.Power.OThrottle)
		b.Instant(r.track, fmt.Sprintf("throttle %v", t), nil)
	}
}

// PowerSynced reports whether the core is in the power state this rank
// last asked for. It is false exactly while a lost transition write
// (fault stickfail=) leaves the rank running degraded.
func (r *Rank) PowerSynced() bool {
	return r.core.FreqGHz() == r.wantFreq && r.core.Throttle() == r.wantT
}

// DefaultPowerRecoveryRetries bounds RecoverPower's re-issue attempts
// when the caller passes attempts <= 0.
const DefaultPowerRecoveryRetries = 3

// RecoverPower re-issues the rank's intended P/T-state until the core
// confirms it, paying the usual transition latency per attempt, bounded
// by attempts (<= 0 selects DefaultPowerRecoveryRetries). It reports
// whether the core ended in sync. This is the first-line fail-slow
// mitigation: a rank whose only sickness is a lost DVFS/throttle write
// heals here and never needs demotion.
func (r *Rank) RecoverPower(attempts int) bool {
	if r.PowerSynced() {
		return true
	}
	if attempts <= 0 {
		attempts = DefaultPowerRecoveryRetries
	}
	for i := 0; i < attempts && !r.PowerSynced(); i++ {
		if r.core.FreqGHz() != r.wantFreq {
			r.SetFreq(r.wantFreq)
		}
		if r.core.Throttle() != r.wantT {
			r.SetThrottle(r.wantT)
		}
	}
	ok := r.PowerSynced()
	if b := r.world.obs; b != nil && ok {
		b.Add(obs.CtrFaultPowerRecoveries, 1)
		b.Instant(r.track, "power state recovered", nil)
	}
	return ok
}

// p2pScaleDown implements the PowerAwareP2P option: if enabled, the core
// is at fmax (no collective is managing it), and the wait is not already
// over, drop to fmin for the duration of an intra-node rendezvous wait.
// The returned function restores the previous frequency (no-op when the
// scale-down was skipped).
func (r *Rank) p2pScaleDown(pending *simtime.Future) func() {
	// The config is read through the world pointer, not copied: a local
	// Config copy captured by the restore closure would escape to the
	// heap on every call, including the common disabled path.
	cfg := &r.world.cfg
	if !cfg.PowerAwareP2P || pending.IsDone() || r.core.FreqGHz() < cfg.Power.FMaxGHz {
		return nopRestore
	}
	r.SetFreq(cfg.Power.FMinGHz)
	return func() { r.SetFreq(r.world.cfg.Power.FMaxGHz) }
}

// nopRestore is the shared no-op restore for waits that did not scale
// down; a fresh empty closure per wait would still allocate.
var nopRestore = func() {}

// Idle parks the rank for d of virtual time with the core idle — used by
// workload skeletons for I/O or imbalance gaps, not by collectives.
func (r *Rank) Idle(d simtime.Duration) {
	r.core.SetBusy(false)
	r.proc.Sleep(d)
	r.core.SetBusy(true)
}
