package mpi

import (
	"errors"
	"reflect"
	"testing"

	"pacc/internal/fault"
	"pacc/internal/power"
	"pacc/internal/simtime"
)

// computeAndChat is a small SPMD workload that mixes per-rank compute with
// a neighbor ring exchange: enough lag samples to cross the suspicion
// sample floor, enough traffic to tick progress beacons.
func computeAndChat(iters int) func(r *Rank) {
	return func(r *Rank) {
		p := r.World().Size()
		next, prev := (r.ID()+1)%p, (r.ID()+p-1)%p
		for i := 0; i < iters; i++ {
			r.Compute(10 * simtime.Microsecond)
			if err := r.SendRecv(next, 512, prev, 512, 100+i); err != nil {
				panic(err)
			}
		}
	}
}

// A rank inside an injected fail-slow window must be suspected; its
// healthy peers must not be, even though they wait on it every iteration.
func TestSlowWindowDetection(t *testing.T) {
	cfg := testConfig()
	cfg.Fault = &fault.Spec{Slows: []fault.Slow{
		{Rank: 1, Factor: 4, Start: 0, Duration: 100 * simtime.Millisecond},
	}}
	w := mustWorld(t, cfg)
	if !w.FailSlowArmed() {
		t.Fatal("slow= clause must arm detection")
	}
	w.Launch(computeAndChat(8))
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.SuspectedRanks(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("SuspectedRanks = %v, want [1]", got)
	}
	if lag := w.ComputeLag(1); lag < DefaultSuspectThreshold {
		t.Fatalf("slow rank lag %.3f below threshold %.3f", lag, DefaultSuspectThreshold)
	}
	for _, id := range []int{0, 2, 3} {
		if lag := w.ComputeLag(id); lag != 1 {
			t.Fatalf("healthy rank %d accrued lag %.3f; waits must not feed the EWMA", id, lag)
		}
	}
	for id := 0; id < cfg.NProcs; id++ {
		if w.ProgressBeats(id) == 0 {
			t.Fatalf("rank %d produced no progress beacons despite messaging", id)
		}
	}
}

// Pure wait imbalance — one rank legitimately computing for long while the
// others idle at their receives — must produce zero suspects: waiting is
// not lagging.
func TestPureWaitImbalanceNoSuspects(t *testing.T) {
	cfg := testConfig()
	cfg.FailSlowDetect = true
	w := mustWorld(t, cfg)
	w.Launch(func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(5 * simtime.Millisecond) // heavy but healthy
			for dst := 1; dst < r.World().Size(); dst++ {
				if err := r.Send(dst, 256, 9); err != nil {
					panic(err)
				}
			}
			return
		}
		if err := r.Recv(0, 256, 9); err != nil {
			panic(err)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.SuspectedRanks(); len(got) != 0 {
		t.Fatalf("SuspectedRanks = %v, want none under pure wait imbalance", got)
	}
	for id := 0; id < cfg.NProcs; id++ {
		if lag := w.ComputeLag(id); lag != 1 {
			t.Fatalf("rank %d lag %.3f, want exactly 1", id, lag)
		}
	}
}

// Stragglers alone must not arm detection: their seeds and timings predate
// the scoreboard and stay byte-identical.
func TestStragglersDoNotArmDetection(t *testing.T) {
	cfg := testConfig()
	cfg.Fault = &fault.Spec{Stragglers: []fault.Straggler{{Rank: 1, Slowdown: 2}}}
	w := mustWorld(t, cfg)
	if w.FailSlowArmed() {
		t.Fatal("straggler-only spec must not arm detection")
	}
}

// Arming detection must not move simulated time: the scoreboard is
// bookkeeping only.
func TestDetectionZeroTimingOverhead(t *testing.T) {
	run := func(detect bool) simtime.Duration {
		cfg := testConfig()
		cfg.FailSlowDetect = detect
		w := mustWorld(t, cfg)
		w.Launch(computeAndChat(6))
		el, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		return el
	}
	if plain, armed := run(false), run(true); plain != armed {
		t.Fatalf("detection changed elapsed time: %v (off) vs %v (on)", plain, armed)
	}
}

// Every member of a census must return the identical suspect set, read
// once at agreement resolution.
func TestAgreeSuspectsIdentical(t *testing.T) {
	cfg := testConfig()
	cfg.Fault = &fault.Spec{Slows: []fault.Slow{
		{Rank: 2, Factor: 8, Start: 0, Duration: 100 * simtime.Millisecond},
	}}
	w := mustWorld(t, cfg)
	censuses := make([][]int, cfg.NProcs)
	w.Launch(func(r *Rank) {
		computeAndChat(8)(r)
		censuses[r.ID()] = CommWorld(r).AgreeSuspects()
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for id, got := range censuses {
		if !reflect.DeepEqual(got, []int{2}) {
			t.Fatalf("rank %d census = %v, want [2]", id, got)
		}
	}
}

// With detection disarmed AgreeSuspects still agrees (congruence) and
// returns nil on every member.
func TestAgreeSuspectsDisarmed(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	censuses := make([][]int, cfg.NProcs)
	w.Launch(func(r *Rank) {
		censuses[r.ID()] = CommWorld(r).AgreeSuspects()
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for id, got := range censuses {
		if got != nil {
			t.Fatalf("rank %d census = %v, want nil with detection disarmed", id, got)
		}
	}
}

// A lost power-transition write (stickfail=) leaves the core stuck while
// the rank's intent moves on; the resulting power lag feeds the
// scoreboard and the rank is suspected without any slow= window. The
// scenario: the throttle-down to T4 lands, the un-throttle back to T0 is
// lost, so the rank runs at roughly half speed believing itself healthy.
func TestStickfailDetectedAsPowerLag(t *testing.T) {
	cfg := testConfig()
	cfg.Fault = &fault.Spec{StickFailProb: 0.5}
	w := mustWorld(t, cfg)
	w.Launch(func(r *Rank) {
		if r.ID() == 1 {
			provoked := false
			for i := 0; i < 64 && !provoked; i++ {
				r.SetThrottle(power.T4)
				if !r.PowerSynced() {
					continue // the throttle-down itself was lost; retry
				}
				r.SetThrottle(power.T0)
				provoked = !r.PowerSynced()
			}
			if !provoked {
				panic("could not provoke a stuck un-throttle at p=0.5")
			}
		}
		computeAndChat(8)(r)
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.SuspectedRanks(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("SuspectedRanks = %v, want [1] (lag %.3f)", got, w.ComputeLag(1))
	}
	if w.Rank(1).PowerSynced() {
		t.Fatal("rank 1 must still be desynced at exit (the un-throttle was lost)")
	}
}

// RecoverPower re-issues a stuck transition until the write lands; with
// loss probability 0.5 a 64-attempt budget heals deterministically, and
// with probability 1 it reports failure without looping forever.
func TestRecoverPower(t *testing.T) {
	t.Run("heals", func(t *testing.T) {
		cfg := testConfig()
		cfg.Fault = &fault.Spec{StickFailProb: 0.5}
		w := mustWorld(t, cfg)
		var healed, wasDesynced bool
		w.Launch(func(r *Rank) {
			if r.ID() != 0 {
				return
			}
			for !wasDesynced { // force at least one lost write
				r.ScaleDown()
				if !r.PowerSynced() {
					wasDesynced = true
				} else {
					r.ScaleUp()
				}
			}
			healed = r.RecoverPower(64)
		})
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !wasDesynced {
			t.Fatal("never observed a lost write at p=0.5")
		}
		if !healed || !w.Rank(0).PowerSynced() {
			t.Fatal("RecoverPower(64) failed to heal at p=0.5")
		}
	})
	t.Run("bounded", func(t *testing.T) {
		cfg := testConfig()
		cfg.Fault = &fault.Spec{StickFailProb: 1}
		w := mustWorld(t, cfg)
		var healed bool
		w.Launch(func(r *Rank) {
			if r.ID() != 0 {
				return
			}
			r.ScaleDown()
			if r.PowerSynced() {
				panic("write must be lost at p=1")
			}
			healed = r.RecoverPower(0) // default bounded budget
		})
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if healed || w.Rank(0).PowerSynced() {
			t.Fatal("RecoverPower must report failure when every write is lost")
		}
	})
	t.Run("noop when synced", func(t *testing.T) {
		cfg := testConfig()
		w := mustWorld(t, cfg)
		var before, after simtime.Time
		var ok bool
		w.Launch(func(r *Rank) {
			if r.ID() != 0 {
				return
			}
			before = r.Now()
			ok = r.RecoverPower(0)
			after = r.Now()
		})
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if !ok || before != after {
			t.Fatalf("RecoverPower on a synced rank must be a free no-op (ok=%v, %v→%v)",
				ok, before, after)
		}
	})
}

// A lost throttle write desyncs too, and PowerSynced sees it.
func TestStickfailThrottle(t *testing.T) {
	cfg := testConfig()
	cfg.Fault = &fault.Spec{StickFailProb: 1}
	w := mustWorld(t, cfg)
	w.Launch(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		r.SetThrottle(power.T4)
		if r.PowerSynced() {
			panic("throttle write must be lost at p=1")
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// The no-progress watchdog converts a silent stall into a structured
// diagnostic error, and stays quiet while messages keep flowing.
func TestWatchdog(t *testing.T) {
	t.Run("fires on stall", func(t *testing.T) {
		cfg := testConfig()
		cfg.FailSlowDetect = true
		cfg.WatchdogTimeout = 100 * simtime.Microsecond
		w := mustWorld(t, cfg)
		w.Launch(func(r *Rank) {
			if r.ID() == 0 {
				r.Compute(50 * simtime.Millisecond) // way past the limit, no traffic
			}
		})
		_, err := w.Run()
		var we *simtime.WatchdogError
		if !errors.As(err, &we) {
			t.Fatalf("Run returned %v, want WatchdogError", err)
		}
		if we.Limit != cfg.WatchdogTimeout {
			t.Fatalf("WatchdogError.Limit = %v, want %v", we.Limit, cfg.WatchdogTimeout)
		}
	})
	t.Run("quiet under traffic", func(t *testing.T) {
		cfg := testConfig()
		cfg.WatchdogTimeout = 10 * simtime.Millisecond
		w := mustWorld(t, cfg)
		w.Launch(computeAndChat(8))
		if _, err := w.Run(); err != nil {
			t.Fatalf("watchdog fired under healthy traffic: %v", err)
		}
	})
}
