package mpi

// reqKind selects the wait behavior of a request. The wait used to be a
// per-request closure; a typed dispatch over a handful of pooled fields
// performs the same progression with no per-operation allocation.
type reqKind int

const (
	// reqNone: nothing to progress (completed/error requests).
	reqNone reqKind = iota
	// reqRecv completes a posted receive (match, then payload).
	reqRecv
	// reqRdvNet completes a network rendezvous send (await dataDone).
	reqRdvNet
	// reqRdvShm completes a shared-memory rendezvous send (await CTS,
	// then single-copy into the receiver's buffer).
	reqRdvShm
)

// Request is a handle for a nonblocking operation. Wait must be called by
// the rank that created the request (MPI semantics); progression beyond
// the initiation happens inside Wait or in simulation event context.
type Request struct {
	r *Rank
	// comm, when the operation was issued through a communicator, lets
	// the failure-aware wait watch that communicator's revocation signal
	// alongside the peer's failure signal.
	comm *Comm
	kind reqKind
	// peer is the global rank on the other end; bytes the posted size.
	peer  int
	bytes int64
	tag   int
	// pr is the receive side (reqRecv); st the send side (reqRdv*).
	pr *pendingRecv
	st *sendState
	// end closes the sender's observability span on an abandoned wait
	// (nil when observability is off).
	end  func()
	done bool
	err  error
}

// completedRequest returns a request whose operation finished during
// initiation (eager sends).
func completedRequest(r *Rank) *Request {
	q := r.world.getReq(r)
	q.done = true
	return q
}

// getReq returns a recycled (or fresh) request bound to r.
func (w *World) getReq(r *Rank) *Request {
	if n := len(w.freeReqs); n > 0 {
		q := w.freeReqs[n-1]
		w.freeReqs = w.freeReqs[:n-1]
		q.r = r
		return q
	}
	return &Request{r: r}
}

// putReq recycles a request. Only the blocking wrappers call it — they
// create the request, complete it, and never let the handle escape, so
// the release point is provably the last reference. Requests returned
// to callers through the nonblocking API are never recycled (the caller
// owns the handle); failed requests are kept alive by their error path.
func (w *World) putReq(q *Request) {
	*q = Request{}
	w.freeReqs = append(w.freeReqs, q)
}

// reapReq finishes a blocking wrapper: capture the completed request's
// error, recycle the handle on success, and hand the error back. Failed
// requests are left to the GC — their error may still be examined.
func (w *World) reapReq(q *Request) error {
	if err := q.Err(); err != nil {
		return err
	}
	w.putReq(q)
	return nil
}

// errorRequest returns a request that failed argument validation at
// initiation: Wait is a no-op and Err reports the cause.
func errorRequest(r *Rank, err error) *Request {
	return &Request{r: r, done: true, err: err}
}

// Wait blocks until the operation completes or fails. Calling Wait twice
// is a no-op, as is waiting on a request that failed initiation (check
// Err).
func (q *Request) Wait() {
	if q.done {
		return
	}
	var err error
	switch q.kind {
	case reqRecv:
		err = q.waitRecv()
	case reqRdvNet:
		err = q.waitRdvNet()
	case reqRdvShm:
		err = q.waitRdvShm()
	}
	if err != nil && q.err == nil {
		q.err = err
	}
	q.done = true
}

// Err reports the request's error: an initiation mistake (an out-of-range
// peer, a negative size — MPI-style argument errors instead of panics) or
// a completion failure (a dead peer detected mid-wait, a revoked
// communicator). Valid after initiation for the former, after Wait for
// the latter.
func (q *Request) Err() error { return q.err }

// Done reports whether Wait has completed (or was never needed).
func (q *Request) Done() bool { return q.done }

// WaitAll completes a set of requests in order. With the simulator's
// synchronous progression the order only affects which request's costs
// are accounted first; total time is the same as any interleaving because
// matching and transfers advance in event context.
func WaitAll(reqs ...*Request) {
	for _, q := range reqs {
		if q != nil {
			q.Wait()
		}
	}
}
