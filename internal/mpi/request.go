package mpi

// Request is a handle for a nonblocking operation. Wait must be called by
// the rank that created the request (MPI semantics); progression beyond
// the initiation happens inside Wait or in simulation event context.
type Request struct {
	r *Rank
	// comm, when the operation was issued through a communicator, lets
	// the failure-aware wait watch that communicator's revocation signal
	// alongside the peer's failure signal.
	comm *Comm
	wait func() error
	done bool
	err  error
}

// completedRequest returns a request whose operation finished during
// initiation (eager sends).
func completedRequest(r *Rank) *Request {
	return &Request{r: r, done: true}
}

// errorRequest returns a request that failed argument validation at
// initiation: Wait is a no-op and Err reports the cause.
func errorRequest(r *Rank, err error) *Request {
	return &Request{r: r, done: true, err: err}
}

// Wait blocks until the operation completes or fails. Calling Wait twice
// is a no-op, as is waiting on a request that failed initiation (check
// Err).
func (q *Request) Wait() {
	if q.done {
		return
	}
	if err := q.wait(); err != nil && q.err == nil {
		q.err = err
	}
	q.done = true
}

// Err reports the request's error: an initiation mistake (an out-of-range
// peer, a negative size — MPI-style argument errors instead of panics) or
// a completion failure (a dead peer detected mid-wait, a revoked
// communicator). Valid after initiation for the former, after Wait for
// the latter.
func (q *Request) Err() error { return q.err }

// Done reports whether Wait has completed (or was never needed).
func (q *Request) Done() bool { return q.done }

// WaitAll completes a set of requests in order. With the simulator's
// synchronous progression the order only affects which request's costs
// are accounted first; total time is the same as any interleaving because
// matching and transfers advance in event context.
func WaitAll(reqs ...*Request) {
	for _, q := range reqs {
		if q != nil {
			q.Wait()
		}
	}
}
