package mpi

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NProcs = 32
	cfg.Mode = Blocking
	cfg.PowerAwareP2P = true
	cfg.Net.NodesPerRack = 4
	cfg.Net.RackUplinkBytesPerSec = 1e9
	data, err := ConfigToJSON(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ConfigFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NProcs != 32 || back.Mode != Blocking || !back.PowerAwareP2P {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Net.NodesPerRack != 4 || back.Net.RackUplinkBytesPerSec != 1e9 {
		t.Fatalf("network fields lost: %+v", back.Net)
	}
	if back.Power == nil || back.Power.FMaxGHz != cfg.Power.FMaxGHz {
		t.Fatal("power model lost")
	}
	if back.Power.Duty != cfg.Power.Duty {
		t.Fatal("duty table lost")
	}
	// A round-tripped config must still build a working world.
	w, err := NewWorld(back)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *Rank) {})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigFromJSONDefaultsPowerModel(t *testing.T) {
	// A minimal hand-written config without a power model.
	raw := `{
		"Topo": {"Nodes": 2, "SocketsPerNode": 2, "CoresPerSocket": 2, "Interleaved": true},
		"Net": {"LinkBytesPerSec": 3.2e9, "LoopbackBytesPerSec": 2e9},
		"Shm": {"CopyBytesPerSec": 4e9},
		"NProcs": 8, "PPN": 4,
		"EagerThreshold": 16384,
		"HostBytesPerSec": 3.2e10,
		"BlockingDerate": 0.65
	}`
	cfg, err := ConfigFromJSON([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Power == nil {
		t.Fatal("power model not defaulted")
	}
	if cfg.NProcs != 8 || cfg.Topo.Nodes != 2 {
		t.Fatalf("fields lost: %+v", cfg)
	}
}

func TestConfigFromJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`not json`,
		`{"NProcs": -4}`,
		`{"Topo": {"Nodes": 2, "SocketsPerNode": 2, "CoresPerSocket": 2},
		  "Net": {"LinkBytesPerSec": -1, "LoopbackBytesPerSec": 1},
		  "Shm": {"CopyBytesPerSec": 1},
		  "NProcs": 8, "PPN": 4, "HostBytesPerSec": 1, "BlockingDerate": 0.5}`,
	}
	for i, raw := range cases {
		if _, err := ConfigFromJSON([]byte(raw)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSaveLoadConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	cfg := DefaultConfig()
	cfg.NProcs = 16
	cfg.PPN = 8
	cfg.Topo.Nodes = 2
	if err := SaveConfig(path, cfg); err != nil {
		t.Fatal(err)
	}
	back, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NProcs != 16 || back.Topo.Nodes != 2 {
		t.Fatalf("loaded config wrong: %+v", back)
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if !strings.HasSuffix(path, ".json") {
		t.Skip()
	}
}
