package mpi

import (
	"errors"
	"sort"
	"testing"

	"pacc/internal/fault"
	"pacc/internal/simtime"
)

func crashConfig(crashes ...fault.Crash) Config {
	cfg := testConfig()
	cfg.Fault = &fault.Spec{Crashes: crashes}
	return cfg
}

// A receiver blocked on a rank that dies must observe a PeerFailedError
// once the detection timeout elapses, not hang forever.
func TestCrashDetectedOnBlockedRecv(t *testing.T) {
	crashAt := 10 * simtime.Microsecond
	cfg := crashConfig(fault.Crash{Rank: 1, At: crashAt})
	w := mustWorld(t, cfg)
	var recvErr error
	var at simtime.Time
	w.Launch(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		recvErr = r.Recv(1, 4096, 7)
		at = r.Now()
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var pf *PeerFailedError
	if !errors.As(recvErr, &pf) || pf.Peer != 1 {
		t.Fatalf("recv returned %v, want PeerFailedError{Peer: 1}", recvErr)
	}
	if !IsFailure(recvErr) {
		t.Fatal("PeerFailedError must classify as a failure")
	}
	want := simtime.Time(0).Add(crashAt).Add(cfg.Fault.Detect())
	if at < want {
		t.Fatalf("failure observed at %v, before detection deadline %v", at, want)
	}
}

// Sends to a dead rank must fail too: eager frames are dropped at
// delivery and rendezvous clear-to-sends never arrive, so the sender's
// wait trips the failure detector instead of blocking.
func TestCrashDetectedOnBlockedSend(t *testing.T) {
	cfg := crashConfig(fault.Crash{Rank: 1, At: 5 * simtime.Microsecond})
	w := mustWorld(t, cfg)
	var sendErr error
	w.Launch(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		r.Compute(20 * simtime.Microsecond) // send strictly after the death
		sendErr = r.Send(1, 1<<20, 7)       // rendezvous-sized
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var pf *PeerFailedError
	if !errors.As(sendErr, &pf) || pf.Peer != 1 {
		t.Fatalf("send returned %v, want PeerFailedError{Peer: 1}", sendErr)
	}
}

// Revoking a communicator must wake ranks blocked on operations over it —
// even ones whose peer is alive and simply never going to answer.
func TestRevokeWakesBlockedWaiters(t *testing.T) {
	cfg := crashConfig(fault.Crash{Rank: 3, At: 10 * simtime.Microsecond})
	w := mustWorld(t, cfg)
	errs := make([]error, cfg.NProcs)
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		switch r.ID() {
		case 0:
			// Blocked on alive rank 1, which never sends: only the revoke
			// can release this wait.
			errs[0] = c.Recv(1, 4096, 9)
		case 1:
			// Observes rank 3's death and revokes.
			errs[1] = c.Recv(3, 4096, 9)
			if IsFailure(errs[1]) {
				c.Revoke()
			}
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var rev *CommRevokedError
	if !errors.As(errs[0], &rev) {
		t.Fatalf("rank 0 got %v, want CommRevokedError", errs[0])
	}
	if !IsFailure(errs[0]) {
		t.Fatal("CommRevokedError must classify as a failure")
	}
	var pf *PeerFailedError
	if !errors.As(errs[1], &pf) || pf.Peer != 3 {
		t.Fatalf("rank 1 got %v, want PeerFailedError{Peer: 3}", errs[1])
	}
}

// All survivors of an agreement must converge on the same failed set, and
// a Shrink over it must produce the same survivor group everywhere.
func TestAgreeFailuresConverges(t *testing.T) {
	cfg := crashConfig(
		fault.Crash{Rank: 1, At: 5 * simtime.Microsecond},
		fault.Crash{Rank: 2, At: 8 * simtime.Microsecond},
	)
	w := mustWorld(t, cfg)
	failed := make([][]int, cfg.NProcs)
	shrunk := make([]int, cfg.NProcs)
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		r.Compute(20 * simtime.Microsecond) // both deaths are in the past
		f := c.AgreeFailures()
		failed[r.ID()] = f
		s := c.Shrink(f)
		if s != nil {
			shrunk[r.ID()] = s.Size()
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{0, 3} {
		got := failed[g]
		if !sort.IntsAreSorted(got) || len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("rank %d agreed on %v, want [1 2]", g, got)
		}
		if shrunk[g] != 2 {
			t.Fatalf("rank %d shrunk to %d ranks, want 2", g, shrunk[g])
		}
	}
	if dead := w.DeadRanks(); len(dead) != 2 || dead[0] != 1 || dead[1] != 2 {
		t.Fatalf("DeadRanks() = %v, want [1 2]", dead)
	}
}

// An agreement started before a crash must still resolve: the crash event
// sweeps pending agreements so the dead rank's missing join stops
// blocking the survivors.
func TestAgreementResolvesWhenMemberDiesMidAgreement(t *testing.T) {
	cfg := crashConfig(fault.Crash{Rank: 2, At: 50 * simtime.Microsecond})
	w := mustWorld(t, cfg)
	failed := make([][]int, cfg.NProcs)
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		if r.ID() == 2 {
			// Never joins: parked until the crash kills it.
			r.Compute(time999(t))
			return
		}
		failed[r.ID()] = c.AgreeFailures()
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{0, 1, 3} {
		if len(failed[g]) != 1 || failed[g][0] != 2 {
			t.Fatalf("rank %d agreed on %v, want [2]", g, failed[g])
		}
	}
}

func time999(t *testing.T) simtime.Duration {
	t.Helper()
	return 999 * simtime.Millisecond
}

// A crashed rank's Launch body must not start if it is dead at t=0, and a
// healthy world must keep the failure machinery disarmed entirely.
func TestCrashAtZeroAndDisarmedHealthy(t *testing.T) {
	cfg := crashConfig(fault.Crash{Rank: 0, At: 0})
	w := mustWorld(t, cfg)
	started := make([]bool, cfg.NProcs)
	w.Launch(func(r *Rank) {
		started[r.ID()] = true
		if r.ID() == 1 {
			if err := r.Recv(0, 64, 3); !IsFailure(err) {
				t.Errorf("recv from rank dead at t=0 returned %v", err)
			}
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if started[0] {
		t.Fatal("rank dead at t=0 still ran its body")
	}

	healthy := mustWorld(t, testConfig())
	healthy.Launch(func(r *Rank) {})
	if _, err := healthy.Run(); err != nil {
		t.Fatal(err)
	}
	if dead := healthy.DeadRanks(); dead != nil {
		t.Fatalf("healthy world reports dead ranks %v", dead)
	}
}

// Shrink must translate group membership: survivors keep their relative
// order and the shrunken communicator excludes exactly the failed set.
func TestShrinkMembership(t *testing.T) {
	cfg := crashConfig(fault.Crash{Rank: 1, At: 5 * simtime.Microsecond})
	w := mustWorld(t, cfg)
	ranks := make([]int, cfg.NProcs)
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		r.Compute(10 * simtime.Microsecond)
		s := c.Shrink(c.AgreeFailures())
		if s == nil {
			t.Errorf("rank %d: Shrink returned nil for a survivor", r.ID())
			return
		}
		ranks[r.ID()] = s.Rank()
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[int]int{0: 0, 2: 1, 3: 2}
	for g, cr := range want {
		if ranks[g] != cr {
			t.Fatalf("global %d got shrunken rank %d, want %d", g, ranks[g], cr)
		}
	}
}
