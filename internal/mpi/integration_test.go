package mpi

import (
	"errors"
	"math"
	"testing"

	"pacc/internal/simtime"
)

// TestMissingSendDeadlocks: a receive with no matching send surfaces as a
// DeadlockError naming the stuck rank — failure injection for the
// engine's liveness reporting.
func TestMissingSendDeadlocks(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	w.Launch(func(r *Rank) {
		if r.ID() == 2 {
			r.Recv(0, 128, 42) // never sent
		}
	})
	_, err := w.Run()
	var dl *simtime.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	found := false
	for _, b := range dl.Blocked {
		if b == "rank2 (recv match)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("deadlock report %v does not name rank2's wait", dl.Blocked)
	}
}

// TestMismatchedTagsDeadlock: tag mismatches between sender and receiver
// stall both sides (the send is rendezvous).
func TestMismatchedTagsDeadlock(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	bytes := cfg.EagerThreshold * 2
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(2, bytes, 1)
		case 2:
			r.Recv(0, bytes, 9) // wrong tag
		}
	})
	if _, err := w.Run(); err == nil {
		t.Fatal("mismatched tags should deadlock")
	}
}

// TestEagerThresholdBoundary: a message exactly at the threshold is
// eager (sender completes locally); one byte over is rendezvous (sender
// completes with the receiver).
func TestEagerThresholdBoundary(t *testing.T) {
	cfg := testConfig()
	for _, tc := range []struct {
		bytes      int64
		rendezvous bool
	}{
		{cfg.EagerThreshold, false},
		{cfg.EagerThreshold + 1, true},
	} {
		w := mustWorld(t, cfg)
		var sendDone, recvDone simtime.Time
		w.Launch(func(r *Rank) {
			switch r.ID() {
			case 0:
				r.Send(2, tc.bytes, 1)
				sendDone = r.Now()
			case 2:
				// Delay the post so eager completion is observable.
				r.Compute(simtime.Millisecond)
				r.Recv(0, tc.bytes, 1)
				recvDone = r.Now()
			}
		})
		if _, err := w.Run(); err != nil {
			t.Fatalf("bytes=%d: %v", tc.bytes, err)
		}
		if tc.rendezvous && sendDone != recvDone {
			t.Errorf("bytes=%d: rendezvous should complete together (%v vs %v)",
				tc.bytes, sendDone, recvDone)
		}
		if !tc.rendezvous && sendDone >= recvDone {
			t.Errorf("bytes=%d: eager sender should finish before the delayed receiver", tc.bytes)
		}
	}
}

// TestBlockingInterruptCost: in blocking mode a wakeup pays the
// interrupt + reschedule latency.
func TestBlockingInterruptCost(t *testing.T) {
	base := func(mode ProgressionMode) simtime.Duration {
		cfg := testConfig()
		cfg.Mode = mode
		cfg.BlockingDerate = 1.0 // isolate the interrupt term
		w := mustWorld(t, cfg)
		var recvDone simtime.Time
		w.Launch(func(r *Rank) {
			switch r.ID() {
			case 0:
				r.Send(2, 512, 1)
			case 2:
				r.Recv(0, 512, 1)
				recvDone = r.Now()
			}
		})
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return simtime.Duration(recvDone)
	}
	polling := base(Polling)
	blocking := base(Blocking)
	diff := blocking - polling
	cfg := testConfig()
	// Blocking pays at least one interrupt latency; it also routes via
	// loopback (slower than shm for this size), so allow a range.
	if diff < cfg.InterruptLatency {
		t.Fatalf("blocking-polling gap %v below one interrupt latency %v", diff, cfg.InterruptLatency)
	}
}

// TestRendezvousOverlap: two disjoint rendezvous transfers between
// different node pairs overlap on the wire — total time is far below the
// serialized sum.
func TestRendezvousOverlap(t *testing.T) {
	cfg := DefaultConfig() // 8 nodes
	w := mustWorld(t, cfg)
	bytes := int64(1 << 20)
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(8, bytes, 1) // node 0 -> node 1
		case 8:
			r.Recv(0, bytes, 1)
		case 16:
			r.Send(24, bytes, 2) // node 2 -> node 3
		case 24:
			r.Recv(16, bytes, 2)
		}
	})
	elapsed, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	solo := float64(bytes) / cfg.Net.LinkBytesPerSec
	if elapsed.Seconds() > 1.5*solo {
		t.Fatalf("disjoint transfers took %.6fs, want ≈%.6fs (overlapped)", elapsed.Seconds(), solo)
	}
}

// TestSerializedSendsToOnePeer: messages from many senders into one
// receiver share its downlink; total time is at least the serialized wire
// time.
func TestSerializedSendsToOnePeer(t *testing.T) {
	cfg := DefaultConfig()
	w := mustWorld(t, cfg)
	bytes := int64(1 << 20)
	senders := []int{8, 16, 24, 32} // four different nodes
	w.Launch(func(r *Rank) {
		for _, s := range senders {
			if r.ID() == s {
				r.Send(0, bytes, s)
			}
		}
		if r.ID() == 0 {
			for _, s := range senders {
				r.Recv(s, bytes, s)
			}
		}
	})
	elapsed, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	atLeast := float64(len(senders)) * float64(bytes) / cfg.Net.LinkBytesPerSec
	if elapsed.Seconds() < atLeast {
		t.Fatalf("incast finished in %.6fs, below the shared-downlink bound %.6fs",
			elapsed.Seconds(), atLeast)
	}
}

// TestEnergyMatchesPowerIntegral: a rank busy for T at fmax must consume
// exactly CoreWatts * T.
func TestEnergyMatchesPowerIntegral(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	const secs = 2.0
	w.Launch(func(r *Rank) {
		if r.ID() == 0 {
			r.ComputeSeconds(secs)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := cfg.Power
	want := m.CoreWatts(m.FMaxGHz, 0, true) * secs
	got := w.Rank(0).Core().EnergyJoules()
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("energy %.6f J, want %.6f J", got, want)
	}
}

// TestLaunchBodiesRunOncePerRank verifies SPMD launch semantics.
func TestLaunchBodiesRunOncePerRank(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	counts := make([]int, cfg.NProcs)
	w.Launch(func(r *Rank) {
		counts[r.ID()]++
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("rank %d body ran %d times", i, c)
		}
	}
}

// TestMsgStats: the counters classify traffic by transport and protocol.
func TestMsgStats(t *testing.T) {
	cfg := testConfig()
	w := mustWorld(t, cfg)
	big := cfg.EagerThreshold * 2
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 512, 1) // shm eager
			r.Send(1, big, 2) // shm rendezvous
			r.Send(2, 512, 3) // net eager
			r.Send(2, big, 4) // net rendezvous
			r.Send(1, 0, 5)   // control
		case 1:
			r.Recv(0, 512, 1)
			r.Recv(0, big, 2)
			r.Recv(0, 0, 5)
		case 2:
			r.Recv(0, 512, 3)
			r.Recv(0, big, 4)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.ShmEager != 1 || s.ShmRendezvous != 1 || s.NetEager != 1 || s.NetRendezvous != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.Control != 1 {
		t.Fatalf("control = %d, want 1", s.Control)
	}
	if s.ShmBytes != 512+big || s.NetBytes != 512+big {
		t.Fatalf("bytes wrong: %+v", s)
	}
	if s.Messages() != 4 {
		t.Fatalf("Messages() = %d", s.Messages())
	}
}

// TestPairwiseMessageSplit: the §V-A claim — with bunch binding the first
// c-1 exchange partners are intra-node, the rest inter-node. Verified via
// the transport counters for a full pairwise alltoall.
func TestPairwiseMessageSplit(t *testing.T) {
	cfg := DefaultConfig() // 64 ranks, 8 per node
	w := mustWorld(t, cfg)
	const m = int64(1024)
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		p := c.Size()
		me := c.Rank()
		block := c.TagBlock()
		for i := 1; i < p; i++ {
			peer := me ^ i
			tag := c.PairTag(block, me, peer)
			rq := c.Irecv(peer, m, tag)
			sq := c.Isend(peer, m, tag)
			WaitAll(sq, rq)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	// 64 ranks x 7 intra-node peers and 64 x 56 inter-node peers.
	if s.ShmEager != 64*7 {
		t.Fatalf("shm messages = %d, want %d", s.ShmEager, 64*7)
	}
	if s.NetEager != 64*56 {
		t.Fatalf("net messages = %d, want %d", s.NetEager, 64*56)
	}
}
