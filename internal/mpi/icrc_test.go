package mpi

import (
	"errors"
	"strings"
	"testing"

	"pacc/internal/fault"
	"pacc/internal/obs"
	"pacc/internal/simtime"
)

// TestCorruptionRetransmitDelivers: an in-flight bit flip never reaches
// the application — the ICRC rejects the payload, the sender retransmits
// under the budget, and the value arrives intact. Corruption costs time,
// and the run replays identically.
func TestCorruptionRetransmitDelivers(t *testing.T) {
	const bytes = 64 << 10 // rendezvous, so the data leg is in play
	elapsedWith := func(spec *fault.Spec) (simtime.Duration, float64) {
		cfg := testConfig()
		cfg.Fault = spec
		w := mustWorld(t, cfg)
		var got float64
		w.Launch(func(r *Rank) {
			switch r.ID() {
			case 0:
				if err := r.SendValue(2, bytes, 1, 42.5); err != nil {
					t.Error(err)
				}
			case 2:
				v, err := r.RecvValue(0, bytes, 1)
				if err != nil {
					t.Error(err)
				}
				got = v
			}
		})
		d, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d, got
	}
	clean, v0 := elapsedWith(nil)
	spec := &fault.Spec{Seed: 4, DataCorrupt: 0.9, RetryBudget: 30,
		AckTimeout: 50 * simtime.Microsecond}
	slow, v1 := elapsedWith(spec)
	if v0 != 42.5 || v1 != 42.5 {
		t.Fatalf("payload changed end-to-end: %v / %v, want 42.5", v0, v1)
	}
	if slow <= clean {
		t.Fatalf("90%% data corruption did not slow the transfer: %v vs clean %v", slow, clean)
	}
	if again, _ := elapsedWith(spec); again != slow {
		t.Fatalf("same spec+seed gave %v then %v", slow, again)
	}
}

// TestCorruptExhaustionTypedError: when every attempt of a message is
// ICRC-rejected the run aborts with a structured IntegrityError naming
// the message class, endpoints, attempt count, and the reject — and the
// NACKed flows leave no unbalanced spans behind (only the deadlocked
// rank tracks are excused).
func TestCorruptExhaustionTypedError(t *testing.T) {
	cfg := testConfig()
	cfg.Fault = &fault.Spec{Seed: 2, DataCorrupt: 1, RetryBudget: 3,
		AckTimeout: 50 * simtime.Microsecond}
	w := mustWorld(t, cfg)
	bus := obs.NewBus(w.Engine())
	w.AttachObs(bus)
	const bytes = 64 << 10
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(2, bytes, 1)
		case 2:
			r.Recv(0, bytes, 1)
		}
	})
	_, err := w.Run()
	if err == nil {
		t.Fatal("run with every data attempt corrupted terminated cleanly")
	}
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v does not wrap an IntegrityError", err)
	}
	if ie.Class != fault.Data || ie.Src != 0 || ie.Dst != 2 {
		t.Fatalf("error names %v %d→%d, want data 0→2", ie.Class, ie.Src, ie.Dst)
	}
	if ie.Attempts != 3 || !ie.Corrupted {
		t.Fatalf("attempts/corrupted = %d/%v, want 3/true", ie.Attempts, ie.Corrupted)
	}
	if !IsIntegrity(err) {
		t.Fatal("exhaustion error not classified by IsIntegrity")
	}
	if msg := err.Error(); !strings.Contains(msg, "icrc reject") {
		t.Errorf("error %q does not name the icrc reject", msg)
	}
	if n := bus.Counter(obs.CtrFaultMsgNacks); n != 3 {
		t.Errorf("NACK counter = %d, want 3 (one per rejected attempt)", n)
	}
	rankTrack := map[obs.Track]bool{}
	for i := 0; i < w.Size(); i++ {
		rankTrack[w.Rank(i).ObsTrack()] = true
	}
	if open := bus.UnbalancedAsyncs(func(tr obs.Track) bool { return rankTrack[tr] }); len(open) != 0 {
		t.Fatalf("unbalanced non-rank spans after exhaustion: %v", open)
	}
}

// TestSendRecvValuesLanes: the multi-lane wire board carries several
// payload lanes on one simulated message, in order, without perturbing
// the message schedule — the substrate the checked collectives ride
// their checksum shadow on.
func TestSendRecvValuesLanes(t *testing.T) {
	var oneLane, twoLane simtime.Duration
	for _, lanes := range []int{1, 2} {
		lanes := lanes
		w := mustWorld(t, testConfig())
		w.Launch(func(r *Rank) {
			switch r.ID() {
			case 0:
				vs := []float64{3.25, -8}[:lanes]
				if err := r.SendValues(2, 2048, 5, vs...); err != nil {
					t.Error(err)
				}
			case 2:
				got, err := r.RecvValues(0, 2048, 5, lanes)
				if err != nil {
					t.Fatal(err)
				}
				want := []float64{3.25, -8}[:lanes]
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("lane %d: got %v, want %v", i, got[i], want[i])
					}
				}
			}
		})
		d, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		if lanes == 1 {
			oneLane = d
		} else {
			twoLane = d
		}
	}
	if oneLane != twoLane {
		t.Fatalf("extra lane changed the schedule: %v vs %v", oneLane, twoLane)
	}
}
