package mpi

import (
	"testing"

	"pacc/internal/simtime"
)

// p2pScenario: rank 1 posts a large intra-node receive early; rank 0
// computes for a while before sending, so rank 1 spins through a long
// wait — the window the PowerAwareP2P option targets.
func p2pScenario(t *testing.T, enabled bool) (elapsed simtime.Duration, energy float64) {
	t.Helper()
	cfg := testConfig()
	cfg.PowerAwareP2P = enabled
	w := mustWorld(t, cfg)
	bytes := cfg.EagerThreshold * 16
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(20 * simtime.Millisecond)
			r.Send(1, bytes, 1)
		case 1:
			r.Recv(0, bytes, 1)
		}
	})
	d, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	return d, w.Rank(1).Core().EnergyJoules()
}

func TestPowerAwareP2PSavesEnergy(t *testing.T) {
	dOff, eOff := p2pScenario(t, false)
	dOn, eOn := p2pScenario(t, true)
	if eOn >= eOff {
		t.Fatalf("power-aware p2p energy %.3f J not below default %.3f J", eOn, eOff)
	}
	// The receiver waits event-driven, so the only slowdown is the two
	// DVFS transitions; bound it tightly.
	extra := dOn - dOff
	if extra > 4*testConfig().Power.ODVFS {
		t.Fatalf("power-aware p2p added %v, want <= 4 transitions", extra)
	}
	saving := 1 - eOn/eOff
	if saving < 0.15 {
		t.Fatalf("saving %.1f%% too small for a wait-dominated exchange", saving*100)
	}
}

// TestPowerAwareP2PRestoresFrequency: cores must come back to fmax.
func TestPowerAwareP2PRestoresFrequency(t *testing.T) {
	cfg := testConfig()
	cfg.PowerAwareP2P = true
	w := mustWorld(t, cfg)
	bytes := cfg.EagerThreshold * 4
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(simtime.Millisecond)
			r.Send(1, bytes, 1)
		case 1:
			r.Recv(0, bytes, 1)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.NProcs; i++ {
		if got := w.Rank(i).Core().FreqGHz(); got != cfg.Power.FMaxGHz {
			t.Fatalf("rank %d left at %.2f GHz", i, got)
		}
	}
}

// TestPowerAwareP2PSkipsWhenAlreadyScaled: if the core is at fmin (a
// power-aware collective owns the frequency), the option must not touch
// it — and must not restore it to fmax behind the collective's back.
func TestPowerAwareP2PSkipsWhenAlreadyScaled(t *testing.T) {
	cfg := testConfig()
	cfg.PowerAwareP2P = true
	w := mustWorld(t, cfg)
	bytes := cfg.EagerThreshold * 4
	freqAfter := make([]float64, 2)
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.ScaleDown()
			r.Compute(simtime.Millisecond)
			r.Send(1, bytes, 1)
			freqAfter[0] = r.Core().FreqGHz()
			r.ScaleUp()
		case 1:
			r.ScaleDown()
			r.Recv(0, bytes, 1)
			freqAfter[1] = r.Core().FreqGHz()
			r.ScaleUp()
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i, f := range freqAfter {
		if f != cfg.Power.FMinGHz {
			t.Fatalf("rank %d frequency %.2f GHz after p2p; the option must not override an owner at fmin", i, f)
		}
	}
}

// TestPowerAwareP2PNoEffectOnInterNode: the option only covers intra-node
// rendezvous; an inter-node exchange must be byte-for-byte identical.
func TestPowerAwareP2PNoEffectOnInterNode(t *testing.T) {
	measure := func(enabled bool) simtime.Duration {
		cfg := testConfig()
		cfg.PowerAwareP2P = enabled
		w := mustWorld(t, cfg)
		bytes := cfg.EagerThreshold * 8
		w.Launch(func(r *Rank) {
			switch r.ID() {
			case 0:
				r.Send(2, bytes, 1)
			case 2:
				r.Recv(0, bytes, 1)
			}
		})
		d, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if off, on := measure(false), measure(true); off != on {
		t.Fatalf("inter-node timing changed: %v vs %v", off, on)
	}
}
