package mpi

import (
	"context"
	"errors"
	"testing"
	"time"
)

// pingPongForever launches ranks that exchange messages endlessly — a
// simulation that only a cancellation can end.
func pingPongForever(w *World) {
	w.Launch(func(r *Rank) {
		peer := r.ID() ^ 1
		for i := 0; ; i++ {
			if r.ID() < peer {
				r.Send(peer, 1024, i)
				r.Recv(peer, 1024, i)
			} else {
				r.Recv(peer, 1024, i)
				r.Send(peer, 1024, i)
			}
		}
	})
}

func TestRunContextCancelAborts(t *testing.T) {
	w := mustWorld(t, testConfig())
	pingPongForever(w)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := w.RunContext(ctx)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err chain %v does not reach context.Canceled", err)
	}
}

func TestRunContextDeadlineAborts(t *testing.T) {
	w := mustWorld(t, testConfig())
	pingPongForever(w)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := w.RunContext(ctx)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err chain %v does not reach context.DeadlineExceeded", err)
	}
}

func TestRunContextDeadOnArrival(t *testing.T) {
	w := mustWorld(t, testConfig())
	var bodyRan bool
	w.Launch(func(r *Rank) { bodyRan = true })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := w.RunContext(ctx)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if bodyRan {
		t.Fatal("rank body executed under a context dead on arrival")
	}
}

// TestRunContextInterruptEveryOne: the tightest poll cadence — check the
// context before every single event — must still abort cleanly and must
// not perturb an uncanceled run (the poll is pure observation).
func TestRunContextInterruptEveryOne(t *testing.T) {
	cfg := testConfig()
	cfg.InterruptEvery = 1

	// Canceled mid-run: the abort still classifies as context.Canceled.
	w := mustWorld(t, cfg)
	pingPongForever(w)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := w.RunContext(ctx)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}

	// Uncanceled: per-event polling yields the exact same virtual time
	// as the default cadence.
	body := func(r *Rank) {
		peer := r.ID() ^ 1
		for i := 0; i < 20; i++ {
			if r.ID() < peer {
				r.Send(peer, 4096, i)
				r.Recv(peer, 4096, i)
			} else {
				r.Recv(peer, 4096, i)
				r.Send(peer, 4096, i)
			}
		}
	}
	w1 := mustWorld(t, testConfig())
	w1.Launch(body)
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	d1, err := w1.RunContext(ctx1)
	if err != nil {
		t.Fatal(err)
	}
	w2 := mustWorld(t, cfg)
	w2.Launch(body)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	d2, err := w2.RunContext(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("default cadence = %v, InterruptEvery=1 = %v; must be identical", d1, d2)
	}
}

func TestConfigValidateInterruptEvery(t *testing.T) {
	cfg := testConfig()
	cfg.InterruptEvery = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative InterruptEvery validated")
	}
}

// TestRunContextBackgroundMatchesRun: a never-cancelable context must
// not perturb the simulation — Run and RunContext(Background) agree to
// the tick.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	body := func(r *Rank) {
		peer := r.ID() ^ 1
		for i := 0; i < 50; i++ {
			if r.ID() < peer {
				r.Send(peer, 4096, i)
				r.Recv(peer, 4096, i)
			} else {
				r.Recv(peer, 4096, i)
				r.Send(peer, 4096, i)
			}
		}
	}
	w1 := mustWorld(t, testConfig())
	w1.Launch(body)
	d1, err := w1.Run()
	if err != nil {
		t.Fatal(err)
	}
	w2 := mustWorld(t, testConfig())
	w2.Launch(body)
	d2, err := w2.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("Run = %v, RunContext(Background) = %v; must be identical", d1, d2)
	}
	// nil behaves as Background.
	w3 := mustWorld(t, testConfig())
	w3.Launch(body)
	if d3, err := w3.RunContext(nil); err != nil || d3 != d1 {
		t.Fatalf("RunContext(nil) = %v, %v; want %v", d3, err, d1)
	}
}
