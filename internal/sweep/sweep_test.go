package sweep

import (
	"reflect"
	"testing"
)

func TestKeyTenantIndependent(t *testing.T) {
	a := Request{Tenant: "alpha", Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024}
	b := a
	b.Tenant = "beta"
	if a.Key() != b.Key() {
		t.Fatal("tenant leaked into the content address; cross-tenant dedupe is dead")
	}
}

func TestKeyNormalizesDefaultIters(t *testing.T) {
	a := Request{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024, Iters: 0}
	b := a
	b.Iters = 1
	if a.Key() != b.Key() {
		t.Fatal("iters=0 and iters=1 are the same computation but hash differently")
	}
}

func TestKeySensitiveToEveryField(t *testing.T) {
	base := Request{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024, Mode: "no-power",
		Iters: 2, Plan: "auto", Fault: "msgloss=0.01", Seed: 7}
	mutations := []func(*Request){
		func(r *Request) { r.Op = "allgather" },
		func(r *Request) { r.Procs = 16 },
		func(r *Request) { r.PPN = 8 },
		func(r *Request) { r.Bytes = 2048 },
		func(r *Request) { r.Mode = "proposed" },
		func(r *Request) { r.Iters = 3 },
		func(r *Request) { r.Plan = "" },
		func(r *Request) { r.Fault = "msgloss=0.02" },
		func(r *Request) { r.Seed = 8 },
	}
	for i, mutate := range mutations {
		m := base
		mutate(&m)
		if m.Key() == base.Key() {
			t.Errorf("mutation %d did not change the key", i)
		}
	}
}

func TestValidateRejectsBadRequests(t *testing.T) {
	for _, bad := range []Request{
		{Op: "teleport", Procs: 8, PPN: 4},
		{Op: "allreduce", Procs: 0, PPN: 4},
		{Op: "allreduce", Procs: 9, PPN: 4},
		{Op: "allreduce", Procs: 8, PPN: 4, Bytes: -1},
		{Op: "allreduce", Procs: 8, PPN: 4, Iters: -2},
		{Op: "allreduce", Procs: 8, PPN: 4, Mode: "overclock"},
		{Op: "allreduce", Procs: 8, PPN: 4, Fault: "gibberish::"},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", bad)
		}
	}
	good := Request{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024, Mode: "no-power"}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
}

func TestGridExpandDeterministic(t *testing.T) {
	g := Grid{
		Ops: []string{"allreduce", "bcast"}, Sizes: []int64{1024, 2048},
		Modes: []string{"no-power", "proposed"}, Seeds: []uint64{1, 2, 3},
		Procs: 8, PPN: 4,
	}
	a, b := g.Expand(), g.Expand()
	if len(a) != 2*2*2*3 {
		t.Fatalf("Expand produced %d requests, want 24", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Expand is not deterministic")
	}
	if a[0].Op != "allreduce" || a[len(a)-1].Op != "bcast" {
		t.Fatal("Expand order is not op-major")
	}
	// Defaults: empty modes/seeds expand to one cell, not zero.
	n := len(Grid{Ops: []string{"allreduce"}, Sizes: []int64{1024}, Procs: 8, PPN: 4}.Expand())
	if n != 1 {
		t.Fatalf("default mode/seed expansion = %d cells, want 1", n)
	}
}

func TestParseSizes(t *testing.T) {
	got, err := ParseSizes("512, 1K,2M")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{512, 1 << 10, 2 << 20}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseSizes = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "1G?", "-4K", "abc"} {
		if _, err := ParseSizes(bad); err == nil {
			t.Errorf("ParseSizes(%q) accepted", bad)
		}
	}
}

func TestParseSeedRange(t *testing.T) {
	got, err := ParseSeedRange("2:5")
	if err != nil || !reflect.DeepEqual(got, []uint64{2, 3, 4}) {
		t.Fatalf("ParseSeedRange(2:5) = %v, %v", got, err)
	}
	got, err = ParseSeedRange("7, 9")
	if err != nil || !reflect.DeepEqual(got, []uint64{7, 9}) {
		t.Fatalf("ParseSeedRange(7,9) = %v, %v", got, err)
	}
	for _, bad := range []string{"5:2", "a:b", "1,x", "0:9999999999"} {
		if _, err := ParseSeedRange(bad); err == nil {
			t.Errorf("ParseSeedRange(%q) accepted", bad)
		}
	}
}
