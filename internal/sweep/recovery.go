package sweep

import (
	"context"
	"errors"
	"path/filepath"
)

// RecoveryReport summarizes one OpenService startup: what the store
// scavenger and journal replay found, and what recovery did about it.
type RecoveryReport struct {
	// Scavenge is the result store's startup report.
	Scavenge ScavengeReport
	// Journal is the WAL replay report (segments, records, truncation).
	Journal WALReplayReport
	// Requeued counts acked-but-incomplete requests put back on the
	// queue — the work a crash would have silently dropped before.
	Requeued int
	// FromStore counts acked requests whose result was already in the
	// content-addressed store (the crash landed between the store
	// write and the completed record, or between it and the ack):
	// recovery repaired the journal instead of re-running them.
	FromStore int
	// Completed counts keys already terminal with a completed record
	// and a verified store entry — nothing owed.
	Completed int
	// Shed counts terminal-without-result (quarantine) outcomes
	// restored so poison stays poisoned across restarts.
	Shed int
	// IdemKeys counts client idempotency keys rebuilt into the
	// admission map.
	IdemKeys int
	// InterruptedLeases counts requests that were mid-execution
	// (started, no terminal record) when the previous daemon died.
	InterruptedLeases int
}

// OpenService opens a durable, crash-recoverable sweep service rooted
// at dir: the content-addressed result store lives in dir itself and
// the write-ahead journal in dir/wal. Replay runs in the background —
// the service is constructed in the "recovering" state, sheds new
// submissions with RecoveringError until replay finishes (see
// WaitReady / State), and meanwhile re-enqueues every acked-but-
// incomplete request from the journal. The store dedupes requests
// whose results already landed, turning at-least-once replay into
// exactly-once effects; RecoveryReport says which path each took.
func OpenService(dir string, cfg Config) (*Service, error) {
	store, scav, err := OpenStore(dir)
	if err != nil {
		return nil, err
	}
	wal, recs, walRep, err := OpenWAL(filepath.Join(dir, "wal"), cfg.SegmentRecords)
	if err != nil {
		return nil, err
	}
	s := newService(store, wal, cfg)
	s.recReport = &RecoveryReport{Scavenge: scav, Journal: walRep}
	go s.recover(recs)
	return s, nil
}

// RecoveryReport blocks until replay finishes and returns the startup
// report (nil for services built with NewService).
func (s *Service) RecoveryReport(ctx context.Context) (*RecoveryReport, error) {
	if err := s.WaitReady(ctx); err != nil {
		return nil, err
	}
	return s.recReport, nil
}

// replayState is one key's reconstructed lifecycle.
type replayState struct {
	req      *Request
	idem     string
	started  bool
	terminal *WALRecord
	order    int // first-accept position, preserves journal order
}

// recover replays the journal into live service state: terminal keys
// stay terminal (idempotency map and quarantine restored), incomplete
// keys are re-enqueued or repaired from the store, and only then does
// the service report ready.
func (s *Service) recover(recs []WALRecord) {
	rep := s.recReport
	if s.cfg.HoldRecovery != nil {
		<-s.cfg.HoldRecovery
	}

	states := map[string]*replayState{}
	var maxLease uint64
	for i, rec := range recs {
		st := states[rec.Key]
		switch rec.Type {
		case RecAccepted:
			if st == nil {
				states[rec.Key] = &replayState{req: rec.Req, idem: rec.Idem, order: i}
			} else if st.terminal != nil {
				// Recovery re-accept after a lost store entry: live again.
				st.terminal = nil
				st.started = false
				if rec.Req != nil {
					st.req = rec.Req
				}
			}
		case RecStarted:
			if rec.Lease > maxLease {
				maxLease = rec.Lease
			}
			if st != nil && st.terminal == nil {
				st.started = true
			}
		case RecCompleted, RecShed:
			if rec.Lease > maxLease {
				maxLease = rec.Lease
			}
			if st != nil && st.terminal == nil {
				r := rec
				st.terminal = &r
			}
		}
	}
	s.bus.Add(CtrRecoveryReplayed, int64(len(recs)))
	s.bus.Add(CtrRecoveryTruncated, int64(rep.Journal.Truncated))

	// Deterministic replay order: keys re-enter the queue in the order
	// their accepted records were journaled.
	ordered := make([]string, 0, len(states))
	for k := range states {
		ordered = append(ordered, k)
	}
	for i := 1; i < len(ordered); i++ { // insertion sort by first-accept order
		for j := i; j > 0 && states[ordered[j-1]].order > states[ordered[j]].order; j-- {
			ordered[j-1], ordered[j] = ordered[j], ordered[j-1]
		}
	}

	repaired := false
	for _, hex := range ordered {
		st := states[hex]
		key, err := ParseKey(hex)
		if err != nil || st.req == nil && st.terminal == nil {
			continue
		}
		if st.started && st.terminal == nil {
			rep.InterruptedLeases++
			s.bus.Add(CtrRecoveryLeases, 1)
		}
		if st.terminal != nil && st.terminal.Type == RecShed {
			// Poison stays poisoned: restore the quarantine entry so
			// resubmits fail fast instead of wedging a fresh pool.
			s.mu.Lock()
			s.quarantine[key] = &QuarantinedError{
				Key: key, Attempts: s.cfg.MaxAttempts,
				LastErr: errors.New("recovered from journal: " + st.terminal.Reason),
			}
			s.restoreIdemLocked(st.idem, key, rep)
			s.mu.Unlock()
			rep.Shed++
			s.bus.Add(CtrRecoveryShed, 1)
			continue
		}

		// Completed or incomplete: either way the store is the effect
		// ledger. Verify it; a completed record over a lost or corrupt
		// entry demotes the key back to incomplete.
		payload, gerr := s.store.Get(key)
		if gerr != nil && !errAsBool[*CorruptEntryError](gerr) {
			payload = nil
		}
		if payload != nil {
			if st.terminal == nil {
				// Crash landed after the store write but before the
				// completed record (or the ack): repair the journal so
				// compaction can release the segment; no re-run.
				s.wal.Append(WALRecord{Type: RecCompleted, Key: hex}, false)
				repaired = true
				rep.FromStore++
				s.bus.Add(CtrRecoveryFromStore, 1)
			} else {
				rep.Completed++
			}
			s.mu.Lock()
			s.restoreIdemLocked(st.idem, key, rep)
			s.mu.Unlock()
			continue
		}
		if st.req == nil {
			continue // terminal record with no surviving request: nothing to run
		}

		// Acked, incomplete, result not in the store: the request the
		// old daemon would have dropped. Re-enqueue it.
		req := *st.req
		j := &job{req: req, key: key, done: make(chan struct{}), recovered: true}
		s.mu.Lock()
		if st.terminal != nil {
			// Completed record but the store lost the bytes: re-accept
			// in the journal so a further crash still owes the work.
			s.wal.Append(WALRecord{Type: RecAccepted, Key: hex, Req: &req, Idem: st.idem}, false)
			repaired = true
		}
		s.inflight[key] = j
		s.tenantLoad[req.Tenant]++
		s.restoreIdemLocked(st.idem, key, rep)
		s.jobWG.Add(1)
		s.enqueueLocked(j)
		s.mu.Unlock()
		rep.Requeued++
		s.bus.Add(CtrRecoveryRequeued, 1)
	}

	s.mu.Lock()
	if maxLease > s.leaseSeq {
		s.leaseSeq = maxLease
	}
	s.mu.Unlock()
	if repaired {
		s.wal.Sync()
	}
	close(s.ready)
}

func (s *Service) restoreIdemLocked(idem string, key Key, rep *RecoveryReport) {
	if idem == "" {
		return
	}
	if _, ok := s.idem[idem]; !ok {
		s.idem[idem] = key
		rep.IdemKeys++
	}
}
