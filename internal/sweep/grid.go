package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// Grid describes a parameter sweep: the cartesian product of ops ×
// sizes × modes × seeds at one job shape. Overlapping grids (shared
// cells) are the dedupe workload: identical cells collapse onto one
// key.
type Grid struct {
	Tenant string   `json:"tenant,omitempty"`
	Ops    []string `json:"ops"`
	Sizes  []int64  `json:"sizes"`
	Modes  []string `json:"modes,omitempty"` // default ["no-power"]
	Seeds  []uint64 `json:"seeds,omitempty"` // default [0]
	Procs  int      `json:"procs"`
	PPN    int      `json:"ppn"`
	Iters  int      `json:"iters,omitempty"`
	Plan   string   `json:"plan,omitempty"`
	Fault  string   `json:"fault,omitempty"`
}

// Expand enumerates the grid's requests in deterministic order
// (op-major, then size, mode, seed).
func (g Grid) Expand() []Request {
	modes := g.Modes
	if len(modes) == 0 {
		modes = []string{"no-power"}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	var out []Request
	for _, op := range g.Ops {
		for _, size := range g.Sizes {
			for _, mode := range modes {
				for _, seed := range seeds {
					out = append(out, Request{
						Tenant: g.Tenant, Op: op, Procs: g.Procs, PPN: g.PPN,
						Bytes: size, Mode: mode, Iters: g.Iters,
						Plan: g.Plan, Fault: g.Fault, Seed: seed,
					})
				}
			}
		}
	}
	return out
}

// ParseSizes parses a comma-separated size list with K/M suffixes
// (powers of two), e.g. "1K,64K,1M".
func ParseSizes(src string) ([]int64, error) {
	var out []int64
	for _, tok := range strings.Split(src, ",") {
		tok = strings.TrimSpace(strings.ToUpper(tok))
		if tok == "" {
			continue
		}
		mult := int64(1)
		switch {
		case strings.HasSuffix(tok, "M"):
			mult = 1 << 20
			tok = strings.TrimSuffix(tok, "M")
		case strings.HasSuffix(tok, "K"):
			mult = 1 << 10
			tok = strings.TrimSuffix(tok, "K")
		}
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("sweep: bad size %q", tok)
		}
		out = append(out, v*mult)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: empty size list %q", src)
	}
	return out, nil
}

// ParseSeedRange parses "lo:hi" (half-open) or a comma-separated seed
// list, e.g. "0:8" → 0..7, "3,17,91" → those three.
func ParseSeedRange(src string) ([]uint64, error) {
	src = strings.TrimSpace(src)
	if src == "" {
		return nil, nil
	}
	if lo, hi, ok := strings.Cut(src, ":"); ok {
		l, err1 := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
		h, err2 := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
		if err1 != nil || err2 != nil || h < l {
			return nil, fmt.Errorf("sweep: bad seed range %q (want lo:hi)", src)
		}
		if h-l > 1<<20 {
			return nil, fmt.Errorf("sweep: seed range %q too large", src)
		}
		out := make([]uint64, 0, h-l)
		for v := l; v < h; v++ {
			out = append(out, v)
		}
		return out, nil
	}
	var out []uint64
	for _, tok := range strings.Split(src, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad seed %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}
