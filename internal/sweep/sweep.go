// Package sweep is the simulation-as-a-service layer: it turns the
// deterministic core (identical request ⇒ byte-identical result) into a
// crash-safe, overload-tolerant backend for sweep campaigns — seed
// sweeps, parameter grids, chaos soaks — engineered for failure as the
// normal case.
//
// The pieces:
//
//   - Request: one memoizable simulation run, content-addressed by the
//     SHA-256 of its canonical encoding (Key). Identical requests from
//     different tenants share one key and therefore one execution.
//   - Store: a content-addressed on-disk result cache with atomic
//     write-rename, per-entry checksums verified on every read, and
//     startup scavenging of torn or corrupt entries.
//   - Service: a worker pool with admission control (bounded queue,
//     per-tenant quotas, typed Overloaded/QuotaExceeded shedding),
//     per-request deadlines threaded down into the simulation via
//     context, bounded retry with exponential backoff, and a poison
//     quarantine so a request that deterministically crashes its worker
//     cannot wedge the pool.
//   - Soak: the service-level chaos harness — worker kills, store
//     corruption, a daemon restart mid-sweep — asserting that no
//     accepted request is lost, duplicated, or answered with bytes that
//     differ from a clean serial run.
//
// Telemetry rides the obs bus (queue depth, shed counters, retry
// histogram, dedupe hit-rate) and is exported with the same
// deterministic metrics JSON the simulator itself uses.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"pacc/internal/fault"
)

// Request describes one simulation run. The zero value is invalid; fill
// the fields and Validate. All fields except Tenant are folded into the
// content-address (Key): two requests that differ only by tenant are
// the same computation and dedupe onto one execution.
type Request struct {
	// Tenant is the admission-control bucket the request is charged to.
	// It is not part of the result key.
	Tenant string `json:"tenant,omitempty"`
	// Idem is an optional client idempotency key, journaled with the
	// accepted record. Resubmitting the same Idem — after a shaky
	// connection, a daemon crash, or out of simple caution — attaches
	// to the original execution instead of being accepted twice;
	// reusing an Idem for a different request is an error. Like Tenant
	// it is not part of the result key.
	Idem string `json:"idem,omitempty"`
	// Op names the collective benchmark to run (see Ops).
	Op string `json:"op"`
	// Procs and PPN shape the job: Procs ranks, PPN per node.
	Procs int `json:"procs"`
	PPN   int `json:"ppn"`
	// Bytes is the per-rank message size.
	Bytes int64 `json:"bytes"`
	// Mode is the power scheme: "no-power", "freq-scaling", "proposed".
	Mode string `json:"mode"`
	// Iters is the number of timed iterations (default 1).
	Iters int `json:"iters,omitempty"`
	// Plan optionally selects a schedule builder ("auto" for cost-based
	// selection) for plan-backed ops.
	Plan string `json:"plan,omitempty"`
	// Fault is an optional deterministic fault-injection spec (the
	// -fault syntax of the CLIs).
	Fault string `json:"fault,omitempty"`
	// Seed, when nonzero, overrides the fault spec's seed — the knob a
	// seed sweep turns. With no fault spec it still salts the key, so
	// seed-sweep grids stay distinct (and memoizable) per seed.
	Seed uint64 `json:"seed,omitempty"`
}

// Key is the content address of a request: SHA-256 over the canonical
// encoding of every key-relevant field.
type Key [sha256.Size]byte

// String returns the key as lowercase hex (the store's file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("sweep: malformed key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// keyPayload is the canonical key-relevant projection of a Request.
// Field order is fixed by the struct, so the JSON encoding — and the
// hash — is stable across processes and releases of this schema.
type keyPayload struct {
	V     int    `json:"v"`
	Op    string `json:"op"`
	Procs int    `json:"procs"`
	PPN   int    `json:"ppn"`
	Bytes int64  `json:"bytes"`
	Mode  string `json:"mode"`
	Iters int    `json:"iters"`
	Plan  string `json:"plan"`
	Fault string `json:"fault"`
	Seed  uint64 `json:"seed"`
}

// Key computes the request's content address. Call after Validate;
// normalization (default iters) happens here so equivalent requests
// collide.
func (r Request) Key() Key {
	iters := r.Iters
	if iters == 0 {
		iters = 1
	}
	enc, err := json.Marshal(keyPayload{
		V: 1, Op: r.Op, Procs: r.Procs, PPN: r.PPN, Bytes: r.Bytes,
		Mode: r.Mode, Iters: iters, Plan: r.Plan, Fault: r.Fault, Seed: r.Seed,
	})
	if err != nil {
		// A struct of scalars cannot fail to marshal.
		panic(err)
	}
	return sha256.Sum256(enc)
}

// Validate checks the request describes a runnable simulation; the
// returned error names the offending field.
func (r Request) Validate() error {
	if _, ok := opTable[r.Op]; !ok {
		return fmt.Errorf("sweep: unknown op %q (have: %s)", r.Op, OpNames())
	}
	if r.Procs <= 0 || r.PPN <= 0 {
		return fmt.Errorf("sweep: procs %d and ppn %d must be positive", r.Procs, r.PPN)
	}
	if r.Procs%r.PPN != 0 {
		return fmt.Errorf("sweep: procs %d not a multiple of ppn %d", r.Procs, r.PPN)
	}
	if r.Bytes < 0 {
		return fmt.Errorf("sweep: negative message size %d", r.Bytes)
	}
	if r.Iters < 0 {
		return fmt.Errorf("sweep: negative iters %d", r.Iters)
	}
	if _, err := parseMode(r.Mode); err != nil {
		return err
	}
	if r.Fault != "" {
		if _, err := fault.Parse(r.Fault); err != nil {
			return fmt.Errorf("sweep: bad fault spec: %w", err)
		}
	}
	return nil
}

// Typed admission and lifecycle errors. Callers classify with
// errors.As; the service never sheds silently.

// OverloadedError reports a request shed because the bounded queue was
// full — offered load exceeded capacity and the service chose explicit
// rejection over unbounded buffering. Retry later (the queue drains at
// worker speed).
type OverloadedError struct {
	// Depth is the configured queue bound that was hit.
	Depth int
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("sweep: overloaded: queue full at depth %d", e.Depth)
}

// QuotaExceededError reports a request shed because its tenant already
// has its full quota of requests queued or running.
type QuotaExceededError struct {
	Tenant string
	Limit  int
}

func (e *QuotaExceededError) Error() string {
	return fmt.Sprintf("sweep: tenant %q quota exceeded (%d in flight)", e.Tenant, e.Limit)
}

// QuarantinedError reports a poisoned request: it failed MaxAttempts
// times (crash, error, or deadline) and has been quarantined so it
// cannot wedge the pool. Further submissions of the same key fail fast
// with this error until the service restarts.
type QuarantinedError struct {
	Key      Key
	Attempts int
	// LastErr is the failure that tipped the request into quarantine.
	LastErr error
}

func (e *QuarantinedError) Error() string {
	return fmt.Sprintf("sweep: request %s quarantined after %d failed attempts: %v",
		e.Key, e.Attempts, e.LastErr)
}

func (e *QuarantinedError) Unwrap() error { return e.LastErr }

// WorkerCrashError reports that the worker executing a request crashed
// (a panic unwound the run). The service restarts the worker and
// retries the request under its attempt budget.
type WorkerCrashError struct {
	// Value is the recovered panic value.
	Value any
}

func (e *WorkerCrashError) Error() string {
	return fmt.Sprintf("sweep: worker crashed: %v", e.Value)
}

// ShutdownError reports a request abandoned because the service was
// closed before it completed. The work is not lost: resubmitting after
// a restart dedupes against the persistent store and reruns only what
// never finished.
type ShutdownError struct{ Key Key }

func (e *ShutdownError) Error() string {
	return fmt.Sprintf("sweep: service shut down before request %s completed", e.Key)
}

// RecoveringError reports a submission shed because the service is
// still replaying its journal. Transient by construction: retry after
// readiness (the daemon's /readyz flips from "recovering" to "ready").
type RecoveringError struct{}

func (e *RecoveringError) Error() string {
	return "sweep: service recovering (journal replay in progress), retry shortly"
}

// KilledError reports the daemon dying abruptly (the in-process
// kill -9 of the chaos harness) under a submission or a pending
// ticket. The client cannot know whether the ack landed: resubmit the
// same idempotency key against the restarted daemon — journal recovery
// plus idempotent admission make the retry safe either way.
type KilledError struct {
	Key Key
	// Point names the crash boundary that fired (chaos campaigns).
	Point string
}

func (e *KilledError) Error() string {
	if e.Point != "" {
		return fmt.Sprintf("sweep: daemon killed at %q boundary under request %s", e.Point, e.Key)
	}
	return fmt.Sprintf("sweep: daemon killed under request %s", e.Key)
}

// IdemConflictError reports an idempotency key reused for a different
// request — a client bug the service refuses to paper over.
type IdemConflictError struct {
	Idem string
	Have Key
	Got  Key
}

func (e *IdemConflictError) Error() string {
	return fmt.Sprintf("sweep: idempotency key %q already names request %s, not %s",
		e.Idem, e.Have, e.Got)
}

// Telemetry metric names (see Service.WriteStats).
const (
	CtrAccepted       = "sweep.requests.accepted"
	CtrCompleted      = "sweep.requests.completed"
	CtrFailed         = "sweep.requests.failed"
	CtrShedOverload   = "sweep.shed.overload"
	CtrShedQuota      = "sweep.shed.quota"
	CtrShedDraining   = "sweep.shed.draining"
	CtrDedupeStore    = "sweep.dedupe.hits.store"
	CtrDedupeInflight = "sweep.dedupe.hits.inflight"
	CtrDedupeMiss     = "sweep.dedupe.misses"
	CtrRetries        = "sweep.retries"
	CtrQuarantined    = "sweep.quarantined"
	CtrWorkerCrashes  = "sweep.worker.crashes"
	CtrWorkerKills    = "sweep.worker.kills"
	CtrWorkerRestarts = "sweep.worker.restarts"
	CtrStoreEvictions = "sweep.store.corrupt_evicted"
	CtrQueueDepth     = "sweep.queue.depth"
	CtrExecutions     = "sweep.requests.executed"
	CtrShedRecovering = "sweep.shed.recovering"
	CtrDedupeIdem     = "sweep.dedupe.hits.idem"

	// Journal and recovery counters (services opened via OpenService).
	CtrJournalRecords    = "sweep.journal.records"
	CtrJournalSyncs      = "sweep.journal.syncs"
	CtrRecoveryReplayed  = "sweep.recovery.records_replayed"
	CtrRecoveryRequeued  = "sweep.recovery.requeued"
	CtrRecoveryFromStore = "sweep.recovery.completed_from_store"
	CtrRecoveryShed      = "sweep.recovery.shed_restored"
	CtrRecoveryTruncated = "sweep.recovery.truncated_segments"
	CtrRecoveryLeases    = "sweep.recovery.interrupted_leases"
	HistAttempts         = "sweep.attempts_per_request"
	HistQueueWaitSecs    = "sweep.queue_wait_seconds"
	HistExecuteSecs      = "sweep.execute_seconds"
)
