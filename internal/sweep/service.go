package sweep

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"time"

	"pacc/internal/obs"
	"pacc/internal/simtime"
)

// Config tunes a Service. Zero values select the documented defaults.
type Config struct {
	// Workers is the pool size (default 4).
	Workers int
	// QueueDepth bounds the admission queue; a full queue sheds new
	// submissions with OverloadedError (default 64). Retries of
	// already-accepted requests re-enter past the bound — admission is
	// the only gate, accepted work is never shed.
	QueueDepth int
	// TenantQuota caps how many jobs one tenant may have queued or
	// running; beyond it submissions shed with QuotaExceededError
	// (0 = unlimited). Dedupe attaches ride free: they consume no
	// worker capacity.
	TenantQuota int
	// MaxAttempts is the failure budget per request before quarantine
	// (default 3). Worker kills do not count: being shot is the
	// service's fault, not the request's.
	MaxAttempts int
	// RetryBackoff is the base of the exponential retry delay
	// (default 2ms; attempt n waits base << (n-1), capped at base<<6).
	RetryBackoff time.Duration
	// RequestTimeout is the per-request execution deadline, threaded
	// into the simulation as a context deadline (0 = none).
	RequestTimeout time.Duration
	// Run executes requests (default Simulate).
	Run RunFunc
	// SegmentRecords rotates journal segments after this many records
	// (default DefaultSegmentRecords; only meaningful via OpenService).
	SegmentRecords int
	// CrashHook, when non-nil, is consulted at every durability
	// boundary (see CrashAccept..CrashResolve); returning true kills
	// the daemon on the spot, exactly as SIGKILL would. Chaos only.
	CrashHook func(point string, key Key) bool
	// HoldRecovery, when non-nil, parks journal replay until the
	// channel closes, keeping the service observably "recovering".
	// Test hook only.
	HoldRecovery <-chan struct{}
}

// Crash-point names, the durability boundaries a chaos CrashHook can
// fire at. Ordered along a request's life:
//
//	accept      admission granted, accepted record NOT yet journaled
//	journal     accepted record durable, ack not yet returned
//	start       lease journaled, execution not yet begun
//	store-write result in the store, completed record not yet journaled
//	resolve     completed record journaled, tickets not yet resolved
const (
	CrashAccept     = "accept"
	CrashJournal    = "journal"
	CrashStart      = "start"
	CrashStoreWrite = "store-write"
	CrashResolve    = "resolve"
)

// CrashPoints lists every boundary in order (chaos schedules index it).
var CrashPoints = []string{CrashAccept, CrashJournal, CrashStart, CrashStoreWrite, CrashResolve}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.Run == nil {
		c.Run = Simulate
	}
	return c
}

// errWorkerKilled is the cancel cause distinguishing "your worker was
// shot" from a request's own deadline or error: the former requeues
// free of charge, the latter burns an attempt.
var errWorkerKilled = errors.New("sweep: worker killed")

// errDaemonKilled is the cancel cause when the whole daemon dies
// abruptly (chaos kill -9): nothing is journaled, nothing resolves
// normally, and recovery on the next incarnation owes the work.
var errDaemonKilled = errors.New("sweep: daemon killed")

// job is one execution: the unit of dedupe, retry and quarantine. Many
// tickets may ride one job.
type job struct {
	req       Request
	key       Key
	attempts  int
	completed bool
	result    []byte
	err       error
	done      chan struct{}
	// lease is the journaled worker lease currently executing the job
	// (0 when queued); recovered marks a job re-enqueued from the
	// journal rather than a live Submit.
	lease     uint64
	recovered bool
}

// Ticket is one submission's handle on its (possibly shared) job.
type Ticket struct{ j *job }

// Key returns the request's content address.
func (t *Ticket) Key() Key { return t.j.key }

// Done is closed when the result (or a terminal error) is ready.
func (t *Ticket) Done() <-chan struct{} { return t.j.done }

// Result blocks until the job resolves and returns the payload or the
// typed terminal error.
func (t *Ticket) Result() ([]byte, error) {
	<-t.j.done
	return t.j.result, t.j.err
}

// Wait is Result bounded by ctx.
func (t *Ticket) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-t.j.done:
		return t.j.result, t.j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

type worker struct {
	id     int
	dying  bool
	cancel context.CancelCauseFunc // cancels the current job's context; nil when idle
}

// Service shards run requests across a worker pool over a persistent
// result store. Failure is the normal case: workers crash and are
// restarted, poisoned requests are quarantined, corrupt store entries
// are evicted and recomputed, and overload is shed with typed errors.
// All methods are safe for concurrent use.
type Service struct {
	cfg   Config
	store *Store
	// wal is the durable ack journal (nil for in-memory services built
	// with NewService; set by OpenService).
	wal *WAL
	// bus is the service's own telemetry (wall-clock side): queue
	// depth, shed counters, retry histograms, dedupe hit-rate.
	bus *obs.Bus

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []*job
	inflight   map[Key]*job
	tenantLoad map[string]int
	quarantine map[Key]*QuarantinedError
	workers    map[int]*worker
	nextWorker int
	// idem maps client idempotency keys onto content keys, rebuilt
	// from the journal at recovery.
	idem map[string]Key
	// leaseSeq numbers worker leases, monotone across restarts (seeded
	// past the journal's max at recovery).
	leaseSeq uint64
	// draining sheds new admissions while already-accepted work runs to
	// completion (Shutdown); closed is the abrupt stop that fails
	// everything still pending (Close); killed is the abrupt death of
	// the whole daemon (chaos kill -9): journal frozen, no shed
	// records, pending tickets torn with KilledError.
	draining bool
	closed   bool
	killed   bool

	// ready is closed once journal replay finishes (immediately for
	// NewService); Submit sheds RecoveringError until then.
	ready     chan struct{}
	recReport *RecoveryReport

	workerWG sync.WaitGroup
	jobWG    sync.WaitGroup
}

// NewService starts a service over store (which may be nil for a
// purely in-memory, restart-amnesiac service; tests use that). For a
// journaled, crash-recoverable service use OpenService.
func NewService(store *Store, cfg Config) *Service {
	s := newService(store, nil, cfg)
	close(s.ready) // no journal, nothing to replay
	return s
}

func newService(store *Store, wal *WAL, cfg Config) *Service {
	s := &Service{
		cfg:        cfg.withDefaults(),
		store:      store,
		wal:        wal,
		bus:        obs.NewBus(simtime.NewEngine()),
		inflight:   map[Key]*job{},
		tenantLoad: map[string]int{},
		quarantine: map[Key]*QuarantinedError{},
		workers:    map[int]*worker{},
		idem:       map[string]Key{},
		ready:      make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.bus.SetHistBuckets(HistAttempts, []float64{1, 2, 3, 4, 5, 8, 16})
	s.bus.SetHistBuckets(HistQueueWaitSecs, obs.SpanDurationBuckets)
	s.bus.SetHistBuckets(HistExecuteSecs, obs.SpanDurationBuckets)
	s.mu.Lock()
	for i := 0; i < s.cfg.Workers; i++ {
		s.startWorkerLocked()
	}
	s.mu.Unlock()
	return s
}

// Bus exposes the telemetry bus (tests and the stats endpoint).
func (s *Service) Bus() *obs.Bus { return s.bus }

// Store returns the backing store (nil for in-memory services).
func (s *Service) Store() *Store { return s.store }

// WriteStats exports the telemetry snapshot as deterministic-schema
// metrics JSON.
func (s *Service) WriteStats(w io.Writer) error { return s.bus.WriteMetricsJSON(w) }

// DedupeHitRate reports hits/(hits+misses) across store and in-flight
// dedupe (0 before any submission).
func (s *Service) DedupeHitRate() float64 {
	hits := s.bus.Counter(CtrDedupeStore) + s.bus.Counter(CtrDedupeInflight)
	total := hits + s.bus.Counter(CtrDedupeMiss)
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Submit admits one request. The fast paths return a completed ticket
// (store hit) or attach to an identical in-flight job; otherwise the
// request passes admission control — tenant quota, then queue bound —
// and joins the queue. Shed requests receive typed errors
// (*QuotaExceededError, *OverloadedError) and cost nothing.
func (s *Service) Submit(req Request) (*Ticket, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	key := req.Key()

	s.mu.Lock()
	if ok, err := s.admissibleLocked(key); !ok {
		s.mu.Unlock()
		return nil, err
	}
	// Idempotency fast path: a known Idem either attaches to its
	// in-flight job or falls through to the store lookup (terminal).
	if req.Idem != "" {
		if have, ok := s.idem[req.Idem]; ok {
			if have != key {
				s.mu.Unlock()
				return nil, &IdemConflictError{Idem: req.Idem, Have: have, Got: key}
			}
			if j := s.inflight[key]; j != nil {
				s.bus.Add(CtrDedupeIdem, 1)
				s.mu.Unlock()
				return &Ticket{j: j}, nil
			}
		}
	}
	s.mu.Unlock()

	// Store lookup happens outside the lock (it is disk I/O). The
	// window against a concurrent completion is benign: worst case the
	// same deterministic computation runs once more and produces the
	// same bytes.
	if s.store != nil {
		payload, err := s.store.Get(key)
		if err != nil {
			var ce *CorruptEntryError
			if !errors.As(err, &ce) {
				return nil, err
			}
			// The entry was evicted on read; recompute below.
			s.bus.Add(CtrStoreEvictions, 1)
		}
		if payload != nil {
			s.bus.Add(CtrDedupeStore, 1)
			j := &job{req: req, key: key, completed: true, result: payload,
				done: make(chan struct{})}
			close(j.done)
			return &Ticket{j: j}, nil
		}
	}

	s.mu.Lock()
	if ok, err := s.admissibleLocked(key); !ok {
		s.mu.Unlock()
		return nil, err
	}
	if j := s.inflight[key]; j != nil {
		s.bus.Add(CtrDedupeInflight, 1)
		if req.Idem != "" {
			s.idem[req.Idem] = key
		}
		s.mu.Unlock()
		return &Ticket{j: j}, nil
	}
	if s.cfg.TenantQuota > 0 && s.tenantLoad[req.Tenant] >= s.cfg.TenantQuota {
		s.bus.Add(CtrShedQuota, 1)
		s.mu.Unlock()
		return nil, &QuotaExceededError{Tenant: req.Tenant, Limit: s.cfg.TenantQuota}
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.bus.Add(CtrShedOverload, 1)
		s.mu.Unlock()
		return nil, &OverloadedError{Depth: s.cfg.QueueDepth}
	}
	// Reserve the admission slot before the journal fsync so a
	// concurrent duplicate attaches instead of double-accepting.
	j := &job{req: req, key: key, done: make(chan struct{})}
	s.inflight[key] = j
	s.tenantLoad[req.Tenant]++
	if req.Idem != "" {
		s.idem[req.Idem] = key
	}
	s.jobWG.Add(1)
	s.mu.Unlock()

	// Durability boundary: the ack below is a promise the journal must
	// back. Crash-point "accept" models dying before the record lands
	// (nothing acked, nothing owed); "journal" models dying after (the
	// record is durable, recovery owes the client this result even
	// though the ack never made it back).
	if s.crashAt(CrashAccept, key) {
		return nil, &KilledError{Key: key, Point: CrashAccept}
	}
	if s.wal != nil {
		err := s.wal.Append(WALRecord{
			Type: RecAccepted, Key: key.String(), Req: &req, Idem: req.Idem,
		}, true)
		if err != nil {
			s.mu.Lock()
			killed := s.killed
			s.mu.Unlock()
			if killed || errors.Is(err, ErrWALFrozen) {
				return nil, &KilledError{Key: key}
			}
			// Journal write failed on a live daemon: roll the
			// reservation back and refuse the ack we cannot back.
			s.fail(j, err)
			return nil, err
		}
		s.bus.Add(CtrJournalRecords, 1)
	}
	if s.crashAt(CrashJournal, key) {
		return nil, &KilledError{Key: key, Point: CrashJournal}
	}

	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return nil, &KilledError{Key: key}
	}
	if s.closed {
		s.mu.Unlock()
		s.fail(j, &ShutdownError{Key: key})
		return nil, &ShutdownError{Key: key}
	}
	s.enqueueLocked(j)
	s.bus.Add(CtrAccepted, 1)
	s.bus.Add(CtrDedupeMiss, 1)
	s.mu.Unlock()
	return &Ticket{j: j}, nil
}

// admissibleLocked gates every Submit entry: the daemon must be alive,
// ready (journal replay done), not draining, and the key not poisoned.
func (s *Service) admissibleLocked(key Key) (bool, error) {
	if s.killed {
		return false, &KilledError{Key: key}
	}
	if s.closed || s.draining {
		s.bus.Add(CtrShedDraining, 1)
		return false, &ShutdownError{Key: key}
	}
	select {
	case <-s.ready:
	default:
		s.bus.Add(CtrShedRecovering, 1)
		return false, &RecoveringError{}
	}
	if qe := s.quarantine[key]; qe != nil {
		return false, qe
	}
	return true, nil
}

// crashAt consults the chaos hook at a durability boundary. When the
// hook fires the daemon dies on the spot — journal frozen, workers
// abandoned, pending tickets torn — exactly as SIGKILL would land
// between the two instructions. Callers unwind with KilledError.
func (s *Service) crashAt(point string, key Key) bool {
	if s.cfg.CrashHook == nil || !s.cfg.CrashHook(point, key) {
		return false
	}
	s.Kill()
	return true
}

// SubmitBatch admits a batch, returning one ticket-or-error per
// request, index-aligned.
func (s *Service) SubmitBatch(reqs []Request) ([]*Ticket, []error) {
	tickets := make([]*Ticket, len(reqs))
	errs := make([]error, len(reqs))
	for i, r := range reqs {
		tickets[i], errs[i] = s.Submit(r)
	}
	return tickets, errs
}

func (s *Service) enqueueLocked(j *job) {
	s.queue = append(s.queue, j)
	s.bus.Add(CtrQueueDepth, 1)
	s.cond.Signal()
}

func (s *Service) startWorkerLocked() *worker {
	w := &worker{id: s.nextWorker}
	s.nextWorker++
	s.workers[w.id] = w
	s.workerWG.Add(1)
	go s.workerLoop(w)
	return w
}

func (s *Service) workerLoop(w *worker) {
	defer s.workerWG.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed && !s.killed && !w.dying {
			s.cond.Wait()
		}
		if s.closed || s.killed || w.dying {
			s.workerExitedLocked(w)
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.bus.Add(CtrQueueDepth, -1)
		s.leaseSeq++
		j.lease = s.leaseSeq
		attempt := j.attempts + 1
		ctx, cancel := context.WithCancelCause(context.Background())
		w.cancel = cancel
		s.mu.Unlock()

		// Journal the lease (async: losing it only widens replay back
		// to the accepted record), then honor the "start" crash point —
		// SIGKILL between taking the lease and doing the work.
		if s.wal != nil {
			if err := s.wal.Append(WALRecord{
				Type: RecStarted, Key: j.key.String(), Lease: j.lease, Attempt: attempt,
			}, false); err == nil {
				s.bus.Add(CtrJournalRecords, 1)
			}
		}
		if s.crashAt(CrashStart, j.key) {
			cancel(errDaemonKilled)
			continue // loop observes killed and exits
		}

		s.execute(w, j, ctx, cancel)
	}
}

// workerExitedLocked retires w and, unless the service is closing or
// the daemon is dead, starts a replacement: a killed worker is a
// fault, not a downsize.
func (s *Service) workerExitedLocked(w *worker) {
	delete(s.workers, w.id)
	if !s.closed && !s.killed && w.dying {
		s.startWorkerLocked()
		s.bus.Add(CtrWorkerRestarts, 1)
	}
}

// runGuarded invokes the runner with crash containment: a panicking
// request surfaces as a typed WorkerCrashError instead of taking the
// process down.
func (s *Service) runGuarded(ctx context.Context, req Request) (res []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &WorkerCrashError{Value: r}
		}
	}()
	return s.cfg.Run(ctx, req)
}

func (s *Service) execute(w *worker, j *job, ctx context.Context, cancel context.CancelCauseFunc) {
	runCtx := ctx
	var cancelTimeout context.CancelFunc
	if s.cfg.RequestTimeout > 0 {
		runCtx, cancelTimeout = context.WithTimeout(ctx, s.cfg.RequestTimeout)
	}
	start := time.Now()
	s.bus.Add(CtrExecutions, 1)
	res, err := s.runGuarded(runCtx, j.req)
	s.bus.Observe(HistExecuteSecs, time.Since(start).Seconds())
	if cancelTimeout != nil {
		cancelTimeout()
	}
	cancel(nil)

	if _, crashed := errAs[*WorkerCrashError](err); crashed {
		s.bus.Add(CtrWorkerCrashes, 1)
	}

	s.mu.Lock()
	w.cancel = nil
	killed := context.Cause(ctx) == errWorkerKilled
	daemonDead := s.killed || context.Cause(ctx) == errDaemonKilled
	lease := j.lease
	s.mu.Unlock()
	if daemonDead {
		// kill -9 landed mid-run: no store write, no journal record,
		// no resolution. The next incarnation replays from accepted.
		return
	}

	switch {
	case err == nil:
		// Persist before resolving tickets: a result a client has seen
		// must survive a daemon restart, or "restart then resubmit"
		// could recompute and — on a nondeterministic regression —
		// contradict it. Put is atomic; failure leaves a clean miss.
		if s.store != nil {
			if perr := s.store.Put(j.key, res); perr != nil {
				s.fail(j, perr)
				return
			}
		}
		// "store-write": dead after the result landed but before the
		// completed record — recovery must dedupe against the store
		// instead of re-running. "resolve": dead after the completed
		// record — recovery marks the key terminal, clients re-attach.
		if s.crashAt(CrashStoreWrite, j.key) {
			return
		}
		if s.wal != nil {
			if werr := s.wal.Append(WALRecord{
				Type: RecCompleted, Key: j.key.String(), Lease: lease,
			}, false); werr == nil {
				s.bus.Add(CtrJournalRecords, 1)
			}
		}
		if s.crashAt(CrashResolve, j.key) {
			return
		}
		s.complete(j, res)
	case killed:
		// The worker was shot mid-request. Not the request's fault:
		// requeue with no attempt charged.
		s.bus.Add(CtrRetries, 1)
		s.requeueNow(j)
	default:
		s.retryOrQuarantine(j, err)
	}
}

// errAs is errors.As with the target allocated for the caller.
func errAs[T error](err error) (T, bool) {
	var t T
	ok := errors.As(err, &t)
	return t, ok
}

func (s *Service) retryOrQuarantine(j *job, err error) {
	s.mu.Lock()
	if j.completed {
		// Already resolved (a Close failed it mid-run); don't let the
		// stale outcome burn attempts or quarantine the key.
		s.mu.Unlock()
		return
	}
	j.attempts++
	attempts := j.attempts
	if attempts >= s.cfg.MaxAttempts {
		qe := &QuarantinedError{Key: j.key, Attempts: attempts, LastErr: err}
		s.quarantine[j.key] = qe
		s.mu.Unlock()
		s.bus.Add(CtrQuarantined, 1)
		// Terminal-without-result: journal the shed so recovery does
		// not resurrect a poison request into a fresh worker pool.
		if s.wal != nil {
			if werr := s.wal.Append(WALRecord{
				Type: RecShed, Key: j.key.String(), Reason: qe.Error(),
			}, false); werr == nil {
				s.bus.Add(CtrJournalRecords, 1)
			}
		}
		s.fail(j, qe)
		return
	}
	s.mu.Unlock()
	s.bus.Add(CtrRetries, 1)
	backoff := s.cfg.RetryBackoff << uint(min(attempts-1, 6))
	backoff += retryJitter(j.key, attempts, backoff)
	time.AfterFunc(backoff, func() { s.requeueNow(j) })
}

// retryJitter spreads concurrent retries without randomness: the jitter
// is a splitmix64 hash of the request key and the attempt number,
// bounded to half the exponential backoff. Identical requests retry on
// identical schedules across daemon restarts — a reproduced failure
// replays with the same timing — while distinct keys desynchronize
// instead of thundering back in lockstep.
func retryJitter(key Key, attempt int, backoff time.Duration) time.Duration {
	if backoff <= 0 {
		return 0
	}
	x := binary.LittleEndian.Uint64(key[:8]) ^ uint64(attempt)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return time.Duration(x % uint64(backoff/2+1))
}

// requeueNow re-enters an accepted job past the admission gate (its
// admission already happened; shedding it now would lose accepted
// work). A closed service fails it instead.
func (s *Service) requeueNow(j *job) {
	s.mu.Lock()
	if j.completed || s.killed {
		s.mu.Unlock()
		return
	}
	if s.closed {
		s.mu.Unlock()
		s.fail(j, &ShutdownError{Key: j.key})
		return
	}
	s.enqueueLocked(j)
	s.mu.Unlock()
}

// complete resolves a job exactly once with a result.
func (s *Service) complete(j *job, res []byte) { s.resolve(j, res, nil) }

// fail resolves a job exactly once with a terminal error.
func (s *Service) fail(j *job, err error) { s.resolve(j, nil, err) }

func (s *Service) resolve(j *job, res []byte, err error) {
	s.mu.Lock()
	if j.completed {
		s.mu.Unlock()
		return
	}
	j.completed = true
	j.result = res
	j.err = err
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.tenantLoad[j.req.Tenant]--
	if s.tenantLoad[j.req.Tenant] <= 0 {
		delete(s.tenantLoad, j.req.Tenant)
	}
	s.mu.Unlock()

	if err == nil {
		s.bus.Add(CtrCompleted, 1)
	} else {
		s.bus.Add(CtrFailed, 1)
	}
	s.bus.Observe(HistAttempts, float64(j.attempts+1))
	close(j.done)
	s.jobWG.Done()
}

// KillWorker simulates a crash of one worker: its current request is
// torn down mid-flight (and later retried free of charge) and the
// worker goroutine exits; a replacement starts immediately. Returns
// false if the id names no live worker. The chaos harness's trigger —
// and a reasonable admin verb.
func (s *Service) KillWorker(id int) bool {
	s.mu.Lock()
	w, ok := s.workers[id]
	if !ok || w.dying {
		s.mu.Unlock()
		return false
	}
	w.dying = true
	cancel := w.cancel
	s.cond.Broadcast()
	s.mu.Unlock()
	s.bus.Add(CtrWorkerKills, 1)
	if cancel != nil {
		cancel(errWorkerKilled)
	}
	return true
}

// WorkerIDs lists the live workers (sorted order not guaranteed).
func (s *Service) WorkerIDs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int, 0, len(s.workers))
	for id := range s.workers {
		ids = append(ids, id)
	}
	return ids
}

// QueueDepth reports how many accepted jobs await a worker.
func (s *Service) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Drain blocks until every accepted job has resolved. Call after the
// last Submit; submissions racing Drain may be missed.
func (s *Service) Drain() { s.jobWG.Wait() }

// Shutdown stops the service gracefully: new submissions are shed with
// ShutdownError from the moment it is called, while everything already
// accepted — queued, running, or waiting out a retry backoff — runs to
// completion and persists as usual. It returns once the last accepted
// job has resolved and all workers have exited. Safe to call
// concurrently with Close (Close wins: pending work fails).
func (s *Service) Shutdown() {
	s.mu.Lock()
	already := s.closed || s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.jobWG.Wait()
		s.Close()
		return
	}
	// Someone else is already draining or closing; just wait out the
	// workers so every Shutdown caller observes the same quiesced state.
	s.workerWG.Wait()
}

// Close stops the service abruptly — the daemon-kill of the chaos
// harness. Every unresolved job fails with a typed ShutdownError and
// running requests are canceled; completed results already persisted
// in the store survive, which is exactly what makes a restart cheap:
// resubmitting the same sweep dedupes against the store and reruns
// only what never finished. Close blocks until all workers exit.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.workerWG.Wait()
		return
	}
	s.closed = true
	pending := make([]*job, 0, len(s.inflight))
	for _, j := range s.inflight {
		pending = append(pending, j)
	}
	s.bus.Add(CtrQueueDepth, -int64(len(s.queue)))
	s.queue = nil
	var cancels []context.CancelCauseFunc
	for _, w := range s.workers {
		if w.cancel != nil {
			cancels = append(cancels, w.cancel)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	for _, cancel := range cancels {
		cancel(context.Canceled)
	}
	for _, j := range pending {
		s.fail(j, &ShutdownError{Key: j.key})
	}
	s.workerWG.Wait()
	if s.wal != nil {
		s.wal.Close()
	}
}

// Kill is the in-process kill -9: the journal freezes mid-air (no shed
// records, no final sync), workers are torn down without post-
// processing, the store sees no further writes from this incarnation,
// and every pending ticket fails with KilledError so in-process
// clients unblock (the stand-in for their connection resetting). What
// Close leaves consistent, Kill leaves merely recoverable — which is
// the property the journal exists to guarantee. Idempotent.
func (s *Service) Kill() {
	s.mu.Lock()
	if s.killed || s.closed {
		s.mu.Unlock()
		return
	}
	s.killed = true
	pending := make([]*job, 0, len(s.inflight))
	for _, j := range s.inflight {
		pending = append(pending, j)
	}
	s.bus.Add(CtrQueueDepth, -int64(len(s.queue)))
	s.queue = nil
	var cancels []context.CancelCauseFunc
	for _, w := range s.workers {
		if w.cancel != nil {
			cancels = append(cancels, w.cancel)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	if s.wal != nil {
		s.wal.Freeze()
	}
	for _, cancel := range cancels {
		cancel(errDaemonKilled)
	}
	for _, j := range pending {
		s.fail(j, &KilledError{Key: j.key})
	}
}

// Killed reports whether Kill has fired.
func (s *Service) Killed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

// State names the service's lifecycle phase for readiness probes:
// "recovering" (journal replay in progress), "ready", "draining"
// (graceful shutdown), "closed", or "killed".
func (s *Service) State() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.killed:
		return "killed"
	case s.closed:
		return "closed"
	case s.draining:
		return "draining"
	}
	select {
	case <-s.ready:
		return "ready"
	default:
		return "recovering"
	}
}

// WaitReady blocks until journal replay finishes (immediately for
// services with no journal) or ctx expires.
func (s *Service) WaitReady(ctx context.Context) error {
	select {
	case <-s.ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Attach returns a ticket for key without submitting anything: the
// in-flight (possibly journal-recovered) job if one exists, else a
// completed ticket served from the store, else a terminal quarantine
// error, else (nil, false). This is how a client that lost its
// connection to a killed daemon re-joins its acked work after restart
// — no resubmission, recovery alone carries the request.
func (s *Service) Attach(key Key) (*Ticket, bool, error) {
	s.mu.Lock()
	if j := s.inflight[key]; j != nil {
		s.mu.Unlock()
		return &Ticket{j: j}, true, nil
	}
	qe := s.quarantine[key]
	s.mu.Unlock()
	if qe != nil {
		return nil, true, qe
	}
	if s.store != nil {
		payload, err := s.store.Get(key)
		if err != nil && !errAsBool[*CorruptEntryError](err) {
			return nil, false, err
		}
		if payload != nil {
			j := &job{key: key, completed: true, result: payload, done: make(chan struct{})}
			close(j.done)
			return &Ticket{j: j}, true, nil
		}
	}
	return nil, false, nil
}

// AttachIdem is Attach addressed by client idempotency key.
func (s *Service) AttachIdem(idem string) (*Ticket, bool, error) {
	s.mu.Lock()
	key, ok := s.idem[idem]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	return s.Attach(key)
}

// errAsBool is errors.As as a predicate.
func errAsBool[T error](err error) bool {
	var t T
	return errors.As(err, &t)
}

// Journal exposes the write-ahead journal (nil for NewService).
func (s *Service) Journal() *WAL { return s.wal }
