package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testKey(i int) Key {
	return Request{Op: "allreduce", Procs: 8, PPN: 4, Bytes: int64(i + 1)}.Key()
}

func TestStoreRoundtrip(t *testing.T) {
	s, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	payload := []byte(`{"result":"fine"}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q, want %q", got, payload)
	}
	if got, err := s.Get(testKey(1)); err != nil || got != nil {
		t.Fatalf("missing key: got %q, %v; want nil, nil", got, err)
	}
	if n, _ := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestStoreTornWriteEvictedAndRecomputed(t *testing.T) {
	s, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	payload := []byte("a payload long enough to truncate meaningfully")
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.TruncateEntry(key, 20); !ok || err != nil {
		t.Fatalf("TruncateEntry: %v %v", ok, err)
	}
	_, err = s.Get(key)
	var ce *CorruptEntryError
	if !errors.As(err, &ce) {
		t.Fatalf("Get after truncation: err = %v, want CorruptEntryError", err)
	}
	// Eviction means the next read is a clean miss, and a rewrite heals.
	if got, err := s.Get(key); err != nil || got != nil {
		t.Fatalf("after eviction: got %q, %v; want clean miss", got, err)
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(key); !bytes.Equal(got, payload) {
		t.Fatalf("recomputed entry reads back wrong: %q", got)
	}
}

func TestStoreBitFlipEvicted(t *testing.T) {
	s, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	if err := s.Put(key, []byte("the truth, checksummed")); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.CorruptEntry(key, 13); !ok || err != nil {
		t.Fatalf("CorruptEntry: %v %v", ok, err)
	}
	_, err = s.Get(key)
	var ce *CorruptEntryError
	if !errors.As(err, &ce) {
		t.Fatalf("bit flip not detected: err = %v", err)
	}
	if ce.Reason != "checksum mismatch" {
		t.Fatalf("reason = %q, want checksum mismatch", ce.Reason)
	}
}

func TestStoreScavengeOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good, torn := testKey(0), testKey(1)
	if err := s.Put(good, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(torn, []byte("about to be torn")); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.TruncateEntry(torn, 10); !ok || err != nil {
		t.Fatal(err)
	}
	// A crash mid-Put leaves a temp file; a foreign file must survive.
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"crashed"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not ours"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rep, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kept != 1 || rep.Corrupt != 1 || rep.Torn != 1 {
		t.Fatalf("scavenge report = %+v, want {Kept:1 Corrupt:1 Torn:1}", rep)
	}
	if got, err := s2.Get(good); err != nil || !bytes.Equal(got, []byte("good")) {
		t.Fatalf("good entry lost in scavenge: %q, %v", got, err)
	}
	if got, err := s2.Get(torn); err != nil || got != nil {
		t.Fatalf("torn entry should be a clean miss: %q, %v", got, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatalf("foreign file removed by scavenge: %v", err)
	}
	if keys, _ := s2.Keys(); len(keys) != 1 || keys[0] != good {
		t.Fatalf("Keys = %v, want just the good key", keys)
	}
}

func TestStoreBadMagicEvicted(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	if err := os.WriteFile(s.path(key), []byte("paccstore/v0 deadbeef 4\nabcd"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.Get(key)
	var ce *CorruptEntryError
	if !errors.As(err, &ce) || ce.Reason != "bad magic" {
		t.Fatalf("err = %v, want bad magic CorruptEntryError", err)
	}
}

func TestStoreConcurrentSameKeyWriters(t *testing.T) {
	s, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	// Determinism means racing writers of one key carry identical bytes;
	// atomic rename makes any interleaving safe.
	payload := []byte("identical bytes from every writer")
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Put(key, payload)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	got, err := s.Get(key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("after 16 racing writers: %q, %v", got, err)
	}
	// No temp-file litter left behind.
	entries, _ := os.ReadDir(s.Dir())
	for _, de := range entries {
		if de.Name() != key.String()+entryExt {
			t.Fatalf("unexpected file left in store: %s", de.Name())
		}
	}
}

func TestStoreEntryEncoding(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("pacc"), 100)} {
		dec, reason := decodeEntry(encodeEntry(payload))
		if reason != "" {
			t.Fatalf("roundtrip payload len %d: %s", len(payload), reason)
		}
		if !bytes.Equal(dec, payload) {
			t.Fatalf("roundtrip payload len %d: got len %d", len(payload), len(dec))
		}
	}
	for _, tc := range []struct {
		raw    string
		reason string
	}{
		{"no newline anywhere", "truncated header"},
		{"wrong magic h 1\nx", "bad magic"},
		{fmt.Sprintf("%s zz 1\nx", storeMagic), "malformed checksum"},
	} {
		if _, reason := decodeEntry([]byte(tc.raw)); reason != tc.reason {
			t.Errorf("decodeEntry(%q) reason = %q, want %q", tc.raw, reason, tc.reason)
		}
	}
}
