package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"pacc/internal/collective"
	"pacc/internal/fault"
	"pacc/internal/mpi"
	"pacc/internal/obs"
)

// RunFunc executes one request and returns its result payload. The
// production runner is Simulate; tests substitute crashing, hanging or
// counting runners. A RunFunc must be deterministic in req — the whole
// dedupe story rests on identical requests producing identical bytes —
// and must honor ctx (cancellation, deadline) promptly.
type RunFunc func(ctx context.Context, req Request) ([]byte, error)

// opTable maps request op names onto collective entry points.
var opTable = map[string]func(c *mpi.Comm, bytes int64, opt collective.Options) error{
	"alltoall":       collective.AlltoallPairwise,
	"bruck":          collective.AlltoallBruck,
	"allgather":      collective.Allgather,
	"allgather_ring": collective.AllgatherRing,
	"allgather_rd":   collective.AllgatherRD,
	"allreduce":      collective.Allreduce,
	"allreduce_rd":   collective.AllreduceRD,
	"allreduce_topo": collective.AllreduceTopoAware,
	"allreduce_ft": func(c *mpi.Comm, b int64, o collective.Options) error {
		_, _, err := collective.AllreduceSumFT(c, b, float64(c.Owner().ID()+1), o)
		return err
	},
	"bcast": func(c *mpi.Comm, b int64, o collective.Options) error {
		return collective.Bcast(c, 0, b, o)
	},
	"bcast_binomial": func(c *mpi.Comm, b int64, o collective.Options) error {
		return collective.BcastBinomial(c, 0, b, o)
	},
	"reduce": func(c *mpi.Comm, b int64, o collective.Options) error {
		return collective.Reduce(c, 0, b, o)
	},
	"gather": func(c *mpi.Comm, b int64, o collective.Options) error {
		return collective.Gather(c, 0, b, o)
	},
	"scatter": func(c *mpi.Comm, b int64, o collective.Options) error {
		return collective.Scatter(c, 0, b, o)
	},
}

// OpNames lists the runnable ops, sorted.
func OpNames() string {
	names := make([]string, 0, len(opTable))
	for k := range opTable {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func parseMode(s string) (collective.PowerMode, error) {
	switch s {
	case "no-power", "default", "":
		return collective.NoPower, nil
	case "freq-scaling", "dvfs":
		return collective.FreqScaling, nil
	case "proposed", "power-aware":
		return collective.Proposed, nil
	default:
		return 0, fmt.Errorf("sweep: unknown power mode %q (no-power, freq-scaling, proposed)", s)
	}
}

// Result is the decoded form of a stored result payload.
type Result struct {
	Schema    string          `json:"schema"`
	Key       string          `json:"key"`
	Op        string          `json:"op"`
	ElapsedUs float64         `json:"elapsed_us"`
	EnergyJ   float64         `json:"energy_j"`
	Metrics   json.RawMessage `json:"metrics"`
}

// ResultSchema is the schema tag of result payloads.
const ResultSchema = "pacc.sweep.result/v1"

// DecodeResult parses a result payload produced by Simulate.
func DecodeResult(payload []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, fmt.Errorf("sweep: malformed result payload: %w", err)
	}
	if r.Schema != ResultSchema {
		return nil, fmt.Errorf("sweep: result schema %q, want %q", r.Schema, ResultSchema)
	}
	return &r, nil
}

// Simulate runs the request's simulation to completion and returns the
// deterministic result payload: elapsed virtual time, cluster energy,
// and the full metrics snapshot of an attached obs bus. Identical
// requests produce byte-identical payloads; ctx aborts a running
// simulation between events with a typed mpi.CanceledError.
func Simulate(ctx context.Context, req Request) ([]byte, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		return nil, err
	}
	cfg := mpi.DefaultConfig()
	cfg.NProcs = req.Procs
	cfg.PPN = req.PPN
	cfg.Topo.Nodes = req.Procs / req.PPN
	if req.Fault != "" {
		spec, err := fault.Parse(req.Fault)
		if err != nil {
			return nil, err
		}
		if req.Seed != 0 {
			spec.Seed = req.Seed
		}
		cfg.Fault = spec
	}
	iters := req.Iters
	if iters == 0 {
		iters = 1
	}
	call := opTable[req.Op]
	opt := collective.Options{Power: mode, Plan: req.Plan}

	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	bus := obs.NewBus(w.Engine())
	w.AttachObs(bus)
	// A crash-stop spec kills ranks permanently and the plain barrier
	// has no failure path: run iterations back-to-back instead (the
	// resilient collective synchronizes survivors itself).
	skipBarrier := cfg.Fault != nil && len(cfg.Fault.Crashes) > 0
	var callErr error
	w.Launch(func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		for i := 0; i < iters; i++ {
			if !skipBarrier {
				collective.Barrier(c)
			}
			if err := call(c, req.Bytes, opt); err != nil {
				if callErr == nil {
					callErr = err
				}
				return
			}
		}
	})
	elapsed, err := w.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if callErr != nil {
		return nil, callErr
	}
	var metrics bytes.Buffer
	if err := bus.WriteMetricsJSON(&metrics); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(Result{
		Schema:    ResultSchema,
		Key:       req.Key().String(),
		Op:        req.Op,
		ElapsedUs: elapsed.Micros(),
		EnergyJ:   w.Station().EnergyJoules(),
		Metrics:   json.RawMessage(metrics.Bytes()),
	})
	if err != nil {
		return nil, err
	}
	return payload, nil
}
