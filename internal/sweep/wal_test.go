package sweep

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// seg builds a segment image from raw record frames.
func seg(frames ...[]byte) []byte {
	out := []byte(walMagic)
	for _, f := range frames {
		out = append(out, f...)
	}
	return out
}

// frame builds one raw frame around an arbitrary payload.
func frame(payload []byte) []byte {
	out := make([]byte, walFrameBytes+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[walFrameBytes:], payload)
	return out
}

func recFrame(t RecType, key string) []byte {
	return encodeWALRecord(WALRecord{Type: t, Key: key})
}

// TestWALDecodeHardening is the torn-and-flipped-bits table: every way
// a segment can rot on disk must decode to "trust the prefix, stop at
// the rot" — never a panic, never a record past the damage.
func TestWALDecodeHardening(t *testing.T) {
	a := recFrame(RecAccepted, "k1")
	b := recFrame(RecCompleted, "k1")

	bitFlipped := append([]byte(nil), b...)
	bitFlipped[walFrameBytes+2] ^= 0x40 // flip a payload bit; CRC now lies

	zeroLen := make([]byte, walFrameBytes)

	oversized := make([]byte, walFrameBytes)
	binary.LittleEndian.PutUint32(oversized[0:4], MaxWALRecord+1)

	futureType := frame([]byte(`{"t":"paused","k":"k9"}`))
	alienJSON := frame([]byte(`this is not json`))

	cases := []struct {
		name       string
		raw        []byte
		wantRecs   int
		wantSkip   int
		wantReason string
		// wantGood, when >= 0, pins the trustworthy byte offset.
		wantGood int
	}{
		{"empty segment", seg(), 0, 0, "", -1},
		{"clean pair", seg(a, b), 2, 0, "", -1},
		{"bad magic", []byte("paccwal/v9\n" + "junk"), 0, 0, "bad segment magic", 0},
		{"no magic at all", []byte{0x00, 0x01}, 0, 0, "bad segment magic", 0},
		{"torn frame header", seg(a, b[:walFrameBytes-3]), 1, 0, "torn frame header", len(walMagic) + len(a)},
		{"torn payload", seg(a, b[:len(b)-4]), 1, 0, "torn payload", len(walMagic) + len(a)},
		{"bit-flipped payload", seg(a, bitFlipped, b), 1, 0, "checksum mismatch", len(walMagic) + len(a)},
		{"zero-length prefix", seg(a, zeroLen, b), 1, 0, "zero-length prefix", len(walMagic) + len(a)},
		{"oversized length prefix", seg(a, oversized), 1, 0, fmt.Sprintf("oversized length prefix %d", MaxWALRecord+1), len(walMagic) + len(a)},
		{"unknown record type skipped", seg(a, futureType, b), 2, 1, "", -1},
		{"alien payload skipped", seg(a, alienJSON, b), 2, 1, "", -1},
		{"damage shadows later good records", seg(bitFlipped, a, b), 0, 0, "checksum mismatch", len(walMagic)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, good, skipped, reason := decodeSegment(tc.raw)
			if len(recs) != tc.wantRecs {
				t.Errorf("records = %d, want %d", len(recs), tc.wantRecs)
			}
			if skipped != tc.wantSkip {
				t.Errorf("skipped = %d, want %d", skipped, tc.wantSkip)
			}
			if reason != tc.wantReason {
				t.Errorf("reason = %q, want %q", reason, tc.wantReason)
			}
			if tc.wantGood >= 0 && good != tc.wantGood {
				t.Errorf("goodLen = %d, want %d", good, tc.wantGood)
			}
			// Decode must be idempotent over its own truncation: the
			// trusted prefix re-decodes to exactly the same records.
			if reason != "bad segment magic" {
				again, g2, _, r2 := decodeSegment(tc.raw[:good])
				if len(again) != len(recs) || g2 != good {
					t.Errorf("re-decode of trusted prefix: %d recs good=%d, want %d/%d",
						len(again), g2, len(recs), good)
				}
				if r2 != "" && r2 != reason {
					t.Errorf("re-decode reason %q", r2)
				}
			}
		})
	}
}

// FuzzWALDecode throws arbitrary bytes at the segment decoder: it must
// never panic, never claim more trustworthy bytes than exist, and must
// be stable over its own truncation (replay-after-truncate sees the
// same records).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte(walMagic))
	f.Add(seg(recFrame(RecAccepted, "k"), recFrame(RecCompleted, "k")))
	f.Add(seg(recFrame(RecAccepted, "k")[:5]))
	f.Add([]byte("paccwal/v2\nfuture"))
	corrupt := seg(recFrame(RecShed, "kk"))
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, good, skipped, reason := decodeSegment(raw)
		if good < 0 || good > len(raw) {
			t.Fatalf("goodLen %d out of range [0,%d]", good, len(raw))
		}
		if reason == "bad segment magic" {
			return
		}
		if good < len(walMagic) {
			t.Fatalf("accepted magic but goodLen %d < header", good)
		}
		recs2, good2, skipped2, reason2 := decodeSegment(raw[:good])
		if len(recs2) != len(recs) || good2 != good || skipped2 != skipped {
			t.Fatalf("unstable decode: (%d,%d,%d) then (%d,%d,%d) reason=%q/%q",
				len(recs), good, skipped, len(recs2), good2, skipped2, reason, reason2)
		}
	})
}

// TestWALTornTailPhysicallyTruncated writes a segment, tears its tail
// on disk, and reopens: the good prefix replays, the file is cut back
// to it, and a third open sees a clean (untruncated) journal.
func TestWALTornTailPhysicallyTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(WALRecord{Type: RecAccepted, Key: fmt.Sprintf("k%d", i)}, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, segName(0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, recs, rep, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Errorf("replayed %d records from torn segment, want 4", len(recs))
	}
	if rep.Truncated != 1 {
		t.Errorf("Truncated = %d, want 1", rep.Truncated)
	}
	w2.Close()

	if fi, err := os.Stat(path); err != nil || fi.Size() >= int64(len(raw)) {
		t.Errorf("segment not physically truncated: %v size %d", err, fi.Size())
	}
	_, recs3, rep3, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Truncated != 0 || len(recs3) != 4 {
		t.Errorf("third open: truncated=%d recs=%d, want 0/4", rep3.Truncated, len(recs3))
	}
}

// TestWALBadMagicSegmentRemoved: a segment with garbage where the magic
// should be is untrustworthy wholesale and removed on open.
func TestWALBadMagicSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(3)), []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs, rep, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if rep.Removed != 1 || len(recs) != 0 {
		t.Errorf("removed=%d recs=%d, want 1/0", rep.Removed, len(recs))
	}
	if _, err := os.Stat(filepath.Join(dir, segName(3))); !os.IsNotExist(err) {
		t.Error("bad-magic segment still on disk")
	}
	// The fresh active segment must start past the dead one's number.
	if _, err := os.Stat(filepath.Join(dir, segName(4))); err != nil {
		t.Errorf("active segment: %v", err)
	}
}

// TestWALRotationAndCompaction drives enough terminal pairs through a
// tiny segment size to force rotation, then checks fully-terminal
// segments are deleted: at most active + one predecessor remain.
func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := OpenWAL(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := w.Append(WALRecord{Type: RecAccepted, Key: key}, false); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(WALRecord{Type: RecCompleted, Key: key}, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.SegmentCount(); got > 2 {
		t.Errorf("live segments = %d after fully-terminal run, want <= 2", got)
	}
	w.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, walSegPrefix+"*"+walSegExt))
	if len(segs) > 2 {
		t.Errorf("%d segment files on disk, want <= 2: %v", len(segs), segs)
	}

	// Reopen: nothing live to replay.
	_, recs, rep, err := OpenWAL(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	state := map[string]bool{}
	for _, r := range recs {
		switch r.Type {
		case RecAccepted:
			state[r.Key] = true
		case RecCompleted, RecShed:
			state[r.Key] = false
		}
	}
	for _, v := range state {
		if v {
			live++
		}
	}
	if live != 0 {
		t.Errorf("replay found %d live keys, want 0 (rep %+v)", live, rep)
	}
}

// TestWALLiveKeyPinsSegment: a segment with one live accepted key must
// survive compaction until that key goes terminal.
func TestWALLiveKeyPinsSegment(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := OpenWAL(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(WALRecord{Type: RecAccepted, Key: "pinned"}, false) // segment 0
	w.Append(WALRecord{Type: RecAccepted, Key: "other"}, false)
	for i := 0; i < 6; i++ { // rotate a few times
		key := fmt.Sprintf("x%d", i)
		w.Append(WALRecord{Type: RecAccepted, Key: key}, false)
		w.Append(WALRecord{Type: RecCompleted, Key: key}, false)
	}
	w.Append(WALRecord{Type: RecCompleted, Key: "other"}, false)
	if _, err := os.Stat(filepath.Join(dir, segName(0))); err != nil {
		t.Fatalf("segment 0 compacted away while key %q still live: %v", "pinned", err)
	}
	w.Append(WALRecord{Type: RecCompleted, Key: "pinned"}, false)
	if _, err := os.Stat(filepath.Join(dir, segName(0))); !os.IsNotExist(err) {
		t.Error("segment 0 survives with no live keys")
	}
	w.Close()
}

// TestWALGroupCommit hammers sync appends from many goroutines: every
// append must be durable on return, and group commit must issue far
// fewer fsyncs than appends.
func TestWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := w.Append(WALRecord{Type: RecAccepted, Key: fmt.Sprintf("g%d", i)}, true); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	syncs := w.Syncs()
	w.Close()
	if syncs > n {
		t.Errorf("%d fsyncs for %d concurrent sync appends; group commit is not grouping", syncs, n)
	}
	_, recs, _, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Errorf("replayed %d records, want %d", len(recs), n)
	}
	t.Logf("%d appends, %d fsyncs", n, syncs)
}

// TestWALFreeze: appends and blocked group-commit waiters fail with
// ErrWALFrozen after Freeze, and the file is never written again.
func TestWALFreeze(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(WALRecord{Type: RecAccepted, Key: "k"}, true)
	w.Freeze()
	if err := w.Append(WALRecord{Type: RecShed, Key: "k"}, false); err != ErrWALFrozen {
		t.Errorf("append after freeze: %v, want ErrWALFrozen", err)
	}
	if err := w.Sync(); err != ErrWALFrozen {
		t.Errorf("sync after freeze: %v, want ErrWALFrozen", err)
	}
	w.Close()
	_, recs, _, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "k" {
		t.Errorf("replay after freeze: %+v", recs)
	}
}

// TestWALRoundTrip: full records (request, idem, lease, reason) survive
// the encode/append/replay cycle byte-exactly where it matters.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Tenant: "t", Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024, Mode: "proposed"}
	key := req.Key().String()
	w.Append(WALRecord{Type: RecAccepted, Key: key, Req: &req, Idem: "idem-1"}, true)
	w.Append(WALRecord{Type: RecStarted, Key: key, Lease: 7, Attempt: 2}, false)
	w.Append(WALRecord{Type: RecShed, Key: key, Reason: "poison"}, false)
	w.Close()

	_, recs, rep, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 3 || len(recs) != 3 {
		t.Fatalf("replayed %d records (rep %+v), want 3", len(recs), rep)
	}
	if recs[0].Req == nil || recs[0].Req.Op != "allreduce" || recs[0].Idem != "idem-1" {
		t.Errorf("accepted record mangled: %+v", recs[0])
	}
	if recs[0].Req.Key().String() != key {
		t.Error("replayed request hashes to a different key")
	}
	if recs[1].Lease != 7 || recs[1].Attempt != 2 {
		t.Errorf("started record mangled: %+v", recs[1])
	}
	if recs[2].Reason != "poison" {
		t.Errorf("shed record mangled: %+v", recs[2])
	}
}

// TestWALMixedVersionSegment: a segment interleaving current records
// with validly-framed future-format ones replays the current records
// and counts the rest as skipped — no truncation, no error.
func TestWALMixedVersionSegment(t *testing.T) {
	dir := t.TempDir()
	image := seg(
		recFrame(RecAccepted, "k1"),
		frame([]byte(`{"t":"lease-renewed","k":"k1","epoch":9}`)),
		recFrame(RecCompleted, "k1"),
		frame([]byte(`{"v2":{"nested":"format"}}`)),
	)
	if err := os.WriteFile(filepath.Join(dir, segName(0)), image, 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs, rep, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(recs) != 2 || rep.Skipped != 2 || rep.Truncated != 0 {
		t.Errorf("recs=%d skipped=%d truncated=%d, want 2/2/0", len(recs), rep.Skipped, rep.Truncated)
	}
}
