package sweep

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The write-ahead journal makes an ack durable: once Submit returns a
// ticket, the accepted request is on disk and survives any number of
// daemon crashes. The journal is a sequence of segment files, each a
// magic header followed by length-prefixed, CRC-checksummed records.
// Disks tear and flip bits, so decode is defensive: a segment is
// trusted exactly up to its first bad frame (torn tail, zero or
// oversized length, checksum mismatch) and logically truncated there;
// a record with a valid frame but an unknown type is skipped, not
// fatal, so a newer daemon's records do not brick an older one.
//
// Durability split: accepted records are fsynced before the ack (the
// contract), via group commit so concurrent submitters share one disk
// flush. Started/completed/shed records are appended without an
// immediate fsync — losing them only widens replay from "resume where
// we were" to "re-run from accepted", and the content-addressed store
// turns that at-least-once replay back into exactly-once effects.
//
// Compaction: a segment whose accepted keys have all reached a
// terminal record (completed or shed, in any segment) holds nothing
// replay needs and is deleted on the spot. Terminal records orphaned
// by that deletion are ignored at replay. After a fully-terminal sweep
// at most the active segment and one predecessor remain.

const (
	walMagic      = "paccwal/v1\n"
	walSegPrefix  = "wal-"
	walSegExt     = ".seg"
	walFrameBytes = 8 // u32 length + u32 crc32, little-endian
	// MaxWALRecord bounds one record's payload; a larger length prefix
	// is corruption, not a big record.
	MaxWALRecord = 1 << 20
	// DefaultSegmentRecords rotates the active segment after this many
	// records (Config.SegmentRecords overrides).
	DefaultSegmentRecords = 1024
)

// ErrWALFrozen reports an append to a journal frozen by Freeze — the
// in-process stand-in for the daemon being dead.
var ErrWALFrozen = errors.New("sweep: journal frozen")

// RecType tags a journal record.
type RecType string

const (
	// RecAccepted is written (and fsynced) before Submit acks: the
	// request, its key, and its client idempotency key.
	RecAccepted RecType = "accepted"
	// RecStarted marks a worker taking a lease on the request.
	RecStarted RecType = "started"
	// RecCompleted marks the result durably in the content-addressed
	// store; replay treats the key as terminal.
	RecCompleted RecType = "completed"
	// RecShed marks a terminal non-result outcome (quarantine): replay
	// must not resurrect the key.
	RecShed RecType = "shed"
)

// WALRecord is one journal entry. Key is always present; the other
// fields depend on Type.
type WALRecord struct {
	Type RecType `json:"t"`
	Key  string  `json:"k"`
	// Req is the full request, carried only by accepted records so
	// replay can re-enqueue without any other state.
	Req *Request `json:"req,omitempty"`
	// Idem is the client idempotency key (accepted records).
	Idem string `json:"idem,omitempty"`
	// Lease identifies which worker lease produced a started or
	// completed record; recovery counts interrupted leases.
	Lease uint64 `json:"lease,omitempty"`
	// Attempt is the execution attempt the lease covers (started).
	Attempt int `json:"attempt,omitempty"`
	// Reason explains a shed record (quarantine cause).
	Reason string `json:"reason,omitempty"`
}

// encodeWALRecord frames one record: u32 payload length, u32 CRC32
// (IEEE) of the payload, then the JSON payload.
func encodeWALRecord(rec WALRecord) []byte {
	payload, err := json.Marshal(rec)
	if err != nil {
		// A struct of scalars and a validated Request cannot fail.
		panic(err)
	}
	out := make([]byte, walFrameBytes+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[walFrameBytes:], payload)
	return out
}

// decodeSegment walks one segment's bytes and returns every decodable
// record, the byte offset up to which the segment is trustworthy, how
// many validly-framed records were skipped (unknown type or
// undecodable payload — mixed-version tolerance), and the reason
// decoding stopped short ("" when the segment is clean to the end).
func decodeSegment(raw []byte) (recs []WALRecord, goodLen int, skipped int, reason string) {
	if !bytes.HasPrefix(raw, []byte(walMagic)) {
		return nil, 0, 0, "bad segment magic"
	}
	off := len(walMagic)
	for off < len(raw) {
		if len(raw)-off < walFrameBytes {
			return recs, off, skipped, "torn frame header"
		}
		length := binary.LittleEndian.Uint32(raw[off : off+4])
		sum := binary.LittleEndian.Uint32(raw[off+4 : off+8])
		if length == 0 {
			return recs, off, skipped, "zero-length prefix"
		}
		if length > MaxWALRecord {
			return recs, off, skipped, fmt.Sprintf("oversized length prefix %d", length)
		}
		body := off + walFrameBytes
		if len(raw)-body < int(length) {
			return recs, off, skipped, "torn payload"
		}
		payload := raw[body : body+int(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, skipped, "checksum mismatch"
		}
		var rec WALRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// Valid frame, alien payload: a future record format.
			skipped++
		} else {
			switch rec.Type {
			case RecAccepted, RecStarted, RecCompleted, RecShed:
				recs = append(recs, rec)
			default:
				skipped++ // frame intact, type from another era
			}
		}
		off = body + int(length)
	}
	return recs, off, skipped, ""
}

// WALReplayReport summarizes what OpenWAL found on disk.
type WALReplayReport struct {
	// Segments is how many live segment files were read.
	Segments int
	// Records is how many valid records were replayed.
	Records int
	// Skipped counts validly-framed records of unknown type/version.
	Skipped int
	// Truncated counts segments physically truncated at a bad record
	// (torn tail or bit flip).
	Truncated int
	// Removed counts segments discarded wholesale (bad magic).
	Removed int
	// Compacted counts fully-terminal segments deleted at open.
	Compacted int
}

const (
	keyLive     = 1
	keyTerminal = 2
)

// WAL is the segmented write-ahead journal. Safe for concurrent use.
type WAL struct {
	dir        string
	maxRecords int

	mu       sync.Mutex
	syncCond *sync.Cond
	f        *os.File
	seq      int // active segment number
	recs     int // records in the active segment
	frozen   bool
	closed   bool

	// Group commit: appendSeq numbers buffered appends, syncedSeq is
	// the highest append known flushed. One appender becomes the sync
	// leader; the rest wait on syncCond.
	appendSeq uint64
	syncedSeq uint64
	syncing   bool
	syncs     int64 // fsyncs issued (telemetry)

	// Compaction bookkeeping: where each key was accepted, its
	// lifecycle state, and per-segment live counts.
	acceptedIn map[string]int
	keyState   map[string]uint8
	livePerSeg map[int]int
	segs       map[int]bool // non-active live segments
}

func segName(seq int) string {
	return fmt.Sprintf("%s%08d%s", walSegPrefix, seq, walSegExt)
}

func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, walSegPrefix) || !strings.HasSuffix(name, walSegExt) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, walSegPrefix), walSegExt))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// OpenWAL opens (creating if needed) the journal at dir, replays every
// live segment in order, physically truncates torn tails so future
// replays are clean, deletes segments that are wholly corrupt or fully
// terminal, and starts a fresh active segment. The returned records are
// in append order across segments.
func OpenWAL(dir string, maxRecords int) (*WAL, []WALRecord, WALReplayReport, error) {
	var rep WALReplayReport
	if maxRecords <= 0 {
		maxRecords = DefaultSegmentRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, rep, err
	}
	w := &WAL{
		dir:        dir,
		maxRecords: maxRecords,
		acceptedIn: map[string]int{},
		keyState:   map[string]uint8{},
		livePerSeg: map[int]int{},
		segs:       map[int]bool{},
	}
	w.syncCond = sync.NewCond(&w.mu)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, rep, err
	}
	var seqs []int
	for _, de := range entries {
		if n, ok := parseSegName(de.Name()); ok {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)

	var all []WALRecord
	maxSeq := -1
	for _, seq := range seqs {
		maxSeq = seq
		path := filepath.Join(dir, segName(seq))
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, rep, err
		}
		recs, goodLen, skipped, reason := decodeSegment(raw)
		rep.Skipped += skipped
		if reason == "bad segment magic" {
			// Nothing in the file is trustworthy; drop it whole.
			os.Remove(path)
			rep.Removed++
			continue
		}
		if reason != "" {
			// Cut the rot off so the next replay never re-reads it.
			if err := os.Truncate(path, int64(goodLen)); err != nil {
				return nil, nil, rep, err
			}
			rep.Truncated++
		}
		rep.Segments++
		rep.Records += len(recs)
		w.segs[seq] = true
		for _, rec := range recs {
			w.applyLocked(rec, seq)
		}
		all = append(all, recs...)
	}
	rep.Compacted = w.compactLocked()

	// Fresh active segment: torn history stays immutable behind us.
	w.seq = maxSeq + 1
	if err := w.openActiveLocked(); err != nil {
		return nil, nil, rep, err
	}
	return w, all, rep, nil
}

// applyLocked folds one record into the compaction bookkeeping.
func (w *WAL) applyLocked(rec WALRecord, seq int) {
	switch rec.Type {
	case RecAccepted:
		if w.keyState[rec.Key] == keyLive {
			return // duplicate accept of a live key; first wins
		}
		// First accept, or a recovery re-accept of a key whose result
		// the store lost: live again, owned by this segment.
		w.keyState[rec.Key] = keyLive
		w.acceptedIn[rec.Key] = seq
		w.livePerSeg[seq]++
	case RecCompleted, RecShed:
		if w.keyState[rec.Key] != keyLive {
			return // orphan terminal (its accept segment was compacted)
		}
		w.keyState[rec.Key] = keyTerminal
		w.livePerSeg[w.acceptedIn[rec.Key]]--
	}
}

// compactLocked deletes every non-active segment with no live accepted
// keys and returns how many it removed.
func (w *WAL) compactLocked() int {
	n := 0
	for seq := range w.segs {
		if w.livePerSeg[seq] > 0 {
			continue
		}
		if err := os.Remove(filepath.Join(w.dir, segName(seq))); err == nil || os.IsNotExist(err) {
			delete(w.segs, seq)
			delete(w.livePerSeg, seq)
			n++
		}
	}
	return n
}

func (w *WAL) openActiveLocked() error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.seq)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.recs = 0
	return nil
}

// rotateLocked seals the active segment (fsynced) and opens the next.
func (w *WAL) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs++
	w.syncedSeq = w.appendSeq
	if err := w.f.Close(); err != nil {
		return err
	}
	w.segs[w.seq] = true
	w.seq++
	if err := w.openActiveLocked(); err != nil {
		return err
	}
	w.compactLocked()
	return nil
}

// Append writes one record. With sync true it does not return until
// the record is fsynced (group commit: concurrent appenders share one
// flush); with sync false the record rides to disk with the next sync,
// rotation, or Close. Returns ErrWALFrozen after Freeze.
func (w *WAL) Append(rec WALRecord, sync bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.frozen || w.closed {
		return ErrWALFrozen
	}
	if w.recs >= w.maxRecords {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(encodeWALRecord(rec)); err != nil {
		return err
	}
	w.recs++
	w.appendSeq++
	my := w.appendSeq
	w.applyLocked(rec, w.seq)
	if rec.Type == RecCompleted || rec.Type == RecShed {
		w.compactLocked()
	}
	if !sync {
		return nil
	}
	for w.syncedSeq < my {
		if w.frozen || w.closed {
			return ErrWALFrozen
		}
		if w.syncing {
			w.syncCond.Wait()
			continue
		}
		// Become the sync leader for everything appended so far.
		w.syncing = true
		target := w.appendSeq
		f := w.f
		w.mu.Unlock()
		err := f.Sync()
		w.mu.Lock()
		w.syncing = false
		if err == nil {
			w.syncs++
			if target > w.syncedSeq {
				w.syncedSeq = target
			}
		}
		w.syncCond.Broadcast()
		if err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes every buffered (async) append to disk.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.frozen || w.closed {
		return ErrWALFrozen
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs++
	w.syncedSeq = w.appendSeq
	return nil
}

// Freeze stops the journal cold — no further appends, no further
// fsyncs — simulating the daemon dying mid-air. Blocked group-commit
// waiters return ErrWALFrozen.
func (w *WAL) Freeze() {
	w.mu.Lock()
	w.frozen = true
	w.syncCond.Broadcast()
	w.mu.Unlock()
}

// Close syncs and closes the active segment (no-op if frozen).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	w.syncCond.Broadcast()
	if w.frozen {
		return w.f.Close()
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	w.syncs++
	return w.f.Close()
}

// SegmentCount reports live segment files including the active one.
func (w *WAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs) + 1
}

// Syncs reports how many fsyncs the journal has issued.
func (w *WAL) Syncs() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Dir returns the journal directory.
func (w *WAL) Dir() string { return w.dir }
