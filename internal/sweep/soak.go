package sweep

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// SoakOptions tunes one chaos campaign (see Soak).
type SoakOptions struct {
	// Dir is the service directory (required; store + journal persist
	// across every daemon kill in the campaign).
	Dir string
	// Seed drives the deterministic chaos schedule (which workers die,
	// which entries are corrupted, where the daemon crashes, how the
	// offered load is shuffled).
	Seed uint64
	// Offered is the total number of submissions (default 200). The
	// request population is two overlapping grids, so offered load
	// carries heavy duplication — the dedupe workload.
	Offered int
	// Workers is the pool size (default 4).
	Workers int
	// QueueDepth bounds the admission queue. The default, Offered/16,
	// guarantees offered load far exceeds capacity so shedding is
	// exercised, not just possible.
	QueueDepth int
	// Kills is how many worker kills to inject (default 6).
	Kills int
	// Corruptions is how many store-corruption injections (default 6).
	Corruptions int
	// Restart, when true (the default via the CLI), kills the daemon
	// abruptly mid-campaign — kill -9, not a drain — at seeded
	// durability boundaries, and requires journal recovery alone to
	// finish every acked request: clients re-attach, they do not
	// resubmit. Crashes sets how many such kills (default 3).
	Restart bool
	Crashes int
	// Timeout bounds the whole campaign (default 3m).
	Timeout time.Duration
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// SoakReport is the campaign's outcome. Violations empty = pass.
type SoakReport struct {
	Offered        int
	UniqueKeys     int
	Shed           int
	Kills          int
	Corruptions    int
	StoreEvictions int64
	DaemonRestarts int
	// CrashPoints counts where the seeded kill -9s landed
	// (accept/journal/start/store-write/resolve).
	CrashPoints map[string]int
	// Recovered counts requests the journal re-enqueued or repaired
	// across all restarts — the work a crash used to drop.
	Recovered int
	// ResubmitExecutions is the negative control: executions caused by
	// resubmitting the whole campaign after recovery finished. Must be
	// zero — recovery alone, not client resubmission, completes work.
	ResubmitExecutions int64
	// LiveSegments is the journal segment count after the final
	// graceful drain (compaction bound: <= 2).
	LiveSegments  int
	DedupeHitRate float64
	Violations    []string
}

// Ok reports whether every invariant held.
func (r *SoakReport) Ok() bool { return len(r.Violations) == 0 }

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Offered <= 0 {
		o.Offered = 200
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = max(o.Offered/16, 4)
	}
	if o.Kills < 0 {
		o.Kills = 0
	} else if o.Kills == 0 {
		o.Kills = 6
	}
	if o.Corruptions == 0 {
		o.Corruptions = 6
	}
	if o.Restart && o.Crashes <= 0 {
		o.Crashes = 3
	}
	if !o.Restart {
		o.Crashes = 0
	}
	if o.Timeout <= 0 {
		o.Timeout = 3 * time.Minute
	}
	return o
}

type soakRNG struct{ x uint64 }

func (r *soakRNG) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *soakRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// soakPopulation builds the offered load: two overlapping grids of
// small, fast simulations, cycled and shuffled to the offered count.
// The overlap plus the cycling guarantees a dedupe hit-rate well above
// the 30% acceptance bar once the store warms. Every index gets its
// own client idempotency key, so a client that cannot tell whether an
// ack landed (the daemon died under the submit) can safely retry.
func soakPopulation(r *soakRNG, offered int) []Request {
	gridA := Grid{
		Tenant: "team-a",
		Ops:    []string{"allreduce", "allgather_ring", "bcast_binomial"},
		Sizes:  []int64{1 << 10, 2 << 10, 4 << 10},
		Seeds:  []uint64{1, 2},
		Procs:  8, PPN: 4, Iters: 1,
	}
	gridB := gridA // overlaps A on two of three sizes
	gridB.Tenant = "team-b"
	gridB.Sizes = []int64{2 << 10, 4 << 10, 8 << 10}
	pool := append(gridA.Expand(), gridB.Expand()...)
	out := make([]Request, offered)
	for i := range out {
		out[i] = pool[i%len(pool)]
	}
	// Fisher-Yates under the campaign seed: interleave tenants and
	// duplicates so the dedupe and quota paths see realistic mixes.
	for i := len(out) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	for i := range out {
		out[i].Idem = fmt.Sprintf("soak-%d", i)
	}
	return out
}

// crashSchedule arms a Config.CrashHook with a seeded plan: for each
// budgeted kill, wait out a countdown of boundary events, then die at
// the first occurrence of the chosen boundary point. Deterministic in
// the seed up to goroutine interleaving — which is the point: the
// crash lands wherever the race actually is.
type crashSchedule struct {
	mu        sync.Mutex
	countdown int
	point     string
	remaining int
	rng       *soakRNG
	fired     map[string]int
}

func newCrashSchedule(seed uint64, crashes int) *crashSchedule {
	cs := &crashSchedule{
		remaining: crashes,
		rng:       &soakRNG{x: seed ^ 0x2545f4914f6cdd1d},
		fired:     map[string]int{},
	}
	cs.arm()
	return cs
}

func (cs *crashSchedule) arm() {
	if cs.remaining <= 0 {
		return
	}
	cs.countdown = 8 + cs.rng.intn(48)
	cs.point = CrashPoints[cs.rng.intn(len(CrashPoints))]
}

// hook is the Config.CrashHook.
func (cs *crashSchedule) hook(point string, key Key) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.remaining <= 0 {
		return false
	}
	if cs.countdown > 0 {
		cs.countdown--
		return false
	}
	if point != cs.point {
		return false // wait for the chosen boundary to come around
	}
	cs.remaining--
	cs.fired[point]++
	cs.arm()
	return true
}

// disarm ends the chaos window: any unspent crash budget is dropped so
// the verification phases (healing pass, negative control, compaction
// check) run against a daemon that stays up.
func (cs *crashSchedule) disarm() {
	cs.mu.Lock()
	cs.remaining = 0
	cs.mu.Unlock()
}

func (cs *crashSchedule) firedPoints() map[string]int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make(map[string]int, len(cs.fired))
	for k, v := range cs.fired {
		out[k] = v
	}
	return out
}

// counterRollup accumulates bus counters across daemon incarnations.
type counterRollup struct {
	mu     sync.Mutex
	totals map[string]int64
}

func (cr *counterRollup) fold(s *Service) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	if cr.totals == nil {
		cr.totals = map[string]int64{}
	}
	for _, name := range []string{
		CtrDedupeStore, CtrDedupeInflight, CtrDedupeIdem, CtrDedupeMiss,
		CtrStoreEvictions, CtrWorkerKills, CtrExecutions,
		CtrRecoveryRequeued, CtrRecoveryFromStore,
	} {
		cr.totals[name] += s.Bus().Counter(name)
	}
}

func (cr *counterRollup) get(name string) int64 {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return cr.totals[name]
}

// Soak runs the service-level chaos campaign: offered load far above
// capacity, worker kills, store corruption, and — with Restart —
// seeded kill -9s of the whole daemon at durability boundaries
// (accept/journal/start/store-write/resolve), then checks the contract
// that justifies all the machinery:
//
//   - every acked request completes across any number of daemon
//     crashes with NO client resubmission: after a restart the client
//     re-attaches to its acked work (journal recovery re-enqueued it)
//     and the bytes match a clean serial run;
//   - a submission the daemon died under (ack unknown) is safely
//     retried by idempotency key — never lost, never double-accepted,
//     never double-resolved;
//   - shed requests fail with typed Overloaded/QuotaExceeded errors
//     and succeed on client retry;
//   - corruption is never served: a damaged entry is evicted and
//     recomputed, and the recomputed bytes match the baseline;
//   - the resubmit path is a pure negative control: re-offering the
//     whole campaign after recovery causes zero executions;
//   - journal compaction holds: <= 2 live segments after the final
//     graceful drain;
//   - the dedupe hit-rate over the overlapping grids clears 30%.
//
// Violations are collected, not panicked, so the CI job can print them
// all.
func Soak(opt SoakOptions) (*SoakReport, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		return nil, fmt.Errorf("sweep: soak needs a store dir")
	}
	logf := opt.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &SoakReport{Offered: opt.Offered, CrashPoints: map[string]int{}}
	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}
	r := &soakRNG{x: opt.Seed ^ 0xda3e39cb94b95bdb}
	reqs := soakPopulation(r, opt.Offered)
	keys := make([]Key, len(reqs))
	for i := range reqs {
		keys[i] = reqs[i].Key()
	}

	// Clean serial baseline: one plain Simulate per unique key, no
	// service anywhere near it.
	baseline := map[Key][]byte{}
	for i, req := range reqs {
		if _, ok := baseline[keys[i]]; ok {
			continue
		}
		payload, err := Simulate(context.Background(), req)
		if err != nil {
			return nil, fmt.Errorf("sweep: serial baseline for %s: %w", keys[i], err)
		}
		baseline[keys[i]] = payload
	}
	rep.UniqueKeys = len(baseline)
	logf("soak: %d offered over %d unique keys, baseline done", opt.Offered, rep.UniqueKeys)

	crashes := newCrashSchedule(opt.Seed, opt.Crashes)
	cfg := Config{
		Workers:      opt.Workers,
		QueueDepth:   opt.QueueDepth,
		TenantQuota:  max(opt.QueueDepth/2, 2),
		MaxAttempts:  5,
		RetryBackoff: 500 * time.Microsecond,
		CrashHook:    crashes.hook,
	}
	deadline := time.Now().Add(opt.Timeout)
	rollup := &counterRollup{}

	open := func() (*Service, error) {
		svc, err := OpenService(opt.Dir, cfg)
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		defer cancel()
		recRep, err := svc.RecoveryReport(ctx)
		if err != nil {
			return nil, fmt.Errorf("sweep: recovery never finished: %w", err)
		}
		rep.Recovered += recRep.Requeued + recRep.FromStore
		logf("soak: daemon up (scavenged %d corrupt/%d torn; journal %d records, %d truncated; "+
			"requeued %d, repaired-from-store %d)",
			recRep.Scavenge.Corrupt, recRep.Scavenge.Torn,
			recRep.Journal.Records, recRep.Journal.Truncated,
			recRep.Requeued, recRep.FromStore)
		return svc, nil
	}
	svc, err := open()
	if err != nil {
		return nil, err
	}
	var svcMu sync.Mutex // guards svc across daemon restarts
	current := func() *Service {
		svcMu.Lock()
		defer svcMu.Unlock()
		return svc
	}

	var shed, killsDone, corruptionsDone atomic.Int64
	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup

	// Chaos injector: kills workers and corrupts store entries while
	// the sweep is in flight. Daemon kills are NOT injected here —
	// those fire at seeded durability boundaries via the CrashHook.
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		cr := &soakRNG{x: opt.Seed ^ 0xa0761d6478bd642f}
		bkeys := make([]Key, 0, len(baseline))
		for k := range baseline {
			bkeys = append(bkeys, k)
		}
		for {
			select {
			case <-stopChaos:
				return
			case <-time.After(2 * time.Millisecond):
			}
			s := current()
			if int(killsDone.Load()) < opt.Kills {
				if ids := s.WorkerIDs(); len(ids) > 0 {
					if s.KillWorker(ids[cr.intn(len(ids))]) {
						killsDone.Add(1)
					}
				}
			}
			if int(corruptionsDone.Load()) < opt.Corruptions && len(bkeys) > 0 {
				k := bkeys[cr.intn(len(bkeys))]
				// Corrupt through the current incarnation's store so the
				// daemon restart (which swaps stores) stays race-free.
				if ok, _ := s.Store().CorruptEntry(k, uint(cr.next()%4096)); ok {
					corruptionsDone.Add(1)
				}
			}
		}
	}()

	// Per-index client ledger. acked[i] is set the moment Submit
	// returns a ticket — from that point on the request must complete
	// without resubmission. resolutions[i] counts terminal outcomes
	// the client observed (>1 is a duplicate-resolution violation).
	acked := make([]*Ticket, len(reqs))
	done := make([]bool, len(reqs))
	resolutions := make([]int, len(reqs))
	verify := func(i int, key Key, payload []byte, err error) {
		if err != nil {
			violate("request %d (%s): terminal error: %v", i, key, err)
			return
		}
		if want := baseline[key]; !bytes.Equal(payload, want) {
			violate("request %d (%s): result differs from clean serial run (%d vs %d bytes)",
				i, key, len(payload), len(want))
		}
	}

	// restart replaces the dead daemon and re-attaches every acked,
	// unresolved request — by key, through Attach, with no resubmit.
	// An acked request the new daemon cannot account for is the bug
	// this whole PR exists to prevent.
	restart := func() error {
		rollup.fold(current())
		rep.DaemonRestarts++
		logf("soak: daemon killed (restart %d), reopening", rep.DaemonRestarts)
		next, err := open()
		if err != nil {
			return err
		}
		svcMu.Lock()
		svc = next
		svcMu.Unlock()
		for i := range reqs {
			if done[i] || acked[i] == nil {
				continue
			}
			t, ok, err := next.Attach(keys[i])
			if err != nil {
				violate("request %d (%s): attach after restart: %v", i, keys[i], err)
				done[i] = true
				continue
			}
			if !ok {
				violate("request %d (%s): ACKED REQUEST LOST — journal recovery does not know it",
					i, keys[i])
				done[i] = true
				continue
			}
			acked[i] = t
		}
		return nil
	}

	// submitAll walks every unacked index: shed requests retry with
	// backoff, a recovering daemon is waited out, and a KilledError —
	// the daemon died under the submit, ack unknown — leaves the index
	// unacked for an idempotent retry against the next incarnation.
	submitAll := func() (daemonDied bool) {
		for i := range reqs {
			if done[i] || acked[i] != nil {
				continue
			}
			for {
				if time.Now().After(deadline) {
					violate("request %d: campaign deadline exceeded during submit", i)
					return false
				}
				s := current()
				t, err := s.Submit(reqs[i])
				if err == nil {
					acked[i] = t
					break
				}
				switch {
				case errAsBool[*OverloadedError](err), errAsBool[*QuotaExceededError](err):
					shed.Add(1)
					time.Sleep(time.Duration(200+r.intn(400)) * time.Microsecond)
				case errAsBool[*RecoveringError](err):
					time.Sleep(time.Millisecond)
				case errAsBool[*KilledError](err):
					return true
				case errAsBool[*ShutdownError](err):
					violate("request %d: unexpected drain shed mid-campaign: %v", i, err)
					done[i] = true
					return false
				default:
					violate("request %d: unexpected submit error: %v", i, err)
					done[i] = true
					break
				}
				if done[i] {
					break
				}
			}
		}
		return false
	}

	// collect resolves every outstanding ticket. A KilledError means
	// the daemon died under the pending work: the ticket is discarded
	// but the index stays acked — restart() re-attaches it.
	collect := func() (daemonDied bool) {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		defer cancel()
		for i := range reqs {
			if done[i] || acked[i] == nil {
				continue
			}
			payload, err := acked[i].Wait(ctx)
			if errAsBool[*KilledError](err) {
				daemonDied = true
				continue
			}
			if err != nil && ctx.Err() != nil {
				violate("request %d: campaign deadline exceeded awaiting result", i)
				return false
			}
			resolutions[i]++
			if resolutions[i] > 1 {
				violate("request %d (%s): DUPLICATE RESOLUTION (%d)", i, keys[i], resolutions[i])
			}
			verify(i, keys[i], payload, err)
			done[i] = true
		}
		return daemonDied
	}

	allDone := func() bool {
		for i := range reqs {
			if !done[i] {
				return false
			}
		}
		return true
	}

	for !allDone() && time.Now().Before(deadline) {
		died := submitAll()
		died = collect() || died
		if died || current().Killed() {
			if err := restart(); err != nil {
				return nil, err
			}
		}
	}
	if n := func() int {
		c := 0
		for i := range done {
			if !done[i] {
				c++
			}
		}
		return c
	}(); n > 0 {
		violate("%d requests never resolved before the campaign deadline", n)
	}

	close(stopChaos)
	chaosWG.Wait()
	crashes.disarm()
	if current().Killed() {
		// A crash fired on the campaign's last boundary event; bring up
		// one final incarnation for the verification phases.
		if err := restart(); err != nil {
			return nil, err
		}
		collect()
	}
	final := current()
	final.Drain()

	// Healing pass: after the chaos stops, every unique key must be
	// servable byte-identical to the baseline even where corruption
	// landed (evict-and-recompute may run here — that's the point).
	for i, req := range reqs[:min(len(reqs), 64)] {
		req.Idem = "" // pure content-address path
		t, err := final.Submit(req)
		if err != nil {
			violate("healing pass submit %s: %v", keys[i], err)
			continue
		}
		payload, err := t.Result()
		verify(-1, keys[i], payload, err)
	}
	final.Drain()

	// Negative control: the pre-journal soak had clients resubmit
	// after a restart to paper over dropped work. Resubmitting the
	// entire campaign now must be pure cache — zero executions — or
	// recovery did not actually complete something.
	before := final.Bus().Counter(CtrExecutions)
	for i := range reqs {
		t, err := final.Submit(reqs[i])
		if err != nil {
			violate("negative-control resubmit %d: %v", i, err)
			continue
		}
		payload, err := t.Result()
		verify(i, keys[i], payload, err)
	}
	final.Drain()
	rep.ResubmitExecutions = final.Bus().Counter(CtrExecutions) - before
	if rep.ResubmitExecutions != 0 {
		violate("negative control: resubmission caused %d executions (recovery left work undone)",
			rep.ResubmitExecutions)
	}

	// Graceful drain, then the compaction bound: with every journaled
	// key terminal, at most the active segment and one predecessor may
	// remain on disk.
	final.Shutdown()
	segs, _ := filepath.Glob(filepath.Join(opt.Dir, "wal", walSegPrefix+"*"+walSegExt))
	rep.LiveSegments = len(segs)
	if rep.LiveSegments > 2 {
		violate("journal compaction bound broken: %d live segments after a fully-terminal sweep",
			rep.LiveSegments)
	}

	rollup.fold(final)
	rep.Shed = int(shed.Load())
	rep.Kills = int(killsDone.Load())
	rep.Corruptions = int(corruptionsDone.Load())
	rep.StoreEvictions = rollup.get(CtrStoreEvictions)
	rep.CrashPoints = crashes.firedPoints()
	hits := rollup.get(CtrDedupeStore) + rollup.get(CtrDedupeInflight) + rollup.get(CtrDedupeIdem)
	if total := hits + rollup.get(CtrDedupeMiss); total > 0 {
		rep.DedupeHitRate = float64(hits) / float64(total)
	}
	if rep.DedupeHitRate < 0.30 {
		violate("dedupe hit-rate %.2f below the 0.30 bar", rep.DedupeHitRate)
	}
	if opt.QueueDepth < opt.Offered/2 && rep.Shed == 0 {
		violate("offered load exceeded capacity but nothing was shed — admission control is asleep")
	}
	if opt.Crashes > 0 && rep.DaemonRestarts == 0 {
		violate("crash budget %d but the daemon never died — the campaign proved nothing", opt.Crashes)
	}
	logf("soak: done — %d shed (retried), %d worker kills, %d corruptions, %d daemon kills at %v, "+
		"%d recovered, dedupe %.0f%%, %d journal segments",
		rep.Shed, rep.Kills, rep.Corruptions, rep.DaemonRestarts, rep.CrashPoints,
		rep.Recovered, 100*rep.DedupeHitRate, rep.LiveSegments)
	return rep, nil
}
