package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SoakOptions tunes one chaos campaign (see Soak).
type SoakOptions struct {
	// Dir is the store directory (required; persists across the
	// mid-campaign daemon restart).
	Dir string
	// Seed drives the deterministic chaos schedule (which workers die,
	// which entries are corrupted, how the offered load is shuffled).
	Seed uint64
	// Offered is the total number of submissions (default 200). The
	// request population is two overlapping grids, so offered load
	// carries heavy duplication — the dedupe workload.
	Offered int
	// Workers is the pool size (default 4).
	Workers int
	// QueueDepth bounds the admission queue. The default, Offered/16,
	// guarantees offered load far exceeds capacity so shedding is
	// exercised, not just possible.
	QueueDepth int
	// Kills is how many worker kills to inject (default 6).
	Kills int
	// Corruptions is how many store-corruption injections (default 6).
	Corruptions int
	// Restart, when true (the default via DefaultSoakOptions), kills
	// and restarts the daemon mid-campaign.
	Restart bool
	// Timeout bounds the whole campaign (default 3m).
	Timeout time.Duration
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// SoakReport is the campaign's outcome. Violations empty = pass.
type SoakReport struct {
	Offered        int
	UniqueKeys     int
	Shed           int
	Kills          int
	Corruptions    int
	StoreEvictions int64
	DaemonRestarts int
	DedupeHitRate  float64
	Violations     []string
}

// Ok reports whether every invariant held.
func (r *SoakReport) Ok() bool { return len(r.Violations) == 0 }

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Offered <= 0 {
		o.Offered = 200
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = max(o.Offered/16, 4)
	}
	if o.Kills < 0 {
		o.Kills = 0
	} else if o.Kills == 0 {
		o.Kills = 6
	}
	if o.Corruptions == 0 {
		o.Corruptions = 6
	}
	if o.Timeout <= 0 {
		o.Timeout = 3 * time.Minute
	}
	return o
}

type soakRNG struct{ x uint64 }

func (r *soakRNG) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *soakRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// soakPopulation builds the offered load: two overlapping grids of
// small, fast simulations, cycled and shuffled to the offered count.
// The overlap plus the cycling guarantees a dedupe hit-rate well above
// the 30% acceptance bar once the store warms.
func soakPopulation(r *soakRNG, offered int) []Request {
	gridA := Grid{
		Tenant: "team-a",
		Ops:    []string{"allreduce", "allgather_ring", "bcast_binomial"},
		Sizes:  []int64{1 << 10, 2 << 10, 4 << 10},
		Seeds:  []uint64{1, 2},
		Procs:  8, PPN: 4, Iters: 1,
	}
	gridB := gridA // overlaps A on two of three sizes
	gridB.Tenant = "team-b"
	gridB.Sizes = []int64{2 << 10, 4 << 10, 8 << 10}
	pool := append(gridA.Expand(), gridB.Expand()...)
	out := make([]Request, offered)
	for i := range out {
		out[i] = pool[i%len(pool)]
	}
	// Fisher-Yates under the campaign seed: interleave tenants and
	// duplicates so the dedupe and quota paths see realistic mixes.
	for i := len(out) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Soak runs the service-level chaos campaign: offered load far above
// capacity, worker kills, store corruption injected mid-sweep, and
// (optionally) an abrupt daemon kill/restart halfway — then checks the
// contract that justifies all the machinery:
//
//   - every accepted request resolves exactly once, with bytes
//     identical to a clean serial run of the same request;
//   - shed requests fail with typed Overloaded/QuotaExceeded errors
//     and succeed on client retry;
//   - corruption is never served: a damaged entry is evicted and
//     recomputed, and the recomputed bytes match the baseline;
//   - the dedupe hit-rate over the overlapping grids clears 30%.
//
// Violations are collected, not panicked, so the CI job can print them
// all.
func Soak(opt SoakOptions) (*SoakReport, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		return nil, fmt.Errorf("sweep: soak needs a store dir")
	}
	logf := opt.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &SoakReport{Offered: opt.Offered}
	r := &soakRNG{x: opt.Seed ^ 0xda3e39cb94b95bdb}
	reqs := soakPopulation(r, opt.Offered)

	// Clean serial baseline: one plain Simulate per unique key, no
	// service anywhere near it.
	baseline := map[Key][]byte{}
	for _, req := range reqs {
		k := req.Key()
		if _, ok := baseline[k]; ok {
			continue
		}
		payload, err := Simulate(context.Background(), req)
		if err != nil {
			return nil, fmt.Errorf("sweep: serial baseline for %s: %w", k, err)
		}
		baseline[k] = payload
	}
	rep.UniqueKeys = len(baseline)
	logf("soak: %d offered over %d unique keys, baseline done", opt.Offered, rep.UniqueKeys)

	store, scav, err := OpenStore(opt.Dir)
	if err != nil {
		return nil, err
	}
	logf("soak: store opened (kept %d, scavenged %d corrupt, %d torn)",
		scav.Kept, scav.Corrupt, scav.Torn)
	cfg := Config{
		Workers:      opt.Workers,
		QueueDepth:   opt.QueueDepth,
		TenantQuota:  max(opt.QueueDepth/2, 2),
		MaxAttempts:  5,
		RetryBackoff: 500 * time.Microsecond,
	}
	svc := NewService(store, cfg)
	var svcMu sync.Mutex // guards svc across the daemon restart
	current := func() *Service {
		svcMu.Lock()
		defer svcMu.Unlock()
		return svc
	}

	deadline := time.Now().Add(opt.Timeout)
	var shed, killsDone, corruptionsDone atomic.Int64
	var resolved atomic.Int64
	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup

	// Chaos injector: kills workers and corrupts store entries while
	// the sweep is in flight.
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		cr := &soakRNG{x: opt.Seed ^ 0xa0761d6478bd642f}
		keys := make([]Key, 0, len(baseline))
		for k := range baseline {
			keys = append(keys, k)
		}
		for {
			select {
			case <-stopChaos:
				return
			case <-time.After(2 * time.Millisecond):
			}
			s := current()
			if int(killsDone.Load()) < opt.Kills {
				if ids := s.WorkerIDs(); len(ids) > 0 {
					if s.KillWorker(ids[cr.intn(len(ids))]) {
						killsDone.Add(1)
					}
				}
			}
			if int(corruptionsDone.Load()) < opt.Corruptions && len(keys) > 0 {
				k := keys[cr.intn(len(keys))]
				// Corrupt through the current incarnation's store so the
				// daemon restart (which swaps stores) stays race-free.
				if ok, _ := s.Store().CorruptEntry(k, uint(cr.next()%4096)); ok {
					corruptionsDone.Add(1)
				}
			}
		}
	}()

	// Client: submit everything, retrying shed requests — the contract
	// is explicit rejection now, success on retry, never silent loss.
	verify := func(i int, req Request, payload []byte, err error) {
		if err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("request %d (%s): terminal error: %v", i, req.Key(), err))
			return
		}
		if want := baseline[req.Key()]; !bytes.Equal(payload, want) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("request %d (%s): result differs from clean serial run (%d vs %d bytes)",
					i, req.Key(), len(payload), len(want)))
		}
	}
	submitAll := func(indices []int) (tickets map[int]*Ticket, failed []int) {
		tickets = map[int]*Ticket{}
		for _, i := range indices {
			req := reqs[i]
		attempt:
			for {
				if time.Now().After(deadline) {
					rep.Violations = append(rep.Violations,
						fmt.Sprintf("request %d: campaign deadline exceeded during submit", i))
					return tickets, failed
				}
				t, err := current().Submit(req)
				if err == nil {
					tickets[i] = t
					break attempt
				}
				var over *OverloadedError
				var quota *QuotaExceededError
				var down *ShutdownError
				switch {
				case errors.As(err, &over), errors.As(err, &quota):
					shed.Add(1)
					time.Sleep(time.Duration(200+r.intn(400)) * time.Microsecond)
				case errors.As(err, &down):
					// Mid-restart; try again on the new incarnation.
					time.Sleep(time.Millisecond)
				default:
					rep.Violations = append(rep.Violations,
						fmt.Sprintf("request %d: unexpected submit error: %v", i, err))
					failed = append(failed, i)
					break attempt
				}
			}
		}
		return tickets, failed
	}
	collect := func(tickets map[int]*Ticket) (outstanding []int) {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		defer cancel()
		for i, t := range tickets {
			payload, err := t.Wait(ctx)
			var down *ShutdownError
			if errors.As(err, &down) {
				// Daemon was killed under this request: the client
				// resubmits after restart, as a real client would.
				outstanding = append(outstanding, i)
				continue
			}
			resolved.Add(1)
			verify(i, reqs[i], payload, err)
		}
		return outstanding
	}

	all := make([]int, len(reqs))
	for i := range all {
		all[i] = i
	}

	if opt.Restart {
		half := all[:len(all)/2]
		rest := all[len(all)/2:]
		tickets, _ := submitAll(half)
		// Let roughly half of the first tranche land, then kill the
		// daemon abruptly — no drain, running requests torn down. The
		// wait is time-bounded: on a warm store most tickets complete as
		// dedupe hits that never touch the completion counter.
		settle := time.Now().Add(5 * time.Second)
		for time.Now().Before(settle) && current().Bus().Counter(CtrCompleted) < int64(len(tickets)/2) {
			time.Sleep(time.Millisecond)
		}
		logf("soak: killing daemon with %d tickets in flight", len(tickets))
		current().Close()
		outstanding := collect(tickets)
		rep.DaemonRestarts++

		// Restart: reopen (and rescavenge) the same store, then
		// resubmit everything still owed plus the rest of the load.
		store2, scav2, err := OpenStore(opt.Dir)
		if err != nil {
			return nil, err
		}
		logf("soak: store reopened after daemon kill (kept %d, scavenged %d corrupt, %d torn)",
			scav2.Kept, scav2.Corrupt, scav2.Torn)
		svcMu.Lock()
		oldBus := svc.Bus()
		store = store2
		svc = NewService(store2, cfg)
		svcMu.Unlock()
		// Fold the first incarnation's dedupe and shed history into
		// the report before it is dropped.
		rep.StoreEvictions += oldBus.Counter(CtrStoreEvictions)
		tickets2, _ := submitAll(append(outstanding, rest...))
		if more := collect(tickets2); len(more) > 0 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%d requests still unresolved after restart", len(more)))
		}
	} else {
		tickets, _ := submitAll(all)
		if more := collect(tickets); len(more) > 0 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%d requests unresolved with no restart in play", len(more)))
		}
	}

	close(stopChaos)
	chaosWG.Wait()
	final := current()
	final.Drain()

	// One more pass: every unique key must now be servable from the
	// store, byte-identical to the baseline, even after the injected
	// corruption (evict-and-recompute may run here — that's the point).
	for _, req := range reqs[:min(len(reqs), 64)] {
		t, err := final.Submit(req)
		if err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("post-pass submit %s: %v", req.Key(), err))
			continue
		}
		payload, err := t.Result()
		verify(-1, req, payload, err)
	}
	final.Close()

	rep.Shed = int(shed.Load())
	rep.Kills = int(killsDone.Load())
	rep.Corruptions = int(corruptionsDone.Load())
	rep.StoreEvictions += final.Bus().Counter(CtrStoreEvictions)
	rep.DedupeHitRate = final.DedupeHitRate()
	if rep.DedupeHitRate < 0.30 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("dedupe hit-rate %.2f below the 0.30 bar", rep.DedupeHitRate))
	}
	if opt.QueueDepth < opt.Offered/2 && rep.Shed == 0 {
		rep.Violations = append(rep.Violations,
			"offered load exceeded capacity but nothing was shed — admission control is asleep")
	}
	logf("soak: done — %d resolved, %d shed (retried), %d kills, %d corruptions, dedupe %.0f%%",
		resolved.Load(), rep.Shed, rep.Kills, rep.Corruptions, 100*rep.DedupeHitRate)
	return rep, nil
}
