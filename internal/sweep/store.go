package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the content-addressed result cache: one file per request
// key, each entry carrying its own payload checksum. Disks lie, so the
// store assumes they do: writes are temp-file + fsync + atomic rename
// (a crash mid-write leaves a temp file, never a half-entry under the
// final name), every read re-verifies the checksum and evicts what
// fails it, and Open scavenges torn and corrupt entries left by a
// previous incarnation. Safe for concurrent use; concurrent writers of
// the same key are benign because determinism makes their payloads
// identical and rename is atomic (last write wins, bytes equal).
type Store struct {
	dir string
	// mu serializes eviction bookkeeping; file operations themselves
	// are already atomic.
	mu sync.Mutex
}

// storeMagic heads every entry file; bumping the version invalidates
// (and scavenges) old formats.
const storeMagic = "paccstore/v1"

// entryExt is the suffix of committed entries; temp files use tmpPrefix
// and are never read as results.
const (
	entryExt  = ".res"
	tmpPrefix = ".tmp-"
)

// CorruptEntryError reports a store entry whose bytes failed
// verification — torn header, length mismatch, or checksum mismatch.
// The entry has already been evicted when this error surfaces; the
// caller recomputes and rewrites.
type CorruptEntryError struct {
	Key    Key
	Reason string
}

func (e *CorruptEntryError) Error() string {
	return fmt.Sprintf("sweep: corrupt store entry %s (%s), evicted", e.Key, e.Reason)
}

// ScavengeReport summarizes what Open found and removed.
type ScavengeReport struct {
	// Kept counts entries that verified clean.
	Kept int
	// Corrupt counts committed entries evicted for failing verification.
	Corrupt int
	// Torn counts abandoned temp files removed (a crash mid-write).
	Torn int
}

// OpenStore opens (creating if needed) the store at dir and scavenges
// it: abandoned temp files are deleted, every committed entry is
// verified, and corrupt ones are evicted so a restart begins from a
// provably clean cache.
func OpenStore(dir string) (*Store, ScavengeReport, error) {
	var rep ScavengeReport
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rep, err
	}
	s := &Store{dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, rep, err
	}
	for _, de := range entries {
		name := de.Name()
		switch {
		case strings.HasPrefix(name, tmpPrefix):
			if err := os.Remove(filepath.Join(dir, name)); err == nil {
				rep.Torn++
			}
		case strings.HasSuffix(name, entryExt):
			key, err := ParseKey(strings.TrimSuffix(name, entryExt))
			if err != nil {
				// Not one of ours; leave foreign files alone.
				continue
			}
			if _, err := s.Get(key); err != nil {
				rep.Corrupt++ // Get already evicted it
			} else {
				rep.Kept++
			}
		}
	}
	return s, rep, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key Key) string {
	return filepath.Join(s.dir, key.String()+entryExt)
}

// encodeEntry frames a payload: magic, payload sha256, payload length,
// then the payload itself.
func encodeEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d\n", storeMagic, hex.EncodeToString(sum[:]), len(payload))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// decodeEntry verifies framing and checksum, returning the payload or a
// reason the entry is corrupt.
func decodeEntry(raw []byte) ([]byte, string) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, "truncated header"
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 3 || fields[0] != storeMagic {
		return nil, "bad magic"
	}
	var want [sha256.Size]byte
	if b, err := hex.DecodeString(fields[1]); err != nil || len(b) != len(want) {
		return nil, "malformed checksum"
	} else {
		copy(want[:], b)
	}
	var length int
	if _, err := fmt.Sscanf(fields[2], "%d", &length); err != nil || length < 0 {
		return nil, "malformed length"
	}
	payload := raw[nl+1:]
	if len(payload) != length {
		return nil, fmt.Sprintf("torn payload: %d bytes, header says %d", len(payload), length)
	}
	if sha256.Sum256(payload) != want {
		return nil, "checksum mismatch"
	}
	return payload, ""
}

// Put commits payload under key atomically: the entry appears under its
// final name complete and checksummed, or not at all.
func (s *Store) Put(key Key, payload []byte) error {
	f, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() { os.Remove(tmp) }
	if _, err := f.Write(encodeEntry(payload)); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		cleanup()
		return err
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		cleanup()
		return err
	}
	return nil
}

// Get returns the payload stored under key. A missing entry returns
// (nil, nil) — a cache miss, not an error. A present-but-corrupt entry
// is evicted and reported as a *CorruptEntryError; the caller treats it
// as a miss and recomputes.
func (s *Store) Get(key Key) ([]byte, error) {
	raw, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	payload, reason := decodeEntry(raw)
	if reason != "" {
		s.evict(key)
		return nil, &CorruptEntryError{Key: key, Reason: reason}
	}
	return payload, nil
}

// evict removes a corrupt entry so the next Get is a clean miss.
func (s *Store) evict(key Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.Remove(s.path(key))
}

// Delete removes an entry (missing is fine).
func (s *Store) Delete(key Key) error {
	err := os.Remove(s.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Keys lists every committed entry, sorted, without verifying them.
func (s *Store) Keys() ([]Key, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []Key
	for _, de := range entries {
		name := de.Name()
		if !strings.HasSuffix(name, entryExt) {
			continue
		}
		if k, err := ParseKey(strings.TrimSuffix(name, entryExt)); err == nil {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		return bytes.Compare(keys[i][:], keys[j][:]) < 0
	})
	return keys, nil
}

// Len counts committed entries.
func (s *Store) Len() (int, error) {
	keys, err := s.Keys()
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}

// CorruptEntry deliberately flips one payload bit of the committed
// entry under key, in place, bypassing the atomic write path. It is the
// chaos harness's fault injector (and useless for anything else): the
// next Get must detect the damage, evict the entry, and force a
// recompute. Returns false when the entry does not exist.
func (s *Store) CorruptEntry(key Key, bit uint) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.path(key)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 || nl+1 >= len(raw) {
		// Already torn beyond recognition; leave it for Get to evict.
		return true, nil
	}
	payload := raw[nl+1:]
	idx := int(bit/8) % len(payload)
	payload[idx] ^= 1 << (bit % 8)
	return true, os.WriteFile(path, raw, 0o644)
}

// TruncateEntry truncates the committed entry under key to n bytes of
// its file — a torn-write simulation for tests and the chaos harness.
func (s *Store) TruncateEntry(key Key, n int64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.path(key)
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return false, nil
	}
	return true, os.Truncate(path, n)
}
