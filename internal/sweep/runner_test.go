package sweep

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"pacc/internal/mpi"
)

func TestSimulateDeterministic(t *testing.T) {
	req := Request{Op: "allreduce_topo", Procs: 16, PPN: 4, Bytes: 4096,
		Mode: "proposed", Iters: 2}
	a, err := Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical requests produced different payloads; dedupe is unsound")
	}
	res, err := DecodeResult(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != req.Key().String() || res.Op != req.Op {
		t.Fatalf("result metadata = %s/%s, want %s/%s", res.Key, res.Op, req.Key(), req.Op)
	}
	if res.ElapsedUs <= 0 || res.EnergyJ <= 0 {
		t.Fatalf("implausible result: elapsed %v us, energy %v J", res.ElapsedUs, res.EnergyJ)
	}
}

func TestSimulateSeedSaltsFaultRuns(t *testing.T) {
	base := Request{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024,
		Fault: "msgloss=0.2", Seed: 1}
	other := base
	other.Seed = 2
	a, err := Simulate(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed must reproduce; the runs being seeded differently is the
	// point of a seed sweep (payload equality across seeds is allowed in
	// principle, but the keys must always differ).
	a2, err := Simulate(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, a2) {
		t.Fatal("same seed, different payloads")
	}
	if base.Key() == other.Key() {
		t.Fatal("seeds collide onto one key")
	}
	_ = b
}

func TestSimulateHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Simulate(ctx, Request{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024})
	var ce *mpi.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("canceled ctx: err = %v, want mpi.CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err chain %v does not reach context.Canceled", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	_, err = Simulate(ctx2, Request{Op: "alltoall", Procs: 32, PPN: 8, Bytes: 1 << 20, Iters: 4})
	if !errors.As(err, &ce) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want CanceledError wrapping DeadlineExceeded", err)
	}
}

func TestSimulateRejectsInvalid(t *testing.T) {
	if _, err := Simulate(context.Background(), Request{Op: "nope", Procs: 8, PPN: 4}); err == nil {
		t.Fatal("invalid op accepted")
	}
}
