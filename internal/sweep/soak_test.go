package sweep

import (
	"bytes"
	"testing"
	"time"
)

// TestSoakChaosCampaign is the service-level acceptance test: worker
// kills, store corruption, and seeded kill -9s of the whole daemon at
// durability boundaries, offered load over capacity — every acked
// request completes across the crashes with no client resubmission, no
// duplicate resolutions, and bytes identical to a clean serial run;
// resubmitting afterwards is pure cache (zero executions); journal
// compaction holds the ≤2 segment bound.
func TestSoakChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	rep, err := Soak(SoakOptions{
		Dir:         t.TempDir(),
		Seed:        42,
		Offered:     120,
		Workers:     4,
		Kills:       4,
		Corruptions: 4,
		Restart:     true,
		Crashes:     3,
		Timeout:     2 * time.Minute,
		Log:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if rep.DedupeHitRate < 0.30 {
		t.Errorf("dedupe hit-rate %.2f, want >= 0.30", rep.DedupeHitRate)
	}
	if rep.Kills == 0 {
		t.Error("chaos campaign killed no workers; the test proved nothing")
	}
	if rep.DaemonRestarts == 0 {
		t.Error("chaos campaign never killed the daemon; the test proved nothing")
	}
	if rep.ResubmitExecutions != 0 {
		t.Errorf("negative control: resubmission caused %d executions, want 0", rep.ResubmitExecutions)
	}
	if rep.LiveSegments > 2 {
		t.Errorf("journal left %d live segments after a fully-terminal sweep, want <= 2", rep.LiveSegments)
	}
	t.Logf("soak report: %+v", *rep)
}

// TestShardLayoutDeterminism runs the same request set through a
// 1-worker and an 8-worker service (fresh stores) and demands
// byte-identical results per key: shard layout is an implementation
// detail, never an observable.
func TestShardLayoutDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("layout determinism skipped in -short mode")
	}
	reqs := Grid{
		Ops:   []string{"allreduce", "allgather_ring"},
		Sizes: []int64{1 << 10, 4 << 10},
		Procs: 8, PPN: 4, Iters: 1,
	}.Expand()

	run := func(workers int) map[Key][]byte {
		store, _, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		svc := NewService(store, Config{Workers: workers, QueueDepth: 64})
		defer svc.Close()
		tickets, errs := svc.SubmitBatch(reqs)
		out := map[Key][]byte{}
		for i, tk := range tickets {
			if errs[i] != nil {
				t.Fatalf("workers=%d submit %d: %v", workers, i, errs[i])
			}
			payload, err := tk.Result()
			if err != nil {
				t.Fatalf("workers=%d req %d: %v", workers, i, err)
			}
			out[tk.Key()] = payload
		}
		return out
	}

	serial, wide := run(1), run(8)
	if len(serial) != len(wide) {
		t.Fatalf("layouts produced %d vs %d keys", len(serial), len(wide))
	}
	for k, want := range serial {
		if got, ok := wide[k]; !ok || !bytes.Equal(got, want) {
			t.Errorf("key %s differs across shard layouts", k)
		}
	}
}
