package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// svcReq builds a valid request whose key is distinct per i.
func svcReq(tenant string, i int) Request {
	return Request{Tenant: tenant, Op: "allreduce", Procs: 8, PPN: 4, Bytes: int64(1024 + i)}
}

// countingRunner counts executions per key and returns key-derived bytes.
type countingRunner struct {
	mu    sync.Mutex
	runs  map[Key]int
	delay time.Duration
}

func newCountingRunner(delay time.Duration) *countingRunner {
	return &countingRunner{runs: map[Key]int{}, delay: delay}
}

func (c *countingRunner) run(ctx context.Context, req Request) ([]byte, error) {
	c.mu.Lock()
	c.runs[req.Key()]++
	c.mu.Unlock()
	if c.delay > 0 {
		select {
		case <-time.After(c.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return []byte("result:" + req.Key().String()), nil
}

func (c *countingRunner) count(k Key) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs[k]
}

func TestServiceExactlyOnceUnderDuplication(t *testing.T) {
	runner := newCountingRunner(time.Millisecond)
	svc := NewService(nil, Config{Workers: 4, QueueDepth: 256, Run: runner.run})
	defer svc.Close()

	const uniq, dups = 8, 10
	var tickets []*Ticket
	for d := 0; d < dups; d++ {
		for i := 0; i < uniq; i++ {
			tk, err := svc.Submit(svcReq("t", i))
			if err != nil {
				t.Fatalf("submit dup %d of req %d: %v", d, i, err)
			}
			tickets = append(tickets, tk)
		}
	}
	svc.Drain()
	for _, tk := range tickets {
		res, err := tk.Result()
		if err != nil {
			t.Fatalf("ticket %s: %v", tk.Key(), err)
		}
		if want := "result:" + tk.Key().String(); string(res) != want {
			t.Fatalf("ticket %s: got %q", tk.Key(), res)
		}
	}
	for i := 0; i < uniq; i++ {
		if n := runner.count(svcReq("t", i).Key()); n != 1 {
			t.Errorf("req %d executed %d times, want exactly 1", i, n)
		}
	}
	if rate := svc.DedupeHitRate(); rate < 0.5 {
		t.Errorf("dedupe hit rate %.2f, want > 0.5 with %dx duplication", rate, dups)
	}
}

func TestServiceRetryThenQuarantine(t *testing.T) {
	var attempts atomic.Int64
	svc := NewService(nil, Config{
		Workers: 1, MaxAttempts: 3, RetryBackoff: 100 * time.Microsecond,
		Run: func(ctx context.Context, req Request) ([]byte, error) {
			attempts.Add(1)
			return nil, fmt.Errorf("transient-looking but permanent failure")
		},
	})
	defer svc.Close()

	tk, err := svc.Submit(svcReq("t", 0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = tk.Result()
	var qe *QuarantinedError
	if !errors.As(err, &qe) {
		t.Fatalf("terminal error = %v, want QuarantinedError", err)
	}
	if qe.Attempts != 3 {
		t.Fatalf("quarantined after %d attempts, want 3", qe.Attempts)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("runner invoked %d times, want 3", got)
	}
	// Poisoned key now fails fast without consuming a worker.
	if _, err := svc.Submit(svcReq("t", 0)); !errors.As(err, &qe) {
		t.Fatalf("resubmit of quarantined key: err = %v, want fast QuarantinedError", err)
	}
	if attempts.Load() != 3 {
		t.Fatal("quarantined resubmit reached the runner")
	}
	if n := svc.Bus().Counter(CtrRetries); n != 2 {
		t.Errorf("retry counter = %d, want 2", n)
	}
	if n := svc.Bus().Counter(CtrQuarantined); n != 1 {
		t.Errorf("quarantine counter = %d, want 1", n)
	}
}

func TestServiceWorkerCrashContainedAndRetried(t *testing.T) {
	var calls atomic.Int64
	svc := NewService(nil, Config{
		Workers: 2, MaxAttempts: 3, RetryBackoff: 100 * time.Microsecond,
		Run: func(ctx context.Context, req Request) ([]byte, error) {
			if calls.Add(1) == 1 {
				panic("simulated worker crash")
			}
			return []byte("recovered"), nil
		},
	})
	defer svc.Close()

	tk, err := svc.Submit(svcReq("t", 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Result()
	if err != nil || string(res) != "recovered" {
		t.Fatalf("after crash+retry: %q, %v", res, err)
	}
	if n := svc.Bus().Counter(CtrWorkerCrashes); n != 1 {
		t.Errorf("crash counter = %d, want 1", n)
	}
}

func TestServiceTenantQuotaShedsTyped(t *testing.T) {
	release := make(chan struct{})
	svc := NewService(nil, Config{
		Workers: 2, QueueDepth: 64, TenantQuota: 1,
		Run: func(ctx context.Context, req Request) ([]byte, error) {
			select {
			case <-release:
				return []byte("ok"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer svc.Close()

	first, err := svc.Submit(svcReq("greedy", 0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = svc.Submit(svcReq("greedy", 1))
	var qe *QuotaExceededError
	if !errors.As(err, &qe) || qe.Tenant != "greedy" {
		t.Fatalf("second submit: err = %v, want QuotaExceededError for greedy", err)
	}
	// Another tenant is unaffected, and a duplicate of the in-flight key
	// rides free (dedupe attach consumes no quota).
	if _, err := svc.Submit(svcReq("modest", 2)); err != nil {
		t.Fatalf("other tenant shed: %v", err)
	}
	if _, err := svc.Submit(svcReq("greedy", 0)); err != nil {
		t.Fatalf("dedupe attach charged against quota: %v", err)
	}
	close(release)
	if _, err := first.Result(); err != nil {
		t.Fatal(err)
	}
	svc.Drain()
	// Quota released on completion: the once-shed request is admissible.
	if _, err := svc.Submit(svcReq("greedy", 1)); err != nil {
		t.Fatalf("post-completion submit still shed: %v", err)
	}
	if n := svc.Bus().Counter(CtrShedQuota); n != 1 {
		t.Errorf("quota shed counter = %d, want 1", n)
	}
}

func TestServiceOverloadShedsTyped(t *testing.T) {
	release := make(chan struct{})
	svc := NewService(nil, Config{
		Workers: 1, QueueDepth: 1,
		Run: func(ctx context.Context, req Request) ([]byte, error) {
			select {
			case <-release:
				return []byte("ok"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer svc.Close()

	if _, err := svc.Submit(svcReq("t", 0)); err != nil {
		t.Fatal(err)
	}
	// Worker may or may not have dequeued req 0 yet; fill until shed.
	var over *OverloadedError
	shed := false
	for i := 1; i < 5 && !shed; i++ {
		_, err := svc.Submit(svcReq("t", i))
		if errors.As(err, &over) {
			shed = true
		} else if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if !shed {
		t.Fatal("queue of depth 1 absorbed 4 extra requests without shedding")
	}
	if n := svc.Bus().Counter(CtrShedOverload); n < 1 {
		t.Errorf("overload shed counter = %d, want >= 1", n)
	}
	close(release)
	svc.Drain()
}

func TestServiceKillWorkerRequeuesFree(t *testing.T) {
	started := make(chan struct{}, 4)
	var killedOnce atomic.Bool
	svc := NewService(nil, Config{
		Workers: 1, MaxAttempts: 1, RetryBackoff: 100 * time.Microsecond,
		Run: func(ctx context.Context, req Request) ([]byte, error) {
			started <- struct{}{}
			if !killedOnce.Load() {
				<-ctx.Done() // hold the worker until the chaos kill lands
				return nil, ctx.Err()
			}
			return []byte("second life"), nil
		},
	})
	defer svc.Close()

	tk, err := svc.Submit(svcReq("t", 0))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ids := svc.WorkerIDs()
	if len(ids) != 1 {
		t.Fatalf("worker ids = %v, want 1 live worker", ids)
	}
	killedOnce.Store(true)
	if !svc.KillWorker(ids[0]) {
		t.Fatal("KillWorker refused a live worker")
	}
	// MaxAttempts is 1: if the kill burned an attempt the job would
	// quarantine instead of completing on the replacement worker.
	res, err := tk.Result()
	if err != nil || string(res) != "second life" {
		t.Fatalf("after worker kill: %q, %v (kill must not burn an attempt)", res, err)
	}
	if n := svc.Bus().Counter(CtrWorkerRestarts); n != 1 {
		t.Errorf("restart counter = %d, want 1", n)
	}
	if got := svc.WorkerIDs(); len(got) != 1 || got[0] == ids[0] {
		t.Errorf("worker ids after kill = %v, want one fresh id != %d", got, ids[0])
	}
}

func TestServiceRequestTimeoutQuarantinesHang(t *testing.T) {
	svc := NewService(nil, Config{
		Workers: 1, MaxAttempts: 2, RetryBackoff: 100 * time.Microsecond,
		RequestTimeout: 5 * time.Millisecond,
		Run: func(ctx context.Context, req Request) ([]byte, error) {
			<-ctx.Done() // a hang, interruptible only by the deadline
			return nil, ctx.Err()
		},
	})
	defer svc.Close()

	tk, err := svc.Submit(svcReq("t", 0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = tk.Result()
	var qe *QuarantinedError
	if !errors.As(err, &qe) {
		t.Fatalf("hung request: err = %v, want QuarantinedError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("quarantine cause = %v, want DeadlineExceeded in chain", err)
	}
}

func TestServiceCloseFailsPendingTyped(t *testing.T) {
	svc := NewService(nil, Config{
		Workers: 1,
		Run: func(ctx context.Context, req Request) ([]byte, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	tk, err := svc.Submit(svcReq("t", 0))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { svc.Close(); close(done) }()
	_, err = tk.Result()
	var se *ShutdownError
	if !errors.As(err, &se) {
		t.Fatalf("pending ticket after Close: err = %v, want ShutdownError", err)
	}
	<-done
	if _, err := svc.Submit(svcReq("t", 1)); !errors.As(err, &se) {
		t.Fatalf("submit after Close: err = %v, want ShutdownError", err)
	}
}

func TestServiceShutdownDrainsGracefully(t *testing.T) {
	release := make(chan struct{})
	store, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(store, Config{
		Workers: 1,
		Run: func(ctx context.Context, req Request) ([]byte, error) {
			select {
			case <-release:
				return []byte("drained"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	req := svcReq("t", 0)
	tk, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { svc.Shutdown(); close(done) }()

	// Admissions shed with the typed error as soon as the drain begins.
	var se *ShutdownError
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := svc.Submit(svcReq("t", 1))
		if errors.As(err, &se) {
			break
		}
		if err != nil {
			t.Fatalf("submit during drain: %v, want ShutdownError", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never started shedding new submissions")
		}
		time.Sleep(100 * time.Microsecond)
	}
	select {
	case <-done:
		t.Fatal("Shutdown returned while an accepted job was still running")
	default:
	}

	// The in-flight job runs to completion, not to a ShutdownError, and
	// its result persists exactly like a normal completion.
	close(release)
	res, err := tk.Result()
	if err != nil || string(res) != "drained" {
		t.Fatalf("in-flight job during drain: %q, %v; want clean completion", res, err)
	}
	<-done
	if payload, err := store.Get(req.Key()); err != nil || !bytes.Equal(payload, res) {
		t.Fatalf("drained result not persisted: %q, %v", payload, err)
	}
	if n := svc.Bus().Counter(CtrShedDraining); n < 1 {
		t.Errorf("draining shed counter = %d, want >= 1", n)
	}
}

// A job waiting out a retry backoff is accepted work: the drain lets the
// timer fire, the requeue go through, and the retry complete.
func TestServiceShutdownWaitsForRetries(t *testing.T) {
	var calls atomic.Int64
	svc := NewService(nil, Config{
		Workers: 1, MaxAttempts: 3, RetryBackoff: 2 * time.Millisecond,
		Run: func(ctx context.Context, req Request) ([]byte, error) {
			if calls.Add(1) == 1 {
				return nil, fmt.Errorf("transient failure")
			}
			return []byte("second attempt"), nil
		},
	})
	tk, err := svc.Submit(svcReq("t", 0))
	if err != nil {
		t.Fatal(err)
	}
	svc.Shutdown()
	res, err := tk.Result()
	if err != nil || string(res) != "second attempt" {
		t.Fatalf("retrying job during drain: %q, %v; want retry to complete", res, err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("runner invoked %d times, want 2 (drain must wait out the backoff)", got)
	}
}

// Retry backoff jitter is a pure function of (key, attempt): the same
// request replays on the same schedule across daemon restarts, while
// distinct keys spread out instead of thundering back together.
func TestRetryJitterDeterministic(t *testing.T) {
	base := 2 * time.Millisecond
	k1, k2 := svcReq("t", 0).Key(), svcReq("t", 1).Key()
	diverged := false
	for attempt := 1; attempt <= 6; attempt++ {
		backoff := base << uint(attempt-1)
		j := retryJitter(k1, attempt, backoff)
		if again := retryJitter(k1, attempt, backoff); j != again {
			t.Fatalf("attempt %d: jitter %v then %v for the same key", attempt, j, again)
		}
		if j < 0 || j > backoff/2 {
			t.Fatalf("attempt %d: jitter %v outside [0, %v]", attempt, j, backoff/2)
		}
		if j != retryJitter(k2, attempt, backoff) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("two distinct keys jittered identically on every attempt")
	}
	if retryJitter(k1, 1, 0) != 0 {
		t.Fatal("zero backoff must produce zero jitter")
	}
}

func TestServiceStoreDedupeSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	store, _, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := newCountingRunner(0)
	svc := NewService(store, Config{Workers: 2, Run: runner.run})
	req := svcReq("t", 0)
	tk, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tk.Result()
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// "Daemon restart": fresh service over the rescavenged store. The
	// resubmitted request must be served from disk, not recomputed.
	store2, rep, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kept != 1 || rep.Corrupt != 0 {
		t.Fatalf("scavenge after clean shutdown = %+v, want 1 kept", rep)
	}
	svc2 := NewService(store2, Config{Workers: 2, Run: runner.run})
	defer svc2.Close()
	tk2, err := svc2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tk2.Result()
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("restarted service: %q, %v; want stored %q", got, err, want)
	}
	if n := runner.count(req.Key()); n != 1 {
		t.Fatalf("runner executed %d times across restart, want 1 (store dedupe)", n)
	}
	if n := svc2.Bus().Counter(CtrDedupeStore); n != 1 {
		t.Errorf("store dedupe counter = %d, want 1", n)
	}
}

func TestServiceCorruptStoreEntryRecomputed(t *testing.T) {
	store, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runner := newCountingRunner(0)
	svc := NewService(store, Config{Workers: 1, Run: runner.run})
	defer svc.Close()
	req := svcReq("t", 0)
	tk, _ := svc.Submit(req)
	want, err := tk.Result()
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := store.CorruptEntry(req.Key(), 7); !ok || err != nil {
		t.Fatalf("CorruptEntry: %v %v", ok, err)
	}
	tk2, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tk2.Result()
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("recomputed result = %q, %v; want %q", got, err, want)
	}
	if n := runner.count(req.Key()); n != 2 {
		t.Fatalf("runner executed %d times, want 2 (corruption forces recompute)", n)
	}
	if n := svc.Bus().Counter(CtrStoreEvictions); n != 1 {
		t.Errorf("eviction counter = %d, want 1", n)
	}
	// The healed entry serves the next hit from disk again.
	if _, err := svc.Submit(req); err != nil {
		t.Fatal(err)
	}
	if n := runner.count(req.Key()); n != 2 {
		t.Fatalf("healed entry recomputed again: %d runs", n)
	}
}
