package sweep

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func testReq(op string, bytes int64) Request {
	return Request{Op: op, Procs: 8, PPN: 4, Bytes: bytes, Mode: "no-power", Iters: 1}
}

func openTestService(t *testing.T, dir string, cfg Config) *Service {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	svc, err := OpenService(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestRecoveryCompletesAckedWork is the tentpole contract in miniature:
// submit, kill -9 before anything resolves, reopen — the acked requests
// complete from the journal alone, byte-identical, with no resubmit.
func TestRecoveryCompletesAckedWork(t *testing.T) {
	dir := t.TempDir()
	svc := openTestService(t, dir, Config{})

	reqs := []Request{testReq("allreduce", 1024), testReq("allgather_ring", 2048), testReq("bcast_binomial", 512)}
	want := map[Key][]byte{}
	keys := make([]Key, len(reqs))
	for i, r := range reqs {
		keys[i] = r.Key()
		payload, err := Simulate(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		want[keys[i]] = payload
	}
	for _, r := range reqs {
		if _, err := svc.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	svc.Kill() // kill -9: no drain, no shutdown records, WAL frozen mid-air

	svc2 := openTestService(t, dir, Config{})
	defer svc2.Close()
	rep, err := svc2.RecoveryReport(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requeued+rep.FromStore+rep.Completed < len(reqs) {
		t.Errorf("recovery accounted for %d+%d+%d requests, want >= %d",
			rep.Requeued, rep.FromStore, rep.Completed, len(reqs))
	}
	for i, k := range keys {
		tk, ok, err := svc2.Attach(k)
		if err != nil || !ok {
			t.Fatalf("attach %d: ok=%v err=%v — acked request lost", i, ok, err)
		}
		payload, err := tk.Result()
		if err != nil {
			t.Fatalf("recovered request %d: %v", i, err)
		}
		if string(payload) != string(want[k]) {
			t.Errorf("recovered request %d differs from clean run", i)
		}
	}
}

// TestRecoveryRepairsFromStore: crash lands between the store write and
// the completed record — recovery must repair the journal from the
// store, not re-run.
func TestRecoveryRepairsFromStore(t *testing.T) {
	dir := t.TempDir()
	req := testReq("allreduce", 4096)
	fired := false
	svc, err := OpenService(dir, Config{
		Workers: 1, QueueDepth: 8,
		CrashHook: func(point string, key Key) bool {
			if point == CrashStoreWrite && !fired {
				fired = true
				return true
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.WaitReady(context.Background()); err != nil {
		t.Fatal(err)
	}
	tk, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Result(); !errAsBool[*KilledError](err) {
		t.Fatalf("ticket resolved %v, want KilledError", err)
	}
	if !svc.Killed() {
		t.Fatal("crash hook never fired")
	}

	svc2 := openTestService(t, dir, Config{})
	defer svc2.Close()
	rep, _ := svc2.RecoveryReport(context.Background())
	if rep.FromStore != 1 {
		t.Errorf("FromStore = %d, want 1 (crash was after the store write)", rep.FromStore)
	}
	if got := svc2.Bus().Counter(CtrExecutions); got != 0 {
		t.Errorf("recovery re-ran a request whose result was already durable (%d executions)", got)
	}
	tk2, ok, err := svc2.Attach(req.Key())
	if err != nil || !ok {
		t.Fatalf("attach: ok=%v err=%v", ok, err)
	}
	if _, err := tk2.Result(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryIdempotencyKeys: a client that crashed mid-ack retries
// the same Idem against the restarted daemon and attaches to the
// journaled request instead of being accepted twice; reusing the Idem
// for a different request is refused.
func TestRecoveryIdempotencyKeys(t *testing.T) {
	dir := t.TempDir()
	svc := openTestService(t, dir, Config{})
	req := testReq("allreduce", 1024)
	req.Idem = "client-42"
	if _, err := svc.Submit(req); err != nil {
		t.Fatal(err)
	}
	svc.Kill()

	svc2 := openTestService(t, dir, Config{})
	defer svc2.Close()
	// Same idem, same request: attaches (idem map rebuilt from journal).
	before := svc2.Bus().Counter(CtrAccepted)
	tk, err := svc2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := svc2.Bus().Counter(CtrAccepted) - before; got != 0 {
		t.Errorf("idem retry was re-accepted (%d new accepts), want attach", got)
	}
	if svc2.Bus().Counter(CtrDedupeIdem)+svc2.Bus().Counter(CtrDedupeStore) == 0 {
		t.Error("idem retry hit neither the idem map nor the store")
	}
	if _, err := tk.Result(); err != nil {
		t.Fatal(err)
	}
	// Same idem, different request: a client bug, refused loudly.
	other := testReq("allreduce", 999999)
	other.Idem = "client-42"
	if _, err := svc2.Submit(other); !errAsBool[*IdemConflictError](err) {
		t.Errorf("idem reuse for a different request: %v, want IdemConflictError", err)
	}
	// AttachIdem finds the original.
	if _, ok, err := svc2.AttachIdem("client-42"); err != nil || !ok {
		t.Errorf("AttachIdem: ok=%v err=%v", ok, err)
	}
}

// TestRecoveryRestoresQuarantine: poison stays poisoned across kill -9
// — the shed record restores the quarantine entry, so the resubmit
// fails fast instead of wedging the fresh pool.
func TestRecoveryRestoresQuarantine(t *testing.T) {
	dir := t.TempDir()
	poison := testReq("allreduce", 1024)
	alwaysFail := func(ctx context.Context, req Request) ([]byte, error) {
		return nil, fmt.Errorf("deterministic failure")
	}
	svc := openTestService(t, dir, Config{
		Workers: 1, QueueDepth: 8, MaxAttempts: 2,
		RetryBackoff: time.Microsecond, Run: alwaysFail,
	})
	tk, err := svc.Submit(poison)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Result(); !errAsBool[*QuarantinedError](err) {
		t.Fatalf("poison resolved %v, want QuarantinedError", err)
	}
	svc.Kill()

	svc2 := openTestService(t, dir, Config{
		Workers: 1, QueueDepth: 8, MaxAttempts: 2, Run: alwaysFail,
	})
	defer svc2.Close()
	rep, _ := svc2.RecoveryReport(context.Background())
	if rep.Shed != 1 {
		t.Errorf("recovery restored %d quarantines, want 1", rep.Shed)
	}
	if _, err := svc2.Submit(poison); !errAsBool[*QuarantinedError](err) {
		t.Errorf("poison resubmit after restart: %v, want fast QuarantinedError", err)
	}
	if got := svc2.Bus().Counter(CtrExecutions); got != 0 {
		t.Errorf("quarantined request re-executed %d times after restart, want 0", got)
	}
}

// TestRecoveryReadiness: submissions are shed with RecoveringError
// while replay is parked, and accepted once it finishes.
func TestRecoveryReadiness(t *testing.T) {
	dir := t.TempDir()
	hold := make(chan struct{})
	svc, err := OpenService(dir, Config{Workers: 1, QueueDepth: 8, HoldRecovery: hold})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := svc.State(); got != "recovering" {
		t.Errorf("State() = %q before replay, want recovering", got)
	}
	if _, err := svc.Submit(testReq("allreduce", 1024)); !errAsBool[*RecoveringError](err) {
		t.Errorf("submit while recovering: %v, want RecoveringError", err)
	}
	close(hold)
	if err := svc.WaitReady(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := svc.State(); got != "ready" {
		t.Errorf("State() = %q after replay, want ready", got)
	}
	tk, err := svc.Submit(testReq("allreduce", 1024))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Result(); err != nil {
		t.Fatal(err)
	}
	if got := svc.Bus().Counter(CtrShedRecovering); got != 1 {
		t.Errorf("CtrShedRecovering = %d, want 1", got)
	}
}

// TestRecoveryLeaseSeeding: lease IDs stay monotone across restarts —
// a new daemon's first lease is past everything in the journal.
func TestRecoveryLeaseSeeding(t *testing.T) {
	dir := t.TempDir()
	svc := openTestService(t, dir, Config{Workers: 2})
	for i := 0; i < 4; i++ {
		tk, err := svc.Submit(testReq("allreduce", int64(1024+i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Result(); err != nil {
			t.Fatal(err)
		}
	}
	svc.Kill()

	svc2 := openTestService(t, dir, Config{Workers: 2})
	defer svc2.Close()
	svc2.mu.Lock()
	seeded := svc2.leaseSeq
	svc2.mu.Unlock()
	if seeded < 4 {
		t.Errorf("leaseSeq seeded to %d, want >= 4 (monotone across restarts)", seeded)
	}
}

// TestRecoveryManyRestarts: N kill/reopen cycles over the same dir,
// submitting a few new requests each incarnation; the final incarnation
// owes everything ever acked.
func TestRecoveryManyRestarts(t *testing.T) {
	dir := t.TempDir()
	want := map[Key]bool{}
	for gen := 0; gen < 4; gen++ {
		svc := openTestService(t, dir, Config{Workers: 2, QueueDepth: 64})
		for i := 0; i < 3; i++ {
			req := testReq("allreduce", int64(1024*(gen*3+i+1)))
			if _, err := svc.Submit(req); err != nil {
				t.Fatal(err)
			}
			want[req.Key()] = true
		}
		svc.Kill()
	}
	final := openTestService(t, dir, Config{Workers: 2, QueueDepth: 64})
	defer final.Close()
	for k := range want {
		tk, ok, err := final.Attach(k)
		if err != nil || !ok {
			t.Fatalf("attach %s after 4 generations: ok=%v err=%v", k, ok, err)
		}
		if _, err := tk.Result(); err != nil {
			t.Fatalf("key %s: %v", k, err)
		}
	}
	// Everything terminal: compaction should have collapsed the journal.
	final.Drain()
	if got := final.Journal().SegmentCount(); got > 2 {
		t.Errorf("journal at %d segments after all work terminal, want <= 2", got)
	}
}

// TestCrashPointMatrix runs one submit through a daemon killed at each
// crash boundary in turn and checks the recovery ledger balances every
// time: after restart the request completes exactly once.
func TestCrashPointMatrix(t *testing.T) {
	for _, point := range CrashPoints {
		point := point
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			req := testReq("allreduce", 2048)
			req.Idem = "matrix-" + point
			fired := false
			svc, err := OpenService(dir, Config{
				Workers: 1, QueueDepth: 8,
				CrashHook: func(p string, key Key) bool {
					if p == point && !fired {
						fired = true
						return true
					}
					return false
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := svc.WaitReady(context.Background()); err != nil {
				t.Fatal(err)
			}
			tk, serr := svc.Submit(req)
			acked := serr == nil
			if acked {
				_, rerr := tk.Result()
				if rerr != nil && !errAsBool[*KilledError](rerr) {
					t.Fatalf("ticket: %v", rerr)
				}
			} else if !errAsBool[*KilledError](serr) {
				t.Fatalf("submit: %v", serr)
			}
			for !svc.Killed() {
				time.Sleep(time.Millisecond) // async points (start/store-write/resolve)
			}

			svc2 := openTestService(t, dir, Config{Workers: 1, QueueDepth: 8})
			defer svc2.Close()
			// The client retry protocol: if the ack never arrived, resubmit
			// the same idem; if it did, attach. Either way: exactly one
			// result, byte-identical to a clean run.
			var payload []byte
			if acked {
				tk2, ok, err := svc2.Attach(req.Key())
				if err != nil || !ok {
					t.Fatalf("attach at %s: ok=%v err=%v", point, ok, err)
				}
				payload, err = tk2.Result()
				if err != nil {
					t.Fatal(err)
				}
			} else {
				tk2, err := svc2.Submit(req)
				if err != nil {
					t.Fatal(err)
				}
				payload, err = tk2.Result()
				if err != nil {
					t.Fatal(err)
				}
			}
			want, err := Simulate(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if string(payload) != string(want) {
				t.Errorf("crash at %s: recovered bytes differ from clean run", point)
			}
			if got := svc2.Bus().Counter(CtrExecutions); got > 1 {
				t.Errorf("crash at %s: %d executions after restart, want <= 1", point, got)
			}
		})
	}
}

// TestOpenServiceTwice: the wal/ subdirectory must not confuse the
// store scavenger, and sequential open/close cycles must be clean.
func TestOpenServiceCleanCycles(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		svc := openTestService(t, dir, Config{})
		rep, _ := svc.RecoveryReport(context.Background())
		if rep.Scavenge.Corrupt != 0 || rep.Scavenge.Torn != 0 {
			t.Fatalf("cycle %d: scavenger ate %d/%d entries of a clean store",
				i, rep.Scavenge.Corrupt, rep.Scavenge.Torn)
		}
		tk, err := svc.Submit(testReq("allreduce", 1024))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Result(); err != nil {
			t.Fatal(err)
		}
		svc.Close()
	}
}

// TestKilledServiceStateAndAppend: after Kill, submits fail typed, the
// state reports killed, and the journal refuses appends.
func TestKilledServiceState(t *testing.T) {
	dir := t.TempDir()
	svc := openTestService(t, dir, Config{})
	svc.Kill()
	if got := svc.State(); got != "killed" {
		t.Errorf("State() = %q, want killed", got)
	}
	if _, err := svc.Submit(testReq("allreduce", 1024)); !errAsBool[*KilledError](err) {
		t.Errorf("submit on killed service: %v, want KilledError", err)
	}
	if err := svc.Journal().Append(WALRecord{Type: RecAccepted, Key: "x"}, false); err != ErrWALFrozen {
		t.Errorf("journal append on killed service: %v, want ErrWALFrozen", err)
	}
	svc.Kill() // idempotent
}

func TestRecoveryReportString(t *testing.T) {
	dir := t.TempDir()
	svc := openTestService(t, dir, Config{})
	defer svc.Close()
	rep, err := svc.RecoveryReport(context.Background())
	if err != nil || rep == nil {
		t.Fatalf("rep=%v err=%v", rep, err)
	}
	if rep.Journal.Records != 0 || rep.Requeued != 0 {
		t.Errorf("fresh dir recovered %+v, want zeroes", *rep)
	}
	_ = fmt.Sprintf("%+v", *rep)
}
