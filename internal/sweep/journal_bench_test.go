package sweep

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"
)

// benchReqs builds n unique, fast, real requests: the overhead gate
// measures the journal against genuine simulation work, not an empty
// runner, because that is the ratio operators actually pay.
func benchReqs(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = Request{
			Op: "allreduce", Procs: 8, PPN: 4,
			Bytes: int64(1024 * (i + 1)), Mode: "no-power", Iters: 1,
		}
	}
	return out
}

// submitAllSequential drives the worst case for group commit: one
// client, no concurrency to share fsyncs with, every accept paying its
// own flush.
func submitAllSequential(tb testing.TB, svc *Service, reqs []Request) {
	tb.Helper()
	for _, req := range reqs {
		tk, err := svc.Submit(req)
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := tk.Result(); err != nil {
			tb.Fatal(err)
		}
	}
}

// TestJournalOverheadBudget is the bench-guard gate (BENCH_10.json):
// the healthy-path cost of durable acks. Both arms run the same unique
// requests through real simulation on a fresh store; the journaled arm
// adds the accepted-record fsync per submit. Min-of-5 interleaved
// trials; the 0.5 budget is deliberately loose because CI disks vary
// wildly in fsync latency — the gate exists to catch the journal
// accidentally landing on the execution path (which shows up as 2-10x,
// not 1.5x), not to benchmark the disk.
func TestJournalOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("journal overhead gate skipped in -short mode")
	}
	reqs := benchReqs(24)
	cfg := Config{Workers: 2, QueueDepth: 64}

	plainTrial := func() time.Duration {
		store, _, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		svc := NewService(store, cfg)
		defer svc.Close()
		start := time.Now()
		submitAllSequential(t, svc, reqs)
		return time.Since(start)
	}
	journaledTrial := func() time.Duration {
		svc, err := OpenService(t.TempDir(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		if err := svc.WaitReady(context.Background()); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		submitAllSequential(t, svc, reqs)
		return time.Since(start)
	}

	const trials = 5
	plain, journaled := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < trials; i++ { // interleaved so ambient noise hits both arms
		if d := plainTrial(); d < plain {
			plain = d
		}
		if d := journaledTrial(); d < journaled {
			journaled = d
		}
	}
	overhead := float64(journaled)/float64(plain) - 1
	const budget = 0.5
	t.Logf("plain %v, journaled %v, overhead %.4f (budget %.2f)", plain, journaled, overhead, budget)

	if out := os.Getenv("PACC_BENCH_OUT"); out != "" {
		body := fmt.Sprintf(`{
  "benchmark": "24 unique allreduce 8x4 submits, sequential, real simulation",
  "plain_us": %.1f,
  "journaled_us": %.1f,
  "journal_overhead": %.4f,
  "budget": %.2f
}`, float64(plain.Microseconds()), float64(journaled.Microseconds()), overhead, budget)
		if err := os.WriteFile(out, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if overhead > budget {
		t.Errorf("journaled submit overhead %.4f exceeds the %.2f budget (plain %v, journaled %v)",
			overhead, budget, plain, journaled)
	}
}

// BenchmarkSubmitPlain / BenchmarkSubmitJournaled are the raw arms for
// manual investigation (go test -bench Submit -benchtime 10x).
func BenchmarkSubmitPlain(b *testing.B) {
	reqs := benchReqs(8)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store, _, err := OpenStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		svc := NewService(store, Config{Workers: 2, QueueDepth: 64})
		b.StartTimer()
		submitAllSequential(b, svc, reqs)
		b.StopTimer()
		svc.Close()
	}
}

func BenchmarkSubmitJournaled(b *testing.B) {
	reqs := benchReqs(8)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		svc, err := OpenService(b.TempDir(), Config{Workers: 2, QueueDepth: 64})
		if err != nil {
			b.Fatal(err)
		}
		if err := svc.WaitReady(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		submitAllSequential(b, svc, reqs)
		b.StopTimer()
		svc.Close()
	}
}
