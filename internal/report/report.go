// Package report renders experiment results as a self-contained HTML
// document with inline SVG charts — the reproduction's counterpart to the
// paper's figures, generated with the standard library only.
package report

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"

	"pacc/internal/experiments"
	"pacc/internal/stats"
)

// Chart geometry.
const (
	chartW  = 680
	chartH  = 380
	marginL = 80
	marginR = 160 // legend space
	marginT = 24
	marginB = 56
)

// palette holds distinguishable series colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf",
}

// WriteHTML renders the results as one HTML page.
func WriteHTML(w io.Writer, title string, results []*experiments.Result) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString(`<style>
body { font-family: Georgia, serif; max-width: 900px; margin: 2em auto; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3em; }
h2 { margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; font-size: 0.92em; }
th, td { border: 1px solid #999; padding: .3em .6em; text-align: right; }
th:first-child, td:first-child { text-align: left; }
.note { font-style: italic; color: #555; }
svg { background: #fcfcfc; border: 1px solid #ddd; }
</style></head><body>`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	// Table of contents.
	b.WriteString("<ul>\n")
	for _, r := range results {
		fmt.Fprintf(&b, `<li><a href="#%s">%s — %s</a></li>`+"\n",
			html.EscapeString(r.ID), html.EscapeString(r.ID), html.EscapeString(r.Title))
	}
	b.WriteString("</ul>\n")

	for _, r := range results {
		fmt.Fprintf(&b, `<h2 id="%s">%s — %s</h2>`+"\n",
			html.EscapeString(r.ID), html.EscapeString(r.ID), html.EscapeString(r.Title))
		if len(r.Series) > 0 {
			renderChart(&b, r)
		}
		for _, t := range r.Tables {
			renderTable(&b, t)
		}
		for _, n := range r.Notes {
			fmt.Fprintf(&b, `<p class="note">%s</p>`+"\n", html.EscapeString(n))
		}
	}
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func renderTable(b *strings.Builder, t experiments.Table) {
	fmt.Fprintf(b, "<h3>%s</h3>\n<table>\n<tr>", html.EscapeString(t.Title))
	for _, h := range t.Header {
		fmt.Fprintf(b, "<th>%s</th>", html.EscapeString(h))
	}
	b.WriteString("</tr>\n")
	for _, row := range t.Rows {
		b.WriteString("<tr>")
		for _, cell := range row {
			fmt.Fprintf(b, "<td>%s</td>", html.EscapeString(cell))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
}

// axisScale maps data to pixels, optionally in log2 space (used when the
// x-axis is a message-size sweep).
type axisScale struct {
	min, max float64
	log      bool
	pixMin   float64
	pixMax   float64
}

func (a axisScale) pos(v float64) float64 {
	lo, hi, x := a.min, a.max, v
	if a.log {
		lo, hi, x = math.Log2(lo), math.Log2(hi), math.Log2(v)
	}
	if hi == lo {
		return (a.pixMin + a.pixMax) / 2
	}
	return a.pixMin + (x-lo)/(hi-lo)*(a.pixMax-a.pixMin)
}

func renderChart(b *strings.Builder, r *experiments.Result) {
	// Gather extents.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1)
	for _, s := range r.Series {
		xmin = math.Min(xmin, stats.Min(s.X))
		xmax = math.Max(xmax, stats.Max(s.X))
		ymax = math.Max(ymax, stats.Max(s.Y))
	}
	if math.IsInf(xmin, 1) || ymax <= 0 {
		return
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	xLabel, yLabel := r.Series[0].XLabel, r.Series[0].YLabel
	logX := xLabel == "bytes" && xmin > 0 && xmax/xmin >= 8

	xs := axisScale{min: xmin, max: xmax, log: logX, pixMin: marginL, pixMax: chartW - marginR}
	ys := axisScale{min: ymin, max: ymax * 1.05, pixMin: float64(chartH - marginB), pixMax: marginT}

	fmt.Fprintf(b, `<svg width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", chartW, chartH, chartW, chartH)
	// Axes.
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginL, chartH-marginB, chartW-marginR, chartH-marginB)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginL, marginT, marginL, chartH-marginB)
	// X ticks.
	for _, tv := range ticks(xmin, xmax, logX) {
		px := xs.pos(tv)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n",
			px, chartH-marginB, px, chartH-marginB+5)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px, chartH-marginB+20, tickLabel(tv, xLabel))
	}
	// Y ticks.
	for _, tv := range ticks(ymin, ymax*1.05, false) {
		py := ys.pos(tv)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#333"/>`+"\n",
			marginL-5, py, marginL, py)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-8, py+4, tickLabel(tv, yLabel))
	}
	// Axis labels.
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		(marginL+chartW-marginR)/2, chartH-8, html.EscapeString(xLabel))
	fmt.Fprintf(b, `<text x="16" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		(marginT+chartH-marginB)/2, (marginT+chartH-marginB)/2, html.EscapeString(yLabel))

	// Series polylines + legend.
	for i, s := range r.Series {
		color := palette[i%len(palette)]
		var pts []string
		for j := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xs.pos(s.X[j]), ys.pos(s.Y[j])))
		}
		fmt.Fprintf(b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		for j := range s.X {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				xs.pos(s.X[j]), ys.pos(s.Y[j]), color)
		}
		ly := marginT + 16 + i*18
		fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			chartW-marginR+10, ly, chartW-marginR+34, ly, color)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			chartW-marginR+40, ly+4, html.EscapeString(s.Name))
	}
	b.WriteString("</svg>\n")
}

// ticks picks 4-7 tick values across [lo, hi]; log mode uses powers of 4.
func ticks(lo, hi float64, log bool) []float64 {
	if log {
		var out []float64
		for v := pow2At(lo); v <= hi*1.0001; v *= 4 {
			if v >= lo*0.999 {
				out = append(out, v)
			}
		}
		return out
	}
	if hi <= lo {
		return []float64{lo}
	}
	step := niceStep((hi - lo) / 5)
	var out []float64
	start := math.Ceil(lo/step) * step
	for v := start; v <= hi*1.0001; v += step {
		out = append(out, v)
	}
	return out
}

func pow2At(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return math.Pow(2, math.Floor(math.Log2(v)))
}

func niceStep(raw float64) float64 {
	if raw <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch {
	case raw/mag < 1.5:
		return mag
	case raw/mag < 3.5:
		return 2 * mag
	case raw/mag < 7.5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

// tickLabel formats a tick value for its axis.
func tickLabel(v float64, label string) string {
	if label == "bytes" {
		return stats.FormatBytes(int64(v + 0.5))
	}
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
