package report

import (
	"math"
	"strings"
	"testing"

	"pacc/internal/experiments"
)

func sampleResults() []*experiments.Result {
	return []*experiments.Result{
		{
			ID:    "figX",
			Title: "Latency sweep <with markup>",
			Series: []experiments.Series{
				{
					Name: "No-Power", XLabel: "bytes", YLabel: "latency_us",
					X: []float64{1024, 4096, 16384, 65536},
					Y: []float64{100, 250, 900, 3200},
				},
				{
					Name: "Proposed", XLabel: "bytes", YLabel: "latency_us",
					X: []float64{1024, 4096, 16384, 65536},
					Y: []float64{120, 280, 950, 3300},
				},
			},
			Notes: []string{"overhead < 10% & shrinking"},
		},
		{
			ID:    "tabY",
			Title: "Energy table",
			Tables: []experiments.Table{{
				Title:  "KJ",
				Header: []string{"scheme", "energy"},
				Rows:   [][]string{{"Default", "16.4"}, {"Proposed", "15.5"}},
			}},
			Notes: []string{"proposed saves 5%"},
		},
	}
}

func TestWriteHTML(t *testing.T) {
	var sb strings.Builder
	if err := WriteHTML(&sb, "pacc results", sampleResults()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<svg",
		"polyline",
		"No-Power",
		"Proposed",
		"<table>",
		"Default",
		"proposed saves 5%",
		`id="figX"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// Markup in titles and notes must be escaped.
	if strings.Contains(out, "<with markup>") {
		t.Error("unescaped markup in title")
	}
	if !strings.Contains(out, "&lt;with markup&gt;") {
		t.Error("escaped title missing")
	}
	if !strings.Contains(out, "overhead &lt; 10% &amp; shrinking") {
		t.Error("note not escaped")
	}
	// Two series -> two polylines.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
}

func TestWriteHTMLEmptySeriesSkipsChart(t *testing.T) {
	res := []*experiments.Result{{
		ID: "empty", Title: "no data",
		Series: []experiments.Series{{Name: "s", X: nil, Y: nil}},
	}}
	var sb strings.Builder
	if err := WriteHTML(&sb, "t", res); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "<polyline") {
		t.Error("chart rendered for empty series")
	}
}

func TestTicksLinear(t *testing.T) {
	ts := ticks(0, 100, false)
	if len(ts) < 4 || len(ts) > 8 {
		t.Fatalf("tick count %d: %v", len(ts), ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("ticks not increasing: %v", ts)
		}
	}
}

func TestTicksLog(t *testing.T) {
	ts := ticks(1024, 1<<20, true)
	if len(ts) < 3 {
		t.Fatalf("log ticks %v", ts)
	}
	for _, v := range ts {
		if math.Log2(v) != math.Trunc(math.Log2(v)) {
			t.Fatalf("log tick %v not a power of two", v)
		}
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{
		0.9: 1, 1.2: 1, 3: 2, 7: 5, 9: 10, 23: 20, 180: 200,
	}
	for in, want := range cases {
		if got := niceStep(in); got != want {
			t.Errorf("niceStep(%v) = %v, want %v", in, got, want)
		}
	}
	if niceStep(0) != 1 {
		t.Error("zero step should default")
	}
}

func TestTickLabel(t *testing.T) {
	if got := tickLabel(65536, "bytes"); got != "64K" {
		t.Errorf("bytes label = %q", got)
	}
	if got := tickLabel(2e6, "latency_us"); got != "2M" {
		t.Errorf("large label = %q", got)
	}
	if got := tickLabel(42, "watts"); got != "42" {
		t.Errorf("int label = %q", got)
	}
}

// TestRealExperimentRenders: an actual quick experiment renders without
// error and with one polyline per series.
func TestRealExperimentRenders(t *testing.T) {
	spec, ok := experiments.Lookup("fig2c")
	if !ok {
		t.Fatal("fig2c missing")
	}
	res, err := spec.Run(experiments.Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteHTML(&sb, "one", []*experiments.Result{res}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "<polyline"); got != len(res.Series) {
		t.Errorf("%d polylines for %d series", got, len(res.Series))
	}
}
