package plan

import (
	"reflect"
	"testing"
)

func TestDemoteOrder(t *testing.T) {
	cases := []struct {
		name     string
		p        int
		suspects []int
		want     []int
	}{
		{"identity", 4, nil, []int{0, 1, 2, 3}},
		{"one middle", 5, []int{2}, []int{0, 1, 3, 4, 2}},
		{"root suspected", 4, []int{0}, []int{1, 2, 3, 0}},
		{"already last", 4, []int{3}, []int{0, 1, 2, 3}},
		{"two keep order", 6, []int{4, 1}, []int{0, 2, 3, 5, 1, 4}},
		{"all suspected", 3, []int{0, 1, 2}, []int{0, 1, 2}},
		{"dupes and range ignored", 4, []int{1, 1, -2, 9}, []int{0, 2, 3, 1}},
		{"singleton", 1, []int{0}, []int{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := DemoteOrder(tc.p, tc.suspects)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("DemoteOrder(%d, %v) = %v, want %v", tc.p, tc.suspects, got, tc.want)
			}
		})
	}
}

func TestDemoteOrderIsPermutation(t *testing.T) {
	for p := 1; p <= 16; p++ {
		for _, suspects := range [][]int{nil, {0}, {p - 1}, {p / 2, p / 3}} {
			got := DemoteOrder(p, suspects)
			if len(got) != p {
				t.Fatalf("p=%d suspects=%v: length %d", p, suspects, len(got))
			}
			seen := make([]bool, p)
			for _, r := range got {
				if r < 0 || r >= p || seen[r] {
					t.Fatalf("p=%d suspects=%v: not a permutation: %v", p, suspects, got)
				}
				seen[r] = true
			}
		}
	}
}
