package plan

// DemoteOrder computes the rank permutation that moves suspected
// fail-slow members to the positions carrying the least forwarding load:
// healthy ranks keep their relative order at the front, suspects keep
// their relative order at the back. In the schedules this package builds,
// the tail positions are exactly the cheap seats — a chain's last rank
// relays nothing, a binomial tree's high ranks are leaves that touch one
// message per phase, and a recursive-doubling/halving order built over
// the permuted group gives the suspects the latest (least pipelined)
// slots. The caller applies the permutation with Comm.Sub, which every
// member must do congruently (the suspect set from Comm.AgreeSuspects is
// identical everywhere, so the permutation is too).
//
// suspects holds communicator ranks in [0,p); out-of-range entries and
// duplicates are ignored. The result always has length p and is the
// identity when nothing is suspected.
func DemoteOrder(p int, suspects []int) []int {
	sus := make([]bool, p)
	for _, s := range suspects {
		if s >= 0 && s < p {
			sus[s] = true
		}
	}
	order := make([]int, 0, p)
	for r := 0; r < p; r++ {
		if !sus[r] {
			order = append(order, r)
		}
	}
	for r := 0; r < p; r++ {
		if sus[r] {
			order = append(order, r)
		}
	}
	return order
}
