package plan

import (
	"fmt"

	"pacc/internal/mpi"
	"pacc/internal/obs"
	"pacc/internal/simtime"
)

// Env is the execution environment of one plan run on one rank.
type Env struct {
	// Comm is the communicator the plan was built for; the executor runs
	// the schedule of rank Comm.Rank().
	Comm *mpi.Comm
	// ReduceBytesPerSec is the full-speed local reduction rate charged
	// by OpReduce steps (must be positive when the plan reduces).
	ReduceBytesPerSec float64
	// VerifyBytesPerSec is the checksum-fold rate charged by OpVerify
	// steps; zero selects DefaultVerifyBytesPerSec.
	VerifyBytesPerSec float64
	// OnPhase, when non-nil, receives each closed phase's name and
	// duration (the per-phase trace accrual of the collective layer).
	OnPhase func(name string, d simtime.Duration)
	// StepSpans emits one observability span per executed step in
	// addition to the phase spans. Off by default: the per-step timeline
	// is a debugging aid, and leaving it off keeps plan-executed
	// collectives trace-identical to their imperative ancestors.
	StepSpans bool
}

// Execute runs the calling rank's schedule of a plan over the MPI layer.
// It must be called SPMD — every member of the communicator executes the
// same plan — and assumes the plan has been verified (Verify); malformed
// steps surface as errors, not panics.
//
// The executor owns the power annotations: OpPower steps apply the
// DVFS/throttle transitions that the imperative algorithms wove into
// their send/recv loops, so an algorithm ported to a plan carries its
// power schedule as data.
func Execute(p *Plan, env Env) error {
	c := env.Comm
	if p == nil || c == nil {
		return fmt.Errorf("plan: Execute needs a plan and a communicator")
	}
	me := c.Rank()
	if p.P != c.Size() {
		return fmt.Errorf("plan %q: built for %d ranks, executed on %d", p.Name, p.P, c.Size())
	}
	if me < 0 || me >= len(p.Steps) {
		return fmt.Errorf("plan %q: rank %d outside schedule", p.Name, me)
	}
	block := 0
	if p.NeedsTagBlock {
		block = c.TagBlock()
	}
	r := c.Owner()
	var bus *obs.Bus = r.World().Obs()
	in := r.World().Injector()
	// tainted marks this rank's reduction accumulator as hit by a memory-
	// corruption burst; the next OpVerify detects it (a plan carries no
	// values, so the taint bit is the IR-level image of the checked
	// collectives' sum != check comparison).
	tainted := false

	type openPhase struct {
		name  string
		start simtime.Time
	}
	var phases []openPhase

	stepSpan := func(s Step, fn func()) {
		if bus == nil || !env.StepSpans {
			fn()
			return
		}
		start := r.Now()
		fn()
		// Communication steps carry their global peer and size, so the
		// analytics layer can follow plan-level dependency edges.
		var args map[string]any
		switch s.Op {
		case OpSend, OpRecv:
			args = map[string]any{"peer": c.Global(s.Peer), "bytes": s.Bytes}
		case OpSendRecv:
			args = map[string]any{
				"peer":  c.Global(s.RecvFrom),
				"dst":   c.Global(s.SendTo),
				"bytes": s.RecvBytes,
			}
		}
		bus.Span(r.ObsTrack(), "plan:"+s.Op.String(), start, r.Now(), args)
	}

	for i, s := range p.Steps[me] {
		// A communication step that fails — a peer died mid-schedule, the
		// communicator was revoked — aborts the whole schedule: the
		// remaining steps would block on a schedule the group is no
		// longer executing. The error wraps the mpi failure so a
		// resilient runner can recognize it (mpi.IsFailure), agree,
		// shrink, rebuild and re-verify a plan for the survivors, and
		// re-execute.
		var opErr error
		switch s.Op {
		case OpSend:
			stepSpan(s, func() { opErr = c.Send(s.Peer, s.Bytes, block+s.Tag) })
		case OpRecv:
			stepSpan(s, func() { opErr = c.Recv(s.Peer, s.Bytes, block+s.Tag) })
		case OpSendRecv:
			stepSpan(s, func() {
				opErr = c.Exchange(s.SendTo, s.SendBytes, block+s.SendTag,
					s.RecvFrom, s.RecvBytes, block+s.RecvTag)
			})
		case OpReduce:
			if s.Bytes > 0 && env.ReduceBytesPerSec <= 0 {
				return fmt.Errorf("plan %q: rank %d step %d reduces with no rate configured", p.Name, me, i)
			}
			stepSpan(s, func() {
				r.StreamCompute(simtime.DurationOf(float64(s.Bytes) / env.ReduceBytesPerSec))
			})
			if s.Bytes > 0 {
				if _, hit := in.MemCorrupt(r.ID(), r.Now().Sub(simtime.Time(0))); hit {
					tainted = true
					if bus != nil {
						bus.Add(obs.CtrFaultMemCorruptions, 1)
						bus.Instant(r.ObsTrack(), "mem corrupt", nil)
					}
				}
			}
		case OpCopy:
			if s.Bytes > 0 {
				stepSpan(s, func() { r.MemCopy(s.Bytes) })
			}
		case OpCompute:
			stepSpan(s, func() { r.Compute(simtime.DurationOf(s.Seconds)) })
		case OpPower:
			switch s.Power.Kind {
			case PowerFreqMin:
				stepSpan(s, r.ScaleDown)
			case PowerFreqMax:
				stepSpan(s, r.ScaleUp)
			case PowerThrottle:
				t := s.Power.TState
				stepSpan(s, func() { r.SetThrottle(t) })
			default:
				return fmt.Errorf("plan %q: rank %d step %d has unknown power action %d", p.Name, me, i, s.Power.Kind)
			}
		case OpVerify:
			stepSpan(s, func() {
				if s.Bytes > 0 {
					rate := env.VerifyBytesPerSec
					if rate <= 0 {
						rate = DefaultVerifyBytesPerSec
					}
					r.StreamCompute(simtime.DurationOf(float64(s.Bytes) / rate))
				}
			})
			if tainted {
				tainted = false
				if bus != nil {
					bus.Add(obs.CtrIntegrityVerifyFails, 1)
					bus.Instant(r.ObsTrack(), "abft verify failed", nil)
				}
				opErr = &IntegrityError{Plan: p.Name, Rank: me, Step: i}
			}
		case OpPhaseBegin:
			phases = append(phases, openPhase{name: s.Phase, start: r.Now()})
		case OpPhaseEnd:
			if len(phases) == 0 {
				return fmt.Errorf("plan %q: rank %d step %d closes a phase that was never opened", p.Name, me, i)
			}
			ph := phases[len(phases)-1]
			phases = phases[:len(phases)-1]
			end := r.Now()
			if env.OnPhase != nil {
				env.OnPhase(ph.name, end.Sub(ph.start))
			}
			if bus != nil {
				bus.Span(r.ObsTrack(), "phase "+ph.name, ph.start, end, nil)
			}
		default:
			return fmt.Errorf("plan %q: rank %d step %d has unknown op %v", p.Name, me, i, s.Op)
		}
		if opErr != nil {
			return fmt.Errorf("plan %q: rank %d step %d (%v): %w", p.Name, me, i, s.Op, opErr)
		}
	}
	if len(phases) != 0 {
		return fmt.Errorf("plan %q: rank %d finished with %d phase(s) open", p.Name, me, len(phases))
	}
	return nil
}
