package plan

import (
	"fmt"
	"sort"

	"pacc/internal/power"
)

// View is the communicator shape a builder sees: size plus the node and
// socket of every communicator rank. It is derivable identically on all
// ranks (SPMD), so every member builds the same plan.
type View struct {
	P       int
	NodeOf  []int
	SocketA []bool // true when the rank's core sits on socket A
}

// Spec parameterizes one plan build.
type Spec struct {
	// Bytes is the uniform per-rank (or per-pair) payload. Builders for
	// v-variants use SizeOf instead.
	Bytes int64
	// Root is the root rank for rooted collectives.
	Root int
	// SizeOf, when non-nil, gives the per-pair payload (src, dst in
	// communicator ranks) and overrides Bytes for alltoall-family
	// builders.
	SizeOf func(src, dst int) int64
	// FreqScale brackets the schedule with fmin/fmax DVFS transitions
	// (both power-aware schemes of the paper do this).
	FreqScale bool
	// Phased applies the paper's phased throttling schedule where the
	// builder supports it (§V-A for alltoall).
	Phased bool
	// DeepT is the T-state of fully idled cores during phased schedules
	// (the paper uses T7).
	DeepT power.TState
	// Verify appends an ABFT checksum verification (OpVerify) to each
	// rank's schedule where the builder supports it, so memory-burst
	// corruption of the reduction buffers fails the plan instead of
	// escaping silently.
	Verify bool
}

// Size resolves the per-pair payload: SizeOf when set, Bytes otherwise.
func (s Spec) Size(src, dst int) int64 {
	if s.SizeOf != nil {
		return s.SizeOf(src, dst)
	}
	return s.Bytes
}

// BuilderFunc produces a full plan (all ranks) for a communicator view.
type BuilderFunc func(v View, s Spec) (*Plan, error)

// Builder is one registered schedule builder.
type Builder struct {
	// Name is the registry key (also the produced plan's name).
	Name string
	// Op is the collective family the builder implements ("allgather",
	// "allreduce", "bcast", "alltoall"), used to enumerate candidates
	// for cost-based selection.
	Op string
	// Build produces the plan.
	Build BuilderFunc
}

var registry = map[string]Builder{}

// Register adds a named builder. Registration happens from package init
// functions; duplicate names are a programming error.
func Register(b Builder) {
	if b.Name == "" || b.Build == nil {
		panic("plan: Register needs a name and a build function")
	}
	if _, dup := registry[b.Name]; dup {
		panic("plan: duplicate builder " + b.Name)
	}
	registry[b.Name] = b
}

// Lookup returns the builder registered under name.
func Lookup(name string) (Builder, bool) {
	b, ok := registry[name]
	return b, ok
}

// Builders returns all registered builders, sorted by name.
func Builders() []Builder {
	out := make([]Builder, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Candidates returns the builders of one collective family, sorted by
// name.
func Candidates(op string) []Builder {
	var out []Builder
	for _, b := range registry {
		if b.Op == op {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BuildNamed builds and returns the named plan.
func BuildNamed(name string, v View, s Spec) (*Plan, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("plan: no builder %q registered", name)
	}
	return b.Build(v, s)
}
