package plan

import (
	"fmt"

	"pacc/internal/power"
)

// VerifyError reports the first invariant violation found in a plan.
type VerifyError struct {
	Plan  string
	Rank  int // -1 when the violation is not attributable to one rank
	Step  int // -1 when not attributable to one step
	Cause string
}

func (e *VerifyError) Error() string {
	where := ""
	if e.Rank >= 0 {
		where = fmt.Sprintf(" rank %d", e.Rank)
		if e.Step >= 0 {
			where += fmt.Sprintf(" step %d", e.Step)
		}
	}
	return fmt.Sprintf("plan %q:%s: %s", e.Plan, where, e.Cause)
}

func (p *Plan) fail(rank, step int, format string, args ...any) error {
	return &VerifyError{Plan: p.Name, Rank: rank, Step: step, Cause: fmt.Sprintf(format, args...)}
}

// sendKey identifies one directed tagged transfer.
type sendKey struct {
	src, dst, tag int
}

// Verify checks the plan's static invariants without running it:
//
//  1. Structure: peers in range, non-negative sizes and tags, balanced
//     phase markers.
//  2. Matching: every send (including the send half of a SendRecv) pairs
//     with exactly one receive of the same (src, dst, tag) and equal
//     size, and vice versa — no orphan or ambiguous transfers.
//  3. Deadlock-freedom: the schedule completes under fully-synchronous
//     (rendezvous) semantics, in which a sender cannot pass its send
//     until the receiver reaches the matching receive. This is stricter
//     than the simulator's eager small-message path, so any plan that
//     verifies is deadlock-free under both.
//  4. Data coverage: when the plan declares a Contract, each rank's
//     summed payload equals the declared per-rank totals.
//  5. Power balance: every rank ends at fmax (any FreqMin is followed by
//     a FreqMax) and unthrottled (T0), so a plan cannot leak a degraded
//     power state into the code that follows it.
func Verify(p *Plan) error {
	if p == nil {
		return fmt.Errorf("plan: Verify(nil)")
	}
	if len(p.Steps) != p.P {
		return p.fail(-1, -1, "has %d rank schedules, want P=%d", len(p.Steps), p.P)
	}
	if err := p.verifyStructure(); err != nil {
		return err
	}
	if err := p.verifyMatching(); err != nil {
		return err
	}
	if err := p.verifyDeadlockFree(); err != nil {
		return err
	}
	if err := p.verifyContract(); err != nil {
		return err
	}
	return p.verifyPowerBalance()
}

func (p *Plan) verifyStructure() error {
	for r, steps := range p.Steps {
		depth := 0
		for i, s := range steps {
			switch s.Op {
			case OpSend, OpRecv:
				if s.Peer < 0 || s.Peer >= p.P {
					return p.fail(r, i, "%v peer %d outside [0,%d)", s.Op, s.Peer, p.P)
				}
				if s.Bytes < 0 {
					return p.fail(r, i, "%v negative size %d", s.Op, s.Bytes)
				}
				if s.Tag < 0 {
					return p.fail(r, i, "%v negative tag %d", s.Op, s.Tag)
				}
			case OpSendRecv:
				if s.SendTo < 0 || s.SendTo >= p.P || s.RecvFrom < 0 || s.RecvFrom >= p.P {
					return p.fail(r, i, "sendrecv peers (%d, %d) outside [0,%d)", s.SendTo, s.RecvFrom, p.P)
				}
				if s.SendBytes < 0 || s.RecvBytes < 0 {
					return p.fail(r, i, "sendrecv negative sizes (%d, %d)", s.SendBytes, s.RecvBytes)
				}
				if s.SendTag < 0 || s.RecvTag < 0 {
					return p.fail(r, i, "sendrecv negative tags (%d, %d)", s.SendTag, s.RecvTag)
				}
			case OpReduce, OpCopy, OpVerify:
				if s.Bytes < 0 {
					return p.fail(r, i, "%v negative size %d", s.Op, s.Bytes)
				}
			case OpCompute:
				if s.Seconds < 0 {
					return p.fail(r, i, "compute negative duration %g", s.Seconds)
				}
			case OpPower:
			case OpPhaseBegin:
				if s.Phase == "" {
					return p.fail(r, i, "phase-begin with empty name")
				}
				depth++
			case OpPhaseEnd:
				depth--
				if depth < 0 {
					return p.fail(r, i, "phase-end without open phase")
				}
			default:
				return p.fail(r, i, "unknown op %v", s.Op)
			}
		}
		if depth != 0 {
			return p.fail(r, -1, "%d phase(s) left open", depth)
		}
	}
	return nil
}

// transfer locates one send or receive half within the plan.
type transfer struct {
	rank, step int
	bytes      int64
}

func (p *Plan) verifyMatching() error {
	sends := map[sendKey]transfer{}
	recvs := map[sendKey]transfer{}
	addSend := func(k sendKey, t transfer) error {
		if prev, dup := sends[k]; dup {
			return p.fail(t.rank, t.step, "duplicate send %d→%d tag %d (also rank %d step %d)", k.src, k.dst, k.tag, prev.rank, prev.step)
		}
		sends[k] = t
		return nil
	}
	addRecv := func(k sendKey, t transfer) error {
		if prev, dup := recvs[k]; dup {
			return p.fail(t.rank, t.step, "duplicate recv %d→%d tag %d (also rank %d step %d)", k.src, k.dst, k.tag, prev.rank, prev.step)
		}
		recvs[k] = t
		return nil
	}
	for r, steps := range p.Steps {
		for i, s := range steps {
			switch s.Op {
			case OpSend:
				if err := addSend(sendKey{r, s.Peer, s.Tag}, transfer{r, i, s.Bytes}); err != nil {
					return err
				}
			case OpRecv:
				if err := addRecv(sendKey{s.Peer, r, s.Tag}, transfer{r, i, s.Bytes}); err != nil {
					return err
				}
			case OpSendRecv:
				if err := addSend(sendKey{r, s.SendTo, s.SendTag}, transfer{r, i, s.SendBytes}); err != nil {
					return err
				}
				if err := addRecv(sendKey{s.RecvFrom, r, s.RecvTag}, transfer{r, i, s.RecvBytes}); err != nil {
					return err
				}
			}
		}
	}
	for k, s := range sends {
		rv, ok := recvs[k]
		if !ok {
			return p.fail(s.rank, s.step, "send %d→%d tag %d has no matching recv", k.src, k.dst, k.tag)
		}
		if rv.bytes != s.bytes {
			return p.fail(s.rank, s.step, "send %d→%d tag %d carries %d bytes but the recv expects %d", k.src, k.dst, k.tag, s.bytes, rv.bytes)
		}
	}
	for k, rv := range recvs {
		if _, ok := sends[k]; !ok {
			return p.fail(rv.rank, rv.step, "recv %d→%d tag %d has no matching send", k.src, k.dst, k.tag)
		}
	}
	return nil
}

// verifyDeadlockFree runs the rendezvous fixpoint: every round, each rank
// whose current step's communication partners have reached their matching
// steps advances (local steps always advance). If no rank can move and
// some schedule is unfinished, the plan deadlocks and the stuck front is
// reported.
func (p *Plan) verifyDeadlockFree() error {
	// stepOf[src,dst,tag] = (rank, step index) of the send / recv half.
	sendAt := map[sendKey]int{}
	recvAt := map[sendKey]int{}
	for r, steps := range p.Steps {
		for i, s := range steps {
			switch s.Op {
			case OpSend:
				sendAt[sendKey{r, s.Peer, s.Tag}] = i
			case OpRecv:
				recvAt[sendKey{s.Peer, r, s.Tag}] = i
			case OpSendRecv:
				sendAt[sendKey{r, s.SendTo, s.SendTag}] = i
				recvAt[sendKey{s.RecvFrom, r, s.RecvTag}] = i
			}
		}
	}
	pc := make([]int, p.P)
	// atStep reports whether rank r is currently blocked at step idx.
	atStep := func(r, idx int) bool { return pc[r] == idx }
	canAdvance := func(r int) bool {
		steps := p.Steps[r]
		if pc[r] >= len(steps) {
			return false
		}
		s := steps[pc[r]]
		switch s.Op {
		case OpSend:
			// The receiver must be parked at the matching receive.
			idx, ok := recvAt[sendKey{r, s.Peer, s.Tag}]
			return ok && atStep(s.Peer, idx)
		case OpRecv:
			idx, ok := sendAt[sendKey{s.Peer, r, s.Tag}]
			return ok && atStep(s.Peer, idx)
		case OpSendRecv:
			sIdx, sOK := recvAt[sendKey{r, s.SendTo, s.SendTag}]
			rIdx, rOK := sendAt[sendKey{s.RecvFrom, r, s.RecvTag}]
			return sOK && rOK && atStep(s.SendTo, sIdx) && atStep(s.RecvFrom, rIdx)
		default:
			return true
		}
	}
	for {
		moved := false
		// Batch rule: compute the advancing set against the current
		// positions, then move everyone together, so a rendezvous
		// meeting (or a cycle of simultaneous exchanges, e.g. a ring)
		// releases all its participants in one round.
		var advance []int
		for r := 0; r < p.P; r++ {
			if canAdvance(r) {
				advance = append(advance, r)
			}
		}
		for _, r := range advance {
			pc[r]++
			moved = true
		}
		if !moved {
			break
		}
	}
	for r := 0; r < p.P; r++ {
		if pc[r] < len(p.Steps[r]) {
			s := p.Steps[r][pc[r]]
			return p.fail(r, pc[r], "deadlock: stuck at %v (peer(s) never reach the matching step)", s.Op)
		}
	}
	return nil
}

func (p *Plan) verifyContract() error {
	c := p.Contract
	if c == nil {
		return nil
	}
	if len(c.SendBytes) != p.P || len(c.RecvBytes) != p.P {
		return p.fail(-1, -1, "contract covers %d/%d ranks, want %d", len(c.SendBytes), len(c.RecvBytes), p.P)
	}
	for r, steps := range p.Steps {
		var sent, recvd int64
		for _, s := range steps {
			switch s.Op {
			case OpSend:
				sent += s.Bytes
			case OpRecv:
				recvd += s.Bytes
			case OpSendRecv:
				sent += s.SendBytes
				recvd += s.RecvBytes
			}
		}
		if sent != c.SendBytes[r] {
			return p.fail(r, -1, "coverage: schedule sends %d bytes, contract wants %d", sent, c.SendBytes[r])
		}
		if recvd != c.RecvBytes[r] {
			return p.fail(r, -1, "coverage: schedule receives %d bytes, contract wants %d", recvd, c.RecvBytes[r])
		}
	}
	return nil
}

func (p *Plan) verifyPowerBalance() error {
	for r, steps := range p.Steps {
		scaledDown := false
		throttle := power.T0
		for i, s := range steps {
			if s.Op != OpPower {
				continue
			}
			switch s.Power.Kind {
			case PowerFreqMin:
				scaledDown = true
			case PowerFreqMax:
				scaledDown = false
			case PowerThrottle:
				throttle = s.Power.TState
			default:
				return p.fail(r, i, "unknown power action %d", s.Power.Kind)
			}
		}
		if scaledDown {
			return p.fail(r, -1, "power: plan ends scaled down to fmin")
		}
		if throttle != power.T0 {
			return p.fail(r, -1, "power: plan ends throttled at %v", throttle)
		}
	}
	return nil
}
