// Package plan is the schedule IR of the collective layer: a collective
// algorithm expressed as one explicit, per-rank ordered list of steps —
// sends, receives, combined exchanges, local reductions and copies,
// compute, and first-class power-phase annotations (the P/T-state
// transitions Kandalla et al. apply per algorithm phase) — instead of an
// imperative send/recv loop.
//
// Representing the schedule as data buys three things the imperative form
// cannot offer (after SCCL, "Synthesizing Optimal Collective Algorithms"):
//
//   - static verification: tag/peer matching, deadlock-freedom under
//     fully-synchronous (rendezvous) semantics, data-coverage contracts
//     and power-state balance are checked by Verify without running the
//     simulator;
//   - cost-based selection: a plan summarizes to Stats, which the
//     analytical model prices, so algorithm switchover points become data
//     rather than hard-coded if-chains;
//   - a single executor: every verified plan runs through Execute over
//     internal/mpi, which applies the power annotations and emits the
//     observability spans, so new algorithms need no new runtime code.
//
// Builders for the stock algorithms live in internal/collective and are
// registered here by name (see Register/Builders).
package plan

import (
	"fmt"

	"pacc/internal/power"
)

// Op is the kind of one schedule step.
type Op int

const (
	// OpSend is a blocking send of Bytes to Peer with the relative Tag.
	OpSend Op = iota
	// OpRecv is a blocking receive of Bytes from Peer with the relative
	// Tag.
	OpRecv
	// OpSendRecv posts the canonical nonblocking exchange: receive
	// RecvBytes from RecvFrom (RecvTag) and send SendBytes to SendTo
	// (SendTag), completing both before the next step.
	OpSendRecv
	// OpReduce charges the streaming cost of folding Bytes into the
	// local accumulator (rate supplied by the execution environment).
	OpReduce
	// OpCopy charges one streaming memory copy of Bytes.
	OpCopy
	// OpCompute charges Seconds of full-speed CPU work.
	OpCompute
	// OpPower applies a P/T-state annotation (see PowerAction).
	OpPower
	// OpPhaseBegin opens the named phase on this rank's timeline.
	OpPhaseBegin
	// OpPhaseEnd closes the innermost open phase, emitting its span and
	// accruing its duration into the caller's phase trace.
	OpPhaseEnd
	// OpVerify charges an ABFT checksum fold over Bytes and fails the
	// plan with an IntegrityError if any preceding OpReduce on this rank
	// was hit by an injected memory-corruption burst. It is the plan-IR
	// form of the checked collectives' end-of-algorithm verification.
	OpVerify
)

func (o Op) String() string {
	switch o {
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpSendRecv:
		return "sendrecv"
	case OpReduce:
		return "reduce"
	case OpCopy:
		return "copy"
	case OpCompute:
		return "compute"
	case OpPower:
		return "power"
	case OpPhaseBegin:
		return "phase-begin"
	case OpPhaseEnd:
		return "phase-end"
	case OpVerify:
		return "verify"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// PowerKind selects the transition of an OpPower step.
type PowerKind int

const (
	// PowerFreqMin moves the core to fmin (ScaleDown).
	PowerFreqMin PowerKind = iota
	// PowerFreqMax restores the core to fmax (ScaleUp).
	PowerFreqMax
	// PowerThrottle sets the core's T-state to TState.
	PowerThrottle
)

// PowerAction is the annotation carried by an OpPower step.
type PowerAction struct {
	Kind   PowerKind
	TState power.TState // PowerThrottle only
}

// Step is one entry of a rank's schedule. Field use depends on Op; unused
// fields are zero.
type Step struct {
	Op Op

	// OpSend / OpRecv: the peer communicator rank, payload and tag.
	// OpReduce / OpCopy: Bytes only.
	Peer  int
	Bytes int64
	Tag   int

	// OpSendRecv.
	SendTo    int
	RecvFrom  int
	SendBytes int64
	RecvBytes int64
	SendTag   int
	RecvTag   int

	// OpCompute.
	Seconds float64

	// OpPower.
	Power PowerAction

	// OpPhaseBegin / OpPhaseEnd (begin only; end closes the innermost).
	Phase string
}

// Contract is a plan's optional data-coverage declaration: the payload
// bytes each rank must send and receive according to the collective's
// semantics, computed independently of the schedule. Verify sums the
// schedule's transfers against it.
type Contract struct {
	SendBytes []int64
	RecvBytes []int64
}

// Plan is one communication schedule over a communicator of P ranks:
// Steps[r] is rank r's ordered step list. Tags are relative; the executor
// offsets them by one freshly reserved tag block when NeedsTagBlock is
// set (mirroring the imperative algorithms, which reserve one block per
// collective call).
type Plan struct {
	// Name identifies the builder that produced the plan.
	Name string
	// P is the communicator size.
	P int
	// Steps holds each rank's schedule.
	Steps [][]Step
	// NeedsTagBlock reports whether the schedule contains tagged
	// communication (the executor then consumes one tag block, keeping
	// tag-space accounting congruent with the imperative algorithms).
	NeedsTagBlock bool
	// NodeOf maps each communicator rank to its node id (used by Stats
	// to split intra-node from inter-node traffic).
	NodeOf []int
	// Contract, when non-nil, is verified against the schedule.
	Contract *Contract
}

// NewPlan returns an empty plan for P ranks.
func NewPlan(name string, p int) *Plan {
	return &Plan{Name: name, P: p, Steps: make([][]Step, p)}
}

// Rank returns an append-only builder handle for one rank's schedule.
func (p *Plan) Rank(r int) *RankSchedule { return &RankSchedule{p: p, r: r} }

// RankSchedule appends steps to one rank's schedule.
type RankSchedule struct {
	p *Plan
	r int
}

func (s *RankSchedule) add(st Step) *RankSchedule {
	s.p.Steps[s.r] = append(s.p.Steps[s.r], st)
	return s
}

// Send appends a blocking send.
func (s *RankSchedule) Send(peer int, bytes int64, tag int) *RankSchedule {
	s.p.NeedsTagBlock = true
	return s.add(Step{Op: OpSend, Peer: peer, Bytes: bytes, Tag: tag})
}

// Recv appends a blocking receive.
func (s *RankSchedule) Recv(peer int, bytes int64, tag int) *RankSchedule {
	s.p.NeedsTagBlock = true
	return s.add(Step{Op: OpRecv, Peer: peer, Bytes: bytes, Tag: tag})
}

// SendRecv appends a combined nonblocking exchange.
func (s *RankSchedule) SendRecv(sendTo int, sendBytes int64, sendTag int, recvFrom int, recvBytes int64, recvTag int) *RankSchedule {
	s.p.NeedsTagBlock = true
	return s.add(Step{
		Op:     OpSendRecv,
		SendTo: sendTo, SendBytes: sendBytes, SendTag: sendTag,
		RecvFrom: recvFrom, RecvBytes: recvBytes, RecvTag: recvTag,
	})
}

// Exchange appends a symmetric SendRecv with one peer: both directions
// carry the same tag, with per-direction sizes.
func (s *RankSchedule) Exchange(peer int, sendBytes, recvBytes int64, tag int) *RankSchedule {
	return s.SendRecv(peer, sendBytes, tag, peer, recvBytes, tag)
}

// Reduce appends a local streaming reduction of bytes.
func (s *RankSchedule) Reduce(bytes int64) *RankSchedule {
	return s.add(Step{Op: OpReduce, Bytes: bytes})
}

// Copy appends a local streaming copy of bytes.
func (s *RankSchedule) Copy(bytes int64) *RankSchedule {
	return s.add(Step{Op: OpCopy, Bytes: bytes})
}

// Compute appends secs of full-speed CPU work.
func (s *RankSchedule) Compute(secs float64) *RankSchedule {
	return s.add(Step{Op: OpCompute, Seconds: secs})
}

// FreqMin appends a DVFS transition to fmin.
func (s *RankSchedule) FreqMin() *RankSchedule {
	return s.add(Step{Op: OpPower, Power: PowerAction{Kind: PowerFreqMin}})
}

// FreqMax appends a DVFS transition back to fmax.
func (s *RankSchedule) FreqMax() *RankSchedule {
	return s.add(Step{Op: OpPower, Power: PowerAction{Kind: PowerFreqMax}})
}

// Throttle appends a T-state transition.
func (s *RankSchedule) Throttle(t power.TState) *RankSchedule {
	return s.add(Step{Op: OpPower, Power: PowerAction{Kind: PowerThrottle, TState: t}})
}

// PhaseBegin opens a named phase.
func (s *RankSchedule) PhaseBegin(name string) *RankSchedule {
	return s.add(Step{Op: OpPhaseBegin, Phase: name})
}

// PhaseEnd closes the innermost open phase.
func (s *RankSchedule) PhaseEnd() *RankSchedule {
	return s.add(Step{Op: OpPhaseEnd})
}

// Verify appends an ABFT verification of bytes of reduced data.
func (s *RankSchedule) Verify(bytes int64) *RankSchedule {
	return s.add(Step{Op: OpVerify, Bytes: bytes})
}

// Stats is the cost-relevant summary of one plan, used by the analytical
// model to price candidate schedules. Traffic is split by locality using
// the plan's NodeOf table (all traffic counts as inter-node when the
// table is absent).
type Stats struct {
	// P is the communicator size.
	P int
	// MaxSteps is the longest per-rank schedule.
	MaxSteps int
	// Per-rank maxima over the schedule (the critical rank dominates an
	// SPMD collective's latency).
	MaxInterMsgs   int
	MaxInterBytes  int64
	MaxIntraMsgs   int
	MaxIntraBytes  int64
	MaxCopyBytes   int64
	MaxRedBytes    int64
	MaxVerifyBytes int64
	MaxDVFS        int
	MaxThrottle    int
	// TotalInterBytes sums inter-node payload over all ranks (energy is
	// a whole-cluster quantity).
	TotalInterBytes int64
}

// ComputeStats summarizes the plan.
func (p *Plan) ComputeStats() Stats {
	st := Stats{P: p.P}
	sameNode := func(a, b int) bool {
		if p.NodeOf == nil || a >= len(p.NodeOf) || b >= len(p.NodeOf) {
			return false
		}
		return p.NodeOf[a] == p.NodeOf[b]
	}
	for r, steps := range p.Steps {
		var interMsgs, intraMsgs, dvfs, throttle int
		var interBytes, intraBytes, copyBytes, redBytes, verifyBytes int64
		acc := func(peer int, bytes int64) {
			if sameNode(r, peer) {
				intraMsgs++
				intraBytes += bytes
			} else {
				interMsgs++
				interBytes += bytes
			}
		}
		for _, s := range steps {
			switch s.Op {
			case OpSend:
				acc(s.Peer, s.Bytes)
			case OpRecv:
				// Receives ride the sender's accounting.
			case OpSendRecv:
				acc(s.SendTo, s.SendBytes)
			case OpCopy:
				copyBytes += s.Bytes
			case OpReduce:
				redBytes += s.Bytes
			case OpVerify:
				verifyBytes += s.Bytes
			case OpPower:
				switch s.Power.Kind {
				case PowerThrottle:
					throttle++
				default:
					dvfs++
				}
			}
		}
		if len(steps) > st.MaxSteps {
			st.MaxSteps = len(steps)
		}
		st.TotalInterBytes += interBytes
		if interMsgs > st.MaxInterMsgs {
			st.MaxInterMsgs = interMsgs
		}
		if interBytes > st.MaxInterBytes {
			st.MaxInterBytes = interBytes
		}
		if intraMsgs > st.MaxIntraMsgs {
			st.MaxIntraMsgs = intraMsgs
		}
		if intraBytes > st.MaxIntraBytes {
			st.MaxIntraBytes = intraBytes
		}
		if copyBytes > st.MaxCopyBytes {
			st.MaxCopyBytes = copyBytes
		}
		if redBytes > st.MaxRedBytes {
			st.MaxRedBytes = redBytes
		}
		if verifyBytes > st.MaxVerifyBytes {
			st.MaxVerifyBytes = verifyBytes
		}
		if dvfs > st.MaxDVFS {
			st.MaxDVFS = dvfs
		}
		if throttle > st.MaxThrottle {
			st.MaxThrottle = throttle
		}
	}
	return st
}
