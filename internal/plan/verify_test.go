package plan

import (
	"strings"
	"testing"

	"pacc/internal/power"
)

// goodExchange is a 2-rank plan that exercises every class of step and
// satisfies all invariants.
func goodExchange() *Plan {
	p := NewPlan("good", 2)
	for me := 0; me < 2; me++ {
		peer := 1 - me
		rs := p.Rank(me)
		rs.FreqMin()
		rs.PhaseBegin("network")
		rs.Copy(64)
		rs.Exchange(peer, 1024, 1024, 7)
		rs.Reduce(1024)
		rs.PhaseEnd()
		rs.FreqMax()
	}
	p.Contract = &Contract{SendBytes: []int64{1024, 1024}, RecvBytes: []int64{1024, 1024}}
	return p
}

func TestVerifyGoodPlan(t *testing.T) {
	if err := Verify(goodExchange()); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
}

func wantVerifyError(t *testing.T, p *Plan, substr string) {
	t.Helper()
	err := Verify(p)
	if err == nil {
		t.Fatalf("Verify accepted a plan that should fail with %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("Verify error %q does not mention %q", err, substr)
	}
}

func TestVerifyOrphanSend(t *testing.T) {
	p := NewPlan("orphan-send", 2)
	p.Rank(0).Send(1, 64, 3)
	wantVerifyError(t, p, "no matching recv")
}

func TestVerifyOrphanRecv(t *testing.T) {
	p := NewPlan("orphan-recv", 2)
	p.Rank(1).Recv(0, 64, 3)
	wantVerifyError(t, p, "no matching send")
}

func TestVerifyTagMismatch(t *testing.T) {
	p := NewPlan("tag-mismatch", 2)
	p.Rank(0).Send(1, 64, 3)
	p.Rank(1).Recv(0, 64, 4)
	// Both halves are orphans; either report is a correct diagnosis.
	if err := Verify(p); err == nil {
		t.Fatal("mismatched tags accepted")
	}
}

func TestVerifySizeMismatch(t *testing.T) {
	p := NewPlan("size-mismatch", 2)
	p.Rank(0).Send(1, 64, 3)
	p.Rank(1).Recv(0, 128, 3)
	wantVerifyError(t, p, "carries 64 bytes but the recv expects 128")
}

func TestVerifyDuplicateSend(t *testing.T) {
	p := NewPlan("dup-send", 2)
	p.Rank(0).Send(1, 64, 3).Send(1, 64, 3)
	p.Rank(1).Recv(0, 64, 3)
	wantVerifyError(t, p, "duplicate send")
}

func TestVerifyDeadlockCycle(t *testing.T) {
	// Two ranks both send first under rendezvous semantics: classic
	// head-to-head deadlock.
	p := NewPlan("deadlock", 2)
	p.Rank(0).Send(1, 64, 1).Recv(1, 64, 2)
	p.Rank(1).Send(0, 64, 2).Recv(0, 64, 1)
	wantVerifyError(t, p, "deadlock")
}

func TestVerifyDeadlockOrderInversion(t *testing.T) {
	// Rank 0 sends a then b; rank 1 receives b then a. Matching is 1:1
	// but the rendezvous order never meets.
	p := NewPlan("inversion", 2)
	p.Rank(0).Send(1, 64, 1).Send(1, 64, 2)
	p.Rank(1).Recv(0, 64, 2).Recv(0, 64, 1)
	wantVerifyError(t, p, "deadlock")
}

func TestVerifyRingReleasesTogether(t *testing.T) {
	// A 4-rank ring of simultaneous exchanges must verify: the batch
	// advancement rule releases the whole cycle in one round.
	const n = 4
	p := NewPlan("ring", n)
	for me := 0; me < n; me++ {
		right := (me + 1) % n
		left := (me - 1 + n) % n
		p.Rank(me).SendRecv(right, 256, 9, left, 256, 9)
	}
	if err := Verify(p); err != nil {
		t.Fatalf("ring plan rejected: %v", err)
	}
}

func TestVerifyContractViolation(t *testing.T) {
	p := goodExchange()
	p.Contract.RecvBytes[1] = 999
	wantVerifyError(t, p, "coverage")
}

func TestVerifyContractWrongLength(t *testing.T) {
	p := goodExchange()
	p.Contract.SendBytes = p.Contract.SendBytes[:1]
	wantVerifyError(t, p, "contract covers")
}

func TestVerifyPowerImbalanceDVFS(t *testing.T) {
	p := NewPlan("fmin-leak", 1)
	p.Rank(0).FreqMin()
	wantVerifyError(t, p, "ends scaled down")
}

func TestVerifyPowerImbalanceThrottle(t *testing.T) {
	p := NewPlan("throttle-leak", 1)
	p.Rank(0).Throttle(power.T7)
	wantVerifyError(t, p, "ends throttled")
}

func TestVerifyUnbalancedPhases(t *testing.T) {
	p := NewPlan("open-phase", 1)
	p.Rank(0).PhaseBegin("network")
	wantVerifyError(t, p, "left open")

	q := NewPlan("stray-end", 1)
	q.Rank(0).PhaseEnd()
	wantVerifyError(t, q, "phase-end without open phase")
}

func TestVerifyStructuralErrors(t *testing.T) {
	p := NewPlan("bad-peer", 2)
	p.Rank(0).Send(5, 64, 1)
	wantVerifyError(t, p, "outside [0,2)")

	q := NewPlan("bad-size", 2)
	q.Rank(0).Send(1, -1, 1)
	wantVerifyError(t, q, "negative size")

	r := NewPlan("short", 3)
	r.Steps = r.Steps[:2]
	wantVerifyError(t, r, "rank schedules")
}

func TestComputeStatsLocalitySplit(t *testing.T) {
	p := NewPlan("stats", 4)
	p.NodeOf = []int{0, 0, 1, 1}
	// Rank 0: one intra send (to 1), one inter send (to 2), a copy and a
	// reduce.
	p.Rank(0).Send(1, 100, 1).Send(2, 200, 2).Copy(50).Reduce(25)
	p.Rank(1).Recv(0, 100, 1)
	p.Rank(2).Recv(0, 200, 2)
	st := p.ComputeStats()
	if st.MaxIntraMsgs != 1 || st.MaxIntraBytes != 100 {
		t.Errorf("intra = (%d msgs, %d B), want (1, 100)", st.MaxIntraMsgs, st.MaxIntraBytes)
	}
	if st.MaxInterMsgs != 1 || st.MaxInterBytes != 200 {
		t.Errorf("inter = (%d msgs, %d B), want (1, 200)", st.MaxInterMsgs, st.MaxInterBytes)
	}
	if st.MaxCopyBytes != 50 || st.MaxRedBytes != 25 {
		t.Errorf("copy/reduce = (%d, %d), want (50, 25)", st.MaxCopyBytes, st.MaxRedBytes)
	}
	if st.TotalInterBytes != 200 {
		t.Errorf("TotalInterBytes = %d, want 200", st.TotalInterBytes)
	}
	// Without a node table, all traffic counts as inter-node.
	p.NodeOf = nil
	st = p.ComputeStats()
	if st.MaxInterMsgs != 2 || st.MaxIntraMsgs != 0 {
		t.Errorf("no NodeOf: inter=%d intra=%d, want 2/0", st.MaxInterMsgs, st.MaxIntraMsgs)
	}
}
