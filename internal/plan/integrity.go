package plan

import "fmt"

// DefaultVerifyBytesPerSec is the streaming rate charged by an OpVerify
// step when the execution environment does not set one: an ABFT checksum
// fold is a fused SIMD accumulate over already-resident data, so it runs
// near memory stream bandwidth rather than at the reduction rate (which
// pays for two operand streams and a writeback).
const DefaultVerifyBytesPerSec = 24e9

// IntegrityError reports a failed OpVerify step: an injected memory-
// corruption burst hit one of the rank's preceding reductions and the
// checksum fold caught it. Resilient runners treat it like a failed
// round (collective.IsIntegrity / pacc.IsIntegrity match it).
type IntegrityError struct {
	// Plan names the schedule that failed.
	Plan string
	// Rank is the communicator rank whose accumulator was corrupted.
	Rank int
	// Step is the index of the OpVerify step that detected it.
	Step int
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("abft checksum mismatch (corrupted accumulator on rank %d of plan %q)",
		e.Rank, e.Plan)
}
