package topology

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes != 8 || cfg.SocketsPerNode != 2 || cfg.CoresPerSocket != 4 {
		t.Fatalf("unexpected default config %+v", cfg)
	}
	if cfg.CoresPerNode() != 8 || cfg.TotalCores() != 64 {
		t.Fatalf("derived sizes wrong: %d per node, %d total", cfg.CoresPerNode(), cfg.TotalCores())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Nodes: 0, SocketsPerNode: 2, CoresPerSocket: 4},
		{Nodes: 2, SocketsPerNode: 0, CoresPerSocket: 4},
		{Nodes: 2, SocketsPerNode: 2, CoresPerSocket: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated but should not", cfg)
		}
		if _, err := NewCluster(cfg); err == nil {
			t.Errorf("NewCluster(%+v) succeeded but should not", cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

// TestNehalemInterleaving checks the paper's Figure 5 mapping: cores
// 0 2 4 6 on socket A, 1 3 5 7 on socket B.
func TestNehalemInterleaving(t *testing.T) {
	cl, err := NewCluster(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantA := []int{0, 2, 4, 6}
	wantB := []int{1, 3, 5, 7}
	gotA := cl.SocketCores(0, SocketA)
	gotB := cl.SocketCores(0, SocketB)
	if !equalInts(gotA, wantA) || !equalInts(gotB, wantB) {
		t.Fatalf("socket cores A=%v B=%v, want %v / %v", gotA, gotB, wantA, wantB)
	}
}

func TestContiguousNumbering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interleaved = false
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.SocketCores(0, SocketA); !equalInts(got, []int{0, 1, 2, 3}) {
		t.Fatalf("socket A cores = %v", got)
	}
	if got := cl.SocketCores(0, SocketB); !equalInts(got, []int{4, 5, 6, 7}) {
		t.Fatalf("socket B cores = %v", got)
	}
}

func TestCoreGlobalIndexing(t *testing.T) {
	cl, err := NewCluster(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for g, core := range cl.Cores() {
		if core.Global != g {
			t.Fatalf("core %d has Global=%d", g, core.Global)
		}
		if got := cl.Core(g); got != core {
			t.Fatalf("Core(%d) mismatch", g)
		}
		if got := cl.CoreAt(core.Node, core.Local); got != core {
			t.Fatalf("CoreAt(%d,%d) mismatch", core.Node, core.Local)
		}
	}
}

// Property: every core belongs to exactly one socket and socket
// populations are equal, for arbitrary shapes.
func TestSocketPartitionProperty(t *testing.T) {
	f := func(n, s, c uint8) bool {
		cfg := Config{
			Nodes:          int(n%4) + 1,
			SocketsPerNode: int(s%3) + 1,
			CoresPerSocket: int(c%5) + 1,
			Interleaved:    n%2 == 0,
		}
		cl, err := NewCluster(cfg)
		if err != nil {
			return false
		}
		for node := 0; node < cfg.Nodes; node++ {
			seen := map[int]bool{}
			for sock := 0; sock < cfg.SocketsPerNode; sock++ {
				cores := cl.SocketCores(node, SocketID(sock))
				if len(cores) != cfg.CoresPerSocket {
					return false
				}
				for _, c := range cores {
					if seen[c] {
						return false
					}
					seen[c] = true
				}
			}
			if len(seen) != cfg.CoresPerNode() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPlacementBunch64(t *testing.T) {
	cl, _ := NewCluster(DefaultConfig())
	p, err := NewPlacement(cl, 64, 8, BindBunch)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §V-C: local ranks 0 1 2 3 on socket A, 4 5 6 7 on socket B.
	for node := 0; node < 8; node++ {
		a := p.SocketGroup(node, SocketA)
		b := p.SocketGroup(node, SocketB)
		if len(a) != 4 || len(b) != 4 {
			t.Fatalf("node %d groups: A=%v B=%v", node, a, b)
		}
		base := node * 8
		for i := 0; i < 4; i++ {
			if a[i] != base+i {
				t.Fatalf("node %d group A = %v, want first four local ranks", node, a)
			}
			if b[i] != base+4+i {
				t.Fatalf("node %d group B = %v, want last four local ranks", node, b)
			}
		}
	}
}

func TestPlacementBunchCoreNumbers(t *testing.T) {
	cl, _ := NewCluster(DefaultConfig())
	p, _ := NewPlacement(cl, 8, 8, BindBunch)
	// Local rank 0→core 0, 1→core 2, 2→core 4, 3→core 6, 4→core 1, ...
	wantCores := []int{0, 2, 4, 6, 1, 3, 5, 7}
	for r, want := range wantCores {
		if got := p.CoreOf(r).Local; got != want {
			t.Fatalf("rank %d bound to core %d, want %d", r, got, want)
		}
	}
}

func TestPlacementScatter(t *testing.T) {
	cl, _ := NewCluster(DefaultConfig())
	p, err := NewPlacement(cl, 8, 8, BindScatter)
	if err != nil {
		t.Fatal(err)
	}
	// Scatter alternates sockets: ranks 0 2 4 6 on A, 1 3 5 7 on B.
	for r := 0; r < 8; r++ {
		want := SocketID(r % 2)
		if got := p.SocketOf(r); got != want {
			t.Fatalf("rank %d on socket %d, want %d", r, got, want)
		}
	}
}

func TestPlacementSequential(t *testing.T) {
	cl, _ := NewCluster(DefaultConfig())
	p, err := NewPlacement(cl, 8, 8, BindSequential)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if got := p.CoreOf(r).Local; got != r {
			t.Fatalf("sequential rank %d on core %d", r, got)
		}
	}
}

func TestPlacement4Way(t *testing.T) {
	cl, _ := NewCluster(DefaultConfig())
	// 32 procs, 4 per node across 8 nodes (the paper's 4-way config).
	p, err := NewPlacement(cl, 32, 4, BindBunch)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != 8 {
		t.Fatalf("NumNodes = %d, want 8", p.NumNodes())
	}
	// With bunch binding all 4 ranks of a node land on socket A.
	for node := 0; node < 8; node++ {
		if got := p.SocketGroup(node, SocketA); len(got) != 4 {
			t.Fatalf("node %d socket A group = %v", node, got)
		}
		if got := p.SocketGroup(node, SocketB); len(got) != 0 {
			t.Fatalf("node %d socket B group = %v, want empty", node, got)
		}
	}
	// 8-way: 32 procs on 4 nodes.
	p8, err := NewPlacement(cl, 32, 8, BindBunch)
	if err != nil {
		t.Fatal(err)
	}
	if p8.NumNodes() != 4 {
		t.Fatalf("8-way NumNodes = %d, want 4", p8.NumNodes())
	}
}

func TestPlacementErrors(t *testing.T) {
	cl, _ := NewCluster(DefaultConfig())
	cases := []struct {
		nprocs, ppn int
	}{
		{0, 4},   // zero procs
		{32, 0},  // zero ppn
		{33, 4},  // not a multiple
		{32, 16}, // ppn exceeds cores per node
		{128, 8}, // needs 16 nodes, have 8
		{-8, 4},  // negative
		{32, -4}, // negative ppn
	}
	for _, c := range cases {
		if _, err := NewPlacement(cl, c.nprocs, c.ppn, BindBunch); err == nil {
			t.Errorf("NewPlacement(%d,%d) succeeded, want error", c.nprocs, c.ppn)
		}
	}
}

func TestLeaders(t *testing.T) {
	cl, _ := NewCluster(DefaultConfig())
	p, _ := NewPlacement(cl, 64, 8, BindBunch)
	leaders := p.Leaders()
	want := []int{0, 8, 16, 24, 32, 40, 48, 56}
	if !equalInts(leaders, want) {
		t.Fatalf("leaders = %v, want %v", leaders, want)
	}
	for _, l := range leaders {
		if !p.IsLeader(l) {
			t.Errorf("rank %d should be leader", l)
		}
		if p.IsLeader(l + 1) {
			t.Errorf("rank %d should not be leader", l+1)
		}
	}
}

func TestRankOnCoreRoundTrip(t *testing.T) {
	cl, _ := NewCluster(DefaultConfig())
	p, _ := NewPlacement(cl, 64, 8, BindBunch)
	for r := 0; r < 64; r++ {
		core := p.CoreOf(r)
		if back := p.RankOnCore(core.Global); back != r {
			t.Fatalf("rank %d -> core %d -> rank %d", r, core.Global, back)
		}
	}
	// An unused core (none here since fully packed) — use a 4-way layout.
	p4, _ := NewPlacement(cl, 32, 4, BindBunch)
	unused := 0
	for g := 0; g < 64; g++ {
		if p4.RankOnCore(g) == -1 {
			unused++
		}
	}
	if unused != 32 {
		t.Fatalf("4-way: %d unused cores, want 32", unused)
	}
}

// Property: placements are injective — no two ranks share a core.
func TestPlacementInjectiveProperty(t *testing.T) {
	cl, _ := NewCluster(DefaultConfig())
	f := func(ppnSel, polSel uint8) bool {
		ppns := []int{1, 2, 4, 8}
		ppn := ppns[int(ppnSel)%len(ppns)]
		pol := BindPolicy(int(polSel) % 3)
		nprocs := ppn * 8
		p, err := NewPlacement(cl, nprocs, ppn, pol)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for r := 0; r < nprocs; r++ {
			g := p.CoreOf(r).Global
			if seen[g] {
				return false
			}
			seen[g] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSameNode(t *testing.T) {
	cl, _ := NewCluster(DefaultConfig())
	p, _ := NewPlacement(cl, 64, 8, BindBunch)
	if !p.SameNode(0, 7) {
		t.Error("ranks 0 and 7 share node 0")
	}
	if p.SameNode(7, 8) {
		t.Error("ranks 7 and 8 are on different nodes")
	}
}

func TestBindPolicyString(t *testing.T) {
	if BindBunch.String() != "bunch" || BindScatter.String() != "scatter" ||
		BindSequential.String() != "sequential" {
		t.Error("BindPolicy String() values wrong")
	}
	if BindPolicy(99).String() == "" {
		t.Error("unknown policy should still format")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
