package topology

import "fmt"

// BindPolicy selects how consecutive node-local ranks are bound to cores.
type BindPolicy int

const (
	// BindBunch fills one socket before the next: local ranks 0..k-1 go
	// to socket A, k..2k-1 to socket B. This is MVAPICH2's default and
	// the mapping the paper's power-aware algorithms assume (§V-C).
	BindBunch BindPolicy = iota
	// BindScatter round-robins ranks across sockets.
	BindScatter
	// BindSequential binds local rank i to node-local core i regardless
	// of sockets (useful to demonstrate the §V-C caveat: the power-aware
	// algorithms must adapt if the mapping changes).
	BindSequential
)

func (b BindPolicy) String() string {
	switch b {
	case BindBunch:
		return "bunch"
	case BindScatter:
		return "scatter"
	case BindSequential:
		return "sequential"
	default:
		return fmt.Sprintf("BindPolicy(%d)", int(b))
	}
}

// Placement maps global ranks onto cores of a cluster. Ranks are assigned
// to nodes in blocks ("block" mapping, the common mpirun default): ranks
// 0..ppn-1 on node 0, and so on.
type Placement struct {
	cluster *Cluster
	policy  BindPolicy
	ppn     int
	coreOf  []Core // indexed by rank
	rankOf  map[int]int
}

// NewPlacement binds nprocs ranks, ppn per node, using the given policy.
// nprocs must be an exact multiple of ppn, fit within the cluster, and
// ppn must not exceed the cores of one node.
func NewPlacement(cl *Cluster, nprocs, ppn int, policy BindPolicy) (*Placement, error) {
	if nprocs <= 0 || ppn <= 0 {
		return nil, fmt.Errorf("topology: nprocs=%d ppn=%d must be positive", nprocs, ppn)
	}
	if nprocs%ppn != 0 {
		return nil, fmt.Errorf("topology: nprocs=%d not a multiple of ppn=%d", nprocs, ppn)
	}
	if ppn > cl.cfg.CoresPerNode() {
		return nil, fmt.Errorf("topology: ppn=%d exceeds %d cores per node", ppn, cl.cfg.CoresPerNode())
	}
	if nodes := nprocs / ppn; nodes > cl.cfg.Nodes {
		return nil, fmt.Errorf("topology: need %d nodes, cluster has %d", nodes, cl.cfg.Nodes)
	}
	p := &Placement{
		cluster: cl,
		policy:  policy,
		ppn:     ppn,
		coreOf:  make([]Core, nprocs),
		rankOf:  make(map[int]int, nprocs),
	}
	for rank := 0; rank < nprocs; rank++ {
		node := rank / ppn
		localRank := rank % ppn
		local, err := bindLocal(cl.cfg, localRank, policy)
		if err != nil {
			return nil, err
		}
		core := cl.CoreAt(node, local)
		p.coreOf[rank] = core
		p.rankOf[core.Global] = rank
	}
	return p, nil
}

// bindLocal returns the node-local core number for node-local rank lr.
func bindLocal(cfg Config, lr int, policy BindPolicy) (int, error) {
	switch policy {
	case BindBunch:
		// Fill socket 0's cores in OnSock order, then socket 1, ...
		sock := lr / cfg.CoresPerSocket
		onSock := lr % cfg.CoresPerSocket
		if cfg.Interleaved {
			return onSock*cfg.SocketsPerNode + sock, nil
		}
		return sock*cfg.CoresPerSocket + onSock, nil
	case BindScatter:
		sock := lr % cfg.SocketsPerNode
		onSock := lr / cfg.SocketsPerNode
		if cfg.Interleaved {
			return onSock*cfg.SocketsPerNode + sock, nil
		}
		return sock*cfg.CoresPerSocket + onSock, nil
	case BindSequential:
		return lr, nil
	default:
		return 0, fmt.Errorf("topology: unknown bind policy %v", policy)
	}
}

// Cluster returns the underlying cluster.
func (p *Placement) Cluster() *Cluster { return p.cluster }

// NumRanks returns the number of bound ranks.
func (p *Placement) NumRanks() int { return len(p.coreOf) }

// PPN returns ranks per node.
func (p *Placement) PPN() int { return p.ppn }

// NumNodes returns the number of nodes actually occupied.
func (p *Placement) NumNodes() int { return len(p.coreOf) / p.ppn }

// Policy returns the binding policy.
func (p *Placement) Policy() BindPolicy { return p.policy }

// CoreOf returns the core a rank is bound to.
func (p *Placement) CoreOf(rank int) Core { return p.coreOf[rank] }

// NodeOf returns the node index a rank runs on.
func (p *Placement) NodeOf(rank int) int { return p.coreOf[rank].Node }

// SocketOf returns the socket a rank's core sits on.
func (p *Placement) SocketOf(rank int) SocketID { return p.coreOf[rank].Socket }

// RankOnCore returns the rank bound to the given global core, or -1.
func (p *Placement) RankOnCore(globalCore int) int {
	if r, ok := p.rankOf[globalCore]; ok {
		return r
	}
	return -1
}

// SameNode reports whether two ranks share a compute node.
func (p *Placement) SameNode(a, b int) bool { return p.NodeOf(a) == p.NodeOf(b) }

// RanksOnNode lists the ranks bound to the given node, ascending.
func (p *Placement) RanksOnNode(node int) []int {
	out := make([]int, 0, p.ppn)
	for r := node * p.ppn; r < (node+1)*p.ppn && r < len(p.coreOf); r++ {
		out = append(out, r)
	}
	return out
}

// Leader returns the node-leader rank of the given node: the smallest rank
// bound there (MVAPICH2 convention).
func (p *Placement) Leader(node int) int { return node * p.ppn }

// IsLeader reports whether rank is its node's leader.
func (p *Placement) IsLeader(rank int) bool { return rank%p.ppn == 0 }

// Leaders lists the node-leader ranks in node order.
func (p *Placement) Leaders() []int {
	out := make([]int, p.NumNodes())
	for n := range out {
		out[n] = p.Leader(n)
	}
	return out
}

// SocketGroup lists the ranks of one node bound to the given socket,
// ascending. This is the paper's process group A (SocketA) / B (SocketB).
func (p *Placement) SocketGroup(node int, sock SocketID) []int {
	var out []int
	for _, r := range p.RanksOnNode(node) {
		if p.SocketOf(r) == sock {
			out = append(out, r)
		}
	}
	return out
}

// GroupOf returns which socket group (A/B) the rank belongs to.
func (p *Placement) GroupOf(rank int) SocketID { return p.SocketOf(rank) }
