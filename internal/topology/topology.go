// Package topology describes the hardware layout of a simulated cluster —
// nodes, CPU sockets, cores — and the binding of MPI-style processes onto
// cores.
//
// The default layout mirrors the testbed of Kandalla et al. (ICPP 2010):
// eight nodes of two Intel "Nehalem" sockets with four cores each, where
// the node-local core numbering interleaves sockets (cores 0 2 4 6 on
// socket A and 1 3 5 7 on socket B). The power-aware collective algorithms
// depend on that mapping, so it is modeled explicitly.
package topology

import "fmt"

// SocketID distinguishes the sockets within one node. The paper's
// algorithms only ever split a node in two, but the model supports any
// socket count.
type SocketID int

// Conventional names for the two sockets of the paper's testbed.
const (
	SocketA SocketID = 0
	SocketB SocketID = 1
)

// Config describes the shape of a cluster.
type Config struct {
	Nodes          int // number of compute nodes
	SocketsPerNode int // CPU sockets per node
	CoresPerSocket int // cores per socket
	// Interleaved selects Nehalem-style node-local core numbering in
	// which consecutive core numbers alternate between sockets
	// (0 2 4 .. on socket 0). When false, numbering is contiguous per
	// socket (0..k-1 on socket 0, k..2k-1 on socket 1, ...).
	Interleaved bool
}

// DefaultConfig returns the paper's 8-node dual-socket quad-core testbed.
func DefaultConfig() Config {
	return Config{Nodes: 8, SocketsPerNode: 2, CoresPerSocket: 4, Interleaved: true}
}

// Validate reports an error for non-positive dimensions.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("topology: Nodes must be positive, got %d", c.Nodes)
	}
	if c.SocketsPerNode <= 0 {
		return fmt.Errorf("topology: SocketsPerNode must be positive, got %d", c.SocketsPerNode)
	}
	if c.CoresPerSocket <= 0 {
		return fmt.Errorf("topology: CoresPerSocket must be positive, got %d", c.CoresPerSocket)
	}
	return nil
}

// CoresPerNode is the number of cores in each node.
func (c Config) CoresPerNode() int { return c.SocketsPerNode * c.CoresPerSocket }

// TotalCores is the number of cores in the cluster.
func (c Config) TotalCores() int { return c.Nodes * c.CoresPerNode() }

// Core identifies one physical core.
type Core struct {
	Node   int      // node index, 0-based
	Local  int      // node-local core number (what the OS would report)
	Socket SocketID // socket the core sits on
	OnSock int      // index of the core within its socket
	Global int      // cluster-wide core index: Node*CoresPerNode + Local
}

func (c Core) String() string {
	return fmt.Sprintf("node%d/core%d(sock%d)", c.Node, c.Local, c.Socket)
}

// Cluster is an instantiated topology with all cores enumerated.
type Cluster struct {
	cfg   Config
	cores []Core // indexed by global core id
}

// NewCluster enumerates the cores of a validated config.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cl := &Cluster{cfg: cfg}
	cpn := cfg.CoresPerNode()
	cl.cores = make([]Core, 0, cfg.TotalCores())
	for n := 0; n < cfg.Nodes; n++ {
		for local := 0; local < cpn; local++ {
			var sock SocketID
			var onSock int
			if cfg.Interleaved {
				sock = SocketID(local % cfg.SocketsPerNode)
				onSock = local / cfg.SocketsPerNode
			} else {
				sock = SocketID(local / cfg.CoresPerSocket)
				onSock = local % cfg.CoresPerSocket
			}
			cl.cores = append(cl.cores, Core{
				Node:   n,
				Local:  local,
				Socket: sock,
				OnSock: onSock,
				Global: n*cpn + local,
			})
		}
	}
	return cl, nil
}

// Config returns the cluster's configuration.
func (cl *Cluster) Config() Config { return cl.cfg }

// NumNodes returns the node count.
func (cl *Cluster) NumNodes() int { return cl.cfg.Nodes }

// Cores returns all cores in global order. The slice must not be modified.
func (cl *Cluster) Cores() []Core { return cl.cores }

// Core returns the core with the given global index.
func (cl *Cluster) Core(global int) Core { return cl.cores[global] }

// CoreAt returns the core with node-local number local on node.
func (cl *Cluster) CoreAt(node, local int) Core {
	return cl.cores[node*cl.cfg.CoresPerNode()+local]
}

// SocketCores returns the node-local core numbers on the given socket of a
// node, in OnSock order.
func (cl *Cluster) SocketCores(node int, sock SocketID) []int {
	var out []int
	base := node * cl.cfg.CoresPerNode()
	for i := 0; i < cl.cfg.CoresPerNode(); i++ {
		if cl.cores[base+i].Socket == sock {
			out = append(out, cl.cores[base+i].Local)
		}
	}
	return out
}
