// Package prof wires the standard -cpuprofile / -memprofile escape
// hatches into the command-line tools, so a slow or allocation-heavy
// sweep can be inspected with `go tool pprof` without rebuilding
// anything.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles. cpuPath, when non-empty, receives
// a CPU profile covering everything up to the returned stop function;
// memPath receives a heap profile captured (after a final GC, so the
// numbers reflect live objects) when stop runs. Either path may be
// empty. The returned stop is never nil and is safe to call exactly
// once; callers should defer it around the whole run.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return func() {}, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return func() {}, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
