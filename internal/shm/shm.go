// Package shm models the intra-node shared-memory channel used by
// multi-core-aware collectives: processes exchange data by copying through
// an explicitly created shared-memory region (§II-D of the paper).
//
// A copy is CPU-driven, so its cost scales inversely with the copying
// core's effective speed — this is how DVFS and CPU throttling slow the
// intra-node phases of collectives in the simulation.
package shm

import (
	"fmt"

	"pacc/internal/simtime"
)

// Config calibrates the shared-memory channel.
type Config struct {
	// CopyBytesPerSec is the single-core memcpy bandwidth through the
	// shared region at full speed (one side of the double copy).
	CopyBytesPerSec float64
	// Startup is the fixed per-operation cost (queue management, flag
	// updates) at full speed.
	Startup simtime.Duration
}

// DefaultConfig returns Nehalem-era calibration: ~4 GB/s single-core copy
// bandwidth and sub-microsecond startup.
func DefaultConfig() Config {
	return Config{
		CopyBytesPerSec: 4.0e9,
		Startup:         simtime.Micros(0.4),
	}
}

// Validate rejects non-positive bandwidth or negative startup.
func (c Config) Validate() error {
	if c.CopyBytesPerSec <= 0 {
		return fmt.Errorf("shm: CopyBytesPerSec must be positive, got %g", c.CopyBytesPerSec)
	}
	if c.Startup < 0 {
		return fmt.Errorf("shm: negative Startup")
	}
	return nil
}

// CopyTime returns the busy time for one core at the given effective
// speed (1.0 = unthrottled fmax) to copy bytes through the region.
func (c Config) CopyTime(bytes int64, speed float64) simtime.Duration {
	if bytes < 0 {
		panic(fmt.Sprintf("shm: negative copy size %d", bytes))
	}
	if speed <= 0 {
		speed = 1e-3
	}
	secs := c.Startup.Seconds()/speed + float64(bytes)/(c.CopyBytesPerSec*speed)
	return simtime.DurationOf(secs)
}
