package shm

import (
	"testing"
	"testing/quick"

	"pacc/internal/simtime"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (Config{CopyBytesPerSec: 0}).Validate(); err == nil {
		t.Error("zero bandwidth validated")
	}
	if err := (Config{CopyBytesPerSec: 1e9, Startup: -1}).Validate(); err == nil {
		t.Error("negative startup validated")
	}
}

func TestCopyTimeFullSpeed(t *testing.T) {
	c := DefaultConfig()
	got := c.CopyTime(4_000_000, 1.0)
	want := c.Startup + simtime.DurationOf(4e6/c.CopyBytesPerSec)
	if got != want {
		t.Fatalf("CopyTime = %v, want %v", got, want)
	}
}

func TestCopyTimeScalesWithSpeed(t *testing.T) {
	c := DefaultConfig()
	full := c.CopyTime(1<<20, 1.0)
	half := c.CopyTime(1<<20, 0.5)
	ratio := float64(half) / float64(full)
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("half-speed copy ratio = %v, want 2.0", ratio)
	}
}

func TestCopyTimeZeroBytes(t *testing.T) {
	c := DefaultConfig()
	if got := c.CopyTime(0, 1.0); got != c.Startup {
		t.Fatalf("zero-byte copy = %v, want startup %v", got, c.Startup)
	}
}

func TestCopyTimeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size did not panic")
		}
	}()
	DefaultConfig().CopyTime(-1, 1.0)
}

func TestCopyTimeSpeedFloor(t *testing.T) {
	c := DefaultConfig()
	if got := c.CopyTime(1024, 0); got <= 0 {
		t.Fatalf("zero speed should still give finite positive time, got %v", got)
	}
	if got := c.CopyTime(1024, -1); got <= 0 {
		t.Fatalf("negative speed should be floored, got %v", got)
	}
}

// Property: copy time is monotone in bytes and antitone in speed.
func TestCopyTimeMonotonicityProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(b1, b2 uint32, sSel uint8) bool {
		s := 0.1 + 0.9*float64(sSel)/255
		lo, hi := int64(b1), int64(b2)
		if lo > hi {
			lo, hi = hi, lo
		}
		if c.CopyTime(lo, s) > c.CopyTime(hi, s) {
			return false
		}
		return c.CopyTime(hi, s) >= c.CopyTime(hi, 1.0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
