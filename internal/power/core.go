package power

import (
	"fmt"
	"sort"

	"pacc/internal/simtime"
)

// Core tracks the power state and accumulated energy of one physical core.
// State changes accrue the energy of the closed interval at the old state,
// so EnergyJoules is exact for piecewise-constant power.
type Core struct {
	model   *Model
	eng     *simtime.Engine
	id      int
	freqGHz float64
	tstate  TState
	busy    bool

	lastUpdate simtime.Time
	energyJ    float64
	// resid accumulates time per distinct (P-state, T-state, busy) tuple
	// — the per-core residency counters behind the governor's and the
	// analytics engine's energy attribution.
	resid    map[StateKey]simtime.Duration
	ledger   *Ledger
	recorder func(StateChange)
	// transitionDelay, when installed, returns extra settle time for the
	// next P-state (dvfs=true) or T-state transition on this core. Fault
	// injection uses it to model slow or stuck transitions; the MPI layer
	// pays the returned duration in the transitioning rank's timeline.
	transitionDelay func(dvfs bool) simtime.Duration
}

// StateChange describes one power-state transition of a core, delivered
// to an attached recorder (see SetRecorder).
type StateChange struct {
	At       simtime.Time
	FreqGHz  float64
	Throttle TState
	Busy     bool
}

// StateKey identifies one distinct power state of a core: the P-state
// frequency, the T-state, and whether the core was executing. It keys the
// per-core residency counters.
type StateKey struct {
	FreqGHz  float64
	Throttle TState
	Busy     bool
}

// Label renders the state the way the trace recorder names core spans,
// e.g. "busy 2.4GHz T0".
func (k StateKey) Label() string {
	act := "idle"
	if k.Busy {
		act = "busy"
	}
	return fmt.Sprintf("%s %.1fGHz %v", act, k.FreqGHz, k.Throttle)
}

// Residency is one entry of a core's state-residency report.
type Residency struct {
	State StateKey
	Time  simtime.Duration
}

// NewCore returns a core at fmax, T0, idle, with zero accumulated energy.
func NewCore(eng *simtime.Engine, m *Model, id int) *Core {
	return &Core{
		model:      m,
		eng:        eng,
		id:         id,
		freqGHz:    m.FMaxGHz,
		tstate:     T0,
		busy:       false,
		lastUpdate: eng.Now(),
	}
}

// ID returns the core's identifier (the global core index).
func (c *Core) ID() int { return c.id }

// Model returns the shared power model.
func (c *Core) Model() *Model { return c.model }

// FreqGHz returns the current P-state frequency.
func (c *Core) FreqGHz() float64 { return c.freqGHz }

// Throttle returns the current T-state.
func (c *Core) Throttle() TState { return c.tstate }

// Busy reports whether the core is executing (or spinning).
func (c *Core) Busy() bool { return c.busy }

// Watts returns the core's instantaneous power draw.
func (c *Core) Watts() float64 {
	return c.model.CoreWatts(c.freqGHz, c.tstate, c.busy)
}

// Speed returns the core's effective relative execution speed in (0, 1].
func (c *Core) Speed() float64 {
	s := c.model.Speed(c.freqGHz, c.tstate)
	if s <= 0 {
		// A fully-stopped core would deadlock the simulation; floor at
		// the T7 duty of the minimum frequency.
		return 1e-3
	}
	return s
}

// CopySpeed returns the core's effective speed for streaming memory work.
func (c *Core) CopySpeed() float64 {
	s := c.model.CopySpeed(c.freqGHz, c.tstate)
	if s <= 0 {
		return 1e-3
	}
	return s
}

// stateKey returns the core's current residency key.
func (c *Core) stateKey() StateKey {
	return StateKey{FreqGHz: c.freqGHz, Throttle: c.tstate, Busy: c.busy}
}

// accrue integrates power since the last state change into the energy
// counter, the residency counters, and the ledger (if attached).
func (c *Core) accrue() {
	now := c.eng.Now()
	d := now.Sub(c.lastUpdate)
	if d > 0 {
		dt := d.Seconds()
		j := c.Watts() * dt
		c.energyJ += j
		if c.resid == nil {
			c.resid = make(map[StateKey]simtime.Duration)
		}
		c.resid[c.stateKey()] += d
		if c.ledger != nil {
			c.ledger.add(j, dt, c.stateKey())
		}
	}
	c.lastUpdate = now
}

// Residencies returns the time this core has spent in each distinct
// (P-state, T-state, busy) tuple up to the current virtual time, sorted
// by frequency, then throttle level, then idle before busy — a
// deterministic order for export. The total over all entries equals the
// elapsed time since the core was created.
func (c *Core) Residencies() []Residency {
	c.accrue()
	out := make([]Residency, 0, len(c.resid))
	for k, d := range c.resid {
		out = append(out, Residency{State: k, Time: d})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].State, out[j].State
		if a.FreqGHz != b.FreqGHz {
			return a.FreqGHz < b.FreqGHz
		}
		if a.Throttle != b.Throttle {
			return a.Throttle < b.Throttle
		}
		return !a.Busy && b.Busy
	})
	return out
}

// SetFreq changes the P-state. The transition itself is instantaneous in
// the power timeline; callers model the Odvfs latency by sleeping.
func (c *Core) SetFreq(fGHz float64) {
	f := c.model.ClampFreq(fGHz)
	if f == c.freqGHz {
		return
	}
	c.accrue()
	c.freqGHz = f
	c.record()
}

// SetThrottle changes the T-state. Invalid states panic: the simulated
// algorithms must only use defined levels.
func (c *Core) SetThrottle(t TState) {
	if !t.Valid() {
		panic(fmt.Sprintf("power: invalid throttle state %d", int(t)))
	}
	if t == c.tstate {
		return
	}
	c.accrue()
	c.tstate = t
	c.record()
}

// SetBusy marks the core executing (true) or yielded/idle (false).
func (c *Core) SetBusy(b bool) {
	if b == c.busy {
		return
	}
	c.accrue()
	c.busy = b
	c.record()
}

// EnergyJoules returns the energy consumed up to the current virtual time.
func (c *Core) EnergyJoules() float64 {
	c.accrue()
	return c.energyJ
}

// ResetEnergy zeroes the accumulated energy (the power state is kept).
func (c *Core) ResetEnergy() {
	c.accrue()
	c.energyJ = 0
}

// AttachLedger directs subsequent accruals to the given ledger (in
// addition to the core's own counter). Pass nil to detach.
func (c *Core) AttachLedger(l *Ledger) {
	c.accrue()
	c.ledger = l
}

// SetRecorder registers a callback invoked after every state change (and
// immediately with the current state). Pass nil to detach. Used by the
// trace package to export core timelines.
func (c *Core) SetRecorder(fn func(StateChange)) {
	c.recorder = fn
	if fn != nil {
		fn(c.stateChange())
	}
}

// SetTransitionDelay installs a hook consulted before every P/T-state
// transition; it returns extra hardware settle time beyond the model's
// ODVFS/OThrottle constants. Pass nil to detach.
func (c *Core) SetTransitionDelay(fn func(dvfs bool) simtime.Duration) {
	c.transitionDelay = fn
}

// TransitionDelay returns the extra settle time of the next transition of
// the given kind (0 without a hook).
func (c *Core) TransitionDelay(dvfs bool) simtime.Duration {
	if c.transitionDelay == nil {
		return 0
	}
	return c.transitionDelay(dvfs)
}

func (c *Core) stateChange() StateChange {
	return StateChange{At: c.eng.Now(), FreqGHz: c.freqGHz, Throttle: c.tstate, Busy: c.busy}
}

func (c *Core) record() {
	if c.recorder != nil {
		c.recorder(c.stateChange())
	}
}
