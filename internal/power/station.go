package power

import (
	"sort"

	"pacc/internal/simtime"
)

// Station aggregates the cores of a cluster into one measurable power
// domain, the way the paper's clamp meter saw the whole testbed.
type Station struct {
	eng   *simtime.Engine
	model *Model
	cores []*Core
	nodes int
}

// NewStation creates per-core trackers for a cluster of nodes×coresPerNode
// cores.
func NewStation(eng *simtime.Engine, m *Model, nodes, coresPerNode int) *Station {
	s := &Station{eng: eng, model: m, nodes: nodes}
	total := nodes * coresPerNode
	s.cores = make([]*Core, total)
	for i := range s.cores {
		s.cores[i] = NewCore(eng, m, i)
	}
	return s
}

// Core returns the tracker for the given global core index.
func (s *Station) Core(global int) *Core { return s.cores[global] }

// Cores returns all core trackers in global order.
func (s *Station) Cores() []*Core { return s.cores }

// NumNodes returns the node count of the domain.
func (s *Station) NumNodes() int { return s.nodes }

// Now returns the current virtual time of the station's engine.
func (s *Station) Now() simtime.Time { return s.eng.Now() }

// Watts returns the instantaneous draw of the whole cluster: all cores
// plus the per-node base power.
func (s *Station) Watts() float64 {
	w := float64(s.nodes) * s.model.NodeBaseWatts
	for _, c := range s.cores {
		w += c.Watts()
	}
	return w
}

// EnergyJoules returns cluster energy consumed up to now: the integral of
// core power plus node base power over elapsed time.
func (s *Station) EnergyJoules() float64 {
	j := float64(s.nodes) * s.model.NodeBaseWatts * s.eng.Now().Seconds()
	for _, c := range s.cores {
		j += c.EnergyJoules()
	}
	return j
}

// ResetEnergy zeroes all core counters. Node base energy is derived from
// the clock, so callers measuring intervals should subtract readings
// instead; ResetEnergy is for reusing a station across experiments.
func (s *Station) ResetEnergy() {
	for _, c := range s.cores {
		c.ResetEnergy()
	}
}

// AttachLedger attaches l to every core.
func (s *Station) AttachLedger(l *Ledger) {
	for _, c := range s.cores {
		c.AttachLedger(l)
	}
}

// Sample is one power-meter reading.
type Sample struct {
	At    simtime.Time
	Watts float64
}

// Meter samples a station's aggregate power on a fixed virtual-time grid,
// standing in for the paper's MASTECH MS2205 clamp meter (0.5 s interval).
type Meter struct {
	station  *Station
	interval simtime.Duration
	samples  []Sample
	running  bool
	sources  []func() float64
}

// AddSource includes an extra instantaneous-watts contribution (e.g. the
// network fabric's port power) in every subsequent sample.
func (m *Meter) AddSource(fn func() float64) {
	m.sources = append(m.sources, fn)
}

// NewMeter creates a meter with the given sampling interval.
func NewMeter(s *Station, interval simtime.Duration) *Meter {
	if interval <= 0 {
		interval = 500 * simtime.Millisecond
	}
	return &Meter{station: s, interval: interval}
}

// Start begins sampling at the current time. Each tick reads the station
// and schedules the next tick, so sampling continues as long as the
// simulation generates events; Stop ends it.
func (m *Meter) Start() {
	if m.running {
		return
	}
	m.running = true
	var tick func()
	tick = func() {
		if !m.running {
			return
		}
		w := m.station.Watts()
		for _, src := range m.sources {
			w += src()
		}
		m.samples = append(m.samples, Sample{At: m.station.eng.Now(), Watts: w})
		m.station.eng.After(m.interval, tick)
	}
	m.station.eng.At(m.station.eng.Now(), tick)
}

// Stop ends sampling after the current tick.
func (m *Meter) Stop() { m.running = false }

// Samples returns the collected readings in time order.
func (m *Meter) Samples() []Sample { return m.samples }

// MeanWatts returns the average of all samples (0 if none).
func (m *Meter) MeanWatts() float64 {
	if len(m.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range m.samples {
		sum += s.Watts
	}
	return sum / float64(len(m.samples))
}

// Ledger attributes energy (and busy time) to named phases, so workloads
// can report how much of their energy went to, say, MPI_Alltoall. Each
// phase's energy is additionally split by the power state it was drawn
// in (JoulesByState), the phase × power-state attribution the analytics
// layer aggregates.
type Ledger struct {
	current string
	joules  map[string]float64
	seconds map[string]float64
	byState map[string]map[StateKey]float64
}

// NewLedger returns a ledger with the phase label set to "init".
func NewLedger() *Ledger {
	return &Ledger{
		current: "init",
		joules:  make(map[string]float64),
		seconds: make(map[string]float64),
		byState: make(map[string]map[StateKey]float64),
	}
}

// SetPhase labels all subsequent accruals. Cores flush their pending
// interval on their next state change, so call SetPhase only at points
// where the cores' states are also changing (phase boundaries), or accept
// attribution at state-change granularity.
func (l *Ledger) SetPhase(name string) { l.current = name }

// Phase returns the current label.
func (l *Ledger) Phase() string { return l.current }

func (l *Ledger) add(j, secs float64, st StateKey) {
	l.joules[l.current] += j
	l.seconds[l.current] += secs
	m := l.byState[l.current]
	if m == nil {
		m = make(map[StateKey]float64)
		l.byState[l.current] = m
	}
	m[st] += j
}

// Joules returns the energy attributed to a phase.
func (l *Ledger) Joules(phase string) float64 { return l.joules[phase] }

// JoulesByState returns a phase's energy split by the power state it was
// drawn in, as (state, joules) pairs sorted like Core.Residencies. The
// pairs sum to Joules(phase).
func (l *Ledger) JoulesByState(phase string) []StateJoules {
	m := l.byState[phase]
	out := make([]StateJoules, 0, len(m))
	for k, j := range m {
		out = append(out, StateJoules{State: k, Joules: j})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].State, out[j].State
		if a.FreqGHz != b.FreqGHz {
			return a.FreqGHz < b.FreqGHz
		}
		if a.Throttle != b.Throttle {
			return a.Throttle < b.Throttle
		}
		return !a.Busy && b.Busy
	})
	return out
}

// StateJoules is one entry of a phase's per-power-state energy split.
type StateJoules struct {
	State  StateKey
	Joules float64
}

// CoreSeconds returns the total core-time attributed to a phase.
func (l *Ledger) CoreSeconds(phase string) float64 { return l.seconds[phase] }

// Phases returns all labels seen, sorted.
func (l *Ledger) Phases() []string {
	out := make([]string, 0, len(l.joules))
	for k := range l.joules {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TotalJoules sums energy across phases.
func (l *Ledger) TotalJoules() float64 {
	sum := 0.0
	for _, j := range l.joules {
		sum += j
	}
	return sum
}
