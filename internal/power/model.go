// Package power models per-core CPU power management — DVFS P-states and
// CPU-throttling T-states — and integrates energy over virtual time.
//
// The model follows Section VI-B of Kandalla et al. (ICPP 2010): an
// unthrottled busy core at frequency f draws p_core(f); a core throttled to
// T-state Tj draws c_j * p_core(f) where c_j in [0,1] is the duty cycle of
// the throttle level (c_0 = 1, c_7 = 0.12 on Nehalem). Energy is the
// piecewise-constant integral of power across state changes.
package power

import (
	"fmt"

	"pacc/internal/simtime"
)

// NumTStates is the number of throttling levels (T0..T7 on Nehalem).
const NumTStates = 8

// TState is a CPU throttling level. T0 is fully active; T7 leaves the CPU
// only ~12% active.
type TState int

// Throttle level names matching the paper.
const (
	T0 TState = iota
	T1
	T2
	T3
	T4
	T5
	T6
	T7
)

func (t TState) String() string { return fmt.Sprintf("T%d", int(t)) }

// Valid reports whether t is a defined throttle level.
func (t TState) Valid() bool { return t >= 0 && t < NumTStates }

// Model holds the calibration constants of the power model. All cores of a
// simulation share one Model.
type Model struct {
	// FMaxGHz and FMinGHz bound the DVFS range (P-states). The paper's
	// Nehalem parts run 1.6–2.4 GHz.
	FMaxGHz float64
	FMinGHz float64
	// VoltAtFMax / VoltAtFMin define a linear V(f) used by the dynamic
	// power term P_dyn ∝ f · V(f)².
	VoltAtFMax float64
	VoltAtFMin float64
	// DynWattsAtFMax is the dynamic power of one fully busy, unthrottled
	// core at FMaxGHz.
	DynWattsAtFMax float64
	// StaticWattsPerCore is the frequency-independent per-core power
	// (leakage plus the core's share of the uncore).
	StaticWattsPerCore float64
	// NodeBaseWatts is the per-node power not attributable to cores:
	// memory, chipset, fans, HCA, PSU losses.
	NodeBaseWatts float64
	// IdleActivity is the activity factor of a core that has yielded the
	// CPU (blocking-mode wait). A polling wait spins and counts as fully
	// busy.
	IdleActivity float64
	// MemBoundFrac is the fraction of streaming-copy throughput that is
	// limited by the memory system rather than the core clock: lowering
	// the frequency barely slows that part, so a memcpy at fmin runs at
	// MemBoundFrac + (1-MemBoundFrac)·(fmin/fmax) of full speed.
	// Throttling gates whole clock periods, so the T-state duty cycle
	// scales the whole copy.
	MemBoundFrac float64
	// Duty[j] is c_j, the fraction of cycles a core in Tj executes.
	Duty [NumTStates]float64
	// ODVFS and OThrottle are the latencies of one DVFS or throttle
	// transition (10–15 µs on Nehalem per the paper).
	ODVFS     simtime.Duration
	OThrottle simtime.Duration
}

// DefaultModel returns constants calibrated so the paper's 8-node, 64-core
// testbed draws ≈2.3 KW fully loaded at fmax, ≈1.8 KW at fmin, and ≈1.6 KW
// with the proposed half-throttled schedules — the levels of Figs 6(b),
// 7(b) and 8(b).
func DefaultModel() *Model {
	m := &Model{
		FMaxGHz:            2.4,
		FMinGHz:            1.6,
		VoltAtFMax:         1.20,
		VoltAtFMin:         0.94,
		DynWattsAtFMax:     13.2,
		StaticWattsPerCore: 4.0,
		NodeBaseWatts:      150.0,
		IdleActivity:       0.18,
		MemBoundFrac:       0.65,
		ODVFS:              simtime.Micros(12),
		OThrottle:          simtime.Micros(12),
	}
	// Duty cycles fall linearly from 1.0 (T0) to 0.12 (T7), matching
	// "the CPU being 100% active in the T0 state and only 12% active in
	// the T7 state".
	for j := 0; j < NumTStates; j++ {
		m.Duty[j] = 1.0 - float64(j)*(0.88/7.0)
	}
	return m
}

// Validate checks the model for physically meaningless values.
func (m *Model) Validate() error {
	if m.FMinGHz <= 0 || m.FMaxGHz < m.FMinGHz {
		return fmt.Errorf("power: bad frequency range [%g, %g]", m.FMinGHz, m.FMaxGHz)
	}
	if m.VoltAtFMin <= 0 || m.VoltAtFMax < m.VoltAtFMin {
		return fmt.Errorf("power: bad voltage range [%g, %g]", m.VoltAtFMin, m.VoltAtFMax)
	}
	if m.DynWattsAtFMax < 0 || m.StaticWattsPerCore < 0 || m.NodeBaseWatts < 0 {
		return fmt.Errorf("power: negative power constants")
	}
	if m.IdleActivity < 0 || m.IdleActivity > 1 {
		return fmt.Errorf("power: IdleActivity %g outside [0,1]", m.IdleActivity)
	}
	if m.MemBoundFrac < 0 || m.MemBoundFrac > 1 {
		return fmt.Errorf("power: MemBoundFrac %g outside [0,1]", m.MemBoundFrac)
	}
	for j, d := range m.Duty {
		if d < 0 || d > 1 {
			return fmt.Errorf("power: Duty[%d]=%g outside [0,1]", j, d)
		}
		if j > 0 && d > m.Duty[j-1] {
			return fmt.Errorf("power: Duty must be non-increasing, Duty[%d]=%g > Duty[%d]=%g",
				j, d, j-1, m.Duty[j-1])
		}
	}
	return nil
}

// VoltAt returns the linear-interpolated supply voltage for frequency f,
// clamped to the model's range.
func (m *Model) VoltAt(fGHz float64) float64 {
	f := m.ClampFreq(fGHz)
	if m.FMaxGHz == m.FMinGHz {
		return m.VoltAtFMax
	}
	frac := (f - m.FMinGHz) / (m.FMaxGHz - m.FMinGHz)
	return m.VoltAtFMin + frac*(m.VoltAtFMax-m.VoltAtFMin)
}

// ClampFreq limits f to the DVFS range.
func (m *Model) ClampFreq(fGHz float64) float64 {
	if fGHz < m.FMinGHz {
		return m.FMinGHz
	}
	if fGHz > m.FMaxGHz {
		return m.FMaxGHz
	}
	return fGHz
}

// DynWatts returns the dynamic power of a busy, unthrottled core at f:
// P_dyn(f) = P_dyn(fmax) · (f/fmax) · (V(f)/V(fmax))².
func (m *Model) DynWatts(fGHz float64) float64 {
	f := m.ClampFreq(fGHz)
	vr := m.VoltAt(f) / m.VoltAtFMax
	return m.DynWattsAtFMax * (f / m.FMaxGHz) * vr * vr
}

// CoreWatts returns the instantaneous power of one core in the given
// state. busy=false models a core that yielded the CPU (blocking wait or
// OS idle); a polling wait passes busy=true.
func (m *Model) CoreWatts(fGHz float64, t TState, busy bool) float64 {
	activity := 1.0
	if !busy {
		activity = m.IdleActivity
	}
	return m.StaticWattsPerCore + m.Duty[t]*activity*m.DynWatts(fGHz)
}

// Speed returns the effective execution speed of a core relative to an
// unthrottled core at fmax for clock-bound work (protocol startup,
// scalar compute). CPU-driven costs divide by this factor.
func (m *Model) Speed(fGHz float64, t TState) float64 {
	return (m.ClampFreq(fGHz) / m.FMaxGHz) * m.Duty[t]
}

// CopySpeed returns the effective speed for streaming memory work
// (memcpy, buffer reduction): the frequency component is softened by
// MemBoundFrac, while throttling's duty cycle applies in full.
func (m *Model) CopySpeed(fGHz float64, t TState) float64 {
	fr := m.ClampFreq(fGHz) / m.FMaxGHz
	return m.Duty[t] * (m.MemBoundFrac + (1-m.MemBoundFrac)*fr)
}
