package power

import (
	"math"
	"testing"
	"testing/quick"

	"pacc/internal/simtime"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDefaultModelValid(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	if !almost(m.Duty[0], 1.0, 1e-12) {
		t.Errorf("Duty[T0] = %v, want 1.0", m.Duty[0])
	}
	if !almost(m.Duty[7], 0.12, 1e-12) {
		t.Errorf("Duty[T7] = %v, want 0.12 (CPU 12%% active in T7)", m.Duty[7])
	}
}

func TestModelValidateRejectsBadValues(t *testing.T) {
	mk := func(mutate func(*Model)) *Model {
		m := DefaultModel()
		mutate(m)
		return m
	}
	bad := []*Model{
		mk(func(m *Model) { m.FMinGHz = -1 }),
		mk(func(m *Model) { m.FMaxGHz = m.FMinGHz - 0.1 }),
		mk(func(m *Model) { m.VoltAtFMin = 0 }),
		mk(func(m *Model) { m.DynWattsAtFMax = -5 }),
		mk(func(m *Model) { m.IdleActivity = 1.5 }),
		mk(func(m *Model) { m.Duty[3] = 1.2 }),
		mk(func(m *Model) { m.Duty[5] = m.Duty[4] + 0.1 }),
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: bad model validated", i)
		}
	}
}

func TestVoltInterpolation(t *testing.T) {
	m := DefaultModel()
	if v := m.VoltAt(m.FMaxGHz); !almost(v, m.VoltAtFMax, 1e-12) {
		t.Errorf("V(fmax) = %v", v)
	}
	if v := m.VoltAt(m.FMinGHz); !almost(v, m.VoltAtFMin, 1e-12) {
		t.Errorf("V(fmin) = %v", v)
	}
	mid := (m.FMinGHz + m.FMaxGHz) / 2
	if v := m.VoltAt(mid); !almost(v, (m.VoltAtFMin+m.VoltAtFMax)/2, 1e-12) {
		t.Errorf("V(mid) = %v", v)
	}
	// Clamping.
	if v := m.VoltAt(100); !almost(v, m.VoltAtFMax, 1e-12) {
		t.Errorf("V(100GHz) = %v, want clamp to Vmax", v)
	}
}

func TestDynWattsMonotonicInFreq(t *testing.T) {
	m := DefaultModel()
	prev := -1.0
	for f := m.FMinGHz; f <= m.FMaxGHz+1e-9; f += 0.1 {
		w := m.DynWatts(f)
		if w <= prev {
			t.Fatalf("DynWatts not strictly increasing at %v GHz: %v <= %v", f, w, prev)
		}
		prev = w
	}
	if !almost(m.DynWatts(m.FMaxGHz), m.DynWattsAtFMax, 1e-9) {
		t.Errorf("DynWatts(fmax) = %v, want %v", m.DynWatts(m.FMaxGHz), m.DynWattsAtFMax)
	}
}

// TestClusterCalibration checks the headline power levels of Figures 6(b),
// 7(b), 8(b): ≈2.3 KW all-busy at fmax, ≈1.8 KW all-busy at fmin, ≈1.6 KW
// with the proposed scheme (fmin, half the cores at T7).
func TestClusterCalibration(t *testing.T) {
	m := DefaultModel()
	nodes, cpn := 8, 8
	cluster := func(f float64, tA, tB TState, busy bool) float64 {
		w := float64(nodes) * m.NodeBaseWatts
		for n := 0; n < nodes; n++ {
			for c := 0; c < cpn; c++ {
				ts := tA
				if c >= cpn/2 {
					ts = tB
				}
				w += m.CoreWatts(f, ts, busy)
			}
		}
		return w
	}
	noPower := cluster(m.FMaxGHz, T0, T0, true)
	dvfs := cluster(m.FMinGHz, T0, T0, true)
	proposed := cluster(m.FMinGHz, T0, T7, true)
	if !almost(noPower, 2300, 120) {
		t.Errorf("no-power cluster draw = %.0f W, want ≈2300", noPower)
	}
	if !almost(dvfs, 1800, 120) {
		t.Errorf("freq-scaling cluster draw = %.0f W, want ≈1800", dvfs)
	}
	if !almost(proposed, 1600, 120) {
		t.Errorf("proposed cluster draw = %.0f W, want ≈1600", proposed)
	}
	if !(noPower > dvfs && dvfs > proposed) {
		t.Errorf("ordering violated: %v, %v, %v", noPower, dvfs, proposed)
	}
}

func TestSpeedFactors(t *testing.T) {
	m := DefaultModel()
	if s := m.Speed(m.FMaxGHz, T0); !almost(s, 1.0, 1e-12) {
		t.Errorf("Speed(fmax,T0) = %v", s)
	}
	if s := m.Speed(m.FMinGHz, T0); !almost(s, m.FMinGHz/m.FMaxGHz, 1e-12) {
		t.Errorf("Speed(fmin,T0) = %v", s)
	}
	sT7 := m.Speed(m.FMinGHz, T7)
	if !almost(sT7, (m.FMinGHz/m.FMaxGHz)*0.12, 1e-9) {
		t.Errorf("Speed(fmin,T7) = %v", sT7)
	}
}

// Property: power is non-increasing in throttle level and non-decreasing
// in frequency, busy >= idle.
func TestCoreWattsMonotonicityProperty(t *testing.T) {
	m := DefaultModel()
	f := func(fSel uint8, tSel uint8) bool {
		fGHz := m.FMinGHz + (m.FMaxGHz-m.FMinGHz)*float64(fSel)/255
		ts := TState(int(tSel) % NumTStates)
		w := m.CoreWatts(fGHz, ts, true)
		if ts < T7 && m.CoreWatts(fGHz, ts+1, true) > w+1e-12 {
			return false
		}
		if m.CoreWatts(fGHz, ts, false) > w+1e-12 {
			return false
		}
		if fGHz < m.FMaxGHz && m.CoreWatts(m.FMaxGHz, ts, true) < w-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoreEnergyIntegration(t *testing.T) {
	eng := simtime.NewEngine()
	m := DefaultModel()
	c := NewCore(eng, m, 0)
	eng.Spawn("driver", func(p *simtime.Proc) {
		c.SetBusy(true)
		p.Sleep(simtime.Second) // 1 s busy at fmax T0
		c.SetFreq(m.FMinGHz)
		p.Sleep(simtime.Second) // 1 s busy at fmin T0
		c.SetThrottle(T7)
		p.Sleep(simtime.Second) // 1 s busy at fmin T7
		c.SetBusy(false)
		p.Sleep(simtime.Second) // 1 s idle at fmin T7
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	want := m.CoreWatts(m.FMaxGHz, T0, true) +
		m.CoreWatts(m.FMinGHz, T0, true) +
		m.CoreWatts(m.FMinGHz, T7, true) +
		m.CoreWatts(m.FMinGHz, T7, false)
	if got := c.EnergyJoules(); !almost(got, want, 1e-6) {
		t.Fatalf("energy = %v J, want %v J", got, want)
	}
}

func TestCoreNoopTransitionsDoNotAccrueTwice(t *testing.T) {
	eng := simtime.NewEngine()
	c := NewCore(eng, DefaultModel(), 0)
	eng.Spawn("d", func(p *simtime.Proc) {
		c.SetBusy(true)
		p.Sleep(100 * simtime.Millisecond)
		c.SetBusy(true)        // no-op
		c.SetFreq(c.FreqGHz()) // no-op
		c.SetThrottle(T0)      // no-op
		p.Sleep(100 * simtime.Millisecond)
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	want := c.Model().CoreWatts(c.Model().FMaxGHz, T0, true) * 0.2
	if got := c.EnergyJoules(); !almost(got, want, 1e-9) {
		t.Fatalf("energy = %v, want %v", got, want)
	}
}

func TestInvalidThrottlePanics(t *testing.T) {
	eng := simtime.NewEngine()
	c := NewCore(eng, DefaultModel(), 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid T-state")
		}
	}()
	c.SetThrottle(TState(9))
}

func TestCoreSpeedFloor(t *testing.T) {
	m := DefaultModel()
	m.Duty[7] = 0 // hypothetical fully-stopped throttle
	eng := simtime.NewEngine()
	c := NewCore(eng, m, 0)
	c.SetThrottle(T7)
	if s := c.Speed(); s <= 0 {
		t.Fatalf("speed must stay positive, got %v", s)
	}
}

func TestStationAggregation(t *testing.T) {
	eng := simtime.NewEngine()
	m := DefaultModel()
	st := NewStation(eng, m, 2, 4)
	if len(st.Cores()) != 8 {
		t.Fatalf("cores = %d, want 8", len(st.Cores()))
	}
	idle := st.Watts()
	wantIdle := 2*m.NodeBaseWatts + 8*m.CoreWatts(m.FMaxGHz, T0, false)
	if !almost(idle, wantIdle, 1e-9) {
		t.Fatalf("idle watts = %v, want %v", idle, wantIdle)
	}
	for _, c := range st.Cores() {
		c.SetBusy(true)
	}
	busy := st.Watts()
	if busy <= idle {
		t.Fatalf("busy (%v) should exceed idle (%v)", busy, idle)
	}
}

func TestStationEnergyIncludesNodeBase(t *testing.T) {
	eng := simtime.NewEngine()
	m := DefaultModel()
	st := NewStation(eng, m, 1, 1)
	eng.Spawn("d", func(p *simtime.Proc) { p.Sleep(2 * simtime.Second) })
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	want := 2*m.NodeBaseWatts + 2*m.CoreWatts(m.FMaxGHz, T0, false)
	if got := st.EnergyJoules(); !almost(got, want, 1e-6) {
		t.Fatalf("station energy = %v, want %v", got, want)
	}
}

func TestMeterSampling(t *testing.T) {
	eng := simtime.NewEngine()
	st := NewStation(eng, DefaultModel(), 1, 2)
	meter := NewMeter(st, 500*simtime.Millisecond)
	meter.Start()
	eng.Spawn("load", func(p *simtime.Proc) {
		p.Sleep(simtime.Second)
		st.Core(0).SetBusy(true)
		st.Core(1).SetBusy(true)
		p.Sleep(simtime.Second)
		meter.Stop()
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	samples := meter.Samples()
	if len(samples) < 4 {
		t.Fatalf("got %d samples, want >= 4", len(samples))
	}
	if samples[0].At != 0 {
		t.Errorf("first sample at %v, want 0", samples[0].At)
	}
	if samples[1].At != simtime.Time(500*simtime.Millisecond) {
		t.Errorf("second sample at %v, want 0.5 s", samples[1].At)
	}
	// Later samples (busy) must exceed earlier (idle) ones.
	if !(samples[len(samples)-1].Watts > samples[0].Watts) {
		t.Errorf("busy sample %v not above idle %v", samples[len(samples)-1].Watts, samples[0].Watts)
	}
	if meter.MeanWatts() <= 0 {
		t.Error("mean watts should be positive")
	}
}

func TestMeterDefaultInterval(t *testing.T) {
	eng := simtime.NewEngine()
	st := NewStation(eng, DefaultModel(), 1, 1)
	m := NewMeter(st, 0)
	if m.interval != 500*simtime.Millisecond {
		t.Fatalf("default interval = %v", m.interval)
	}
}

func TestLedgerAttribution(t *testing.T) {
	eng := simtime.NewEngine()
	m := DefaultModel()
	c := NewCore(eng, m, 0)
	led := NewLedger()
	c.AttachLedger(led)
	eng.Spawn("d", func(p *simtime.Proc) {
		led.SetPhase("compute")
		c.SetBusy(true)
		p.Sleep(simtime.Second)
		c.SetBusy(false) // closes the compute interval
		led.SetPhase("comm")
		c.SetBusy(true)
		p.Sleep(2 * simtime.Second)
		c.SetBusy(false)
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	busyW := m.CoreWatts(m.FMaxGHz, T0, true)
	if got := led.Joules("compute"); !almost(got, busyW, 1e-6) {
		t.Errorf("compute joules = %v, want %v", got, busyW)
	}
	if got := led.Joules("comm"); !almost(got, 2*busyW, 1e-6) {
		t.Errorf("comm joules = %v, want %v", got, 2*busyW)
	}
	if got := led.CoreSeconds("comm"); !almost(got, 2, 1e-9) {
		t.Errorf("comm seconds = %v, want 2", got)
	}
	phases := led.Phases()
	if len(phases) != 2 || phases[0] != "comm" || phases[1] != "compute" {
		t.Errorf("phases = %v", phases)
	}
	if tot := led.TotalJoules(); !almost(tot, 3*busyW, 1e-6) {
		t.Errorf("total = %v", tot)
	}
}

// Property: energy integration is additive — splitting an interval with
// redundant state rewrites never changes the total.
func TestEnergyAdditivityProperty(t *testing.T) {
	m := DefaultModel()
	f := func(splits uint8) bool {
		total := simtime.Duration(1) * simtime.Second
		// One go: single interval.
		e1 := simtime.NewEngine()
		c1 := NewCore(e1, m, 0)
		e1.Spawn("d", func(p *simtime.Proc) {
			c1.SetBusy(true)
			p.Sleep(total)
		})
		if _, err := e1.Run(simtime.Infinity); err != nil {
			return false
		}
		// Split into k pieces with forced accruals between.
		k := int(splits%7) + 2
		e2 := simtime.NewEngine()
		c2 := NewCore(e2, m, 0)
		e2.Spawn("d", func(p *simtime.Proc) {
			c2.SetBusy(true)
			for i := 0; i < k; i++ {
				p.Sleep(total / simtime.Duration(k))
				c2.EnergyJoules() // forces accrue
			}
			// Make up rounding remainder.
			rem := total - (total/simtime.Duration(k))*simtime.Duration(k)
			p.Sleep(rem)
		})
		if _, err := e2.Run(simtime.Infinity); err != nil {
			return false
		}
		return almost(c1.EnergyJoules(), c2.EnergyJoules(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestResidencyCounters pins the per-state residency accounting: the
// per-state times split exactly along the state changes, sum to the
// elapsed time, and come back in a deterministic order.
func TestResidencyCounters(t *testing.T) {
	m := DefaultModel()
	eng := simtime.NewEngine()
	c := NewCore(eng, m, 0)
	eng.Spawn("d", func(p *simtime.Proc) {
		c.SetBusy(true)
		p.Sleep(2 * simtime.Millisecond) // busy fmax T0
		c.SetFreq(m.FMinGHz)
		p.Sleep(3 * simtime.Millisecond) // busy fmin T0
		c.SetThrottle(T4)
		p.Sleep(5 * simtime.Millisecond) // busy fmin T4
		c.SetBusy(false)
		p.Sleep(1 * simtime.Millisecond) // idle fmin T4
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	res := c.Residencies()
	want := map[StateKey]simtime.Duration{
		{FreqGHz: m.FMaxGHz, Throttle: T0, Busy: true}:  2 * simtime.Millisecond,
		{FreqGHz: m.FMinGHz, Throttle: T0, Busy: true}:  3 * simtime.Millisecond,
		{FreqGHz: m.FMinGHz, Throttle: T4, Busy: true}:  5 * simtime.Millisecond,
		{FreqGHz: m.FMinGHz, Throttle: T4, Busy: false}: 1 * simtime.Millisecond,
	}
	if len(res) != len(want) {
		t.Fatalf("got %d residency entries, want %d: %+v", len(res), len(want), res)
	}
	var total simtime.Duration
	for _, r := range res {
		if want[r.State] != r.Time {
			t.Errorf("residency %v = %v, want %v", r.State, r.Time, want[r.State])
		}
		total += r.Time
	}
	if total != 11*simtime.Millisecond {
		t.Fatalf("residency total = %v, want 11ms", total)
	}
	// Deterministic order: ascending frequency, then throttle, idle first.
	for i := 1; i < len(res); i++ {
		a, b := res[i-1].State, res[i].State
		inOrder := a.FreqGHz < b.FreqGHz ||
			(a.FreqGHz == b.FreqGHz && a.Throttle < b.Throttle) ||
			(a.FreqGHz == b.FreqGHz && a.Throttle == b.Throttle && !a.Busy && b.Busy)
		if !inOrder {
			t.Fatalf("residencies out of order: %v before %v", a, b)
		}
	}
	if got, want := res[0].State.Label(), "busy 1.6GHz T0"; got != want {
		t.Fatalf("Label() = %q, want %q", got, want)
	}
}

// TestLedgerStateSplit pins the phase × power-state attribution: each
// phase's per-state joules sum to the phase total, and states that only
// appear inside one phase are attributed there alone.
func TestLedgerStateSplit(t *testing.T) {
	m := DefaultModel()
	eng := simtime.NewEngine()
	c := NewCore(eng, m, 0)
	l := NewLedger()
	c.AttachLedger(l)
	eng.Spawn("d", func(p *simtime.Proc) {
		l.SetPhase("compute")
		c.SetBusy(true)
		p.Sleep(4 * simtime.Millisecond)
		c.SetFreq(m.FMinGHz) // accrues compute at fmax, switches state
		l.SetPhase("comm")
		p.Sleep(6 * simtime.Millisecond)
		c.EnergyJoules() // flush
	})
	if _, err := eng.Run(simtime.Infinity); err != nil {
		t.Fatal(err)
	}
	for _, phase := range l.Phases() {
		sum := 0.0
		for _, sj := range l.JoulesByState(phase) {
			sum += sj.Joules
		}
		if !almost(sum, l.Joules(phase), 1e-9) {
			t.Errorf("phase %q: state split sums to %g, phase total %g", phase, sum, l.Joules(phase))
		}
	}
	comm := l.JoulesByState("comm")
	if len(comm) != 1 || comm[0].State.FreqGHz != m.FMinGHz {
		t.Fatalf("comm states = %+v, want single fmin entry", comm)
	}
	compute := l.JoulesByState("compute")
	if len(compute) != 1 || compute[0].State.FreqGHz != m.FMaxGHz {
		t.Fatalf("compute states = %+v, want single fmax entry", compute)
	}
}
