package stats

import (
	"math"
	"sort"
)

// Digest summarizes a value distribution: count, mean, nearest-rank
// percentiles, and max. It is the shared summary behind the analytics
// report's latency/slack digests and the sweep daemon's /v1/query
// aggregates. Units are the caller's; the JSON field names are
// unit-free so microsecond latencies and joule energies both serialize
// naturally.
type Digest struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// DigestOf summarizes vals (which it leaves untouched). An empty sample
// yields the zero Digest.
func DigestOf(vals []float64) Digest {
	if len(vals) == 0 {
		return Digest{}
	}
	s := make([]float64, len(vals))
	copy(s, vals)
	sort.Float64s(s)
	return Digest{
		Count: len(s),
		Mean:  Sum(s) / float64(len(s)),
		P50:   Percentile(s, 50),
		P90:   Percentile(s, 90),
		P99:   Percentile(s, 99),
		Max:   s[len(s)-1],
	}
}

// Percentile returns the nearest-rank p-th percentile of sorted, which
// must be sorted ascending and non-empty: the value at index
// ceil(p/100*n)-1. Exact on the sample (never interpolated) and
// deterministic, which keeps report bytes reproducible.
func Percentile(sorted []float64, p float64) float64 {
	i := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
