package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Sum([]float64{1.5, 2.5}); got != 4 {
		t.Errorf("Sum = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be infinities")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with zero should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512",
		1 << 10: "1K",
		4 << 10: "4K",
		1 << 20: "1M",
		3 << 20: "3M",
		1500:    "1500",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPercentDelta(t *testing.T) {
	if got := PercentDelta(100, 110); math.Abs(got-10) > 1e-12 {
		t.Errorf("PercentDelta = %v", got)
	}
	if PercentDelta(0, 5) != 0 {
		t.Error("zero base should return 0")
	}
}

// Property: Min <= Mean <= Max for non-empty slices.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Mean(xs)
		return Min(xs) <= m+1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
