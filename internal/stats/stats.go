// Package stats holds the small numeric helpers the experiment harness
// uses to summarize series.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum adds the values.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the smallest value (+Inf for an empty slice).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (-Inf for an empty slice).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of positive values (0 if any value
// is non-positive or the slice is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// FormatBytes renders a message size the way benchmark tables do (1K,
// 64K, 1M).
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dM", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dK", b>>10)
	default:
		return fmt.Sprintf("%d", b)
	}
}

// PercentDelta returns 100*(b-a)/a.
func PercentDelta(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (b - a) / a
}
