package collective

import (
	"bytes"
	"strings"
	"testing"

	"pacc/internal/fault"
	"pacc/internal/mpi"
	"pacc/internal/obs"
	"pacc/internal/simtime"
)

// sumWorld runs AllreduceSum on every rank (contribution rank+1) and
// returns the per-rank results plus the world.
func sumWorld(t *testing.T, cfg mpi.Config, payload int64, attach bool) ([]float64, *mpi.World, *obs.Bus) {
	t.Helper()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b *obs.Bus
	if attach {
		b = obs.NewBus(w.Engine())
		w.AttachObs(b)
	}
	got := make([]float64, cfg.NProcs)
	w.Launch(func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		got[r.ID()], _ = AllreduceSum(c, payload, float64(r.ID()+1), Options{})
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return got, w, b
}

func wantSum(n int) float64 { return float64(n*(n+1)) / 2 }

// TestAllreduceSumHealthy: recursive-doubling leader exchange (power-of-2
// node count) reduces to the exact global sum on every rank.
func TestAllreduceSumHealthy(t *testing.T) {
	cfg := cfg32x8() // 4 nodes x 8 ranks
	got, _, _ := sumWorld(t, cfg, 64<<10, false)
	for i, v := range got {
		if v != wantSum(cfg.NProcs) {
			t.Fatalf("rank %d sum = %g, want %g", i, v, wantSum(cfg.NProcs))
		}
	}
}

// TestAllreduceSumRingLeaders: a non-power-of-2 node count takes the ring
// leader exchange; the sum must still be exact.
func TestAllreduceSumRingLeaders(t *testing.T) {
	cfg := mpi.DefaultConfig()
	cfg.NProcs, cfg.PPN = 12, 4 // 3 node leaders
	got, _, _ := sumWorld(t, cfg, 4<<10, false)
	for i, v := range got {
		if v != wantSum(cfg.NProcs) {
			t.Fatalf("rank %d sum = %g, want %g", i, v, wantSum(cfg.NProcs))
		}
	}
}

// TestAllreduceSumSingleNode: with one node the exchange is purely
// intra-node.
func TestAllreduceSumSingleNode(t *testing.T) {
	cfg := mpi.DefaultConfig()
	cfg.NProcs, cfg.PPN = 8, 8
	got, _, _ := sumWorld(t, cfg, 1<<10, false)
	for i, v := range got {
		if v != wantSum(8) {
			t.Fatalf("rank %d sum = %g, want %g", i, v, wantSum(8))
		}
	}
}

// TestAllreduceFallbackUnderDegradation is the acceptance scenario: a
// link-degradation fault active during the collective makes the leaders
// agree to fall back to the contention-minimal ring, the reduction still
// produces the right value at every rank, and the decision is visible on
// the observability bus.
func TestAllreduceFallbackUnderDegradation(t *testing.T) {
	cfg := mpi.DefaultConfig()
	cfg.NProcs, cfg.PPN = 16, 4 // 4 node leaders: healthy path would be rd
	cfg.Fault = &fault.Spec{Seed: 3, LinkFaults: []fault.LinkFault{
		{Link: "node1-up", Factor: 0.25, Start: 0, Duration: 1000 * simtime.Second},
	}}
	got, _, b := sumWorld(t, cfg, 64<<10, true)
	for i, v := range got {
		if v != wantSum(16) {
			t.Fatalf("rank %d sum under degraded fabric = %g, want %g", i, v, wantSum(16))
		}
	}
	if n := b.Counter(obs.CtrCollectiveFallbacks); n == 0 {
		t.Error("no fallback recorded on the bus")
	}
	var buf bytes.Buffer
	if err := b.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fallback") {
		t.Error("exported trace has no fallback span")
	}
}

// TestAllreduceNoFallbackWhenHealthy: with an active injector but no link
// fault the agreement runs and declines; the schedule stays rd and no
// fallback is recorded.
func TestAllreduceNoFallbackWhenHealthy(t *testing.T) {
	cfg := mpi.DefaultConfig()
	cfg.NProcs, cfg.PPN = 16, 4
	cfg.Fault = &fault.Spec{Seed: 3, EagerLoss: 0.01, RetryBudget: 7}
	got, _, b := sumWorld(t, cfg, 64<<10, true)
	for i, v := range got {
		if v != wantSum(16) {
			t.Fatalf("rank %d sum = %g, want %g", i, v, wantSum(16))
		}
	}
	if n := b.Counter(obs.CtrCollectiveFallbacks); n != 0 {
		t.Errorf("healthy fabric recorded %d fallbacks", n)
	}
}

// TestTopoAwareFallbacksToFlat: the scatter/bcast/gather topology-aware
// variants detect the degraded fabric and complete via their flat
// fallbacks (recorded on the bus).
func TestTopoAwareFallbacksToFlat(t *testing.T) {
	cfg := mpi.DefaultConfig()
	cfg.NProcs, cfg.PPN = 16, 4
	cfg.Fault = &fault.Spec{Seed: 5, LinkFaults: []fault.LinkFault{
		{Link: "node2-up", Factor: 0.5, Start: 0, Duration: 1000 * simtime.Second},
	}}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := obs.NewBus(w.Engine())
	w.AttachObs(b)
	w.Launch(func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		ScatterTopoAware(c, 0, 16<<10, Options{})
		BcastTopoAware(c, 0, 16<<10, Options{})
		GatherTopoAware(c, 0, 16<<10, Options{})
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if n := b.Counter(obs.CtrCollectiveFallbacks); n < 3 {
		t.Errorf("recorded %d fallbacks, want one per topo-aware collective (3)", n)
	}
}
