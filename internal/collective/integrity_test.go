package collective

import (
	"errors"
	"testing"

	"pacc/internal/fault"
	"pacc/internal/mpi"
	"pacc/internal/simtime"
)

// TestCheckedHealthyMatchesUnchecked: with no faults, the checked variant
// returns the identical sum and verification never trips, while the
// checksum folds cost a small, bounded amount of extra simulated time.
func TestCheckedHealthyMatchesUnchecked(t *testing.T) {
	cfg := ftCfg()
	const bytes = 1 << 20
	var plainSum float64
	dPlain, _ := run(t, cfg, func(r *mpi.Rank) {
		s, err := AllreduceSum(mpi.CommWorld(r), bytes, float64(r.ID()+1), Options{})
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
		if r.ID() == 0 {
			plainSum = s
		}
	})
	var checkedSum float64
	dChecked, _ := run(t, cfg, func(r *mpi.Rank) {
		s, err := AllreduceSumChecked(mpi.CommWorld(r), bytes, float64(r.ID()+1), Options{})
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
		if r.ID() == 0 {
			checkedSum = s
		}
	})
	if want := wantSum(cfg.NProcs); plainSum != want || checkedSum != want {
		t.Fatalf("sums: plain %v checked %v, want %v", plainSum, checkedSum, want)
	}
	if dChecked <= dPlain {
		t.Fatalf("checked run (%v) should cost more than plain (%v)", dChecked, dPlain)
	}
	if over := dChecked.Seconds()/dPlain.Seconds() - 1; over > 0.03 {
		t.Fatalf("checksum overhead %.2f%% exceeds the 3%% budget (plain %v, checked %v)",
			over*100, dPlain, dChecked)
	}
}

// TestCheckedNeverSilentlyWrong is the end-to-end integrity invariant on
// the non-resilient checked variant: under a full-run memory-corruption
// burst, every rank either returns the correct sum or a typed integrity
// error — a corrupted value always travels with its diverged checksum
// lane, so it cannot land anywhere undetected.
func TestCheckedNeverSilentlyWrong(t *testing.T) {
	cfg := ftCfg()
	cfg.Fault = &fault.Spec{Seed: 7, MemBursts: []fault.MemBurst{
		{Rank: 2, Prob: 1, Start: 0, Duration: simtime.Second},
	}}
	want := wantSum(cfg.NProcs)
	sums := make([]float64, cfg.NProcs)
	errs := make([]error, cfg.NProcs)
	run(t, cfg, func(r *mpi.Rank) {
		sums[r.ID()], errs[r.ID()] = AllreduceSumChecked(mpi.CommWorld(r), 64<<10, float64(r.ID()+1), Options{})
	})
	caught := 0
	for g := 0; g < cfg.NProcs; g++ {
		switch {
		case errs[g] != nil:
			if !IsIntegrity(errs[g]) {
				t.Fatalf("rank %d: error is not an integrity error: %v", g, errs[g])
			}
			var ve *VerificationError
			if !errors.As(errs[g], &ve) {
				t.Fatalf("rank %d: want VerificationError, got %v", g, errs[g])
			}
			caught++
		case sums[g] != want:
			t.Fatalf("rank %d: silently wrong sum %v (want %v) with nil error", g, sums[g], want)
		}
	}
	if caught == 0 {
		t.Fatal("prob-1 burst corrupted nothing — injector not reaching the checked path")
	}
}

// TestFTCheckedRetriesPastBurst: the resilient checked allreduce treats a
// verification failure like a failed round. A burst window covering only
// the first attempts forces retries; once simulated time leaves the
// window, a clean round completes and every rank agrees on the correct
// sum with no error and no shrink (corruption kills no one).
func TestFTCheckedRetriesPastBurst(t *testing.T) {
	cfg := ftCfg()
	cfg.Fault = &fault.Spec{Seed: 3, MemBursts: []fault.MemBurst{
		{Rank: 5, Prob: 1, Start: 0, Duration: 40 * simtime.Microsecond},
	}}
	want := wantSum(cfg.NProcs)
	sums := make([]float64, cfg.NProcs)
	sizes := make([]int, cfg.NProcs)
	run(t, cfg, func(r *mpi.Rank) {
		sum, fc, err := AllreduceSumFTChecked(mpi.CommWorld(r), 64<<10, float64(r.ID()+1), Options{})
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
		sums[r.ID()] = sum
		sizes[r.ID()] = fc.Size()
	})
	for g := 0; g < cfg.NProcs; g++ {
		if sums[g] != want {
			t.Fatalf("rank %d sum %v, want %v", g, sums[g], want)
		}
		if sizes[g] != cfg.NProcs {
			t.Fatalf("rank %d finished on %d ranks, want %d (integrity retries must not shrink)", g, sizes[g], cfg.NProcs)
		}
	}
}

// TestFTCheckedBudgetExhaustion: a burst that outlasts the whole retry
// budget surfaces as a typed, classifiable error on every rank — the
// exhaustion wrap keeps the last VerificationError reachable — and no
// rank returns a wrong sum with a nil error.
func TestFTCheckedBudgetExhaustion(t *testing.T) {
	cfg := ftCfg()
	cfg.Fault = &fault.Spec{Seed: 11, MemBursts: []fault.MemBurst{
		{Rank: -1, Prob: 1, Start: 0, Duration: simtime.Second},
	}}
	want := wantSum(cfg.NProcs)
	sums := make([]float64, cfg.NProcs)
	errs := make([]error, cfg.NProcs)
	run(t, cfg, func(r *mpi.Rank) {
		sums[r.ID()], _, errs[r.ID()] = AllreduceSumFTChecked(mpi.CommWorld(r), 64<<10, float64(r.ID()+1), Options{})
	})
	sawIntegrity := false
	for g := 0; g < cfg.NProcs; g++ {
		if errs[g] == nil {
			if sums[g] != want {
				t.Fatalf("rank %d: silently wrong sum %v with nil error", g, sums[g])
			}
			continue
		}
		// A rank aborted mid-chain by a peer's revoke exhausts with a
		// failure error; the rank that caught the mismatch carries the
		// integrity type. Both are typed — silence is the only failure.
		if !IsIntegrity(errs[g]) && !mpi.IsFailure(errs[g]) {
			t.Fatalf("rank %d: exhaustion error not classifiable: %v", g, errs[g])
		}
		sawIntegrity = sawIntegrity || IsIntegrity(errs[g])
	}
	// With every rank corrupted at probability 1, the budget must run
	// out, and at least one rank must name the verification failure.
	if !sawIntegrity {
		t.Fatal("full-run all-rank burst produced no integrity-classified exhaustion")
	}
}

// TestPlanVerifyFT: the plan-backed resilient allreduce with Options.Verify
// appends OpVerify steps; under a transient burst it recovers like the
// scalar checked variant (the taint bit fails the plan, RunResilient
// retries), and under a full-run burst the exhaustion error wraps
// plan.IntegrityError.
func TestPlanVerifyFT(t *testing.T) {
	cfg := ftCfg()
	cfg.Fault = &fault.Spec{Seed: 5, MemBursts: []fault.MemBurst{
		{Rank: 1, Prob: 1, Start: 0, Duration: 40 * simtime.Microsecond},
	}}
	run(t, cfg, func(r *mpi.Rank) {
		fc, err := AllreduceFT(mpi.CommWorld(r), 64<<10, Options{Verify: true, Plan: "allreduce_chain"})
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
		if fc.Size() != cfg.NProcs {
			t.Errorf("rank %d finished on %d ranks, want %d", r.ID(), fc.Size(), cfg.NProcs)
		}
	})

	cfg.Fault = &fault.Spec{Seed: 5, MemBursts: []fault.MemBurst{
		{Rank: 1, Prob: 1, Start: 0, Duration: simtime.Second},
	}}
	var integ, silent int
	run(t, cfg, func(r *mpi.Rank) {
		_, err := AllreduceFT(mpi.CommWorld(r), 64<<10, Options{Verify: true, Plan: "allreduce_chain"})
		switch {
		case err == nil:
			silent++
		case IsIntegrity(err):
			integ++
		case !mpi.IsFailure(err):
			t.Errorf("rank %d: error not classifiable as integrity or failure: %v", r.ID(), err)
		}
	})
	if silent > 0 {
		t.Errorf("%d ranks finished cleanly under a full-run burst on a verified plan", silent)
	}
	if integ == 0 {
		t.Error("no rank's exhaustion wrapped a plan integrity error")
	}
}

// TestVerifyOffBitIdentical: a corrupt-free spec must leave the checked
// machinery completely dormant — an unchecked allreduce under a
// drop-free, burst-free spec costs exactly what it costs with no spec.
func TestVerifyOffBitIdentical(t *testing.T) {
	cfg := ftCfg()
	d0, e0 := run(t, cfg, func(r *mpi.Rank) {
		if _, err := AllreduceSum(mpi.CommWorld(r), 64<<10, 1, Options{}); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
	})
	cfg.Fault = &fault.Spec{Seed: 9} // active=false spec
	d1, e1 := run(t, cfg, func(r *mpi.Rank) {
		if _, err := AllreduceSum(mpi.CommWorld(r), 64<<10, 1, Options{}); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
	})
	if d0 != d1 || e0 != e1 {
		t.Fatalf("inactive spec changed the simulation: %v/%v J vs %v/%v J", d0, e0, d1, e1)
	}
}
