package collective

import "fmt"

// Argument validation shared by every public entry point. The simulator
// used to model whatever it was handed — a negative byte count silently
// produced negative transfer times and energies that poisoned whole
// experiment sweeps. Entry points now reject malformed arguments with a
// returned error before any rank touches the network.

// checkBytes rejects non-positive fixed payload sizes.
func checkBytes(op string, bytes int64) error {
	if bytes <= 0 {
		return fmt.Errorf("collective: %s: bytes must be positive, got %d", op, bytes)
	}
	return nil
}

// checkRoot rejects roots outside the communicator.
func checkRoot(op string, root, size int) error {
	if root < 0 || root >= size {
		return fmt.Errorf("collective: %s: root %d outside [0,%d)", op, root, size)
	}
	return nil
}

// checkSizeFn validates a per-rank size function: non-nil with no
// negative entries. Zero-size blocks are legal — a rank may contribute
// or receive nothing.
func checkSizeFn(op string, size int, sizeOf func(rank int) int64) error {
	if sizeOf == nil {
		return fmt.Errorf("collective: %s: nil size function", op)
	}
	for r := 0; r < size; r++ {
		if b := sizeOf(r); b < 0 {
			return fmt.Errorf("collective: %s: negative size %d for rank %d", op, b, r)
		}
	}
	return nil
}

// checkSizeMatrix validates a per-pair size function the same way.
func checkSizeMatrix(op string, size int, sizeOf func(src, dst int) int64) error {
	if sizeOf == nil {
		return fmt.Errorf("collective: %s: nil size function", op)
	}
	for s := 0; s < size; s++ {
		for d := 0; d < size; d++ {
			if b := sizeOf(s, d); b < 0 {
				return fmt.Errorf("collective: %s: negative size %d for pair (%d,%d)", op, b, s, d)
			}
		}
	}
	return nil
}
