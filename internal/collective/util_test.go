package collective

import "testing"

func TestIsPow2(t *testing.T) {
	cases := []struct {
		n    int
		want bool
	}{
		{-8, false},
		{-1, false},
		{0, false},
		{1, true},
		{2, true},
		{3, false},
		{4, true},
		{6, false},
		{8, true},
		{12, false},
		{16, true},
		{31, false},
		{32, true},
		{1 << 20, true},
		{(1 << 20) + 1, false},
	}
	for _, tc := range cases {
		if got := isPow2(tc.n); got != tc.want {
			t.Errorf("isPow2(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestLogOf(t *testing.T) {
	cases := []struct {
		mask int
		want int
	}{
		{1, 0},
		{2, 1},
		{3, 1}, // non-powers floor
		{4, 2},
		{7, 2},
		{8, 3},
		{16, 4},
		{1 << 17, 17},
		{1 << 30, 30},
	}
	for _, tc := range cases {
		if got := logOf(tc.mask); got != tc.want {
			t.Errorf("logOf(%d) = %d, want %d", tc.mask, got, tc.want)
		}
	}
	// Round-trip: for every power of two, logOf inverts the shift.
	for l := 0; l < 31; l++ {
		if got := logOf(1 << l); got != l {
			t.Errorf("logOf(1<<%d) = %d", l, got)
		}
	}
}
