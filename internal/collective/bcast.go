package collective

import (
	"pacc/internal/mpi"
	"pacc/internal/power"
	"pacc/internal/topology"
)

// ctrlTag returns a control-message tag above the pair-tag region of a
// block (pair tags occupy [block, block+P^2), P <= 512).
func ctrlTag(block, k int) int { return block + (1 << 18) + k }

// Bcast broadcasts bytes from communicator rank root to all ranks using
// MVAPICH2's multi-core aware scheme (§II-D): an inter-leader
// scatter-allgather across nodes followed by a shared-memory distribution
// within each node. Options.Power selects the paper's power schemes;
// Proposed throttles the non-leader socket to T7 and the leader socket to
// T4 during the network phase (§V-B, Figure 4).
func Bcast(c *mpi.Comm, root int, bytes int64, opt Options) error {
	if err := checkBytes("bcast", bytes); err != nil {
		return err
	}
	if err := checkRoot("bcast", root, c.Size()); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	timeCollective(c, opt, "bcast", bytes, func() {
		switch opt.Power {
		case Proposed:
			withFreqScaling(c, func() { bcastMC(c, root, bytes, opt, true) })
		case FreqScaling:
			withFreqScaling(c, func() { bcastMC(c, root, bytes, opt, false) })
		default:
			bcastMC(c, root, bytes, opt, false)
		}
	})
	return nil
}

// BcastBinomial broadcasts with the flat binomial tree [23], ignoring the
// node topology — the paper's §V-B contrast case in which every process
// participates in network communication and throttling cannot be applied
// without large penalties. Plan-backed.
func BcastBinomial(c *mpi.Comm, root int, bytes int64, opt Options) error {
	if err := checkBytes("bcast_binomial", bytes); err != nil {
		return err
	}
	if err := checkRoot("bcast_binomial", root, c.Size()); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	var err error
	timeCollective(c, opt, "bcast_binomial", bytes, func() {
		if opt.refImperative {
			if opt.Power == FreqScaling || opt.Power == Proposed {
				withFreqScaling(c, func() { binomialBcast(c, root, bytes, c.TagBlock()) })
				return
			}
			binomialBcast(c, root, bytes, c.TagBlock())
			return
		}
		spec := planSpec(bytes, nil, opt)
		spec.Root = root
		err = runPlanned(c, "bcast", "bcast_binomial", spec, opt)
	})
	return err
}

// bcastMC is the multi-core aware broadcast; throttle selects the §V-B
// T-state schedule (callers pass true only for Proposed).
func bcastMC(c *mpi.Comm, root int, bytes int64, opt Options, throttle bool) {
	r := c.Owner()
	me := c.Rank()
	if c.Size() == 1 {
		return
	}
	shmC, leadC := c.SplitByNode()
	block := c.TagBlock()

	// If the root is not its node's leader, stage the payload to the
	// leader over shared memory first.
	lay := layoutOf(c)
	rootLeader := lay.all[lay.idxOfNode[c.NodeOf(root)]][0]
	if me == root && me != rootLeader {
		c.Send(rootLeader, bytes, ctrlTag(block, 0))
	}
	if me == rootLeader && root != rootLeader {
		c.Recv(root, bytes, ctrlTag(block, 0))
	}

	isLeader := leadC != nil
	leaderSock := shmC.SocketOf(0)

	// §V-B throttle schedule for the network phase.
	if throttle {
		switch {
		case opt.CoreGranularThrottle && isLeader:
			// Future-architecture mode: the leader core stays T0.
		case opt.CoreGranularThrottle:
			r.SetThrottle(opt.deepT())
		case c.SocketOf(me) == leaderSock:
			r.SetThrottle(opt.partialT())
		default:
			r.SetThrottle(opt.deepT())
		}
	}

	// Network phase: scatter-allgather among node leaders.
	timePhase(c, opt.Trace, PhaseNetwork, func() {
		if isLeader && leadC.Size() > 1 {
			lr := 0
			for i := 0; i < leadC.Size(); i++ {
				if leadC.Global(i) == c.Global(rootLeader) {
					lr = i
					break
				}
			}
			scatterAllgather(leadC, lr, bytes)
		}
	})
	if throttle && isLeader {
		r.SetThrottle(power.T0)
	}

	// Intra-node phase: the leader writes the payload into the shared
	// region; the other ranks copy it out concurrently once notified.
	timePhase(c, opt.Trace, PhaseIntra, func() {
		nblock := shmC.TagBlock()
		if shmC.Rank() == 0 {
			localCopy(c, bytes)
			for i := 1; i < shmC.Size(); i++ {
				shmC.Send(i, 0, ctrlTag(nblock, i))
			}
		} else {
			shmC.Recv(0, 0, ctrlTag(nblock, shmC.Rank()))
			if throttle {
				r.SetThrottle(power.T0)
			}
			localCopy(c, bytes)
		}
	})
}

// binomialBcast is the classic binomial tree broadcast.
func binomialBcast(c *mpi.Comm, root int, bytes int64, block int) {
	n, me := c.Size(), c.Rank()
	if n == 1 {
		return
	}
	vr := (me - root + n) % n
	// Receive from the parent: vr with its lowest set bit cleared.
	mask := 1
	for mask < n && vr&mask == 0 {
		mask <<= 1
	}
	if vr != 0 {
		parent := ((vr - mask) + root) % n
		c.Recv(parent, bytes, c.PairTag(block, parent, me))
	} else {
		for mask < n {
			mask <<= 1
		}
	}
	// Forward to children at decreasing distances.
	for m := mask >> 1; m >= 1; m >>= 1 {
		if vr+m < n {
			child := (vr + m + root) % n
			c.Send(child, bytes, c.PairTag(block, me, child))
		}
	}
}

// scatterAllgather implements the large-message broadcast of §VI-A.1:
// binomial scatter of total/N chunks from root, then a ring allgather.
func scatterAllgather(c *mpi.Comm, root int, total int64) {
	n := c.Size()
	if n <= 1 {
		return
	}
	chunk := (total + int64(n) - 1) / int64(n)
	block := c.TagBlock()
	binomialScatter(c, root, chunk, block)
	ringAllgather(c, chunk, block)
}

// binomialScatter distributes per-rank chunks from root: the owner of a
// contiguous vrank range repeatedly ships the upper half's chunks to the
// upper half's first rank.
func binomialScatter(c *mpi.Comm, root int, chunk int64, block int) {
	n, me := c.Size(), c.Rank()
	vr := (me - root + n) % n
	lo, hi := 0, n
	for hi-lo > 1 {
		half := (hi - lo) / 2
		upper := hi - half
		if vr < upper {
			if vr == lo {
				dst := (upper + root) % n
				c.Send(dst, int64(hi-upper)*chunk, c.PairTag(block, me, dst))
			}
			hi = upper
		} else {
			if vr == upper {
				src := (lo + root) % n
				c.Recv(src, int64(hi-upper)*chunk, c.PairTag(block, src, me))
			}
			lo = upper
		}
	}
}

// ringAllgather circulates chunks around the ring for n-1 steps.
func ringAllgather(c *mpi.Comm, chunk int64, block int) {
	n, me := c.Size(), c.Rank()
	right := (me + 1) % n
	left := (me - 1 + n) % n
	for s := 0; s < n-1; s++ {
		tag := block + (1 << 17) + s
		c.Exchange(right, chunk, tag, left, chunk, tag)
	}
}

// leaderSocketOf reports the socket hosting the node leader (shm rank 0).
func leaderSocketOf(shmC *mpi.Comm) topology.SocketID { return shmC.SocketOf(0) }
