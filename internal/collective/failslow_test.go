package collective

import (
	"testing"

	"pacc/internal/fault"
	"pacc/internal/mpi"
	"pacc/internal/simtime"
)

// One rank inside an injected fail-slow window: the resilient allreduce
// must complete with the correct sum on the full group, and the
// communicator it returns must have the suspect demoted to the tail
// (minimum-forwarding) position while every healthy rank keeps its
// relative order. The sum also checks bounded slowdown in miniature: the
// collective finishes, it is not retried into oblivion.
func TestAllreduceSumFTDemotesSlowRank(t *testing.T) {
	const slow = 2
	cfg := ftCfg()
	cfg.Fault = &fault.Spec{Slows: []fault.Slow{
		{Rank: slow, Factor: 8, Start: 0, Duration: simtime.Second},
	}}
	sums := make([]float64, cfg.NProcs)
	newRanks := make([]int, cfg.NProcs)
	sizes := make([]int, cfg.NProcs)
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpi.Rank) {
		sum, fc, err := AllreduceSumFT(mpi.CommWorld(r), 64<<10, float64(r.ID()+1), Options{})
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		sums[r.ID()] = sum
		newRanks[r.ID()] = fc.Rank()
		sizes[r.ID()] = fc.Size()
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.SuspectedRanks(); len(got) != 1 || got[0] != slow {
		t.Fatalf("SuspectedRanks = %v, want [%d]", got, slow)
	}
	want := 0.0
	for g := 0; g < cfg.NProcs; g++ {
		want += float64(g + 1)
	}
	for g := 0; g < cfg.NProcs; g++ {
		if sums[g] != want {
			t.Fatalf("rank %d sum %v, want %v", g, sums[g], want)
		}
		if sizes[g] != cfg.NProcs {
			t.Fatalf("rank %d finished on %d ranks, want %d (slow is not dead)", g, sizes[g], cfg.NProcs)
		}
		wantRank := g
		switch {
		case g == slow:
			wantRank = cfg.NProcs - 1 // demoted to the tail
		case g > slow:
			wantRank = g - 1 // healthy ranks slide up, order preserved
		}
		if newRanks[g] != wantRank {
			t.Fatalf("world rank %d got comm rank %d after demotion, want %d", g, newRanks[g], wantRank)
		}
	}
}

// With detection armed but nobody degraded, the census finds no suspects
// and the resilient runner hands back the original communicator object —
// no demotion, no reorder.
func TestRunResilientNoDemotionWhenHealthy(t *testing.T) {
	cfg := ftCfg()
	cfg.FailSlowDetect = true
	run(t, cfg, func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		fc, err := RunResilient(c, func(cc *mpi.Comm) error {
			_, e := allreduceSumChain(cc, 64<<10, 1, Options{})
			return e
		})
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
		if fc != c {
			t.Errorf("rank %d: healthy armed round changed the communicator", r.ID())
		}
	})
}

// A suspect whose only sickness is a stuck power transition heals inside
// demoteSuspects (RecoverPower) and leaves the round back in sync, even
// though it is still demoted while its lag EWMA decays.
func TestDemoteSuspectsHealsStuckTransition(t *testing.T) {
	cfg := ftCfg()
	cfg.Fault = &fault.Spec{StickFailProb: 0.5}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpi.Rank) {
		if r.ID() == 1 {
			// Provoke the gray failure: throttle-down lands, un-throttle
			// is lost, the rank runs at T4 believing itself at T0.
			provoked := false
			for i := 0; i < 64 && !provoked; i++ {
				r.SetThrottle(4)
				if !r.PowerSynced() {
					continue
				}
				r.SetThrottle(0)
				provoked = !r.PowerSynced()
			}
			if !provoked {
				t.Error("could not provoke a stuck un-throttle at p=0.5")
				return
			}
		}
		_, fc, err := AllreduceSumFT(mpi.CommWorld(r), 64<<10, 1, Options{})
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		if r.ID() == 1 && fc.Rank() != fc.Size()-1 {
			t.Errorf("stuck rank kept comm rank %d, want tail %d", fc.Rank(), fc.Size()-1)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// RecoverPower inside the demotion step re-issued the transition with
	// fresh coin flips; at p=0.5 the bounded retry heals deterministically
	// for this seed.
	if !w.Rank(1).PowerSynced() {
		t.Fatal("suspect left the resilient round with its power state still desynced")
	}
}
