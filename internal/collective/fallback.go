package collective

import (
	"pacc/internal/mpi"
	"pacc/internal/obs"
)

// Graceful degradation for the topology-aware collectives: when the
// fabric reports degraded links, the rack-hierarchy schedules — which
// concentrate traffic on a few leader links — are the wrong shape, so
// the collectives agree to fall back to contention-minimal flat
// variants (binomial trees, neighbor rings) for the rest of the run's
// faulted window. The decision is recorded through the observability
// bus so it shows up in the exported trace and metrics.

// faultAware reports whether the job runs with an active fault injector;
// only then do collectives pay for health agreement. The gate is
// config-derived, so every rank branches identically, and fault-free
// runs keep their exact historical schedules (the nil-injector no-op
// guarantee).
func faultAware(c *mpi.Comm) bool { return c.World().Injector().Enabled() }

// agreeOnFallback decides — consistently across the communicator —
// whether this collective should abandon its topology-aware schedule.
// Ranks reach a collective at different simulated times, so each one
// sampling fabric health independently could diverge and deadlock on
// mismatched schedules; instead comm rank 0 samples and binomially
// broadcasts the verdict, the agreement discipline a subnet-manager
// client would use.
func agreeOnFallback(c *mpi.Comm, block int) bool {
	me, n := c.Rank(), c.Size()
	verdict := 0.0
	if me == 0 && c.Owner().Degraded() {
		verdict = 1
	}
	for mask := 1; mask < n; mask <<= 1 {
		if me < mask {
			if peer := me + mask; peer < n {
				c.SendValue(peer, 0, ctrlTag(block, (1<<13)+peer), verdict)
			}
		} else if me < mask<<1 {
			v, err := c.RecvValue(me-mask, 0, ctrlTag(block, (1<<13)+me))
			if err == nil {
				verdict = v
			}
		}
	}
	return verdict != 0
}

// fallbackToFlat runs the health agreement for one topology-aware
// collective; when the fabric is degraded it records the decision and
// reports true so the caller runs the flat variant instead.
func fallbackToFlat(c *mpi.Comm, op string) bool {
	if !faultAware(c) {
		return false
	}
	if !agreeOnFallback(c, c.TagBlock()) {
		return false
	}
	r := c.Owner()
	if b := r.World().Obs(); b != nil && c.Rank() == 0 {
		b.Add(obs.CtrCollectiveFallbacks, 1)
		b.Instant(r.ObsTrack(), "fallback "+op+" → binomial (degraded fabric)",
			map[string]any{"links": r.World().Fabric().DegradedLinks()})
	}
	return true
}

// AllreduceTopoAware combines bytes across all ranks through the rack
// hierarchy: intra-node reduction to node leaders, leader exchange
// (recursive doubling on a healthy fabric, a neighbor ring after a
// degradation fallback), intra-node broadcast back.
func AllreduceTopoAware(c *mpi.Comm, bytes int64, opt Options) error {
	_, err := AllreduceSum(c, bytes, 0, opt)
	return err
}

// AllreduceSum is AllreduceTopoAware carrying a real float64 sum through
// the simulated message schedule (the wire board): every rank
// contributes v and receives the global sum, so tests can verify data
// correctness end-to-end under injected faults, not just termination.
func AllreduceSum(c *mpi.Comm, bytes int64, v float64, opt Options) (float64, error) {
	if err := checkBytes("allreduce_topo", bytes); err != nil {
		return v, err
	}
	opt.Power = opt.effectivePower(bytes)
	out := v
	timeCollective(c, opt, "allreduce_topo", bytes, func() {
		run := func() { out = allreduceSum(c, bytes, redVal{v: v}, opt).v }
		if opt.Power == FreqScaling || opt.Power == Proposed {
			withFreqScaling(c, run)
			return
		}
		run()
	})
	return out, nil
}

// allreduceSum moves a redVal through the topology-aware schedule: one
// lane for the historical unchecked call, two for the checked variant
// (the checksum shadow rides the same messages). Accumulator writes pass
// through the memory-corruption injector, so an active fault.MemBurst
// can flip a mantissa bit exactly where real hardware would — in the
// reduction buffer, after the transport's ICRC stopped watching.
func allreduceSum(c *mpi.Comm, bytes int64, a redVal, opt Options) redVal {
	r := c.Owner()
	sum := corruptRed(r, a)
	if c.Size() == 1 {
		return sum
	}
	block := c.TagBlock()
	fallback := faultAware(c) && agreeOnFallback(c, block)
	shmC, leadC := c.SplitByNode()
	b := r.World().Obs()

	// Phase 1 (intra-node): locals reduce onto the node leader.
	timePhase(c, opt.Trace, PhaseIntra, func() {
		if shmC.Size() <= 1 {
			return
		}
		if shmC.Rank() != 0 {
			sendRed(shmC, 0, bytes, ctrlTag(block, (1<<14)+shmC.Rank()), sum)
			return
		}
		for i := 1; i < shmC.Size(); i++ {
			x, err := recvRed(shmC, i, bytes, ctrlTag(block, (1<<14)+i), a.checked)
			if err == nil {
				sum = sum.add(x)
			}
			reduceOp(c, bytes, opt)
			sum = corruptRed(r, sum)
		}
	})

	// Phase 2 (inter-node): leader exchange.
	if leadC != nil && leadC.Size() > 1 {
		timePhase(c, opt.Trace, PhaseNetwork, func() {
			p := leadC.Size()
			useRing := fallback || !isPow2(p)
			var sp obs.SpanHandle
			if fallback && leadC.Rank() == 0 {
				b.Add(obs.CtrCollectiveFallbacks, 1)
				sp = b.Begin(r.ObsTrack(), "fallback ring (degraded fabric)",
					map[string]any{"links": r.World().Fabric().DegradedLinks()})
			}
			if useRing {
				sum = ringSum(leadC, c, block, bytes, sum, opt)
			} else {
				sum = rdSum(leadC, c, block, bytes, sum, opt)
			}
			sp.End()
		})
	}

	// Phase 3 (intra-node): leader publishes the result.
	timePhase(c, opt.Trace, PhaseIntra, func() {
		if shmC.Size() <= 1 {
			return
		}
		if shmC.Rank() == 0 {
			for i := 1; i < shmC.Size(); i++ {
				sendRed(shmC, i, bytes, ctrlTag(block, (1<<15)+i), sum)
			}
			return
		}
		if x, err := recvRed(shmC, 0, bytes, ctrlTag(block, (1<<15)+shmC.Rank()), a.checked); err == nil {
			sum = corruptRed(r, x)
		}
	})
	return sum
}

// rdSum runs recursive doubling over lc (power-of-two size): log p rounds
// of pairwise exchange, every leader's link active every round — the
// fastest schedule on a healthy fabric.
func rdSum(lc *mpi.Comm, c *mpi.Comm, block int, bytes int64, v redVal, opt Options) redVal {
	n, me := lc.Size(), lc.Rank()
	r := c.Owner()
	for mask := 1; mask < n; mask <<= 1 {
		peer := me ^ mask
		tag := lc.PairTag(block, me, peer) + (1<<17)*logOf(mask)
		rq := lc.Irecv(peer, bytes, tag)
		sendRed(lc, peer, bytes, tag, v)
		rq.Wait()
		// The Irecv/send split keeps the exchange deadlock-free; the wire
		// lanes of the already-received message are picked up afterwards.
		if ls, err := lc.TakeWires(peer, tag, laneCount(v.checked)); err == nil {
			v = v.add(redOf(ls, v.checked))
		}
		reduceOp(c, bytes, opt)
		v = corruptRed(r, v)
	}
	return v
}

// ringSum reduces along the neighbor ring to leader 0, then passes the
// total back around: 2(p-1) sequential hops, but each hop occupies only
// one uplink/downlink pair, so no transfer shares a degraded link with
// another — the contention-minimal fallback shape.
func ringSum(lc *mpi.Comm, c *mpi.Comm, block int, bytes int64, v redVal, opt Options) redVal {
	p, me := lc.Size(), lc.Rank()
	r := c.Owner()
	// Reduce: partial sums flow p-1 → p-2 → … → 0.
	if me < p-1 {
		x, err := recvRed(lc, me+1, bytes, ctrlTag(block, (1<<16)+me), v.checked)
		if err == nil {
			v = v.add(x)
		}
		reduceOp(c, bytes, opt)
		v = corruptRed(r, v)
	}
	if me > 0 {
		sendRed(lc, me-1, bytes, ctrlTag(block, (1<<16)+me-1), v)
		// Broadcast: the total flows 0 → 1 → … → p-1.
		x, err := recvRed(lc, me-1, bytes, ctrlTag(block, (1<<16)+(1<<10)+me), v.checked)
		if err == nil {
			v = corruptRed(r, x)
		}
	}
	if me < p-1 {
		sendRed(lc, me+1, bytes, ctrlTag(block, (1<<16)+(1<<10)+me+1), v)
	}
	return v
}
