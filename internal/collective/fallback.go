package collective

import (
	"pacc/internal/mpi"
	"pacc/internal/obs"
)

// Graceful degradation for the topology-aware collectives: when the
// fabric reports degraded links, the rack-hierarchy schedules — which
// concentrate traffic on a few leader links — are the wrong shape, so
// the collectives agree to fall back to contention-minimal flat
// variants (binomial trees, neighbor rings) for the rest of the run's
// faulted window. The decision is recorded through the observability
// bus so it shows up in the exported trace and metrics.

// faultAware reports whether the job runs with an active fault injector;
// only then do collectives pay for health agreement. The gate is
// config-derived, so every rank branches identically, and fault-free
// runs keep their exact historical schedules (the nil-injector no-op
// guarantee).
func faultAware(c *mpi.Comm) bool { return c.World().Injector().Enabled() }

// agreeOnFallback decides — consistently across the communicator —
// whether this collective should abandon its topology-aware schedule.
// Ranks reach a collective at different simulated times, so each one
// sampling fabric health independently could diverge and deadlock on
// mismatched schedules; instead comm rank 0 samples and binomially
// broadcasts the verdict, the agreement discipline a subnet-manager
// client would use.
func agreeOnFallback(c *mpi.Comm, block int) bool {
	me, n := c.Rank(), c.Size()
	verdict := 0.0
	if me == 0 && c.Owner().Degraded() {
		verdict = 1
	}
	for mask := 1; mask < n; mask <<= 1 {
		if me < mask {
			if peer := me + mask; peer < n {
				c.SendValue(peer, 0, ctrlTag(block, (1<<13)+peer), verdict)
			}
		} else if me < mask<<1 {
			v, err := c.RecvValue(me-mask, 0, ctrlTag(block, (1<<13)+me))
			if err == nil {
				verdict = v
			}
		}
	}
	return verdict != 0
}

// fallbackToFlat runs the health agreement for one topology-aware
// collective; when the fabric is degraded it records the decision and
// reports true so the caller runs the flat variant instead.
func fallbackToFlat(c *mpi.Comm, op string) bool {
	if !faultAware(c) {
		return false
	}
	if !agreeOnFallback(c, c.TagBlock()) {
		return false
	}
	r := c.Owner()
	if b := r.World().Obs(); b != nil && c.Rank() == 0 {
		b.Add(obs.CtrCollectiveFallbacks, 1)
		b.Instant(r.ObsTrack(), "fallback "+op+" → binomial (degraded fabric)",
			map[string]any{"links": r.World().Fabric().DegradedLinks()})
	}
	return true
}

// AllreduceTopoAware combines bytes across all ranks through the rack
// hierarchy: intra-node reduction to node leaders, leader exchange
// (recursive doubling on a healthy fabric, a neighbor ring after a
// degradation fallback), intra-node broadcast back.
func AllreduceTopoAware(c *mpi.Comm, bytes int64, opt Options) error {
	_, err := AllreduceSum(c, bytes, 0, opt)
	return err
}

// AllreduceSum is AllreduceTopoAware carrying a real float64 sum through
// the simulated message schedule (the wire board): every rank
// contributes v and receives the global sum, so tests can verify data
// correctness end-to-end under injected faults, not just termination.
func AllreduceSum(c *mpi.Comm, bytes int64, v float64, opt Options) (float64, error) {
	if err := checkBytes("allreduce_topo", bytes); err != nil {
		return v, err
	}
	opt.Power = opt.effectivePower(bytes)
	out := v
	timeCollective(c, opt, "allreduce_topo", bytes, func() {
		run := func() { out = allreduceSum(c, bytes, v, opt) }
		if opt.Power == FreqScaling || opt.Power == Proposed {
			withFreqScaling(c, run)
			return
		}
		run()
	})
	return out, nil
}

func allreduceSum(c *mpi.Comm, bytes int64, v float64, opt Options) float64 {
	if c.Size() == 1 {
		return v
	}
	block := c.TagBlock()
	fallback := faultAware(c) && agreeOnFallback(c, block)
	shmC, leadC := c.SplitByNode()
	r := c.Owner()
	b := r.World().Obs()

	// Phase 1 (intra-node): locals reduce onto the node leader.
	sum := v
	timePhase(c, opt.Trace, PhaseIntra, func() {
		if shmC.Size() <= 1 {
			return
		}
		if shmC.Rank() != 0 {
			shmC.SendValue(0, bytes, ctrlTag(block, (1<<14)+shmC.Rank()), sum)
			return
		}
		for i := 1; i < shmC.Size(); i++ {
			x, err := shmC.RecvValue(i, bytes, ctrlTag(block, (1<<14)+i))
			if err == nil {
				sum += x
			}
			reduceOp(c, bytes, opt)
		}
	})

	// Phase 2 (inter-node): leader exchange.
	if leadC != nil && leadC.Size() > 1 {
		timePhase(c, opt.Trace, PhaseNetwork, func() {
			p := leadC.Size()
			useRing := fallback || !isPow2(p)
			var sp obs.SpanHandle
			if fallback && leadC.Rank() == 0 {
				b.Add(obs.CtrCollectiveFallbacks, 1)
				sp = b.Begin(r.ObsTrack(), "fallback ring (degraded fabric)",
					map[string]any{"links": r.World().Fabric().DegradedLinks()})
			}
			if useRing {
				sum = ringSum(leadC, c, block, bytes, sum, opt)
			} else {
				sum = rdSum(leadC, c, block, bytes, sum, opt)
			}
			sp.End()
		})
	}

	// Phase 3 (intra-node): leader publishes the result.
	timePhase(c, opt.Trace, PhaseIntra, func() {
		if shmC.Size() <= 1 {
			return
		}
		if shmC.Rank() == 0 {
			for i := 1; i < shmC.Size(); i++ {
				shmC.SendValue(i, bytes, ctrlTag(block, (1<<15)+i), sum)
			}
			return
		}
		if x, err := shmC.RecvValue(0, bytes, ctrlTag(block, (1<<15)+shmC.Rank())); err == nil {
			sum = x
		}
	})
	return sum
}

// rdSum runs recursive doubling over lc (power-of-two size): log p rounds
// of pairwise exchange, every leader's link active every round — the
// fastest schedule on a healthy fabric.
func rdSum(lc *mpi.Comm, c *mpi.Comm, block int, bytes int64, v float64, opt Options) float64 {
	n, me := lc.Size(), lc.Rank()
	for mask := 1; mask < n; mask <<= 1 {
		peer := me ^ mask
		tag := lc.PairTag(block, me, peer) + (1<<17)*logOf(mask)
		rq := lc.Irecv(peer, bytes, tag)
		lc.SendValue(peer, bytes, tag, v)
		rq.Wait()
		if x, ok := takeWireOf(lc, peer, tag); ok {
			v += x
		}
		reduceOp(c, bytes, opt)
	}
	return v
}

// takeWireOf picks up the wire-board value of an already-received message
// (the Irecv/SendValue split above keeps the exchange deadlock-free).
func takeWireOf(lc *mpi.Comm, src, tag int) (float64, bool) {
	return lc.Owner().TakeWire(lc.Global(src), tag)
}

// ringSum reduces along the neighbor ring to leader 0, then passes the
// total back around: 2(p-1) sequential hops, but each hop occupies only
// one uplink/downlink pair, so no transfer shares a degraded link with
// another — the contention-minimal fallback shape.
func ringSum(lc *mpi.Comm, c *mpi.Comm, block int, bytes int64, v float64, opt Options) float64 {
	p, me := lc.Size(), lc.Rank()
	// Reduce: partial sums flow p-1 → p-2 → … → 0.
	if me < p-1 {
		x, err := lc.RecvValue(me+1, bytes, ctrlTag(block, (1<<16)+me))
		if err == nil {
			v += x
		}
		reduceOp(c, bytes, opt)
	}
	if me > 0 {
		lc.SendValue(me-1, bytes, ctrlTag(block, (1<<16)+me-1), v)
		// Broadcast: the total flows 0 → 1 → … → p-1.
		x, err := lc.RecvValue(me-1, bytes, ctrlTag(block, (1<<16)+(1<<10)+me))
		if err == nil {
			v = x
		}
	}
	if me < p-1 {
		lc.SendValue(me+1, bytes, ctrlTag(block, (1<<16)+(1<<10)+me+1), v)
	}
	return v
}
