package collective

import (
	"pacc/internal/mpi"
)

// Allreduce combines bytes across all ranks and leaves the result
// everywhere. Power-of-two communicators use recursive doubling; others
// compose Reduce + Bcast. With Proposed the composition inherits the
// multi-core aware throttle schedules of both halves; recursive doubling
// has every rank on the network, so Proposed reduces to per-call DVFS
// there (the §V-B observation about fully-participating algorithms).
func Allreduce(c *mpi.Comm, bytes int64, opt Options) error {
	if err := checkBytes("allreduce", bytes); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	timeCollective(c, opt, "allreduce", bytes, func() {
		n := c.Size()
		if n == 1 {
			return
		}
		if isPow2(n) && opt.Power != Proposed {
			run := func() { recursiveDoublingAllreduce(c, bytes, opt) }
			if opt.Power == FreqScaling {
				withFreqScaling(c, run)
				return
			}
			run()
			return
		}
		// Composition path (and the Proposed scheme).
		inner := opt
		inner.Trace = nil // phases accounted by the inner calls' names
		Reduce(c, 0, bytes, inner)
		Bcast(c, 0, bytes, inner)
	})
	return nil
}

// AllreduceRD always runs recursive doubling (power-of-two only; falls
// back to the composition otherwise). Plan-backed on the power-of-two
// path.
func AllreduceRD(c *mpi.Comm, bytes int64, opt Options) error {
	if err := checkBytes("allreduce_rd", bytes); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	var err error
	timeCollective(c, opt, "allreduce_rd", bytes, func() {
		n := c.Size()
		if !isPow2(n) {
			inner := opt
			inner.Trace = nil
			Reduce(c, 0, bytes, inner)
			Bcast(c, 0, bytes, inner)
			return
		}
		if opt.refImperative {
			run := func() { recursiveDoublingAllreduce(c, bytes, opt) }
			if opt.Power == FreqScaling || opt.Power == Proposed {
				withFreqScaling(c, run)
				return
			}
			run()
			return
		}
		err = runPlanned(c, "allreduce", "allreduce_rd", planSpec(bytes, nil, opt), opt)
	})
	return err
}

func recursiveDoublingAllreduce(c *mpi.Comm, bytes int64, opt Options) {
	n, me := c.Size(), c.Rank()
	block := c.TagBlock()
	for mask := 1; mask < n; mask <<= 1 {
		peer := me ^ mask
		tag := c.PairTag(block, me, peer) + (1<<17)*logOf(mask)
		c.Exchange(peer, bytes, tag, peer, bytes, tag)
		reduceOp(c, bytes, opt)
	}
}
