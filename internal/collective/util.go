package collective

// Shared power-of-two arithmetic used by the recursive-doubling,
// halving, hypercube and tournament schedules. One definition for the
// whole package — the per-algorithm copies these helpers replace drifted
// easily and were tested nowhere.

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// logOf returns floor(log2(mask)) for mask >= 1: the round number of the
// power-of-two distance mask in a recursive-doubling schedule.
func logOf(mask int) int {
	l := 0
	for mask > 1 {
		mask >>= 1
		l++
	}
	return l
}
