package collective

import (
	"testing"
	"testing/quick"

	"pacc/internal/mpi"
	"pacc/internal/topology"
)

// expectedAlltoallWireBytes is the payload an alltoall must move across
// the fabric: every ordered inter-node pair carries M bytes (intra-node
// traffic uses shared memory in polling mode).
func expectedAlltoallWireBytes(nprocs, ppn int, m int64) int64 {
	return int64(nprocs) * int64(nprocs-ppn) * m
}

// wireBytesFor runs one collective and returns the fabric payload moved.
func wireBytesFor(t *testing.T, cfg mpi.Config, body func(c *mpi.Comm)) int64 {
	t.Helper()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpi.Rank) { body(mpi.CommWorld(r)) })
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return w.Fabric().BytesMoved()
}

// TestAlltoallByteConservation: the pairwise and power-aware schedules
// must move exactly the same wire payload — the proposed algorithm
// reorders the exchanges, it does not change them.
func TestAlltoallByteConservation(t *testing.T) {
	const m = 64 << 10
	for _, layout := range []struct{ nprocs, ppn int }{
		{32, 8}, {64, 8}, {16, 8},
	} {
		cfg := mpi.DefaultConfig()
		cfg.NProcs = layout.nprocs
		cfg.PPN = layout.ppn
		cfg.Topo.Nodes = layout.nprocs / layout.ppn
		want := expectedAlltoallWireBytes(layout.nprocs, layout.ppn, m)
		gotDefault := wireBytesFor(t, cfg, func(c *mpi.Comm) {
			AlltoallPairwise(c, m, Options{})
		})
		gotProposed := wireBytesFor(t, cfg, func(c *mpi.Comm) {
			AlltoallPairwise(c, m, Options{Power: Proposed})
		})
		if gotDefault != want {
			t.Errorf("%d/%d: default moved %d bytes, want %d", layout.nprocs, layout.ppn, gotDefault, want)
		}
		if gotProposed != want {
			t.Errorf("%d/%d: proposed moved %d bytes, want %d", layout.nprocs, layout.ppn, gotProposed, want)
		}
	}
}

// TestAlltoallvByteConservation: vector exchanges conserve the summed
// matrix of inter-node sizes under both schedules.
func TestAlltoallvByteConservation(t *testing.T) {
	cfg := mpi.DefaultConfig()
	cfg.NProcs = 32
	cfg.PPN = 8
	cfg.Topo.Nodes = 4
	sizes := func(src, dst int) int64 { return int64(512 * (1 + (src*7+dst*3)%5)) }
	var want int64
	for s := 0; s < 32; s++ {
		for d := 0; d < 32; d++ {
			if s/8 != d/8 { // different nodes
				want += sizes(s, d)
			}
		}
	}
	// All sizes here are eager; eager payloads move as-is.
	gotDefault := wireBytesFor(t, cfg, func(c *mpi.Comm) {
		Alltoallv(c, sizes, Options{})
	})
	gotProposed := wireBytesFor(t, cfg, func(c *mpi.Comm) {
		Alltoallv(c, sizes, Options{Power: Proposed})
	})
	if gotDefault != want {
		t.Errorf("default moved %d, want %d", gotDefault, want)
	}
	if gotProposed != want {
		t.Errorf("proposed moved %d, want %d", gotProposed, want)
	}
}

// TestBcastByteConservation: scatter-allgather among N leaders moves
// (N/2)*log2(N)*chunk in the binomial scatter (each chunk travels the
// tree path to its owner) plus N*(N-1)*chunk in the ring allgather.
func TestBcastByteConservation(t *testing.T) {
	const m = 1 << 20
	cfg := mpi.DefaultConfig() // 8 nodes
	n := int64(8)
	chunk := (int64(m) + n - 1) / n
	want := (n/2)*3*chunk + n*(n-1)*chunk
	got := wireBytesFor(t, cfg, func(c *mpi.Comm) {
		Bcast(c, 0, m, Options{})
	})
	if got != want {
		t.Errorf("bcast moved %d wire bytes, want %d", got, want)
	}
}

// TestReduceByteConservation: binomial reduce among N leaders moves
// (N-1) full-size messages.
func TestReduceByteConservation(t *testing.T) {
	const m = 256 << 10
	cfg := mpi.DefaultConfig()
	want := int64(7) * m
	got := wireBytesFor(t, cfg, func(c *mpi.Comm) {
		Reduce(c, 0, m, Options{})
	})
	if got != want {
		t.Errorf("reduce moved %d wire bytes, want %d", got, want)
	}
}

// TestOddNodeCounts: the tournament schedules must complete (with byes)
// on odd and non-power-of-two node counts, for all schemes.
func TestOddNodeCounts(t *testing.T) {
	for _, nodes := range []int{3, 5, 6, 7} {
		cfg := mpi.DefaultConfig()
		cfg.Topo.Nodes = nodes
		cfg.NProcs = nodes * 8
		cfg.PPN = 8
		for _, mode := range []PowerMode{NoPower, Proposed} {
			done := 0
			w, err := mpi.NewWorld(cfg)
			if err != nil {
				t.Fatal(err)
			}
			w.Launch(func(r *mpi.Rank) {
				AlltoallPairwise(mpi.CommWorld(r), 32<<10, Options{Power: mode})
				done++
			})
			if _, err := w.Run(); err != nil {
				t.Fatalf("nodes=%d mode=%v: %v", nodes, mode, err)
			}
			if done != cfg.NProcs {
				t.Fatalf("nodes=%d mode=%v: %d/%d ranks finished", nodes, mode, done, cfg.NProcs)
			}
		}
	}
}

// TestOddNodeByteConservation: byes must not drop any pair's exchange.
func TestOddNodeByteConservation(t *testing.T) {
	const m = 16 << 10
	cfg := mpi.DefaultConfig()
	cfg.Topo.Nodes = 5
	cfg.NProcs = 40
	cfg.PPN = 8
	want := expectedAlltoallWireBytes(40, 8, m)
	for _, mode := range []PowerMode{NoPower, Proposed} {
		got := wireBytesFor(t, cfg, func(c *mpi.Comm) {
			AlltoallPairwise(c, m, Options{Power: mode})
		})
		if got != want {
			t.Errorf("mode=%v: moved %d bytes, want %d", mode, got, want)
		}
	}
}

// TestScatterBindingAdapts: with scatter binding the socket groups
// interleave ranks (§V-C); the power-aware algorithm must still complete
// and conserve bytes.
func TestScatterBindingAdapts(t *testing.T) {
	cfg := mpi.DefaultConfig()
	cfg.Bind = topology.BindScatter
	const m = 32 << 10
	want := expectedAlltoallWireBytes(64, 8, m)
	got := wireBytesFor(t, cfg, func(c *mpi.Comm) {
		AlltoallPairwise(c, m, Options{Power: Proposed})
	})
	if got != want {
		t.Errorf("scatter binding: moved %d bytes, want %d", got, want)
	}
}

// TestEnergyNeverNegativeProperty: any random mix of collectives yields
// positive elapsed time and energy, and proposed never exceeds default
// energy by more than its runtime overhead bound.
func TestEnergyNeverNegativeProperty(t *testing.T) {
	f := func(sel uint8, sizeSel uint8) bool {
		cfg := mpi.DefaultConfig()
		cfg.NProcs = 16
		cfg.PPN = 8
		cfg.Topo.Nodes = 2
		bytes := int64(sizeSel%32+1) << 10
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			return false
		}
		w.Launch(func(r *mpi.Rank) {
			c := mpi.CommWorld(r)
			switch sel % 5 {
			case 0:
				Alltoall(c, bytes, Options{Power: Proposed})
			case 1:
				Bcast(c, 0, bytes, Options{Power: Proposed})
			case 2:
				Reduce(c, 0, bytes, Options{Power: FreqScaling})
			case 3:
				Allgather(c, bytes, Options{Power: Proposed})
			case 4:
				Allreduce(c, bytes, Options{})
			}
		})
		d, err := w.Run()
		if err != nil {
			return false
		}
		return d > 0 && w.Station().EnergyJoules() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
