package collective

import (
	"pacc/internal/mpi"
	"pacc/internal/power"
)

// Allgather gathers bytes from every rank to every rank using the
// multi-core aware scheme of [15]: intra-node gather to the leader, ring
// allgather of node-sized blocks across leaders, intra-node distribution.
// Proposed applies the §V-B throttle schedule during the leader phase.
func Allgather(c *mpi.Comm, bytes int64, opt Options) error {
	if err := checkBytes("allgather", bytes); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	timeCollective(c, opt, "allgather", bytes, func() {
		switch opt.Power {
		case Proposed:
			withFreqScaling(c, func() { allgatherMC(c, bytes, opt, true) })
		case FreqScaling:
			withFreqScaling(c, func() { allgatherMC(c, bytes, opt, false) })
		default:
			allgatherMC(c, bytes, opt, false)
		}
	})
	return nil
}

// AllgatherRing runs the flat ring algorithm: P-1 steps, each forwarding
// one rank's block. Plan-backed: the call builds (or auto-selects, see
// Options.Plan) a verified schedule and runs it through the plan
// executor.
func AllgatherRing(c *mpi.Comm, bytes int64, opt Options) error {
	if err := checkBytes("allgather_ring", bytes); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	var err error
	timeCollective(c, opt, "allgather_ring", bytes, func() {
		if opt.refImperative {
			run := func() { ringAllgather(c, bytes, c.TagBlock()) }
			if opt.Power == FreqScaling || opt.Power == Proposed {
				withFreqScaling(c, run)
				return
			}
			run()
			return
		}
		err = runPlanned(c, "allgather", "allgather_ring", planSpec(bytes, nil, opt), opt)
	})
	return err
}

// AllgatherRD runs the recursive-doubling algorithm (power-of-two sizes
// double the exchanged block each round); non-power-of-two communicators
// fall back to the ring. Plan-backed.
func AllgatherRD(c *mpi.Comm, bytes int64, opt Options) error {
	if err := checkBytes("allgather_rd", bytes); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	var err error
	timeCollective(c, opt, "allgather_rd", bytes, func() {
		if opt.refImperative {
			run := func() {
				if !isPow2(c.Size()) {
					ringAllgather(c, bytes, c.TagBlock())
					return
				}
				recursiveDoublingAllgather(c, bytes, c.TagBlock())
			}
			if opt.Power == FreqScaling || opt.Power == Proposed {
				withFreqScaling(c, run)
				return
			}
			run()
			return
		}
		canonical := "allgather_rd"
		if !isPow2(c.Size()) {
			canonical = "allgather_ring"
		}
		err = runPlanned(c, "allgather", canonical, planSpec(bytes, nil, opt), opt)
	})
	return err
}

func recursiveDoublingAllgather(c *mpi.Comm, bytes int64, block int) {
	n, me := c.Size(), c.Rank()
	have := bytes
	for mask := 1; mask < n; mask <<= 1 {
		peer := me ^ mask
		tag := c.PairTag(block, me, peer) + (1<<17)*logOf(mask)
		c.Exchange(peer, have, tag, peer, have, tag)
		have *= 2
	}
}

func allgatherMC(c *mpi.Comm, bytes int64, opt Options, throttle bool) {
	r := c.Owner()
	me := c.Rank()
	if c.Size() == 1 {
		return
	}
	shmC, leadC := c.SplitByNode()
	block := c.TagBlock()
	isLeader := leadC != nil
	leaderSock := leaderSocketOf(shmC)
	ppn := int64(shmC.Size())

	// Intra gather: non-leaders deposit their block, leader collects.
	timePhase(c, opt.Trace, PhaseIntra, func() {
		if shmC.Rank() != 0 {
			localCopy(c, bytes)
			shmC.Send(0, 0, ctrlTag(block, shmC.Rank()))
		} else {
			for i := 1; i < shmC.Size(); i++ {
				shmC.Recv(i, 0, ctrlTag(block, i))
				localCopy(c, bytes)
			}
		}
	})

	if throttle {
		switch {
		case opt.CoreGranularThrottle && isLeader:
		case opt.CoreGranularThrottle:
			r.SetThrottle(opt.deepT())
		case c.SocketOf(me) == leaderSock:
			r.SetThrottle(opt.partialT())
		default:
			r.SetThrottle(opt.deepT())
		}
	}

	// Network phase: ring allgather of node blocks (ppn * bytes each).
	timePhase(c, opt.Trace, PhaseNetwork, func() {
		if isLeader && leadC.Size() > 1 {
			ringAllgather(leadC, ppn*bytes, leadC.TagBlock())
		}
	})
	if throttle && isLeader {
		r.SetThrottle(power.T0)
	}

	// Intra distribution: leader publishes the full P*bytes result; the
	// others copy it out.
	timePhase(c, opt.Trace, PhaseIntra, func() {
		total := int64(c.Size()) * bytes
		nblock := shmC.TagBlock()
		if shmC.Rank() == 0 {
			localCopy(c, total)
			for i := 1; i < shmC.Size(); i++ {
				shmC.Send(i, 0, ctrlTag(nblock, i))
			}
		} else {
			shmC.Recv(0, 0, ctrlTag(nblock, shmC.Rank()))
			if throttle {
				r.SetThrottle(power.T0)
			}
			localCopy(c, total)
		}
	})
}
