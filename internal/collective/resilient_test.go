package collective

import (
	"errors"
	"testing"

	"pacc/internal/fault"
	"pacc/internal/mpi"
	"pacc/internal/simtime"
)

// ftCfg is a small world for crash tests: 8 ranks over 2 nodes.
func ftCfg() mpi.Config {
	c := mpi.DefaultConfig()
	c.NProcs = 8
	c.PPN = 4
	return c
}

func TestAllreduceSumFTHealthy(t *testing.T) {
	cfg := ftCfg()
	sums := make([]float64, cfg.NProcs)
	sizes := make([]int, cfg.NProcs)
	run(t, cfg, func(r *mpi.Rank) {
		sum, fc, err := AllreduceSumFT(mpi.CommWorld(r), 64<<10, float64(r.ID()+1), Options{Power: FreqScaling})
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
		sums[r.ID()] = sum
		sizes[r.ID()] = fc.Size()
	})
	want := 0.0
	for g := 0; g < cfg.NProcs; g++ {
		want += float64(g + 1)
	}
	for g := 0; g < cfg.NProcs; g++ {
		if sums[g] != want {
			t.Fatalf("rank %d sum %v, want %v", g, sums[g], want)
		}
		if sizes[g] != cfg.NProcs {
			t.Fatalf("rank %d finished on %d ranks, want %d", g, sizes[g], cfg.NProcs)
		}
	}
}

// TestAllreduceSumFTCrashMidPhase is the acceptance scenario: one rank
// dies mid-collective, the survivors revoke, agree, shrink and re-run,
// converging on the survivor-only sum with every survivor core back at
// fmax / T0.
func TestAllreduceSumFTCrashMidPhase(t *testing.T) {
	const dead = 3
	cfg := ftCfg()
	cfg.Fault = &fault.Spec{Crashes: []fault.Crash{{Rank: dead, At: 30 * simtime.Microsecond}}}
	sums := make([]float64, cfg.NProcs)
	sizes := make([]int, cfg.NProcs)
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpi.Rank) {
		sum, fc, err := AllreduceSumFT(mpi.CommWorld(r), 64<<10, float64(r.ID()+1), Options{Power: FreqScaling})
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
		sums[r.ID()] = sum
		sizes[r.ID()] = fc.Size()
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for g := 0; g < cfg.NProcs; g++ {
		if g != dead {
			want += float64(g + 1)
		}
	}
	for g := 0; g < cfg.NProcs; g++ {
		if g == dead {
			if w.Alive(g) {
				t.Fatalf("rank %d should be dead", g)
			}
			continue
		}
		if sums[g] != want {
			t.Fatalf("survivor %d sum %v, want %v", g, sums[g], want)
		}
		if sizes[g] != cfg.NProcs-1 {
			t.Fatalf("survivor %d finished on %d ranks, want %d", g, sizes[g], cfg.NProcs-1)
		}
		core := w.Rank(g).Core()
		if core.FreqGHz() != cfg.Power.FMaxGHz || core.Throttle() != 0 {
			t.Fatalf("survivor %d left at %.2f GHz / %v, want fmax / T0", g, core.FreqGHz(), core.Throttle())
		}
	}
}

// TestAllreduceFTPlanCrash exercises the plan-backed path: the initial
// power-of-two group runs recursive doubling; after the crash the 7-rank
// survivor group cannot build it, so selection falls back to the chain,
// re-verifies, and re-executes.
func TestAllreduceFTPlanCrash(t *testing.T) {
	const dead = 5
	cfg := ftCfg()
	cfg.Fault = &fault.Spec{Crashes: []fault.Crash{{Rank: dead, At: 40 * simtime.Microsecond}}}
	sizes := make([]int, cfg.NProcs)
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpi.Rank) {
		fc, err := AllreduceFT(mpi.CommWorld(r), 64<<10, Options{Power: FreqScaling, Plan: "allreduce_rd"})
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
		sizes[r.ID()] = fc.Size()
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < cfg.NProcs; g++ {
		if g == dead {
			continue
		}
		if sizes[g] != cfg.NProcs-1 {
			t.Fatalf("survivor %d finished on %d ranks, want %d", g, sizes[g], cfg.NProcs-1)
		}
		core := w.Rank(g).Core()
		if core.FreqGHz() != cfg.Power.FMaxGHz || core.Throttle() != 0 {
			t.Fatalf("survivor %d left at %.2f GHz / %v, want fmax / T0", g, core.FreqGHz(), core.Throttle())
		}
	}
}

// RunResilient must hand non-failure errors straight back: only crash
// detection and revocation feed the recovery loop.
func TestRunResilientPassesThroughPlainErrors(t *testing.T) {
	cfg := ftCfg()
	boom := errors.New("boom")
	run(t, cfg, func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		fc, err := RunResilient(c, func(cc *mpi.Comm) error { return boom })
		if !errors.Is(err, boom) {
			t.Errorf("rank %d got %v, want boom", r.ID(), err)
		}
		if fc != c {
			t.Errorf("rank %d: communicator changed on a non-failure error", r.ID())
		}
	})
}
