package collective

import (
	"strings"
	"testing"

	"pacc/internal/mpi"
	"pacc/internal/simtime"
)

// runV launches body on a world of the given shape and returns the
// elapsed time and the first error any rank's collective call reported.
func runV(t *testing.T, procs, ppn int, body func(c *mpi.Comm) error) (simtime.Duration, error) {
	t.Helper()
	cfg := mpi.DefaultConfig()
	cfg.NProcs, cfg.PPN = procs, ppn
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var callErr error
	w.Launch(func(r *mpi.Rank) {
		if err := body(mpi.CommWorld(r)); err != nil && callErr == nil {
			callErr = err
		}
	})
	d, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	return d, callErr
}

// TestAlltoallvNonUniform: a skewed per-pair matrix (volume grows with
// src and dst) must complete on power-of-two and non-power-of-two
// communicators under every power scheme.
func TestAlltoallvNonUniform(t *testing.T) {
	skew := func(src, dst int) int64 { return int64(1+src) * int64(1+dst) * 1024 }
	for _, shape := range []struct{ procs, ppn int }{{8, 4}, {12, 4}, {16, 8}} {
		for _, mode := range []PowerMode{NoPower, FreqScaling, Proposed} {
			d, err := runV(t, shape.procs, shape.ppn, func(c *mpi.Comm) error {
				return Alltoallv(c, skew, Options{Power: mode})
			})
			if err != nil {
				t.Fatalf("%dx%d mode %v: %v", shape.procs, shape.ppn, mode, err)
			}
			if d <= 0 {
				t.Fatalf("%dx%d mode %v: empty run", shape.procs, shape.ppn, mode)
			}
		}
	}
}

// TestAlltoallvZeroRowAndColumn: rank 0 sends nothing (zero row) and the
// last rank receives nothing (zero column). Both are legal and must not
// deadlock the pairwise schedule — the exchange still happens with
// zero-byte messages on one side.
func TestAlltoallvZeroRowAndColumn(t *testing.T) {
	const procs, ppn = 8, 4
	sizeOf := func(src, dst int) int64 {
		if src == 0 || dst == procs-1 {
			return 0
		}
		return 4096
	}
	for _, mode := range []PowerMode{NoPower, Proposed} {
		d, err := runV(t, procs, ppn, func(c *mpi.Comm) error {
			return Alltoallv(c, sizeOf, Options{Power: mode})
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if d <= 0 {
			t.Fatalf("mode %v: empty run", mode)
		}
	}
}

// TestAlltoallvDeterministic: the same matrix reproduces the run
// bit-identically — the v-variant schedule must not depend on map
// iteration or any other nondeterminism.
func TestAlltoallvDeterministic(t *testing.T) {
	sizeOf := func(src, dst int) int64 { return int64((src*7+dst*3)%5) * 2048 }
	elapsed := func() simtime.Duration {
		d, err := runV(t, 12, 4, func(c *mpi.Comm) error {
			return Alltoallv(c, sizeOf, Options{})
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if d1, d2 := elapsed(), elapsed(); d1 != d2 {
		t.Fatalf("identical runs differ: %v vs %v", d1, d2)
	}
}

// TestAllgathervZeroBlocks: some ranks contribute nothing; the ring must
// still circulate every (possibly empty) block.
func TestAllgathervZeroBlocks(t *testing.T) {
	sizeOf := func(rank int) int64 {
		if rank%3 == 0 {
			return 0
		}
		return int64(rank) * 1024
	}
	d, err := runV(t, 9, 3, func(c *mpi.Comm) error {
		return Allgatherv(c, sizeOf, Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("empty run")
	}
}

// TestScattervGathervZeroBlocks: zero-size blocks traverse the binomial
// split/merge schedules without error, for every root.
func TestScattervGathervZeroBlocks(t *testing.T) {
	const procs, ppn = 8, 4
	sizeOf := func(rank int) int64 {
		if rank == 2 || rank == 5 {
			return 0
		}
		return 8192
	}
	for root := 0; root < procs; root++ {
		if _, err := runV(t, procs, ppn, func(c *mpi.Comm) error {
			if err := Scatterv(c, root, sizeOf, Options{}); err != nil {
				return err
			}
			return Gatherv(c, root, sizeOf, Options{})
		}); err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
	}
}

// TestVvariantsRejectBadArguments: negative entries and nil size
// functions are rejected with a returned error before any rank touches
// the network.
func TestVvariantsRejectBadArguments(t *testing.T) {
	cases := map[string]func(c *mpi.Comm) error{
		"alltoallv-negative": func(c *mpi.Comm) error {
			return Alltoallv(c, func(src, dst int) int64 {
				if src == 1 && dst == 2 {
					return -1
				}
				return 64
			}, Options{})
		},
		"alltoallv-nil": func(c *mpi.Comm) error {
			return Alltoallv(c, nil, Options{})
		},
		"allgatherv-negative": func(c *mpi.Comm) error {
			return Allgatherv(c, func(rank int) int64 { return int64(-rank) - 1 }, Options{})
		},
		"allgatherv-nil": func(c *mpi.Comm) error {
			return Allgatherv(c, nil, Options{})
		},
		"scatterv-bad-root": func(c *mpi.Comm) error {
			return Scatterv(c, c.Size(), func(rank int) int64 { return 64 }, Options{})
		},
		"gatherv-negative": func(c *mpi.Comm) error {
			return Gatherv(c, 0, func(rank int) int64 { return -64 }, Options{})
		},
	}
	for name, call := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := runV(t, 4, 4, call)
			if err == nil {
				t.Fatal("malformed arguments accepted")
			}
			if !strings.Contains(err.Error(), "collective:") {
				t.Errorf("error missing collective prefix: %v", err)
			}
		})
	}
}

// TestFixedSizeEntryPointsRejectNonPositive: every fixed-size entry point
// returns an error for zero and negative byte counts.
func TestFixedSizeEntryPointsRejectNonPositive(t *testing.T) {
	entries := map[string]func(c *mpi.Comm, bytes int64) error{
		"alltoall":          func(c *mpi.Comm, b int64) error { return Alltoall(c, b, Options{}) },
		"alltoall_pairwise": func(c *mpi.Comm, b int64) error { return AlltoallPairwise(c, b, Options{}) },
		"alltoall_bruck":    func(c *mpi.Comm, b int64) error { return AlltoallBruck(c, b, Options{}) },
		"alltoall_ring":     func(c *mpi.Comm, b int64) error { return AlltoallRing(c, b, Options{}) },
		"bcast":             func(c *mpi.Comm, b int64) error { return Bcast(c, 0, b, Options{}) },
		"bcast_binomial":    func(c *mpi.Comm, b int64) error { return BcastBinomial(c, 0, b, Options{}) },
		"reduce":            func(c *mpi.Comm, b int64) error { return Reduce(c, 0, b, Options{}) },
		"allgather":         func(c *mpi.Comm, b int64) error { return Allgather(c, b, Options{}) },
		"allgather_ring":    func(c *mpi.Comm, b int64) error { return AllgatherRing(c, b, Options{}) },
		"allgather_rd":      func(c *mpi.Comm, b int64) error { return AllgatherRD(c, b, Options{}) },
		"allreduce":         func(c *mpi.Comm, b int64) error { return Allreduce(c, b, Options{}) },
		"allreduce_rd":      func(c *mpi.Comm, b int64) error { return AllreduceRD(c, b, Options{}) },
		"reduce_scatter":    func(c *mpi.Comm, b int64) error { return ReduceScatter(c, b, Options{}) },
		"gather":            func(c *mpi.Comm, b int64) error { return Gather(c, 0, b, Options{}) },
		"scatter":           func(c *mpi.Comm, b int64) error { return Scatter(c, 0, b, Options{}) },
	}
	for name, call := range entries {
		t.Run(name, func(t *testing.T) {
			for _, bad := range []int64{0, -1, -4096} {
				_, err := runV(t, 4, 4, func(c *mpi.Comm) error { return call(c, bad) })
				if err == nil {
					t.Errorf("bytes=%d accepted", bad)
				}
			}
		})
	}
}
