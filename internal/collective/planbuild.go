package collective

import (
	"fmt"

	"pacc/internal/plan"
	"pacc/internal/power"
)

// Plan builders: the stock algorithms expressed as schedule IR. Each
// builder replicates its imperative ancestor step for step — same peers,
// same payload sizes, same relative tag formulas, same phase markers and
// power transitions — so that executing the built plan is observably
// identical (simulated time, per-core energy, exported trace) to calling
// the original function. The differential tests in plandiff_test.go hold
// the two forms to that standard.

func init() {
	plan.Register(plan.Builder{Name: "allgather_ring", Op: "allgather", Build: buildAllgatherRing})
	plan.Register(plan.Builder{Name: "allgather_rd", Op: "allgather", Build: buildAllgatherRD})
	plan.Register(plan.Builder{Name: "allreduce_rd", Op: "allreduce", Build: buildAllreduceRD})
	plan.Register(plan.Builder{Name: "allreduce_chain", Op: "allreduce", Build: buildAllreduceChain})
	plan.Register(plan.Builder{Name: "bcast_binomial", Op: "bcast", Build: buildBcastBinomial})
	plan.Register(plan.Builder{Name: "alltoall_pairwise", Op: "alltoall", Build: buildAlltoallPairwise})
	plan.Register(plan.Builder{Name: "alltoall_bruck", Op: "alltoall", Build: buildAlltoallBruck})
	plan.Register(plan.Builder{Name: "alltoall_phased", Op: "alltoall", Build: buildAlltoallPhased})
}

// relPair mirrors Comm.PairTag without the block offset: the canonical
// tag of the unordered rank pair (a, b) in a communicator of p ranks.
func relPair(p, a, b int) int {
	if a > b {
		a, b = b, a
	}
	return a*p + b
}

// relCtrl mirrors ctrlTag without the block offset.
func relCtrl(k int) int { return (1 << 18) + k }

// relRing is the tag base of ring steps (above the pair-tag region).
const relRing = 1 << 17

// bracketDVFS wraps every rank's schedule in the per-call DVFS
// transitions (all cores to fmin before the first step, back to fmax
// after the last) when the spec asks for frequency scaling — the plan
// form of withFreqScaling.
func bracketDVFS(pl *plan.Plan, s plan.Spec) {
	if !s.FreqScale {
		return
	}
	for r := 0; r < pl.P; r++ {
		steps := make([]plan.Step, 0, len(pl.Steps[r])+2)
		steps = append(steps, plan.Step{Op: plan.OpPower, Power: plan.PowerAction{Kind: plan.PowerFreqMin}})
		steps = append(steps, pl.Steps[r]...)
		steps = append(steps, plan.Step{Op: plan.OpPower, Power: plan.PowerAction{Kind: plan.PowerFreqMax}})
		pl.Steps[r] = steps
	}
}

// uniformContract declares the same send/recv coverage on every rank.
func uniformContract(p int, send, recv int64) *plan.Contract {
	c := &plan.Contract{SendBytes: make([]int64, p), RecvBytes: make([]int64, p)}
	for r := 0; r < p; r++ {
		c.SendBytes[r] = send
		c.RecvBytes[r] = recv
	}
	return c
}

// alltoallContract declares full personalized coverage: every rank sends
// its row of the size matrix (self block excluded — it moves by local
// copy) and receives its column.
func alltoallContract(p int, s plan.Spec) *plan.Contract {
	c := &plan.Contract{SendBytes: make([]int64, p), RecvBytes: make([]int64, p)}
	for me := 0; me < p; me++ {
		for other := 0; other < p; other++ {
			if other == me {
				continue
			}
			c.SendBytes[me] += s.Size(me, other)
			c.RecvBytes[me] += s.Size(other, me)
		}
	}
	return c
}

func uniformOnly(name string, s plan.Spec) error {
	if s.SizeOf != nil {
		return fmt.Errorf("plan: %s builds uniform schedules only (per-pair sizes unsupported)", name)
	}
	return nil
}

// buildAllgatherRing is the flat ring: P-1 steps, each rank forwarding
// one block to the right while receiving one from the left.
func buildAllgatherRing(v plan.View, s plan.Spec) (*plan.Plan, error) {
	if err := uniformOnly("allgather_ring", s); err != nil {
		return nil, err
	}
	pl := plan.NewPlan("allgather_ring", v.P)
	pl.NodeOf = v.NodeOf
	p := v.P
	for me := 0; me < p; me++ {
		rs := pl.Rank(me)
		right := (me + 1) % p
		left := (me - 1 + p) % p
		for st := 0; st < p-1; st++ {
			tag := relRing + st
			rs.SendRecv(right, s.Bytes, tag, left, s.Bytes, tag)
		}
	}
	// The imperative form reserves its tag block before checking the
	// communicator size, so even a 1-rank call consumes one.
	pl.NeedsTagBlock = true
	per := int64(p-1) * s.Bytes
	pl.Contract = uniformContract(p, per, per)
	bracketDVFS(pl, s)
	return pl, nil
}

// buildAllgatherRD is recursive doubling (power-of-two communicators):
// log2(P) rounds, the exchanged volume doubling every round.
func buildAllgatherRD(v plan.View, s plan.Spec) (*plan.Plan, error) {
	if err := uniformOnly("allgather_rd", s); err != nil {
		return nil, err
	}
	if !isPow2(v.P) {
		return nil, fmt.Errorf("plan: allgather_rd needs a power-of-two communicator, got %d ranks", v.P)
	}
	pl := plan.NewPlan("allgather_rd", v.P)
	pl.NodeOf = v.NodeOf
	p := v.P
	for me := 0; me < p; me++ {
		rs := pl.Rank(me)
		have := s.Bytes
		for mask := 1; mask < p; mask <<= 1 {
			peer := me ^ mask
			tag := relPair(p, me, peer) + (1<<17)*logOf(mask)
			rs.SendRecv(peer, have, tag, peer, have, tag)
			have *= 2
		}
	}
	pl.NeedsTagBlock = true
	per := int64(p-1) * s.Bytes
	pl.Contract = uniformContract(p, per, per)
	bracketDVFS(pl, s)
	return pl, nil
}

// buildAllreduceRD is recursive-doubling allreduce (power-of-two
// communicators): every round exchanges the full vector with the XOR
// partner and folds it in.
func buildAllreduceRD(v plan.View, s plan.Spec) (*plan.Plan, error) {
	if err := uniformOnly("allreduce_rd", s); err != nil {
		return nil, err
	}
	if !isPow2(v.P) {
		return nil, fmt.Errorf("plan: allreduce_rd needs a power-of-two communicator, got %d ranks", v.P)
	}
	pl := plan.NewPlan("allreduce_rd", v.P)
	pl.NodeOf = v.NodeOf
	p := v.P
	rounds := 0
	for me := 0; me < p; me++ {
		rs := pl.Rank(me)
		rounds = 0
		for mask := 1; mask < p; mask <<= 1 {
			peer := me ^ mask
			tag := relPair(p, me, peer) + (1<<17)*logOf(mask)
			rs.SendRecv(peer, s.Bytes, tag, peer, s.Bytes, tag)
			rs.Reduce(s.Bytes)
			rounds++
		}
		if s.Verify {
			rs.Verify(s.Bytes)
		}
	}
	pl.NeedsTagBlock = true
	per := int64(rounds) * s.Bytes
	pl.Contract = uniformContract(p, per, per)
	bracketDVFS(pl, s)
	return pl, nil
}

// buildAllreduceChain is the serial chain allreduce: reduce toward rank 0
// along the chain (p-1 → p-2 → ... → 0), then broadcast the total back
// down it. O(P) latency against recursive doubling's O(log P), but it
// builds for any communicator size — it exists so the resilient path has
// an applicable builder after a crash shrinks a power-of-two group to an
// odd survivor count.
func buildAllreduceChain(v plan.View, s plan.Spec) (*plan.Plan, error) {
	if err := uniformOnly("allreduce_chain", s); err != nil {
		return nil, err
	}
	pl := plan.NewPlan("allreduce_chain", v.P)
	pl.NodeOf = v.NodeOf
	p := v.P
	contract := &plan.Contract{SendBytes: make([]int64, p), RecvBytes: make([]int64, p)}
	for me := 0; me < p; me++ {
		rs := pl.Rank(me)
		if p == 1 {
			if s.Verify {
				rs.Verify(s.Bytes)
			}
			continue
		}
		// Reduce phase: the up edge from k to k-1 carries tag relRing+k.
		if me < p-1 {
			rs.Recv(me+1, s.Bytes, relRing+me+1)
			rs.Reduce(s.Bytes)
			contract.RecvBytes[me] += s.Bytes
		}
		if me > 0 {
			rs.Send(me-1, s.Bytes, relRing+me)
			contract.SendBytes[me] += s.Bytes
			// Bcast phase: the down edge from k-1 to k carries relCtrl(k-1).
			rs.Recv(me-1, s.Bytes, relCtrl(me-1))
			contract.RecvBytes[me] += s.Bytes
		}
		if me < p-1 {
			rs.Send(me+1, s.Bytes, relCtrl(me))
			contract.SendBytes[me] += s.Bytes
		}
		if s.Verify {
			rs.Verify(s.Bytes)
		}
	}
	pl.NeedsTagBlock = true
	pl.Contract = contract
	bracketDVFS(pl, s)
	return pl, nil
}

// buildBcastBinomial is the classic binomial broadcast tree rooted at
// Spec.Root: each rank receives once from its parent, then forwards to
// children at decreasing power-of-two distances.
func buildBcastBinomial(v plan.View, s plan.Spec) (*plan.Plan, error) {
	if err := uniformOnly("bcast_binomial", s); err != nil {
		return nil, err
	}
	root := s.Root
	if root < 0 || root >= v.P {
		return nil, fmt.Errorf("plan: bcast_binomial root %d outside [0,%d)", root, v.P)
	}
	pl := plan.NewPlan("bcast_binomial", v.P)
	pl.NodeOf = v.NodeOf
	p := v.P
	contract := &plan.Contract{SendBytes: make([]int64, p), RecvBytes: make([]int64, p)}
	for me := 0; me < p; me++ {
		rs := pl.Rank(me)
		if p == 1 {
			continue
		}
		vr := (me - root + p) % p
		mask := 1
		for mask < p && vr&mask == 0 {
			mask <<= 1
		}
		if vr != 0 {
			parent := ((vr - mask) + root) % p
			rs.Recv(parent, s.Bytes, relPair(p, parent, me))
			contract.RecvBytes[me] = s.Bytes
		} else {
			for mask < p {
				mask <<= 1
			}
		}
		for m := mask >> 1; m >= 1; m >>= 1 {
			if vr+m < p {
				child := (vr + m + root) % p
				rs.Send(child, s.Bytes, relPair(p, me, child))
				contract.SendBytes[me] += s.Bytes
			}
		}
	}
	pl.NeedsTagBlock = true // block reserved before the size check in the imperative form
	pl.Contract = contract
	bracketDVFS(pl, s)
	return pl, nil
}

// buildAlltoallPairwise is the pairwise-exchange alltoall: P-1 steps with
// XOR partnering on power-of-two communicators and ring offsets
// otherwise, each step tagged with the phase (intra/network) its peer's
// placement implies. Honors per-pair sizes, so it also backs the v
// variant.
func buildAlltoallPairwise(v plan.View, s plan.Spec) (*plan.Plan, error) {
	pl := plan.NewPlan("alltoall_pairwise", v.P)
	pl.NodeOf = v.NodeOf
	p := v.P
	pow2 := isPow2(p)
	for me := 0; me < p; me++ {
		rs := pl.Rank(me)
		rs.Copy(s.Size(me, me))
		if p <= 1 {
			continue
		}
		for i := 1; i < p; i++ {
			var peer int
			if pow2 {
				peer = me ^ i
			} else {
				peer = (me + i) % p
			}
			name := PhaseNetwork
			if v.NodeOf != nil && v.NodeOf[me] == v.NodeOf[peer] {
				name = PhaseIntra
			}
			rs.PhaseBegin(name)
			if pow2 {
				tag := relPair(p, me, peer)
				rs.SendRecv(peer, s.Size(me, peer), tag, peer, s.Size(peer, me), tag)
			} else {
				// Ring offsets: send to (me+i), receive from (me-i).
				from := (me - i + p) % p
				rs.SendRecv(peer, s.Size(me, peer), relPair(p, me, peer),
					from, s.Size(from, me), relPair(p, from, me))
			}
			rs.PhaseEnd()
		}
	}
	// A 1-rank imperative call returns before reserving a tag block, and
	// the builder mirrors that: NeedsTagBlock stays false with no steps.
	pl.Contract = alltoallContract(p, s)
	bracketDVFS(pl, s)
	return pl, nil
}

// buildAlltoallBruck is the store-and-forward hypercube alltoall:
// ceil(log2 P) rounds, round k shipping every block whose destination
// index has bit k set, with a rotation copy on each end.
func buildAlltoallBruck(v plan.View, s plan.Spec) (*plan.Plan, error) {
	if err := uniformOnly("alltoall_bruck", s); err != nil {
		return nil, err
	}
	pl := plan.NewPlan("alltoall_bruck", v.P)
	pl.NodeOf = v.NodeOf
	p := v.P
	var per int64
	for me := 0; me < p; me++ {
		rs := pl.Rank(me)
		if p <= 1 {
			rs.Copy(s.Bytes)
			continue
		}
		rs.Copy(int64(p) * s.Bytes) // initial rotation
		round := 0
		per = 0
		for dist := 1; dist < p; dist <<= 1 {
			cnt := 0
			for i := 1; i < p; i++ {
				if i&dist != 0 {
					cnt++
				}
			}
			to := (me + dist) % p
			from := (me - dist + p) % p
			vol := int64(cnt) * s.Bytes
			rs.SendRecv(to, vol, round, from, vol, round)
			per += vol
			round++
		}
		rs.Copy(int64(p) * s.Bytes) // final inverse rotation
	}
	if p > 1 {
		pl.Contract = uniformContract(p, per, per)
	}
	bracketDVFS(pl, s)
	return pl, nil
}

// buildAlltoallPhased is the §V-A power-aware alltoall (Figure 3): an
// intra-node tournament, two same-socket inter-node sweeps with the idle
// socket throttled deep, and a cross-socket node-pair tournament, with
// zero-byte buddy notifications sequencing the throttle hand-offs.
// Communicators whose nodes lack a populated, equal-size second socket
// fall back to the plain pairwise schedule, exactly like the imperative
// form.
func buildAlltoallPhased(v plan.View, s plan.Spec) (*plan.Plan, error) {
	p := v.P
	if p <= 1 {
		pl := plan.NewPlan("alltoall_phased", p)
		pl.NodeOf = v.NodeOf
		for me := 0; me < p; me++ {
			pl.Rank(me).Copy(s.Size(me, me))
		}
		pl.Contract = alltoallContract(p, s)
		bracketDVFS(pl, s)
		return pl, nil
	}
	lay := viewLayoutOf(v)
	n := lay.numNodes()
	for i := 0; i < n; i++ {
		if len(lay.a[i]) != len(lay.b[i]) || len(lay.a[i]) == 0 {
			pl, err := buildAlltoallPairwise(v, s)
			if err != nil {
				return nil, err
			}
			pl.Name = "alltoall_phased" // pairwise fallback schedule
			return pl, nil
		}
	}
	deep := s.DeepT
	if deep == power.T0 {
		deep = power.T7
	}
	pl := plan.NewPlan("alltoall_phased", p)
	pl.NodeOf = v.NodeOf

	for me := 0; me < p; me++ {
		rs := pl.Rank(me)
		myNodeIdx := lay.idxOfNode[v.NodeOf[me]]
		groupA, groupB := lay.a[myNodeIdx], lay.b[myNodeIdx]
		inA := indexIn(groupA, me) >= 0
		var myIdx, buddy int
		if inA {
			myIdx = indexIn(groupA, me)
			buddy = groupB[myIdx]
		} else {
			myIdx = indexIn(groupB, me)
			buddy = groupA[myIdx]
		}

		exchange := func(peer int) {
			tag := relPair(p, me, peer)
			rs.SendRecv(peer, s.Size(me, peer), tag, peer, s.Size(peer, me), tag)
		}
		crossNodeSweep := func(peers []int) {
			k := len(peers)
			for x := 0; x < k; x++ {
				exchange(peers[((x-myIdx)%k+k)%k])
			}
		}
		sameSocketSweep := func(groups [][]int) {
			for st := 1; st <= tournamentRounds(n); st++ {
				peerIdx := tournamentPeer(n, st, myNodeIdx)
				if peerIdx < 0 || peerIdx >= n {
					continue
				}
				crossNodeSweep(groups[peerIdx])
			}
		}

		// Phase 1: intra-node tournament, self block included.
		rs.PhaseBegin(PhaseIntra)
		rs.Copy(s.Size(me, me))
		locals := lay.all[myNodeIdx]
		li := indexIn(locals, me)
		m := len(locals)
		for st := 1; st <= tournamentRounds(m); st++ {
			pi := tournamentPeer(m, st, li)
			if pi < 0 || pi >= m {
				continue
			}
			exchange(locals[pi])
		}
		rs.PhaseEnd()
		if n < 2 {
			continue
		}

		// Phase 2: A active, B throttled deep.
		rs.PhaseBegin(PhasePhase2)
		if inA {
			sameSocketSweep(lay.a)
			rs.Send(buddy, 0, relCtrl(0))
		} else {
			rs.Throttle(deep)
			rs.Recv(buddy, 0, relCtrl(0))
			rs.Throttle(power.T0)
		}
		rs.PhaseEnd()

		// Phase 3: roles swap.
		rs.PhaseBegin(PhasePhase3)
		if !inA {
			sameSocketSweep(lay.b)
			rs.Send(buddy, 0, relCtrl(1))
		} else {
			rs.Throttle(deep)
			rs.Recv(buddy, 0, relCtrl(1))
			rs.Throttle(power.T0)
		}
		rs.PhaseEnd()

		// Phase 4: cross-socket node-pair tournament; the lower-indexed
		// node's A group goes first in each round.
		rs.PhaseBegin(PhasePhase4)
		for round := 1; round <= tournamentRounds(n); round++ {
			peerIdx := tournamentPeer(n, round, myNodeIdx)
			if peerIdx < 0 || peerIdx >= n {
				continue
			}
			activeFirst := inA == (myNodeIdx < peerIdx)
			if activeFirst {
				if inA {
					crossNodeSweep(lay.b[peerIdx])
				} else {
					crossNodeSweep(lay.a[peerIdx])
				}
				rs.Send(buddy, 0, relCtrl(2+2*round))
				rs.Throttle(deep)
				rs.Recv(buddy, 0, relCtrl(3+2*round))
				rs.Throttle(power.T0)
			} else {
				rs.Throttle(deep)
				rs.Recv(buddy, 0, relCtrl(2+2*round))
				rs.Throttle(power.T0)
				if inA {
					crossNodeSweep(lay.b[peerIdx])
				} else {
					crossNodeSweep(lay.a[peerIdx])
				}
				rs.Send(buddy, 0, relCtrl(3+2*round))
			}
		}
		rs.PhaseEnd()
	}
	pl.Contract = alltoallContract(p, s)
	bracketDVFS(pl, s)
	return pl, nil
}

// viewLayout is commLayout computed from a plan.View instead of a live
// communicator, for use inside builders.
type viewLayout struct {
	nodes     []int
	idxOfNode map[int]int
	all, a, b [][]int
}

func viewLayoutOf(v plan.View) *viewLayout {
	l := &viewLayout{idxOfNode: map[int]int{}}
	for cr := 0; cr < v.P; cr++ {
		n := v.NodeOf[cr]
		idx, ok := l.idxOfNode[n]
		if !ok {
			idx = len(l.nodes)
			l.idxOfNode[n] = idx
			l.nodes = append(l.nodes, n)
			l.all = append(l.all, nil)
			l.a = append(l.a, nil)
			l.b = append(l.b, nil)
		}
		l.all[idx] = append(l.all[idx], cr)
		if v.SocketA[cr] {
			l.a[idx] = append(l.a[idx], cr)
		} else {
			l.b[idx] = append(l.b[idx], cr)
		}
	}
	return l
}

func (l *viewLayout) numNodes() int { return len(l.nodes) }
