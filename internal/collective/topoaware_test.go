package collective

import (
	"testing"

	"pacc/internal/mpi"
	"pacc/internal/simtime"
)

// rackConfig builds the paper's 8-node testbed arranged as two racks of
// four nodes behind 2:1-oversubscribed rack uplinks.
func rackConfig() mpi.Config {
	cfg := mpi.DefaultConfig()
	cfg.Net.NodesPerRack = 4
	cfg.Net.RackUplinkBytesPerSec = 2 * cfg.Net.LinkBytesPerSec
	return cfg
}

func TestScatterTopoAwareCompletes(t *testing.T) {
	for _, mode := range []PowerMode{NoPower, FreqScaling, Proposed} {
		done := 0
		run(t, rackConfig(), func(r *mpi.Rank) {
			ScatterTopoAware(mpi.CommWorld(r), 0, 16<<10, Options{Power: mode})
			done++
		})
		if done != 64 {
			t.Fatalf("mode=%v: %d/64 finished", mode, done)
		}
	}
}

func TestGatherTopoAwareCompletes(t *testing.T) {
	for _, mode := range []PowerMode{NoPower, FreqScaling, Proposed} {
		done := 0
		run(t, rackConfig(), func(r *mpi.Rank) {
			GatherTopoAware(mpi.CommWorld(r), 0, 16<<10, Options{Power: mode})
			done++
		})
		if done != 64 {
			t.Fatalf("mode=%v: %d/64 finished", mode, done)
		}
	}
}

// TestTopoAwareWorksWithoutRacks: with a single-switch fabric the
// hierarchy degenerates to one rack and must still work.
func TestTopoAwareWorksWithoutRacks(t *testing.T) {
	done := 0
	run(t, cfg64(), func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		ScatterTopoAware(c, 0, 8<<10, Options{Power: Proposed})
		GatherTopoAware(c, 0, 8<<10, Options{Power: Proposed})
		done++
	})
	if done != 64 {
		t.Fatalf("%d/64 finished", done)
	}
}

// TestTopoAwareBeatsFlatScatterAcrossRacks: on a heavily oversubscribed
// two-rack fabric with a root whose binomial tree misaligns with the rack
// boundary, routing through rack leaders crosses racks once per byte and
// beats the flat scatter in both inter-rack volume and latency.
func TestTopoAwareBeatsFlatScatterAcrossRacks(t *testing.T) {
	const bytes = 256 << 10
	const root = 20 // misaligns the vrank rotation with the rack split
	cfg := rackConfig()
	cfg.Net.RackUplinkBytesPerSec = cfg.Net.LinkBytesPerSec / 4 // 16:1
	measure := func(body func(c *mpi.Comm)) (simtime.Duration, int64) {
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.Launch(func(r *mpi.Rank) { body(mpi.CommWorld(r)) })
		d, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d, w.Fabric().InterRackBytes()
	}
	flatT, flatX := measure(func(c *mpi.Comm) { Scatter(c, root, bytes, Options{}) })
	topoT, topoX := measure(func(c *mpi.Comm) { ScatterTopoAware(c, root, bytes, Options{}) })
	// Minimal inter-rack volume: the 32 blocks destined for the other
	// rack cross once.
	minimal := int64(32) * bytes
	if topoX != minimal {
		t.Fatalf("topology-aware crossed %d inter-rack bytes, want minimal %d", topoX, minimal)
	}
	if flatX <= topoX {
		t.Fatalf("flat scatter crossed %d bytes, expected more than topo-aware's %d", flatX, topoX)
	}
	if topoT >= flatT {
		t.Fatalf("topology-aware scatter (%v) not faster than flat (%v) across racks", topoT, flatT)
	}
}

// TestTopoAwarePowerOrdering: the §VIII schedule must draw less power
// than no-power, with bounded overhead.
func TestTopoAwarePowerOrdering(t *testing.T) {
	const bytes = 128 << 10
	measure := func(mode PowerMode) (simtime.Duration, float64) {
		d, e := run(t, rackConfig(), func(r *mpi.Rank) {
			c := mpi.CommWorld(r)
			for i := 0; i < 3; i++ {
				Barrier(c)
				ScatterTopoAware(c, 0, bytes, Options{Power: mode})
			}
		})
		return d, e / d.Seconds()
	}
	dNo, pNo := measure(NoPower)
	dPr, pPr := measure(Proposed)
	if pPr >= pNo {
		t.Fatalf("proposed mean power %.0f W not below default %.0f W", pPr, pNo)
	}
	if dPr.Seconds() > 1.5*dNo.Seconds() {
		t.Fatalf("proposed overhead too high: %v vs %v", dPr, dNo)
	}
}

// TestGatherTopoAwareRestoresThrottle: the release cascade must leave all
// cores at T0 / fmax.
func TestGatherTopoAwareRestoresThrottle(t *testing.T) {
	cfg := rackConfig()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpi.Rank) {
		GatherTopoAware(mpi.CommWorld(r), 0, 32<<10, Options{Power: Proposed})
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.NProcs; i++ {
		core := w.Rank(i).Core()
		if core.Throttle() != 0 || core.FreqGHz() != cfg.Power.FMaxGHz {
			t.Fatalf("rank %d left at %v / %.2f GHz", i, core.Throttle(), core.FreqGHz())
		}
	}
}

// TestTopoAwareByteConservation: scatter through the hierarchy moves each
// rack block once inter-rack and each node block once intra-rack.
func TestTopoAwareByteConservation(t *testing.T) {
	const bytes = 4 << 10
	cfg := rackConfig()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpi.Rank) {
		ScatterTopoAware(mpi.CommWorld(r), 0, bytes, Options{})
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Root (rack 0 leader) sends rack 1's block: 32 ranks * bytes.
	// Each rack leader sends 3 node blocks of 8*bytes.
	want := int64(32)*bytes + 2*3*8*bytes
	if got := w.Fabric().BytesMoved(); got != want {
		t.Fatalf("moved %d wire bytes, want %d", got, want)
	}
}

func TestBcastTopoAwareCompletes(t *testing.T) {
	for _, mode := range []PowerMode{NoPower, FreqScaling, Proposed} {
		done := 0
		run(t, rackConfig(), func(r *mpi.Rank) {
			BcastTopoAware(mpi.CommWorld(r), 0, 128<<10, Options{Power: mode})
			done++
		})
		if done != 64 {
			t.Fatalf("mode=%v: %d/64 finished", mode, done)
		}
	}
}

// TestBcastTopoAwareByteConservation: one payload per rack leader plus
// one per non-leader node.
func TestBcastTopoAwareByteConservation(t *testing.T) {
	const bytes = 64 << 10
	cfg := rackConfig()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpi.Rank) {
		BcastTopoAware(mpi.CommWorld(r), 0, bytes, Options{})
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 inter-rack send (to rack 1's leader) + 2 racks x 3 node-leader
	// sends.
	want := int64(1+2*3) * bytes
	if got := w.Fabric().BytesMoved(); got != want {
		t.Fatalf("moved %d wire bytes, want %d", got, want)
	}
}

// TestBcastTopoAwarePowerOrdering mirrors the scatter check.
func TestBcastTopoAwarePowerOrdering(t *testing.T) {
	measure := func(mode PowerMode) float64 {
		d, e := run(t, rackConfig(), func(r *mpi.Rank) {
			c := mpi.CommWorld(r)
			for i := 0; i < 3; i++ {
				Barrier(c)
				BcastTopoAware(c, 0, 256<<10, Options{Power: mode})
			}
		})
		return e / d.Seconds()
	}
	if pNo, pPr := measure(NoPower), measure(Proposed); pPr >= pNo {
		t.Fatalf("proposed %.0f W not below default %.0f W", pPr, pNo)
	}
}
