package collective

import (
	"pacc/internal/mpi"
)

// Scatterv distributes variable-size blocks from root: sizeOf(i) is the
// number of bytes destined for communicator rank i. All ranks must pass
// agreeing size functions. The schedule is the binomial range split, so
// subtree volumes are the sums of their members' blocks.
func Scatterv(c *mpi.Comm, root int, sizeOf func(rank int) int64, opt Options) error {
	if err := checkRoot("scatterv", root, c.Size()); err != nil {
		return err
	}
	if err := checkSizeFn("scatterv", c.Size(), sizeOf); err != nil {
		return err
	}
	timeCollective(c, opt, "scatterv", -1, func() {
		run := func() { binomialScatterv(c, root, sizeOf, c.TagBlock()) }
		if opt.Power == FreqScaling || opt.Power == Proposed {
			withFreqScaling(c, run)
			return
		}
		run()
	})
	return nil
}

// Gatherv collects variable-size blocks onto root (the reverse schedule).
func Gatherv(c *mpi.Comm, root int, sizeOf func(rank int) int64, opt Options) error {
	if err := checkRoot("gatherv", root, c.Size()); err != nil {
		return err
	}
	if err := checkSizeFn("gatherv", c.Size(), sizeOf); err != nil {
		return err
	}
	timeCollective(c, opt, "gatherv", -1, func() {
		run := func() { binomialGatherv(c, root, sizeOf, c.TagBlock()) }
		if opt.Power == FreqScaling || opt.Power == Proposed {
			withFreqScaling(c, run)
			return
		}
		run()
	})
	return nil
}

// vrangeBytes sums the block sizes of the vrank range [lo, hi) for a
// communicator rotated by root.
func vrangeBytes(c *mpi.Comm, root, lo, hi int, sizeOf func(int) int64) int64 {
	n := c.Size()
	var total int64
	for vr := lo; vr < hi; vr++ {
		total += sizeOf((vr + root) % n)
	}
	return total
}

func binomialScatterv(c *mpi.Comm, root int, sizeOf func(int) int64, block int) {
	n, me := c.Size(), c.Rank()
	if n == 1 {
		return
	}
	vr := (me - root + n) % n
	lo, hi := 0, n
	for hi-lo > 1 {
		half := (hi - lo) / 2
		upper := hi - half
		size := vrangeBytes(c, root, upper, hi, sizeOf)
		if vr < upper {
			if vr == lo {
				dst := (upper + root) % n
				c.Send(dst, size, c.PairTag(block, me, dst))
			}
			hi = upper
		} else {
			if vr == upper {
				src := (lo + root) % n
				c.Recv(src, size, c.PairTag(block, src, me))
			}
			lo = upper
		}
	}
}

func binomialGatherv(c *mpi.Comm, root int, sizeOf func(int) int64, block int) {
	n, me := c.Size(), c.Rank()
	if n == 1 {
		return
	}
	vr := (me - root + n) % n
	type split struct{ lo, upper, hi int }
	var splits []split
	lo, hi := 0, n
	for hi-lo > 1 {
		half := (hi - lo) / 2
		upper := hi - half
		splits = append(splits, split{lo, upper, hi})
		if vr < upper {
			hi = upper
		} else {
			lo = upper
		}
	}
	for i := len(splits) - 1; i >= 0; i-- {
		s := splits[i]
		size := vrangeBytes(c, root, s.upper, s.hi, sizeOf)
		if vr == s.upper {
			dst := (s.lo + root) % n
			c.Send(dst, size, c.PairTag(block, me, dst))
		}
		if vr == s.lo {
			src := (s.upper + root) % n
			c.Recv(src, size, c.PairTag(block, src, me))
		}
	}
}

// Allgatherv gathers variable-size blocks to all ranks with the ring
// schedule: step s forwards the block originally owned by (me-s+1).
func Allgatherv(c *mpi.Comm, sizeOf func(rank int) int64, opt Options) error {
	if err := checkSizeFn("allgatherv", c.Size(), sizeOf); err != nil {
		return err
	}
	timeCollective(c, opt, "allgatherv", -1, func() {
		run := func() {
			n, me := c.Size(), c.Rank()
			if n == 1 {
				return
			}
			block := c.TagBlock()
			right := (me + 1) % n
			left := (me - 1 + n) % n
			for s := 0; s < n-1; s++ {
				sendOwner := (me - s + n) % n
				recvOwner := (left - s + n) % n
				tag := block + s
				c.Exchange(right, sizeOf(sendOwner), tag, left, sizeOf(recvOwner), tag)
			}
		}
		if opt.Power == FreqScaling || opt.Power == Proposed {
			withFreqScaling(c, run)
			return
		}
		run()
	})
	return nil
}
