package collective

import (
	"testing"

	"pacc/internal/mpi"
	"pacc/internal/simtime"
)

func TestReduceScatterCompletes(t *testing.T) {
	for _, cfgSel := range []mpi.Config{cfg32x8(), nonPow2Cfg()} {
		for _, mode := range []PowerMode{NoPower, FreqScaling} {
			done := 0
			run(t, cfgSel, func(r *mpi.Rank) {
				ReduceScatter(mpi.CommWorld(r), 8<<10, Options{Power: mode})
				done++
			})
			if done != cfgSel.NProcs {
				t.Fatalf("nprocs=%d mode=%v: %d finished", cfgSel.NProcs, mode, done)
			}
		}
	}
}

func nonPow2Cfg() mpi.Config {
	cfg := mpi.DefaultConfig()
	cfg.NProcs = 48
	cfg.PPN = 8
	cfg.Topo.Nodes = 6
	return cfg
}

// TestReduceScatterVolume: recursive halving moves (n-1)/n of the vector
// per rank in total (vol/2 + vol/4 + ... per rank on the wire, counting
// inter-node pairs only would be complex — assert the total instead).
func TestReduceScatterHalvingVolume(t *testing.T) {
	const blockBytes = 16 << 10
	cfg := cfg32x8() // 32 ranks, pow2
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpi.Rank) {
		ReduceScatter(mpi.CommWorld(r), blockBytes, Options{})
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Per rank the halving exchanges 16+8+4+2+1 = 31 blocks; the first
	// round (mask 16) is inter-node under bunch binding for all ranks,
	// rounds with mask < 8 are intra-node. Inter-node rounds: mask 16
	// and mask 8 (peer = me^8 is on the other... (same node has ranks
	// base..base+7, so me^8 flips the node) -> masks 16 and 8 cross
	// nodes: volumes 16+8 blocks per rank.
	want := int64(32) * (16 + 8) * blockBytes
	if got := w.Fabric().BytesMoved(); got != want {
		t.Fatalf("moved %d wire bytes, want %d", got, want)
	}
}

// TestRabenseifnerBeatsRecursiveDoublingForLargeVectors: the classic
// result — reduce-scatter + allgather wins on bandwidth.
func TestRabenseifnerBeatsRDForLargeVectors(t *testing.T) {
	const bytes = 4 << 20
	elapsed := func(f func(c *mpi.Comm)) simtime.Duration {
		d, _ := run(t, cfg32x8(), func(r *mpi.Rank) { f(mpi.CommWorld(r)) })
		return d
	}
	rab := elapsed(func(c *mpi.Comm) { AllreduceRabenseifner(c, bytes, Options{}) })
	rd := elapsed(func(c *mpi.Comm) { AllreduceRD(c, bytes, Options{}) })
	if rab >= rd {
		t.Fatalf("Rabenseifner (%v) not faster than recursive doubling (%v) at 4MB", rab, rd)
	}
}

func TestRabenseifnerNonPow2Fallback(t *testing.T) {
	done := 0
	run(t, nonPow2Cfg(), func(r *mpi.Rank) {
		AllreduceRabenseifner(mpi.CommWorld(r), 64<<10, Options{})
		done++
	})
	if done != 48 {
		t.Fatalf("%d finished", done)
	}
}

// TestAlltoallRingCompletesAndCostsMore: the ring completes and its
// store-and-forward traffic exceeds the pairwise schedule's.
func TestAlltoallRingCompletesAndCostsMore(t *testing.T) {
	const bytes = 32 << 10
	wire := func(f func(c *mpi.Comm)) int64 {
		w, err := mpi.NewWorld(cfg32x8())
		if err != nil {
			t.Fatal(err)
		}
		w.Launch(func(r *mpi.Rank) { f(mpi.CommWorld(r)) })
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w.Fabric().BytesMoved()
	}
	ring := wire(func(c *mpi.Comm) { AlltoallRing(c, bytes, Options{}) })
	pair := wire(func(c *mpi.Comm) { AlltoallPairwise(c, bytes, Options{}) })
	if ring <= pair {
		t.Fatalf("ring wire bytes %d should exceed pairwise %d", ring, pair)
	}
}

func TestScattervGatherv(t *testing.T) {
	sizes := func(rank int) int64 { return int64(1024 * (1 + rank%5)) }
	for _, root := range []int{0, 11} {
		done := 0
		run(t, cfg32x8(), func(r *mpi.Rank) {
			c := mpi.CommWorld(r)
			Scatterv(c, root, sizes, Options{})
			Gatherv(c, root, sizes, Options{})
			done++
		})
		if done != 32 {
			t.Fatalf("root=%d: %d finished", root, done)
		}
	}
}

// TestScattervMatchesScatterForUniformSizes: with uniform sizes the v
// variant must move exactly what Scatter moves.
func TestScattervMatchesScatterForUniformSizes(t *testing.T) {
	const bytes = 8 << 10
	wire := func(f func(c *mpi.Comm)) int64 {
		w, err := mpi.NewWorld(cfg32x8())
		if err != nil {
			t.Fatal(err)
		}
		w.Launch(func(r *mpi.Rank) { f(mpi.CommWorld(r)) })
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w.Fabric().BytesMoved()
	}
	v := wire(func(c *mpi.Comm) {
		Scatterv(c, 0, func(int) int64 { return bytes }, Options{})
	})
	u := wire(func(c *mpi.Comm) { Scatter(c, 0, bytes, Options{}) })
	if v != u {
		t.Fatalf("uniform scatterv moved %d bytes, scatter moved %d", v, u)
	}
}

func TestAllgathervCompletes(t *testing.T) {
	sizes := func(rank int) int64 { return int64(512 * (1 + rank%3)) }
	done := 0
	run(t, cfg32x8(), func(r *mpi.Rank) {
		Allgatherv(mpi.CommWorld(r), sizes, Options{Power: FreqScaling})
		done++
	})
	if done != 32 {
		t.Fatalf("%d finished", done)
	}
}

// TestAllgathervUniformEqualsRing: uniform sizes reduce to the plain
// ring allgather volume.
func TestAllgathervUniformEqualsRing(t *testing.T) {
	const bytes = 4 << 10
	wire := func(f func(c *mpi.Comm)) int64 {
		w, err := mpi.NewWorld(cfg32x8())
		if err != nil {
			t.Fatal(err)
		}
		w.Launch(func(r *mpi.Rank) { f(mpi.CommWorld(r)) })
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w.Fabric().BytesMoved()
	}
	v := wire(func(c *mpi.Comm) {
		Allgatherv(c, func(int) int64 { return bytes }, Options{})
	})
	u := wire(func(c *mpi.Comm) { AllgatherRing(c, bytes, Options{}) })
	if v != u {
		t.Fatalf("uniform allgatherv moved %d, ring moved %d", v, u)
	}
}
