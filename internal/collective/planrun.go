package collective

import (
	"fmt"

	"pacc/internal/model"
	"pacc/internal/mpi"
	"pacc/internal/plan"
	"pacc/internal/topology"
)

// This file glues the schedule-IR layer (internal/plan) into the
// collective entry points: deriving the communicator view builders need,
// resolving which builder runs a call (canonical, forced by name, or
// cost-model auto-selection), and executing the built plan with the
// caller's trace and power options.

// viewOf derives the SPMD-congruent communicator shape a plan builder
// consumes. Every rank computes the identical view, so every rank builds
// the identical plan.
func viewOf(c *mpi.Comm) plan.View {
	p := c.Size()
	v := plan.View{P: p, NodeOf: make([]int, p), SocketA: make([]bool, p)}
	for cr := 0; cr < p; cr++ {
		v.NodeOf[cr] = c.NodeOf(cr)
		v.SocketA[cr] = c.SocketOf(cr) == topology.SocketA
	}
	return v
}

// planSpec translates call options into a build spec.
func planSpec(bytes int64, sizeOf func(src, dst int) int64, opt Options) plan.Spec {
	return plan.Spec{
		Bytes:     bytes,
		SizeOf:    sizeOf,
		FreqScale: opt.Power == FreqScaling || opt.Power == Proposed,
		Phased:    opt.Power == Proposed,
		DeepT:     opt.deepT(),
		Verify:    opt.Verify,
	}
}

// runPlanned resolves, builds and executes the plan of one collective
// call. canonical is the builder that reproduces the entry point's
// historical schedule; opt.Plan may override it with "auto" (cost-model
// selection over the family's registered candidates) or an explicit
// builder name.
func runPlanned(c *mpi.Comm, family, canonical string, spec plan.Spec, opt Options) error {
	name := canonical
	switch opt.Plan {
	case "", canonical:
	case PlanAuto:
		selected, err := SelectPlanName(c.World().Config(), viewOf(c), family, spec, opt.PlanObjective)
		if err != nil {
			return err
		}
		name = selected
	default:
		b, ok := plan.Lookup(opt.Plan)
		if !ok {
			return fmt.Errorf("collective: unknown plan builder %q", opt.Plan)
		}
		if b.Op != family {
			return fmt.Errorf("collective: plan builder %q implements %s, not %s", opt.Plan, b.Op, family)
		}
		name = opt.Plan
	}
	p, err := plan.BuildNamed(name, viewOf(c), spec)
	if err != nil {
		return err
	}
	return execPlan(c, p, opt)
}

// execPlan runs a built plan with the caller's options.
func execPlan(c *mpi.Comm, p *plan.Plan, opt Options) error {
	return plan.Execute(p, plan.Env{
		Comm:              c,
		ReduceBytesPerSec: opt.reduceRate(),
		OnPhase:           opt.Trace.Add,
		StepSpans:         opt.PlanStepSpans,
	})
}

// SelectPlanName prices every registered candidate of a collective
// family with the analytical model and returns the cheapest under the
// given objective. Candidates that cannot build for this view (e.g. a
// recursive-doubling schedule on a non-power-of-two communicator) are
// skipped. This is the paper's message-size switchover logic as data: the
// crossover points fall out of the cost model instead of living in
// hard-coded if-chains.
func SelectPlanName(cfg mpi.Config, v plan.View, family string, spec plan.Spec, objective PlanObjective) (string, error) {
	params := model.FromConfig(cfg)
	best := ""
	var bestCost float64
	for _, b := range plan.Candidates(family) {
		p, err := b.Build(v, spec)
		if err != nil {
			continue
		}
		pc := params.PredictPlan(p.ComputeStats())
		cost := pc.Seconds
		if objective == SelectByEnergy {
			cost = pc.Joules
		}
		if best == "" || cost < bestCost {
			best, bestCost = b.Name, cost
		}
	}
	if best == "" {
		return "", fmt.Errorf("collective: no applicable plan builder for family %q at %d ranks", family, v.P)
	}
	return best, nil
}
