package collective

import (
	"fmt"
	"strconv"

	"pacc/internal/model"
	"pacc/internal/mpi"
	"pacc/internal/plan"
	"pacc/internal/topology"
)

// This file glues the schedule-IR layer (internal/plan) into the
// collective entry points: deriving the communicator view builders need,
// resolving which builder runs a call (canonical, forced by name, or
// cost-model auto-selection), and executing the built plan with the
// caller's trace and power options.

// viewOf derives the SPMD-congruent communicator shape a plan builder
// consumes. Every rank computes the identical view, so every rank builds
// the identical plan.
func viewOf(c *mpi.Comm) plan.View {
	p := c.Size()
	v := plan.View{P: p, NodeOf: make([]int, p), SocketA: make([]bool, p)}
	for cr := 0; cr < p; cr++ {
		v.NodeOf[cr] = c.NodeOf(cr)
		v.SocketA[cr] = c.SocketOf(cr) == topology.SocketA
	}
	return v
}

// planSpec translates call options into a build spec.
func planSpec(bytes int64, sizeOf func(src, dst int) int64, opt Options) plan.Spec {
	return plan.Spec{
		Bytes:     bytes,
		SizeOf:    sizeOf,
		FreqScale: opt.Power == FreqScaling || opt.Power == Proposed,
		Phased:    opt.Power == Proposed,
		DeepT:     opt.deepT(),
		Verify:    opt.Verify,
	}
}

// planCacheKey fingerprints one (purpose, name, communicator, spec)
// build so congruent calls can share the result. BuildNamed is a pure
// function of (name, view, spec), and the view is itself a pure function
// of the communicator's group and the world's fixed placement — so the
// communicator's O(1) ShapeKey stands in for the O(P) view content, and
// any two calls with equal keys produce identical plans: the same
// logical communicator seen from different ranks (SPMD congruence), and
// the same call repeated across iterations. Spec.SizeOf is a function
// and cannot be fingerprinted; callers must bypass the cache when it is
// set.
func planCacheKey(purpose, name string, c *mpi.Comm, s plan.Spec) string {
	shape := c.ShapeKey()
	buf := make([]byte, 0, 48+len(purpose)+len(name)+len(shape))
	buf = append(buf, purpose...)
	buf = append(buf, '|')
	buf = append(buf, name...)
	buf = append(buf, '|')
	buf = append(buf, shape...)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, s.Bytes, 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(s.Root), 10)
	buf = append(buf, '|')
	buf = strconv.AppendBool(buf, s.FreqScale)
	buf = append(buf, '|')
	buf = strconv.AppendBool(buf, s.Phased)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(s.DeepT), 10)
	buf = append(buf, '|')
	buf = strconv.AppendBool(buf, s.Verify)
	return string(buf)
}

// buildCached returns the named plan for c's view, building it at most
// once per world for each distinct (name, communicator shape, spec):
// the first caller builds, every congruent call — every other rank of
// the communicator, and every later iteration — reuses the stored plan.
// Without this, each of P ranks builds the full P-rank schedule on
// every call, an O(P² log P)-step allocation storm that dominated
// large-rank runs. The view itself is only derived on a cache miss
// (it, too, is O(P) per call, which at 64k ranks is a second quadratic).
// Plans are immutable after build, so sharing is safe; builds consume
// no virtual time, so caching cannot perturb simulated timing.
func buildCached(c *mpi.Comm, name string, spec plan.Spec) (*plan.Plan, error) {
	if spec.SizeOf != nil {
		return plan.BuildNamed(name, viewOf(c), spec)
	}
	key := planCacheKey("plan", name, c, spec)
	stash := c.World().Stash()
	if cached, ok := stash[key]; ok {
		return cached.(*plan.Plan), nil
	}
	p, err := plan.BuildNamed(name, viewOf(c), spec)
	if err != nil {
		return nil, err
	}
	stash[key] = p
	return p, nil
}

// runPlanned resolves, builds and executes the plan of one collective
// call. canonical is the builder that reproduces the entry point's
// historical schedule; opt.Plan may override it with "auto" (cost-model
// selection over the family's registered candidates) or an explicit
// builder name.
func runPlanned(c *mpi.Comm, family, canonical string, spec plan.Spec, opt Options) error {
	name := canonical
	switch opt.Plan {
	case "", canonical:
	case PlanAuto:
		selected, err := selectCached(c, family, spec, opt.PlanObjective)
		if err != nil {
			return err
		}
		name = selected
	default:
		b, ok := plan.Lookup(opt.Plan)
		if !ok {
			return fmt.Errorf("collective: unknown plan builder %q", opt.Plan)
		}
		if b.Op != family {
			return fmt.Errorf("collective: plan builder %q implements %s, not %s", opt.Plan, b.Op, family)
		}
		name = opt.Plan
	}
	p, err := buildCached(c, name, spec)
	if err != nil {
		return err
	}
	return execPlan(c, p, opt)
}

// selectCached memoizes cost-based plan selection per world: the
// selection prices every candidate (each a full build), so repeating it
// on every rank of every call multiplies the build storm by the
// candidate count. Selection is a pure function of (config, view,
// family, spec, objective), and config is fixed per world.
func selectCached(c *mpi.Comm, family string, spec plan.Spec, objective PlanObjective) (string, error) {
	if spec.SizeOf != nil {
		return SelectPlanName(c.World().Config(), viewOf(c), family, spec, objective)
	}
	key := planCacheKey("sel"+strconv.Itoa(int(objective)), family, c, spec)
	stash := c.World().Stash()
	if cached, ok := stash[key]; ok {
		return cached.(string), nil
	}
	name, err := SelectPlanName(c.World().Config(), viewOf(c), family, spec, objective)
	if err != nil {
		return "", err
	}
	stash[key] = name
	return name, nil
}

// execPlan runs a built plan with the caller's options.
func execPlan(c *mpi.Comm, p *plan.Plan, opt Options) error {
	return plan.Execute(p, plan.Env{
		Comm:              c,
		ReduceBytesPerSec: opt.reduceRate(),
		OnPhase:           opt.Trace.Add,
		StepSpans:         opt.PlanStepSpans,
	})
}

// SelectPlanName prices every registered candidate of a collective
// family with the analytical model and returns the cheapest under the
// given objective. Candidates that cannot build for this view (e.g. a
// recursive-doubling schedule on a non-power-of-two communicator) are
// skipped. This is the paper's message-size switchover logic as data: the
// crossover points fall out of the cost model instead of living in
// hard-coded if-chains.
func SelectPlanName(cfg mpi.Config, v plan.View, family string, spec plan.Spec, objective PlanObjective) (string, error) {
	params := model.FromConfig(cfg)
	best := ""
	var bestCost float64
	for _, b := range plan.Candidates(family) {
		p, err := b.Build(v, spec)
		if err != nil {
			continue
		}
		pc := params.PredictPlan(p.ComputeStats())
		cost := pc.Seconds
		if objective == SelectByEnergy {
			cost = pc.Joules
		}
		if best == "" || cost < bestCost {
			best, bestCost = b.Name, cost
		}
	}
	if best == "" {
		return "", fmt.Errorf("collective: no applicable plan builder for family %q at %d ranks", family, v.P)
	}
	return best, nil
}
