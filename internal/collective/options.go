// Package collective implements MPI collective communication algorithms —
// the default MVAPICH2-style algorithms and the power-aware redesigns of
// Kandalla et al. (ICPP 2010).
//
// Every collective is an SPMD call: all members of the communicator call
// the same function with the same arguments (sizes, options), exactly like
// MPI collectives. Power behavior is selected per call through
// Options.Power:
//
//   - NoPower: run at whatever P/T-state the cores are in (fmax, T0 in a
//     default job) — the paper's "Default (No-Power)" scheme.
//   - FreqScaling: per-call DVFS — every core drops to fmin at the start
//     of the collective and returns to fmax at the end (§V, the scheme
//     the paper compares against, after [5], [6]).
//   - Proposed: the paper's algorithms, which add phased CPU throttling
//     on top of the per-call DVFS (§V-A for Alltoall, §V-B for the
//     shared-memory collectives).
package collective

import (
	"fmt"

	"pacc/internal/mpi"
	"pacc/internal/obs"
	"pacc/internal/power"
	"pacc/internal/simtime"
)

// PowerMode selects the power scheme for one collective call.
type PowerMode int

const (
	// NoPower runs the default algorithm with no power transitions.
	NoPower PowerMode = iota
	// FreqScaling brackets the call with DVFS to fmin and back.
	FreqScaling
	// Proposed runs the paper's power-aware algorithm: DVFS plus
	// phased CPU throttling.
	Proposed
)

func (m PowerMode) String() string {
	switch m {
	case NoPower:
		return "no-power"
	case FreqScaling:
		return "freq-scaling"
	case Proposed:
		return "proposed"
	default:
		return fmt.Sprintf("PowerMode(%d)", int(m))
	}
}

// Options tunes one collective call.
type Options struct {
	// Power selects the power scheme (default NoPower).
	Power PowerMode
	// Trace, when non-nil, receives this rank's per-phase timings.
	Trace *Trace
	// ReduceBytesPerSec is the local reduction rate at full speed for
	// Reduce/Allreduce (combining two buffers). Zero selects 3 GB/s.
	ReduceBytesPerSec float64
	// CoreGranularThrottle enables the ablation of §V-B/VI-B: a
	// future architecture that throttles per core rather than per
	// socket, keeping the leader core at T0 and all other cores at T7
	// during the network phase.
	CoreGranularThrottle bool
	// DeepThrottle overrides the T-state used for cores with no work
	// during a phase (the paper uses T7). Zero selects T7.
	DeepThrottle power.TState
	// PartialThrottle overrides the T-state of the leader socket during
	// the network phase of shared-memory collectives (the paper uses
	// T4). Zero selects T4.
	PartialThrottle power.TState
	// PowerThreshold is the per-rank message size below which the
	// power-aware schemes pass through to the default algorithm at full
	// speed: for latency-bound collectives the DVFS and throttle
	// transition costs exceed any possible savings (the paper's methods
	// target the medium/large messages of Figures 7-8). Zero selects
	// DefaultPowerThreshold; negative applies the scheme at any size.
	PowerThreshold int64
	// Plan selects the schedule builder for plan-backed collectives:
	// empty runs the entry point's canonical schedule, PlanAuto selects
	// the cheapest registered candidate of the collective's family under
	// the analytical cost model, and any other value names a specific
	// builder (see plan.Builders). Entry points that are not plan-backed
	// ignore the field.
	Plan string
	// PlanObjective is the cost-model objective PlanAuto minimizes.
	PlanObjective PlanObjective
	// Verify turns on end-to-end ABFT verification where the call
	// supports it: plan-backed collectives append an OpVerify checksum
	// fold to each rank's schedule (allreduce builders), so memory-burst
	// corruption of a reduction accumulator surfaces as a typed
	// IntegrityError instead of escaping as a silently wrong result. The
	// scalar checked entry points (AllreduceSumChecked and friends) carry
	// verification unconditionally and ignore the field.
	Verify bool
	// PlanStepSpans emits one observability span per executed plan step
	// in addition to the phase spans — a debugging aid. Off by default,
	// which keeps plan-executed collectives trace-identical to their
	// imperative ancestors.
	PlanStepSpans bool
	// refImperative forces the original imperative implementation of a
	// plan-backed entry point. Unexported: the differential tests use it
	// to prove the plan path bit-identical to the reference.
	refImperative bool
}

// PlanAuto is the Options.Plan value that turns on cost-based selection.
const PlanAuto = "auto"

// PlanObjective is the quantity PlanAuto selection minimizes.
type PlanObjective int

const (
	// SelectByLatency picks the candidate with the lowest predicted
	// completion time (the default).
	SelectByLatency PlanObjective = iota
	// SelectByEnergy picks the candidate with the lowest predicted
	// energy.
	SelectByEnergy
)

// DefaultPowerThreshold is the passthrough cutoff used when
// Options.PowerThreshold is zero.
const DefaultPowerThreshold = 16 << 10

// effectivePower resolves the scheme for a call moving bytes per rank.
func (o Options) effectivePower(bytes int64) PowerMode {
	if o.Power == NoPower {
		return NoPower
	}
	th := o.PowerThreshold
	if th == 0 {
		th = DefaultPowerThreshold
	}
	if th > 0 && bytes < th {
		return NoPower
	}
	return o.Power
}

// deepT returns the T-state for fully idled cores.
func (o Options) deepT() power.TState {
	if o.DeepThrottle == power.T0 {
		return power.T7
	}
	return o.DeepThrottle
}

// partialT returns the T-state for the leader socket.
func (o Options) partialT() power.TState {
	if o.PartialThrottle == power.T0 {
		return power.T4
	}
	return o.PartialThrottle
}

func (o Options) reduceRate() float64 {
	if o.ReduceBytesPerSec > 0 {
		return o.ReduceBytesPerSec
	}
	return 3e9
}

// Trace accumulates per-phase wall-clock durations observed by one rank.
type Trace struct {
	phases map[string]simtime.Duration
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{phases: map[string]simtime.Duration{}} }

// Add accrues d into the named phase.
func (t *Trace) Add(name string, d simtime.Duration) {
	if t == nil {
		return
	}
	if t.phases == nil {
		t.phases = map[string]simtime.Duration{}
	}
	t.phases[name] += d
}

// Phase returns the accumulated duration of a phase.
func (t *Trace) Phase(name string) simtime.Duration {
	if t == nil {
		return 0
	}
	return t.phases[name]
}

// timePhase runs fn and accrues its duration under name; with an
// observability bus attached it also emits the interval as a span on the
// calling rank's timeline.
func timePhase(c *mpi.Comm, tr *Trace, name string, fn func()) {
	r := c.Owner()
	start := r.Now()
	fn()
	end := r.Now()
	tr.Add(name, end.Sub(start))
	if b := r.World().Obs(); b != nil {
		b.Span(r.ObsTrack(), "phase "+name, start, end, nil)
	}
}

// timeCollective wraps one top-level collective call: it accrues the
// total phase into opt.Trace and, with an observability bus attached,
// emits a per-rank span named after the operation and records per-call
// metrics — call count, rank 0's wall time, and the cluster energy drawn
// while rank 0 was inside the call. bytes < 0 means the per-pair size
// varies (the v variants); the span then omits the bytes arg.
func timeCollective(c *mpi.Comm, opt Options, op string, bytes int64, fn func()) {
	r := c.Owner()
	w := r.World()
	b := w.Obs()
	if b == nil {
		timePhase(c, opt.Trace, PhaseTotal, fn)
		return
	}
	args := map[string]any{"power": opt.Power.String()}
	if bytes >= 0 {
		args["bytes"] = bytes
	}
	rank0 := c.Rank() == 0
	var e0 float64
	if rank0 {
		e0 = w.Station().EnergyJoules()
	}
	start := r.Now()
	fn()
	end := r.Now()
	opt.Trace.Add(PhaseTotal, end.Sub(start))
	b.Span(r.ObsTrack(), op, start, end, args)
	if rank0 {
		b.Add(obs.CollectivePrefix+op+".calls", 1)
		b.SetHistBuckets(obs.CollectivePrefix+op+".energy_j", obs.EnergyBuckets)
		b.Observe(obs.CollectivePrefix+op+".energy_j", w.Station().EnergyJoules()-e0)
		b.SetHistBuckets(obs.CollectivePrefix+op+".seconds", obs.SpanDurationBuckets)
		b.Observe(obs.CollectivePrefix+op+".seconds", end.Sub(start).Seconds())
	}
}

// withFreqScaling brackets body with the per-call DVFS transitions used by
// both power-aware schemes: all cores to fmin before, back to fmax after.
func withFreqScaling(c *mpi.Comm, body func()) {
	r := c.Owner()
	r.ScaleDown()
	body()
	r.ScaleUp()
}

// Standard phase names used by the built-in collectives.
const (
	PhaseTotal   = "total"
	PhaseIntra   = "intra"
	PhaseNetwork = "network"
	PhasePhase2  = "phase2"
	PhasePhase3  = "phase3"
	PhasePhase4  = "phase4"
)
