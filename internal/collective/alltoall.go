package collective

import (
	"pacc/internal/mpi"
	"pacc/internal/power"
)

// bruckThreshold is the per-pair message size at or below which Alltoall
// uses the hypercube (Bruck) algorithm, mirroring MVAPICH2's small-message
// cutover (§IV-A).
const bruckThreshold = 8 << 10

// Alltoall performs a personalized all-to-all exchange: every rank sends a
// distinct block of bytes to every other rank. The algorithm follows
// MVAPICH2: Bruck for small messages, pairwise exchange for large ones.
// Options.Power selects the power scheme; Proposed uses the paper's
// phased, throttling-aware schedule (§V-A).
func Alltoall(c *mpi.Comm, bytes int64, opt Options) error {
	if err := checkBytes("alltoall", bytes); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	var err error
	timeCollective(c, opt, "alltoall", bytes, func() {
		if opt.refImperative {
			switch opt.Power {
			case Proposed:
				withFreqScaling(c, func() {
					alltoallPowerAware(c, constSize(bytes), opt)
				})
			case FreqScaling:
				withFreqScaling(c, func() { alltoallDefault(c, bytes, opt) })
			default:
				alltoallDefault(c, bytes, opt)
			}
			return
		}
		canonical := "alltoall_pairwise"
		switch {
		case opt.Power == Proposed:
			canonical = "alltoall_phased"
		case bytes <= bruckThreshold:
			canonical = "alltoall_bruck"
		}
		err = runPlanned(c, "alltoall", canonical, planSpec(bytes, nil, opt), opt)
	})
	return err
}

func alltoallDefault(c *mpi.Comm, bytes int64, opt Options) {
	if bytes <= bruckThreshold {
		alltoallBruck(c, bytes, opt)
		return
	}
	alltoallPairwise(c, constSize(bytes), opt)
}

// AlltoallPairwise runs the pairwise-exchange algorithm regardless of
// message size (the paper's large-message baseline; §V-A phased schedule
// under Proposed). Plan-backed.
func AlltoallPairwise(c *mpi.Comm, bytes int64, opt Options) error {
	if err := checkBytes("alltoall_pairwise", bytes); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	var err error
	timeCollective(c, opt, "alltoall_pairwise", bytes, func() {
		if opt.refImperative {
			switch opt.Power {
			case Proposed:
				withFreqScaling(c, func() { alltoallPowerAware(c, constSize(bytes), opt) })
			case FreqScaling:
				withFreqScaling(c, func() { alltoallPairwise(c, constSize(bytes), opt) })
			default:
				alltoallPairwise(c, constSize(bytes), opt)
			}
			return
		}
		canonical := "alltoall_pairwise"
		if opt.Power == Proposed {
			canonical = "alltoall_phased"
		}
		err = runPlanned(c, "alltoall", canonical, planSpec(bytes, nil, opt), opt)
	})
	return err
}

// AlltoallBruck runs the hypercube algorithm regardless of message size.
// Plan-backed.
func AlltoallBruck(c *mpi.Comm, bytes int64, opt Options) error {
	if err := checkBytes("alltoall_bruck", bytes); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	var err error
	timeCollective(c, opt, "alltoall_bruck", bytes, func() {
		if opt.refImperative {
			if opt.Power == FreqScaling || opt.Power == Proposed {
				// Bruck is only used for small messages, where the
				// phased schedule has nothing to hide behind; both
				// power-aware schemes reduce to per-call DVFS.
				withFreqScaling(c, func() { alltoallBruck(c, bytes, opt) })
				return
			}
			alltoallBruck(c, bytes, opt)
			return
		}
		err = runPlanned(c, "alltoall", "alltoall_bruck", planSpec(bytes, nil, opt), opt)
	})
	return err
}

// Alltoallv performs a personalized exchange with per-pair sizes:
// sizeOf(src, dst) is the number of bytes src sends to dst (communicator
// ranks). All ranks must pass size functions that agree. Zero-size pairs
// are legal; negative sizes are rejected.
func Alltoallv(c *mpi.Comm, sizeOf func(src, dst int) int64, opt Options) error {
	if err := checkSizeMatrix("alltoallv", c.Size(), sizeOf); err != nil {
		return err
	}
	timeCollective(c, opt, "alltoallv", -1, func() {
		switch opt.Power {
		case Proposed:
			withFreqScaling(c, func() { alltoallPowerAware(c, sizeOf, opt) })
		case FreqScaling:
			withFreqScaling(c, func() { alltoallPairwise(c, sizeOf, opt) })
		default:
			alltoallPairwise(c, sizeOf, opt)
		}
	})
	return nil
}

func constSize(bytes int64) func(src, dst int) int64 {
	return func(src, dst int) int64 { return bytes }
}

// exchangeWith performs the blocking pairwise exchange of one step:
// send my block to peer and receive peer's block, with the canonical pair
// tag so arbitrary schedule orders still match.
func exchangeWith(c *mpi.Comm, block, peer int, sizeOf func(src, dst int) int64) {
	me := c.Rank()
	tag := c.PairTag(block, me, peer)
	c.Exchange(peer, sizeOf(me, peer), tag, peer, sizeOf(peer, me), tag)
}

// alltoallPairwise is the classic pairwise-exchange schedule: P-1 steps,
// XOR partnering for power-of-two communicators, ring offsets otherwise.
// With MVAPICH2 bunch binding the first c-1 steps stay inside the node and
// the remaining P-c cross the network (§V-A).
func alltoallPairwise(c *mpi.Comm, sizeOf func(src, dst int) int64, opt Options) {
	p, me := c.Size(), c.Rank()
	localCopy(c, sizeOf(me, me))
	if p <= 1 {
		return
	}
	block := c.TagBlock()
	pow2 := isPow2(p)
	for i := 1; i < p; i++ {
		var peer int
		if pow2 {
			peer = me ^ i
		} else {
			peer = (me + i) % p
		}
		intra := c.SameNode(me, peer)
		name := PhaseNetwork
		if intra {
			name = PhaseIntra
		}
		timePhase(c, opt.Trace, name, func() {
			if pow2 {
				exchangeWith(c, block, peer, sizeOf)
				return
			}
			// Ring offsets: send to (me+i), receive from (me-i).
			from := (me - i + p) % p
			c.Exchange(peer, sizeOf(me, peer), c.PairTag(block, me, peer),
				from, sizeOf(from, me), c.PairTag(block, from, me))
		})
	}
}

// alltoallBruck is the store-and-forward hypercube algorithm [21]: in
// round k every rank ships the blocks whose destination index has bit k
// set to rank+2^k. Each round moves ~P/2 blocks, so it wins for small
// messages where startup dominates.
func alltoallBruck(c *mpi.Comm, bytes int64, opt Options) {
	p, me := c.Size(), c.Rank()
	if p <= 1 {
		localCopy(c, bytes)
		return
	}
	block := c.TagBlock()
	// Initial rotation: block i moves to position (i-me) mod p.
	localCopy(c, int64(p)*bytes)
	round := 0
	for dist := 1; dist < p; dist <<= 1 {
		cnt := 0
		for i := 1; i < p; i++ {
			if i&dist != 0 {
				cnt++
			}
		}
		to := (me + dist) % p
		from := (me - dist + p) % p
		tag := block + round
		c.Exchange(to, int64(cnt)*bytes, tag, from, int64(cnt)*bytes, tag)
		round++
	}
	// Final inverse rotation.
	localCopy(c, int64(p)*bytes)
}

// alltoallPowerAware is the paper's §V-A algorithm (Figure 3). The caller
// already scaled all cores to fmin. The schedule is:
//
//	Phase 1: intra-node pairwise exchanges (c steps including self).
//	Phase 2: socket-A processes exchange with socket-A processes of every
//	         other node while socket B sits fully throttled (T7).
//	Phase 3: roles swap: B exchanges B-to-B, A sits at T7.
//	Phase 4: N-1 tournament rounds over node pairs (i, k), i < k: first
//	         A_i <-> B_k (B_i and A_k at T7), then B_i <-> A_k.
//
// Communicators whose nodes lack a populated second socket (e.g. a 4-way
// bunch layout) fall back to the plain pairwise schedule — the paper's
// algorithm assumes the §V-C bunch mapping with both sockets in use.
func alltoallPowerAware(c *mpi.Comm, sizeOf func(src, dst int) int64, opt Options) {
	r := c.Owner()
	p, me := c.Size(), c.Rank()
	if p <= 1 {
		localCopy(c, sizeOf(me, me))
		return
	}
	lay := layoutOf(c)
	n := lay.numNodes()
	myNodeIdx := lay.idxOfNode[c.NodeOf(me)]
	for i := 0; i < n; i++ {
		if len(lay.a[i]) != len(lay.b[i]) || len(lay.a[i]) == 0 {
			alltoallPairwise(c, sizeOf, opt)
			return
		}
	}
	block := c.TagBlock()
	groupA, groupB := lay.a[myNodeIdx], lay.b[myNodeIdx]
	inA := indexIn(groupA, me) >= 0
	var myIdx int
	var buddy int // same index in the opposite socket group of my node
	if inA {
		myIdx = indexIn(groupA, me)
		buddy = groupB[myIdx]
	} else {
		myIdx = indexIn(groupB, me)
		buddy = groupA[myIdx]
	}
	// Notification tags live above the pair-tag region (p^2 <= 2^18 for
	// supported sizes).
	notify := func(sub int) int { return block + (1 << 18) + sub }

	// Phase 1: all intra-node exchanges, self block included. The
	// tournament pairing is mutual, so each step's blocking exchange
	// has both endpoints participating simultaneously.
	timePhase(c, opt.Trace, PhaseIntra, func() {
		localCopy(c, sizeOf(me, me))
		locals := lay.all[myNodeIdx]
		li := indexIn(locals, me)
		m := len(locals)
		for s := 1; s <= tournamentRounds(m); s++ {
			pi := tournamentPeer(m, s, li)
			if pi < 0 || pi >= m {
				continue
			}
			exchangeWith(c, block, locals[pi], sizeOf)
		}
	})
	if n < 2 {
		return
	}

	// crossNodeSweep exchanges with one group of ranks on a peer node:
	// k sub-steps, sub-step x pairing my group index a with peer index
	// (x - a) mod k — mutual, so both sides meet in the same sub-step.
	crossNodeSweep := func(peers []int) {
		k := len(peers)
		for x := 0; x < k; x++ {
			exchangeWith(c, block, peers[((x-myIdx)%k+k)%k], sizeOf)
		}
	}

	// sameSocketSweep runs phases 2 and 3: a node-level tournament, in
	// each round exchanging with the same-socket group of the paired
	// node.
	sameSocketSweep := func(groups [][]int) {
		for s := 1; s <= tournamentRounds(n); s++ {
			peerIdx := tournamentPeer(n, s, myNodeIdx)
			if peerIdx < 0 || peerIdx >= n {
				continue
			}
			crossNodeSweep(groups[peerIdx])
		}
	}

	// Phase 2: A active, B throttled. B's throttle-down cost hides
	// behind A's communication (§VI-A.2).
	timePhase(c, opt.Trace, PhasePhase2, func() {
		if inA {
			sameSocketSweep(lay.a)
			r.Send(c.Global(buddy), 0, notify(0))
		} else {
			r.SetThrottle(opt.deepT())
			r.Recv(c.Global(buddy), 0, notify(0))
			r.SetThrottle(power.T0)
		}
	})

	// Phase 3: B active, A throttled.
	timePhase(c, opt.Trace, PhasePhase3, func() {
		if !inA {
			sameSocketSweep(lay.b)
			r.Send(c.Global(buddy), 0, notify(1))
		} else {
			r.SetThrottle(opt.deepT())
			r.Recv(c.Global(buddy), 0, notify(1))
			r.SetThrottle(power.T0)
		}
	})

	// Phase 4: cross-socket exchanges over node pairs. In each round my
	// node is paired with one peer node (tournament schedule so the
	// pairing is mutual); within the round the lower-indexed node's A
	// group goes first.
	timePhase(c, opt.Trace, PhasePhase4, func() {
		for round := 1; round <= tournamentRounds(n); round++ {
			peerIdx := tournamentPeer(n, round, myNodeIdx)
			if peerIdx < 0 || peerIdx >= n {
				// Bye round (odd node count): idle fully throttled.
				continue
			}
			// Sub-step 1: A of the lower node with B of the higher.
			activeFirst := inA == (myNodeIdx < peerIdx)
			if activeFirst {
				if inA {
					crossNodeSweep(lay.b[peerIdx])
				} else {
					crossNodeSweep(lay.a[peerIdx])
				}
				r.Send(c.Global(buddy), 0, notify(2+2*round))
				// Sub-step 2: wait fully throttled for the buddy.
				r.SetThrottle(opt.deepT())
				r.Recv(c.Global(buddy), 0, notify(3+2*round))
				r.SetThrottle(power.T0)
			} else {
				r.SetThrottle(opt.deepT())
				r.Recv(c.Global(buddy), 0, notify(2+2*round))
				r.SetThrottle(power.T0)
				if inA {
					crossNodeSweep(lay.b[peerIdx])
				} else {
					crossNodeSweep(lay.a[peerIdx])
				}
				r.Send(c.Global(buddy), 0, notify(3+2*round))
			}
		}
	})
}
