package collective

import (
	"bytes"
	"fmt"
	"testing"

	"pacc/internal/fault"
	"pacc/internal/mpi"
	"pacc/internal/obs"
	"pacc/internal/simtime"
)

// The differential suite: every plan-backed entry point must be
// observably identical to the imperative implementation it replaced —
// same simulated completion time, same per-core energy, and byte-for-byte
// identical exported trace and metrics — across communicator shapes,
// power modes and fault injection. The plan path and the reference differ
// only in Options.refImperative.

// diffResult captures everything observable about one simulated run.
type diffResult struct {
	elapsed simtime.Duration
	energy  []float64
	trace   string
	metrics string
}

func captureRun(t *testing.T, cfg mpi.Config, call func(c *mpi.Comm, opt Options) error, opt Options) diffResult {
	t.Helper()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := obs.NewBus(w.Engine())
	w.AttachObs(b)
	var callErr error
	w.Launch(func(r *mpi.Rank) {
		if err := call(mpi.CommWorld(r), opt); err != nil && callErr == nil {
			callErr = err
		}
	})
	d, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if callErr != nil {
		t.Fatal(callErr)
	}
	res := diffResult{elapsed: d}
	for _, core := range w.Station().Cores() {
		res.energy = append(res.energy, core.EnergyJoules())
	}
	var tb, mb bytes.Buffer
	if err := b.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteMetricsJSON(&mb); err != nil {
		t.Fatal(err)
	}
	res.trace = tb.String()
	res.metrics = mb.String()
	return res
}

// diffOps maps each plan-backed entry point to a closure with the payload
// baked in. 64K clears the power threshold so FreqScaling/Proposed are
// exercised for real; the small alltoall pins the Bruck cutover.
var diffOps = map[string]func(c *mpi.Comm, opt Options) error{
	"allgather_ring": func(c *mpi.Comm, opt Options) error { return AllgatherRing(c, 64<<10, opt) },
	"allgather_rd":   func(c *mpi.Comm, opt Options) error { return AllgatherRD(c, 64<<10, opt) },
	"allreduce_rd":   func(c *mpi.Comm, opt Options) error { return AllreduceRD(c, 64<<10, opt) },
	"bcast_binomial": func(c *mpi.Comm, opt Options) error { return BcastBinomial(c, 0, 64<<10, opt) },
	"bcast_binomial_shifted_root": func(c *mpi.Comm, opt Options) error {
		return BcastBinomial(c, c.Size()-1, 64<<10, opt)
	},
	"alltoall":          func(c *mpi.Comm, opt Options) error { return Alltoall(c, 64<<10, opt) },
	"alltoall_small":    func(c *mpi.Comm, opt Options) error { return Alltoall(c, 2<<10, opt) },
	"alltoall_pairwise": func(c *mpi.Comm, opt Options) error { return AlltoallPairwise(c, 64<<10, opt) },
	"alltoall_bruck":    func(c *mpi.Comm, opt Options) error { return AlltoallBruck(c, 64<<10, opt) },
}

func diffConfigs() map[string]mpi.Config {
	out := map[string]mpi.Config{}
	for _, shape := range []struct{ procs, ppn int }{
		{2, 2}, {4, 4}, {8, 8}, {16, 8},
	} {
		cfg := mpi.DefaultConfig()
		cfg.NProcs = shape.procs
		cfg.PPN = shape.ppn
		out[fmt.Sprintf("%dx%d", shape.procs, shape.ppn)] = cfg
	}
	return out
}

func faultVariants() map[string]*fault.Spec {
	return map[string]*fault.Spec{
		"healthy": nil,
		"faulty": {
			Seed:        7,
			EagerLoss:   0.03,
			RetryBudget: 8,
			LinkFaults: []fault.LinkFault{
				{Link: "node0-up", Factor: 0.5, Start: 0, Duration: 1000 * simtime.Second},
			},
		},
	}
}

func assertIdentical(t *testing.T, ref, got diffResult) {
	t.Helper()
	if got.elapsed != ref.elapsed {
		t.Errorf("elapsed: plan %v, imperative %v", got.elapsed, ref.elapsed)
	}
	if len(got.energy) != len(ref.energy) {
		t.Fatalf("core count: plan %d, imperative %d", len(got.energy), len(ref.energy))
	}
	for i := range ref.energy {
		if got.energy[i] != ref.energy[i] {
			t.Errorf("core %d energy: plan %v J, imperative %v J", i, got.energy[i], ref.energy[i])
		}
	}
	if got.trace != ref.trace {
		t.Errorf("exported traces differ (plan %d bytes, imperative %d bytes)", len(got.trace), len(ref.trace))
	}
	if got.metrics != ref.metrics {
		t.Errorf("exported metrics differ (plan %d bytes, imperative %d bytes)", len(got.metrics), len(ref.metrics))
	}
}

func TestPlanDifferential(t *testing.T) {
	modes := map[string]PowerMode{
		"no-power":     NoPower,
		"freq-scaling": FreqScaling,
		"proposed":     Proposed,
	}
	for cfgName, cfg := range diffConfigs() {
		for opName, call := range diffOps {
			for modeName, mode := range modes {
				for faultName, spec := range faultVariants() {
					name := fmt.Sprintf("%s/%s/%s/%s", opName, cfgName, modeName, faultName)
					t.Run(name, func(t *testing.T) {
						c := cfg
						c.Fault = spec
						ref := captureRun(t, c, call, Options{Power: mode, refImperative: true})
						got := captureRun(t, c, call, Options{Power: mode})
						assertIdentical(t, ref, got)
					})
				}
			}
		}
	}
}

// TestPlanDifferentialPhaseTraces: the per-rank phase accounting
// (Options.Trace) must also agree between the two forms.
func TestPlanDifferentialPhaseTraces(t *testing.T) {
	cfg := mpi.DefaultConfig()
	cfg.NProcs, cfg.PPN = 16, 8
	phases := []string{PhaseTotal, PhaseIntra, PhaseNetwork, PhasePhase2, PhasePhase3, PhasePhase4}
	collect := func(ref bool) []*Trace {
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		traces := make([]*Trace, cfg.NProcs)
		var callErr error
		w.Launch(func(r *mpi.Rank) {
			tr := NewTrace()
			traces[r.ID()] = tr
			opt := Options{Power: Proposed, Trace: tr, refImperative: ref}
			if err := AlltoallPairwise(mpi.CommWorld(r), 64<<10, opt); err != nil && callErr == nil {
				callErr = err
			}
		})
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if callErr != nil {
			t.Fatal(callErr)
		}
		return traces
	}
	refs, gots := collect(true), collect(false)
	for r := range refs {
		for _, ph := range phases {
			if got, want := gots[r].Phase(ph), refs[r].Phase(ph); got != want {
				t.Errorf("rank %d phase %q: plan %v, imperative %v", r, ph, got, want)
			}
		}
	}
}
