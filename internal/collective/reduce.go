package collective

import (
	"pacc/internal/mpi"
	"pacc/internal/power"
	"pacc/internal/simtime"
)

// Reduce combines bytes from every rank onto communicator rank root using
// the multi-core aware scheme: node-local contributions are merged by the
// node leader through shared memory, then the leaders run a binomial
// reduce across the network. Options.Power selects the power schemes of
// §V-B (Proposed throttles the non-leader socket to T7 and the leader
// socket to T4 during the network phase).
func Reduce(c *mpi.Comm, root int, bytes int64, opt Options) error {
	if err := checkBytes("reduce", bytes); err != nil {
		return err
	}
	if err := checkRoot("reduce", root, c.Size()); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	timeCollective(c, opt, "reduce", bytes, func() {
		switch opt.Power {
		case Proposed:
			withFreqScaling(c, func() { reduceMC(c, root, bytes, opt, true) })
		case FreqScaling:
			withFreqScaling(c, func() { reduceMC(c, root, bytes, opt, false) })
		default:
			reduceMC(c, root, bytes, opt, false)
		}
	})
	return nil
}

// ReduceBinomial reduces with the flat binomial tree, ignoring node
// topology.
func ReduceBinomial(c *mpi.Comm, root int, bytes int64, opt Options) error {
	if err := checkBytes("reduce_binomial", bytes); err != nil {
		return err
	}
	if err := checkRoot("reduce_binomial", root, c.Size()); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	timeCollective(c, opt, "reduce_binomial", bytes, func() {
		if opt.Power == FreqScaling || opt.Power == Proposed {
			withFreqScaling(c, func() { binomialReduce(c, root, bytes, opt, c.TagBlock()) })
			return
		}
		binomialReduce(c, root, bytes, opt, c.TagBlock())
	})
	return nil
}

// reduceOp charges the cost of merging one buffer of the given size into
// the accumulator — streaming work, so it stretches with the copy
// slowdown rather than the full clock ratio.
func reduceOp(c *mpi.Comm, bytes int64, opt Options) {
	c.Owner().StreamCompute(simtime.DurationOf(float64(bytes) / opt.reduceRate()))
}

func reduceMC(c *mpi.Comm, root int, bytes int64, opt Options, throttle bool) {
	r := c.Owner()
	me := c.Rank()
	if c.Size() == 1 {
		return
	}
	shmC, leadC := c.SplitByNode()
	block := c.TagBlock()
	isLeader := leadC != nil
	leaderSock := leaderSocketOf(shmC)

	// Intra-node phase: non-leaders write their contribution into the
	// shared region and notify; the leader merges them in.
	timePhase(c, opt.Trace, PhaseIntra, func() {
		if shmC.Rank() != 0 {
			localCopy(c, bytes)
			shmC.Send(0, 0, ctrlTag(block, shmC.Rank()))
		} else {
			for i := 1; i < shmC.Size(); i++ {
				shmC.Recv(i, 0, ctrlTag(block, i))
				localCopy(c, bytes)
				reduceOp(c, bytes, opt)
			}
		}
	})

	// §V-B throttle schedule for the network phase.
	if throttle {
		switch {
		case opt.CoreGranularThrottle && isLeader:
		case opt.CoreGranularThrottle:
			r.SetThrottle(opt.deepT())
		case c.SocketOf(me) == leaderSock:
			r.SetThrottle(opt.partialT())
		default:
			r.SetThrottle(opt.deepT())
		}
	}

	// Network phase: binomial reduce across leaders to the root's
	// leader, then a hop to the root if it is not a leader.
	lay := layoutOf(c)
	rootLeader := lay.all[lay.idxOfNode[c.NodeOf(root)]][0]
	timePhase(c, opt.Trace, PhaseNetwork, func() {
		if isLeader && leadC.Size() > 1 {
			lr := 0
			for i := 0; i < leadC.Size(); i++ {
				if leadC.Global(i) == c.Global(rootLeader) {
					lr = i
					break
				}
			}
			binomialReduce(leadC, lr, bytes, opt, leadC.TagBlock())
		}
	})
	if throttle && isLeader {
		r.SetThrottle(power.T0)
	}
	if me == rootLeader && root != rootLeader {
		c.Send(root, bytes, ctrlTag(block, 1<<12))
	}
	if me == root && root != rootLeader {
		c.Recv(rootLeader, bytes, ctrlTag(block, 1<<12))
	}

	// Release: with throttling, non-leaders wait at T7 until the leader
	// finishes the network phase, then restore T0 (the paper's
	// "throttled up at the end of it").
	if throttle {
		nblock := shmC.TagBlock()
		if shmC.Rank() == 0 {
			for i := 1; i < shmC.Size(); i++ {
				shmC.Send(i, 0, ctrlTag(nblock, i))
			}
		} else {
			shmC.Recv(0, 0, ctrlTag(nblock, shmC.Rank()))
			r.SetThrottle(power.T0)
		}
	}
}

// binomialReduce runs the classic binomial reduction tree: in round k,
// ranks with bit k set send their partial result toward the root.
func binomialReduce(c *mpi.Comm, root int, bytes int64, opt Options, block int) {
	n, me := c.Size(), c.Rank()
	if n == 1 {
		return
	}
	vr := (me - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if vr&mask != 0 {
			parent := ((vr - mask) + root) % n
			c.Send(parent, bytes, c.PairTag(block, me, parent))
			return
		}
		peer := vr + mask
		if peer < n {
			child := (peer + root) % n
			c.Recv(child, bytes, c.PairTag(block, child, me))
			reduceOp(c, bytes, opt)
		}
	}
}
