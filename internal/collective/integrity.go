package collective

import (
	"errors"
	"fmt"

	"pacc/internal/fault"
	"pacc/internal/mpi"
	"pacc/internal/obs"
	"pacc/internal/plan"
	"pacc/internal/simtime"
)

// ABFT-checked collectives: the value-carrying allreduce variants gain a
// checksum shadow lane that rides the same simulated messages (the
// multi-lane wire board), is reduced by the same arithmetic in the same
// order, and is compared against the value lane when the collective
// completes. The transport's ICRC already guarantees that in-flight
// corruption never reaches the application (see internal/mpi/integrity.go);
// the checked collectives close the remaining gap — corruption of the
// reduction accumulators in memory (fault.MemBurst) — by turning a
// silently wrong answer into a typed VerificationError the resilient
// runner can retry.

// VerificationError reports a failed end-to-end ABFT verification: the
// value lane and the checksum lane of a checked collective diverged, which
// means a memory-corruption event hit one of the reduction buffers after
// the transport delivered them intact.
type VerificationError struct {
	// Op names the collective whose verification failed.
	Op string
	// Sum and Check are the diverged value and checksum lanes (zero when
	// Peer is set).
	Sum, Check float64
	// Peer marks an error learned through the round agreement rather than
	// observed locally: another member detected a mismatch and voted to
	// retry the round, while this rank's own lanes agreed.
	Peer bool
}

func (e *VerificationError) Error() string {
	if e.Peer {
		return fmt.Sprintf("collective %s: abft verification failed on a peer rank (agreement vote)", e.Op)
	}
	return fmt.Sprintf("collective %s: abft checksum mismatch (sum %g, check %g)", e.Op, e.Sum, e.Check)
}

// IsIntegrity reports whether err stems from detected data corruption at
// any layer: a transport message undeliverable within its retry budget
// (mpi.IntegrityError), a failed OpVerify step in an executed plan
// (plan.IntegrityError), or a checked collective's lane mismatch
// (VerificationError). RunResilient treats all of them like a failed
// round: revoke, agree, restore power, retry.
func IsIntegrity(err error) bool {
	var ve *VerificationError
	var pe *plan.IntegrityError
	return errors.As(err, &ve) || errors.As(err, &pe) || mpi.IsIntegrity(err)
}

// redVal is the payload of one reduction message: the running sum plus,
// in checked mode, the ABFT checksum shadow lane. One-lane (unchecked)
// values move through exactly the calls the historical float64 code made,
// so the unchecked schedules stay bit-identical.
type redVal struct {
	v, chk  float64
	checked bool
}

func (a redVal) lanes() []float64 {
	if a.checked {
		return []float64{a.v, a.chk}
	}
	return []float64{a.v}
}

// add folds x into a on every lane.
func (a redVal) add(x redVal) redVal {
	a.v += x.v
	a.chk += x.chk
	return a
}

func laneCount(checked bool) int {
	if checked {
		return 2
	}
	return 1
}

func redOf(ls []float64, checked bool) redVal {
	if checked {
		return redVal{v: ls[0], chk: ls[1], checked: true}
	}
	return redVal{v: ls[0]}
}

// sendRed ships a reduction value to communicator rank dst.
func sendRed(cc *mpi.Comm, dst int, bytes int64, tag int, a redVal) error {
	return cc.SendValues(dst, bytes, tag, a.lanes()...)
}

// recvRed receives a reduction value from communicator rank src.
func recvRed(cc *mpi.Comm, src int, bytes int64, tag int, checked bool) (redVal, error) {
	ls, err := cc.RecvValues(src, bytes, tag, laneCount(checked))
	if err != nil {
		return redVal{checked: checked}, err
	}
	return redOf(ls, checked), nil
}

// maybeCorrupt passes one freshly written float64 through the injector's
// memory-corruption model: during an active burst window covering this
// rank, the value comes back with one mantissa bit flipped. A nil or
// burst-free spec is a strict no-op, preserving bit-identical behavior.
func maybeCorrupt(r *mpi.Rank, v float64) float64 {
	w := r.World()
	h, hit := w.Injector().MemCorrupt(r.ID(), r.Now().Sub(simtime.Time(0)))
	if !hit {
		return v
	}
	if b := w.Obs(); b != nil {
		b.Add(obs.CtrFaultMemCorruptions, 1)
		b.Instant(r.ObsTrack(), "mem corrupt", nil)
	}
	return fault.CorruptFloat(v, h)
}

// corruptRed exposes a reduction value's buffer to memory corruption.
// Only the value lane is at risk: the checksum lane models a small,
// register-resident shadow accumulator, which is what makes the final
// lane comparison a detector instead of a coin flip.
func corruptRed(r *mpi.Rank, a redVal) redVal {
	a.v = maybeCorrupt(r, a.v)
	return a
}

// verifyCharge charges the streaming cost of one ABFT checksum fold over
// the payload. The scalar lanes stand in for real vectors; this is the
// time cost the ≤3% overhead budget sees.
func verifyCharge(r *mpi.Rank, bytes int64) {
	if bytes <= 0 {
		return
	}
	r.StreamCompute(simtime.DurationOf(float64(bytes) / plan.DefaultVerifyBytesPerSec))
}

// verifyRed is the end-of-collective verification: fold the output
// checksum and compare lanes. Exact equality is correct here — both lanes
// accumulate the same values in the same order at every rank, so they are
// bitwise equal unless a corruption event intervened.
func verifyRed(c *mpi.Comm, op string, bytes int64, a redVal) error {
	r := c.Owner()
	verifyCharge(r, bytes)
	if a.v == a.chk {
		return nil
	}
	if b := r.World().Obs(); b != nil {
		b.Add(obs.CtrIntegrityVerifyFails, 1)
		b.Instant(r.ObsTrack(), "abft verify failed", map[string]any{"op": op})
	}
	return &VerificationError{Op: op, Sum: a.v, Check: a.chk}
}

// AllreduceSumChecked is AllreduceSum with end-to-end ABFT verification:
// same topology-aware schedule, same power behavior, plus a checksum lane
// on every message and a verification fold at the end. On a mismatch the
// result is returned alongside a VerificationError. Note that without an
// agreement round only the ranks downstream of the corruption observe the
// mismatch; callers that need a group-consistent verdict use the
// fault-tolerant AllreduceSumFTChecked.
func AllreduceSumChecked(c *mpi.Comm, bytes int64, v float64, opt Options) (float64, error) {
	if err := checkBytes("allreduce_topo_checked", bytes); err != nil {
		return v, err
	}
	opt.Power = opt.effectivePower(bytes)
	r := c.Owner()
	out := redVal{v: v, chk: v, checked: true}
	var vErr error
	timeCollective(c, opt, "allreduce_topo_checked", bytes, func() {
		run := func() {
			// The input checksum folds before anything can corrupt the
			// buffer; the shadow lane is trustworthy from here on.
			verifyCharge(r, bytes)
			out = allreduceSum(c, bytes, out, opt)
			vErr = verifyRed(c, "allreduce_topo_checked", bytes, out)
		}
		if opt.Power == FreqScaling || opt.Power == Proposed {
			withFreqScaling(c, run)
			return
		}
		run()
	})
	return out.v, vErr
}

// allreduceSumChainChecked is one attempt of the checked chain allreduce:
// the chain schedule of allreduceSumChain carrying a checksum lane, with
// the verification fold at the end.
func allreduceSumChainChecked(c *mpi.Comm, op string, bytes int64, v float64, opt Options) (float64, error) {
	verifyCharge(c.Owner(), bytes)
	out, err := allreduceSumChainRed(c, bytes, redVal{v: v, chk: v, checked: true}, opt)
	if err != nil {
		return 0, err
	}
	return out.v, verifyRed(c, op, bytes, out)
}

// AllreduceSumFTChecked is AllreduceSumFT with end-to-end ABFT
// verification. A failed verification is a recoverable round: the member
// that caught the mismatch votes to retry through the round agreement, so
// every survivor — including ranks whose own lanes agreed — retries
// together on a fresh communicator, exactly like a crash recovery. The
// call succeeds once a round completes with no failures and no
// verification vetoes anywhere in the group.
func AllreduceSumFTChecked(c *mpi.Comm, bytes int64, v float64, opt Options) (float64, *mpi.Comm, error) {
	if err := checkBytes("allreduce_ft_checked", bytes); err != nil {
		return 0, c, err
	}
	power := opt.effectivePower(bytes) != NoPower
	var sum float64
	comm, err := RunResilient(c, func(cc *mpi.Comm) error {
		var roundErr error
		timeCollective(cc, opt, "allreduce_ft_checked", bytes, func() {
			if power {
				cc.Owner().ScaleDown()
			}
			sum, roundErr = allreduceSumChainChecked(cc, "allreduce_ft_checked", bytes, v, opt)
			if power {
				cc.Owner().ScaleUp()
			}
		})
		return roundErr
	})
	return sum, comm, err
}
