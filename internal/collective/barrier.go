package collective

import (
	"pacc/internal/mpi"
	"pacc/internal/obs"
)

// Barrier synchronizes all members of the communicator with the
// dissemination algorithm: ceil(log2 P) rounds; in round k each rank
// signals (rank + 2^k) mod P and waits for (rank - 2^k) mod P.
func Barrier(c *mpi.Comm) {
	p := c.Size()
	if p <= 1 {
		return
	}
	r := c.Owner()
	if b := r.World().Obs(); b != nil {
		start := r.Now()
		defer func() {
			b.Span(r.ObsTrack(), "barrier", start, r.Now(), nil)
			if c.Rank() == 0 {
				b.Add(obs.CollectivePrefix+"barrier.calls", 1)
			}
		}()
	}
	me := c.Rank()
	block := c.TagBlock()
	round := 0
	for dist := 1; dist < p; dist <<= 1 {
		to := (me + dist) % p
		from := (me - dist + p) % p
		tag := block + round
		rq := c.Irecv(from, 0, tag)
		sq := c.Isend(to, 0, tag)
		mpi.WaitAll(sq, rq)
		round++
	}
}
