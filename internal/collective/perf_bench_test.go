package collective

import (
	"testing"
	"time"

	"pacc/internal/mpi"
	"pacc/internal/simtime"
)

// Hot-path benchmarks of the simulation core itself. These are the
// workloads behind the bench-guard events_per_sec / allocs_per_op gates
// (scripts/bench_guard.sh section 4, BENCH_8.json): the 8x8 1 MiB
// allreduce measures allocations per simulated collective on the paper's
// testbed shape, and the 4096-rank runs measure raw event throughput at
// the cluster scale the power schemes target.

// perfConfig shapes a job of procs ranks at ppn per node.
func perfConfig(procs, ppn int) mpi.Config {
	cfg := mpi.DefaultConfig()
	cfg.NProcs = procs
	cfg.PPN = ppn
	cfg.Topo.Nodes = procs / ppn
	return cfg
}

// runCollective builds a world, runs iters barrier-separated calls of
// the collective on every rank, and returns the engine's executed event
// count plus the wall-clock time spent inside Engine.Run.
func runCollective(b *testing.B, cfg mpi.Config, iters int, bytes int64,
	call func(c *mpi.Comm, bytes int64, opt Options) error) (int, time.Duration) {
	b.Helper()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var callErr error
	w.Launch(func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		for i := 0; i < iters; i++ {
			Barrier(c)
			if err := call(c, bytes, Options{}); err != nil && callErr == nil {
				callErr = err
			}
		}
	})
	start := time.Now()
	executed, err := w.Engine().Run(simtime.Infinity)
	elapsed := time.Since(start)
	if err != nil {
		b.Fatal(err)
	}
	if callErr != nil {
		b.Fatal(callErr)
	}
	return executed, elapsed
}

// BenchmarkHotPathAllreduce8x8_1MiB is the allocs/op gate workload: the
// paper's 8-node x 8-rank testbed running 1 MiB topology-aware
// allreduces. Allocations per op are dominated by the per-message and
// per-flow hot paths (world construction is amortized over the
// in-world iterations).
func BenchmarkHotPathAllreduce8x8_1MiB(b *testing.B) {
	b.ReportAllocs()
	var events int
	var inRun time.Duration
	for i := 0; i < b.N; i++ {
		ev, el := runCollective(b, perfConfig(64, 8), 10, 1<<20, AllreduceTopoAware)
		events += ev
		inRun += el
	}
	b.ReportMetric(float64(events)/inRun.Seconds(), "events/sec")
}

// benchmarkScale runs one collective call at the given shape and reports
// executed events per second of wall time spent in the engine.
func benchmarkScale(b *testing.B, procs, ppn int, bytes int64,
	call func(c *mpi.Comm, bytes int64, opt Options) error) {
	b.ReportAllocs()
	var events int
	var inRun time.Duration
	for i := 0; i < b.N; i++ {
		ev, el := runCollective(b, perfConfig(procs, ppn), 1, bytes, call)
		events += ev
		inRun += el
	}
	b.ReportMetric(float64(events)/inRun.Seconds(), "events/sec")
}

// BenchmarkScale4096AllreduceRD is the events/sec gate workload: a
// 4096-rank recursive-doubling allreduce (512 nodes x 8 ranks), the
// scale at which large power studies operate.
func BenchmarkScale4096AllreduceRD(b *testing.B) {
	benchmarkScale(b, 4096, 8, 4<<10, AllreduceRD)
}

// BenchmarkScale4096AllgatherRD covers the allgather side of the
// acceptance target at the same shape.
func BenchmarkScale4096AllgatherRD(b *testing.B) {
	benchmarkScale(b, 4096, 8, 1<<10, AllgatherRD)
}
