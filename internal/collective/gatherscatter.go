package collective

import (
	"pacc/internal/mpi"
)

// Gather collects a distinct block of bytes from every rank onto root
// using a binomial tree: subtree roots aggregate their subtree's blocks
// before forwarding, so message sizes grow toward the root.
func Gather(c *mpi.Comm, root int, bytes int64, opt Options) error {
	if err := checkBytes("gather", bytes); err != nil {
		return err
	}
	if err := checkRoot("gather", root, c.Size()); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	timeCollective(c, opt, "gather", bytes, func() {
		run := func() { binomialGather(c, root, bytes, c.TagBlock()) }
		if opt.Power == FreqScaling || opt.Power == Proposed {
			withFreqScaling(c, run)
			return
		}
		run()
	})
	return nil
}

// Scatter distributes a distinct block of bytes from root to every rank
// with the binomial range-splitting tree (the same schedule as the
// scatter half of the large-message broadcast).
func Scatter(c *mpi.Comm, root int, bytes int64, opt Options) error {
	if err := checkBytes("scatter", bytes); err != nil {
		return err
	}
	if err := checkRoot("scatter", root, c.Size()); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	timeCollective(c, opt, "scatter", bytes, func() {
		run := func() { binomialScatter(c, root, bytes, c.TagBlock()) }
		if opt.Power == FreqScaling || opt.Power == Proposed {
			withFreqScaling(c, run)
			return
		}
		run()
	})
	return nil
}

// binomialGather mirrors binomialScatter: the owner of the upper half of
// a vrank range ships its aggregated blocks to the owner of the lower
// half, bottom-up.
func binomialGather(c *mpi.Comm, root int, chunk int64, block int) {
	n, me := c.Size(), c.Rank()
	if n == 1 {
		return
	}
	vr := (me - root + n) % n
	// Walk the same range splits as scatter, recording them, then run
	// the transfers in reverse (leaves first).
	type split struct{ lo, upper, hi int }
	var splits []split
	lo, hi := 0, n
	for hi-lo > 1 {
		half := (hi - lo) / 2
		upper := hi - half
		splits = append(splits, split{lo, upper, hi})
		if vr < upper {
			hi = upper
		} else {
			lo = upper
		}
	}
	for i := len(splits) - 1; i >= 0; i-- {
		s := splits[i]
		size := int64(s.hi-s.upper) * chunk
		if vr == s.upper {
			dst := (s.lo + root) % n
			c.Send(dst, size, c.PairTag(block, me, dst))
		}
		if vr == s.lo {
			src := (s.upper + root) % n
			c.Recv(src, size, c.PairTag(block, src, me))
		}
	}
}
